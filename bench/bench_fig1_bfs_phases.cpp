// Figure 1 (§1): per-phase duration of an intra-node BFS traversal,
// BG/Q fine-grained atomics vs AAM coarse hardware transactions.
//
// The paper's setup: 64 threads on BG/Q, one transaction modifies 2^7
// vertices, Kronecker graph with power-law degrees. Each BFS level
// ("phase") is timed separately; AAM's coarse transactions win on the
// heavy middle levels where most of the frontier lives.

#include "algorithms/bfs.hpp"
#include "baselines/named.hpp"
#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "graph/gstats.hpp"

int main(int argc, char** argv) {
  using namespace aam;
  util::Cli cli(argc, argv);
  bench::BenchIo io;
  io.csv_path = cli.get_string("csv", "");
  const int scale = static_cast<int>(cli.get_int("scale", 16));
  const int edge_factor = static_cast<int>(cli.get_int("edge-factor", 16));
  const int threads = static_cast<int>(cli.get_int("threads", 64));
  const int batch = static_cast<int>(cli.get_int("batch", 128));  // 2^7
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const check::CheckConfig check_cfg = check::check_flag(cli);
  const int host_threads = bench::get_host_threads(cli);
  (void)host_threads;
  cli.check_unknown();

  bench::print_header(
      "Figure 1 — BFS phase durations, BG/Q atomics vs AAM-HTM (§1)",
      "Kronecker 2^" + std::to_string(scale) + " x" +
          std::to_string(edge_factor) + ", T=" + std::to_string(threads) +
          ", one transaction modifies " + std::to_string(batch) +
          " vertices");

  util::Rng rng(seed);
  graph::KroneckerParams params;
  params.scale = scale;
  params.edge_factor = edge_factor;
  const graph::Graph g = graph::kronecker(params, rng);
  const graph::Vertex root = graph::pick_nonisolated_vertex(g);

  const std::size_t heap_bytes =
      static_cast<std::size_t>(g.num_vertices()) * 8 + (1u << 22);

  algorithms::BfsResult atomics_result;
  {
    mem::SimHeap heap(heap_bytes);
    htm::DesMachine machine(model::bgq(), model::HtmKind::kBgqShort, threads,
                            heap, seed);
    bench::ScopedChecker scoped(machine, check_cfg);
    atomics_result = baselines::graph500_bfs(machine, g, root,
                                             scoped.decorator());
  }
  algorithms::BfsResult aam_result;
  {
    mem::SimHeap heap(heap_bytes);
    htm::DesMachine machine(model::bgq(), model::HtmKind::kBgqShort, threads,
                            heap, seed);
    bench::ScopedChecker scoped(machine, check_cfg);
    algorithms::BfsOptions options;
    options.root = root;
    options.mechanism = core::Mechanism::kHtmCoarsened;
    options.batch = batch;
    options.decorator = scoped.decorator();
    aam_result = algorithms::run_bfs(machine, g, options);
  }
  AAM_CHECK(algorithms::validate_bfs_tree(g, root, atomics_result.parent));
  AAM_CHECK(algorithms::validate_bfs_tree(g, root, aam_result.parent));

  util::Table table({"phase (BFS level)", "atomics (BGQ-CAS)",
                     "AAM-HTM (M=" + std::to_string(batch) + ")",
                     "speedup"});
  const std::size_t levels = std::max(atomics_result.level_times_ns.size(),
                                      aam_result.level_times_ns.size());
  for (std::size_t l = 0; l < levels; ++l) {
    const double at = l < atomics_result.level_times_ns.size()
                          ? atomics_result.level_times_ns[l]
                          : 0.0;
    const double am = l < aam_result.level_times_ns.size()
                          ? aam_result.level_times_ns[l]
                          : 0.0;
    table.row().cell(std::uint64_t(l)).cell(util::format_time_ns(at))
        .cell(util::format_time_ns(am))
        .cell(am > 0 ? bench::speedup_str(at / am) : "-");
  }
  table.row().cell("TOTAL")
      .cell(util::format_time_ns(atomics_result.total_time_ns))
      .cell(util::format_time_ns(aam_result.total_time_ns))
      .cell(bench::speedup_str(atomics_result.total_time_ns /
                               aam_result.total_time_ns));
  table.print("Per-phase traversal time (simulated)");
  io.maybe_write_csv(table, "");

  std::printf(
      "\nAAM run: %llu txn started, %llu aborts (%llu conflict / %llu "
      "capacity / %llu other), %llu serialized\n",
      static_cast<unsigned long long>(aam_result.stats.started),
      static_cast<unsigned long long>(aam_result.stats.total_aborts()),
      static_cast<unsigned long long>(aam_result.stats.aborts_conflict),
      static_cast<unsigned long long>(aam_result.stats.aborts_capacity),
      static_cast<unsigned long long>(aam_result.stats.aborts_other),
      static_cast<unsigned long long>(aam_result.stats.serialized));
  return 0;
}
