// Fault-oblivious correctness matrix (the headline invariant of the
// aam::fault layer): every algorithm x mechanism x machine cell, run under
// an injected fault scenario, must produce the *same answer* as its
// fault-free run. Faults may only show up in HtmStats/NetStats and in
// simulated time — never in results.
//
// Because fault injection perturbs the schedule (retries, retransmits,
// slowdowns), raw result vectors are not directly comparable; each
// algorithm is reduced to its schedule-invariant semantic projection:
//
//   bfs       depth-per-vertex derived from the parent tree (level-
//             synchronous BFS pins every depth) — exact
//   pagerank  rank vector — tolerance (FP summation order moves)
//   sssp      distance vector — tolerance
//   coloring  validity: proper coloring and all vertices colored — exact
//   st-conn   the connectivity verdict — exact
//   boruvka   forest edge count exact + total weight under tolerance
//
// The distributed pagerank cell runs on a 4-node Cluster so network
// scenarios (drop/duplicate/reorder/delay) exercise the reliable-delivery
// protocol end to end, and additionally cross-checks the protocol's exact
// accounting (injected == observed, all sends acked, quiescence reached).
//
// Output is deterministic (no wall-clock, no pointers): running the binary
// twice with the same flags must produce byte-identical stdout, which
// tools/fault_sweep.sh uses as the determinism oracle. Exit code: 0 when
// every cell matches its baseline, 1 otherwise.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "algorithms/bfs.hpp"
#include "algorithms/boruvka.hpp"
#include "algorithms/coloring.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/pagerank_dist.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/st_connectivity.hpp"
#include "analysis/conflict.hpp"
#include "analysis/recommend.hpp"
#include "bench_common.hpp"
#include "core/auto_executor.hpp"
#include "core/executor.hpp"
#include "graph/generators.hpp"
#include "graph/gstats.hpp"
#include "graph/partition.hpp"

namespace {

using namespace aam;

// ---------------------------------------------------------------------------
// Semantic projections.

/// One algorithm's schedule-invariant answer: named scalar/vector slots,
/// some compared exactly, some under a tolerance.
struct Projection {
  std::vector<std::uint64_t> exact;   ///< compared bit-for-bit
  std::vector<double> approx;         ///< compared under `tolerance`
  double tolerance = 0;
};

/// Depth of every vertex under the BFS tree `parent` (kInvalidVertex for
/// unvisited vertices maps to a sentinel depth). Memoized chain walk.
std::vector<std::uint64_t> bfs_depths(const std::vector<graph::Vertex>& parent,
                                      graph::Vertex root) {
  constexpr std::uint64_t kUnvisited = ~std::uint64_t{0};
  std::vector<std::uint64_t> depth(parent.size(), kUnvisited);
  if (root < parent.size()) depth[root] = 0;
  for (graph::Vertex v = 0; v < parent.size(); ++v) {
    if (parent[v] == graph::kInvalidVertex || depth[v] != kUnvisited) continue;
    // Walk to a vertex of known depth, then unwind.
    std::vector<graph::Vertex> chain;
    graph::Vertex u = v;
    while (depth[u] == kUnvisited) {
      chain.push_back(u);
      u = parent[u];
    }
    std::uint64_t d = depth[u];
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      depth[*it] = ++d;
    }
  }
  return depth;
}

/// True when `color` (1-based, 0 = uncolored) is a proper and complete
/// coloring of `g`.
bool coloring_valid(const graph::Graph& g,
                    const std::vector<std::uint32_t>& color) {
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    if (color[v] == 0) return false;
    for (const graph::Vertex u : g.neighbors(v)) {
      if (u != v && color[u] == color[v]) return false;
    }
  }
  return true;
}

struct Inputs {
  graph::Graph g;
  graph::Graph wg;
  graph::Vertex root = 0;
  graph::Vertex st_t = 0;
};

Inputs make_inputs(int scale, std::uint64_t seed) {
  util::Rng rng(seed);
  graph::KroneckerParams params;
  params.scale = scale;
  params.edge_factor = 4;
  Inputs in;
  in.g = graph::kronecker(params, rng);
  in.root = graph::pick_nonisolated_vertex(in.g);
  for (graph::Vertex v = in.g.num_vertices(); v-- > 0;) {
    if (v != in.root && !in.g.neighbors(v).empty()) {
      in.st_t = v;
      break;
    }
  }
  util::Rng wrng(seed + 1);
  auto wedges = graph::erdos_renyi_edges(600, 0.02, wrng);
  const auto weights =
      graph::random_weights(wedges.size(), 1.0f, 100.0f, wrng);
  in.wg = graph::Graph::from_weighted_edges(600, wedges, weights, true);
  return in;
}

Projection run_cell(htm::DesMachine& machine, const Inputs& in,
                    const std::string& algo, core::Mechanism mech,
                    std::uint64_t seed, const core::AutoPolicy* policy) {
  Projection p;
  if (algo == "bfs") {
    algorithms::BfsOptions o;
    o.auto_policy = policy;
    o.root = in.root;
    o.mechanism = mech;
    const auto r = algorithms::run_bfs(machine, in.g, o);
    p.exact = bfs_depths(r.parent, in.root);
    p.exact.push_back(r.vertices_visited);
  } else if (algo == "pagerank") {
    algorithms::PageRankOptions o;
    o.auto_policy = policy;
    o.iterations = 3;
    o.mechanism = mech;
    const auto r = algorithms::run_pagerank(machine, in.g, o);
    p.approx = r.rank;
    p.tolerance = 1e-9;
  } else if (algo == "sssp") {
    algorithms::SsspOptions o;
    o.auto_policy = policy;
    o.source = 0;
    o.mechanism = mech;
    const auto r = algorithms::run_sssp(machine, in.wg, o);
    p.approx = r.distance;
    p.tolerance = 1e-9;
  } else if (algo == "coloring") {
    algorithms::ColoringOptions o;
    o.auto_policy = policy;
    o.mechanism = mech;
    o.seed = seed + 6;
    const auto r = algorithms::run_boman_coloring(machine, in.g, o);
    p.exact.push_back(coloring_valid(in.g, r.color) ? 1 : 0);
  } else if (algo == "st-conn") {
    algorithms::StConnOptions o;
    o.auto_policy = policy;
    o.s = in.root;
    o.t = in.st_t;
    o.mechanism = mech;
    const auto r = algorithms::run_st_connectivity(machine, in.g, o);
    p.exact.push_back(r.connected ? 1 : 0);
  } else if (algo == "boruvka") {
    algorithms::BoruvkaOptions o;
    o.auto_policy = policy;
    o.mechanism = mech;
    const auto r = algorithms::run_boruvka(machine, in.wg, o);
    p.exact.push_back(r.edges_in_forest);
    p.approx.push_back(r.total_weight);
    p.tolerance = 1e-6 * std::max(1.0, r.total_weight);
  } else {
    AAM_CHECK_MSG(false, "unknown algorithm in fault matrix");
  }
  return p;
}

/// Compares a faulted projection against its fault-free baseline; returns
/// a human-readable diff description, or "" on a match.
std::string compare(const Projection& base, const Projection& got) {
  char buf[160];
  if (base.exact.size() != got.exact.size() ||
      base.approx.size() != got.approx.size()) {
    return "projection shape differs";
  }
  for (std::size_t i = 0; i < base.exact.size(); ++i) {
    if (base.exact[i] != got.exact[i]) {
      std::snprintf(buf, sizeof(buf),
                    "exact[%zu]: baseline=%llu faulted=%llu", i,
                    static_cast<unsigned long long>(base.exact[i]),
                    static_cast<unsigned long long>(got.exact[i]));
      return buf;
    }
  }
  const double tol = std::max(base.tolerance, got.tolerance);
  for (std::size_t i = 0; i < base.approx.size(); ++i) {
    const double a = base.approx[i];
    const double b = got.approx[i];
    const bool a_inf = std::isinf(a);
    const bool b_inf = std::isinf(b);
    if (a_inf || b_inf) {
      if (a_inf == b_inf) continue;
      std::snprintf(buf, sizeof(buf),
                    "approx[%zu]: baseline=%g faulted=%g (infinity)", i, a, b);
      return buf;
    }
    if (std::abs(a - b) > tol) {
      std::snprintf(buf, sizeof(buf),
                    "approx[%zu]: baseline=%.17g faulted=%.17g tol=%g", i, a,
                    b, tol);
      return buf;
    }
  }
  return "";
}

// ---------------------------------------------------------------------------
// Distributed pagerank cell (Cluster-backed; the network scenarios' target).

struct DistCell {
  std::vector<double> rank;
  net::NetStats net;
  htm::HtmStats stats;
  recovery::RecoveryStats rec;  ///< zeroes when the plan has no crashes
  std::string protocol_error;   ///< "" when the exact accounting holds
};

DistCell run_dist_cell(const model::MachineConfig& config,
                       model::HtmKind kind, const graph::Graph& g,
                       const std::string& fault_spec, std::uint64_t seed) {
  const int nodes = 4;
  const int threads = 4;
  const graph::Block1D part(g.num_vertices(), nodes);
  mem::SimHeap heap(std::size_t{1} << 26);
  net::Cluster cluster(config, kind, nodes, threads, heap, seed);
  bench::ScopedFault fault(cluster, fault_spec, seed);
  algorithms::DistPrOptions o;
  o.iterations = 3;
  const auto r = algorithms::run_distributed_pagerank(cluster, g, part, o);
  DistCell cell;
  cell.rank = r.rank;
  cell.net = r.net;
  cell.stats = r.stats;
  if (fault.recovery() != nullptr) cell.rec = fault.recovery()->stats();
  char buf[160];
  if (cluster.in_flight() != 0) {
    std::snprintf(buf, sizeof(buf), "quiescence violated: %llu in flight",
                  static_cast<unsigned long long>(cluster.in_flight()));
    cell.protocol_error = buf;
  } else if (fault.injector() != nullptr && fault.injector()->net_active()) {
    // NetStats counters are rolled back with every restore; the injector's
    // counters never forget. Exact accounting across crash/restore:
    // injected == surviving-timeline NetStats + rolled_back_* deltas.
    const auto& inj = fault.injector()->injected();
    if (cell.net.dropped + cell.rec.rolled_back_dropped != inj.net_dropped ||
        cell.net.duplicated + cell.rec.rolled_back_duplicated !=
            inj.net_duplicated) {
      std::snprintf(buf, sizeof(buf),
                    "inexact accounting: dropped %llu/%llu dup %llu/%llu",
                    static_cast<unsigned long long>(
                        cell.net.dropped + cell.rec.rolled_back_dropped),
                    static_cast<unsigned long long>(inj.net_dropped),
                    static_cast<unsigned long long>(
                        cell.net.duplicated + cell.rec.rolled_back_duplicated),
                    static_cast<unsigned long long>(inj.net_duplicated));
      cell.protocol_error = buf;
    } else if (cell.net.acked != cell.net.messages_sent) {
      std::snprintf(buf, sizeof(buf), "unacked sends: acked=%llu sent=%llu",
                    static_cast<unsigned long long>(cell.net.acked),
                    static_cast<unsigned long long>(cell.net.messages_sent));
      cell.protocol_error = buf;
    } else if (cell.rec.crashes != inj.crashes) {
      std::snprintf(buf, sizeof(buf),
                    "crash accounting: recovered=%llu injected=%llu",
                    static_cast<unsigned long long>(cell.rec.crashes),
                    static_cast<unsigned long long>(inj.crashes));
      cell.protocol_error = buf;
    }
  }
  return cell;
}

/// Deterministic recovery-telemetry suffix for crash cells ("" otherwise).
/// recovery_wall_ms is host wall time and deliberately excluded: the
/// binary's stdout is the determinism oracle of tools/fault_sweep.sh.
std::string recovery_suffix(const recovery::RecoveryStats* rec) {
  if (rec == nullptr) return "";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                " [crashes=%llu ckpts=%llu lost=%.0fns replayed=%llu]",
                static_cast<unsigned long long>(rec->crashes),
                static_cast<unsigned long long>(rec->checkpoints),
                rec->lost_work_ns,
                static_cast<unsigned long long>(rec->replayed_sends));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const int scale = static_cast<int>(cli.get_int("scale", 10));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::string fault_filter = cli.get_string("fault", "all");
  const std::string algo_filter = cli.get_string("algorithm", "all");
  std::vector<std::string> mech_choices = {"all"};
  for (const auto m : core::all_mechanisms()) {
    mech_choices.push_back(core::to_string(m));
  }
  mech_choices.push_back("auto");
  const std::string only_mech =
      cli.get_choice("mechanism", "all", mech_choices);
  const std::string machine_filter = cli.get_string("machine", "all");
  const int host_threads = bench::get_host_threads(cli);
  (void)host_threads;
  cli.check_unknown();

  // Scenario list: every canned scenario except "none" (each is compared
  // against the fault-free baseline), or one user-provided spec.
  std::vector<std::string> scenarios;
  if (fault_filter == "all") {
    for (const std::string& s : fault::canned_scenarios()) {
      if (s != "none") scenarios.push_back(s);
    }
    scenarios.push_back("brownout");
  } else {
    fault::FaultPlan probe;
    const auto error =
        fault::try_parse(fault_filter, model::FaultProfile{}, probe);
    if (error.has_value()) {
      std::cerr << "invalid --fault=" << fault_filter << "; " << *error
                << "\n";
      return 2;
    }
    scenarios.push_back(fault_filter);
  }

  struct Setup {
    const model::MachineConfig* config;
    model::HtmKind kind;
    int threads;
  };
  std::vector<Setup> setups;
  if (machine_filter == "all" || machine_filter == "BGQ") {
    setups.push_back({&model::bgq(), model::HtmKind::kBgqShort, 16});
  }
  if (machine_filter == "all" || machine_filter == "Has-C") {
    setups.push_back({&model::has_c(), model::HtmKind::kRtm, 8});
  }
  AAM_CHECK_MSG(!setups.empty(), "unknown --machine (BGQ, Has-C, all)");

  const std::vector<std::string> algos = {"bfs",      "pagerank", "sssp",
                                          "coloring", "st-conn",  "boruvka"};
  const Inputs in = make_inputs(scale, seed);
  util::Rng drng(seed + 17);
  const graph::Graph dg = graph::erdos_renyi(1 << 10, 0.01, drng);

  int cells = 0;
  int failures = 0;
  for (const Setup& setup : setups) {
    // Static routing tables for the auto cells, one per input graph.
    const core::AutoPolicy policy_g = analysis::make_auto_policy(
        *setup.config, setup.kind,
        analysis::workload_from_graph(in.g, setup.threads, 16));
    const core::AutoPolicy policy_wg = analysis::make_auto_policy(
        *setup.config, setup.kind,
        analysis::workload_from_graph(in.wg, setup.threads, 16));
    struct Cell {
      const char* label;
      core::Mechanism mech;
      bool is_auto;
    };
    std::vector<Cell> mech_cells;
    for (const core::Mechanism mech : core::all_mechanisms()) {
      if (only_mech == "all" || only_mech == core::to_string(mech)) {
        mech_cells.push_back({core::to_string(mech), mech, false});
      }
    }
    if (only_mech == "all" || only_mech == "auto") {
      mech_cells.push_back({"auto", core::Mechanism::kHtmCoarsened, true});
    }

    // Shared-memory cells.
    for (const std::string& algo : algos) {
      if (algo_filter != "all" && algo_filter != algo) continue;
      const bool weighted = algo == "sssp" || algo == "boruvka";
      for (const Cell& cell : mech_cells) {
        const core::AutoPolicy* policy =
            cell.is_auto ? (weighted ? &policy_wg : &policy_g) : nullptr;
        Projection base;
        {
          mem::SimHeap heap((std::size_t{1} << 20) * 8);
          htm::DesMachine machine(*setup.config, setup.kind, setup.threads,
                                  heap, seed);
          base = run_cell(machine, in, algo, cell.mech, seed, policy);
        }
        for (const std::string& scenario : scenarios) {
          ++cells;
          mem::SimHeap heap((std::size_t{1} << 20) * 8);
          htm::DesMachine machine(*setup.config, setup.kind, setup.threads,
                                  heap, seed);
          bench::ScopedFault fault(machine, scenario, seed);
          const Projection got =
              run_cell(machine, in, algo, cell.mech, seed, policy);
          std::string diff = compare(base, got);
          if (diff.empty() && fault.recovery() != nullptr) {
            // Every injected crash-stop must have been recovered from.
            const auto& rec = fault.recovery()->stats();
            const auto fired = fault.injector()->injected().crashes;
            if (rec.crashes != fired) {
              char buf[96];
              std::snprintf(buf, sizeof(buf),
                            "crash accounting: recovered=%llu injected=%llu",
                            static_cast<unsigned long long>(rec.crashes),
                            static_cast<unsigned long long>(fired));
              diff = buf;
            }
          }
          const bool ok = diff.empty();
          if (!ok) ++failures;
          const std::string rec_suffix = recovery_suffix(
              fault.recovery() != nullptr ? &fault.recovery()->stats()
                                          : nullptr);
          std::printf("%-5s %-8s %-13s %-12s %s%s%s%s\n",
                      setup.config->name.c_str(), algo.c_str(), cell.label,
                      scenario.c_str(), ok ? "OK" : "MISMATCH",
                      ok ? "" : ": ", diff.c_str(), rec_suffix.c_str());
        }
      }
    }
    // Distributed pagerank cell: compare against the fault-free cluster
    // run and enforce the delivery protocol's exact accounting.
    if (algo_filter == "all" || algo_filter == "pagerank-dist") {
      const DistCell base =
          run_dist_cell(*setup.config, setup.kind, dg, "none", seed);
      for (const std::string& scenario : scenarios) {
        ++cells;
        const DistCell got =
            run_dist_cell(*setup.config, setup.kind, dg, scenario, seed);
        std::string diff = got.protocol_error;
        if (diff.empty()) {
          Projection pb, pg;
          pb.approx = base.rank;
          pg.approx = got.rank;
          // float32 message payloads + reordered accumulation.
          pb.tolerance = 1e-5;
          diff = compare(pb, pg);
        }
        const bool ok = diff.empty();
        if (!ok) ++failures;
        const std::string rec_suffix =
            recovery_suffix(got.rec.crashes + got.rec.checkpoints > 0
                                ? &got.rec
                                : nullptr);
        std::printf(
            "%-5s %-8s %-13s %-12s %s%s%s (dropped=%llu dup=%llu "
            "retx=%llu deduped=%llu)%s\n",
            setup.config->name.c_str(), "pr-dist", "am", scenario.c_str(),
            ok ? "OK" : "MISMATCH", ok ? "" : ": ", diff.c_str(),
            static_cast<unsigned long long>(got.net.dropped),
            static_cast<unsigned long long>(got.net.duplicated),
            static_cast<unsigned long long>(got.net.retransmitted),
            static_cast<unsigned long long>(got.net.dedup_discarded),
            rec_suffix.c_str());
      }
    }
  }

  std::printf("fault matrix: %d cells, %d mismatches\n", cells, failures);
  return failures == 0 ? 0 : 1;
}
