// Host wall-clock throughput harness (elements/sec per algorithm x
// mechanism at a fixed scale).
//
// Unlike the figure benches, which report *simulated* time, this harness
// measures how fast the simulator itself chews through modelled work on
// the host — the number that bounds how large a --scale any sweep can
// afford. Element counts are deterministic properties of the run (edges
// scanned, relaxations, ...), so elements/sec moves only with host-side
// cost per access: exactly the executor/footprint hot path this metric
// exists to track. Output is JSON (schema aam-bench-wallclock-v5) so CI
// can diff runs; tools/bench_record.sh wraps this into BENCH_wallclock.json.
// --host-threads=N runs the independent (algorithm, mechanism) cells on N
// host workers via the parallel DES backend; results are identical at any
// N, and the top-level wall_ms field captures the whole-sweep wall-clock.
//
// Besides the fixed mechanisms, every algorithm also runs one
// --mechanism=auto row: the static recommendation table
// (analysis::make_auto_policy) routes each operator's batches, and the
// row reports the auto executor's validation counters (prediction_miss,
// descents, capacity_clamps) next to the usual throughput numbers.
//
// --fault=<spec> threads deterministic fault injection (aam::fault) into
// every run, so CI can compare the simulator's host throughput with and
// without recovery machinery active. The "pagerank-dist" row runs on a
// 4-node Cluster specifically so network scenarios (lossy-net) have a
// substrate to act on. Crash scenarios additionally record the
// recovery telemetry per row (checkpoints, crashes, replayed sends,
// lost simulated work, snapshot bytes, rolled-back NetStats deltas) —
// all simulated-schedule-derived, so they participate in the
// determinism gate; recovery *wall* time is host noise and excluded.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "algorithms/bfs.hpp"
#include "algorithms/boruvka.hpp"
#include "algorithms/coloring.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/pagerank_dist.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/st_connectivity.hpp"
#include "analysis/conflict.hpp"
#include "analysis/recommend.hpp"
#include "bench_common.hpp"
#include "core/auto_executor.hpp"
#include "core/executor.hpp"
#include "graph/generators.hpp"
#include "graph/gstats.hpp"
#include "graph/partition.hpp"
#include "sim/host_pool.hpp"

namespace {

using namespace aam;
using Clock = std::chrono::steady_clock;

struct RunOutcome {
  std::uint64_t elements = 0;  ///< deterministic work count for the run
  double sim_time_ns = 0;
  htm::HtmStats stats;
};

struct Algo {
  std::string name;
  bool weighted = false;  ///< runs on wg (workload probe must match)
  RunOutcome (*run)(htm::DesMachine&, const graph::Graph& g,
                    const graph::Graph& wg, graph::Vertex root,
                    graph::Vertex st_t, core::Mechanism, int batch,
                    std::uint64_t seed, const core::AutoPolicy* policy);
};

graph::Vertex second_endpoint(const graph::Graph& g, graph::Vertex s) {
  for (graph::Vertex v = g.num_vertices(); v-- > 0;) {
    if (v != s && !g.neighbors(v).empty()) return v;
  }
  return s;
}

const std::vector<Algo> kAlgos = {
    {"bfs", false,
     [](htm::DesMachine& m, const graph::Graph& g, const graph::Graph&,
        graph::Vertex root, graph::Vertex, core::Mechanism mech, int batch,
        std::uint64_t, const core::AutoPolicy* policy) {
       algorithms::BfsOptions o;
       o.root = root;
       o.mechanism = mech;
       o.batch = batch;
       o.auto_policy = policy;
       const auto r = algorithms::run_bfs(m, g, o);
       return RunOutcome{r.edges_scanned, r.total_time_ns, r.stats};
     }},
    {"pagerank", false,
     [](htm::DesMachine& m, const graph::Graph& g, const graph::Graph&,
        graph::Vertex, graph::Vertex, core::Mechanism mech, int batch,
        std::uint64_t, const core::AutoPolicy* policy) {
       algorithms::PageRankOptions o;
       o.iterations = 3;
       o.mechanism = mech;
       o.batch = batch;
       o.auto_policy = policy;
       const auto r = algorithms::run_pagerank(m, g, o);
       const std::uint64_t pushes = static_cast<std::uint64_t>(o.iterations) *
                                    (g.num_edges() + g.num_vertices());
       return RunOutcome{pushes, r.total_time_ns, r.stats};
     }},
    {"sssp", true,
     [](htm::DesMachine& m, const graph::Graph&, const graph::Graph& wg,
        graph::Vertex, graph::Vertex, core::Mechanism mech, int batch,
        std::uint64_t, const core::AutoPolicy* policy) {
       algorithms::SsspOptions o;
       o.source = 0;
       o.mechanism = mech;
       o.batch = batch;
       o.auto_policy = policy;
       const auto r = algorithms::run_sssp(m, wg, o);
       return RunOutcome{r.relaxations, r.total_time_ns, r.stats};
     }},
    {"coloring", false,
     [](htm::DesMachine& m, const graph::Graph& g, const graph::Graph&,
        graph::Vertex, graph::Vertex, core::Mechanism mech, int batch,
        std::uint64_t seed, const core::AutoPolicy* policy) {
       algorithms::ColoringOptions o;
       o.mechanism = mech;
       o.batch = batch;
       o.seed = seed;
       o.auto_policy = policy;
       const auto r = algorithms::run_boman_coloring(m, g, o);
       return RunOutcome{g.num_vertices() + r.recolor_requests,
                         r.total_time_ns, r.stats};
     }},
    {"st-conn", false,
     [](htm::DesMachine& m, const graph::Graph& g, const graph::Graph&,
        graph::Vertex root, graph::Vertex st_t, core::Mechanism mech,
        int batch, std::uint64_t, const core::AutoPolicy* policy) {
       algorithms::StConnOptions o;
       o.s = root;
       o.t = st_t;
       o.mechanism = mech;
       o.batch = batch;
       o.auto_policy = policy;
       const auto r = algorithms::run_st_connectivity(m, g, o);
       return RunOutcome{r.vertices_colored, r.total_time_ns, r.stats};
     }},
    {"boruvka", true,
     [](htm::DesMachine& m, const graph::Graph&, const graph::Graph& wg,
        graph::Vertex, graph::Vertex, core::Mechanism mech, int batch,
        std::uint64_t, const core::AutoPolicy* policy) {
       algorithms::BoruvkaOptions o;
       o.mechanism = mech;
       o.batch = batch;
       o.auto_policy = policy;
       const auto r = algorithms::run_boruvka(m, wg, o);
       return RunOutcome{r.edges_in_forest, r.total_time_ns, r.stats};
     }},
};

std::string json_escape_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const int scale = static_cast<int>(cli.get_int("scale", 16));
  const int edge_factor = static_cast<int>(cli.get_int("edge-factor", 8));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const int repeats = static_cast<int>(cli.get_int("repeats", 1));
  const std::string machine_name = cli.get_string("machine", "BGQ");
  const std::string algo_filter = cli.get_string("algorithm", "all");
  std::vector<std::string> mech_choices = {"all"};
  for (const auto m : core::all_mechanisms()) {
    mech_choices.push_back(core::to_string(m));
  }
  mech_choices.push_back("auto");
  const std::string only_mech =
      cli.get_choice("mechanism", "all", mech_choices);
  const std::string json_path = cli.get_string("json", "");
  const int batch = static_cast<int>(cli.get_int("batch", 16));
  int threads = static_cast<int>(cli.get_int("threads", 0));
  const std::string fault_spec = bench::get_fault_spec(cli);
  const int host_threads = bench::get_host_threads(cli);
  cli.check_unknown();
  AAM_CHECK(repeats >= 1);

  const model::MachineConfig& config = model::machine_by_name(machine_name);
  if (threads == 0) threads = config.max_threads();
  const model::HtmKind kind =
      config.name == "BGQ" ? model::HtmKind::kBgqShort : model::HtmKind::kRtm;

  // Shared inputs: a Kronecker graph for the traversal algorithms and a
  // smaller weighted graph for SSSP/Boruvka (matching the ablation bench).
  util::Rng rng(seed);
  graph::KroneckerParams params;
  params.scale = scale;
  params.edge_factor = edge_factor;
  const graph::Graph g = graph::kronecker(params, rng);
  const graph::Vertex root = graph::pick_nonisolated_vertex(g);
  const graph::Vertex st_t = second_endpoint(g, root);

  util::Rng wrng(seed + 1);
  auto wedges = graph::erdos_renyi_edges(1500, 0.01, wrng);
  const auto weights =
      graph::random_weights(wedges.size(), 1.0f, 100.0f, wrng);
  const graph::Graph wg =
      graph::Graph::from_weighted_edges(1500, wedges, weights, true);

  // Heap sized for the Kronecker graph state at this scale.
  const std::size_t heap_bytes =
      (std::size_t{1} << 20) * 16 +
      static_cast<std::size_t>(g.num_vertices()) * 64;

  // Static routing tables for the --mechanism=auto rows, one per input
  // graph (the conflict model conditions on the workload it will run on).
  const core::AutoPolicy policy_g = analysis::make_auto_policy(
      config, kind, analysis::workload_from_graph(g, threads, batch));
  const core::AutoPolicy policy_wg = analysis::make_auto_policy(
      config, kind, analysis::workload_from_graph(wg, threads, batch));

  std::string json = "{\n";
  json += "  \"schema\": \"aam-bench-wallclock-v5\",\n";
  json += "  \"scale\": " + std::to_string(scale) + ",\n";
  json += "  \"edge_factor\": " + std::to_string(edge_factor) + ",\n";
  json += "  \"machine\": \"" + config.name + "\",\n";
  json += "  \"threads\": " + std::to_string(threads) + ",\n";
  json += "  \"host_threads\": " + std::to_string(host_threads) + ",\n";
  json += "  \"batch\": " + std::to_string(batch) + ",\n";
  json += "  \"repeats\": " + std::to_string(repeats) + ",\n";
  json += "  \"fault\": \"" + fault_spec + "\",\n";

  struct Selection {
    std::string label;
    core::Mechanism mech = core::Mechanism::kHtmCoarsened;
    bool is_auto = false;
  };
  std::vector<Selection> selections;
  for (const core::Mechanism mech : core::all_mechanisms()) {
    if (only_mech == "all" || only_mech == core::to_string(mech)) {
      selections.push_back({core::to_string(mech), mech, false});
    }
  }
  if (only_mech == "all" || only_mech == "auto") {
    selections.push_back({"auto", core::Mechanism::kHtmCoarsened, true});
  }

  // Every (algorithm, mechanism) pair — plus the Cluster-backed
  // distributed-PageRank row — is an independent *cell*: its own SimHeap,
  // DesMachine, fault injector, and (for auto rows) AutoPolicy copy, no
  // shared mutable state. Cells are therefore shards for the parallel DES
  // backend: sim::ShardRunner executes them across --host-threads host
  // workers, results land in slot [cell index], and the table/JSON are
  // assembled in cell order — identical for every --host-threads value
  // while wall-clock drops with parallelism.
  struct Cell {
    const Algo* algo = nullptr;  ///< nullptr = distributed-PageRank cell
    Selection sel;
  };
  struct CellResult {
    std::string algorithm;
    std::string mechanism;
    std::uint64_t elements = 0;
    double best_seconds = 0;
    double sim_time_ns = 0;
    htm::HtmStats stats;
    core::AutoTelemetry tele;
    recovery::RecoveryStats rec;  ///< zeroes unless the plan crashes
  };
  std::vector<Cell> cells;
  for (const Algo& algo : kAlgos) {
    if (algo_filter != "all" && algo_filter != algo.name) continue;
    for (const Selection& sel : selections) cells.push_back({&algo, sel});
  }
  if (algo_filter == "all" || algo_filter == "pagerank-dist") {
    cells.push_back({nullptr, {}});
  }

  std::vector<CellResult> slots(cells.size());
  const auto sweep_t0 = Clock::now();
  sim::ShardRunner runner(host_threads);
  runner.run(cells.size(), [&](sim::ShardId cell_id) {
    const Cell& cell = cells[cell_id];
    CellResult& res = slots[cell_id];
    if (cell.algo != nullptr) {
      const Algo& algo = *cell.algo;
      const Selection& sel = cell.sel;
      // Private policy copy: AutoTelemetry is mutable inside the shared
      // per-graph policy, so parallel auto cells each route via their own.
      core::AutoPolicy policy = algo.weighted ? policy_wg : policy_g;
      double best_seconds = 0;
      RunOutcome out;
      for (int rep = 0; rep < repeats; ++rep) {
        policy.telemetry = {};
        mem::SimHeap heap(heap_bytes);
        htm::DesMachine machine(config, kind, threads, heap, seed);
        machine.bind_shard(cell_id);
        bench::ScopedFault fault(machine, fault_spec, seed);
        const auto t0 = Clock::now();
        out = algo.run(machine, g, wg, root, st_t, sel.mech, batch, seed,
                       sel.is_auto ? &policy : nullptr);
        const double seconds =
            std::chrono::duration<double>(Clock::now() - t0).count();
        if (rep == 0 || seconds < best_seconds) best_seconds = seconds;
        if (fault.recovery() != nullptr) res.rec = fault.recovery()->stats();
      }
      res.algorithm = algo.name;
      res.mechanism = sel.label;
      res.elements = out.elements;
      res.best_seconds = best_seconds;
      res.sim_time_ns = out.sim_time_ns;
      res.stats = out.stats;
      if (sel.is_auto) res.tele = policy.telemetry;
      return;
    }
    // Distributed PageRank cell: the one Cluster-backed entry, so network
    // fault scenarios exercise the reliable-delivery protocol end to end.
    const int nodes = 4;
    const int per_node = std::max(1, threads / nodes);
    double best_seconds = 0;
    algorithms::DistPrResult r;
    std::uint64_t elements = 0;
    for (int rep = 0; rep < repeats; ++rep) {
      const graph::Block1D part(g.num_vertices(), nodes);
      mem::SimHeap heap(heap_bytes);
      net::Cluster cluster(config, kind, nodes, per_node, heap, seed);
      cluster.machine().bind_shard(cell_id);
      bench::ScopedFault fault(cluster, fault_spec, seed);
      algorithms::DistPrOptions o;
      o.iterations = 3;
      o.local_batch = batch;
      const auto t0 = Clock::now();
      r = algorithms::run_distributed_pagerank(cluster, g, part, o);
      const double seconds =
          std::chrono::duration<double>(Clock::now() - t0).count();
      if (rep == 0 || seconds < best_seconds) best_seconds = seconds;
      if (fault.recovery() != nullptr) res.rec = fault.recovery()->stats();
      elements = static_cast<std::uint64_t>(o.iterations) *
                 (g.num_edges() + g.num_vertices());
    }
    res.algorithm = "pagerank-dist";
    res.mechanism = "am";
    res.elements = elements;
    res.best_seconds = best_seconds;
    res.sim_time_ns = r.total_time_ns;
    res.stats = r.stats;
  });
  const double sweep_wall_ms =
      std::chrono::duration<double>(Clock::now() - sweep_t0).count() * 1e3;

  json += "  \"wall_ms\": " + json_escape_double(sweep_wall_ms) + ",\n";
  json += "  \"results\": [\n";
  bool first = true;
  std::printf("%-10s %-12s %14s %12s %14s\n", "algorithm", "mechanism",
              "elements", "wall ms", "elems/sec");
  for (const CellResult& res : slots) {
    const double rate =
        res.best_seconds > 0
            ? static_cast<double>(res.elements) / res.best_seconds
            : 0;
    std::printf("%-10s %-12s %14llu %12.2f %14.0f\n", res.algorithm.c_str(),
                res.mechanism.c_str(),
                static_cast<unsigned long long>(res.elements),
                res.best_seconds * 1e3, rate);
    if (!first) json += ",\n";
    first = false;
    json += "    {\"algorithm\": \"" + res.algorithm + "\", \"mechanism\": \"" +
            res.mechanism + "\", \"elements\": " +
            std::to_string(res.elements) + ", \"wall_seconds\": " +
            json_escape_double(res.best_seconds) +
            ", \"elements_per_sec\": " + json_escape_double(rate) +
            ", \"sim_time_ns\": " + json_escape_double(res.sim_time_ns) +
            ", \"commits\": " + std::to_string(res.stats.committed) +
            ", \"aborts\": " + std::to_string(res.stats.total_aborts()) +
            ", \"prediction_miss\": " + std::to_string(res.tele.prediction_miss) +
            ", \"descents\": " + std::to_string(res.tele.descents) +
            ", \"capacity_clamps\": " +
            std::to_string(res.tele.capacity_clamps) +
            ", \"checkpoints\": " + std::to_string(res.rec.checkpoints) +
            ", \"crashes\": " + std::to_string(res.rec.crashes) +
            ", \"replayed_sends\": " + std::to_string(res.rec.replayed_sends) +
            ", \"lost_work_ns\": " + json_escape_double(res.rec.lost_work_ns) +
            ", \"snapshot_bytes\": " + std::to_string(res.rec.snapshot_bytes) +
            ", \"rolled_back_dropped\": " +
            std::to_string(res.rec.rolled_back_dropped) +
            ", \"rolled_back_duplicated\": " +
            std::to_string(res.rec.rolled_back_duplicated) + "}";
  }
  json += "\n  ]\n}\n";

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    AAM_CHECK_MSG(f != nullptr, "cannot open --json output path");
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("(json written to %s)\n", json_path.c_str());
  } else {
    std::printf("\n%s", json.c_str());
  }
  return 0;
}
