// Ablation (§7 "future work" extension): online selection of M.
//
// The paper's offline analysis (Fig 4) finds the optimum transaction size
// M_min per machine and thread count; §7 sketches a runtime that picks M
// online. This ablation runs the AamRuntime with (a) fixed M values
// bracketing the optimum and (b) the AdaptiveBatch controller, on two
// workloads:
//   * scatter  — every operator touches its own vertex (overhead-bound:
//                big M wins);
//   * hotspot  — operators hammer a small hot set (abort-bound: small M
//                wins).
// The controller should land within ~2x of the best fixed M on both,
// without knowing the workload.

#include "bench_common.hpp"
#include "core/runtime.hpp"

namespace {

using namespace aam;

double run_workload(const model::MachineConfig& config, model::HtmKind kind,
                    int threads, int fixed_m, bool adaptive, bool hotspot,
                    std::uint64_t items, std::uint64_t seed, int* final_m,
                    const check::CheckConfig& check_cfg) {
  mem::SimHeap heap(std::size_t{1} << 24);
  htm::DesMachine machine(config, kind, threads, heap, seed);
  bench::ScopedChecker scoped(machine, check_cfg);
  const std::uint64_t span = hotspot ? 16 : items;
  auto data = heap.alloc<std::uint64_t>(span * 8);
  core::AamRuntime rt(machine,
                      {.batch = fixed_m, .decorator = scoped.decorator()});
  core::AdaptiveBatch controller;
  if (adaptive) rt.set_adaptive(&controller);
  rt.for_each(items, [&](auto& access, std::uint64_t i) {
    access.fetch_add(data[(i % span) * 8], std::uint64_t{1});
  });
  if (final_m != nullptr) *final_m = adaptive ? controller.batch() : fixed_m;
  return machine.makespan();
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  bench::BenchIo io;
  io.csv_path = cli.get_string("csv", "");
  const auto items = static_cast<std::uint64_t>(cli.get_int("items", 1 << 16));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const check::CheckConfig check_cfg = check::check_flag(cli);
  const int host_threads = bench::get_host_threads(cli);
  (void)host_threads;
  cli.check_unknown();

  bench::print_header(
      "Ablation — online selection of M (§7 extension)",
      "Fixed transaction sizes vs the AdaptiveBatch controller on an "
      "overhead-bound and an abort-bound workload (BGQ short mode, T=16).");

  const auto& config = model::bgq();
  const auto kind = model::HtmKind::kBgqShort;

  for (bool hotspot : {false, true}) {
    util::Table table({"policy", "runtime", "vs best fixed", "final M"});
    double best_fixed = 0;
    std::vector<std::pair<std::string, std::pair<double, int>>> rows;
    for (int m : {1, 8, 32, 80, 144, 320}) {
      int final_m = 0;
      const double t = run_workload(config, kind, 16, m, false, hotspot,
                                    items, seed, &final_m, check_cfg);
      rows.emplace_back("fixed M=" + std::to_string(m),
                        std::make_pair(t, final_m));
      if (best_fixed == 0 || t < best_fixed) best_fixed = t;
    }
    int final_m = 0;
    const double adaptive_t = run_workload(config, kind, 16, 8, true, hotspot,
                                           items, seed, &final_m, check_cfg);
    rows.emplace_back("adaptive", std::make_pair(adaptive_t, final_m));

    for (const auto& [name, tm] : rows) {
      table.row().cell(name).cell(util::format_time_ns(tm.first))
          .cell(bench::speedup_str(tm.first / best_fixed) + "x")
          .cell(tm.second);
    }
    table.print(hotspot ? "hotspot workload (abort-bound)"
                        : "scatter workload (overhead-bound)");
    io.maybe_write_csv(table, hotspot ? "hotspot" : "scatter");
  }
  return 0;
}
