#pragma once

// Shared scaffolding for the figure/table reproduction harnesses.
//
// Every bench binary:
//  * runs with fast scaled-down defaults (seconds on a small host) and
//    accepts --scale / size flags to approach the paper's sizes;
//  * prints an aligned table with the same rows/series the paper reports,
//    plus paper-vs-measured columns where the paper states numbers;
//  * optionally mirrors rows to CSV via --csv=<path>.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "check/check.hpp"
#include "fault/fault.hpp"
#include "htm/des_engine.hpp"
#include "mem/sim_heap.hpp"
#include "model/machines.hpp"
#include "net/cluster.hpp"
#include "recovery/manager.hpp"
#include "sim/shard.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace aam::bench {

/// Thread counts for the three §5.5 scenarios on a machine: T=1, one
/// thread per core, one thread per SMT resource.
inline std::vector<int> standard_thread_counts(const model::MachineConfig& m) {
  return {1, m.threads_per_core_one(), m.max_threads()};
}

/// The HTM kinds analyzed on a machine plus its atomics baseline.
inline const char* machine_atomic_name(const model::MachineConfig& m) {
  return m.name == "BGQ" ? "BGQ-CAS" : "Has-CAS";
}

struct BenchIo {
  util::Cli* cli = nullptr;
  std::string csv_path;

  void maybe_write_csv(const util::Table& table, const std::string& suffix) {
    if (csv_path.empty()) return;
    const std::string path =
        suffix.empty() ? csv_path : csv_path + "." + suffix;
    table.write_csv(path);
    std::printf("(csv written to %s)\n", path.c_str());
  }
};

inline void print_header(const std::string& title, const std::string& what) {
  std::printf("\n=== %s ===\n%s\n\n", title.c_str(), what.c_str());
}

/// Pretty-prints a speedup with the paper's convention: values in
/// (0.99, 1.01) print as "~1".
inline std::string speedup_str(double s) {
  if (s > 0.99 && s < 1.01) return "~1";
  return util::format_double(s, 2);
}

/// Scope-bound dynamic analysis for one simulated run (--check=...). When
/// the config enables any checker, builds a check::Checker on `machine`
/// and exposes it as the ExecutorDecorator to thread into Options structs;
/// at scope end, reports violations to stderr and exits 3 so CI treats a
/// racy/non-serializable run as a failure. With --check=none (default)
/// everything is a no-op.
class ScopedChecker {
 public:
  ScopedChecker(htm::DesMachine& machine, const check::CheckConfig& config) {
    if (config.enabled()) {
      checker_ = std::make_unique<check::Checker>(machine, config);
    }
  }

  ScopedChecker(const ScopedChecker&) = delete;
  ScopedChecker& operator=(const ScopedChecker&) = delete;

  core::ExecutorDecorator* decorator() { return checker_.get(); }
  check::Checker* checker() { return checker_.get(); }

  ~ScopedChecker() {
    if (checker_ == nullptr || checker_->passed()) return;
    checker_->report(std::cerr);
    std::exit(3);
  }

 private:
  std::unique_ptr<check::Checker> checker_;
};

/// Scope-bound fault injection for one simulated run (--fault=<spec>).
/// Parses the spec against the machine's calibrated FaultProfile, builds a
/// fault::FaultInjector seeded like the run, and attaches it for the
/// scope's lifetime. Crash plans additionally install a
/// recovery::RecoveryManager (interval from crash.ckpt) so injected
/// crash-stops restore from the last checkpoint instead of aborting the
/// bench. With --fault=none (or any spec whose plan is inert) nothing is
/// installed and the run is bit-identical to a hook-free build.
class ScopedFault {
 public:
  ScopedFault(htm::DesMachine& machine, const std::string& spec,
              std::uint64_t seed)
      : machine_(&machine),
        plan_(fault::parse(spec, machine.config().fault)) {
    if (plan_.any()) {
      injector_ = std::make_unique<fault::FaultInjector>(
          plan_, seed, machine.num_threads());
      injector_->attach(machine);
    }
    if (plan_.crash_active()) {
      recovery_ = std::make_unique<recovery::RecoveryManager>(
          machine, recovery::RecoveryOptions{plan_.crash_ckpt_ns});
    }
  }

  /// Cluster flavor: also installs the network-side hook, and scopes
  /// brown-outs to the cluster's nodes.
  ScopedFault(net::Cluster& cluster, const std::string& spec,
              std::uint64_t seed)
      : machine_(&cluster.machine()),
        cluster_(&cluster),
        plan_(fault::parse(spec, cluster.config().fault)) {
    if (plan_.any()) {
      injector_ = std::make_unique<fault::FaultInjector>(
          plan_, seed, machine_->num_threads(), cluster.threads_per_node());
      injector_->attach(cluster);
    }
    if (plan_.crash_active()) {
      recovery_ = std::make_unique<recovery::RecoveryManager>(
          cluster, recovery::RecoveryOptions{plan_.crash_ckpt_ns});
    }
  }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  ~ScopedFault() {
    // The manager unregisters itself from the machine; drop it before the
    // hooks so no checkpoint can fire on a hook-less machine.
    recovery_.reset();
    if (injector_ == nullptr) return;
    machine_->set_fault_hook(nullptr);
    if (cluster_ != nullptr) cluster_->set_fault_hook(nullptr);
  }

  const fault::FaultPlan& plan() const { return plan_; }
  /// nullptr when the plan is inert ("none").
  fault::FaultInjector* injector() { return injector_.get(); }
  /// nullptr unless the plan has crash-stop faults.
  recovery::RecoveryManager* recovery() { return recovery_.get(); }

 private:
  htm::DesMachine* machine_ = nullptr;
  net::Cluster* cluster_ = nullptr;
  fault::FaultPlan plan_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<recovery::RecoveryManager> recovery_;
};

/// Read --fault=<spec> and syntax-check it up front so a malformed spec
/// exits 2 like every other bad flag value, instead of aborting mid-run.
/// Fault semantics still come from each machine's own FaultProfile when
/// ScopedFault re-parses the spec per run; the errors (unknown scenario or
/// key, bad number, unreadable @file) are profile-independent.
inline std::string get_fault_spec(util::Cli& cli) {
  const std::string spec = cli.get_string("fault", "none");
  fault::FaultPlan plan;
  const auto error = fault::try_parse(spec, model::FaultProfile{}, plan);
  if (error.has_value()) {
    std::cerr << "invalid --fault=" << spec << "; " << *error << "\n";
    std::exit(2);
  }
  return spec;
}

/// Read --host-threads=N|max and install it as the process-wide worker
/// count for the parallel DES backend (sim::ShardRunner). N=1 (the
/// default) is the strict sequential engine: shard jobs run inline on the
/// caller with no thread machinery, and every simulated result is
/// bit-identical at any other N — the backend only changes which host
/// thread executes an independent shard, never the simulated schedule.
/// Exits 2 on a malformed value, like every other bad flag.
inline int get_host_threads(util::Cli& cli) {
  const std::string raw = cli.get_string("host-threads", "");
  if (!raw.empty()) {
    int n = 0;
    if (raw == "max") {
      n = sim::max_host_threads();
    } else {
      char* end = nullptr;
      const long v = std::strtol(raw.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || v < 1 || v > 1024) {
        std::cerr << "invalid --host-threads=" << raw
                  << "; expected an integer >= 1 or \"max\"\n";
        std::exit(2);
      }
      n = static_cast<int>(v);
    }
    sim::set_host_threads(n);
  }
  return sim::host_threads();
}

}  // namespace aam::bench
