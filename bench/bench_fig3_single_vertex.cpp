// Figure 3 + Tables 3c/3f (§5.4): single-vertex intra-node activities.
//
// Activity 1 — "marking a vertex as visited" (the BFS/SSSP primitive):
//   each of T threads marks ONE shared vertex `ops` times, with an atomic
//   CAS or the equivalent transaction. ops=10 models the low-contention /
//   sparse-graph case (Fig 3a), ops=100 the dense one (Fig 3b).
// Activity 2 — "incrementing a vertex' rank" (the PageRank primitive):
//   same shape with ACC / a read-add-write transaction (Fig 3d/3e).
//
// Reported per (machine, mechanism, T): mean total time over repetitions
// and the abort breakdown (memory conflicts / buffer overflows / other),
// reproducing the Tables 3c and 3f rows at T=8 (Haswell) and T=64 (BGQ).
//
// Paper shapes to observe: atomics win for single-vertex activities; the
// HTM variant of ACC aborts far more than the HTM variant of CAS (a marked
// vertex is only *read* by later transactions; a rank is written by every
// one); HLE collapses under contention (serialize-after-first-abort);
// BG/Q HTM degrades steeply with T because its aborts are expensive.

#include <memory>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace aam;

enum class Mechanism { kAtomic, kHtm };
enum class Activity { kMarkVisited, kIncrementRank };

const char* activity_name(Activity a) {
  return a == Activity::kMarkVisited ? "mark-visited" : "increment-rank";
}

class SingleVertexWorker : public htm::Worker {
 public:
  // `unconditional_store` selects the naive HTM translation of the mark
  // (store 1 regardless of the current value), which conflicts on every
  // overlap. The default checks first, like the optimized Graph500 codes;
  // pass --naive-mark to explore the write-always variant.
  SingleVertexWorker(Activity activity, Mechanism mechanism,
                     bool unconditional_store)
      : activity_(activity), mechanism_(mechanism),
        unconditional_store_(unconditional_store) {}

  void start_rep(std::uint64_t* visited, double* rank, int ops) {
    visited_ = visited;
    rank_ = rank;
    left_ = ops;
  }

  bool next(htm::ThreadCtx& ctx) override {
    if (left_ == 0) return false;
    --left_;
    if (mechanism_ == Mechanism::kAtomic) {
      if (activity_ == Activity::kMarkVisited) {
        ctx.cas(*visited_, std::uint64_t{0}, std::uint64_t{1});
      } else {
        ctx.fetch_add(*rank_, 0.125);
      }
      return true;
    }
    if (activity_ == Activity::kMarkVisited) {
      if (unconditional_store_) {
        ctx.stage_transaction([v = visited_](htm::Txn& tx) {
          tx.store(*v, std::uint64_t{1});
        });
      } else {
        ctx.stage_transaction([v = visited_](htm::Txn& tx) {
          if (tx.load(*v) == 0) tx.store(*v, std::uint64_t{1});
        });
      }
    } else {
      ctx.stage_transaction([r = rank_](htm::Txn& tx) {
        tx.fetch_add(*r, 0.125);
      });
    }
    return true;
  }

 private:
  Activity activity_;
  Mechanism mechanism_;
  bool unconditional_store_ = false;
  std::uint64_t* visited_ = nullptr;
  double* rank_ = nullptr;
  int left_ = 0;
};

struct Measurement {
  double mean_total_ns = 0;
  htm::HtmStats stats;
};

bool g_naive_mark = false;  // --naive-mark: HTM mark stores unconditionally

Measurement measure(const model::MachineConfig& config, model::HtmKind kind,
                    Mechanism mechanism, Activity activity, int threads,
                    int ops, int reps) {
  mem::SimHeap heap(std::size_t{1} << 22);
  htm::DesMachine machine(config, kind, threads, heap);
  // One shared vertex per repetition, each on its own line.
  auto visited = heap.alloc<std::uint64_t>(static_cast<std::size_t>(reps) * 8);
  auto ranks = heap.alloc<double>(static_cast<std::size_t>(reps) * 8);

  std::vector<std::unique_ptr<SingleVertexWorker>> workers;
  for (int t = 0; t < threads; ++t) {
    workers.push_back(std::make_unique<SingleVertexWorker>(
        activity, mechanism, g_naive_mark));
    machine.set_worker(static_cast<std::uint32_t>(t), workers.back().get());
  }

  int rep = 0;
  auto arm = [&] {
    for (auto& w : workers) {
      w->start_rep(&visited[static_cast<std::size_t>(rep) * 8],
                   &ranks[static_cast<std::size_t>(rep) * 8], ops);
    }
    ++rep;
  };
  arm();
  machine.set_quiescence_hook([&](htm::DesMachine& m) {
    if (rep >= reps) return false;
    arm();
    m.barrier_release(0.0);
    return true;
  });
  machine.run();
  machine.set_quiescence_hook(nullptr);

  Measurement out;
  out.mean_total_ns = machine.makespan() / static_cast<double>(reps);
  out.stats = machine.stats();
  return out;
}

struct Variant {
  const model::MachineConfig* config;
  model::HtmKind kind;  // meaningful for kHtm only
  Mechanism mechanism;
  const char* label;
};

void run_activity(Activity activity, int ops, int reps,
                  aam::bench::BenchIo& io) {
  const std::vector<Variant> variants = {
      {&model::has_c(), model::HtmKind::kRtm, Mechanism::kAtomic,
       activity == Activity::kMarkVisited ? "Has-CAS" : "Has-ACC"},
      {&model::has_c(), model::HtmKind::kRtm, Mechanism::kHtm, "Has-RTM"},
      {&model::has_c(), model::HtmKind::kHle, Mechanism::kHtm, "Has-HLE"},
      {&model::bgq(), model::HtmKind::kBgqShort, Mechanism::kAtomic,
       activity == Activity::kMarkVisited ? "BGQ-CAS" : "BGQ-ACC"},
      {&model::bgq(), model::HtmKind::kBgqShort, Mechanism::kHtm,
       "BGQ-HTM-S"},
      {&model::bgq(), model::HtmKind::kBgqLong, Mechanism::kHtm,
       "BGQ-HTM-L"},
  };

  char caption[128];
  std::snprintf(caption, sizeof caption,
                "%s, %d ops/thread (Fig 3%s)", activity_name(activity), ops,
                activity == Activity::kMarkVisited
                    ? (ops <= 10 ? "a" : "b")
                    : (ops <= 10 ? "d" : "e"));

  util::Table table({"mechanism", "T", "total time", "aborts", "serialized"});
  std::vector<std::pair<std::string, htm::HtmStats>> breakdown_rows;
  for (const Variant& v : variants) {
    for (int threads : {1, 2, 4, 8, 16, 32, 64}) {
      if (threads > v.config->max_threads()) continue;
      if (v.config->name != "BGQ" && threads > 8) continue;
      const Measurement m =
          measure(*v.config, v.kind, v.mechanism, activity, threads, ops,
                  reps);
      table.row().cell(v.label).cell(threads)
          .cell(util::format_time_ns(m.mean_total_ns))
          .cell(m.stats.total_aborts())
          .cell(m.stats.serialized);
      const bool table3_row =
          v.mechanism == Mechanism::kHtm &&
          ((v.config->name == "BGQ" && threads == 64) ||
           (v.config->name == "Has-C" && threads == 8 &&
            v.kind == model::HtmKind::kRtm));
      if (table3_row) breakdown_rows.emplace_back(v.label, m.stats);
    }
  }
  table.print(caption);
  io.maybe_write_csv(table, std::string(activity_name(activity)) + "_" +
                                std::to_string(ops));

  util::Table bd({"mechanism", "memory conflicts", "buffer overflows",
                  "other reasons"});
  for (const auto& [label, stats] : breakdown_rows) {
    bd.row().cell(label).cell(stats.aborts_conflict)
        .cell(stats.aborts_capacity).cell(stats.aborts_other);
  }
  bd.print(std::string("Abort breakdown (Table 3") +
           (activity == Activity::kMarkVisited ? "c" : "f") +
           "), T=8 (Has) / T=64 (BGQ), summed over reps");
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  aam::bench::BenchIo io;
  io.cli = &cli;
  io.csv_path = cli.get_string("csv", "");
  const int reps = static_cast<int>(cli.get_int("reps", 200));
  g_naive_mark = cli.get_bool("naive-mark", false);
  const int host_threads = bench::get_host_threads(cli);
  (void)host_threads;
  cli.check_unknown();

  aam::bench::print_header(
      "Figure 3 + Tables 3c/3f — single-vertex activities (§5.4)",
      "All threads hammer one shared vertex; atomics vs HTM variants.");

  for (int ops : {10, 100}) {
    run_activity(Activity::kMarkVisited, ops, reps, io);
  }
  for (int ops : {10, 100}) {
    run_activity(Activity::kIncrementRank, ops, reps, io);
  }
  return 0;
}
