// Figure 5c-5h (§5.6): activities spawned on a remote node.
//
//  5c  BGQ: mark 2^13 vertices stored on another node — one-sided PAMI-style
//      remote CAS vs atomic active messages executing HTM at the target,
//      sweeping the coalescing factor C. Paper: uncoalesced AMs ~5x slower;
//      crossover at C=16.
//  5d  BGQ: N-1 processes mark vertices owned by process N — remote CAS vs
//      coalesced AAM (C fixed). Paper: AAM wins ~5-7x.
//  5e/5f  Same pair with ACC (rank increments, hot vertex pool): the HTM
//      implementation of ACC aborts heavily, but coalescing still yields
//      ~20% over PAMI atomics at the sweet spot.
//  5g/5h  The C sweep on Has-P (2 nodes, MPI-3-RMA-style remote atomics).
//      Paper: C=2 already beats remote atomics.

#include <memory>

#include "bench_common.hpp"
#include "core/distributed.hpp"

namespace {

using namespace aam;

// Spawns `count` operator invocations for vertices owned by `target_node`.
class Producer : public core::DistributedRuntime::Worker {
 public:
  Producer(core::DistributedRuntime& rt, std::uint64_t count, int target_node,
           std::uint64_t vertex_pool, util::Rng rng)
      : core::DistributedRuntime::Worker(rt), rt2_(rt), left_(count),
        target_(target_node), pool_(vertex_pool), rng_(rng) {}

 protected:
  bool produce(htm::ThreadCtx& ctx) override {
    if (left_ == 0) return false;
    // A small burst per work unit keeps interleaving fine-grained.
    for (int burst = 0; burst < 8 && left_ > 0; ++burst) {
      --left_;
      rt2_.spawn(ctx, target_, rng_.next_below(pool_));
    }
    return true;
  }

 private:
  core::DistributedRuntime& rt2_;
  std::uint64_t left_;
  int target_;
  std::uint64_t pool_;
  util::Rng rng_;
};

struct Setup {
  const model::MachineConfig* config;
  model::HtmKind kind;
  /// Threads per node. The paper's C-sweep microbenchmark (5c/e/g/h) uses
  /// a single process pair, so one thread handles the incoming AMs; the
  /// node-scaling variants (5d/f) drive a fully-threaded target node.
  int recv_threads;
};

// HTM-over-AM run: `senders` nodes each spawn `ops` operator invocations
// for vertices on the last node; handler batches run as one transaction.
double run_htm_am(const Setup& setup, int num_nodes, int coalesce,
                  std::uint64_t ops, bool use_acc, std::uint64_t pool_size,
                  std::uint64_t seed, const check::CheckConfig& check_cfg,
                  const std::string& fault_spec) {
  mem::SimHeap heap(std::size_t{1} << 24);
  net::Cluster cluster(*setup.config, setup.kind, num_nodes,
                       setup.recv_threads, heap, seed);
  bench::ScopedChecker scoped(cluster.machine(), check_cfg);
  bench::ScopedFault fault(cluster, fault_spec, seed);
  // The remote vertex pool lives on the last node.
  auto visited = heap.alloc<std::uint64_t>(pool_size * 8);
  core::DistributedRuntime rt(cluster, {.coalesce = coalesce,
                                        .local_batch = coalesce,
                                        .decorator = scoped.decorator()});
  if (use_acc) {
    rt.set_operator([&](auto& access, std::uint64_t item) {
      access.fetch_add(visited[item * 8], std::uint64_t{1});
    });
  } else {
    rt.set_operator([&](auto& access, std::uint64_t item) {
      if (access.load(visited[item * 8]) == 0) {
        access.store(visited[item * 8], std::uint64_t{1});
      }
    });
  }

  const int target = num_nodes - 1;
  const util::Rng root(seed);
  std::vector<std::unique_ptr<htm::Worker>> workers;
  for (int node = 0; node < num_nodes; ++node) {
    for (int t = 0; t < setup.recv_threads; ++t) {
      if (node != target && t == 0) {
        workers.push_back(std::make_unique<Producer>(
            rt, ops, target, pool_size,
            root.fork(static_cast<std::uint64_t>(node) + 1)));
      } else {
        workers.push_back(
            std::make_unique<core::DistributedRuntime::Worker>(rt));
      }
      cluster.machine().set_worker(cluster.thread_of(node, t),
                                   workers.back().get());
    }
  }
  cluster.machine().run();
  AAM_CHECK(rt.drained());
  return cluster.machine().makespan();
}

// One-sided remote-atomics run (PAMI_Rmw / MPI-RMA style).
double run_remote_atomics(const Setup& setup, int num_nodes, std::uint64_t ops,
                          bool use_acc, std::uint64_t pool_size,
                          std::uint64_t seed) {
  mem::SimHeap heap(std::size_t{1} << 24);
  net::Cluster cluster(*setup.config, setup.kind, num_nodes,
                       setup.recv_threads, heap, seed);
  auto visited = heap.alloc<std::uint64_t>(pool_size * 8);
  net::RemoteAtomics rmw(cluster);

  class RmwProducer : public htm::Worker {
   public:
    RmwProducer(net::RemoteAtomics& rmw, std::span<std::uint64_t> pool,
                std::uint64_t ops, std::uint64_t pool_size, bool use_acc,
                util::Rng rng)
        : rmw_(rmw), pool_(pool), left_(ops), pool_size_(pool_size),
          use_acc_(use_acc), rng_(rng) {}
    bool next(htm::ThreadCtx& ctx) override {
      if (left_ == 0) return false;
      for (int burst = 0; burst < 8 && left_ > 0; ++burst) {
        --left_;
        auto& slot = pool_[rng_.next_below(pool_size_) * 8];
        if (use_acc_) {
          rmw_.acc_u64(ctx, slot, 1);
        } else {
          rmw_.cas_u64(ctx, slot, 0, 1);
        }
      }
      return true;
    }

   private:
    net::RemoteAtomics& rmw_;
    std::span<std::uint64_t> pool_;
    std::uint64_t left_;
    std::uint64_t pool_size_;
    bool use_acc_;
    util::Rng rng_;
  };

  const util::Rng root(seed);
  std::vector<std::unique_ptr<RmwProducer>> producers;
  for (int node = 0; node + 1 < num_nodes; ++node) {
    producers.push_back(std::make_unique<RmwProducer>(
        rmw, visited, ops, pool_size, use_acc,
        root.fork(static_cast<std::uint64_t>(node) + 1)));
    cluster.machine().set_worker(cluster.thread_of(node, 0),
                                 producers.back().get());
  }
  cluster.machine().run();
  return std::max(cluster.machine().makespan(), rmw.last_completion());
}

void sweep_coalescing(const Setup& setup, const char* figure, bool use_acc,
                      std::uint64_t ops, std::uint64_t pool, std::uint64_t seed,
                      const check::CheckConfig& check_cfg,
                      const std::string& fault_spec, bench::BenchIo& io) {
  const double atomics_time =
      run_remote_atomics(setup, 2, ops, use_acc, pool, seed);
  util::Table table({"mechanism", "C", "time", "vs remote atomics"});
  table.row().cell(use_acc ? "remote ACC (one-sided)" : "remote CAS (one-sided)")
      .cell("-").cell(util::format_time_ns(atomics_time)).cell("1.00x");
  for (int c : {1, 2, 4, 8, 16, 32, 64}) {
    const double t = run_htm_am(setup, 2, c, ops, use_acc, pool, seed,
                                check_cfg, fault_spec);
    table.row().cell("Inter-node-HTM").cell(c).cell(util::format_time_ns(t))
        .cell(bench::speedup_str(atomics_time / t) + "x");
  }
  table.print(std::string("Fig ") + figure + " — " + setup.config->name +
              ", " + (use_acc ? "increment rank (ACC)" : "mark visited (CAS)") +
              ", " + util::format_count(ops) + " remote ops");
  io.maybe_write_csv(table, figure);
}

void sweep_nodes(const Setup& setup, const char* figure, bool use_acc,
                 std::uint64_t ops, int coalesce, std::uint64_t pool,
                 std::uint64_t seed, const check::CheckConfig& check_cfg,
                 const std::string& fault_spec, bench::BenchIo& io) {
  util::Table table({"N", "remote atomics", "Inter-node-HTM-C", "speedup"});
  for (int n : {2, 4, 8, 16}) {
    const double at = run_remote_atomics(setup, n, ops, use_acc, pool, seed);
    const double am = run_htm_am(setup, n, coalesce, ops, use_acc, pool,
                                seed, check_cfg, fault_spec);
    table.row().cell(n).cell(util::format_time_ns(at))
        .cell(util::format_time_ns(am))
        .cell(bench::speedup_str(at / am) + "x");
  }
  table.print(std::string("Fig ") + figure + " — " + setup.config->name +
              ": N-1 processes target process N (C=" +
              std::to_string(coalesce) + ")");
  io.maybe_write_csv(table, figure);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  bench::BenchIo io;
  io.csv_path = cli.get_string("csv", "");
  const auto ops = static_cast<std::uint64_t>(cli.get_int("ops", 8192));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const check::CheckConfig check_cfg = check::check_flag(cli);
  const std::string fault_spec = bench::get_fault_spec(cli);
  const int host_threads = bench::get_host_threads(cli);
  (void)host_threads;
  cli.check_unknown();

  bench::print_header("Figure 5c-5h — inter-node activities (§5.6)",
                      "Atomic active messages + HTM at the target vs "
                      "one-sided remote atomics.");

  const Setup bgq_pair{&model::bgq(), model::HtmKind::kBgqShort, 1};
  const Setup bgq_acc{&model::bgq(), model::HtmKind::kBgqShort, 4};
  const Setup bgq_node{&model::bgq(), model::HtmKind::kBgqShort, 16};
  const Setup hasp_pair{&model::has_p(), model::HtmKind::kRtm, 1};

  // CAS family: distinct vertices -> negligible target-side conflicts.
  sweep_coalescing(bgq_pair, "5c", /*use_acc=*/false, ops, /*pool=*/ops,
                   seed, check_cfg, fault_spec, io);
  sweep_nodes(bgq_node, "5d", false, ops, /*coalesce=*/16, ops, seed,
              check_cfg, fault_spec, io);
  // ACC family: a hot pool of 64 vertices processed by several handler
  // threads -> the costly HTM ACC aborts of §5.4.2 appear at the target.
  sweep_coalescing(bgq_acc, "5e", /*use_acc=*/true, ops, /*pool=*/64, seed,
                   check_cfg, fault_spec, io);
  sweep_nodes(bgq_node, "5f", true, ops, 16, 64, seed, check_cfg, fault_spec,
              io);
  // Has-P over InfiniBand/MPI-RMA (2 nodes only, as on Greina).
  sweep_coalescing(hasp_pair, "5g", false, ops, ops, seed, check_cfg,
                   fault_spec, io);
  sweep_coalescing(hasp_pair, "5h", true, ops, 64, seed, check_cfg,
                   fault_spec, io);
  return 0;
}
