// Ablation (§4.1): implementing activities with HTM vs atomics vs locks.
//
// "Locks consistently entailed generally lower performance and we thus
// skip them due to space constraints" — this harness reproduces exactly
// that omitted comparison on the BFS visit workload, at each machine's
// optimum M, so the claim is checkable: fine-grained per-vertex locks pay
// two atomics per visit and HTM coarsening amortizes both synchronization
// styles away.

#include "algorithms/bfs.hpp"
#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "graph/gstats.hpp"

int main(int argc, char** argv) {
  using namespace aam;
  util::Cli cli(argc, argv);
  bench::BenchIo io;
  io.csv_path = cli.get_string("csv", "");
  const int scale = static_cast<int>(cli.get_int("scale", 14));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  cli.check_unknown();

  bench::print_header(
      "Ablation — activity mechanisms: HTM vs atomics vs locks (§4.1)",
      "Level-synchronous BFS visits on Kronecker 2^" + std::to_string(scale) +
          "; HTM at the per-machine optimum M.");

  util::Rng rng(seed);
  graph::KroneckerParams params;
  params.scale = scale;
  params.edge_factor = 16;
  const graph::Graph g = graph::kronecker(params, rng);
  const graph::Vertex root = graph::pick_nonisolated_vertex(g);
  const std::size_t heap_bytes =
      static_cast<std::size_t>(g.num_vertices()) * 8 + (1u << 22);

  struct Setup {
    const model::MachineConfig* config;
    model::HtmKind kind;
    int threads;
    int opt_m;
  };
  const std::vector<Setup> setups = {
      {&model::bgq(), model::HtmKind::kBgqShort, 64, 144},
      {&model::has_c(), model::HtmKind::kRtm, 8, 2},
  };

  for (const Setup& setup : setups) {
    util::Table table({"mechanism", "runtime", "vs atomics"});
    double atomics_time = 0;
    struct Row {
      std::string name;
      double time;
    };
    std::vector<Row> rows;
    for (auto mechanism : {algorithms::BfsMechanism::kAtomicCas,
                           algorithms::BfsMechanism::kFineLocks,
                           algorithms::BfsMechanism::kAamHtm}) {
      mem::SimHeap heap(heap_bytes);
      htm::DesMachine machine(*setup.config, setup.kind, setup.threads, heap,
                              seed);
      algorithms::BfsOptions options;
      options.root = root;
      options.mechanism = mechanism;
      options.batch = setup.opt_m;
      const auto r = algorithms::run_bfs(machine, g, options);
      AAM_CHECK(algorithms::validate_bfs_tree(g, root, r.parent));
      std::string name = to_string(mechanism);
      if (mechanism == algorithms::BfsMechanism::kAamHtm) {
        name += " (M=" + std::to_string(setup.opt_m) + ")";
      }
      if (mechanism == algorithms::BfsMechanism::kAtomicCas) {
        atomics_time = r.total_time_ns;
      }
      rows.push_back({name, r.total_time_ns});
    }
    for (const Row& row : rows) {
      table.row().cell(row.name).cell(util::format_time_ns(row.time))
          .cell(bench::speedup_str(atomics_time / row.time) + "x");
    }
    table.print(setup.config->name + ", T=" + std::to_string(setup.threads));
    io.maybe_write_csv(table, setup.config->name);
  }
  std::printf("\npaper claim (§4.1): locks consistently below atomics and "
              "HTM; coarse HTM on top.\n");
  return 0;
}
