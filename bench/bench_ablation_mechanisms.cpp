// Ablation (§4.1, Fig 3/6): one operator formulation, every mechanism.
//
// "Locks consistently entailed generally lower performance and we thus
// skip them due to space constraints" — this harness reproduces exactly
// that omitted comparison, and widens it: every algorithm of §3.3 runs
// under every synchronization mechanism of the executor layer
// (core/executor.hpp) — atomics, fine-grained locks, a global serial
// lock, STM, and HTM at M=1 and at the per-machine optimum M — from the
// *same* single-element operator bodies. Expected qualitative ordering
// (checkable against Fig 3 and Fig 6): plain atomics beat single-vertex
// HTM (per-transaction begin/commit overhead dominates), and coarsened
// HTM at the M sweet spot beats atomics by amortizing that overhead.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "algorithms/bfs.hpp"
#include "algorithms/boruvka.hpp"
#include "algorithms/coloring.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/st_connectivity.hpp"
#include "analysis/conflict.hpp"
#include "analysis/recommend.hpp"
#include "bench_common.hpp"
#include "core/auto_executor.hpp"
#include "core/executor.hpp"
#include "graph/generators.hpp"
#include "graph/gstats.hpp"
#include "sim/host_pool.hpp"

namespace {

using namespace aam;

struct RunResult {
  double time_ns = 0;
  htm::HtmStats stats;
};

using Runner = std::function<RunResult(htm::DesMachine&, core::Mechanism,
                                       int batch,
                                       core::ExecutorDecorator* decorator,
                                       const core::AutoPolicy* policy)>;

struct Algo {
  std::string name;
  bool weighted = false;  ///< runs on wg, so auto probes that workload
  Runner run;
};

graph::Vertex second_endpoint(const graph::Graph& g, graph::Vertex s) {
  for (graph::Vertex v = g.num_vertices(); v-- > 0;) {
    if (v != s && !g.neighbors(v).empty()) return v;
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  bench::BenchIo io;
  io.csv_path = cli.get_string("csv", "");
  const int scale = static_cast<int>(cli.get_int("scale", 14));
  // Fig 6's BGQ gains live in the sparse regime (d ~ 4) and grow with
  // |V|; --scale=17 shows coarse HTM overtaking atomics on BGQ.
  const int edge_factor = static_cast<int>(cli.get_int("edge-factor", 2));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const int pr_iters = static_cast<int>(cli.get_int("pr-iters", 3));
  // The paper's optima (M=144 BGQ / M=2 Haswell) hold at |V| >= 2^20; the
  // conflict-bound optimum shrinks with |V| (see EXPERIMENTS.md), so the
  // scaled-down default sweep uses a mid-range M, like bench_fig6.
  const int bgq_m = static_cast<int>(cli.get_int("bgq-m", 32));
  const int has_m = static_cast<int>(cli.get_int("has-m", 2));
  // Restrict the sweep to one mechanism column ("htm" keeps both M=1 and
  // M=opt); default sweeps everything.
  std::vector<std::string> choices = {"all"};
  for (const auto m : core::all_mechanisms()) choices.push_back(core::to_string(m));
  choices.push_back("auto");
  const std::string only = cli.get_choice("mechanism", "all", choices);
  const check::CheckConfig check_cfg = check::check_flag(cli);
  const int host_threads = bench::get_host_threads(cli);
  cli.check_unknown();

  bench::print_header(
      "Ablation — mechanisms x algorithms: HTM vs atomics vs locks vs STM "
      "(§4.1)",
      "Every §3.3 algorithm under every executor mechanism, same operator "
      "bodies; Kronecker 2^" + std::to_string(scale) +
          " (weighted Erdos-Renyi for SSSP/Boruvka); HTM also at the "
          "per-machine optimum M.");

  // Shared inputs: one unweighted power-law graph, one weighted graph.
  util::Rng rng(seed);
  graph::KroneckerParams params;
  params.scale = scale;
  params.edge_factor = edge_factor;
  const graph::Graph g = graph::kronecker(params, rng);
  const graph::Vertex root = graph::pick_nonisolated_vertex(g);
  const graph::Vertex st_t = second_endpoint(g, root);

  util::Rng wrng(seed + 1);
  auto wedges = graph::erdos_renyi_edges(1500, 0.01, wrng);
  const auto weights =
      graph::random_weights(wedges.size(), 1.0f, 100.0f, wrng);
  const graph::Graph wg =
      graph::Graph::from_weighted_edges(1500, wedges, weights, true);
  const double mst_ref = algorithms::mst_reference_weight(wg);

  const std::vector<Algo> algos = {
      {"bfs", false,
       [&](htm::DesMachine& m, core::Mechanism mech, int batch,
           core::ExecutorDecorator* dec, const core::AutoPolicy* policy) {
         algorithms::BfsOptions o;
         o.root = root;
         o.mechanism = mech;
         o.batch = batch;
         o.decorator = dec;
         o.auto_policy = policy;
         const auto r = algorithms::run_bfs(m, g, o);
         AAM_CHECK(algorithms::validate_bfs_tree(g, root, r.parent));
         return RunResult{r.total_time_ns, r.stats};
       }},
      {"pagerank", false,
       [&](htm::DesMachine& m, core::Mechanism mech, int batch,
           core::ExecutorDecorator* dec, const core::AutoPolicy* policy) {
         algorithms::PageRankOptions o;
         o.iterations = pr_iters;
         o.mechanism = mech;
         o.batch = batch;
         o.decorator = dec;
         o.auto_policy = policy;
         const auto r = algorithms::run_pagerank(m, g, o);
         AAM_CHECK(!r.rank.empty());
         return RunResult{r.total_time_ns, r.stats};
       }},
      {"sssp", true,
       [&](htm::DesMachine& m, core::Mechanism mech, int batch,
           core::ExecutorDecorator* dec, const core::AutoPolicy* policy) {
         algorithms::SsspOptions o;
         o.source = 0;
         o.mechanism = mech;
         o.batch = batch;
         o.decorator = dec;
         o.auto_policy = policy;
         const auto r = algorithms::run_sssp(m, wg, o);
         AAM_CHECK(r.relaxations > 0);
         return RunResult{r.total_time_ns, r.stats};
       }},
      {"coloring", false,
       [&](htm::DesMachine& m, core::Mechanism mech, int batch,
           core::ExecutorDecorator* dec, const core::AutoPolicy* policy) {
         algorithms::ColoringOptions o;
         o.mechanism = mech;
         o.batch = batch;
         o.seed = seed;
         o.decorator = dec;
         o.auto_policy = policy;
         const auto r = algorithms::run_boman_coloring(m, g, o);
         AAM_CHECK(algorithms::validate_coloring(g, r.color));
         return RunResult{r.total_time_ns, r.stats};
       }},
      {"st-conn", false,
       [&](htm::DesMachine& m, core::Mechanism mech, int batch,
           core::ExecutorDecorator* dec, const core::AutoPolicy* policy) {
         algorithms::StConnOptions o;
         o.s = root;
         o.t = st_t;
         o.mechanism = mech;
         o.batch = batch;
         o.decorator = dec;
         o.auto_policy = policy;
         const auto r = algorithms::run_st_connectivity(m, g, o);
         AAM_CHECK(r.vertices_colored > 0);
         return RunResult{r.total_time_ns, r.stats};
       }},
      {"boruvka", true,
       [&](htm::DesMachine& m, core::Mechanism mech, int batch,
           core::ExecutorDecorator* dec, const core::AutoPolicy* policy) {
         algorithms::BoruvkaOptions o;
         o.mechanism = mech;
         o.batch = batch;
         o.decorator = dec;
         o.auto_policy = policy;
         const auto r = algorithms::run_boruvka(m, wg, o);
         AAM_CHECK(r.total_weight <= mst_ref * 1.0001 + 1.0);
         return RunResult{r.total_time_ns, r.stats};
       }},
  };

  struct Setup {
    const model::MachineConfig* config;
    model::HtmKind kind;
    int threads;
    int opt_m;
  };
  const std::vector<Setup> setups = {
      {&model::bgq(), model::HtmKind::kBgqShort, 64, bgq_m},
      {&model::has_c(), model::HtmKind::kRtm, 8, has_m},
  };

  struct Variant {
    std::string label;
    core::Mechanism mech;
    int batch;  ///< 0 = use the machine's optimum M
    bool is_auto = false;
  };

  const std::size_t heap_bytes = (std::size_t{1} << 20) * 64;

  for (const Setup& setup : setups) {
    std::vector<Variant> variants = {
        {"atomics", core::Mechanism::kAtomicOps, 0},
        {"fine-locks", core::Mechanism::kFineLocks, 0},
        {"serial-lock", core::Mechanism::kSerialLock, 0},
        {"stm", core::Mechanism::kStm, 0},
        {"htm M=1", core::Mechanism::kHtmCoarsened, 1},
        {"htm M=" + std::to_string(setup.opt_m),
         core::Mechanism::kHtmCoarsened, 0},
        {"auto", core::Mechanism::kHtmCoarsened, 0, true},
    };
    if (only != "all") {
      std::erase_if(variants, [&](const Variant& v) {
        return only != (v.is_auto ? "auto" : core::to_string(v.mech));
      });
    }

    // Static routing tables for the auto variant, one per input graph.
    const core::AutoPolicy policy_g = analysis::make_auto_policy(
        *setup.config, setup.kind,
        analysis::workload_from_graph(g, setup.threads, setup.opt_m));
    const core::AutoPolicy policy_wg = analysis::make_auto_policy(
        *setup.config, setup.kind,
        analysis::workload_from_graph(wg, setup.threads, setup.opt_m));

    // Each (algorithm, variant) pair is an independent cell (own heap and
    // machine), so the sweep runs on the parallel DES backend. The "vs
    // atomics" column is derived from the gathered slots afterwards, in
    // deterministic cell order, so the table is identical at any
    // --host-threads value. --check runs stay sequential: the checker's
    // verdict handling (ScopedChecker exits the process on a violation)
    // is not a per-shard effect.
    const std::size_t n_cells = algos.size() * variants.size();
    std::vector<RunResult> slots(n_cells);
    sim::ShardRunner runner(check_cfg.enabled() ? 1 : host_threads);
    runner.run(n_cells, [&](sim::ShardId cell_id) {
      const Algo& algo = algos[cell_id / variants.size()];
      const Variant& v = variants[cell_id % variants.size()];
      const int batch = v.batch == 0 ? setup.opt_m : v.batch;
      mem::SimHeap heap(heap_bytes);
      htm::DesMachine machine(*setup.config, setup.kind, setup.threads,
                              heap, seed);
      machine.bind_shard(cell_id);
      bench::ScopedChecker scoped(machine, check_cfg);
      // Private policy copy: AutoTelemetry is mutable inside the shared
      // per-graph policies, so parallel auto cells must not share one.
      const core::AutoPolicy policy_copy =
          algo.weighted ? policy_wg : policy_g;
      const core::AutoPolicy* policy = v.is_auto ? &policy_copy : nullptr;
      // Audit the auto dispatcher against its own capacity analysis.
      if (scoped.checker() != nullptr) {
        scoped.checker()->set_capacity_policy(policy);
      }
      slots[cell_id] = algo.run(machine, v.mech, batch,
                                scoped.decorator(), policy);
    });

    util::Table table({"algorithm", "mechanism", "runtime", "vs atomics",
                       "commits", "aborts", "cas", "acc"});
    for (std::size_t a = 0; a < algos.size(); ++a) {
      double atomics_time = 0;
      for (std::size_t vi = 0; vi < variants.size(); ++vi) {
        const Variant& v = variants[vi];
        const RunResult& r = slots[a * variants.size() + vi];
        if (v.mech == core::Mechanism::kAtomicOps) atomics_time = r.time_ns;
        const std::string speedup =
            atomics_time > 0 ? bench::speedup_str(atomics_time / r.time_ns) + "x"
                             : "-";
        table.row().cell(algos[a].name).cell(v.label)
            .cell(util::format_time_ns(r.time_ns)).cell(speedup)
            .cell(r.stats.committed).cell(r.stats.total_aborts())
            .cell(r.stats.atomic_cas).cell(r.stats.atomic_acc);
      }
    }
    table.print(setup.config->name + ", T=" + std::to_string(setup.threads));
    io.maybe_write_csv(table, setup.config->name);
  }
  std::printf(
      "\npaper claims (§4.1, Fig 3/6): atomics beat single-vertex HTM; "
      "coarse HTM at the optimum M overtakes atomics as |V| grows "
      "(BGQ: ~1x at 2^16, >1.3x at 2^17 — try --scale=17); locks trail "
      "both.\n");
  return 0;
}
