// Figure 5a/5b (§5.5.3): abort-reason composition vs T at fixed M=2,
// Has-C vs Has-P.
//
// The paper's "interesting insight": with growing T, Has-C accumulates
// *more buffer overflows than memory conflicts* (tiny 32KB L1 shared by
// SMT siblings evicting speculative state), while Has-P shows the reverse
// trend (its larger L1 rarely overflows, so conflicts dominate).

#include "algorithms/bfs.hpp"
#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "graph/gstats.hpp"

int main(int argc, char** argv) {
  using namespace aam;
  util::Cli cli(argc, argv);
  bench::BenchIo io;
  io.csv_path = cli.get_string("csv", "");
  const int scale = static_cast<int>(cli.get_int("scale", 14));
  const int edge_factor = static_cast<int>(cli.get_int("edge-factor", 16));
  const int batch = static_cast<int>(cli.get_int("batch", 2));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const check::CheckConfig check_cfg = check::check_flag(cli);
  const int host_threads = bench::get_host_threads(cli);
  (void)host_threads;
  cli.check_unknown();

  bench::print_header(
      "Figure 5a/5b — abort reasons vs T at M=" + std::to_string(batch) +
          " (§5.5.3)",
      "AAM BFS on Kronecker 2^" + std::to_string(scale) +
          "; memory conflicts vs buffer overflows, Has-C vs Has-P.");

  util::Rng rng(seed);
  graph::KroneckerParams params;
  params.scale = scale;
  params.edge_factor = edge_factor;
  const graph::Graph g = graph::kronecker(params, rng);
  const graph::Vertex root = graph::pick_nonisolated_vertex(g);
  const std::size_t heap_bytes =
      static_cast<std::size_t>(g.num_vertices()) * 8 + (1u << 22);

  util::Table table({"machine", "T", "conflicts", "overflows", "other",
                     "overflow share %", "dominant"});
  for (const model::MachineConfig* config : {&model::has_c(),
                                             &model::has_p()}) {
    for (int threads = 2; threads <= config->max_threads(); threads *= 2) {
      mem::SimHeap heap(heap_bytes);
      htm::DesMachine machine(*config, model::HtmKind::kRtm, threads, heap,
                              seed);
      bench::ScopedChecker scoped(machine, check_cfg);
      algorithms::BfsOptions options;
      options.root = root;
      options.batch = batch;
      options.decorator = scoped.decorator();
      const auto result = algorithms::run_bfs(machine, g, options);
      AAM_CHECK(algorithms::validate_bfs_tree(g, root, result.parent));
      const auto& s = result.stats;
      const double share =
          s.total_aborts()
              ? 100.0 * static_cast<double>(s.aborts_capacity) /
                    static_cast<double>(s.total_aborts())
              : 0.0;
      table.row().cell(config->name).cell(threads)
          .cell(s.aborts_conflict).cell(s.aborts_capacity)
          .cell(s.aborts_other).cell(share, 1)
          .cell(s.aborts_capacity > s.aborts_conflict ? "overflows"
                                                      : "conflicts");
    }
  }
  table.print("Abort composition (paper shape: Has-C overflow-dominated, "
              "Has-P conflict-dominated)");
  io.maybe_write_csv(table, "");
  return 0;
}
