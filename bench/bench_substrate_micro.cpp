// Substrate microbenchmarks (google-benchmark, wall-clock).
//
// Unlike the figure harnesses — which report *simulated* time from the
// calibrated machine models — these measure the real-world throughput of
// the library's own building blocks: the epoch-cleared footprint
// structures, the event queue, the RNG, the threaded STM engine, and the
// discrete-event machine's dispatch rate.

#include <benchmark/benchmark.h>

#include <thread>

#include "htm/des_engine.hpp"
#include "htm/stm_engine.hpp"
#include "mem/footprint.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace {

using namespace aam;

void BM_RngNext(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng());
}
BENCHMARK(BM_RngNext);

void BM_RngNextBelow(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_below(12345));
}
BENCHMARK(BM_RngNextBelow);

void BM_EpochSetInsert(benchmark::State& state) {
  mem::EpochSet set(1024);
  std::uint64_t key = 0;
  const auto batch = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    set.clear();
    for (std::uint64_t i = 0; i < batch; ++i) set.insert(key + i * 7);
    key += 1;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EpochSetInsert)->Arg(16)->Arg(256);

void BM_WordMapWriteBuffer(benchmark::State& state) {
  mem::WordMap map(1024);
  const auto batch = static_cast<std::uintptr_t>(state.range(0));
  for (auto _ : state) {
    map.clear();
    for (std::uintptr_t i = 0; i < batch; ++i) {
      map.insert_or_assign(0x10000 + i * 8, i);
    }
    std::uint64_t v = 0;
    benchmark::DoNotOptimize(map.lookup(0x10000, v));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_WordMapWriteBuffer)->Arg(16)->Arg(256);

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue queue;
  util::Rng rng(3);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      queue.push(rng.next_double() * 1000.0, 0, 0);
    }
    for (int i = 0; i < 64; ++i) benchmark::DoNotOptimize(queue.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_EventQueuePushPop);

void BM_FootprintTracker(benchmark::State& state) {
  mem::FootprintTracker tracker;
  tracker.configure(model::CacheGeometry{64, 64, 8}, 4096);
  for (auto _ : state) {
    tracker.reset();
    for (mem::LineId l = 0; l < 64; ++l) {
      benchmark::DoNotOptimize(tracker.add_write(l * 3));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_FootprintTracker);

void BM_StmCounterSingleThread(benchmark::State& state) {
  htm::StmEngine engine;
  std::uint64_t counter = 0;
  for (auto _ : state) {
    engine.atomically([&](htm::StmTxn& tx) {
      tx.fetch_add(counter, std::uint64_t{1});
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StmCounterSingleThread);

void BM_StmDisjointMultiThread(benchmark::State& state) {
  // Threads update disjoint words: measures the STM fast path under real
  // concurrency (no conflicts).
  static htm::StmEngine engine;
  alignas(64) static std::uint64_t slots[16 * 8];
  const auto tid = static_cast<std::size_t>(state.thread_index());
  for (auto _ : state) {
    engine.atomically([&](htm::StmTxn& tx) {
      tx.fetch_add(slots[tid * 8], std::uint64_t{1});
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StmDisjointMultiThread)->Threads(1)->Threads(4);

void BM_DesMachineEventRate(benchmark::State& state) {
  // Wall-clock cost per simulated transaction (the figure harnesses'
  // dominant cost): one thread committing small transactions.
  class W : public htm::Worker {
   public:
    std::uint64_t* x = nullptr;
    int left = 0;
    bool next(htm::ThreadCtx& ctx) override {
      if (left == 0) return false;
      --left;
      ctx.stage_transaction([this](htm::Txn& tx) {
        tx.fetch_add(*x, std::uint64_t{1});
      });
      return true;
    }
  };
  for (auto _ : state) {
    state.PauseTiming();
    mem::SimHeap heap(1 << 16);
    htm::DesMachine machine(model::has_c(), model::HtmKind::kRtm, 1, heap);
    W w;
    w.x = heap.alloc_one<std::uint64_t>(0);
    w.left = 1000;
    machine.set_worker(0, &w);
    state.ResumeTiming();
    machine.run();
    benchmark::DoNotOptimize(machine.makespan());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
}
BENCHMARK(BM_DesMachineEventRate);

}  // namespace

BENCHMARK_MAIN();
