// Figure 4 (§5.5): Graph500 BFS with hardware transactions of size M.
//
// For each machine (BGQ, Has-C, Has-P), each threading scenario
// (T=1, one thread per core, one per SMT resource), and each transaction
// size M, run the coarsened AAM BFS and compare against the atomic-CAS
// Graph500 baseline (the paper's horizontal lines). Reported per point:
// runtime, transactions, aborts, buffer overflows, serializations — plus,
// as in the paper's annotations, the ratio of serializations to aborts
// (BGQ) and of overflow aborts to all aborts (Haswell).
//
// Shapes to reproduce (§5.5 discussion):
//  * coarsening amortizes begin/commit: runtime first drops with M;
//  * beyond M_min aborts/serializations grow and the curve turns;
//  * BGQ short mode beats long mode at small M and inverts at large M;
//  * Has-C aborts become dominated by buffer overflows for large M
//    (32KB 8-way L1), while Has-P (larger L1) is barely affected;
//  * paper optima: M_min=80 (BGQ T=16), 144 (BGQ T=64), 2 (Has-C T>=4).

#include <map>

#include "algorithms/bfs.hpp"
#include "baselines/named.hpp"
#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "graph/gstats.hpp"

namespace {

using namespace aam;

struct Point {
  double time_ns = 0;
  htm::HtmStats stats;
};

Point run_point(const model::MachineConfig& config, model::HtmKind kind,
                int threads, int batch, const graph::Graph& g,
                graph::Vertex root, std::uint64_t seed, bool baseline,
                const check::CheckConfig& check_cfg) {
  const std::size_t heap_bytes =
      static_cast<std::size_t>(g.num_vertices()) * 8 + (1u << 22);
  mem::SimHeap heap(heap_bytes);
  htm::DesMachine machine(config, kind, threads, heap, seed);
  bench::ScopedChecker scoped(machine, check_cfg);
  algorithms::BfsOptions options;
  options.root = root;
  options.mechanism = baseline ? core::Mechanism::kAtomicOps
                               : core::Mechanism::kHtmCoarsened;
  options.batch = batch;
  options.decorator = scoped.decorator();
  const auto result = algorithms::run_bfs(machine, g, options);
  AAM_CHECK(algorithms::validate_bfs_tree(g, root, result.parent));
  return {result.total_time_ns, result.stats};
}

struct Scenario {
  const model::MachineConfig* config;
  std::vector<model::HtmKind> kinds;
};

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  bench::BenchIo io;
  io.csv_path = cli.get_string("csv", "");
  const int scale = static_cast<int>(cli.get_int("scale", 15));
  const int edge_factor = static_cast<int>(cli.get_int("edge-factor", 16));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto batch_list = cli.get_int_list(
      "batches", {1, 2, 4, 8, 16, 32, 48, 64, 80, 96, 128, 144, 176, 208,
                  240, 272, 320});
  const std::string only_machine = cli.get_string("machine", "");
  const check::CheckConfig check_cfg = check::check_flag(cli);
  const int host_threads = bench::get_host_threads(cli);
  (void)host_threads;
  cli.check_unknown();

  bench::print_header(
      "Figure 4 — BFS transaction-size sweep (§5.5)",
      "Kronecker 2^" + std::to_string(scale) + " x" +
          std::to_string(edge_factor) +
          "; AAM at each M vs the Graph500 atomics baseline.");

  util::Rng rng(seed);
  graph::KroneckerParams params;
  params.scale = scale;
  params.edge_factor = edge_factor;
  const graph::Graph g = graph::kronecker(params, rng);
  const graph::Vertex root = graph::pick_nonisolated_vertex(g);

  const std::vector<Scenario> scenarios = {
      {&model::bgq(), {model::HtmKind::kBgqShort, model::HtmKind::kBgqLong}},
      {&model::has_c(), {model::HtmKind::kRtm, model::HtmKind::kHle}},
      {&model::has_p(), {model::HtmKind::kRtm, model::HtmKind::kHle}},
  };

  // Paper-reported optima for the summary table.
  const std::map<std::pair<std::string, int>, int> paper_m_min = {
      {{"BGQ", 16}, 80}, {{"BGQ", 64}, 144},
      {{"Has-C", 4}, 2}, {{"Has-C", 8}, 2}};

  util::Table summary({"machine", "mode", "T", "baseline", "best AAM",
                       "M_min", "speedup", "paper M_min"});

  for (const Scenario& scenario : scenarios) {
    const auto& config = *scenario.config;
    if (!only_machine.empty() && config.name != only_machine) continue;
    for (int threads : bench::standard_thread_counts(config)) {
      const Point base = run_point(config, scenario.kinds[0], threads, 1, g,
                                   root, seed, /*baseline=*/true, check_cfg);
      util::Table table({"mode", "M", "runtime", "txns", "aborts",
                         "overflows", "serialized", "annot %"});
      table.row().cell("Atomic-CAS").cell("-")
          .cell(util::format_time_ns(base.time_ns)).cell("-").cell("-")
          .cell("-").cell("-").cell("-");

      for (model::HtmKind kind : scenario.kinds) {
        double best_time = 0;
        int best_m = 0;
        for (std::int64_t m64 : batch_list) {
          const int m = static_cast<int>(m64);
          const Point p = run_point(config, kind, threads, m, g, root, seed,
                                    false, check_cfg);
          const auto& s = p.stats;
          // BGQ annotation: serializations / aborts; Haswell: overflow
          // share of aborts (the percentages printed in Fig 4).
          const double annot =
              config.name == "BGQ"
                  ? (s.total_aborts()
                         ? 100.0 * static_cast<double>(s.serialized) /
                               static_cast<double>(s.total_aborts())
                         : 0.0)
                  : (s.total_aborts()
                         ? 100.0 * static_cast<double>(s.aborts_capacity) /
                               static_cast<double>(s.total_aborts())
                         : 0.0);
          table.row().cell(model::to_string(kind)).cell(m)
              .cell(util::format_time_ns(p.time_ns))
              .cell(s.started).cell(s.total_aborts())
              .cell(s.aborts_capacity).cell(s.serialized).cell(annot, 1);
          if (best_m == 0 || p.time_ns < best_time) {
            best_time = p.time_ns;
            best_m = m;
          }
        }
        const auto paper_it = paper_m_min.find({config.name, threads});
        summary.row().cell(config.name).cell(model::to_string(kind))
            .cell(threads).cell(util::format_time_ns(base.time_ns))
            .cell(util::format_time_ns(best_time)).cell(best_m)
            .cell(bench::speedup_str(base.time_ns / best_time))
            .cell(paper_it == paper_m_min.end()
                      ? std::string("-")
                      : std::to_string(paper_it->second));
      }
      table.print(config.name + ", T=" + std::to_string(threads));
      io.maybe_write_csv(table,
                         config.name + "_T" + std::to_string(threads));
    }
  }

  summary.print("Summary — optimum transaction sizes (paper: §5.5)");
  io.maybe_write_csv(summary, "summary");
  return 0;
}
