// Figure 7c/7d/7e (§6.2): distributed PageRank, AAM vs the PBGL-like
// active-message baseline, on Erdős–Rényi graphs.
//
// The paper scales (c) the node count N, (d) the thread/process count T,
// and (e) the per-node vertex count |V_i|, and finds AAM ~3-10x faster in
// every scenario thanks to activity coalescing and better utilization of
// intra-node parallelism.

#include "algorithms/pagerank.hpp"
#include "algorithms/pagerank_dist.hpp"
#include "bench_common.hpp"
#include "graph/generators.hpp"

namespace {

using namespace aam;

struct RunResult {
  double aam_ns = 0;
  double pbgl_ns = 0;
};

RunResult run_pair(const graph::Graph& g, int nodes, int threads,
                   int iterations, std::uint64_t seed,
                   const check::CheckConfig& check_cfg,
                   const std::string& fault_spec) {
  algorithms::DistPrOptions options;
  options.iterations = iterations;
  RunResult out;
  std::vector<double> aam_rank;
  {
    const graph::Block1D part(g.num_vertices(), nodes);
    mem::SimHeap heap(std::size_t{1} << 26);
    net::Cluster cluster(model::bgq(), model::HtmKind::kBgqShort, nodes,
                         threads, heap, seed);
    bench::ScopedChecker scoped(cluster.machine(), check_cfg);
    bench::ScopedFault fault(cluster, fault_spec, seed);
    options.mode = algorithms::DistPrMode::kAam;
    options.decorator = scoped.decorator();
    const auto r = run_distributed_pagerank(cluster, g, part, options);
    out.aam_ns = r.total_time_ns;
    aam_rank = r.rank;
  }
  {
    // PBGL has no threading (§6.2): one *process* per hardware thread, so
    // even node-local contributions cross the messaging layer.
    const graph::Block1D part(g.num_vertices(), nodes * threads);
    mem::SimHeap heap(std::size_t{1} << 26);
    net::Cluster cluster(model::bgq(), model::HtmKind::kBgqShort,
                         nodes * threads, 1, heap, seed);
    bench::ScopedChecker scoped(cluster.machine(), check_cfg);
    bench::ScopedFault fault(cluster, fault_spec, seed);
    options.mode = algorithms::DistPrMode::kPbgl;
    options.decorator = scoped.decorator();
    const auto r = run_distributed_pagerank(cluster, g, part, options);
    out.pbgl_ns = r.total_time_ns;
    // Both engines must compute the same ranks (up to float32 payloads).
    const auto reference = algorithms::pagerank_reference(
        g, iterations, options.damping);
    for (std::size_t i = 0; i < reference.size(); i += 97) {
      AAM_CHECK(std::abs(aam_rank[i] - reference[i]) < 1e-4);
      AAM_CHECK(std::abs(r.rank[i] - reference[i]) < 1e-4);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  bench::BenchIo io;
  io.csv_path = cli.get_string("csv", "");
  const auto base_vertices =
      static_cast<graph::Vertex>(cli.get_int("vertices", 1 << 13));
  const double er_p = cli.get_double("er-p", 0.005);
  const int iterations = static_cast<int>(cli.get_int("iterations", 3));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const check::CheckConfig check_cfg = check::check_flag(cli);
  const std::string fault_spec = bench::get_fault_spec(cli);
  const int host_threads = bench::get_host_threads(cli);
  (void)host_threads;
  cli.check_unknown();

  bench::print_header(
      "Figure 7c/7d/7e — distributed PageRank: AAM vs PBGL-like (§6.2)",
      "Erdős–Rényi p=" + util::format_double(er_p, 4) + ", BG/Q cluster "
      "(paper sizes up to 2^23 vertices scale via --vertices).");

  // --- 7c: scale the node count N.
  {
    util::Rng rng(seed);
    const graph::Graph g = graph::erdos_renyi(base_vertices, er_p, rng);
    util::Table table({"N", "T/node", "AAM", "PBGL-like", "speedup"});
    for (int nodes : {2, 4, 8, 16}) {
      const RunResult r = run_pair(g, nodes, 4, iterations, seed, check_cfg,
                                   fault_spec);
      table.row().cell(nodes).cell(4).cell(util::format_time_ns(r.aam_ns))
          .cell(util::format_time_ns(r.pbgl_ns))
          .cell(bench::speedup_str(r.pbgl_ns / r.aam_ns));
    }
    table.print("Fig 7c — scaling N (|V|=" +
                util::format_count(base_vertices) + ")");
    io.maybe_write_csv(table, "7c");
  }

  // --- 7d: scale the per-node thread count T.
  {
    util::Rng rng(seed);
    const graph::Graph g = graph::erdos_renyi(base_vertices, er_p, rng);
    util::Table table({"T/node", "N", "AAM", "PBGL-like", "speedup"});
    for (int threads : {1, 2, 4, 8, 16}) {
      const RunResult r = run_pair(g, 4, threads, iterations, seed,
                                   check_cfg, fault_spec);
      table.row().cell(threads).cell(4).cell(util::format_time_ns(r.aam_ns))
          .cell(util::format_time_ns(r.pbgl_ns))
          .cell(bench::speedup_str(r.pbgl_ns / r.aam_ns));
    }
    table.print("Fig 7d — scaling T (N=4)");
    io.maybe_write_csv(table, "7d");
  }

  // --- 7e: scale |V_i| (vertices per node) at fixed N.
  {
    util::Table table({"|V| total", "|V_i|", "AAM", "PBGL-like", "speedup"});
    for (int shift : {-2, -1, 0, 1}) {
      const auto n = static_cast<graph::Vertex>(
          shift >= 0 ? base_vertices << shift : base_vertices >> -shift);
      util::Rng rng(seed);
      // Keep the average degree constant as |V| grows (sparser p).
      const double p = er_p * static_cast<double>(base_vertices) /
                       static_cast<double>(n);
      const graph::Graph g = graph::erdos_renyi(n, p, rng);
      const RunResult r = run_pair(g, 4, 4, iterations, seed, check_cfg,
                                   fault_spec);
      table.row().cell(util::format_count(n))
          .cell(util::format_count(n / 4))
          .cell(util::format_time_ns(r.aam_ns))
          .cell(util::format_time_ns(r.pbgl_ns))
          .cell(bench::speedup_str(r.pbgl_ns / r.aam_ns));
    }
    table.print("Fig 7e — scaling |V_i| (N=4, T=4)");
    io.maybe_write_csv(table, "7e");
  }
  return 0;
}
