// Table 1 (§6.1.2): AAM performance on the 16 real-world SNAP graphs.
//
// Each graph is replaced by its synthetic structural analog (see
// graph/analogs.hpp), shrunk by --divisor (default 16) while preserving
// average degree and structure class. For every graph the harness runs:
//
//   BGQ   (T=64):  Graph500 baseline; AAM at M=24; AAM at the paper's
//                  per-graph optimum M.
//   Haswell (T=8): Graph500 baseline; AAM at M=2; AAM at the paper's
//                  per-graph optimum M; Galois-like fine locks; HAMA-like
//                  BSP engine.
//
// The table prints measured speedups side-by-side with Table 1's values.
// Expected shapes: CNs/WGs benefit most on BGQ; RNs are flat on BGQ but
// respond on Haswell; HAMA is 2-4 orders of magnitude slower (worst on
// high-diameter road networks).

#include "algorithms/bfs.hpp"
#include "baselines/bsp_engine.hpp"
#include "baselines/named.hpp"
#include "bench_common.hpp"
#include "graph/analogs.hpp"
#include "graph/gstats.hpp"

namespace {

using namespace aam;

double bfs_time(const model::MachineConfig& config, model::HtmKind kind,
                int threads, const graph::Graph& g, graph::Vertex root,
                std::uint64_t seed, core::Mechanism mechanism, int batch,
                const check::CheckConfig& check_cfg) {
  const std::size_t heap_bytes =
      static_cast<std::size_t>(g.num_vertices()) * 8 + (1u << 22);
  mem::SimHeap heap(heap_bytes);
  htm::DesMachine machine(config, kind, threads, heap, seed);
  bench::ScopedChecker scoped(machine, check_cfg);
  algorithms::BfsOptions options;
  options.root = root;
  options.mechanism = mechanism;
  options.batch = batch;
  options.decorator = scoped.decorator();
  const auto r = algorithms::run_bfs(machine, g, options);
  AAM_CHECK(algorithms::validate_bfs_tree(g, root, r.parent));
  return r.total_time_ns;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  bench::BenchIo io;
  io.csv_path = cli.get_string("csv", "");
  const auto divisor = static_cast<std::uint64_t>(cli.get_int("divisor", 16));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const bool run_hama = cli.get_bool("hama", true);
  const std::string only = cli.get_string("only", "");
  const check::CheckConfig check_cfg = check::check_flag(cli);
  const int host_threads = bench::get_host_threads(cli);
  (void)host_threads;
  cli.check_unknown();

  bench::print_header(
      "Table 1 — real-world graphs (synthetic structural analogs, §6.1.2)",
      "Analog graphs at 1/" + std::to_string(divisor) +
          " of published |V| (use --divisor=1 for full size; --only=cWT,... "
          "to subset).");

  util::Table bgq_table({"ID", "family", "|V|", "d",
                         "S g500 M=24", "paper", "opt M", "S g500 optM",
                         "paper"});
  util::Table has_table({"ID", "S g500 M=2", "paper", "S Galois M=2",
                         "paper", "opt M", "S g500 optM", "paper",
                         "S HAMA", "paper"});

  for (const auto& analog : graph::table1_catalog()) {
    if (!only.empty() && only.find(analog.id) == std::string::npos) continue;
    util::Rng rng(seed);
    const graph::Graph g = graph::synthesize(analog, divisor, rng);
    const graph::Vertex root = graph::pick_nonisolated_vertex(g);

    // ----- BGQ (T=64, short mode)
    const auto& bq = model::bgq();
    const auto kS = model::HtmKind::kBgqShort;
    const double bgq_base = bfs_time(bq, kS, 64, g, root, seed,
                                     core::Mechanism::kAtomicOps, 1,
                                     check_cfg);
    const double bgq_m24 = bfs_time(bq, kS, 64, g, root, seed,
                                    core::Mechanism::kHtmCoarsened, 24,
                                    check_cfg);
    const double bgq_opt =
        bfs_time(bq, kS, 64, g, root, seed, core::Mechanism::kHtmCoarsened,
                 analog.paper_bgq_opt_m, check_cfg);
    bgq_table.row().cell(analog.id).cell(graph::to_string(analog.family))
        .cell(util::format_count(g.num_vertices()))
        .cell(g.avg_degree(), 1)
        .cell(bench::speedup_str(bgq_base / bgq_m24))
        .cell(bench::speedup_str(analog.paper_bgq_s_m24))
        .cell(analog.paper_bgq_opt_m)
        .cell(bench::speedup_str(bgq_base / bgq_opt))
        .cell(bench::speedup_str(analog.paper_bgq_s_opt));

    // ----- Haswell (Has-C, T=8, RTM)
    const auto& hc = model::has_c();
    const auto kR = model::HtmKind::kRtm;
    const double has_base = bfs_time(hc, kR, 8, g, root, seed,
                                     core::Mechanism::kAtomicOps, 1,
                                     check_cfg);
    const double has_m2 = bfs_time(hc, kR, 8, g, root, seed,
                                   core::Mechanism::kHtmCoarsened, 2,
                                   check_cfg);
    const double has_opt =
        bfs_time(hc, kR, 8, g, root, seed, core::Mechanism::kHtmCoarsened,
                 analog.paper_has_opt_m, check_cfg);
    const double galois = bfs_time(hc, kR, 8, g, root, seed,
                                   core::Mechanism::kFineLocks, 1, check_cfg);
    double hama = 0;
    if (run_hama) {
      const std::size_t heap_bytes =
          static_cast<std::size_t>(g.num_vertices()) * 8 + (1u << 22);
      mem::SimHeap heap(heap_bytes);
      htm::DesMachine machine(hc, kR, 8, heap, seed);
      baselines::BspEngine::Result result;
      const auto level = baselines::bsp_bfs(machine, g, root, {}, &result);
      AAM_CHECK(level == graph::bfs_levels(g, root));
      hama = result.total_time_ns;
    }
    has_table.row().cell(analog.id)
        .cell(bench::speedup_str(has_base / has_m2))
        .cell(bench::speedup_str(analog.paper_has_s_g500_m2))
        .cell(bench::speedup_str(galois / has_m2))
        .cell(bench::speedup_str(analog.paper_has_s_galois_m2))
        .cell(analog.paper_has_opt_m)
        .cell(bench::speedup_str(has_base / has_opt))
        .cell(bench::speedup_str(analog.paper_has_s_g500_opt))
        .cell(run_hama ? bench::speedup_str(hama / has_opt) : std::string("-"))
        .cell(analog.paper_has_s_hama >= 1e4
                  ? std::string(">10^4")
                  : util::format_double(analog.paper_has_s_hama, 0));
  }

  bgq_table.print("BG/Q analysis (S = speedup of AAM over Graph500)");
  io.maybe_write_csv(bgq_table, "bgq");
  has_table.print("Haswell analysis");
  io.maybe_write_csv(has_table, "haswell");
  return 0;
}
