// Figure 7a/7b (§6.1.3): BFS strong scaling with the thread count T.
//
// Kronecker graph (paper: 2^21 vertices / 2^24 edges; scaled default
// 2^15/2^18). On BG/Q, AAM utilizes on-node parallelism better than
// Graph500 atomics; on Haswell both scale similarly, ahead of the
// Galois-like engine and ~2 orders of magnitude over HAMA (SNAP trails
// HAMA by another 2-3x). AAM runs at the scale-appropriate M
// (--aam-batch; the paper's 144 applies at |V|=2^21).

#include "algorithms/bfs.hpp"
#include "baselines/bsp_engine.hpp"
#include "baselines/named.hpp"
#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "graph/gstats.hpp"

namespace {

using namespace aam;

double bfs_time(const model::MachineConfig& config, model::HtmKind kind,
                int threads, const graph::Graph& g, graph::Vertex root,
                std::uint64_t seed, core::Mechanism mechanism, int batch,
                const check::CheckConfig& check_cfg) {
  const std::size_t heap_bytes =
      static_cast<std::size_t>(g.num_vertices()) * 8 + (1u << 22);
  mem::SimHeap heap(heap_bytes);
  htm::DesMachine machine(config, kind, threads, heap, seed);
  bench::ScopedChecker scoped(machine, check_cfg);
  algorithms::BfsOptions options;
  options.root = root;
  options.mechanism = mechanism;
  options.batch = batch;
  options.decorator = scoped.decorator();
  const auto r = algorithms::run_bfs(machine, g, options);
  AAM_CHECK(algorithms::validate_bfs_tree(g, root, r.parent));
  return r.total_time_ns;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  bench::BenchIo io;
  io.csv_path = cli.get_string("csv", "");
  const int scale = static_cast<int>(cli.get_int("scale", 15));
  const int edge_factor = static_cast<int>(cli.get_int("edge-factor", 8));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const bool run_hama = cli.get_bool("hama", true);
  // The paper's M=144 optimum holds at |V|=2^21; at scaled-down sizes the
  // conflict-bound optimum is smaller (see Fig 4 / EXPERIMENTS.md).
  const int aam_batch = static_cast<int>(cli.get_int("aam-batch", 16));
  const check::CheckConfig check_cfg = check::check_flag(cli);
  const int host_threads = bench::get_host_threads(cli);
  (void)host_threads;
  cli.check_unknown();

  bench::print_header(
      "Figure 7a/7b — BFS scalability with T (§6.1.3)",
      "Kronecker 2^" + std::to_string(scale) + " x" +
          std::to_string(edge_factor) + " (paper: 2^21 x 8).");

  util::Rng rng(seed);
  graph::KroneckerParams params;
  params.scale = scale;
  params.edge_factor = edge_factor;
  const graph::Graph g = graph::kronecker(params, rng);
  const graph::Vertex root = graph::pick_nonisolated_vertex(g);

  // --- 7a: BG/Q
  {
    util::Table table({"T", "AAM-BGQ (M=" + std::to_string(aam_batch) + ")",
                       "Graph500-BGQ", "AAM speedup"});
    for (int t : {1, 2, 4, 8, 16, 32, 64}) {
      const double aam = bfs_time(model::bgq(), model::HtmKind::kBgqShort, t,
                                  g, root, seed,
                                  core::Mechanism::kHtmCoarsened, aam_batch,
                                  check_cfg);
      const double base = bfs_time(model::bgq(), model::HtmKind::kBgqShort, t,
                                   g, root, seed,
                                   core::Mechanism::kAtomicOps, 1, check_cfg);
      table.row().cell(t).cell(util::format_time_ns(aam))
          .cell(util::format_time_ns(base))
          .cell(bench::speedup_str(base / aam));
    }
    table.print("Fig 7a — BG/Q");
    io.maybe_write_csv(table, "7a");
  }

  // --- 7b: Haswell with the full comparator set
  {
    util::Table table({"T", "AAM (M=2)", "Graph500", "Galois-like",
                       "HAMA-like", "SNAP-like"});
    for (int t : {1, 2, 4, 8}) {
      const double aam = bfs_time(model::has_c(), model::HtmKind::kRtm, t, g,
                                  root, seed,
                                  core::Mechanism::kHtmCoarsened, 2,
                                  check_cfg);
      const double base = bfs_time(model::has_c(), model::HtmKind::kRtm, t, g,
                                   root, seed,
                                   core::Mechanism::kAtomicOps, 1, check_cfg);
      const double galois = bfs_time(model::has_c(), model::HtmKind::kRtm, t,
                                     g, root, seed,
                                     core::Mechanism::kFineLocks, 1,
                                     check_cfg);
      double hama = 0;
      if (run_hama) {
        const std::size_t heap_bytes =
            static_cast<std::size_t>(g.num_vertices()) * 8 + (1u << 22);
        mem::SimHeap heap(heap_bytes);
        htm::DesMachine machine(model::has_c(), model::HtmKind::kRtm, t, heap,
                                seed);
        baselines::BspEngine::Result result;
        baselines::bsp_bfs(machine, g, root, {}, &result);
        hama = result.total_time_ns;
      }
      double snap = 0;
      {
        const std::size_t heap_bytes =
            static_cast<std::size_t>(g.num_vertices()) * 8 + (1u << 22);
        mem::SimHeap heap(heap_bytes);
        htm::DesMachine machine(model::has_c(), model::HtmKind::kRtm,
                                std::max(1, t), heap, seed);
        snap = baselines::snap_bfs(machine, g, root).total_time_ns;
      }
      table.row().cell(t).cell(util::format_time_ns(aam))
          .cell(util::format_time_ns(base))
          .cell(util::format_time_ns(galois))
          .cell(run_hama ? util::format_time_ns(hama) : std::string("-"))
          .cell(util::format_time_ns(snap));
    }
    table.print("Fig 7b — Haswell (Has-C)");
    io.maybe_write_csv(table, "7b");
  }
  return 0;
}
