// Figure 6 (§6.1.1): intra-node Graph500 BFS vs AAM over graph size and
// density.
//
// Kronecker power-law graphs with varying |V| and average degree; AAM runs
// at the §5.5 optimum M (144 for BGQ T=64, 2 for Has-C T=8). Paper shapes:
//   * BGQ: AAM up to ~2x (102%) for sparse graphs (~2M vertices, d~4);
//     the gain shrinks as d grows (denser -> more conflicting coarse
//     transactions).
//   * Haswell: a steady ~27% win, insensitive to d (M=2 transactions do
//     not pick up more conflicts as density grows).

#include <string>

#include "algorithms/bfs.hpp"
#include "analysis/conflict.hpp"
#include "analysis/recommend.hpp"
#include "baselines/named.hpp"
#include "bench_common.hpp"
#include "core/auto_executor.hpp"
#include "core/executor.hpp"
#include "graph/generators.hpp"
#include "graph/gstats.hpp"

namespace {

using namespace aam;

double run_one(const model::MachineConfig& config, model::HtmKind kind,
               int threads, int batch, const graph::Graph& g,
               graph::Vertex root, std::uint64_t seed,
               core::MechanismSelection selection,
               const check::CheckConfig& check_cfg) {
  const std::size_t heap_bytes =
      static_cast<std::size_t>(g.num_vertices()) * 8 + (1u << 22);
  mem::SimHeap heap(heap_bytes);
  htm::DesMachine machine(config, kind, threads, heap, seed);
  bench::ScopedChecker scoped(machine, check_cfg);
  // The auto policy probes the concrete input graph (degree, skew) the
  // sweep cell is about to run.
  core::AutoPolicy policy;
  algorithms::BfsOptions options;
  options.root = root;
  if (selection.is_auto()) {
    policy = analysis::make_auto_policy(
        config, kind, analysis::workload_from_graph(g, threads, batch));
    options.auto_policy = &policy;
    if (scoped.checker() != nullptr) {
      scoped.checker()->set_capacity_policy(&policy);
    }
  } else {
    options.mechanism = *selection.fixed;
  }
  options.batch = batch;
  options.decorator = scoped.decorator();
  const auto r = algorithms::run_bfs(machine, g, options);
  AAM_CHECK(algorithms::validate_bfs_tree(g, root, r.parent));
  return r.total_time_ns;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  bench::BenchIo io;
  io.csv_path = cli.get_string("csv", "");
  const auto scales = cli.get_int_list("scales", {14, 16});
  const auto degrees = cli.get_int_list("degrees", {2, 4, 8, 16, 32, 64});
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  // The paper's optima (144 / 2) apply at |V| >= 2^20; the conflict-bound
  // optimum shrinks with |V| (see EXPERIMENTS.md), so the default uses a
  // mid-range M for the scaled-down sweep.
  const int bgq_batch = static_cast<int>(cli.get_int("bgq-batch", 32));
  const int has_batch = static_cast<int>(cli.get_int("has-batch", 2));
  // Which mechanism plays the "AAM" role against the Graph500 atomics
  // baseline (default: coarse HTM, the paper's configuration).
  const core::MechanismSelection selection =
      core::mechanism_selection_flag(cli, "mechanism", "htm");
  const check::CheckConfig check_cfg = check::check_flag(cli);
  const int host_threads = bench::get_host_threads(cli);
  (void)host_threads;
  cli.check_unknown();

  bench::print_header(
      "Figure 6 — intra-node BFS overview: Graph500 vs AAM (§6.1.1)",
      "Kronecker graphs over |V| and average degree d; AAM at the §5.5 "
      "optimum M per machine (paper sizes 2^20..2^28 scale via --scales).");

  struct MachineRun {
    const model::MachineConfig* config;
    model::HtmKind kind;
    int threads;
    int batch;
  };
  const std::vector<MachineRun> machines = {
      {&model::bgq(), model::HtmKind::kBgqShort, 64, bgq_batch},
      {&model::has_c(), model::HtmKind::kRtm, 8, has_batch},
  };

  for (const MachineRun& mr : machines) {
    const std::string contender =
        std::string(selection.is_auto() ? "auto"
                                        : core::to_string(*selection.fixed)) +
        " (M=" + std::to_string(mr.batch) + ")";
    util::Table table({"|V|", "edge factor", "measured d", "Graph500",
                       contender, "speedup"});
    for (std::int64_t scale : scales) {
      for (std::int64_t d : degrees) {
        util::Rng rng(seed);
        graph::KroneckerParams params;
        params.scale = static_cast<int>(scale);
        // Undirected CSR doubles each generated edge, so edge_factor ~ d/2.
        params.edge_factor = std::max<int>(1, static_cast<int>(d / 2));
        const graph::Graph g = graph::kronecker(params, rng);
        const graph::Vertex root = graph::pick_nonisolated_vertex(g);
        const double base = run_one(
            *mr.config, mr.kind, mr.threads, mr.batch, g, root, seed,
            {.fixed = core::Mechanism::kAtomicOps}, check_cfg);
        const double aam =
            run_one(*mr.config, mr.kind, mr.threads, mr.batch, g, root,
                    seed, selection, check_cfg);
        table.row().cell("2^" + std::to_string(scale))
            .cell(std::uint64_t(params.edge_factor))
            .cell(g.avg_degree(), 1)
            .cell(util::format_time_ns(base))
            .cell(util::format_time_ns(aam))
            .cell(bench::speedup_str(base / aam));
      }
    }
    table.print(mr.config->name + ", T=" + std::to_string(mr.threads));
    io.maybe_write_csv(table, mr.config->name);
  }
  return 0;
}
