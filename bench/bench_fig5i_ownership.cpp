// Figure 5i (§5.7): distributed activities via the ownership protocol.
//
// Each process issues x transactions; each marks a local and b remote
// randomly selected vertices, acquiring the remote elements' ownership
// markers first (§4.3). The four paper scenarios:
//   O-1 (x=10^3, a=5, b=1)   O-2 (x=10^4, a=5, b=1)
//   O-3 (x=10^3, a=7, b=3)   O-4 (x=10^4, a=7, b=3)
// Expected shape: O-1 fastest; O-3 slower (more remote acquisitions);
// O-2/O-4 follow the same patterns with backoff overheads on top.

#include "bench_common.hpp"
#include "core/ownership.hpp"

int main(int argc, char** argv) {
  using namespace aam;
  util::Cli cli(argc, argv);
  bench::BenchIo io;
  io.csv_path = cli.get_string("csv", "");
  const int nodes = static_cast<int>(cli.get_int("nodes", 8));
  const auto vertices =
      static_cast<graph::Vertex>(cli.get_int("vertices", 1 << 14));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const int scale_x = static_cast<int>(cli.get_int("scale-x", 10));
  const int host_threads = bench::get_host_threads(cli);
  (void)host_threads;
  cli.check_unknown();

  bench::print_header(
      "Figure 5i — ownership protocol for distributed activities (§5.7)",
      "BGQ, " + std::to_string(nodes) + " nodes; x scaled by 1/" +
          std::to_string(scale_x) + " of the paper's 10^3/10^4 defaults "
          "(override with --scale-x=1).");

  struct Scenario {
    const char* name;
    int x, a, b;
  };
  const std::vector<Scenario> scenarios = {
      {"O-1", 1000 / scale_x, 5, 1},
      {"O-2", 10000 / scale_x, 5, 1},
      {"O-3", 1000 / scale_x, 7, 3},
      {"O-4", 10000 / scale_x, 7, 3},
  };

  util::Table table({"scenario", "x/process", "a", "b", "total time",
                     "CAS fails", "backoffs", "blocked", "time/txn"});
  for (const Scenario& s : scenarios) {
    mem::SimHeap heap(std::size_t{1} << 24);
    net::Cluster cluster(model::bgq(), model::HtmKind::kBgqShort, nodes, 1,
                         heap, seed);
    auto markers = heap.alloc<std::uint64_t>(vertices);
    auto values = heap.alloc<std::uint64_t>(vertices);
    graph::Block1D part(vertices, nodes);
    core::OwnershipProtocol proto(cluster, markers, values, part);
    core::OwnershipProtocol::Params params;
    params.txns_per_process = s.x;
    params.local_elements = s.a;
    params.remote_elements = s.b;
    params.seed = seed;
    const auto stats = proto.run(params);

    AAM_CHECK(stats.transactions_completed ==
              static_cast<std::uint64_t>(nodes) *
                  static_cast<std::uint64_t>(s.x));
    const double per_txn =
        stats.makespan_ns / static_cast<double>(stats.transactions_completed);
    table.row().cell(s.name).cell(s.x).cell(s.a).cell(s.b)
        .cell(util::format_time_ns(stats.makespan_ns))
        .cell(stats.marker_cas_failures).cell(stats.backoffs)
        .cell(stats.local_blocked).cell(util::format_time_ns(per_txn));
  }
  table.print("Ownership-protocol scenarios (total time to run all "
              "distributed transactions)");
  io.maybe_write_csv(table, "");
  std::printf("\npaper shape: O-1 fastest; O-3 slower than O-1 (more remote "
              "elements); O-2/O-4 mirror O-1/O-3 with backoff overheads.\n");
  return 0;
}
