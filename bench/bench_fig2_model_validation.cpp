// Figure 2 (§5.3): validation of the performance model.
//
// One thread executes activities that modify N distinct vertices, either as
// N atomic CAS operations or as one hardware transaction, for N swept over
// a range. The measured times are fitted to t(N) = A*N + B; the paper's
// claims to reproduce are:
//   * B_HTM > B_AT (transactions pay begin/commit overhead),
//   * A_HTM < A_AT (per-vertex cost grows slower than atomics),
//   * hence a crossover at modest N — coarse activities amortize HTM.
// Shown for Has-C RTM and BGQ long mode, as in the paper's plot.

#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "model/perf_model.hpp"

namespace {

using namespace aam;

class ActivityWorker : public htm::Worker {
 public:
  ActivityWorker(std::span<std::uint64_t> vertices, int n_per_activity,
                 int activities, bool use_htm)
      : vertices_(vertices), n_(n_per_activity), left_(activities),
        use_htm_(use_htm) {}

  bool next(htm::ThreadCtx& ctx) override {
    if (left_ == 0) return false;
    --left_;
    // Each activity touches n_ distinct vertices, one per cache line.
    const std::size_t base =
        (static_cast<std::size_t>(left_) * static_cast<std::size_t>(n_) * 8) %
        vertices_.size();
    if (use_htm_) {
      ctx.stage_transaction([this, base](htm::Txn& tx) {
        for (int i = 0; i < n_; ++i) {
          const std::size_t idx = (base + static_cast<std::size_t>(i) * 8) %
                                  vertices_.size();
          const auto v = tx.load(vertices_[idx]);
          tx.store(vertices_[idx], v + 1);
        }
      });
    } else {
      for (int i = 0; i < n_; ++i) {
        const std::size_t idx =
            (base + static_cast<std::size_t>(i) * 8) % vertices_.size();
        // The §5.4.1 "mark a vertex" CAS; the cost model charges the op
        // whether or not the compare succeeds.
        ctx.cas(vertices_[idx], std::uint64_t{0}, std::uint64_t{1});
      }
    }
    return true;
  }

 private:
  std::span<std::uint64_t> vertices_;
  int n_;
  int left_;
  bool use_htm_;
};

double measure(const model::MachineConfig& config, model::HtmKind kind,
               int n, int activities, bool use_htm) {
  mem::SimHeap heap(std::size_t{1} << 24);
  htm::DesMachine machine(config, kind, 1, heap);
  auto vertices = heap.alloc<std::uint64_t>(
      static_cast<std::size_t>(std::max(n * 8, 4096)));
  ActivityWorker worker(vertices, n, activities, use_htm);
  machine.set_worker(0, &worker);
  machine.run();
  return machine.makespan() / static_cast<double>(activities);
}

void run_machine(const model::MachineConfig& config, model::HtmKind kind,
                 aam::bench::BenchIo& io, int activities) {
  const std::vector<double> sizes = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  std::vector<double> atomic_times, htm_times;
  util::Table table({"machine", "mechanism", "N", "time/activity [ns]",
                     "time/vertex [ns]"});
  for (double n : sizes) {
    const int ni = static_cast<int>(n);
    const double at = measure(config, kind, ni, activities, false);
    const double ht = measure(config, kind, ni, activities, true);
    atomic_times.push_back(at);
    htm_times.push_back(ht);
    table.row().cell(config.name).cell(bench::machine_atomic_name(config))
        .cell(std::uint64_t(ni)).cell(at, 1).cell(at / n, 2);
    table.row().cell(config.name).cell(model::to_string(kind))
        .cell(std::uint64_t(ni)).cell(ht, 1).cell(ht / n, 2);
  }
  table.print("Measured activity times (" + config.name + ")");
  io.maybe_write_csv(table, config.name);

  const auto v = model::validate_model(config, kind, sizes, atomic_times,
                                       htm_times, /*use_cas=*/true);
  util::Table fit({"quantity", "atomics", std::string("HTM (") +
                                              model::to_string(kind) + ")"});
  fit.row().cell("slope A [ns/vertex]").cell(v.atomic_fit.slope, 2)
      .cell(v.htm_fit.slope, 2);
  fit.row().cell("intercept B [ns]").cell(v.atomic_fit.intercept, 2)
      .cell(v.htm_fit.intercept, 2);
  fit.row().cell("R^2").cell(v.atomic_fit.r2, 5).cell(v.htm_fit.r2, 5);
  fit.print("Linear model fit, t(N) = A*N + B");
  std::printf("crossover N*: measured %.1f, predicted-from-cost-tables %.1f\n",
              v.measured_crossover, v.predicted_crossover);
  std::printf("paper shape check: B_HTM > B_AT: %s;  A_HTM < A_AT: %s\n",
              v.htm_fit.intercept > v.atomic_fit.intercept ? "YES" : "NO",
              v.htm_fit.slope < v.atomic_fit.slope ? "YES" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  aam::bench::BenchIo io;
  io.cli = &cli;
  io.csv_path = cli.get_string("csv", "");
  const int activities = static_cast<int>(cli.get_int("activities", 2000));
  const int host_threads = bench::get_host_threads(cli);
  (void)host_threads;
  cli.check_unknown();

  aam::bench::print_header(
      "Figure 2 — performance model validation (§5.3)",
      "Single-thread activities over N vertices: N atomics vs one "
      "transaction; linear fit and crossover.");

  run_machine(model::has_c(), model::HtmKind::kRtm, io, activities);
  run_machine(model::bgq(), model::HtmKind::kBgqLong, io, activities);
  return 0;
}
