// aam_analyze: run the static effect-signature analysis over every
// operator body and report the results.
//
//   aam_analyze                       aligned signature + capacity tables
//   aam_analyze --json                machine-readable dump
//   aam_analyze --golden=PATH         diff against a committed golden file;
//                                     exit 1 (with a unified-ish diff) on drift
//   aam_analyze --write-golden=PATH   regenerate the golden file
//   aam_analyze --degree=D --chain=C  evaluation parameters for the
//                                     element-count and capacity columns
//   aam_analyze --recommend           mechanism recommendation table from
//                                     the conflict + capacity models, for a
//                                     workload probed at --scale/--edge-factor
//                                     with --threads/--batch concurrency
//                                     (combines with --json/--golden/
//                                     --write-golden like the default mode)
//
// CI runs `aam_analyze --golden=tests/golden/effect_signatures.txt` and
// `aam_analyze --recommend --golden=tests/golden/recommendations.txt`: any
// change to an operator body or to either model that shifts a signature or
// a recommendation must be accompanied by a regenerated golden, making the
// effect reviewable line-by-line.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/capacity.hpp"
#include "analysis/conflict.hpp"
#include "analysis/recommend.hpp"
#include "analysis/report.hpp"
#include "analysis/signature.hpp"
#include "util/cli.hpp"

namespace {

std::string read_file(const std::string& path, bool& ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ok = false;
    return {};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  ok = true;
  return buf.str();
}

/// Line-by-line diff: prints the first divergent lines of each side.
void print_drift(const std::string& expected, const std::string& actual) {
  std::istringstream exp(expected);
  std::istringstream act(actual);
  std::string eline;
  std::string aline;
  std::size_t lineno = 0;
  for (;;) {
    const bool has_e = static_cast<bool>(std::getline(exp, eline));
    const bool has_a = static_cast<bool>(std::getline(act, aline));
    ++lineno;
    if (!has_e && !has_a) break;
    if (has_e && has_a && eline == aline) continue;
    std::fprintf(stderr, "line %zu:\n", lineno);
    if (has_e) std::fprintf(stderr, "  -golden:  %s\n", eline.c_str());
    if (has_a) std::fprintf(stderr, "  +current: %s\n", aline.c_str());
  }
}

/// Writes or diffs one golden rendering; shared by both modes.
int run_golden(const std::string& what, const std::string& current,
               const std::string& golden_path,
               const std::string& write_golden_path,
               const std::string& regen_flags) {
  if (!write_golden_path.empty()) {
    std::ofstream out(write_golden_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "aam_analyze: cannot write %s\n",
                   write_golden_path.c_str());
      return 1;
    }
    out << current;
    std::printf("wrote %s (%zu bytes)\n", write_golden_path.c_str(),
                current.size());
    return 0;
  }
  bool ok = false;
  const std::string committed = read_file(golden_path, ok);
  if (!ok) {
    std::fprintf(stderr, "aam_analyze: cannot read golden %s\n",
                 golden_path.c_str());
    return 1;
  }
  if (committed != current) {
    std::fprintf(stderr,
                 "aam_analyze: %s drifted from %s\n"
                 "If the change is intentional, regenerate with:\n"
                 "  ./build/tools/aam_analyze %s--write-golden %s\n",
                 what.c_str(), golden_path.c_str(), regen_flags.c_str(),
                 golden_path.c_str());
    print_drift(committed, current);
    return 1;
  }
  std::printf("%s match %s\n", what.c_str(), golden_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  aam::util::Cli cli(argc, argv);
  const bool json = cli.get_bool("json", false);
  const bool recommend = cli.get_bool("recommend", false);
  const std::string golden_path = cli.get_string("golden", "");
  const std::string write_golden_path = cli.get_string("write-golden", "");
  const int degree = static_cast<int>(cli.get_int("degree", 16));
  const int chain = static_cast<int>(cli.get_int("chain", 8));
  const int scale = static_cast<int>(cli.get_int("scale", 16));
  const int edge_factor = static_cast<int>(cli.get_int("edge-factor", 8));
  const int threads = static_cast<int>(cli.get_int("threads", 0));
  const int batch = static_cast<int>(cli.get_int("batch", 16));
  cli.check_unknown();

  const auto signatures = aam::analysis::analyze_all();

  if (recommend) {
    const auto workload =
        aam::analysis::workload_for_scale(scale, edge_factor, threads, batch);
    const auto wbounds = aam::analysis::capacity_bounds(
        signatures, static_cast<int>(workload.mean_degree + 0.5),
        workload.chain);
    const auto recs =
        aam::analysis::recommend(signatures, wbounds, workload);
    if (!golden_path.empty() || !write_golden_path.empty()) {
      return run_golden(
          "mechanism recommendations",
          aam::analysis::render_recommend_golden(recs, workload), golden_path,
          write_golden_path, "--recommend ");
    }
    if (json) {
      std::printf(
          "%s\n",
          aam::analysis::render_recommend_json(recs, workload).c_str());
    } else {
      std::printf(
          "%s\n",
          aam::analysis::render_recommend_table(recs, workload).c_str());
    }
    return 0;
  }

  const auto bounds = aam::analysis::capacity_bounds(signatures, degree, chain);

  if (!golden_path.empty() || !write_golden_path.empty()) {
    return run_golden(
        "effect signatures",
        aam::analysis::render_golden(signatures, bounds, degree, chain),
        golden_path, write_golden_path, "");
  }

  if (json) {
    std::printf("%s\n",
                aam::analysis::render_json(signatures, bounds, degree, chain)
                    .c_str());
  } else {
    std::printf("%s\n",
                aam::analysis::render_table(signatures, bounds, degree, chain)
                    .c_str());
  }
  return 0;
}
