// aam_analyze: run the static effect-signature analysis over every
// operator body and report the results.
//
//   aam_analyze                       aligned signature + capacity tables
//   aam_analyze --json                machine-readable dump
//   aam_analyze --golden=PATH         diff against a committed golden file;
//                                     exit 1 (with a unified-ish diff) on drift
//   aam_analyze --write-golden=PATH   regenerate the golden file
//   aam_analyze --degree=D --chain=C  evaluation parameters for the
//                                     element-count and capacity columns
//
// CI runs `aam_analyze --golden=tests/golden/effect_signatures.txt`: any
// change to an operator body or to the analysis that shifts a signature
// must be accompanied by a regenerated golden, making effect changes
// reviewable line-by-line.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/capacity.hpp"
#include "analysis/report.hpp"
#include "analysis/signature.hpp"
#include "util/cli.hpp"

namespace {

std::string read_file(const std::string& path, bool& ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ok = false;
    return {};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  ok = true;
  return buf.str();
}

/// Line-by-line diff: prints the first divergent lines of each side.
void print_drift(const std::string& expected, const std::string& actual) {
  std::istringstream exp(expected);
  std::istringstream act(actual);
  std::string eline;
  std::string aline;
  std::size_t lineno = 0;
  for (;;) {
    const bool has_e = static_cast<bool>(std::getline(exp, eline));
    const bool has_a = static_cast<bool>(std::getline(act, aline));
    ++lineno;
    if (!has_e && !has_a) break;
    if (has_e && has_a && eline == aline) continue;
    std::fprintf(stderr, "line %zu:\n", lineno);
    if (has_e) std::fprintf(stderr, "  -golden:  %s\n", eline.c_str());
    if (has_a) std::fprintf(stderr, "  +current: %s\n", aline.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  aam::util::Cli cli(argc, argv);
  const bool json = cli.get_bool("json", false);
  const std::string golden_path = cli.get_string("golden", "");
  const std::string write_golden_path = cli.get_string("write-golden", "");
  const int degree = static_cast<int>(cli.get_int("degree", 16));
  const int chain = static_cast<int>(cli.get_int("chain", 8));
  cli.check_unknown();

  const auto signatures = aam::analysis::analyze_all();
  const auto bounds = aam::analysis::capacity_bounds(signatures, degree, chain);

  if (!write_golden_path.empty()) {
    const std::string golden =
        aam::analysis::render_golden(signatures, bounds, degree, chain);
    std::ofstream out(write_golden_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "aam_analyze: cannot write %s\n",
                   write_golden_path.c_str());
      return 1;
    }
    out << golden;
    std::printf("wrote %s (%zu bytes)\n", write_golden_path.c_str(),
                golden.size());
    return 0;
  }

  if (!golden_path.empty()) {
    const std::string current =
        aam::analysis::render_golden(signatures, bounds, degree, chain);
    bool ok = false;
    const std::string committed = read_file(golden_path, ok);
    if (!ok) {
      std::fprintf(stderr, "aam_analyze: cannot read golden %s\n",
                   golden_path.c_str());
      return 1;
    }
    if (committed != current) {
      std::fprintf(stderr,
                   "aam_analyze: effect signatures drifted from %s\n"
                   "If the change is intentional, regenerate with:\n"
                   "  ./build/tools/aam_analyze --write-golden %s\n",
                   golden_path.c_str(), golden_path.c_str());
      print_drift(committed, current);
      return 1;
    }
    std::printf("effect signatures match %s\n", golden_path.c_str());
    return 0;
  }

  if (json) {
    std::printf("%s\n",
                aam::analysis::render_json(signatures, bounds, degree, chain)
                    .c_str());
  } else {
    std::printf("%s\n",
                aam::analysis::render_table(signatures, bounds, degree, chain)
                    .c_str());
  }
  return 0;
}
