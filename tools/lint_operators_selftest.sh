#!/usr/bin/env sh
# Self-test for tools/lint_operators.sh against the known-good/known-bad
# fixtures in tools/lint_fixtures/. Guards the lint itself: a regression
# that silently accepts everything (or rejects clean operators) fails here
# before it can rot in CI.

set -u

here=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
lint="$here/lint_operators.sh"
fixtures="$here/lint_fixtures"
fail=0

if ! "$lint" "$fixtures/good_operator.hpp"; then
  echo "FAIL: good_operator.hpp rejected (false positive)" >&2
  fail=1
fi
if "$lint" "$fixtures/bad_raw_write.hpp" >/dev/null 2>&1; then
  echo "FAIL: bad_raw_write.hpp accepted (raw-write pass broken)" >&2
  fail=1
fi
if "$lint" "$fixtures/bad_access_param.hpp" >/dev/null 2>&1; then
  echo "FAIL: bad_access_param.hpp accepted (core::Access& pass broken)" >&2
  fail=1
fi
if "$lint" "$fixtures/bad_wallclock.hpp" >/dev/null 2>&1; then
  echo "FAIL: bad_wallclock.hpp accepted (wall-clock pass broken)" >&2
  fail=1
fi
if ! "$lint" "$fixtures/good_wallclock_marker.hpp"; then
  echo "FAIL: good_wallclock_marker.hpp rejected (allow marker broken)" >&2
  fail=1
fi
if "$lint" "$fixtures/bad_mechanism_literal.cpp" >/dev/null 2>&1; then
  echo "FAIL: bad_mechanism_literal.cpp accepted (mechanism pass broken)" >&2
  fail=1
fi
if ! "$lint" "$fixtures/good_mechanism_marker.cpp"; then
  echo "FAIL: good_mechanism_marker.cpp rejected (allow marker broken)" >&2
  fail=1
fi
if "$lint" "$fixtures/bad_unordered_iter.hpp" >/dev/null 2>&1; then
  echo "FAIL: bad_unordered_iter.hpp accepted (unordered-iter pass broken)" >&2
  fail=1
fi
if ! "$lint" "$fixtures/good_unordered_marker.hpp"; then
  echo "FAIL: good_unordered_marker.hpp rejected (lookup or marker broken)" >&2
  fail=1
fi
# The real tree must still be clean under both passes.
if ! "$lint"; then
  echo "FAIL: src/algorithms/ no longer passes the lint" >&2
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  echo "lint_operators self-test: OK"
fi
exit "$fail"
