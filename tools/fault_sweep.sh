#!/usr/bin/env sh
# Fault-scenario sweep: the two contracts of the aam::fault layer, checked
# over the canned scenario matrix at several seeds.
#
#  1. Fault-oblivious correctness — bench_fault_matrix runs every
#     algorithm x mechanism x machine cell under each scenario and
#     compares its schedule-invariant result projection against the
#     fault-free baseline in-process; a nonzero exit means an injected
#     fault changed an answer.
#  2. Determinism under faults — the same seed + the same fault spec must
#     produce byte-identical output (the matrix prints simulated-schedule-
#     derived counters such as drop/retransmit counts; any divergence in
#     the fault schedule or recovery path shows up in the diff).
#
# Usage: fault_sweep.sh <bench_fault_matrix-binary> [seeds...]
#   Seeds default to "1 2 3". Scale is fixed at 10, matching the golden
#   snapshot's sweep size. FAULT_SPEC restricts the sweep to one fault
#   spec (default "all" = every canned scenario) — the CI crash-matrix
#   job uses it to byte-diff the crash-restart/crash-combined cells in
#   isolation.

set -eu

if [ "$#" -lt 1 ]; then
  echo "usage: $0 <bench_fault_matrix-binary> [seeds...]" >&2
  exit 2
fi

bin="$1"
shift
seeds="${*:-1 2 3}"
spec="${FAULT_SPEC:-all}"

out_a=$(mktemp)
out_b=$(mktemp)
trap 'rm -f "$out_a" "$out_b"' EXIT

for seed in $seeds; do
  # Run 1: correctness (the binary exits 1 on any baseline mismatch).
  if ! "$bin" --scale=10 --seed="$seed" --fault="$spec" > "$out_a"; then
    echo "fault_sweep: baseline mismatch at seed $seed:" >&2
    grep MISMATCH "$out_a" >&2 || true
    exit 1
  fi
  # Run 2: determinism (same seed + spec => byte-identical output).
  "$bin" --scale=10 --seed="$seed" --fault="$spec" > "$out_b"
  if ! diff -u "$out_a" "$out_b"; then
    echo "fault_sweep: nondeterministic fault schedule at seed $seed" >&2
    exit 1
  fi
  echo "fault_sweep: seed $seed OK ($(grep -c ' OK' "$out_a") cells," \
       "deterministic across two runs)"
done
echo "fault_sweep: all seeds passed ($seeds)"
