#!/usr/bin/env sh
# Determinism regression: the simulator must be a pure function of its
# seed. Runs a bench binary twice with identical flags and diffs the full
# stdout (tables include simulated times, which hash the entire event
# history; with --check=footprint the checker additionally folds every
# committed word into an FNV digest inside each run).
#
# Usage: determinism_check.sh [--host-threads-compare] <binary> [args...]
#
# With --host-threads-compare, the two runs differ only in the parallel
# DES backend's worker count (--host-threads=1 vs --host-threads=4): the
# byte-diff then proves the backend's contract that host parallelism
# never changes simulated results. Use it with a bench whose output is
# purely simulated time (e.g. bench_ablation_mechanisms) — wall-clock
# columns would differ trivially.

set -eu

mode=same
if [ "${1:-}" = "--host-threads-compare" ]; then
  mode=host_threads
  shift
fi

if [ "$#" -lt 1 ]; then
  echo "usage: $0 [--host-threads-compare] <bench-binary> [args...]" >&2
  exit 2
fi

out_a=$(mktemp)
out_b=$(mktemp)
trap 'rm -f "$out_a" "$out_b"' EXIT

if [ "$mode" = "host_threads" ]; then
  "$@" --host-threads=1 > "$out_a"
  "$@" --host-threads=4 > "$out_b"
  label="--host-threads=1 vs --host-threads=4"
else
  "$@" > "$out_a"
  "$@" > "$out_b"
  label="two runs"
fi

if ! diff -u "$out_a" "$out_b"; then
  echo "determinism_check: $label diverged: $*" >&2
  exit 1
fi
echo "determinism_check: identical output across $label: $*"
