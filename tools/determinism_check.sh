#!/usr/bin/env sh
# Determinism regression: the simulator must be a pure function of its
# seed. Runs a bench binary twice with identical flags and diffs the full
# stdout (tables include simulated times, which hash the entire event
# history; with --check=footprint the checker additionally folds every
# committed word into an FNV digest inside each run).
#
# Usage: determinism_check.sh <binary> [args...]

set -eu

if [ "$#" -lt 1 ]; then
  echo "usage: $0 <bench-binary> [args...]" >&2
  exit 2
fi

out_a=$(mktemp)
out_b=$(mktemp)
trap 'rm -f "$out_a" "$out_b"' EXIT

"$@" > "$out_a"
"$@" > "$out_b"

if ! diff -u "$out_a" "$out_b"; then
  echo "determinism_check: two identical invocations diverged: $*" >&2
  exit 1
fi
echo "determinism_check: identical output across two runs: $*"
