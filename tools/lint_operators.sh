#!/usr/bin/env sh
# Lint: operator bodies must mutate shared state through core::Access.
#
# Scans every function/lambda in src/algorithms/ whose parameter list
# takes an access surface — a `core::Access&` parameter, a generic
# `(auto& access` lambda, or a templated `Acc& a` operator (the
# devirtualized spellings, see executor_impl.hpp) — and flags raw
# mutation syntax inside the body:
# subscripted assignments (x[i] = v, x[i] += v, ...) and subscripted
# increments (x[i]++, ++x[i]). Those writes bypass the synchronization
# mechanism entirely — no conflict detection, no modelled cost — which is
# exactly the bug class check::Checker's escaped-write detector catches at
# runtime; this catches the obvious spellings at review time.
#
# Pure POSIX sh + awk (no clang tooling required). Exit 0 = clean,
# exit 1 = violations printed one per line as file:line: code.

set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

status=0
for f in src/algorithms/*.cpp src/algorithms/*.hpp; do
  awk '
    # Track regions that run under an Access: from a signature line
    # mentioning core::Access&, a generic access lambda, or a templated
    # access parameter, to the close of its brace pair.
    /core::Access&|\(auto& access|\(Acc& a[,)]/ && region == 0 { region = 1; depth = 0; entered = 0 }
    region == 1 {
      line = $0
      sub(/\/\/.*/, "", line)  # strip trailing comments
      if (entered &&
          (line ~ /[A-Za-z_][A-Za-z0-9_]*\[[^]]*\][ \t]*(=[^=]|\+=|-=|\*=|\/=|\|=|&=|\^=|<<=|>>=|\+\+|--)/ ||
           line ~ /(\+\+|--)[ \t]*[A-Za-z_][A-Za-z0-9_]*\[/)) {
        printf "%s:%d: %s\n", FILENAME, FNR, $0
        bad = 1
      }
      opens = gsub(/{/, "{", line)
      closes = gsub(/}/, "}", line)
      if (opens > 0) entered = 1
      depth += opens - closes
      if (entered && depth <= 0) region = 0
    }
    END { exit bad ? 1 : 0 }
  ' "$f" || status=1
done

if [ "$status" -ne 0 ]; then
  echo "lint_operators: raw mutations inside core::Access operator bodies" >&2
  echo "(route them through access.store/cas/fetch_add instead)" >&2
fi
exit "$status"
