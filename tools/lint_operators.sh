#!/usr/bin/env sh
# Lint: operator bodies must mutate shared state through the access surface,
# and must take it as a *templated* parameter.
#
# Pass 1 — raw mutations. Scans every function/lambda whose parameter list
# takes an access surface — a generic `(auto& access` lambda or a templated
# `Acc& a` operator (the devirtualized spellings, see executor_impl.hpp) —
# and flags raw mutation syntax inside the body: subscripted assignments
# (x[i] = v, x[i] += v, ...) and subscripted increments (x[i]++, ++x[i]).
# Those writes bypass the synchronization mechanism entirely — no conflict
# detection, no modelled cost — which is exactly the bug class
# check::Checker's escaped-write detector catches at runtime; this catches
# the obvious spellings at review time.
#
# Pass 2 — virtual access parameters. After stripping // and /* */
# comments, flags any function parameter spelled `core::Access&`. Operator
# bodies must be templated on the access type (`template <typename Acc>`)
# so the executor can devirtualize the hot path; taking the virtual base
# directly reintroduces an indirect call per memory access and evades the
# static effect-signature analyzer, which replays operators through
# analysis::AbstractAccess via the same template seam.
#
# Usage: lint_operators.sh [file...]
#   With no arguments, lints src/algorithms/*.cpp and *.hpp.
#   With arguments, lints exactly those files (used by the self-test:
#   tools/lint_operators_selftest.sh runs this against known-good and
#   known-bad fixtures in tools/lint_fixtures/).
#
# Pure POSIX sh + awk (no clang tooling required). Exit 0 = clean,
# exit 1 = violations printed one per line as file:line: code.

set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
if [ "$#" -eq 0 ]; then
  cd "$repo_root"
  set -- src/algorithms/*.cpp src/algorithms/*.hpp
fi

status=0
for f in "$@"; do
  # Pass 1: raw subscripted mutations inside access-taking bodies.
  awk '
    # Track regions that run under an access surface: from a signature line
    # with a generic access lambda or a templated access parameter, to the
    # close of its brace pair.
    /\(auto& access|\(Acc& a[,)]/ && region == 0 { region = 1; depth = 0; entered = 0 }
    region == 1 {
      line = $0
      if (inblock) {
        i = index(line, "*/")
        if (i == 0) next
        line = substr(line, i + 2)
        inblock = 0
      }
      while ((s = index(line, "/*")) > 0) {
        e = index(substr(line, s + 2), "*/")
        if (e == 0) { line = substr(line, 1, s - 1); inblock = 1; break }
        line = substr(line, 1, s - 1) substr(line, s + e + 3)
      }
      sub(/\/\/.*/, "", line)  # strip trailing comments
      if (entered &&
          (line ~ /[A-Za-z_][A-Za-z0-9_]*\[[^]]*\][ \t]*(=[^=]|\+=|-=|\*=|\/=|\|=|&=|\^=|<<=|>>=|\+\+|--)/ ||
           line ~ /(\+\+|--)[ \t]*[A-Za-z_][A-Za-z0-9_]*\[/)) {
        printf "%s:%d: %s\n", FILENAME, FNR, $0
        bad = 1
      }
      opens = gsub(/{/, "{", line)
      closes = gsub(/}/, "}", line)
      if (opens > 0) entered = 1
      depth += opens - closes
      if (entered && depth <= 0) region = 0
    }
    END { exit bad ? 1 : 0 }
  ' "$f" || status=1

  # Pass 2: comment-stripped scan for `core::Access&` parameters.
  awk '
    {
      line = $0
      if (inblock) {
        i = index(line, "*/")
        if (i == 0) next
        line = substr(line, i + 2)
        inblock = 0
      }
      while ((s = index(line, "/*")) > 0) {
        e = index(substr(line, s + 2), "*/")
        if (e == 0) { line = substr(line, 1, s - 1); inblock = 1; break }
        line = substr(line, 1, s - 1) substr(line, s + e + 3)
      }
      sub(/\/\/.*/, "", line)
      if (line ~ /[(,][ \t]*(const[ \t]+)?core::Access[ \t]*&/) {
        printf "%s:%d: %s\n", FILENAME, FNR, $0
        bad = 1
      }
    }
    END { exit bad ? 1 : 0 }
  ' "$f" || status=1
done

if [ "$status" -ne 0 ]; then
  echo "lint_operators: operator bodies must route mutations through the" >&2
  echo "access surface (access.store/cas/fetch_add) and take it as a" >&2
  echo "templated Acc& parameter, never core::Access& directly" >&2
fi
exit "$status"
