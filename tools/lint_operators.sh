#!/usr/bin/env sh
# Lint: operator bodies must mutate shared state through the access surface,
# and must take it as a *templated* parameter.
#
# Pass 1 — raw mutations. Scans every function/lambda whose parameter list
# takes an access surface — a generic `(auto& access` lambda or a templated
# `Acc& a` operator (the devirtualized spellings, see executor_impl.hpp) —
# and flags raw mutation syntax inside the body: subscripted assignments
# (x[i] = v, x[i] += v, ...) and subscripted increments (x[i]++, ++x[i]).
# Those writes bypass the synchronization mechanism entirely — no conflict
# detection, no modelled cost — which is exactly the bug class
# check::Checker's escaped-write detector catches at runtime; this catches
# the obvious spellings at review time.
#
# Pass 2 — virtual access parameters. After stripping // and /* */
# comments, flags any function parameter spelled `core::Access&`. Operator
# bodies must be templated on the access type (`template <typename Acc>`)
# so the executor can devirtualize the hot path; taking the virtual base
# directly reintroduces an indirect call per memory access and evades the
# static effect-signature analyzer, which replays operators through
# analysis::AbstractAccess via the same template seam.
#
# Pass 4 — hardwired mechanism selection. Algorithms must leave mechanism
# choice to the executor dispatch (Options::mechanism, --mechanism=auto's
# AutoPolicy routing): after stripping comments, flags any `Mechanism::`
# literal inside src/algorithms/*.cpp. A literal there pins the algorithm
# to one synchronization mechanism, silently bypassing both the CLI flag
# and the static recommendation table. The rare legitimate mention (e.g.
# a comparison against the *configured* mechanism) is annotated with a
# `lint:allow-mechanism` comment marker.
#
# Pass 3 — nondeterminism sources. The simulator must be a pure function
# of its seed: simulated components draw randomness from util::Rng streams
# and time from the DES clock, never from the host. After stripping
# comments, flags std::rand/srand and wall-clock reads (gettimeofday,
# clock_gettime, steady_clock/system_clock/high_resolution_clock) in any
# file under src/ outside src/sim/ (the DES core legitimately defines the
# clock). Host-side measurement code that *must* read real time (the
# threaded execution baseline, the bench harnesses) annotates the line
# with a `lint:allow-wallclock` comment marker.
#
# Pass 5 — unordered-container iteration. std::unordered_map/set iterate
# in hash-table order, which varies with libstdc++ version, load factor
# history, and pointer values: any simulated-state or output-producing
# loop over one is a determinism bug of exactly the kind the golden
# snapshots exist to catch. After stripping comments, flags range-for
# loops and .begin()/.cbegin()/.rbegin() calls on any identifier declared
# as std::unordered_map/std::unordered_set anywhere in src/ (lookups are
# fine — only iteration is order-sensitive). The rare legitimate
# iteration (e.g. draining into a sorted vector before use) is annotated
# with a `lint:allow-unordered-iter` comment marker.
#
# Usage: lint_operators.sh [file...]
#   With no arguments, passes 1-2 lint src/algorithms/*.cpp and *.hpp,
#   pass 3 lints every src/**/*.cpp|hpp outside src/sim/, and pass 5
#   lints every src/**/*.cpp|hpp.
#   With arguments, all passes lint exactly those files (used by the
#   self-test: tools/lint_operators_selftest.sh runs this against
#   known-good and known-bad fixtures in tools/lint_fixtures/).
#
# Pure POSIX sh + awk (no clang tooling required). Exit 0 = clean,
# exit 1 = violations printed one per line as file:line: code.

set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
explicit_files=$#
if [ "$#" -eq 0 ]; then
  cd "$repo_root"
  set -- src/algorithms/*.cpp src/algorithms/*.hpp
fi

status=0
for f in "$@"; do
  # Pass 1: raw subscripted mutations inside access-taking bodies.
  awk '
    # Track regions that run under an access surface: from a signature line
    # with a generic access lambda or a templated access parameter, to the
    # close of its brace pair.
    /\(auto& access|\(Acc& a[,)]/ && region == 0 { region = 1; depth = 0; entered = 0 }
    region == 1 {
      line = $0
      if (inblock) {
        i = index(line, "*/")
        if (i == 0) next
        line = substr(line, i + 2)
        inblock = 0
      }
      while ((s = index(line, "/*")) > 0) {
        e = index(substr(line, s + 2), "*/")
        if (e == 0) { line = substr(line, 1, s - 1); inblock = 1; break }
        line = substr(line, 1, s - 1) substr(line, s + e + 3)
      }
      sub(/\/\/.*/, "", line)  # strip trailing comments
      if (entered &&
          (line ~ /[A-Za-z_][A-Za-z0-9_]*\[[^]]*\][ \t]*(=[^=]|\+=|-=|\*=|\/=|\|=|&=|\^=|<<=|>>=|\+\+|--)/ ||
           line ~ /(\+\+|--)[ \t]*[A-Za-z_][A-Za-z0-9_]*\[/)) {
        printf "%s:%d: %s\n", FILENAME, FNR, $0
        bad = 1
      }
      opens = gsub(/{/, "{", line)
      closes = gsub(/}/, "}", line)
      if (opens > 0) entered = 1
      depth += opens - closes
      if (entered && depth <= 0) region = 0
    }
    END { exit bad ? 1 : 0 }
  ' "$f" || status=1

  # Pass 2: comment-stripped scan for `core::Access&` parameters.
  awk '
    {
      line = $0
      if (inblock) {
        i = index(line, "*/")
        if (i == 0) next
        line = substr(line, i + 2)
        inblock = 0
      }
      while ((s = index(line, "/*")) > 0) {
        e = index(substr(line, s + 2), "*/")
        if (e == 0) { line = substr(line, 1, s - 1); inblock = 1; break }
        line = substr(line, 1, s - 1) substr(line, s + e + 3)
      }
      sub(/\/\/.*/, "", line)
      if (line ~ /[(,][ \t]*(const[ \t]+)?core::Access[ \t]*&/) {
        printf "%s:%d: %s\n", FILENAME, FNR, $0
        bad = 1
      }
    }
    END { exit bad ? 1 : 0 }
  ' "$f" || status=1
done

# Pass 4 file set: the explicit arguments, or the algorithm bodies (the
# headers hold only Options structs, whose Mechanism default is the
# executor-dispatch seam itself, so only the .cpp files are scanned).
if [ "$explicit_files" -eq 0 ]; then
  set -- src/algorithms/*.cpp
fi

for f in "$@"; do
  awk '
    {
      raw = $0
      line = $0
      if (inblock) {
        i = index(line, "*/")
        if (i == 0) next
        line = substr(line, i + 2)
        inblock = 0
      }
      while ((s = index(line, "/*")) > 0) {
        e = index(substr(line, s + 2), "*/")
        if (e == 0) { line = substr(line, 1, s - 1); inblock = 1; break }
        line = substr(line, 1, s - 1) substr(line, s + e + 3)
      }
      sub(/\/\/.*/, "", line)
      if (raw ~ /lint:allow-mechanism/) next
      if (line ~ /Mechanism[ \t]*::/) {
        printf "%s:%d: %s\n", FILENAME, FNR, $0
        bad = 1
      }
    }
    END { exit bad ? 1 : 0 }
  ' "$f" || status=1
done

# Pass 3 file set: the explicit arguments, or the seeded-determinism
# surface (all of src/ except the DES core, which owns the clock).
if [ "$explicit_files" -eq 0 ]; then
  set -- $(find src -name '*.cpp' -o -name '*.hpp' | grep -v '^src/sim/' | sort)
fi

for f in "$@"; do
  awk '
    {
      raw = $0
      line = $0
      if (inblock) {
        i = index(line, "*/")
        if (i == 0) next
        line = substr(line, i + 2)
        inblock = 0
      }
      while ((s = index(line, "/*")) > 0) {
        e = index(substr(line, s + 2), "*/")
        if (e == 0) { line = substr(line, 1, s - 1); inblock = 1; break }
        line = substr(line, 1, s - 1) substr(line, s + e + 3)
      }
      sub(/\/\/.*/, "", line)
      if (raw ~ /lint:allow-wallclock/) next
      if (line ~ /std::rand[ \t]*\(|[^A-Za-z0-9_]srand[ \t]*\(|gettimeofday|clock_gettime|steady_clock|system_clock|high_resolution_clock/) {
        printf "%s:%d: %s\n", FILENAME, FNR, $0
        bad = 1
      }
    }
    END { exit bad ? 1 : 0 }
  ' "$f" || status=1
done

# Pass 5 file set: the explicit arguments, or everything under src/
# (hash-order nondeterminism is a bug in the DES core too).
if [ "$explicit_files" -eq 0 ]; then
  set -- $(find src -name '*.cpp' -o -name '*.hpp' | sort)
fi

for f in "$@"; do
  # Two reads of the same file: the first collects every identifier
  # declared with an unordered container type, the second flags iteration
  # over any of them (plus range-fors whose range expression spells an
  # unordered type directly).
  awk '
    NR == FNR {
      line = $0
      sub(/\/\/.*/, "", line)
      while (match(line, /std::unordered_(map|set)[ \t]*</)) {
        rest = substr(line, RSTART + RLENGTH)
        depth = 1
        i = 1
        while (i <= length(rest) && depth > 0) {
          c = substr(rest, i, 1)
          if (c == "<") depth++
          else if (c == ">") depth--
          i++
        }
        rest = substr(rest, i)
        if (match(rest, /^[ \t]*&?[ \t]*[A-Za-z_][A-Za-z0-9_]*/)) {
          name = substr(rest, RSTART, RLENGTH)
          gsub(/[ \t&]/, "", name)
          names[name] = 1
        }
        line = rest
      }
      next
    }
    FNR == 1 { inblock = 0 }
    {
      raw = $0
      line = $0
      if (inblock) {
        i = index(line, "*/")
        if (i == 0) next
        line = substr(line, i + 2)
        inblock = 0
      }
      while ((s = index(line, "/*")) > 0) {
        e = index(substr(line, s + 2), "*/")
        if (e == 0) { line = substr(line, 1, s - 1); inblock = 1; break }
        line = substr(line, 1, s - 1) substr(line, s + e + 3)
      }
      sub(/\/\/.*/, "", line)
      if (raw ~ /lint:allow-unordered-iter/) next
      hit = 0
      if (line ~ /for[ \t]*\([^;]*:[ \t]*[^;]*unordered_(map|set)/) hit = 1
      for (n in names) {
        if (line ~ ("for[ \t]*\\([^;]*:[ \t]*\\*?" n "[ \t]*\\)") ||
            line ~ ("(^|[^A-Za-z0-9_.])" n "[ \t]*\\.[ \t]*c?r?begin[ \t]*\\(")) {
          hit = 1
        }
      }
      if (hit) {
        printf "%s:%d: %s\n", FILENAME, FNR, $0
        bad = 1
      }
    }
    END { exit bad ? 1 : 0 }
  ' "$f" "$f" || status=1
done

if [ "$status" -ne 0 ]; then
  echo "lint_operators: operator bodies must route mutations through the" >&2
  echo "access surface (access.store/cas/fetch_add), take it as a templated" >&2
  echo "Acc& parameter (never core::Access& directly), simulated code must" >&2
  echo "draw time/randomness from the DES clock and util::Rng, not the host" >&2
  echo "(mark intentional host-time reads with lint:allow-wallclock), and" >&2
  echo "src/ must never iterate an unordered container (hash order is not" >&2
  echo "deterministic; mark exceptions with lint:allow-unordered-iter)" >&2
fi
exit "$status"
