// aam_mc: bounded schedule-space model checking of the DES mechanism
// engines.
//
//   aam_mc                              full certification sweep, aligned table
//   aam_mc --json                       machine-readable sweep dump
//   aam_mc --golden=PATH                diff the sweep manifest against a
//                                       committed golden; exit 1 on drift
//   aam_mc --write-golden=PATH          regenerate the golden manifest
//   aam_mc --workload=W [--mechanism=M] explore one configuration; on a
//       [--mutation=X] [--budget=N]     violation, print the minimized
//                                       failing trace and how to replay it
//   aam_mc --workload=W --mc-replay=T   re-execute a recorded trace
//       [--mechanism=M] [--mutation=X]  ("0n.1n.1c...") step by step
//   aam_mc --expect-violation           invert the exit code (CI mutation
//                                       smoke: seeded bugs MUST be caught)
//
// CI runs `aam_mc --golden=tests/golden/mc_certification.txt`: any engine
// or workload change that shifts a schedule count or a certification
// verdict must come with a regenerated manifest, reviewable line by line.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "mc/explorer.hpp"
#include "mc/harness.hpp"
#include "mc/trace.hpp"
#include "util/cli.hpp"

namespace {

std::string read_file(const std::string& path, bool& ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ok = false;
    return {};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  ok = true;
  return buf.str();
}

/// Line-by-line diff: prints the first divergent lines of each side.
void print_drift(const std::string& expected, const std::string& actual) {
  std::istringstream exp(expected);
  std::istringstream act(actual);
  std::string eline;
  std::string aline;
  std::size_t lineno = 0;
  for (;;) {
    const bool has_e = static_cast<bool>(std::getline(exp, eline));
    const bool has_a = static_cast<bool>(std::getline(act, aline));
    ++lineno;
    if (!has_e && !has_a) break;
    if (has_e && has_a && eline == aline) continue;
    std::fprintf(stderr, "line %zu:\n", lineno);
    if (has_e) std::fprintf(stderr, "  -golden:  %s\n", eline.c_str());
    if (has_a) std::fprintf(stderr, "  +current: %s\n", aline.c_str());
  }
}

int run_golden(const std::string& current, const std::string& golden_path,
               const std::string& write_golden_path) {
  if (!write_golden_path.empty()) {
    std::ofstream out(write_golden_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "aam_mc: cannot write %s\n",
                   write_golden_path.c_str());
      return 1;
    }
    out << current;
    std::printf("wrote %s (%zu bytes)\n", write_golden_path.c_str(),
                current.size());
    return 0;
  }
  bool ok = false;
  const std::string committed = read_file(golden_path, ok);
  if (!ok) {
    std::fprintf(stderr, "aam_mc: cannot read golden %s\n",
                 golden_path.c_str());
    return 1;
  }
  if (committed != current) {
    std::fprintf(stderr,
                 "aam_mc: certification manifest drifted from %s\n"
                 "If the change is intentional, regenerate with:\n"
                 "  ./build/tools/aam_mc --write-golden %s\n",
                 golden_path.c_str(), golden_path.c_str());
    print_drift(committed, current);
    return 1;
  }
  std::printf("certification manifest matches %s\n", golden_path.c_str());
  return 0;
}

void print_violations(const aam::mc::RunResult& result) {
  for (const aam::mc::ViolationInfo& v : result.violations) {
    std::printf("violation [%s]: %s\n", aam::mc::to_string(v.kind),
                v.detail.c_str());
  }
}

/// Exit code: violations normally fail, but under --expect-violation the
/// seeded-bug smoke wants the checker to FIND the bug.
int verdict(bool violated, bool expect_violation) {
  if (expect_violation) {
    if (!violated) {
      std::fprintf(stderr,
                   "aam_mc: expected a violation but none was found\n");
      return 1;
    }
    return 0;
  }
  return violated ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  aam::util::Cli cli(argc, argv);
  const bool json = cli.get_bool("json", false);
  cli.get_bool("table", false);  // accepted for symmetry; table is default
  const std::string golden_path = cli.get_string("golden", "");
  const std::string write_golden_path = cli.get_string("write-golden", "");
  const std::string workload = cli.get_string("workload", "");
  const std::string mechanism = cli.get_string("mechanism", "htm");
  const std::string mutation_name = cli.get_string("mutation", "none");
  const std::string replay_text = cli.get_string("mc-replay", "");
  const std::uint64_t budget =
      static_cast<std::uint64_t>(cli.get_int("budget", 200000));
  const std::uint64_t naive_budget =
      static_cast<std::uint64_t>(cli.get_int("naive-budget", 50000));
  const bool expect_violation = cli.get_bool("expect-violation", false);
  cli.check_unknown();

  if (workload.empty()) {
    // Sweep mode: the committed certification matrix.
    aam::mc::CertOptions options;
    options.naive_budget = naive_budget;
    options.max_runs = budget;
    const aam::mc::CertReport report = aam::mc::certify(options);
    if (!golden_path.empty() || !write_golden_path.empty()) {
      return run_golden(aam::mc::render_golden(report), golden_path,
                        write_golden_path);
    }
    if (json) {
      std::printf("%s", aam::mc::render_json(report).c_str());
    } else {
      std::printf("%s", aam::mc::render_table(report).c_str());
    }
    return 0;
  }

  const std::optional<aam::mc::Mutation> mutation =
      aam::mc::parse_mutation(mutation_name);
  if (!mutation.has_value()) {
    std::fprintf(stderr, "aam_mc: bad --mutation value '%s' (valid: %s)\n",
                 mutation_name.c_str(), aam::mc::mutation_names().c_str());
    return 2;
  }
  aam::mc::RunConfig config = aam::mc::row_run_config(workload, mechanism);
  config.mutation = *mutation;
  aam::mc::Runner runner(config);

  if (!replay_text.empty()) {
    const std::optional<aam::mc::Trace> trace =
        aam::mc::parse_trace(replay_text);
    if (!trace.has_value()) {
      std::fprintf(stderr, "aam_mc: malformed --mc-replay trace '%s'\n",
                   replay_text.c_str());
      return 2;
    }
    const aam::mc::RunResult result = runner.replay(*trace);
    std::printf("replaying %zu steps on %s/%s (mutation: %s)\n%s",
                trace->size(), workload.c_str(), mechanism.c_str(),
                aam::mc::to_string(*mutation),
                aam::mc::pretty_trace(result.trace).c_str());
    std::printf("outcome: %s\n", canonical(result.outcome).c_str());
    print_violations(result);
    return verdict(!result.violations.empty(), expect_violation);
  }

  // Single-configuration exploration.
  aam::mc::ExploreConfig explore_config;
  explore_config.preemption_bound = aam::mc::row_bound(workload);
  explore_config.max_runs = budget;
  aam::mc::ExploreResult explored = aam::mc::explore(runner, explore_config);
  std::printf(
      "%s/%s (mutation: %s): %llu runs, %llu complete schedules, %llu "
      "pruned, %llu steps%s\n",
      workload.c_str(), mechanism.c_str(), aam::mc::to_string(*mutation),
      static_cast<unsigned long long>(explored.stats.runs),
      static_cast<unsigned long long>(explored.stats.schedules),
      static_cast<unsigned long long>(explored.stats.pruned),
      static_cast<unsigned long long>(explored.stats.steps),
      explored.stats.budget_exhausted ? " (budget exhausted)" : "");
  if (explored.violating_schedules == 0) {
    std::printf("no violations: every explored schedule is serializable "
                "and satisfies the workload invariant\n");
    return verdict(false, expect_violation);
  }
  std::printf("%llu violating schedule(s); minimizing...\n",
              static_cast<unsigned long long>(explored.violating_schedules));
  const std::optional<aam::mc::FoundViolation> minimal =
      aam::mc::find_minimal(runner);
  const aam::mc::FoundViolation& witness =
      minimal.has_value() ? *minimal : explored.violations.front();
  std::printf("violation [%s]: %s\nminimized trace (%zu steps): %s\n%s",
              aam::mc::to_string(witness.info.kind),
              witness.info.detail.c_str(), witness.trace.size(),
              aam::mc::format_trace(witness.trace).c_str(),
              aam::mc::pretty_trace(witness.trace).c_str());
  std::printf(
      "replay with: aam_mc --workload=%s --mechanism=%s --mutation=%s "
      "--mc-replay=%s\n",
      workload.c_str(), mechanism.c_str(), aam::mc::to_string(*mutation),
      aam::mc::format_trace(witness.trace).c_str());
  return verdict(true, expect_violation);
}
