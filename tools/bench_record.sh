#!/usr/bin/env bash
# Refresh BENCH_wallclock.json from bench_throughput runs and sanity-check
# the result.
#
# Usage: tools/bench_record.sh <bench_throughput-binary> [output.json] [args...]
#
# Extra args are forwarded to bench_throughput (e.g. --scale=12 for a CI
# smoke run, or --fault=lossy-net to record recovery-path throughput).
#
# The recorded document is the sequential (--host-threads=1) run — its
# per-row rates are what older recordings are comparable against — plus a
# "parallel" block measuring the whole-sweep wall-clock at
# --host-threads=1 and --host-threads=$BENCH_HOST_THREADS (default 4),
# median of $BENCH_TRIALS trials (default 5), and the resulting speedup.
# The simulated per-row fields of every trial must agree (the parallel
# backend's determinism contract); a mismatch fails the recording.
#
# Exits non-zero when the binary fails or the JSON does not match the
# aam-bench-wallclock-v5 schema (missing keys, empty results, or
# non-positive throughput).
set -euo pipefail

if [[ $# -lt 1 ]]; then
  echo "usage: $0 <bench_throughput-binary> [output.json] [bench args...]" >&2
  exit 2
fi

bin="$1"
shift
out="BENCH_wallclock.json"
if [[ $# -ge 1 && "${1:0:2}" != "--" ]]; then
  out="$1"
  shift
fi

trials="${BENCH_TRIALS:-5}"
par_threads="${BENCH_HOST_THREADS:-4}"

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

for ((t = 0; t < trials; ++t)); do
  "$bin" --json="$tmpdir/seq_$t.json" --host-threads=1 "$@" > /dev/null
  "$bin" --json="$tmpdir/par_$t.json" --host-threads="$par_threads" "$@" \
    > /dev/null
done

python3 - "$out" "$tmpdir" "$trials" "$par_threads" <<'EOF'
import json, statistics, sys

out_path, tmpdir, trials, par_threads = (
    sys.argv[1], sys.argv[2], int(sys.argv[3]), int(sys.argv[4]))

def fail(msg):
    print(f"bench_record: {msg}", file=sys.stderr)
    sys.exit(1)

def load(kind, t):
    with open(f"{tmpdir}/{kind}_{t}.json") as f:
        return json.load(f)

def sim_rows(doc):
    """The simulated (host-independent) projection of the results array."""
    keys = ("algorithm", "mechanism", "elements", "sim_time_ns", "commits",
            "aborts", "prediction_miss", "descents", "capacity_clamps",
            "checkpoints", "crashes", "replayed_sends", "lost_work_ns",
            "snapshot_bytes", "rolled_back_dropped", "rolled_back_duplicated")
    return [{k: r[k] for k in keys} for r in doc["results"]]

seq = [load("seq", t) for t in range(trials)]
par = [load("par", t) for t in range(trials)]

# Determinism gate: every trial at every host-thread count must agree on
# every simulated field.
reference = sim_rows(seq[0])
for doc in seq + par:
    if sim_rows(doc) != reference:
        fail("simulated results differ across trials/host-thread counts "
             "— the parallel backend broke determinism")

doc = seq[0]
if doc.get("schema") != "aam-bench-wallclock-v5":
    fail(f"unexpected schema {doc.get('schema')!r}")
for key in ("scale", "machine", "threads", "host_threads", "wall_ms",
            "fault", "results"):
    if key not in doc:
        fail(f"missing top-level key {key!r}")
results = doc["results"]
if not isinstance(results, list) or not results:
    fail("empty results array")
mechanisms = set()
for r in results:
    for key in ("algorithm", "mechanism", "elements", "wall_seconds",
                "elements_per_sec", "sim_time_ns", "commits", "aborts",
                "prediction_miss", "descents", "capacity_clamps",
                "checkpoints", "crashes", "replayed_sends", "lost_work_ns",
                "snapshot_bytes", "rolled_back_dropped",
                "rolled_back_duplicated"):
        if key not in r:
            fail(f"result entry missing {key!r}: {r}")
    mechanisms.add(r["mechanism"])
    if r["elements"] <= 0 or r["elements_per_sec"] <= 0:
        fail(f"non-positive throughput: {r}")
if "auto" not in mechanisms:
    fail("no --mechanism=auto rows recorded")

seq_ms = statistics.median(d["wall_ms"] for d in seq)
par_ms = statistics.median(d["wall_ms"] for d in par)
speedup = round(seq_ms / par_ms, 3) if par_ms > 0 else 0
parallel = (
    '  "parallel": {\n'
    f'    "trials": {trials},\n'
    f'    "seq_wall_ms": {round(seq_ms, 3)},\n'
    f'    "par_host_threads": {par_threads},\n'
    f'    "par_wall_ms": {round(par_ms, 3)},\n'
    f'    "speedup": {speedup}\n'
    "  }\n"
)
# Splice the measured parallel block into the sequential run's own text:
# downstream line-based consumers (tests/conflict_test.cpp) rely on the
# bench's one-row-per-line formatting, which a JSON re-dump would destroy.
with open(f"{tmpdir}/seq_0.json") as f:
    text = f.read()
tail = "  ]\n}\n"
if not text.endswith(tail):
    fail("unexpected bench JSON tail; cannot splice parallel block")
text = text[: -len(tail)] + "  ],\n" + parallel + "}\n"
json.loads(text)  # the spliced document must still parse
with open(out_path, "w") as f:
    f.write(text)

print(f"bench_record: {out_path} OK "
      f"({len(results)} entries, scale={doc['scale']}, "
      f"machine={doc['machine']}, fault={doc['fault']}, "
      f"wall {seq_ms:.0f}ms @1 -> {par_ms:.0f}ms @{par_threads} host "
      f"threads, speedup {speedup}x over {trials} trials)")
EOF
