#!/usr/bin/env bash
# Refresh BENCH_wallclock.json from a bench_throughput run and sanity-check
# the result.
#
# Usage: tools/bench_record.sh <bench_throughput-binary> [output.json] [args...]
#
# Extra args are forwarded to bench_throughput (e.g. --scale=12 for a CI
# smoke run, or --fault=lossy-net to record recovery-path throughput).
# Exits non-zero when the binary fails or the JSON does not match the
# aam-bench-wallclock-v3 schema (missing keys, empty results, or
# non-positive throughput).
set -euo pipefail

if [[ $# -lt 1 ]]; then
  echo "usage: $0 <bench_throughput-binary> [output.json] [bench args...]" >&2
  exit 2
fi

bin="$1"
shift
out="BENCH_wallclock.json"
if [[ $# -ge 1 && "${1:0:2}" != "--" ]]; then
  out="$1"
  shift
fi

"$bin" --json="$out" "$@"

python3 - "$out" <<'EOF'
import json, sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)

def fail(msg):
    print(f"bench_record: schema error in {path}: {msg}", file=sys.stderr)
    sys.exit(1)

if doc.get("schema") != "aam-bench-wallclock-v3":
    fail(f"unexpected schema {doc.get('schema')!r}")
for key in ("scale", "machine", "threads", "fault", "results"):
    if key not in doc:
        fail(f"missing top-level key {key!r}")
results = doc["results"]
if not isinstance(results, list) or not results:
    fail("empty results array")
mechanisms = set()
for r in results:
    for key in ("algorithm", "mechanism", "elements", "wall_seconds",
                "elements_per_sec", "sim_time_ns", "commits", "aborts",
                "prediction_miss", "descents", "capacity_clamps"):
        if key not in r:
            fail(f"result entry missing {key!r}: {r}")
    mechanisms.add(r["mechanism"])
    if r["elements"] <= 0 or r["elements_per_sec"] <= 0:
        fail(f"non-positive throughput: {r}")
if "auto" not in mechanisms:
    fail("no --mechanism=auto rows recorded")
print(f"bench_record: {path} OK "
      f"({len(results)} entries, scale={doc['scale']}, "
      f"machine={doc['machine']}, fault={doc['fault']})")
EOF
