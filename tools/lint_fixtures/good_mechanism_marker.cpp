// Lint fixture: known-good. A legitimate mention of a concrete mechanism
// (comparing against the *configured* one) annotated with the allow
// marker, plus a comment-only mention that must not trip the pass.
#include <cstdint>

namespace aam::algorithms {

// A doc comment may freely say Mechanism::kHtmCoarsened without tripping.
bool is_coarsened(core::Mechanism configured) {
  return configured == core::Mechanism::kHtmCoarsened;  // lint:allow-mechanism
}

}  // namespace aam::algorithms
