#pragma once

// Self-test fixture for tools/lint_operators.sh: the lint must REJECT this
// file (exit 1, pass 1). The operator takes a templated access surface but
// mutates shared state with a raw subscripted store, bypassing conflict
// detection and the modelled access cost.

#include <cstdint>

namespace lint_fixture {

template <typename Acc>
void bad_visit(Acc& a, std::uint64_t* parent, std::uint64_t v,
               std::uint64_t u) {
  if (a.load(parent[v]) == 0) {
    parent[v] = u;
  }
}

}  // namespace lint_fixture
