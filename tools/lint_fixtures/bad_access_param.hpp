#pragma once

// Self-test fixture for tools/lint_operators.sh: the lint must REJECT this
// file (exit 1, pass 2). The operator takes the virtual core::Access base
// directly instead of a templated Acc&, which reintroduces an indirect call
// per memory access and evades the static effect-signature analyzer.

#include <cstdint>

namespace aam::core {
class Access;
}

namespace lint_fixture {

void bad_param_visit(core::Access& a, std::uint64_t* parent, std::uint64_t v,
                     std::uint64_t u);

}  // namespace lint_fixture
