#pragma once

// Known-good fixture for lint pass 5: lookups into unordered containers
// are order-insensitive and always fine; the one deliberate iteration
// drains into a sorted vector before any order-sensitive use and carries
// the allow marker.

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

inline std::uint64_t lookup(
    const std::unordered_map<std::uint64_t, std::uint64_t>& index,
    std::uint64_t key) {
  const auto it = index.find(key);
  return it == index.end() ? 0 : it->second;
}

inline std::vector<std::uint64_t> sorted_keys(
    const std::unordered_map<std::uint64_t, std::uint64_t>& index) {
  std::vector<std::uint64_t> keys;
  keys.reserve(index.size());
  for (const auto& kv : index) {  // lint:allow-unordered-iter
    keys.push_back(kv.first);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}
