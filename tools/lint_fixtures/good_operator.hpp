#pragma once

// Self-test fixture for tools/lint_operators.sh: the lint must ACCEPT this
// file (exit 0). It exercises every stripping path the lint relies on:
//  - a templated access parameter with mediated mutations only,
//  - a raw-write spelling inside a line comment: parent[v] = u,
//  - core::Access& mentioned in line and block comments only.

#include <cstdint>

/* A block comment naming core::Access& must not trip pass 2. */

namespace lint_fixture {

// The devirtualized operator shape (see executor_impl.hpp): templated
// access parameter, all shared-state mutations mediated by the surface.
template <typename Acc>
void good_visit(Acc& a, std::uint64_t* parent, std::uint64_t v,
                std::uint64_t u) {
  /* multi-line block comment:
     core::Access& mentioned mid-block must also be ignored,
     as must parent[v] = u spelled inside it. */
  if (a.load(parent[v]) == 0) {
    a.store(parent[v], u + 1);
  }
  a.fetch_add(parent[u], std::uint64_t{1});  // not parent[u] += 1
}

}  // namespace lint_fixture
