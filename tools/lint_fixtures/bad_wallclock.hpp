#pragma once

// Self-test fixture for tools/lint_operators.sh: the lint must REJECT this
// file (exit 1, pass 3). Simulated code reading the host clock breaks the
// seed-purity contract: two runs with the same seed would diverge with
// host load. steady_clock spelled inside comments must NOT trip the pass;
// the uncommented read below must.

#include <chrono>

namespace lint_fixture {

/* A block comment naming std::chrono::steady_clock::now() is fine. */

inline double bad_elapsed_ns() {
  // steady_clock::now() in a line comment is also fine.
  const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace lint_fixture
