// Lint fixture: known-bad. An algorithm body that hardwires its
// synchronization mechanism with a Mechanism:: literal instead of leaving
// the choice to executor dispatch (Options::mechanism / AutoPolicy).
#include <cstdint>

namespace aam::algorithms {

void run_hardwired(int batch) {
  struct Options {
    int mechanism;
    int batch;
  };
  Options o;
  o.mechanism = static_cast<int>(core::Mechanism::kHtmCoarsened);
  o.batch = batch;
}

}  // namespace aam::algorithms
