#pragma once

// Self-test fixture for tools/lint_operators.sh: the lint must ACCEPT this
// file (exit 0). Host-side measurement code that legitimately reads real
// time (the threaded execution baseline) opts out of pass 3 with the
// `lint:allow-wallclock` marker on the offending line.

#include <chrono>

namespace lint_fixture {

inline double marked_elapsed_ns() {
  const auto t0 = std::chrono::steady_clock::now();  // lint:allow-wallclock
  const auto t1 = std::chrono::steady_clock::now();  // lint:allow-wallclock
  return std::chrono::duration<double, std::nano>(t1 - t0).count();
}

}  // namespace lint_fixture
