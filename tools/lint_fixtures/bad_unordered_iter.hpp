#pragma once

// Known-bad fixture for lint pass 5: iterating an unordered container.
// Hash-table order varies across standard-library versions and run
// history, so both loops below are determinism bugs.

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

inline std::uint64_t sum_degrees(
    const std::unordered_map<std::uint64_t, std::uint64_t>& degrees) {
  std::uint64_t total = 0;
  for (const auto& kv : degrees) {
    total += kv.second;
  }
  return total;
}

inline std::uint64_t first_member(const std::unordered_set<std::uint64_t>& s) {
  return s.empty() ? 0 : *s.begin();
}
