// Social-network analysis scenario (§1 motivation; Table 1 SNs).
//
// Traverses a synthetic analog of com-youtube (heavy-tailed degrees) and
// shows the end-to-end workflow a network analyst would run: pick the
// engine (AAM vs atomics vs fine locks), search a few transaction sizes
// for this graph's sweet spot, and inspect degrees-of-separation stats.
//
//   $ ./social_bfs [--divisor=32] [--machine=BGQ]

#include <cstdio>

#include "algorithms/bfs.hpp"
#include "baselines/named.hpp"
#include "graph/analogs.hpp"
#include "graph/gstats.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace aam;
  util::Cli cli(argc, argv);
  const auto divisor = static_cast<std::uint64_t>(cli.get_int("divisor", 32));
  const std::string machine_name = cli.get_string("machine", "BGQ");
  cli.check_unknown();

  const auto& config = model::machine_by_name(machine_name);
  const model::HtmKind kind = config.supported_htm[0];
  const int threads = config.max_threads();

  util::Rng rng(7);
  const auto& analog = graph::analog_by_id("sYT");  // com-youtube
  const graph::Graph g = graph::synthesize(analog, divisor, rng);
  const auto dstats = graph::degree_stats(g);
  std::printf("social graph (~%s analog): %u members, avg degree %.1f, "
              "max degree %u, top-1%% members hold %.0f%% of links\n",
              analog.name.c_str(), g.num_vertices(), dstats.mean, dstats.max,
              dstats.top1pct_edge_share * 100);

  const graph::Vertex celebrity = graph::pick_nonisolated_vertex(g);
  const std::size_t heap_bytes =
      static_cast<std::size_t>(g.num_vertices()) * 8 + (1u << 22);

  // Engine comparison at this graph's structure.
  util::Table table({"engine", "config", "traversal time", "aborts"});
  double best_aam = 0;
  int best_m = 0;
  for (int m : {2, 8, 24, 64}) {
    mem::SimHeap heap(heap_bytes);
    htm::DesMachine machine(config, kind, threads, heap);
    algorithms::BfsOptions options;
    options.root = celebrity;
    options.batch = m;
    const auto r = algorithms::run_bfs(machine, g, options);
    AAM_CHECK(algorithms::validate_bfs_tree(g, celebrity, r.parent));
    table.row().cell("AAM").cell("M=" + std::to_string(m))
        .cell(util::format_time_ns(r.total_time_ns))
        .cell(r.stats.total_aborts());
    if (best_m == 0 || r.total_time_ns < best_aam) {
      best_aam = r.total_time_ns;
      best_m = m;
    }
  }
  {
    mem::SimHeap heap(heap_bytes);
    htm::DesMachine machine(config, kind, threads, heap);
    const auto r = baselines::graph500_bfs(machine, g, celebrity);
    table.row().cell("Graph500").cell("atomics")
        .cell(util::format_time_ns(r.total_time_ns)).cell(std::uint64_t{0});
  }
  {
    mem::SimHeap heap(heap_bytes);
    htm::DesMachine machine(config, kind, threads, heap);
    const auto r = baselines::galois_bfs(machine, g, celebrity);
    table.row().cell("Galois-like").cell("fine locks")
        .cell(util::format_time_ns(r.total_time_ns)).cell(std::uint64_t{0});
  }
  table.print("BFS engines on " + config.name + " (T=" +
              std::to_string(threads) + "); best AAM at M=" +
              std::to_string(best_m));

  // Degrees of separation from the chosen member.
  const auto levels = graph::bfs_levels(g, celebrity);
  std::vector<std::uint64_t> per_level;
  for (std::uint32_t l : levels) {
    if (l == graph::kInvalidLevel) continue;
    if (l >= per_level.size()) per_level.resize(l + 1, 0);
    ++per_level[l];
  }
  util::Table hops({"hops", "members reached"});
  for (std::size_t l = 0; l < per_level.size(); ++l) {
    hops.row().cell(std::uint64_t(l)).cell(util::format_count(per_level[l]));
  }
  hops.print("Degrees of separation from member " +
             std::to_string(celebrity));
  return 0;
}
