// Web-graph scheduling scenario (Table 1 WGs; §3.3.4/§3.3.5).
//
// A crawler wants to re-fetch pages such that no two linked pages are
// fetched in the same batch (politeness / cache coherence): that is graph
// coloring — colors become fetch batches. Afterwards, ST connectivity
// answers "does page A link-reach page B?" with two concurrent
// transactional BFS waves.
//
//   $ ./coloring_webgraph [--divisor=32]

#include <cstdio>

#include "algorithms/coloring.hpp"
#include "algorithms/st_connectivity.hpp"
#include "graph/analogs.hpp"
#include "graph/gstats.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace aam;
  util::Cli cli(argc, argv);
  const auto divisor = static_cast<std::uint64_t>(cli.get_int("divisor", 32));
  cli.check_unknown();

  util::Rng rng(31);
  const auto& analog = graph::analog_by_id("wGL");  // web-Google
  const graph::Graph web = graph::synthesize(analog, divisor, rng);
  const auto dstats = graph::degree_stats(web);
  std::printf("web graph (~%s analog): %u pages, max in+out degree %u\n",
              analog.name.c_str(), web.num_vertices(), dstats.max);

  const std::size_t heap_bytes =
      static_cast<std::size_t>(web.num_vertices()) * 8 + (1u << 22);

  // --- Batch scheduling via Boman coloring (FR & MF).
  {
    mem::SimHeap heap(heap_bytes);
    htm::DesMachine machine(model::has_c(), model::HtmKind::kRtm, 8, heap);
    const auto coloring = algorithms::run_boman_coloring(machine, web, {});
    AAM_CHECK(algorithms::validate_coloring(web, coloring.color));

    std::vector<std::uint64_t> batch_sizes(coloring.colors_used + 1, 0);
    for (std::uint32_t c : coloring.color) ++batch_sizes[c];
    util::Table table({"fetch batch", "pages"});
    for (std::uint32_t c = 1;
         c <= coloring.colors_used && table.num_rows() < 8; ++c) {
      table.row().cell(std::uint64_t{c})
          .cell(util::format_count(batch_sizes[c]));
    }
    table.print("Fetch schedule: " + std::to_string(coloring.colors_used) +
                " conflict-free batches in " +
                std::to_string(coloring.rounds) + " rounds (" +
                util::format_count(coloring.recolor_requests) +
                " conflicts resolved by failure handlers, " +
                util::format_time_ns(coloring.total_time_ns) + ")");
  }

  // --- Reachability queries via ST connectivity (FR & AS).
  {
    const graph::Vertex a = graph::pick_nonisolated_vertex(web, 1);
    const graph::Vertex b = graph::pick_nonisolated_vertex(web, 2);
    mem::SimHeap heap(heap_bytes);
    htm::DesMachine machine(model::has_c(), model::HtmKind::kRtm, 8, heap);
    algorithms::StConnOptions options;
    options.s = a;
    options.t = b;
    const auto result = run_st_connectivity(machine, web, options);
    std::printf("\nreachability(page %u <-> page %u): %s "
                "(two-wave search colored %s pages in %d levels, %s)\n",
                a, b, result.connected ? "CONNECTED" : "not connected",
                util::format_count(result.vertices_colored).c_str(),
                result.levels,
                util::format_time_ns(result.total_time_ns).c_str());
  }
  return 0;
}
