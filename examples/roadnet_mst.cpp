// Road-network scenario (Table 1 RNs): minimum-cost backbone + shortest
// routes.
//
// Builds a weighted road-lattice analog (high diameter, degree <= 4), then:
//   1. runs Boruvka MST with May-Fail merge transactions (§3.3.3) to find
//      the minimum-cost maintenance backbone, validated against Kruskal;
//   2. runs transactional SSSP from a depot and reports route lengths.
//
//   $ ./roadnet_mst [--side=96]

#include <cmath>
#include <cstdio>

#include "algorithms/boruvka.hpp"
#include "algorithms/sssp.hpp"
#include "graph/generators.hpp"
#include "graph/gstats.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace aam;
  util::Cli cli(argc, argv);
  const auto side = static_cast<graph::Vertex>(cli.get_int("side", 96));
  cli.check_unknown();

  // A weighted road grid: edge weights model segment lengths/costs.
  util::Rng rng(23);
  const graph::Graph unweighted = graph::road_lattice(side, side, 0.0005, rng);
  graph::EdgeList edges;
  for (graph::Vertex u = 0; u < unweighted.num_vertices(); ++u) {
    for (graph::Vertex w : unweighted.neighbors(u)) {
      if (u < w) edges.emplace_back(u, w);
    }
  }
  const auto weights =
      graph::random_weights(edges.size(), 0.5f, 8.0f, rng);
  const graph::Graph roads = graph::Graph::from_weighted_edges(
      unweighted.num_vertices(), edges, weights, true);
  std::printf("road network: %u junctions, %llu segments, diameter >= %u\n",
              roads.num_vertices(),
              static_cast<unsigned long long>(roads.num_edges() / 2),
              graph::diameter_lower_bound(roads, 0));

  const std::size_t heap_bytes =
      static_cast<std::size_t>(roads.num_vertices()) * 16 + (1u << 22);

  // --- 1. Minimum spanning backbone via transactional Boruvka.
  {
    mem::SimHeap heap(heap_bytes);
    htm::DesMachine machine(model::has_c(), model::HtmKind::kRtm, 8, heap);
    const auto mst = algorithms::run_boruvka(machine, roads, {});
    const double reference = algorithms::mst_reference_weight(roads);
    util::Table table({"quantity", "value"});
    table.row().cell("backbone segments").cell(mst.edges_in_forest);
    table.row().cell("backbone cost").cell(mst.total_weight, 1);
    table.row().cell("Kruskal reference cost").cell(reference, 1);
    table.row().cell("Boruvka rounds").cell(mst.rounds);
    table.row().cell("May-Fail merge losses").cell(mst.failed_merges);
    table.row().cell("time (simulated)")
        .cell(util::format_time_ns(mst.total_time_ns));
    table.print("Minimum-cost backbone (Boruvka, FR & MF transactions)");
    AAM_CHECK(std::abs(mst.total_weight - reference) < reference * 1e-6);
  }

  // --- 2. Shortest routes from the depot (corner junction).
  {
    mem::SimHeap heap(heap_bytes);
    htm::DesMachine machine(model::has_c(), model::HtmKind::kRtm, 8, heap);
    algorithms::SsspOptions options;
    options.source = 0;
    const auto routes = algorithms::run_sssp(machine, roads, options);
    // Spot-check against Dijkstra.
    const auto reference = algorithms::sssp_reference(roads, 0);
    for (graph::Vertex v = 0; v < roads.num_vertices(); v += 997) {
      AAM_CHECK(std::abs(routes.distance[v] - reference[v]) < 1e-6);
    }
    util::Table table({"destination", "route cost"});
    const graph::Vertex far = roads.num_vertices() - 1;  // opposite corner
    table.row().cell("center junction")
        .cell(routes.distance[side / 2 * side + side / 2], 1);
    table.row().cell("opposite corner").cell(routes.distance[far], 1);
    table.print("Shortest routes from the depot (transactional SSSP, " +
                std::to_string(routes.rounds) + " rounds, " +
                util::format_time_ns(routes.total_time_ns) + ")");
  }
  return 0;
}
