// Quickstart: the smallest complete AAM program.
//
// Builds a graph, creates a simulated Blue Gene/Q node, and runs a BFS
// whose vertex visits execute as coarse hardware transactions — the core
// idea of Atomic Active Messages. Compare against the Graph500-style
// atomics baseline and print what the HTM did.
//
//   $ ./quickstart [--scale=16] [--batch=16] [--threads=64]

#include <cstdio>

#include "algorithms/bfs.hpp"
#include "baselines/named.hpp"
#include "graph/generators.hpp"
#include "graph/gstats.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace aam;
  util::Cli cli(argc, argv);
  const int scale = static_cast<int>(cli.get_int("scale", 16));
  const int batch = static_cast<int>(cli.get_int("batch", 16));
  const int threads = static_cast<int>(cli.get_int("threads", 64));
  cli.check_unknown();

  // 1. A power-law graph, Graph500 style.
  util::Rng rng(42);
  graph::KroneckerParams params;
  params.scale = scale;
  params.edge_factor = 16;
  const graph::Graph g = graph::kronecker(params, rng);
  std::printf("graph: %u vertices, %llu directed edges, avg degree %.1f\n",
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()), g.avg_degree());

  // 2. A simulated machine: one BG/Q node, HTM in short running mode.
  //    All algorithm state must live on the machine's SimHeap.
  mem::SimHeap heap(static_cast<std::size_t>(g.num_vertices()) * 8 +
                    (1u << 22));
  htm::DesMachine machine(model::bgq(), model::HtmKind::kBgqShort, threads,
                          heap);

  // 3. AAM BFS: vertex visits are batched `batch` per hardware transaction.
  const graph::Vertex root = graph::pick_nonisolated_vertex(g);
  algorithms::BfsOptions options;
  options.root = root;
  options.mechanism = core::Mechanism::kHtmCoarsened;
  options.batch = batch;
  const algorithms::BfsResult aam = algorithms::run_bfs(machine, g, options);
  AAM_CHECK(algorithms::validate_bfs_tree(g, root, aam.parent));

  // 4. The fine-grained atomics baseline on an identical machine.
  mem::SimHeap heap2(static_cast<std::size_t>(g.num_vertices()) * 8 +
                     (1u << 22));
  htm::DesMachine machine2(model::bgq(), model::HtmKind::kBgqShort, threads,
                           heap2);
  const algorithms::BfsResult base = baselines::graph500_bfs(machine2, g, root);

  util::Table table({"mechanism", "time (simulated)", "txns", "aborts",
                     "serialized"});
  table.row().cell("AAM coarse HTM (M=" + std::to_string(batch) + ")")
      .cell(util::format_time_ns(aam.total_time_ns))
      .cell(aam.stats.started).cell(aam.stats.total_aborts())
      .cell(aam.stats.serialized);
  table.row().cell("Graph500 atomics")
      .cell(util::format_time_ns(base.total_time_ns))
      .cell(std::uint64_t{0}).cell(std::uint64_t{0}).cell(std::uint64_t{0});
  table.print("BFS from vertex " + std::to_string(root) + " (visited " +
              util::format_count(aam.vertices_visited) + " vertices)");

  std::printf("\ncoarsening speedup over atomics: %.2fx\n",
              base.total_time_ns / aam.total_time_ns);
  return 0;
}
