// Distributed PageRank scenario (§6.2).
//
// Ranks the vertices of an Erdős–Rényi graph partitioned across a
// simulated Blue Gene/Q cluster. Rank contributions travel as coalesced
// atomic active messages and are applied at each owner node in coarse
// hardware transactions. The PBGL-like baseline runs the same AM push
// without coarse transactions for comparison, and the result is checked
// against the sequential reference.
//
//   $ ./distributed_pagerank [--vertices=8192] [--nodes=4] [--threads=4]

#include <algorithm>
#include <cstdio>

#include "algorithms/pagerank.hpp"
#include "algorithms/pagerank_dist.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace aam;
  util::Cli cli(argc, argv);
  const auto n = static_cast<graph::Vertex>(cli.get_int("vertices", 8192));
  const int nodes = static_cast<int>(cli.get_int("nodes", 4));
  const int threads = static_cast<int>(cli.get_int("threads", 4));
  const int iterations = static_cast<int>(cli.get_int("iterations", 5));
  cli.check_unknown();

  util::Rng rng(11);
  const graph::Graph g = graph::erdos_renyi(n, 0.004, rng);
  const graph::Block1D part(n, nodes);
  std::printf("graph: %u vertices, %llu edges over %d nodes x %d threads\n",
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()), nodes, threads);

  algorithms::DistPrOptions options;
  options.iterations = iterations;

  algorithms::DistPrResult aam;
  {
    mem::SimHeap heap(std::size_t{1} << 26);
    net::Cluster cluster(model::bgq(), model::HtmKind::kBgqShort, nodes,
                         threads, heap);
    options.mode = algorithms::DistPrMode::kAam;
    aam = run_distributed_pagerank(cluster, g, part, options);
  }
  algorithms::DistPrResult pbgl;
  {
    // PBGL has no threading: one process per hardware thread (§6.2).
    const graph::Block1D pbgl_part(n, nodes * threads);
    mem::SimHeap heap(std::size_t{1} << 26);
    net::Cluster cluster(model::bgq(), model::HtmKind::kBgqShort,
                         nodes * threads, 1, heap);
    options.mode = algorithms::DistPrMode::kPbgl;
    pbgl = run_distributed_pagerank(cluster, g, pbgl_part, options);
  }

  // Validate against the sequential reference.
  const auto reference =
      algorithms::pagerank_reference(g, iterations, options.damping);
  double max_err = 0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    max_err = std::max(max_err, std::abs(aam.rank[i] - reference[i]));
  }

  util::Table table({"engine", "time (simulated)", "messages", "items/msg",
                     "txn aborts"});
  auto items_per_msg = [](const net::NetStats& s) {
    return s.messages_sent
               ? static_cast<double>(s.items_sent) /
                     static_cast<double>(s.messages_sent)
               : 0.0;
  };
  table.row().cell("AAM (coalesced + coarse HTM)")
      .cell(util::format_time_ns(aam.total_time_ns))
      .cell(aam.net.messages_sent).cell(items_per_msg(aam.net), 1)
      .cell(aam.stats.total_aborts());
  table.row().cell("PBGL-like (per-item atomics)")
      .cell(util::format_time_ns(pbgl.total_time_ns))
      .cell(pbgl.net.messages_sent).cell(items_per_msg(pbgl.net), 1)
      .cell(pbgl.stats.total_aborts());
  table.print("Distributed PageRank, " + std::to_string(iterations) +
              " iterations");
  std::printf("AAM speedup over PBGL-like: %.2fx; max |rank error| vs "
              "reference: %.2e\n\n",
              pbgl.total_time_ns / aam.total_time_ns, max_err);

  // Top-ranked vertices.
  std::vector<graph::Vertex> order(n);
  for (graph::Vertex v = 0; v < n; ++v) order[v] = v;
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](graph::Vertex a, graph::Vertex b) {
                      return aam.rank[a] > aam.rank[b];
                    });
  util::Table top({"rank#", "vertex", "score", "degree"});
  for (int i = 0; i < 5; ++i) {
    top.row().cell(i + 1).cell(std::uint64_t{order[static_cast<std::size_t>(i)]})
        .cell(aam.rank[order[static_cast<std::size_t>(i)]], 6)
        .cell(std::uint64_t{g.degree(order[static_cast<std::size_t>(i)])});
  }
  top.print("Top-5 vertices by PageRank");
  return 0;
}
