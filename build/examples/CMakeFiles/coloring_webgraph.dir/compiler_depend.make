# Empty compiler generated dependencies file for coloring_webgraph.
# This may be replaced when dependencies are built.
