file(REMOVE_RECURSE
  "CMakeFiles/coloring_webgraph.dir/coloring_webgraph.cpp.o"
  "CMakeFiles/coloring_webgraph.dir/coloring_webgraph.cpp.o.d"
  "coloring_webgraph"
  "coloring_webgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coloring_webgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
