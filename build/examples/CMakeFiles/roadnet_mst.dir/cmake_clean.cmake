file(REMOVE_RECURSE
  "CMakeFiles/roadnet_mst.dir/roadnet_mst.cpp.o"
  "CMakeFiles/roadnet_mst.dir/roadnet_mst.cpp.o.d"
  "roadnet_mst"
  "roadnet_mst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roadnet_mst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
