# Empty compiler generated dependencies file for roadnet_mst.
# This may be replaced when dependencies are built.
