# Empty dependencies file for distributed_pagerank.
# This may be replaced when dependencies are built.
