file(REMOVE_RECURSE
  "CMakeFiles/distributed_pagerank.dir/distributed_pagerank.cpp.o"
  "CMakeFiles/distributed_pagerank.dir/distributed_pagerank.cpp.o.d"
  "distributed_pagerank"
  "distributed_pagerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_pagerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
