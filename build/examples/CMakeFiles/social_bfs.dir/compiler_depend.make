# Empty compiler generated dependencies file for social_bfs.
# This may be replaced when dependencies are built.
