file(REMOVE_RECURSE
  "CMakeFiles/social_bfs.dir/social_bfs.cpp.o"
  "CMakeFiles/social_bfs.dir/social_bfs.cpp.o.d"
  "social_bfs"
  "social_bfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_bfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
