# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/htm_des_test[1]_include.cmake")
include("/root/repo/build/tests/htm_stm_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/algorithms_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/threaded_test[1]_include.cmake")
include("/root/repo/build/tests/graphblas_test[1]_include.cmake")
include("/root/repo/build/tests/atomics_test[1]_include.cmake")
include("/root/repo/build/tests/sharding_test[1]_include.cmake")
