file(REMOVE_RECURSE
  "CMakeFiles/htm_des_test.dir/htm_des_test.cpp.o"
  "CMakeFiles/htm_des_test.dir/htm_des_test.cpp.o.d"
  "htm_des_test"
  "htm_des_test.pdb"
  "htm_des_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htm_des_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
