# Empty dependencies file for htm_des_test.
# This may be replaced when dependencies are built.
