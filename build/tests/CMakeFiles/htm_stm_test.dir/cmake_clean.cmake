file(REMOVE_RECURSE
  "CMakeFiles/htm_stm_test.dir/htm_stm_test.cpp.o"
  "CMakeFiles/htm_stm_test.dir/htm_stm_test.cpp.o.d"
  "htm_stm_test"
  "htm_stm_test.pdb"
  "htm_stm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htm_stm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
