# Empty dependencies file for graphblas_test.
# This may be replaced when dependencies are built.
