file(REMOVE_RECURSE
  "CMakeFiles/graphblas_test.dir/graphblas_test.cpp.o"
  "CMakeFiles/graphblas_test.dir/graphblas_test.cpp.o.d"
  "graphblas_test"
  "graphblas_test.pdb"
  "graphblas_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphblas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
