# Empty dependencies file for bench_fig5ab_abort_reasons.
# This may be replaced when dependencies are built.
