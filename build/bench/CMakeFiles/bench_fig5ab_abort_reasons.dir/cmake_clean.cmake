file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5ab_abort_reasons.dir/bench_fig5ab_abort_reasons.cpp.o"
  "CMakeFiles/bench_fig5ab_abort_reasons.dir/bench_fig5ab_abort_reasons.cpp.o.d"
  "bench_fig5ab_abort_reasons"
  "bench_fig5ab_abort_reasons.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5ab_abort_reasons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
