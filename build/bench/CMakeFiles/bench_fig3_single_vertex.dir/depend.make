# Empty dependencies file for bench_fig3_single_vertex.
# This may be replaced when dependencies are built.
