file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_single_vertex.dir/bench_fig3_single_vertex.cpp.o"
  "CMakeFiles/bench_fig3_single_vertex.dir/bench_fig3_single_vertex.cpp.o.d"
  "bench_fig3_single_vertex"
  "bench_fig3_single_vertex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_single_vertex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
