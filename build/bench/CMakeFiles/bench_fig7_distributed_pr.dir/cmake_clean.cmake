file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_distributed_pr.dir/bench_fig7_distributed_pr.cpp.o"
  "CMakeFiles/bench_fig7_distributed_pr.dir/bench_fig7_distributed_pr.cpp.o.d"
  "bench_fig7_distributed_pr"
  "bench_fig7_distributed_pr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_distributed_pr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
