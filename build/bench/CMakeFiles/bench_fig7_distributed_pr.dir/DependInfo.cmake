
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_distributed_pr.cpp" "bench/CMakeFiles/bench_fig7_distributed_pr.dir/bench_fig7_distributed_pr.cpp.o" "gcc" "bench/CMakeFiles/bench_fig7_distributed_pr.dir/bench_fig7_distributed_pr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/aam_util.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/aam_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aam_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/aam_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/htm/CMakeFiles/aam_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/aam_net.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/aam_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/aam_core.dir/DependInfo.cmake"
  "/root/repo/build/src/algorithms/CMakeFiles/aam_algorithms.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/aam_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
