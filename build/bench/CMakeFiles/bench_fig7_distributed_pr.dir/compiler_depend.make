# Empty compiler generated dependencies file for bench_fig7_distributed_pr.
# This may be replaced when dependencies are built.
