# Empty dependencies file for bench_fig7ab_scalability.
# This may be replaced when dependencies are built.
