# Empty dependencies file for bench_table1_realworld.
# This may be replaced when dependencies are built.
