file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_realworld.dir/bench_table1_realworld.cpp.o"
  "CMakeFiles/bench_table1_realworld.dir/bench_table1_realworld.cpp.o.d"
  "bench_table1_realworld"
  "bench_table1_realworld.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_realworld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
