# Empty dependencies file for bench_fig5_internode.
# This may be replaced when dependencies are built.
