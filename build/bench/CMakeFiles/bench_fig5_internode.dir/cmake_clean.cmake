file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_internode.dir/bench_fig5_internode.cpp.o"
  "CMakeFiles/bench_fig5_internode.dir/bench_fig5_internode.cpp.o.d"
  "bench_fig5_internode"
  "bench_fig5_internode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_internode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
