# Empty dependencies file for bench_fig5i_ownership.
# This may be replaced when dependencies are built.
