file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5i_ownership.dir/bench_fig5i_ownership.cpp.o"
  "CMakeFiles/bench_fig5i_ownership.dir/bench_fig5i_ownership.cpp.o.d"
  "bench_fig5i_ownership"
  "bench_fig5i_ownership.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5i_ownership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
