# Empty compiler generated dependencies file for bench_fig6_bfs_overview.
# This may be replaced when dependencies are built.
