# Empty dependencies file for aam_baselines.
# This may be replaced when dependencies are built.
