file(REMOVE_RECURSE
  "libaam_baselines.a"
)
