file(REMOVE_RECURSE
  "CMakeFiles/aam_baselines.dir/bsp_engine.cpp.o"
  "CMakeFiles/aam_baselines.dir/bsp_engine.cpp.o.d"
  "CMakeFiles/aam_baselines.dir/named.cpp.o"
  "CMakeFiles/aam_baselines.dir/named.cpp.o.d"
  "libaam_baselines.a"
  "libaam_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aam_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
