# Empty compiler generated dependencies file for aam_algorithms.
# This may be replaced when dependencies are built.
