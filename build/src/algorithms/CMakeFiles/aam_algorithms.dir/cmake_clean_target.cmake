file(REMOVE_RECURSE
  "libaam_algorithms.a"
)
