
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algorithms/bfs.cpp" "src/algorithms/CMakeFiles/aam_algorithms.dir/bfs.cpp.o" "gcc" "src/algorithms/CMakeFiles/aam_algorithms.dir/bfs.cpp.o.d"
  "/root/repo/src/algorithms/boruvka.cpp" "src/algorithms/CMakeFiles/aam_algorithms.dir/boruvka.cpp.o" "gcc" "src/algorithms/CMakeFiles/aam_algorithms.dir/boruvka.cpp.o.d"
  "/root/repo/src/algorithms/coloring.cpp" "src/algorithms/CMakeFiles/aam_algorithms.dir/coloring.cpp.o" "gcc" "src/algorithms/CMakeFiles/aam_algorithms.dir/coloring.cpp.o.d"
  "/root/repo/src/algorithms/pagerank.cpp" "src/algorithms/CMakeFiles/aam_algorithms.dir/pagerank.cpp.o" "gcc" "src/algorithms/CMakeFiles/aam_algorithms.dir/pagerank.cpp.o.d"
  "/root/repo/src/algorithms/pagerank_dist.cpp" "src/algorithms/CMakeFiles/aam_algorithms.dir/pagerank_dist.cpp.o" "gcc" "src/algorithms/CMakeFiles/aam_algorithms.dir/pagerank_dist.cpp.o.d"
  "/root/repo/src/algorithms/sssp.cpp" "src/algorithms/CMakeFiles/aam_algorithms.dir/sssp.cpp.o" "gcc" "src/algorithms/CMakeFiles/aam_algorithms.dir/sssp.cpp.o.d"
  "/root/repo/src/algorithms/st_connectivity.cpp" "src/algorithms/CMakeFiles/aam_algorithms.dir/st_connectivity.cpp.o" "gcc" "src/algorithms/CMakeFiles/aam_algorithms.dir/st_connectivity.cpp.o.d"
  "/root/repo/src/algorithms/threaded.cpp" "src/algorithms/CMakeFiles/aam_algorithms.dir/threaded.cpp.o" "gcc" "src/algorithms/CMakeFiles/aam_algorithms.dir/threaded.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/aam_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/aam_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/aam_net.dir/DependInfo.cmake"
  "/root/repo/build/src/htm/CMakeFiles/aam_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/aam_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aam_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/aam_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aam_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
