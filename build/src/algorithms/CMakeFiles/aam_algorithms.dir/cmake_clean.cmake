file(REMOVE_RECURSE
  "CMakeFiles/aam_algorithms.dir/bfs.cpp.o"
  "CMakeFiles/aam_algorithms.dir/bfs.cpp.o.d"
  "CMakeFiles/aam_algorithms.dir/boruvka.cpp.o"
  "CMakeFiles/aam_algorithms.dir/boruvka.cpp.o.d"
  "CMakeFiles/aam_algorithms.dir/coloring.cpp.o"
  "CMakeFiles/aam_algorithms.dir/coloring.cpp.o.d"
  "CMakeFiles/aam_algorithms.dir/pagerank.cpp.o"
  "CMakeFiles/aam_algorithms.dir/pagerank.cpp.o.d"
  "CMakeFiles/aam_algorithms.dir/pagerank_dist.cpp.o"
  "CMakeFiles/aam_algorithms.dir/pagerank_dist.cpp.o.d"
  "CMakeFiles/aam_algorithms.dir/sssp.cpp.o"
  "CMakeFiles/aam_algorithms.dir/sssp.cpp.o.d"
  "CMakeFiles/aam_algorithms.dir/st_connectivity.cpp.o"
  "CMakeFiles/aam_algorithms.dir/st_connectivity.cpp.o.d"
  "CMakeFiles/aam_algorithms.dir/threaded.cpp.o"
  "CMakeFiles/aam_algorithms.dir/threaded.cpp.o.d"
  "libaam_algorithms.a"
  "libaam_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aam_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
