file(REMOVE_RECURSE
  "CMakeFiles/aam_util.dir/cli.cpp.o"
  "CMakeFiles/aam_util.dir/cli.cpp.o.d"
  "CMakeFiles/aam_util.dir/stats.cpp.o"
  "CMakeFiles/aam_util.dir/stats.cpp.o.d"
  "CMakeFiles/aam_util.dir/table.cpp.o"
  "CMakeFiles/aam_util.dir/table.cpp.o.d"
  "libaam_util.a"
  "libaam_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aam_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
