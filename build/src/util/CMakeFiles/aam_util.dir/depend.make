# Empty dependencies file for aam_util.
# This may be replaced when dependencies are built.
