file(REMOVE_RECURSE
  "libaam_util.a"
)
