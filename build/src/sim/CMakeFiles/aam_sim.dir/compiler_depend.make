# Empty compiler generated dependencies file for aam_sim.
# This may be replaced when dependencies are built.
