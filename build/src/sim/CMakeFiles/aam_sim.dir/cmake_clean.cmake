file(REMOVE_RECURSE
  "CMakeFiles/aam_sim.dir/event_queue.cpp.o"
  "CMakeFiles/aam_sim.dir/event_queue.cpp.o.d"
  "libaam_sim.a"
  "libaam_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aam_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
