file(REMOVE_RECURSE
  "libaam_sim.a"
)
