file(REMOVE_RECURSE
  "CMakeFiles/aam_core.dir/distributed.cpp.o"
  "CMakeFiles/aam_core.dir/distributed.cpp.o.d"
  "CMakeFiles/aam_core.dir/ownership.cpp.o"
  "CMakeFiles/aam_core.dir/ownership.cpp.o.d"
  "CMakeFiles/aam_core.dir/runtime.cpp.o"
  "CMakeFiles/aam_core.dir/runtime.cpp.o.d"
  "libaam_core.a"
  "libaam_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aam_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
