file(REMOVE_RECURSE
  "libaam_core.a"
)
