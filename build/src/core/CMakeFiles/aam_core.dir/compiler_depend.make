# Empty compiler generated dependencies file for aam_core.
# This may be replaced when dependencies are built.
