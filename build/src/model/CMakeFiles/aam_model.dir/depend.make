# Empty dependencies file for aam_model.
# This may be replaced when dependencies are built.
