file(REMOVE_RECURSE
  "libaam_model.a"
)
