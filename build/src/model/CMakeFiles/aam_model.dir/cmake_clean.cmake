file(REMOVE_RECURSE
  "CMakeFiles/aam_model.dir/machines.cpp.o"
  "CMakeFiles/aam_model.dir/machines.cpp.o.d"
  "CMakeFiles/aam_model.dir/perf_model.cpp.o"
  "CMakeFiles/aam_model.dir/perf_model.cpp.o.d"
  "libaam_model.a"
  "libaam_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aam_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
