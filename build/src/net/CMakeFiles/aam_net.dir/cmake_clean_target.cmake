file(REMOVE_RECURSE
  "libaam_net.a"
)
