# Empty compiler generated dependencies file for aam_net.
# This may be replaced when dependencies are built.
