file(REMOVE_RECURSE
  "CMakeFiles/aam_net.dir/cluster.cpp.o"
  "CMakeFiles/aam_net.dir/cluster.cpp.o.d"
  "libaam_net.a"
  "libaam_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aam_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
