
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/htm/des_engine.cpp" "src/htm/CMakeFiles/aam_htm.dir/des_engine.cpp.o" "gcc" "src/htm/CMakeFiles/aam_htm.dir/des_engine.cpp.o.d"
  "/root/repo/src/htm/stm_engine.cpp" "src/htm/CMakeFiles/aam_htm.dir/stm_engine.cpp.o" "gcc" "src/htm/CMakeFiles/aam_htm.dir/stm_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/aam_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aam_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/aam_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/aam_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
