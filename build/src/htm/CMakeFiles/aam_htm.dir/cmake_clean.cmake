file(REMOVE_RECURSE
  "CMakeFiles/aam_htm.dir/des_engine.cpp.o"
  "CMakeFiles/aam_htm.dir/des_engine.cpp.o.d"
  "CMakeFiles/aam_htm.dir/stm_engine.cpp.o"
  "CMakeFiles/aam_htm.dir/stm_engine.cpp.o.d"
  "libaam_htm.a"
  "libaam_htm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aam_htm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
