# Empty dependencies file for aam_htm.
# This may be replaced when dependencies are built.
