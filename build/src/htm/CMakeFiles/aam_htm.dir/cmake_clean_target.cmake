file(REMOVE_RECURSE
  "libaam_htm.a"
)
