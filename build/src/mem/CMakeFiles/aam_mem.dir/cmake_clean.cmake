file(REMOVE_RECURSE
  "CMakeFiles/aam_mem.dir/footprint.cpp.o"
  "CMakeFiles/aam_mem.dir/footprint.cpp.o.d"
  "CMakeFiles/aam_mem.dir/sim_heap.cpp.o"
  "CMakeFiles/aam_mem.dir/sim_heap.cpp.o.d"
  "libaam_mem.a"
  "libaam_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aam_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
