# Empty dependencies file for aam_mem.
# This may be replaced when dependencies are built.
