file(REMOVE_RECURSE
  "libaam_mem.a"
)
