file(REMOVE_RECURSE
  "CMakeFiles/aam_graph.dir/analogs.cpp.o"
  "CMakeFiles/aam_graph.dir/analogs.cpp.o.d"
  "CMakeFiles/aam_graph.dir/csr.cpp.o"
  "CMakeFiles/aam_graph.dir/csr.cpp.o.d"
  "CMakeFiles/aam_graph.dir/generators.cpp.o"
  "CMakeFiles/aam_graph.dir/generators.cpp.o.d"
  "CMakeFiles/aam_graph.dir/gstats.cpp.o"
  "CMakeFiles/aam_graph.dir/gstats.cpp.o.d"
  "CMakeFiles/aam_graph.dir/io.cpp.o"
  "CMakeFiles/aam_graph.dir/io.cpp.o.d"
  "CMakeFiles/aam_graph.dir/partition.cpp.o"
  "CMakeFiles/aam_graph.dir/partition.cpp.o.d"
  "libaam_graph.a"
  "libaam_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aam_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
