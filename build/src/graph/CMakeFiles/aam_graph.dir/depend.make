# Empty dependencies file for aam_graph.
# This may be replaced when dependencies are built.
