file(REMOVE_RECURSE
  "libaam_graph.a"
)
