// Tests for the real-thread STM execution backend: the simulated and the
// OS-scheduled implementations must agree.

#include <gtest/gtest.h>

#include "algorithms/bfs.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/threaded.hpp"
#include "graph/generators.hpp"
#include "graph/gstats.hpp"

namespace aam::algorithms {
namespace {

using graph::Graph;
using graph::Vertex;

Graph test_graph(std::uint64_t seed = 3) {
  util::Rng rng(seed);
  graph::KroneckerParams p;
  p.scale = 11;
  p.edge_factor = 8;
  return graph::kronecker(p, rng);
}

class ThreadedBfsTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ThreadedBfsTest, ProducesValidTree) {
  const auto [threads, batch] = GetParam();
  const Graph g = test_graph();
  const Vertex root = graph::pick_nonisolated_vertex(g);
  const auto result = threaded_bfs(g, root, threads, batch);
  EXPECT_TRUE(validate_bfs_tree(g, root, result.parent));
  EXPECT_GT(result.stm_commits, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndBatches, ThreadedBfsTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(1, 16, 128)),
    [](const auto& info) {
      return "T" + std::to_string(std::get<0>(info.param)) + "_M" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ThreadedBfs, RepeatedRunsAllValid) {
  // The OS scheduler interleaves differently every run; every interleaving
  // must still yield a valid tree.
  const Graph g = test_graph(7);
  const Vertex root = graph::pick_nonisolated_vertex(g);
  for (int run = 0; run < 5; ++run) {
    const auto result = threaded_bfs(g, root, 4, 8);
    ASSERT_TRUE(validate_bfs_tree(g, root, result.parent)) << run;
  }
}

TEST(ThreadedBfs, DisconnectedStaysUnvisited) {
  const Graph g = Graph::from_edges(6, {{0, 1}, {1, 2}, {4, 5}}, true);
  const auto result = threaded_bfs(g, 0, 2, 4);
  EXPECT_EQ(result.parent[4], graph::kInvalidVertex);
  EXPECT_EQ(result.parent[5], graph::kInvalidVertex);
  EXPECT_NE(result.parent[2], graph::kInvalidVertex);
}

class ThreadedPrTest : public ::testing::TestWithParam<int> {};

TEST_P(ThreadedPrTest, MatchesSequentialReference) {
  const Graph g = test_graph(11);
  const auto result = threaded_pagerank(g, 4, 0.85, GetParam(), 8);
  const auto reference = pagerank_reference(g, 4, 0.85);
  ASSERT_EQ(result.rank.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    ASSERT_NEAR(result.rank[i], reference[i], 1e-9) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadedPrTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(ThreadedPr, ConflictingAccumulationsAllCommit) {
  // A star graph maximizes rank-push conflicts at the hub; the FF & AS
  // semantics require every contribution to land regardless.
  graph::EdgeList edges;
  for (Vertex v = 1; v < 200; ++v) edges.emplace_back(0, v);
  const Graph g = Graph::from_edges(200, edges, true);
  const auto result = threaded_pagerank(g, 3, 0.85, 8, 4);
  const auto reference = pagerank_reference(g, 3, 0.85);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    ASSERT_NEAR(result.rank[i], reference[i], 1e-9) << i;
  }
}

}  // namespace
}  // namespace aam::algorithms
