// aam::check tests: the checkers stay silent on every (algorithm,
// mechanism, machine) combination the repo ships — and they catch the two
// canonical operator bugs the layer exists for: a raw write that bypasses
// core::Access (escaped write) and an operator whose committed outcome a
// serial re-execution cannot reproduce (serializability divergence).

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "algorithms/bfs.hpp"
#include "algorithms/boruvka.hpp"
#include "algorithms/coloring.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/st_connectivity.hpp"
#include "check/check.hpp"
#include "core/runtime.hpp"
#include "graph/generators.hpp"
#include "graph/gstats.hpp"

namespace aam {
namespace {

using model::HtmKind;

check::CheckConfig all_checks() {
  return {.races = true, .serial = true, .footprint = true};
}

std::string report_of(const check::Checker& checker) {
  std::ostringstream out;
  checker.report(out);
  return out.str();
}

// ---------------------------------------------------------- config parsing

TEST(CheckConfig, ParseRecognizesEveryMode) {
  EXPECT_FALSE(check::parse_check("none")->enabled());
  EXPECT_TRUE(check::parse_check("races")->races);
  EXPECT_FALSE(check::parse_check("races")->serial);
  EXPECT_TRUE(check::parse_check("serial")->serial);
  EXPECT_TRUE(check::parse_check("footprint")->footprint);
  const auto all = check::parse_check("all");
  ASSERT_TRUE(all.has_value());
  EXPECT_TRUE(all->races && all->serial && all->footprint);
}

TEST(CheckConfig, ParseRejectsUnknownNames) {
  EXPECT_FALSE(check::parse_check("").has_value());
  EXPECT_FALSE(check::parse_check("race").has_value());
  EXPECT_FALSE(check::parse_check("ALL").has_value());
}

TEST(CheckConfig, ErrorNamesFlagValueAndEveryValidSpelling) {
  const std::string msg = check::check_error("check", "bogus");
  EXPECT_NE(msg.find("--check"), std::string::npos);
  EXPECT_NE(msg.find("bogus"), std::string::npos);
  for (const char* name : {"none", "races", "serial", "footprint", "all"}) {
    EXPECT_NE(msg.find(name), std::string::npos) << name;
  }
}

// ------------------------------------------------------------- clean runs

TEST(Checker, CleanRunPassesAndSeesBatches) {
  mem::SimHeap heap(1 << 20);
  htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 4, heap);
  auto data = heap.alloc<std::uint64_t>(256, "data");
  check::Checker checker(machine, all_checks());
  core::AamRuntime rt(machine, {.batch = 8, .decorator = &checker});
  rt.for_each(256, [&](auto& access, std::uint64_t i) {
    access.fetch_add(data[i], std::uint64_t{1});
  });
  EXPECT_TRUE(checker.passed()) << report_of(checker);
  EXPECT_GT(checker.batches_checked(), 0u);
}

TEST(Checker, DoesNotPerturbSimulatedTime) {
  auto bfs_time = [](bool with_checks) {
    util::Rng rng(7);
    graph::KroneckerParams params;
    params.scale = 9;
    params.edge_factor = 4;
    const graph::Graph g = graph::kronecker(params, rng);
    mem::SimHeap heap(1 << 22);
    htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 8, heap);
    check::Checker checker(machine,
                           with_checks ? all_checks() : check::CheckConfig{});
    algorithms::BfsOptions options;
    options.root = graph::pick_nonisolated_vertex(g);
    options.batch = 8;
    if (with_checks) options.decorator = &checker;
    const auto r = algorithms::run_bfs(machine, g, options);
    EXPECT_TRUE(checker.passed()) << report_of(checker);
    return r.total_time_ns;
  };
  EXPECT_EQ(bfs_time(false), bfs_time(true));
}

// -------------------------------------------------------- buggy operators

// A write through a raw pointer, bypassing core::Access: no mechanism
// synchronizes it, no conflict stamp is bumped, no cost is charged. The
// escaped-write detector must flag it and name the owning allocation.
TEST(Checker, RacesCatchesEscapedRawWrite) {
  mem::SimHeap heap(1 << 20);
  htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 4, heap);
  auto data = heap.alloc<std::uint64_t>(64, "buggy.data");
  check::Checker checker(machine, {.races = true});
  core::AamRuntime rt(machine, {.batch = 4, .decorator = &checker});
  rt.for_each(64, [&](auto& access, std::uint64_t i) {
    if (i % 2 == 0) {
      access.store(data[i], std::uint64_t{1});  // modelled: fine
    } else {
      data[i] = 1;  // raw escape: must be flagged
    }
  });
  EXPECT_FALSE(checker.passed());
  ASSERT_FALSE(checker.violations().empty());
  const auto& v = checker.violations().front();
  EXPECT_EQ(v.kind, check::Violation::Kind::kEscapedWrite);
  EXPECT_NE(v.detail.find("buggy.data"), std::string::npos) << v.detail;
  EXPECT_NE(report_of(checker).find("escaped-write"), std::string::npos);
}

// An operator that derives its stores from mutable host state outside the
// Access surface: the committed outcome depends on execution order and the
// serial re-execution cannot reproduce it.
TEST(Checker, SerialReplayCatchesNonReplayableOperator) {
  mem::SimHeap heap(1 << 20);
  htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 4, heap);
  auto data = heap.alloc<std::uint64_t>(64, "data");
  check::Checker checker(machine, {.serial = true});
  core::AamRuntime rt(machine, {.batch = 4, .decorator = &checker});
  std::uint64_t hidden_counter = 0;
  rt.for_each(64, [&](auto& access, std::uint64_t i) {
    access.store(data[i], ++hidden_counter);
  });
  EXPECT_FALSE(checker.passed());
  ASSERT_FALSE(checker.violations().empty());
  EXPECT_EQ(checker.violations().front().kind,
            check::Violation::Kind::kSerialDivergence);
}

// A batch mislabeled with an operator id whose static signature does not
// cover the touched allocation: the dynamic-vs-static audit must flag the
// escape and name both the offending label and the permitted set.
TEST(Checker, StaticSignatureAuditCatchesMislabeledBatch) {
  mem::SimHeap heap(1 << 20);
  htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 4, heap);
  auto data = heap.alloc<std::uint64_t>(64, "mystery.array");
  check::Checker checker(machine, {.footprint = true});
  core::AamRuntime rt(machine, {.batch = 4, .decorator = &checker});
  // Claims to be bfs_visit but writes an allocation bfs_visit's static
  // may-write set ({bfs.parent}) does not contain.
  rt.for_each(
      64,
      [&](auto& access, std::uint64_t i) {
        access.store(data[i], std::uint64_t{1});
      },
      core::OperatorId::kBfsVisit);
  EXPECT_FALSE(checker.passed());
  ASSERT_FALSE(checker.violations().empty());
  const auto& v = checker.violations().front();
  EXPECT_EQ(v.kind, check::Violation::Kind::kStaticEscape);
  EXPECT_NE(v.detail.find("mystery.array"), std::string::npos) << v.detail;
  EXPECT_NE(v.detail.find("bfs.parent"), std::string::npos) << v.detail;
  EXPECT_NE(report_of(checker).find("static-escape"), std::string::npos);
}

// Untagged batches (kUnknown) are exempt from the static audit — ad-hoc
// runtime workloads carry no signature to check against.
TEST(Checker, StaticSignatureAuditSkipsUntaggedBatches) {
  mem::SimHeap heap(1 << 20);
  htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 4, heap);
  auto data = heap.alloc<std::uint64_t>(64, "adhoc.array");
  check::Checker checker(machine, {.footprint = true});
  core::AamRuntime rt(machine, {.batch = 4, .decorator = &checker});
  rt.for_each(64, [&](auto& access, std::uint64_t i) {
    access.store(data[i], std::uint64_t{1});
  });
  EXPECT_TRUE(checker.passed()) << report_of(checker);
}

// ------------------------------------------------------ digest regression

TEST(Checker, CommitDigestIsDeterministicAcrossRuns) {
  auto digest_of = [](std::uint64_t seed) {
    util::Rng rng(seed);
    graph::KroneckerParams params;
    params.scale = 9;
    params.edge_factor = 4;
    const graph::Graph g = graph::kronecker(params, rng);
    mem::SimHeap heap(1 << 22);
    htm::DesMachine machine(model::bgq(), HtmKind::kBgqShort, 16, heap, seed);
    check::Checker checker(machine, {.footprint = true});
    algorithms::BfsOptions options;
    options.root = graph::pick_nonisolated_vertex(g);
    options.batch = 16;
    options.decorator = &checker;
    algorithms::run_bfs(machine, g, options);
    EXPECT_TRUE(checker.passed()) << report_of(checker);
    EXPECT_GT(checker.batches_checked(), 0u);
    return checker.digest();
  };
  const std::uint64_t first = digest_of(3);
  EXPECT_EQ(first, digest_of(3));
  EXPECT_NE(first, digest_of(4));  // different input -> different history
}

// ------------------------------------- acceptance sweep: everything clean

graph::Vertex second_endpoint(const graph::Graph& g, graph::Vertex s) {
  for (graph::Vertex v = g.num_vertices(); v-- > 0;) {
    if (v != s && !g.neighbors(v).empty()) return v;
  }
  return s;
}

// Every §3.3 algorithm under every executor mechanism on both machine
// models, all three checkers on. Any races/serializability/footprint bug
// in an executor or operator formulation fails here with a full report.
TEST(Checker, AllAlgorithmsAllMechanismsBothMachinesPassAllChecks) {
  constexpr std::uint64_t kSeed = 1;
  util::Rng rng(kSeed);
  graph::KroneckerParams params;
  params.scale = 10;
  params.edge_factor = 4;
  const graph::Graph g = graph::kronecker(params, rng);
  const graph::Vertex root = graph::pick_nonisolated_vertex(g);
  const graph::Vertex st_t = second_endpoint(g, root);

  util::Rng wrng(kSeed + 1);
  auto wedges = graph::erdos_renyi_edges(600, 0.02, wrng);
  const auto weights =
      graph::random_weights(wedges.size(), 1.0f, 100.0f, wrng);
  const graph::Graph wg =
      graph::Graph::from_weighted_edges(600, wedges, weights, true);

  struct Setup {
    const model::MachineConfig* config;
    HtmKind kind;
    int threads;
  };
  const Setup setups[] = {
      {&model::bgq(), HtmKind::kBgqShort, 16},
      {&model::has_c(), HtmKind::kRtm, 8},
  };

  for (const Setup& setup : setups) {
    for (const core::Mechanism mech : core::all_mechanisms()) {
      auto run_all = [&](htm::DesMachine& m, check::Checker& checker) {
        {
          algorithms::BfsOptions o;
          o.root = root;
          o.mechanism = mech;
          o.batch = 8;
          o.decorator = &checker;
          const auto r = algorithms::run_bfs(m, g, o);
          ASSERT_TRUE(algorithms::validate_bfs_tree(g, root, r.parent));
        }
        {
          algorithms::PageRankOptions o;
          o.iterations = 2;
          o.mechanism = mech;
          o.batch = 8;
          o.decorator = &checker;
          algorithms::run_pagerank(m, g, o);
        }
        {
          algorithms::ColoringOptions o;
          o.mechanism = mech;
          o.batch = 8;
          o.seed = kSeed;
          o.decorator = &checker;
          const auto r = algorithms::run_boman_coloring(m, g, o);
          ASSERT_TRUE(algorithms::validate_coloring(g, r.color));
        }
        {
          algorithms::StConnOptions o;
          o.s = root;
          o.t = st_t;
          o.mechanism = mech;
          o.batch = 8;
          o.decorator = &checker;
          algorithms::run_st_connectivity(m, g, o);
        }
        {
          algorithms::SsspOptions o;
          o.source = 0;
          o.mechanism = mech;
          o.batch = 8;
          o.decorator = &checker;
          algorithms::run_sssp(m, wg, o);
        }
        {
          algorithms::BoruvkaOptions o;
          o.mechanism = mech;
          o.batch = 8;
          o.decorator = &checker;
          algorithms::run_boruvka(m, wg, o);
        }
      };
      mem::SimHeap heap(std::size_t{1} << 24);
      htm::DesMachine machine(*setup.config, setup.kind, setup.threads, heap,
                              kSeed);
      check::Checker checker(machine, all_checks());
      run_all(machine, checker);
      EXPECT_TRUE(checker.passed())
          << setup.config->name << "/" << core::to_string(mech) << "\n"
          << report_of(checker);
      EXPECT_GT(checker.batches_checked(), 0u)
          << setup.config->name << "/" << core::to_string(mech);
    }
  }
}

}  // namespace
}  // namespace aam
