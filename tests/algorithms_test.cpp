#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/bfs.hpp"
#include "algorithms/boruvka.hpp"
#include "algorithms/coloring.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/st_connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/gstats.hpp"

namespace aam::algorithms {
namespace {

using graph::Graph;
using graph::Vertex;
using model::HtmKind;

Graph test_graph(std::uint64_t seed = 3) {
  util::Rng rng(seed);
  graph::KroneckerParams p;
  p.scale = 11;
  p.edge_factor = 8;
  return graph::kronecker(p, rng);
}

Graph weighted_test_graph(std::uint64_t seed = 5) {
  util::Rng rng(seed);
  auto edges = graph::erdos_renyi_edges(600, 0.02, rng);
  const auto weights = graph::random_weights(edges.size(), 1.0f, 100.0f, rng);
  return Graph::from_weighted_edges(600, edges, weights, true);
}

// ------------------------------------------------------------------ BFS

class BfsAllMechanismsTest
    : public ::testing::TestWithParam<std::tuple<core::Mechanism, int>> {};

TEST_P(BfsAllMechanismsTest, ProducesValidBfsTree) {
  const auto [mechanism, threads] = GetParam();
  const Graph g = test_graph();
  mem::SimHeap heap(std::size_t{1} << 24);
  htm::DesMachine machine(model::has_c(), HtmKind::kRtm, threads, heap);
  BfsOptions options;
  options.root = graph::pick_nonisolated_vertex(g);
  options.mechanism = mechanism;
  options.batch = 8;
  const BfsResult result = run_bfs(machine, g, options);
  EXPECT_TRUE(validate_bfs_tree(g, options.root, result.parent));
  EXPECT_EQ(result.vertices_visited,
            graph::reachable_count(g, options.root));
  EXPECT_GT(result.total_time_ns, 0.0);
  EXPECT_FALSE(result.level_times_ns.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllMechanismsAndThreads, BfsAllMechanismsTest,
    ::testing::Combine(::testing::ValuesIn(core::all_mechanisms().begin(),
                                           core::all_mechanisms().end()),
                       ::testing::Values(1, 4, 8)),
    [](const auto& info) {
      std::string name = core::to_string(std::get<0>(info.param));
      std::erase(name, '-');  // gtest parameter names must be alphanumeric
      return name + "_T" + std::to_string(std::get<1>(info.param));
    });

class BfsBatchSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(BfsBatchSweepTest, AamCorrectAtEveryBatchSize) {
  const Graph g = test_graph(11);
  mem::SimHeap heap(std::size_t{1} << 24);
  htm::DesMachine machine(model::bgq(), HtmKind::kBgqShort, 16, heap);
  BfsOptions options;
  options.root = graph::pick_nonisolated_vertex(g);
  options.batch = GetParam();
  const BfsResult result = run_bfs(machine, g, options);
  EXPECT_TRUE(validate_bfs_tree(g, options.root, result.parent));
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, BfsBatchSweepTest,
                         ::testing::Values(1, 2, 16, 80, 144, 320));

TEST(Bfs, DeterministicAcrossRuns) {
  const Graph g = test_graph(13);
  auto run_once = [&] {
    mem::SimHeap heap(std::size_t{1} << 24);
    htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 8, heap, 99);
    BfsOptions options;
    options.root = graph::pick_nonisolated_vertex(g);
    const BfsResult r = run_bfs(machine, g, options);
    return std::tuple(r.total_time_ns, r.stats.total_aborts(),
                      r.vertices_visited);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Bfs, BgqValidOnBothHtmModes) {
  const Graph g = test_graph(17);
  for (HtmKind kind : {HtmKind::kBgqShort, HtmKind::kBgqLong}) {
    mem::SimHeap heap(std::size_t{1} << 24);
    htm::DesMachine machine(model::bgq(), kind, 64, heap);
    BfsOptions options;
    options.root = graph::pick_nonisolated_vertex(g);
    options.batch = 32;
    const BfsResult result = run_bfs(machine, g, options);
    EXPECT_TRUE(validate_bfs_tree(g, options.root, result.parent))
        << to_string(kind);
  }
}

TEST(Bfs, HleValidUnderContention) {
  const Graph g = test_graph(19);
  mem::SimHeap heap(std::size_t{1} << 24);
  htm::DesMachine machine(model::has_c(), HtmKind::kHle, 8, heap);
  BfsOptions options;
  options.root = graph::pick_nonisolated_vertex(g);
  options.batch = 4;
  const BfsResult result = run_bfs(machine, g, options);
  EXPECT_TRUE(validate_bfs_tree(g, options.root, result.parent));
}

TEST(Bfs, LevelTimesSumToTotal) {
  const Graph g = test_graph(23);
  mem::SimHeap heap(std::size_t{1} << 24);
  htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 8, heap);
  BfsOptions options;
  options.root = graph::pick_nonisolated_vertex(g);
  const BfsResult r = run_bfs(machine, g, options);
  double sum = 0;
  for (double t : r.level_times_ns) sum += t;
  // Levels partition the run up to per-level barrier costs.
  EXPECT_NEAR(sum, r.total_time_ns,
              options.barrier_cost_ns * static_cast<double>(
                  r.level_times_ns.size() + 1));
}

// ------------------------------------------------------------- PageRank

TEST(PageRank, MatchesSequentialReference) {
  const Graph g = test_graph(29);
  mem::SimHeap heap(std::size_t{1} << 24);
  htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 8, heap);
  PageRankOptions options;
  options.iterations = 5;
  options.batch = 8;
  const PageRankResult result = run_pagerank(machine, g, options);
  const auto reference = pagerank_reference(g, 5, options.damping);
  ASSERT_EQ(result.rank.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_NEAR(result.rank[i], reference[i], 1e-9) << i;
  }
}

TEST(PageRank, RanksSumToAtMostOne) {
  // Push PR without dangling redistribution: the total mass is <= 1 and
  // positive.
  const Graph g = test_graph(31);
  mem::SimHeap heap(std::size_t{1} << 24);
  htm::DesMachine machine(model::bgq(), HtmKind::kBgqShort, 16, heap);
  const PageRankResult result = run_pagerank(machine, g, {.iterations = 3});
  double sum = 0;
  for (double r : result.rank) {
    EXPECT_GT(r, 0.0);
    sum += r;
  }
  EXPECT_LE(sum, 1.0 + 1e-9);
  EXPECT_GT(sum, 0.1);
}

TEST(PageRank, HubHasHighestRank) {
  // Star graph: the center must collect the top rank.
  graph::EdgeList edges;
  for (Vertex v = 1; v < 50; ++v) edges.emplace_back(0, v);
  const Graph g = Graph::from_edges(50, edges, true);
  mem::SimHeap heap(std::size_t{1} << 22);
  htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 4, heap);
  const PageRankResult result = run_pagerank(machine, g, {.iterations = 10});
  for (Vertex v = 1; v < 50; ++v) EXPECT_GT(result.rank[0], result.rank[v]);
}

// ------------------------------------------------------- ST connectivity

TEST(StConnectivity, DetectsConnectedPair) {
  const Graph g = test_graph(37);
  const Vertex s = graph::pick_nonisolated_vertex(g, 1);
  // Pick t reachable from s.
  const auto levels = graph::bfs_levels(g, s);
  Vertex t = graph::kInvalidVertex;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (v != s && levels[v] != graph::kInvalidLevel && levels[v] >= 2) {
      t = v;
      break;
    }
  }
  ASSERT_NE(t, graph::kInvalidVertex);
  mem::SimHeap heap(std::size_t{1} << 24);
  htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 8, heap);
  StConnOptions options;
  options.s = s;
  options.t = t;
  const StConnResult result = run_st_connectivity(machine, g, options);
  EXPECT_TRUE(result.connected);
}

TEST(StConnectivity, DetectsDisconnectedPair) {
  // Two disjoint cliques.
  graph::EdgeList edges;
  for (Vertex u = 0; u < 10; ++u) {
    for (Vertex v = u + 1; v < 10; ++v) edges.emplace_back(u, v);
  }
  for (Vertex u = 10; u < 20; ++u) {
    for (Vertex v = u + 1; v < 20; ++v) edges.emplace_back(u, v);
  }
  const Graph g = Graph::from_edges(20, edges, true);
  mem::SimHeap heap(std::size_t{1} << 20);
  htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 4, heap);
  StConnOptions options;
  options.s = 0;
  options.t = 15;
  const StConnResult result = run_st_connectivity(machine, g, options);
  EXPECT_FALSE(result.connected);
  EXPECT_EQ(result.vertices_colored, 20u);  // both waves flooded their side
}

TEST(StConnectivity, AdjacentVerticesConnected) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {2, 3}}, true);
  mem::SimHeap heap(std::size_t{1} << 20);
  htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 2, heap);
  StConnOptions options;
  options.s = 0;
  options.t = 1;
  EXPECT_TRUE(run_st_connectivity(machine, g, options).connected);
  options.s = 1;
  options.t = 2;
  mem::SimHeap heap2(std::size_t{1} << 20);
  htm::DesMachine machine2(model::has_c(), HtmKind::kRtm, 2, heap2);
  EXPECT_FALSE(run_st_connectivity(machine2, g, options).connected);
}

// --------------------------------------------------------------- Coloring

class ColoringThreadsTest : public ::testing::TestWithParam<int> {};

TEST_P(ColoringThreadsTest, ProducesProperColoring) {
  const Graph g = test_graph(41);
  mem::SimHeap heap(std::size_t{1} << 24);
  htm::DesMachine machine(model::has_c(), HtmKind::kRtm, GetParam(), heap);
  const ColoringResult result = run_boman_coloring(machine, g, {});
  EXPECT_TRUE(validate_coloring(g, result.color));
  const auto stats = graph::degree_stats(g);
  EXPECT_LE(result.colors_used, stats.max + 1);
  EXPECT_GE(result.colors_used, 2u);
}

INSTANTIATE_TEST_SUITE_P(Threads, ColoringThreadsTest,
                         ::testing::Values(1, 4, 8));

TEST(Coloring, ConflictsTriggerRecoloring) {
  // A dense graph colored by many threads must see conflicts.
  util::Rng rng(43);
  const Graph g = graph::erdos_renyi(300, 0.1, rng);
  mem::SimHeap heap(std::size_t{1} << 22);
  htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 8, heap);
  ColoringOptions options;
  options.batch = 4;
  const ColoringResult result = run_boman_coloring(machine, g, options);
  EXPECT_TRUE(validate_coloring(g, result.color));
  EXPECT_GT(result.rounds, 1);
  EXPECT_GT(result.recolor_requests, 0u);
}

TEST(Coloring, BipartiteUsesTwoColors) {
  // Path graph: 2 colors suffice and the heuristic must find at most 3.
  graph::EdgeList edges;
  for (Vertex v = 0; v + 1 < 100; ++v) edges.emplace_back(v, v + 1);
  const Graph g = Graph::from_edges(100, edges, true);
  mem::SimHeap heap(std::size_t{1} << 20);
  htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 4, heap);
  const ColoringResult result = run_boman_coloring(machine, g, {});
  EXPECT_TRUE(validate_coloring(g, result.color));
  EXPECT_LE(result.colors_used, 3u);
}

// ---------------------------------------------------------------- Boruvka

TEST(Boruvka, MatchesKruskalOnConnectedGraph) {
  const Graph g = weighted_test_graph();
  mem::SimHeap heap(std::size_t{1} << 24);
  htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 8, heap);
  const BoruvkaResult result = run_boruvka(machine, g, {});
  const double reference = mst_reference_weight(g);
  EXPECT_NEAR(result.total_weight, reference, reference * 1e-6);
  EXPECT_GT(result.rounds, 0);
}

TEST(Boruvka, HandlesForests) {
  // Two components: the result is a spanning forest.
  util::Rng rng(47);
  graph::EdgeList edges;
  for (Vertex v = 0; v + 1 < 50; ++v) edges.emplace_back(v, v + 1);
  for (Vertex v = 50; v + 1 < 100; ++v) edges.emplace_back(v, v + 1);
  const auto weights = graph::random_weights(edges.size(), 1.0f, 10.0f, rng);
  const Graph g = Graph::from_weighted_edges(100, edges, weights, true);
  mem::SimHeap heap(std::size_t{1} << 22);
  htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 4, heap);
  const BoruvkaResult result = run_boruvka(machine, g, {});
  EXPECT_EQ(result.edges_in_forest, 98u);  // (50-1) + (50-1)
  EXPECT_NEAR(result.total_weight, mst_reference_weight(g), 1e-3);
}

TEST(Boruvka, ConcurrentMergesMayFail) {
  const Graph g = weighted_test_graph(53);
  mem::SimHeap heap(std::size_t{1} << 24);
  htm::DesMachine machine(model::bgq(), HtmKind::kBgqShort, 16, heap);
  BoruvkaOptions options;
  options.batch = 8;
  const BoruvkaResult result = run_boruvka(machine, g, options);
  EXPECT_NEAR(result.total_weight, mst_reference_weight(g),
              mst_reference_weight(g) * 1e-6);
  // Duplicate candidates (each component nominates the shared min edge)
  // must appear as algorithm-level May-Fail events.
  EXPECT_GT(result.failed_merges, 0u);
}

// ------------------------------------------------------------------- SSSP

TEST(Sssp, MatchesDijkstra) {
  const Graph g = weighted_test_graph(59);
  mem::SimHeap heap(std::size_t{1} << 24);
  htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 8, heap);
  SsspOptions options;
  options.source = graph::pick_nonisolated_vertex(g);
  const SsspResult result = run_sssp(machine, g, options);
  const auto reference = sssp_reference(g, options.source);
  ASSERT_EQ(result.distance.size(), reference.size());
  for (std::size_t v = 0; v < reference.size(); ++v) {
    if (std::isinf(reference[v])) {
      EXPECT_TRUE(std::isinf(result.distance[v])) << v;
    } else {
      EXPECT_NEAR(result.distance[v], reference[v], 1e-6) << v;
    }
  }
}

TEST(Sssp, UnitWeightsReduceToBfs) {
  const Graph base = test_graph(61);
  // Rebuild with unit weights.
  graph::EdgeList edges;
  for (Vertex u = 0; u < base.num_vertices(); ++u) {
    for (Vertex w : base.neighbors(u)) {
      if (u < w) edges.emplace_back(u, w);
    }
  }
  const Graph g = Graph::from_weighted_edges(
      base.num_vertices(), edges, std::vector<float>(edges.size(), 1.0f),
      true);
  mem::SimHeap heap(std::size_t{1} << 24);
  htm::DesMachine machine(model::bgq(), HtmKind::kBgqShort, 16, heap);
  SsspOptions options;
  options.source = graph::pick_nonisolated_vertex(g);
  const SsspResult result = run_sssp(machine, g, options);
  const auto levels = graph::bfs_levels(g, options.source);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (levels[v] == graph::kInvalidLevel) continue;
    EXPECT_DOUBLE_EQ(result.distance[v], static_cast<double>(levels[v]));
  }
}

}  // namespace
}  // namespace aam::algorithms
