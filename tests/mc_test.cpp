// aam::mc — bounded schedule-space model checker over the DES.
//
// Covers the four layers of the subsystem:
//   * trace codec (format/parse/pretty round trips);
//   * workload derivations (serial oracle, PR 4 static footprints);
//   * runner + explorer semantics (seam inertness, DPOR-vs-naive
//     reduction with identical verdicts, budget fallback);
//   * mutation fixtures: each seeded bug — stripe lock released before
//     the write-back, commit validation skipping the read set, delivery
//     dedup keyed on the dropped ack — must be caught with the exact
//     minimized trace, and the trace must replay to the same violation.

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "mc/explorer.hpp"
#include "mc/harness.hpp"
#include "mc/runner.hpp"
#include "mc/trace.hpp"
#include "mc/workload.hpp"

namespace aam::mc {
namespace {

// --- trace codec -----------------------------------------------------------

TEST(McTrace, FormatParseRoundTrip) {
  const Trace trace = {{0, sim::ChoiceKind::kNext},
                       {1, sim::ChoiceKind::kCommitProbe},
                       {1, sim::ChoiceKind::kCommitFinal},
                       {2, sim::ChoiceKind::kSerialAcquire},
                       {2, sim::ChoiceKind::kSerialCommit},
                       {0, sim::ChoiceKind::kSpecRetry},
                       {3, sim::ChoiceKind::kCallback}};
  const std::string text = format_trace(trace);
  EXPECT_EQ(text, "0n.1p.1c.2s.2S.0r.3k");
  const auto parsed = parse_trace(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, trace);
}

TEST(McTrace, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_trace("0n.1x").has_value());   // unknown code
  EXPECT_FALSE(parse_trace("n0").has_value());      // digits first
  EXPECT_FALSE(parse_trace("0n..1n").has_value());  // empty step
  EXPECT_FALSE(parse_trace("0").has_value());       // no code
  EXPECT_TRUE(parse_trace("").has_value());         // empty trace is valid
  EXPECT_TRUE(parse_trace("10n")->front().thread == 10);
}

TEST(McTrace, PrettyNamesEveryStep) {
  const Trace trace = {{0, sim::ChoiceKind::kNext},
                       {1, sim::ChoiceKind::kCommitFinal}};
  const std::string pretty = pretty_trace(trace);
  EXPECT_NE(pretty.find("step  1: t0 next"), std::string::npos);
  EXPECT_NE(pretty.find("step  2: t1 commit-final"), std::string::npos);
}

// --- workload derivations --------------------------------------------------

TEST(McWorkload, SerialOracleCountsCounterOutcomes) {
  // Two threads of two +1s on one word: every serial order ends at 4.
  const McWorkload w = make_workload("counter");
  const std::set<std::string> serial = serial_outcomes(w);
  ASSERT_EQ(serial.size(), 1u);
  EXPECT_EQ(*serial.begin(), "w0=4 | t0:- t1:-");
}

TEST(McWorkload, SerialOracleSeesBothCrossOrders) {
  // x=y+1 / y=x+1: serial orders give (1,2) or (2,1) — never (1,1).
  const McWorkload w = make_workload("cross");
  const std::set<std::string> serial = serial_outcomes(w);
  EXPECT_EQ(serial.size(), 2u);
  EXPECT_TRUE(serial.count("w0=1 w1=2 | t0:- t1:-") == 1);
  EXPECT_TRUE(serial.count("w0=2 w1=1 | t0:- t1:-") == 1);
  EXPECT_TRUE(serial.count("w0=1 w1=1 | t0:- t1:-") == 0);
}

TEST(McWorkload, StaticFootprintsMatchPrograms) {
  // disjoint: t0 touches word 0 only, t1 word 1 only.
  const auto disjoint = thread_footprints(make_workload("disjoint"));
  ASSERT_EQ(disjoint.size(), 2u);
  EXPECT_EQ(disjoint[0].writes, 1u << 0);
  EXPECT_EQ(disjoint[1].writes, 1u << 1);
  EXPECT_EQ(disjoint[0].reads & disjoint[1].reads, 0u);

  // cross: t0 reads w1 writes w0, t1 reads w0 writes w1.
  const auto cross = thread_footprints(make_workload("cross"));
  EXPECT_EQ(cross[0].reads, 1u << 1);
  EXPECT_EQ(cross[0].writes, 1u << 0);
  EXPECT_EQ(cross[1].reads, 1u << 0);
  EXPECT_EQ(cross[1].writes, 1u << 1);

  // ack-protocol receiver: DeliverOnce's branches both contribute (the
  // abstract interpreter forks the guard loads over {0,1}); fetch_add on
  // the data word counts as read and write.
  const auto ack = thread_footprints(make_workload("ack-protocol"));
  EXPECT_EQ(ack[1].reads, (1u << 0) | (1u << 1) | (1u << 2));
  EXPECT_EQ(ack[1].writes, (1u << 1) | (1u << 2) | (1u << 3));
}

TEST(McWorkload, DependenceRelationUsesFootprints) {
  Runner runner(row_run_config("disjoint", "htm"));
  const auto& fp = runner.footprints();
  const Step commit0{0, sim::ChoiceKind::kCommitFinal};
  const Step commit1{1, sim::ChoiceKind::kCommitFinal};
  const Step next1{1, sim::ChoiceKind::kNext};
  const Step serial1{1, sim::ChoiceKind::kSerialCommit};
  // Disjoint words: cross-thread commits commute; HTM kNext reads only.
  EXPECT_FALSE(steps_depend(commit0, commit1, fp, runner.next_writes()));
  EXPECT_FALSE(steps_depend(commit0, next1, fp, runner.next_writes()));
  // Same thread never commutes; serialization events never commute.
  EXPECT_TRUE(steps_depend(commit0, Step{0, sim::ChoiceKind::kNext}, fp,
                           runner.next_writes()));
  EXPECT_TRUE(steps_depend(commit0, serial1, fp, runner.next_writes()));

  Runner contended(row_run_config("counter", "htm"));
  const auto& cfp = contended.footprints();
  // Shared word: a commit may not commute with the other thread's
  // speculation (its body reads what the commit writes).
  EXPECT_TRUE(steps_depend(commit0, next1, cfp, contended.next_writes()));
  // ...but two read-only probes still commute.
  EXPECT_FALSE(steps_depend(Step{0, sim::ChoiceKind::kCommitProbe},
                            Step{1, sim::ChoiceKind::kCommitProbe}, cfp,
                            contended.next_writes()));
}

// --- runner + explorer -----------------------------------------------------

TEST(McRunner, FrontierOrderScheduleIsSerializable) {
  // Always dispatching frontier slot 0 approximates the uncontrolled
  // event order; the run must quiesce violation-free with the serial
  // outcome — the controller seam does not perturb engine semantics.
  for (const char* mechanism : {"htm", "atomics", "stm"}) {
    Runner runner(row_run_config("counter", mechanism));
    const RunResult r =
        runner.run([](std::span<const sim::Choice>) { return std::size_t{0}; });
    EXPECT_TRUE(r.reached_quiescence) << mechanism;
    EXPECT_TRUE(r.violations.empty()) << mechanism;
    EXPECT_EQ(canonical(r.outcome), "w0=4 | t0:- t1:-") << mechanism;
  }
}

TEST(McRunner, ReplayReportsNeverEnabledStep) {
  Runner runner(row_run_config("counter", "atomics"));
  // Thread 7 does not exist; the step can never match the frontier.
  const RunResult r = runner.replay({{7, sim::ChoiceKind::kNext}});
  ASSERT_FALSE(r.violations.empty());
  EXPECT_EQ(r.violations.front().kind, ViolationInfo::Kind::kReplayError);
}

TEST(McExplorer, CertifiesEveryMechanismOnCounter) {
  for (const char* mechanism :
       {"htm", "atomics", "fine-locks", "serial-lock", "stm"}) {
    Runner runner(row_run_config("counter", mechanism));
    const ExploreResult r = explore(runner, ExploreConfig{});
    EXPECT_FALSE(r.stats.budget_exhausted) << mechanism;
    EXPECT_GT(r.stats.schedules, 0u) << mechanism;
    EXPECT_EQ(r.violating_schedules, 0u) << mechanism;
  }
}

TEST(McExplorer, DporBeatsNaiveTenfoldOnDisjoint) {
  // The acceptance ratio behind the committed manifest: sleep sets keyed
  // on the static footprints collapse disjoint/htm to one complete
  // schedule, >= 10x fewer machine runs than the reduction-free DFS.
  Runner runner(row_run_config("disjoint", "htm"));
  ExploreConfig dpor;
  const ExploreResult reduced = explore(runner, dpor);
  EXPECT_FALSE(reduced.stats.budget_exhausted);
  EXPECT_EQ(reduced.stats.schedules, 1u);
  EXPECT_EQ(reduced.violating_schedules, 0u);

  ExploreConfig naive;
  naive.sleep_sets = false;
  const ExploreResult full = explore(runner, naive);
  EXPECT_FALSE(full.stats.budget_exhausted);
  EXPECT_EQ(full.violating_schedules, 0u);
  EXPECT_GE(full.stats.schedules, 10 * reduced.stats.runs);
  EXPECT_GE(full.stats.runs, 10 * reduced.stats.runs);
}

TEST(McExplorer, PreemptionBoundExploresSubset) {
  Runner runner(row_run_config("counter", "htm"));
  ExploreConfig bounded;
  bounded.sleep_sets = false;
  bounded.preemption_bound = 0;
  const ExploreResult r = explore(runner, bounded);
  EXPECT_FALSE(r.stats.budget_exhausted);
  // p=0: only thread choice at quiescence points — a handful of runs.
  EXPECT_GT(r.stats.schedules, 0u);
  EXPECT_LT(r.stats.runs, 32u);
  EXPECT_EQ(r.violating_schedules, 0u);
}

TEST(McExplorer, AutoEscalationPathIsCertified) {
  // --mechanism=auto with a tiny livelock watermark: some schedule must
  // exercise the htm -> serial-lock escalation descent, and every
  // schedule must stay serializable while doing so.
  Runner runner(row_run_config("auto-escalate", "auto"));
  const ExploreResult r = explore(runner, ExploreConfig{});
  EXPECT_FALSE(r.stats.budget_exhausted);
  EXPECT_EQ(r.violating_schedules, 0u);
  EXPECT_GE(r.stats.max_auto_descents, 1u);
}

TEST(McExplorer, AutoWindowIsBoundCertifiedWithDescents) {
  // The budget-fallback row: full space is infeasible, so the manifest
  // certifies it at preemption bound 1 — and the tight abort band makes
  // the htm -> stm band-miss descent fire inside the bounded space.
  Runner runner(row_run_config("auto-window", "auto"));
  ExploreConfig bounded;
  bounded.preemption_bound = row_bound("auto-window");
  ASSERT_EQ(bounded.preemption_bound, 1);
  const ExploreResult r = explore(runner, bounded);
  EXPECT_FALSE(r.stats.budget_exhausted);
  EXPECT_EQ(r.violating_schedules, 0u);
  EXPECT_GE(r.stats.max_auto_descents, 1u);
}

// --- mutation fixtures -----------------------------------------------------

struct MutationCase {
  const char* workload;
  const char* mechanism;
  Mutation mutation;
  ViolationInfo::Kind kind;
  const char* minimized;  ///< exact canonical witness trace
};

class McMutation : public ::testing::TestWithParam<MutationCase> {};

TEST_P(McMutation, CaughtMinimizedAndReplayable) {
  const MutationCase& c = GetParam();
  RunConfig cfg = row_run_config(c.workload, c.mechanism);
  cfg.mutation = c.mutation;
  Runner runner(cfg);

  // The explorer finds the bug...
  const ExploreResult r = explore(runner, ExploreConfig{});
  EXPECT_GT(r.violating_schedules, 0u);

  // ...the minimizer produces the canonical fewest-preemptions witness...
  const auto minimal = find_minimal(runner);
  ASSERT_TRUE(minimal.has_value());
  EXPECT_EQ(minimal->info.kind, c.kind);
  EXPECT_EQ(format_trace(minimal->trace), c.minimized);

  // ...and the witness replays to the same violation kind.
  const RunResult replayed = runner.replay(minimal->trace);
  EXPECT_TRUE(replayed.reached_quiescence);
  ASSERT_FALSE(replayed.violations.empty());
  bool found = false;
  for (const ViolationInfo& v : replayed.violations) {
    found = found || v.kind == c.kind;
  }
  EXPECT_TRUE(found);

  // The unmutated twin is clean: the violation is the seeded bug's.
  RunConfig spec = row_run_config(c.workload, c.mechanism);
  Runner clean(spec);
  const ExploreResult base = explore(clean, ExploreConfig{});
  EXPECT_EQ(base.violating_schedules, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SeededBugs, McMutation,
    ::testing::Values(
        // Stripe lock released before the write-back: the split RMW loses
        // the other critical section's update.
        MutationCase{"lock-protocol", "atomics", Mutation::kLockEarlyRelease,
                     ViolationInfo::Kind::kInvariant,
                     "0n.0n.0n.1n.1n.1n.1n.0n"},
        // Commit validation skips the read set: both cross-copy
        // transactions commit from stale reads (zombie commits).
        MutationCase{"cross", "htm", Mutation::kSkipReadValidation,
                     ViolationInfo::Kind::kZombieCommit,
                     "0n.1n.1p.1c.1n.0p.0c.0n"},
        // Delivery dedup keyed on the ack the retransmit clears: the
        // payload is applied twice.
        MutationCase{"ack-protocol", "atomics", Mutation::kDroppedAck,
                     ViolationInfo::Kind::kInvariant, "0n.1n.0n.1n"}));

// --- harness ---------------------------------------------------------------

TEST(McHarness, GoldenManifestMatchesCommitted) {
  // The quick rows only (full sweep runs in the CI mc job): the rendered
  // lines must agree with the committed manifest byte for byte.
  std::ifstream golden(AAM_MC_GOLDEN);
  ASSERT_TRUE(golden.is_open()) << AAM_MC_GOLDEN;
  std::set<std::string> lines;
  std::string line;
  while (std::getline(golden, line)) lines.insert(line);
  for (const auto& [workload, mechanism] :
       std::vector<std::pair<std::string, std::string>>{
           {"disjoint", "htm"}, {"cross", "htm"}, {"counter", "atomics"}}) {
    CertReport one;
    one.rows.push_back(certify_one(workload, mechanism));
    std::istringstream rendered(render_golden(one));
    std::string header1, header2, row;
    ASSERT_TRUE(std::getline(rendered, header1));
    ASSERT_TRUE(std::getline(rendered, header2));
    ASSERT_TRUE(std::getline(rendered, row));
    EXPECT_EQ(lines.count(row), 1u)
        << "row not in committed manifest: " << row;
  }
}

}  // namespace
}  // namespace aam::mc
