// Executor-layer tests: the Mechanism registry round-trips, and every
// mechanism — driving the SAME single-element operator formulations —
// produces equivalent algorithm results on a fixed seed and graph.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "algorithms/bfs.hpp"
#include "algorithms/coloring.hpp"
#include "algorithms/pagerank.hpp"
#include "core/executor.hpp"
#include "core/runtime.hpp"
#include "graph/generators.hpp"
#include "graph/gstats.hpp"

namespace aam {
namespace {

using graph::Graph;
using graph::Vertex;
using model::HtmKind;

// ---------------------------------------------------------- registry

TEST(Mechanism, ToStringParseRoundTrip) {
  for (const core::Mechanism m : core::all_mechanisms()) {
    const auto back = core::parse_mechanism(core::to_string(m));
    ASSERT_TRUE(back.has_value()) << core::to_string(m);
    EXPECT_EQ(*back, m);
  }
}

TEST(Mechanism, ParseRejectsUnknownNames) {
  EXPECT_FALSE(core::parse_mechanism("nope").has_value());
  EXPECT_FALSE(core::parse_mechanism("").has_value());
  EXPECT_FALSE(core::parse_mechanism("HTM").has_value());  // case-sensitive
  EXPECT_FALSE(core::parse_mechanism("htm ").has_value());
}

TEST(Mechanism, RegistryCoversFiveMechanisms) {
  EXPECT_EQ(core::all_mechanisms().size(), 5u);
}

TEST(Mechanism, NamesListsEveryMechanismCommaSeparated) {
  const std::string names = core::mechanism_names();
  for (const core::Mechanism m : core::all_mechanisms()) {
    EXPECT_NE(names.find(core::to_string(m)), std::string::npos)
        << core::to_string(m);
  }
  EXPECT_NE(names.find(", "), std::string::npos);
}

TEST(Mechanism, ErrorNamesFlagOffendingValueAndValidSpellings) {
  const std::string msg = core::mechanism_error("mechanism", "hmt");
  EXPECT_NE(msg.find("--mechanism"), std::string::npos) << msg;
  EXPECT_NE(msg.find("hmt"), std::string::npos) << msg;
  for (const core::Mechanism m : core::all_mechanisms()) {
    EXPECT_NE(msg.find(core::to_string(m)), std::string::npos)
        << core::to_string(m);
  }
}

// ------------------------------------------------ executor counters

TEST(Executor, AtomicOpsCountsAtomicsNotTransactions) {
  mem::SimHeap heap(1 << 20);
  htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 4, heap);
  auto data = heap.alloc<std::uint64_t>(256);
  core::AamRuntime rt(machine,
                      {.batch = 8, .mechanism = core::Mechanism::kAtomicOps});
  rt.for_each(256, [&](auto& access, std::uint64_t i) {
    access.fetch_add(data[i], std::uint64_t{1});
  });
  for (std::uint64_t i = 0; i < 256; ++i) EXPECT_EQ(data[i], 1u);
  const auto s = machine.stats();
  EXPECT_EQ(s.started, 0u);  // no transactions under plain atomics
  EXPECT_GE(s.atomic_acc, 256u);
}

TEST(Executor, HtmRunsTransactionsNotAtomics) {
  mem::SimHeap heap(1 << 20);
  htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 4, heap);
  auto data = heap.alloc<std::uint64_t>(256);
  core::AamRuntime rt(
      machine, {.batch = 8, .mechanism = core::Mechanism::kHtmCoarsened});
  rt.for_each(256, [&](auto& access, std::uint64_t i) {
    access.fetch_add(data[i], std::uint64_t{1});
  });
  for (std::uint64_t i = 0; i < 256; ++i) EXPECT_EQ(data[i], 1u);
  EXPECT_GE(machine.stats().completed(), 256u / 8u);
}

TEST(Executor, EveryMechanismAppliesEveryItemExactlyOnce) {
  for (const core::Mechanism m : core::all_mechanisms()) {
    mem::SimHeap heap(1 << 20);
    htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 8, heap);
    auto data = heap.alloc<std::uint64_t>(500);
    core::AamRuntime rt(machine, {.batch = 8, .mechanism = m});
    rt.for_each(500, [&](auto& access, std::uint64_t i) {
      access.fetch_add(data[i], std::uint64_t{1});
    });
    for (std::uint64_t i = 0; i < 500; ++i) {
      ASSERT_EQ(data[i], 1u) << core::to_string(m) << " item " << i;
    }
  }
}

// ------------------------------------- cross-mechanism equivalence

Graph fixed_graph() {
  util::Rng rng(17);
  graph::KroneckerParams p;
  p.scale = 10;
  p.edge_factor = 8;
  return graph::kronecker(p, rng);
}

TEST(ExecutorEquivalence, BfsTreeValidUnderEveryMechanism) {
  const Graph g = fixed_graph();
  const Vertex root = graph::pick_nonisolated_vertex(g);
  const std::uint64_t reachable = graph::reachable_count(g, root);
  for (const core::Mechanism m : core::all_mechanisms()) {
    mem::SimHeap heap(std::size_t{1} << 23);
    htm::DesMachine machine(model::bgq(), HtmKind::kBgqShort, 8, heap, 9);
    algorithms::BfsOptions options;
    options.root = root;
    options.mechanism = m;
    options.batch = 4;
    const auto r = algorithms::run_bfs(machine, g, options);
    EXPECT_TRUE(algorithms::validate_bfs_tree(g, root, r.parent))
        << core::to_string(m);
    EXPECT_EQ(r.vertices_visited, reachable) << core::to_string(m);
  }
}

TEST(ExecutorEquivalence, PageRankMatchesReferenceUnderEveryMechanism) {
  const Graph g = fixed_graph();
  const auto reference = algorithms::pagerank_reference(g, 5, 0.85);
  for (const core::Mechanism m : core::all_mechanisms()) {
    mem::SimHeap heap(std::size_t{1} << 23);
    htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 8, heap, 9);
    algorithms::PageRankOptions options;
    options.iterations = 5;
    options.mechanism = m;
    options.batch = 4;
    const auto r = algorithms::run_pagerank(machine, g, options);
    ASSERT_EQ(r.rank.size(), reference.size());
    for (std::size_t v = 0; v < reference.size(); ++v) {
      ASSERT_NEAR(r.rank[v], reference[v], 1e-9)
          << core::to_string(m) << " vertex " << v;
    }
  }
}

TEST(ExecutorEquivalence, ColoringValidUnderEveryMechanism) {
  const Graph g = fixed_graph();
  for (const core::Mechanism m : core::all_mechanisms()) {
    mem::SimHeap heap(std::size_t{1} << 23);
    htm::DesMachine machine(model::bgq(), HtmKind::kBgqShort, 8, heap, 9);
    algorithms::ColoringOptions options;
    options.mechanism = m;
    options.batch = 4;
    options.seed = 21;
    const auto r = algorithms::run_boman_coloring(machine, g, options);
    EXPECT_TRUE(algorithms::validate_coloring(g, r.color))
        << core::to_string(m);
    EXPECT_GT(r.colors_used, 0u) << core::to_string(m);
  }
}

}  // namespace
}  // namespace aam
