#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "htm/stm_engine.hpp"
#include "util/rng.hpp"

namespace aam::htm {
namespace {

TEST(StmEngine, SingleThreadReadWrite) {
  StmEngine engine;
  std::uint64_t x = 5;
  const TxnOutcome out = engine.atomically([&](StmTxn& tx) {
    const auto v = tx.load(x);
    tx.store(x, v + 10);
  });
  EXPECT_EQ(x, 15u);
  EXPECT_EQ(out.aborts, 0);
  EXPECT_EQ(engine.commits(), 1u);
}

TEST(StmEngine, ReadYourOwnWrites) {
  StmEngine engine;
  std::uint64_t x = 1;
  engine.atomically([&](StmTxn& tx) {
    tx.store(x, std::uint64_t{7});
    EXPECT_EQ(tx.load(x), 7u);
    EXPECT_EQ(x, 1u);  // not yet published
  });
  EXPECT_EQ(x, 7u);
}

TEST(StmEngine, SubWordFields) {
  StmEngine engine;
  struct Pair {
    std::uint32_t a;
    std::uint32_t b;
  } p{1, 2};
  engine.atomically([&](StmTxn& tx) {
    tx.store(p.a, 100u);
    tx.store(p.b, 200u);
    EXPECT_EQ(tx.load(p.a), 100u);
  });
  EXPECT_EQ(p.a, 100u);
  EXPECT_EQ(p.b, 200u);
}

TEST(StmEngine, DoubleValues) {
  StmEngine engine;
  double rank = 0.25;
  engine.atomically([&](StmTxn& tx) {
    tx.store(rank, tx.load(rank) + 0.5);
  });
  EXPECT_DOUBLE_EQ(rank, 0.75);
}

TEST(StmEngine, ExplicitAbortDiscardsAndDoesNotRetry) {
  StmEngine engine;
  std::uint64_t x = 0;
  int executions = 0;
  engine.atomically([&](StmTxn& tx) {
    ++executions;
    tx.store(x, std::uint64_t{99});
    tx.abort();
  });
  EXPECT_EQ(x, 0u);
  EXPECT_EQ(executions, 1);
  EXPECT_EQ(engine.commits(), 0u);
  // The explicit request lands in its own counter, not in aborts():
  // an explicit abort is a completed activity, not a conflict retry.
  EXPECT_EQ(engine.aborts(), 0u);
  EXPECT_EQ(engine.explicit_aborts(), 1u);
}

TEST(StmEngine, ExplicitAbortsCountOnlyExplicitRequests) {
  StmEngine engine;
  std::uint64_t x = 0;
  // Commits never register as explicit aborts.
  for (int i = 0; i < 3; ++i) {
    engine.atomically([&](StmTxn& tx) { tx.fetch_add(x, std::uint64_t{1}); });
  }
  EXPECT_EQ(engine.commits(), 3u);
  EXPECT_EQ(engine.explicit_aborts(), 0u);
  // Each conditional explicit abort adds exactly one.
  for (int i = 0; i < 2; ++i) {
    engine.atomically([&](StmTxn& tx) {
      if (tx.load(x) >= 3) tx.abort();
      tx.store(x, std::uint64_t{0});
    });
  }
  EXPECT_EQ(engine.explicit_aborts(), 2u);
  // Single-threaded: no validation conflicts, so aborts() stays zero.
  EXPECT_EQ(engine.aborts(), 0u);
  EXPECT_EQ(x, 3u);
}

TEST(StmEngine, ConcurrentCountersLoseNoUpdates) {
  StmEngine engine;
  alignas(64) std::uint64_t counter = 0;
  const int threads = 8;
  const int per_thread = 2000;
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < per_thread; ++i) {
        engine.atomically([&](StmTxn& tx) {
          tx.fetch_add(counter, std::uint64_t{1});
        });
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(threads) * per_thread);
  EXPECT_EQ(engine.commits(), static_cast<std::uint64_t>(threads) * per_thread);
}

TEST(StmEngine, TransfersConserveTotal) {
  // Classic invariant test: concurrent transfers between accounts must
  // conserve the total — a torn or non-isolated transaction would break it.
  StmEngine engine;
  constexpr int kAccounts = 64;
  constexpr std::uint64_t kInitial = 1000;
  std::vector<std::uint64_t> accounts(kAccounts, kInitial);

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::thread checker([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::uint64_t total = 0;
      engine.atomically([&](StmTxn& tx) {
        total = 0;
        for (const auto& a : accounts) total += tx.load(a);
      });
      if (total != kAccounts * kInitial) {
        violations.fetch_add(1);
      }
    }
  });

  std::vector<std::thread> movers;
  for (int t = 0; t < 4; ++t) {
    movers.emplace_back([&, t] {
      std::uint64_t state = static_cast<std::uint64_t>(t) + 1;
      for (int i = 0; i < 3000; ++i) {
        const auto from = util::splitmix64(state) % kAccounts;
        const auto to = util::splitmix64(state) % kAccounts;
        engine.atomically([&](StmTxn& tx) {
          const auto balance = tx.load(accounts[from]);
          if (balance == 0) return;
          tx.store(accounts[from], balance - 1);
          tx.store(accounts[to], tx.load(accounts[to]) + 1);
        });
      }
    });
  }
  for (auto& th : movers) th.join();
  stop.store(true, std::memory_order_release);
  checker.join();

  EXPECT_EQ(violations.load(), 0);
  std::uint64_t total = 0;
  for (auto a : accounts) total += a;
  EXPECT_EQ(total, kAccounts * kInitial);
}

TEST(StmEngine, ConcurrentFetchMinConverges) {
  // Emulates the BFS distance-lowering operator (Listing 4) under real
  // concurrency: the final distance must be the global minimum proposed.
  StmEngine engine;
  std::uint64_t distance = 1'000'000;
  std::vector<std::thread> pool;
  for (int t = 0; t < 8; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < 500; ++i) {
        const std::uint64_t proposal =
            static_cast<std::uint64_t>(100 + (t * 500 + i) % 900);
        engine.atomically([&](StmTxn& tx) {
          if (tx.load(distance) > proposal) tx.store(distance, proposal);
        });
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(distance, 100u);
}

}  // namespace
}  // namespace aam::htm
