#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>

#include "graph/analogs.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/gstats.hpp"
#include "graph/io.hpp"
#include "graph/partition.hpp"

namespace aam::graph {
namespace {

// ------------------------------------------------------------------ CSR

TEST(Csr, BuildsDirected) {
  const EdgeList edges = {{0, 1}, {0, 2}, {1, 2}, {3, 0}};
  const Graph g = Graph::from_edges(4, edges, /*undirected=*/false);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_EQ(g.degree(3), 1u);
  auto n0 = g.neighbors(0);
  EXPECT_EQ(std::vector<Vertex>(n0.begin(), n0.end()),
            (std::vector<Vertex>{1, 2}));
}

TEST(Csr, UndirectedMirrorsEdges) {
  const Graph g = Graph::from_edges(3, {{0, 1}, {1, 2}}, true);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(1), 2u);
}

TEST(Csr, DropsSelfLoopsAndDuplicates) {
  const Graph g =
      Graph::from_edges(3, {{0, 0}, {0, 1}, {0, 1}, {1, 2}}, false);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Csr, WeightedEdges) {
  const Graph g = Graph::from_weighted_edges(3, {{0, 1}, {1, 2}},
                                             {2.5f, 7.0f}, true);
  ASSERT_TRUE(g.has_weights());
  EXPECT_FLOAT_EQ(g.weights(0)[0], 2.5f);
  // Mirrored edge carries the same weight.
  auto n1 = g.neighbors(1);
  auto w1 = g.weights(1);
  ASSERT_EQ(n1.size(), 2u);
  for (std::size_t i = 0; i < n1.size(); ++i) {
    if (n1[i] == 0) EXPECT_FLOAT_EQ(w1[i], 2.5f);
    if (n1[i] == 2) EXPECT_FLOAT_EQ(w1[i], 7.0f);
  }
}

TEST(Csr, AvgDegree) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}}, true);
  EXPECT_DOUBLE_EQ(g.avg_degree(), 6.0 / 4.0);
}

// ----------------------------------------------------------- Generators

TEST(Generators, KroneckerSizeAndDeterminism) {
  KroneckerParams p;
  p.scale = 10;
  p.edge_factor = 8;
  util::Rng rng1(3), rng2(3);
  const Graph a = kronecker(p, rng1);
  const Graph b = kronecker(p, rng2);
  EXPECT_EQ(a.num_vertices(), 1u << 10);
  EXPECT_GT(a.num_edges(), 0u);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  // Power-law-ish skew: max degree far above the mean.
  const DegreeStats s = degree_stats(a);
  EXPECT_GT(s.max, 4 * s.mean);
}

TEST(Generators, ErdosRenyiDegreeConcentrates) {
  util::Rng rng(5);
  const Vertex n = 2000;
  const double p = 0.01;
  const Graph g = erdos_renyi(n, p, rng);
  const DegreeStats s = degree_stats(g);
  const double expected = p * (n - 1);
  EXPECT_NEAR(s.mean, expected, expected * 0.15);
  // Binomial distribution: no power-law tail.
  EXPECT_LT(s.max, 4 * expected);
}

TEST(Generators, PreferentialAttachmentHeavyTail) {
  util::Rng rng(7);
  const Graph g = preferential_attachment(5000, 2, rng);
  EXPECT_EQ(g.num_vertices(), 5000u);
  const DegreeStats s = degree_stats(g);
  EXPECT_GT(s.max, 10 * s.mean);
  EXPECT_NEAR(s.mean, 4.0, 1.0);  // 2 edges per vertex, both directions
}

TEST(Generators, RoadLatticeHighDiameterLowDegree) {
  util::Rng rng(9);
  const Graph g = road_lattice(50, 50, 0.0, rng);
  EXPECT_EQ(g.num_vertices(), 2500u);
  const DegreeStats s = degree_stats(g);
  EXPECT_LE(s.max, 4u);
  // Diameter of a 50x50 grid is 98.
  EXPECT_GE(diameter_lower_bound(g, 0), 90u);
}

TEST(Generators, SmallWorldConnectsAll) {
  util::Rng rng(11);
  const Graph g = small_world(1000, 3, 0.1, rng);
  EXPECT_EQ(reachable_count(g, 0), 1000u);
}

TEST(Generators, RandomWeightsInRange) {
  util::Rng rng(13);
  const auto w = random_weights(1000, 1.0f, 5.0f, rng);
  for (float x : w) {
    EXPECT_GE(x, 1.0f);
    EXPECT_LT(x, 5.0f);
  }
}

// ------------------------------------------------------------ Partition

TEST(Partition, BlocksCoverAllVerticesOnce) {
  const Block1D part(100, 7);
  std::uint64_t covered = 0;
  for (int node = 0; node < 7; ++node) {
    covered += part.count(node);
    for (Vertex v = part.begin(node); v < part.end(node); ++v) {
      EXPECT_EQ(part.owner(v), node);
    }
  }
  EXPECT_EQ(covered, 100u);
}

TEST(Partition, LocalIndex) {
  const Block1D part(100, 4);
  EXPECT_EQ(part.local_index(part.begin(2)), 0u);
  EXPECT_EQ(part.local_index(part.begin(2) + 5), 5u);
}

TEST(Partition, MoreNodesThanVertices) {
  const Block1D part(3, 8);
  std::uint64_t covered = 0;
  for (int node = 0; node < 8; ++node) covered += part.count(node);
  EXPECT_EQ(covered, 3u);
}

// ------------------------------------------------------------------ IO

TEST(Io, RoundTrip) {
  util::Rng rng(15);
  const Graph g = erdos_renyi(200, 0.05, rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "aam_io_test.el").string();
  save_edge_list(g, path);
  LoadOptions opt;
  opt.undirected = false;  // the saved file already contains both directions
  opt.zero_based = true;
  const Graph h = load_edge_list(path, opt);
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  std::remove(path.c_str());
}

TEST(Io, SkipsCommentsAndCompacts) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "aam_io_test2.el").string();
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("# comment\n10 20\n20 30\n", f);
    std::fclose(f);
  }
  const Graph g = load_edge_list(path);
  EXPECT_EQ(g.num_vertices(), 3u);  // ids compacted to 0..2
  EXPECT_EQ(g.num_edges(), 4u);     // undirected
  std::remove(path.c_str());
}

// --------------------------------------------------------------- Stats

TEST(Stats, BfsLevels) {
  // Path graph 0-1-2-3.
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}}, true);
  const auto levels = bfs_levels(g, 0);
  EXPECT_EQ(levels[0], 0u);
  EXPECT_EQ(levels[1], 1u);
  EXPECT_EQ(levels[2], 2u);
  EXPECT_EQ(levels[3], 3u);
  EXPECT_EQ(diameter_lower_bound(g, 1), 3u);
}

TEST(Stats, UnreachableVertices) {
  const Graph g = Graph::from_edges(4, {{0, 1}}, true);
  const auto levels = bfs_levels(g, 0);
  EXPECT_EQ(levels[2], kInvalidLevel);
  EXPECT_EQ(reachable_count(g, 0), 2u);
}

TEST(Stats, PickNonisolatedVertex) {
  const Graph g = Graph::from_edges(10, {{7, 8}}, true);
  const Vertex v = pick_nonisolated_vertex(g);
  EXPECT_TRUE(v == 7 || v == 8);
}

// -------------------------------------------------------------- Analogs

TEST(Analogs, CatalogHasAllSixteenGraphs) {
  EXPECT_EQ(table1_catalog().size(), 16u);
  EXPECT_EQ(analog_by_id("cWT").name, "wiki-Talk");
  EXPECT_EQ(analog_by_id("rCA").family, AnalogFamily::kRoad);
  EXPECT_EQ(analog_by_id("wSF").family, AnalogFamily::kWeb);
}

TEST(Analogs, SynthesizedSizeTracksDivisor) {
  util::Rng rng(17);
  const auto& a = analog_by_id("sYT");  // 1.1M vertices
  const Graph g = synthesize(a, 64, rng);
  EXPECT_NEAR(static_cast<double>(g.num_vertices()),
              static_cast<double>(a.vertices) / 64.0,
              static_cast<double>(a.vertices) / 64.0 * 0.2);
}

TEST(Analogs, RoadAnalogHasRoadStructure) {
  util::Rng rng(19);
  const Graph g = synthesize(analog_by_id("rPA"), 64, rng);
  const DegreeStats s = degree_stats(g);
  EXPECT_LT(s.max, 16u);
  EXPECT_GT(diameter_lower_bound(g, pick_nonisolated_vertex(g)), 30u);
}

TEST(Analogs, SocialAnalogIsSkewed) {
  util::Rng rng(21);
  const Graph g = synthesize(analog_by_id("sYT"), 64, rng);
  const DegreeStats s = degree_stats(g);
  EXPECT_GT(s.max, 8 * s.mean);
}

TEST(Analogs, PaperSpeedupsArePopulated) {
  for (const auto& a : table1_catalog()) {
    EXPECT_GT(a.paper_bgq_s_m24, 0.0) << a.id;
    EXPECT_GT(a.paper_bgq_opt_m, 0) << a.id;
    EXPECT_GT(a.paper_has_s_hama, 1.0) << a.id;
  }
}

}  // namespace
}  // namespace aam::graph
