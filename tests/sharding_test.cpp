// Receiver-side sharding in the distributed runtime (§4.2 optimization):
// when items are sharded to owning threads by cache line, same-node
// transactions must never conflict — and results must be unchanged.

#include <gtest/gtest.h>

#include <memory>

#include "core/distributed.hpp"

namespace aam::core {
namespace {

using model::HtmKind;

class Producer : public DistributedRuntime::Worker {
 public:
  Producer(DistributedRuntime& rt, std::uint64_t count, int target,
           std::uint64_t slots, util::Rng rng)
      : DistributedRuntime::Worker(rt), rt2_(rt), left_(count),
        target_(target), slots_(slots), rng_(rng) {}

 protected:
  bool produce(htm::ThreadCtx& ctx) override {
    if (left_ == 0) return false;
    for (int b = 0; b < 8 && left_ > 0; ++b) {
      --left_;
      rt2_.spawn(ctx, target_, rng_.next_below(slots_));
    }
    return true;
  }

 private:
  DistributedRuntime& rt2_;
  std::uint64_t left_;
  int target_;
  std::uint64_t slots_;
  util::Rng rng_;
};

struct RunOutcome {
  std::uint64_t total = 0;
  htm::HtmStats stats;
  double makespan = 0;
};

RunOutcome run(bool sharded, std::uint64_t ops, std::uint64_t slots) {
  mem::SimHeap heap(std::size_t{1} << 22);
  net::Cluster cluster(model::bgq(), HtmKind::kBgqShort, 2, 4, heap, 7);
  auto data = heap.alloc<std::uint64_t>(slots);  // densely packed: shared lines
  DistributedRuntime rt(cluster, {.coalesce = 16, .local_batch = 16});
  rt.set_operator([&](auto& access, std::uint64_t item) {
    access.fetch_add(data[item], std::uint64_t{1});
  });
  if (sharded) {
    // Line-granular shard: 8 adjacent u64 slots share a line and a thread.
    rt.set_sharding([](std::uint64_t item) {
      return static_cast<std::uint32_t>(item / 8);
    });
  }
  Producer p(rt, ops, /*target=*/1, slots,
             util::Rng(3));
  std::vector<std::unique_ptr<DistributedRuntime::Worker>> receivers;
  cluster.machine().set_worker(0, &p);
  for (int t = 1; t < 8; ++t) {
    receivers.push_back(std::make_unique<DistributedRuntime::Worker>(rt));
    cluster.machine().set_worker(static_cast<std::uint32_t>(t),
                                 receivers.back().get());
  }
  cluster.machine().run();
  EXPECT_TRUE(rt.drained());

  RunOutcome out;
  for (std::uint64_t s = 0; s < slots; ++s) out.total += data[s];
  out.stats = cluster.machine().stats();
  out.makespan = cluster.machine().makespan();
  return out;
}

TEST(Sharding, PreservesResults) {
  const auto plain = run(false, 2000, 64);
  const auto sharded = run(true, 2000, 64);
  EXPECT_EQ(plain.total, 2000u);
  EXPECT_EQ(sharded.total, 2000u);
}

TEST(Sharding, EliminatesSameNodeConflicts) {
  const auto plain = run(false, 4000, 64);
  const auto sharded = run(true, 4000, 64);
  // Unsharded: four receiver threads batch random hot slots -> conflicts.
  EXPECT_GT(plain.stats.aborts_conflict, 50u);
  // Sharded: disjoint per-thread footprints -> (almost) none.
  EXPECT_LT(sharded.stats.aborts_conflict,
            plain.stats.aborts_conflict / 10);
}

TEST(Sharding, ImprovesMakespanUnderContention) {
  const auto plain = run(false, 4000, 64);
  const auto sharded = run(true, 4000, 64);
  EXPECT_LT(sharded.makespan, plain.makespan);
}

}  // namespace
}  // namespace aam::core
