// aam::analysis tests: the abstract interpreter's closed-form signatures
// match hand derivations for every operator body, the label contracts and
// capacity bounds project them faithfully, the committed golden reference
// is in sync, and — the load-bearing property — the static capacity-abort
// threshold is conservative: coarsening factors below it never capacity-
// abort dynamically (single-threaded, where the SMT eviction term of the
// machine models is exactly zero and capacity aborts are deterministic).

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "algorithms/bfs.hpp"
#include "algorithms/coloring.hpp"
#include "algorithms/pagerank.hpp"
#include "analysis/capacity.hpp"
#include "analysis/contract.hpp"
#include "analysis/report.hpp"
#include "analysis/signature.hpp"
#include "graph/generators.hpp"
#include "graph/gstats.hpp"
#include "htm/des_engine.hpp"
#include "util/rng.hpp"

namespace aam {
namespace {

using analysis::EffectSignature;
using analysis::Linear;
using analysis::RegionSignature;
using core::OperatorId;

const RegionSignature& region_of(const EffectSignature& sig,
                                 const std::string& name) {
  for (const RegionSignature& r : sig.regions) {
    if (r.name == name) return r;
  }
  ADD_FAILURE() << "no region " << name;
  static RegionSignature empty;
  return empty;
}

// ------------------------------------------------- closed-form signatures

TEST(Signature, BfsVisitIsOneWordReadOneWordWrite) {
  const auto sig = analysis::analyze(OperatorId::kBfsVisit);
  ASSERT_EQ(sig.regions.size(), 1u);
  EXPECT_EQ(sig.regions[0].label, "bfs.parent");
  EXPECT_EQ(sig.regions[0].read_total(), (Linear{1, 0, 0}));
  EXPECT_EQ(sig.regions[0].write_total(), (Linear{1, 0, 0}));
  EXPECT_FALSE(sig.widened);  // no loop to widen: cas fails at most once
  EXPECT_EQ(sig.paths, 2u);   // cas success / cas failure
}

TEST(Signature, PagerankPushScalesWithDegree) {
  const auto sig = analysis::analyze(OperatorId::kPagerankPush);
  ASSERT_EQ(sig.regions.size(), 2u);
  const auto& old_rank = region_of(sig, "pagerank.old_rank");
  const auto& new_rank = region_of(sig, "pagerank.new_rank");
  EXPECT_EQ(old_rank.label, "pagerank.rank");
  EXPECT_EQ(old_rank.read_total(), (Linear{1, 0, 0}));   // stale own rank
  EXPECT_EQ(old_rank.write_total(), (Linear{0, 0, 0}));  // never written
  EXPECT_EQ(new_rank.read_total(), (Linear{1, 1, 0}));   // self + d accums
  EXPECT_EQ(new_rank.write_total(), (Linear{1, 1, 0}));
  EXPECT_FALSE(sig.widened);
  EXPECT_EQ(sig.paths, 1u);  // fully deterministic body
  EXPECT_EQ(sig.read_elems(16, 8), 18u);
  EXPECT_EQ(sig.write_elems(16, 8), 17u);
}

TEST(Signature, SsspRelaxRetriesTouchOneElement) {
  const auto sig = analysis::analyze(OperatorId::kSsspRelax);
  ASSERT_EQ(sig.regions.size(), 1u);
  // The retry loop re-reads the same element: distinct counts stay 1
  // regardless of the widening bound.
  EXPECT_EQ(sig.regions[0].read_total(), (Linear{1, 0, 0}));
  EXPECT_EQ(sig.regions[0].write_total(), (Linear{1, 0, 0}));
  EXPECT_TRUE(sig.widened);  // the retry loop is cut by the budget
}

TEST(Signature, UfRootWalksAChainReadOnly) {
  const auto sig = analysis::analyze(OperatorId::kUfRoot);
  ASSERT_EQ(sig.regions.size(), 1u);
  EXPECT_EQ(sig.regions[0].label, "boruvka.parent");
  // Start element + one fresh element per widened hop.
  EXPECT_EQ(sig.regions[0].read_total(), (Linear{1, 0, 1}));
  EXPECT_EQ(sig.regions[0].write_total(), (Linear{0, 0, 0}));
  EXPECT_TRUE(sig.widened);
}

TEST(Signature, UfUnionReadsTwoChainsWritesOneRoot) {
  const auto sig = analysis::analyze(OperatorId::kUfUnion);
  ASSERT_EQ(sig.regions.size(), 1u);
  const auto& parent = sig.regions[0];
  using analysis::IndexClass;
  EXPECT_EQ(parent.reads[static_cast<int>(IndexClass::kSelf)],
            (Linear{1, 0, 0}));
  EXPECT_EQ(parent.reads[static_cast<int>(IndexClass::kPeer)],
            (Linear{1, 0, 0}));
  EXPECT_EQ(parent.reads[static_cast<int>(IndexClass::kChain)],
            (Linear{0, 0, 1}));
  // The merge writes exactly one root per path; the class split (peer vs
  // chain, summed by write_total) is the documented per-class-maxima
  // over-approximation. The probe's own element is never the larger root,
  // so the self class stays zero.
  EXPECT_EQ(parent.writes[static_cast<int>(IndexClass::kSelf)],
            (Linear{0, 0, 0}));
  EXPECT_EQ(parent.write_total(), (Linear{2, 0, 0}));
  EXPECT_TRUE(sig.widened);
}

TEST(Signature, ColorAssignReadsNeighborsWritesSelf) {
  const auto sig = analysis::analyze(OperatorId::kColorAssign);
  ASSERT_EQ(sig.regions.size(), 1u);
  EXPECT_EQ(sig.regions[0].read_total(), (Linear{0, 1, 0}));
  EXPECT_EQ(sig.regions[0].write_total(), (Linear{1, 0, 0}));
  EXPECT_FALSE(sig.widened);
  // Every neighbor load forks clash/no-clash at the base probe degree.
  EXPECT_EQ(sig.paths, 1u << sig.probe_degree);
}

TEST(Signature, StVisitTouchesOneWord) {
  const auto sig = analysis::analyze(OperatorId::kStVisit);
  ASSERT_EQ(sig.regions.size(), 1u);
  EXPECT_EQ(sig.regions[0].read_total(), (Linear{1, 0, 0}));
  EXPECT_EQ(sig.regions[0].write_total(), (Linear{1, 0, 0}));
  EXPECT_FALSE(sig.widened);
  EXPECT_EQ(sig.paths, 4u);  // white-claimed / white-lost / own / other wave
}

TEST(Signature, AnalyzeAllCoversEveryOperator) {
  const auto sigs = analysis::analyze_all();
  const auto ids = core::all_operator_ids();
  ASSERT_EQ(sigs.size(), ids.size());
  for (std::size_t i = 0; i < sigs.size(); ++i) {
    EXPECT_EQ(sigs[i].op, ids[i]);
    EXPECT_FALSE(sigs[i].regions.empty())
        << core::to_string(sigs[i].op) << " has no regions";
    EXPECT_GT(sigs[i].read_elems(16, 8), 0u);
  }
}

// -------------------------------------------------------- label contracts

TEST(Contract, ProjectsSignaturesOntoHeapLabels) {
  const auto& bfs = analysis::label_contract(OperatorId::kBfsVisit);
  EXPECT_TRUE(bfs.may_write("bfs.parent"));
  EXPECT_TRUE(bfs.may_read("bfs.parent"));
  EXPECT_FALSE(bfs.may_write("sssp.distance"));
  EXPECT_FALSE(bfs.may_read("coloring.color"));

  // uf_root is read-only; reads are implied by writes for uf_union.
  const auto& root = analysis::label_contract(OperatorId::kUfRoot);
  EXPECT_TRUE(root.may_read("boruvka.parent"));
  EXPECT_FALSE(root.may_write("boruvka.parent"));
  const auto& unite = analysis::label_contract(OperatorId::kUfUnion);
  EXPECT_TRUE(unite.may_write("boruvka.parent"));
  EXPECT_TRUE(unite.may_read("boruvka.parent"));

  // Both pagerank arrays share one label.
  const auto& pr = analysis::label_contract(OperatorId::kPagerankPush);
  EXPECT_TRUE(pr.may_read("pagerank.rank"));
  EXPECT_TRUE(pr.may_write("pagerank.rank"));
  EXPECT_EQ(pr.write_labels_joined(), "pagerank.rank");

  // Untagged batches carry no permissions (and are skipped by the audit).
  const auto& unknown = analysis::label_contract(OperatorId::kUnknown);
  EXPECT_FALSE(unknown.may_read("bfs.parent"));
  EXPECT_TRUE(unknown.read_labels_joined().empty());
}

// -------------------------------------------------------- capacity bounds

TEST(Capacity, BoundsFollowMachineGeometry) {
  const auto sigs = analysis::analyze_all();
  const auto bounds = analysis::capacity_bounds(sigs, 16, 8);
  // machines x their HTM kinds x operators.
  ASSERT_EQ(bounds.size(), (2u + 2u + 2u) * sigs.size());
  bool saw_hasc_bfs = false;
  for (const auto& b : bounds) {
    EXPECT_GE(b.max_safe_coarsening, 1u)
        << b.machine << " " << core::to_string(b.op);
    EXPECT_EQ(b.abort_threshold, b.max_safe_coarsening + 1);
    if (b.machine == "Has-C" && b.kind == model::HtmKind::kRtm &&
        b.op == OperatorId::kBfsVisit) {
      saw_hasc_bfs = true;
      // 64 sets x 8 ways = 512 write lines; one written element per visit.
      EXPECT_EQ(b.write_capacity_lines, 512u);
      EXPECT_EQ(b.max_safe_coarsening, 512u);
      EXPECT_EQ(b.assoc_worst_case, 8u);
    }
  }
  EXPECT_TRUE(saw_hasc_bfs);
}

TEST(Capacity, WiderMachinesNeverShrinkTheBound) {
  const auto sigs = analysis::analyze_all();
  const auto bounds = analysis::capacity_bounds(sigs, 16, 8);
  auto safe_of = [&](const std::string& machine, model::HtmKind kind,
                     OperatorId op) {
    for (const auto& b : bounds) {
      if (b.machine == machine && b.kind == kind && b.op == op) {
        return b.max_safe_coarsening;
      }
    }
    ADD_FAILURE() << "missing bound";
    return std::uint64_t{0};
  };
  for (OperatorId op : core::all_operator_ids()) {
    // BG/Q long mode has strictly more speculative capacity than short
    // mode; Has-P's L1 is twice Has-C's.
    EXPECT_GE(safe_of("BGQ", model::HtmKind::kBgqLong, op),
              safe_of("BGQ", model::HtmKind::kBgqShort, op));
    EXPECT_GE(safe_of("Has-P", model::HtmKind::kRtm, op),
              safe_of("Has-C", model::HtmKind::kRtm, op));
  }
}

// --------------------------------------------------------- golden in sync

TEST(Golden, EffectSignatureReferenceMatches) {
  const auto sigs = analysis::analyze_all();
  const auto bounds = analysis::capacity_bounds(sigs, 16, 8);
  const std::string current = analysis::render_golden(sigs, bounds, 16, 8);
  std::ifstream in(AAM_ANALYSIS_GOLDEN, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden " << AAM_ANALYSIS_GOLDEN;
  std::ostringstream committed;
  committed << in.rdbuf();
  EXPECT_EQ(committed.str(), current)
      << "effect signatures drifted; regenerate with\n"
         "  ./build/tools/aam_analyze --write-golden "
         "tests/golden/effect_signatures.txt";
}

// ------------------------------------- static threshold is conservative
//
// Single-threaded (the SMT eviction term of every machine model is scaled
// by (T-1)/(Tmax-1) and is exactly zero at T=1), capacity aborts happen
// iff a transaction's speculative footprint exceeds the HTM buffer. The
// static bound charges one full line per distinct element, which can only
// overestimate the footprint — so any coarsening factor strictly below
// the statically predicted abort threshold must run abort-free. (The
// converse is NOT asserted: factors above the threshold may still run
// abort-free when elements share lines. DESIGN.md §7 discusses the
// asymmetry.)

struct ThresholdCase {
  const model::MachineConfig* config;
  model::HtmKind kind;
};

class CapacityThresholdTest : public ::testing::TestWithParam<ThresholdCase> {
};

TEST_P(CapacityThresholdTest, NoCapacityAbortsBelowStaticThreshold) {
  const auto& param = GetParam();
  util::Rng rng(42);
  graph::KroneckerParams gp;
  gp.scale = 10;
  gp.edge_factor = 4;
  const graph::Graph g = graph::kronecker(gp, rng);
  const auto dmax = static_cast<int>(graph::degree_stats(g).max);
  const auto n = static_cast<int>(g.num_vertices());
  const model::HtmCosts& costs = param.config->htm(param.kind);

  // Worst-case per-item element counts: signature evaluated at the graph's
  // max degree; chain bounded by |V| (a union-find chain cannot be longer).
  auto threshold = [&](OperatorId op) {
    const auto sig = analysis::analyze(op);
    const std::size_t reads = sig.read_elems(dmax, n);
    const std::size_t writes = sig.write_elems(dmax, n);
    std::uint64_t safe = ~std::uint64_t{0};
    if (writes > 0) {
      safe = std::min<std::uint64_t>(
          safe, costs.write_capacity.capacity_lines() / writes);
    }
    if (reads > 0) {
      safe = std::min<std::uint64_t>(safe, costs.read_capacity_lines / reads);
    }
    return safe + 1;
  };

  for (const int batch : {1, 2, 4, 8}) {
    mem::SimHeap heap(1 << 24);
    htm::DesMachine machine(*param.config, param.kind, /*threads=*/1, heap,
                            /*seed=*/7);
    {
      algorithms::BfsOptions options;
      options.root = graph::pick_nonisolated_vertex(g);
      options.mechanism = core::Mechanism::kHtmCoarsened;
      options.batch = batch;
      const auto r = algorithms::run_bfs(machine, g, options);
      if (static_cast<std::uint64_t>(batch) <
          threshold(OperatorId::kBfsVisit)) {
        EXPECT_EQ(r.stats.aborts_capacity, 0u)
            << "bfs batch=" << batch << " on " << param.config->name;
      }
    }
    {
      algorithms::PageRankOptions options;
      options.iterations = 2;
      options.mechanism = core::Mechanism::kHtmCoarsened;
      options.batch = batch;
      const auto r = algorithms::run_pagerank(machine, g, options);
      if (static_cast<std::uint64_t>(batch) <
          threshold(OperatorId::kPagerankPush)) {
        EXPECT_EQ(r.stats.aborts_capacity, 0u)
            << "pagerank batch=" << batch << " on " << param.config->name;
      }
    }
    {
      algorithms::ColoringOptions options;
      options.mechanism = core::Mechanism::kHtmCoarsened;
      options.batch = batch;
      const auto r = algorithms::run_boman_coloring(machine, g, options);
      if (static_cast<std::uint64_t>(batch) <
          threshold(OperatorId::kColorAssign)) {
        EXPECT_EQ(r.stats.aborts_capacity, 0u)
            << "coloring batch=" << batch << " on " << param.config->name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Machines, CapacityThresholdTest,
    ::testing::Values(ThresholdCase{&model::bgq(), model::HtmKind::kBgqShort},
                      ThresholdCase{&model::has_c(), model::HtmKind::kRtm}),
    [](const ::testing::TestParamInfo<ThresholdCase>& info) {
      return info.param.config->name == "BGQ" ? std::string("BgqShort")
                                              : std::string("HasCRtm");
    });

}  // namespace
}  // namespace aam
