#include <gtest/gtest.h>

#include "algorithms/pagerank.hpp"
#include "algorithms/pagerank_dist.hpp"
#include "baselines/bsp_engine.hpp"
#include "baselines/named.hpp"
#include "graph/generators.hpp"
#include "graph/gstats.hpp"

namespace aam::baselines {
namespace {

using graph::Graph;
using graph::Vertex;
using model::HtmKind;

Graph test_graph(std::uint64_t seed = 3) {
  util::Rng rng(seed);
  graph::KroneckerParams p;
  p.scale = 11;
  p.edge_factor = 8;
  return graph::kronecker(p, rng);
}

// ------------------------------------------------------------ BSP engine

TEST(BspEngine, BfsLevelsMatchReference) {
  const Graph g = test_graph();
  mem::SimHeap heap(std::size_t{1} << 22);
  htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 8, heap);
  const Vertex root = graph::pick_nonisolated_vertex(g);
  BspEngine::Result result;
  const auto level = bsp_bfs(machine, g, root, {}, &result);
  const auto reference = graph::bfs_levels(g, root);
  EXPECT_EQ(level, reference);
  EXPECT_GT(result.supersteps, 1);
  EXPECT_GT(result.messages_sent, 0u);
}

TEST(BspEngine, SuperstepCountTracksDiameter) {
  util::Rng rng(7);
  const Graph g = graph::road_lattice(30, 30, 0.0, rng);
  mem::SimHeap heap(std::size_t{1} << 22);
  htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 8, heap);
  BspEngine::Result result;
  const auto level = bsp_bfs(machine, g, 0, {}, &result);
  EXPECT_EQ(level, graph::bfs_levels(g, 0));
  // A 30x30 grid from the corner: eccentricity 58 -> ~60 supersteps.
  EXPECT_GE(result.supersteps, 58);
}

TEST(BspEngine, SuperstepOverheadDominatesRuntime) {
  // The §6.1.2 HAMA effect: runtime grows linearly with supersteps at
  // tens of milliseconds each, making high-diameter graphs catastrophic.
  util::Rng rng(9);
  const Graph g = graph::road_lattice(20, 20, 0.0, rng);
  mem::SimHeap heap(std::size_t{1} << 22);
  htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 8, heap);
  BspEngine::Options options;
  options.superstep_overhead_ns = 1e7;
  BspEngine::Result result;
  bsp_bfs(machine, g, 0, options, &result);
  EXPECT_GE(result.total_time_ns,
            options.superstep_overhead_ns *
                static_cast<double>(result.supersteps - 1));
}

TEST(BspEngine, VoteToHaltTerminates) {
  // A program where every vertex halts immediately ends in one superstep.
  const Graph g = test_graph(11);
  mem::SimHeap heap(std::size_t{1} << 22);
  htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 4, heap);
  BspEngine engine({});
  const auto result = engine.run(
      machine, g, [](BspEngine::VertexContext& ctx) { ctx.vote_to_halt(); });
  EXPECT_EQ(result.supersteps, 1);
  EXPECT_EQ(result.messages_sent, 0u);
}

// -------------------------------------------------------- Named baselines

TEST(NamedBaselines, Graph500AndGaloisProduceValidTrees) {
  const Graph g = test_graph(13);
  const Vertex root = graph::pick_nonisolated_vertex(g);
  {
    mem::SimHeap heap(std::size_t{1} << 24);
    htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 8, heap);
    const auto r = graph500_bfs(machine, g, root);
    EXPECT_TRUE(algorithms::validate_bfs_tree(g, root, r.parent));
    // The baseline uses no transactions at all.
    EXPECT_EQ(r.stats.started, 0u);
    EXPECT_GT(r.stats.atomic_cas, 0u);
  }
  {
    mem::SimHeap heap(std::size_t{1} << 24);
    htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 8, heap);
    const auto r = galois_bfs(machine, g, root);
    EXPECT_TRUE(algorithms::validate_bfs_tree(g, root, r.parent));
  }
}

TEST(NamedBaselines, SnapBfsMatchesReferenceAndIsSequential) {
  const Graph g = test_graph(17);
  const Vertex root = graph::pick_nonisolated_vertex(g);
  mem::SimHeap heap(std::size_t{1} << 22);
  htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 8, heap);
  const auto r = snap_bfs(machine, g, root);
  EXPECT_EQ(r.level, graph::bfs_levels(g, root));
  EXPECT_GT(r.total_time_ns, 0.0);
}

TEST(NamedBaselines, HamaLikeOrdersOfMagnitudeSlowerThanGraph500) {
  // Table 1's S-over-HAMA column is in the hundreds-to-thousands.
  const Graph g = test_graph(19);
  const Vertex root = graph::pick_nonisolated_vertex(g);
  double g500_time = 0;
  {
    mem::SimHeap heap(std::size_t{1} << 24);
    htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 8, heap);
    g500_time = graph500_bfs(machine, g, root).total_time_ns;
  }
  double hama_time = 0;
  {
    mem::SimHeap heap(std::size_t{1} << 24);
    htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 8, heap);
    BspEngine::Result result;
    bsp_bfs(machine, g, root, {}, &result);
    hama_time = result.total_time_ns;
  }
  EXPECT_GT(hama_time, 50.0 * g500_time);
}

// ------------------------------------------------- Distributed PR baseline

TEST(PbglBaseline, AamAndPbglAgreeOnRanks) {
  const Graph g = test_graph(23);
  algorithms::DistPrOptions options;
  options.iterations = 3;

  std::vector<double> aam_rank;
  {
    const graph::Block1D part(g.num_vertices(), 4);
    mem::SimHeap heap(std::size_t{1} << 24);
    net::Cluster cluster(model::bgq(), HtmKind::kBgqShort, 4, 4, heap);
    options.mode = algorithms::DistPrMode::kAam;
    aam_rank = run_distributed_pagerank(cluster, g, part, options).rank;
  }
  std::vector<double> pbgl_rank;
  {
    // Process-per-thread, as PBGL has no threading (§6.2).
    const graph::Block1D part(g.num_vertices(), 16);
    mem::SimHeap heap(std::size_t{1} << 24);
    net::Cluster cluster(model::bgq(), HtmKind::kBgqShort, 16, 1, heap);
    options.mode = algorithms::DistPrMode::kPbgl;
    pbgl_rank = run_distributed_pagerank(cluster, g, part, options).rank;
  }
  const auto reference =
      algorithms::pagerank_reference(g, options.iterations, options.damping);
  ASSERT_EQ(aam_rank.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_NEAR(aam_rank[i], reference[i], 1e-5) << i;   // float32 payload
    EXPECT_NEAR(pbgl_rank[i], reference[i], 1e-5) << i;
  }
}

TEST(PbglBaseline, AamOutperformsPbgl) {
  // The Fig 7c-e shape: AAM is ~3-10x faster thanks to coalescing, coarse
  // transactions and threading (PBGL runs one process per thread, so its
  // node-local traffic also crosses the messaging layer).
  const Graph g = test_graph(29);
  algorithms::DistPrOptions options;
  options.iterations = 2;

  double aam_time = 0, pbgl_time = 0;
  {
    const graph::Block1D part(g.num_vertices(), 4);
    mem::SimHeap heap(std::size_t{1} << 24);
    net::Cluster cluster(model::bgq(), HtmKind::kBgqShort, 4, 4, heap);
    options.mode = algorithms::DistPrMode::kAam;
    aam_time = run_distributed_pagerank(cluster, g, part, options)
                   .total_time_ns;
  }
  {
    const graph::Block1D part(g.num_vertices(), 16);
    mem::SimHeap heap(std::size_t{1} << 24);
    net::Cluster cluster(model::bgq(), HtmKind::kBgqShort, 16, 1, heap);
    options.mode = algorithms::DistPrMode::kPbgl;
    pbgl_time = run_distributed_pagerank(cluster, g, part, options)
                    .total_time_ns;
  }
  EXPECT_GT(pbgl_time, 2.0 * aam_time);
}

}  // namespace
}  // namespace aam::baselines
