// The GraphBLAS-flavoured layer (§7 extension): each semiring's vxm must
// equal the graph kernel it encodes.

#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/graphblas.hpp"
#include "algorithms/sssp.hpp"
#include "graph/generators.hpp"
#include "graph/gstats.hpp"

namespace aam::algorithms::grb {
namespace {

using graph::Graph;
using graph::Vertex;
using model::HtmKind;

Graph test_graph(std::uint64_t seed = 3) {
  util::Rng rng(seed);
  graph::KroneckerParams p;
  p.scale = 10;
  p.edge_factor = 8;
  return graph::kronecker(p, rng);
}

TEST(GraphBlas, PlusTimesVxmIsSpmv) {
  const Graph g = test_graph();
  const Vertex n = g.num_vertices();
  mem::SimHeap heap(std::size_t{1} << 22);
  htm::DesMachine machine(model::bgq(), HtmKind::kBgqShort, 16, heap);

  std::vector<double> x(n);
  util::Rng rng(7);
  for (Vertex v = 0; v < n; ++v) x[v] = rng.next_double();
  auto y = heap.alloc<double>(n);

  vxm<PlusTimes>(machine, g, x, y);

  // Reference SpMV over the adjacency structure.
  std::vector<double> reference(n, 0.0);
  for (Vertex v = 0; v < n; ++v) {
    for (Vertex w : g.neighbors(v)) reference[w] += x[v];
  }
  for (Vertex v = 0; v < n; ++v) EXPECT_NEAR(y[v], reference[v], 1e-9) << v;
}

TEST(GraphBlas, PlusTimesResultIndependentOfBatch) {
  const Graph g = test_graph(5);
  const Vertex n = g.num_vertices();
  std::vector<double> x(n, 1.0);
  std::vector<double> first;
  for (int batch : {1, 7, 64}) {
    mem::SimHeap heap(std::size_t{1} << 22);
    htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 8, heap);
    auto y = heap.alloc<double>(n);
    VxmOptions options;
    options.batch = batch;
    vxm<PlusTimes>(machine, g, x, y, options);
    if (first.empty()) {
      first.assign(y.begin(), y.end());
    } else {
      for (Vertex v = 0; v < n; ++v) ASSERT_NEAR(y[v], first[v], 1e-9);
    }
  }
}

TEST(GraphBlas, MinPlusVxmIsOneRelaxationRound) {
  // dist' = min(dist, vxm_minplus(dist, A)) — one Bellman-Ford round.
  util::Rng rng(11);
  auto edges = graph::erdos_renyi_edges(300, 0.03, rng);
  const auto weights = graph::random_weights(edges.size(), 1.0f, 9.0f, rng);
  const Graph g = Graph::from_weighted_edges(300, edges, weights, true);

  mem::SimHeap heap(std::size_t{1} << 22);
  htm::DesMachine machine(model::bgq(), HtmKind::kBgqShort, 16, heap);
  const Vertex source = graph::pick_nonisolated_vertex(g);

  std::vector<double> dist(g.num_vertices(), MinPlus::zero());
  dist[source] = 0.0;
  auto next = heap.alloc<double>(g.num_vertices());

  // Iterate |V|-1 rounds max; converges much earlier.
  for (int round = 0; round < 40; ++round) {
    for (Vertex v = 0; v < g.num_vertices(); ++v) next[v] = MinPlus::zero();
    VxmOptions options;
    options.use_weights = true;
    vxm<MinPlus>(machine, g, dist, next, options);
    bool changed = false;
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      const double best = std::min(dist[v], next[v]);
      if (best < dist[v]) {
        dist[v] = best;
        changed = true;
      }
    }
    if (!changed) break;
  }

  const auto reference = sssp_reference(g, source);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (std::isinf(reference[v])) {
      EXPECT_TRUE(std::isinf(dist[v])) << v;
    } else {
      EXPECT_NEAR(dist[v], reference[v], 1e-6) << v;
    }
  }
}

TEST(GraphBlas, OrAndVxmIsFrontierExpansion) {
  const Graph g = test_graph(13);
  const Vertex n = g.num_vertices();
  const Vertex root = graph::pick_nonisolated_vertex(g);

  mem::SimHeap heap(std::size_t{1} << 22);
  htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 8, heap);

  // reached' = reached | vxm_orand(reached, A): closure = reachability.
  std::vector<std::uint64_t> reached(n, 0);
  reached[root] = 1;
  auto next = heap.alloc<std::uint64_t>(n);
  for (int round = 0; round < 64; ++round) {
    for (Vertex v = 0; v < n; ++v) next[v] = 0;
    vxm<OrAnd>(machine, g, reached, next, {.one = 1.0});
    bool changed = false;
    for (Vertex v = 0; v < n; ++v) {
      if (next[v] && !reached[v]) {
        reached[v] = 1;
        changed = true;
      }
    }
    if (!changed) break;
  }

  const auto levels = graph::bfs_levels(g, root);
  for (Vertex v = 0; v < n; ++v) {
    EXPECT_EQ(reached[v] != 0, levels[v] != graph::kInvalidLevel) << v;
  }
}

TEST(GraphBlas, EwiseAddAccumulates) {
  mem::SimHeap heap(std::size_t{1} << 20);
  htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 4, heap);
  std::vector<double> in(100);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = static_cast<double>(i);
  auto out = heap.alloc<double>(100);
  for (std::size_t i = 0; i < 100; ++i) out[i] = 1.0;
  ewise_add<PlusTimes>(machine, in, out);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(out[i], 1.0 + static_cast<double>(i));
  }
}

TEST(GraphBlas, SparseInputSkipsEmptyRows) {
  // Only the root row contributes; the engine must not touch others'
  // neighborhoods (checked via the machine's transactional statistics:
  // committed work stays proportional to one row).
  const Graph g = test_graph(17);
  const Vertex n = g.num_vertices();
  mem::SimHeap heap(std::size_t{1} << 22);
  htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 4, heap);
  std::vector<double> x(n, 0.0);
  const Vertex root = graph::pick_nonisolated_vertex(g);
  x[root] = 2.0;
  auto y = heap.alloc<double>(n);
  vxm<PlusTimes>(machine, g, x, y);
  double sum = 0;
  for (Vertex v = 0; v < n; ++v) sum += y[v];
  EXPECT_DOUBLE_EQ(sum, 2.0 * static_cast<double>(g.degree(root)));
}

}  // namespace
}  // namespace aam::algorithms::grb
