#include <gtest/gtest.h>

#include "model/machines.hpp"
#include "model/perf_model.hpp"

namespace aam::model {
namespace {

TEST(Machines, LookupByName) {
  EXPECT_EQ(machine_by_name("BGQ").name, "BGQ");
  EXPECT_EQ(machine_by_name("Has-C").name, "Has-C");
  EXPECT_EQ(machine_by_name("Has-P").name, "Has-P");
  EXPECT_EQ(machine_by_name("hasp").name, "Has-P");
}

TEST(Machines, ThreadCounts) {
  EXPECT_EQ(bgq().max_threads(), 64);      // 16 cores x 4 SMT (§5.1)
  EXPECT_EQ(has_c().max_threads(), 8);     // 4 cores x 2 SMT
  EXPECT_EQ(has_p().max_threads(), 24);    // 12 cores x 2 SMT
}

TEST(Machines, SupportedHtmKinds) {
  EXPECT_EQ(has_c().supported_htm.size(), 2u);
  EXPECT_EQ(bgq().supported_htm.size(), 2u);
  // Haswell machines support RTM/HLE, BGQ supports short/long modes.
  (void)has_c().htm(HtmKind::kRtm);
  (void)has_c().htm(HtmKind::kHle);
  (void)bgq().htm(HtmKind::kBgqShort);
  (void)bgq().htm(HtmKind::kBgqLong);
}

TEST(Machines, HaswellRtmSingleVertexRatio) {
  // [H1] single-vertex RTM activity costs 1.5-3x a CAS (§5.4.1).
  const auto& m = has_c();
  const auto& rtm = m.htm(HtmKind::kRtm);
  const double htm_one = rtm.begin_ns + rtm.commit_ns + rtm.read_ns +
                         rtm.write_ns + m.atomics.load_ns +
                         m.atomics.store_ns;
  const double cas_one = m.atomics.load_ns + m.atomics.cas_ns;
  const double ratio = htm_one / cas_one;
  EXPECT_GE(ratio, 1.5);
  EXPECT_LE(ratio, 3.0);
}

TEST(Machines, RtmFasterThanHle) {
  // [H1] RTM is 5-15% faster than HLE for single-vertex activities.
  const auto& m = has_c();
  const auto& rtm = m.htm(HtmKind::kRtm);
  const auto& hle = m.htm(HtmKind::kHle);
  EXPECT_LT(rtm.begin_ns + rtm.commit_ns, hle.begin_ns + hle.commit_ns);
}

TEST(Machines, BgqShortVsLongModeShape) {
  // [B2] short mode: cheaper begin/commit, pricier per access.
  const auto& shrt = bgq().htm(HtmKind::kBgqShort);
  const auto& lng = bgq().htm(HtmKind::kBgqLong);
  EXPECT_LT(shrt.begin_ns + shrt.commit_ns, lng.begin_ns + lng.commit_ns);
  EXPECT_GT(shrt.read_ns, lng.read_ns);
  EXPECT_GT(shrt.write_ns, lng.write_ns);
}

TEST(Machines, HlePolicyBits) {
  EXPECT_TRUE(has_c().htm(HtmKind::kHle).serialize_after_first_abort);
  EXPECT_FALSE(has_c().htm(HtmKind::kRtm).serialize_after_first_abort);
  EXPECT_TRUE(bgq().htm(HtmKind::kBgqShort).hardware_retry);
  EXPECT_EQ(bgq().htm(HtmKind::kBgqShort).max_retries, 10);  // [B3]
}

TEST(Machines, CapacityGeometries) {
  // [H3] Has-C: 32KB 8-way L1 = 64 sets; Has-P: twice the sets.
  EXPECT_EQ(has_c().htm(HtmKind::kRtm).write_capacity.sets, 64u);
  EXPECT_EQ(has_c().htm(HtmKind::kRtm).write_capacity.ways, 8u);
  EXPECT_EQ(has_p().htm(HtmKind::kRtm).write_capacity.sets, 128u);
  // [B4] BGQ budgets are far larger and 16-way.
  EXPECT_EQ(bgq().htm(HtmKind::kBgqLong).write_capacity.ways, 16u);
  EXPECT_GT(bgq().htm(HtmKind::kBgqLong).write_capacity.capacity_lines(),
            has_c().htm(HtmKind::kRtm).write_capacity.capacity_lines());
}

TEST(PerfModel, HtmInterceptAboveAtomicSlopeBelow) {
  // The §5.3 prediction: B_HTM > B_AT and A_HTM < A_AT.
  for (const MachineConfig* m : {&has_c(), &bgq()}) {
    for (HtmKind kind : m->supported_htm) {
      const ActivityModel htm = htm_activity_model(*m, kind);
      const ActivityModel at = atomic_activity_model(*m, /*use_cas=*/true);
      EXPECT_GT(htm.intercept, at.intercept) << m->name;
      EXPECT_LT(htm.slope, at.slope) << m->name;
    }
  }
}

TEST(PerfModel, CrossoverExistsAndIsSmall) {
  // Coarsening must amortize within tens of vertices, else the paper's
  // optimum M values (2..144) would be impossible.
  const double x_has = predicted_crossover(has_c(), HtmKind::kRtm);
  EXPECT_GT(x_has, 0.0);
  EXPECT_LT(x_has, 32.0);
  const double x_bgq = predicted_crossover(bgq(), HtmKind::kBgqShort);
  EXPECT_GT(x_bgq, 0.0);
  EXPECT_LT(x_bgq, 64.0);
}

TEST(PerfModel, ValidateRecoversPlantedModel) {
  const auto& m = has_c();
  const ActivityModel htm = htm_activity_model(m, HtmKind::kRtm);
  const ActivityModel at = atomic_activity_model(m, true);
  std::vector<double> sizes, at_times, htm_times;
  for (int n = 1; n <= 64; n *= 2) {
    sizes.push_back(n);
    at_times.push_back(at.eval(n));
    htm_times.push_back(htm.eval(n));
  }
  const ModelValidation v = validate_model(m, HtmKind::kRtm, sizes, at_times,
                                           htm_times, true);
  EXPECT_NEAR(v.atomic_fit.slope, at.slope, 1e-9);
  EXPECT_NEAR(v.htm_fit.intercept, htm.intercept, 1e-9);
  EXPECT_NEAR(v.measured_crossover, v.predicted_crossover, 1e-6);
  EXPECT_GT(v.atomic_fit.r2, 0.999);
  EXPECT_GT(v.htm_fit.r2, 0.999);
}

TEST(PerfModel, FootprintScalesSlope) {
  OperatorFootprint heavy;
  heavy.reads_per_vertex = 3;
  heavy.writes_per_vertex = 2;
  const ActivityModel light = htm_activity_model(has_c(), HtmKind::kRtm);
  const ActivityModel big = htm_activity_model(has_c(), HtmKind::kRtm, heavy);
  EXPECT_GT(big.slope, light.slope);
  EXPECT_DOUBLE_EQ(big.intercept, light.intercept);
}

}  // namespace
}  // namespace aam::model
