#include <gtest/gtest.h>

#include <cmath>

#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace aam::util {
namespace {

// ----------------------------------------------------------------- Rng

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(9);
  bool seen[8] = {};
  for (int i = 0; i < 1000; ++i) seen[rng.next_below(8)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextDoubleApproximatelyUniform) {
  Rng rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ForkDecorrelates) {
  Rng root(5);
  Rng a = root.fork(1);
  Rng b = root.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsDeterministic) {
  Rng root(5);
  Rng a = root.fork(9);
  Rng b = root.fork(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(21);
  bool lo = false, hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    lo |= (v == 3);
    hi |= (v == 5);
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

// --------------------------------------------------------------- Stats

TEST(OnlineStats, MeanVarianceExtrema) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesCombined) {
  OnlineStats all, a, b;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double() * 100;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SampleSet, Percentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.mean(), 50.5, 1e-9);
}

TEST(LinearFit, RecoversExactLine) {
  std::vector<double> xs, ys;
  for (int i = 1; i <= 32; ++i) {
    xs.push_back(i);
    ys.push_back(3.5 * i + 42.0);
  }
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 3.5, 1e-9);
  EXPECT_NEAR(fit.intercept, 42.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LinearFit, NoisyLineHighR2) {
  Rng rng(17);
  std::vector<double> xs, ys;
  for (int i = 1; i <= 100; ++i) {
    xs.push_back(i);
    ys.push_back(2.0 * i + 10.0 + (rng.next_double() - 0.5));
  }
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 0.05);
  EXPECT_GT(fit.r2, 0.999);
}

TEST(Crossover, HtmBeatsAtomicsBeyondN) {
  // The §5.3 shape: HTM has higher intercept, lower slope.
  LinearFit htm{/*slope=*/6.0, /*intercept=*/45.0, 1.0};
  LinearFit atomics{/*slope=*/22.0, /*intercept=*/0.0, 1.0};
  const double x = crossover(htm, atomics);
  EXPECT_NEAR(x, 45.0 / 16.0, 1e-9);
  // Beyond the crossover HTM is cheaper.
  EXPECT_LT(htm.eval(x + 1), atomics.eval(x + 1));
  EXPECT_GT(htm.eval(x - 1), atomics.eval(x - 1));
}

TEST(Crossover, NeverWins) {
  LinearFit a{10.0, 50.0, 1.0};
  LinearFit b{5.0, 0.0, 1.0};
  EXPECT_LT(crossover(a, b), 0.0);
}

TEST(Crossover, AlwaysWins) {
  LinearFit a{1.0, 0.0, 1.0};
  LinearFit b{5.0, 10.0, 1.0};
  EXPECT_DOUBLE_EQ(crossover(a, b), 0.0);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  h.add(-1.0);
  h.add(10.0);
  h.add(100.0);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(h.bucket(i), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 13u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(3), 3.0);
}

// ----------------------------------------------------------------- Cli

TEST(Cli, ParsesForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "7.5", "--flag",
                        "--name=x,y"};
  Cli cli(6, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(cli.get_double("beta", 0.0), 7.5);
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_EQ(cli.get_string("name", ""), "x,y");
  EXPECT_EQ(cli.get_int("missing", 99), 99);
}

TEST(Cli, IntList) {
  const char* argv[] = {"prog", "--sizes=1,2,16"};
  Cli cli(2, const_cast<char**>(argv));
  const auto v = cli.get_int_list("sizes", {});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 2);
  EXPECT_EQ(v[2], 16);
  const auto d = cli.get_int_list("other", {5});
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0], 5);
}

// --------------------------------------------------------------- Table

TEST(Table, RendersAlignedAndCsv) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(3.14159, 2);
  t.row().cell("beta").cell(std::uint64_t{42});
  EXPECT_EQ(t.num_rows(), 2u);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("3.14"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("name,value"), std::string::npos);
  EXPECT_NE(csv.find("beta,42"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table t({"a"});
  t.row().cell("x,y\"z");
  EXPECT_NE(t.to_csv().find("\"x,y\"\"z\""), std::string::npos);
}

TEST(Format, TimeUnits) {
  EXPECT_EQ(format_time_ns(12.0), "12.0 ns");
  EXPECT_EQ(format_time_ns(1500.0), "1.50 us");
  EXPECT_EQ(format_time_ns(2.5e6), "2.50 ms");
  EXPECT_EQ(format_time_ns(3.2e9), "3.200 s");
}

TEST(Format, Count) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1234567), "1,234,567");
}

}  // namespace
}  // namespace aam::util
