#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "algorithms/bfs.hpp"
#include "algorithms/pagerank_dist.hpp"
#include "core/runtime.hpp"
#include "fault/fault.hpp"
#include "graph/generators.hpp"
#include "graph/gstats.hpp"
#include "graph/partition.hpp"
#include "htm/resilience.hpp"
#include "net/cluster.hpp"
#include "recovery/manager.hpp"
#include "recovery/snapshot.hpp"

namespace aam::recovery {
namespace {

// ---------------------------------------------------------------------------
// Round-trip property: checkpoint -> mutate -> restore -> checkpoint must
// reproduce the original snapshot bit-for-bit, section by section, under
// every synchronization mechanism (each serializes different executor and
// heap-resident state: lock stripes, orecs, the serial lock word, ...).

TEST(Recovery, CheckpointRoundTripIsBitIdenticalPerMechanism) {
  for (const core::Mechanism mech : core::all_mechanisms()) {
    SCOPED_TRACE(core::to_string(mech));
    mem::SimHeap heap(std::size_t{1} << 22);
    htm::DesMachine machine(model::has_c(), model::HtmKind::kRtm, 4, heap, 7);
    RecoveryManager rec(machine, RecoveryOptions{1.0e9});
    auto counters = heap.alloc<std::uint64_t>(64, "counters");
    std::fill(counters.begin(), counters.end(), 0);

    core::AamRuntime::Options o;
    o.batch = 8;
    o.mechanism = mech;
    core::AamRuntime rt(machine, o);
    const auto bump = [&](auto& access, std::uint64_t i) {
      access.fetch_add(counters[i % 64], std::uint64_t{1});
    };
    rt.for_each(512, bump);

    rec.take_checkpoint_now();
    const std::vector<std::uint8_t> snap_a = rec.last_snapshot_bytes();
    ASSERT_FALSE(snap_a.empty());
    const std::uint64_t value_a = counters[0];
    EXPECT_EQ(value_a, 8u);  // 512 items over 64 counters

    rt.for_each(512, bump);
    EXPECT_EQ(counters[0], 2 * value_a);

    std::string err;
    ASSERT_TRUE(rec.restore_from_bytes(snap_a, &err)) << err;
    EXPECT_EQ(counters[0], value_a);  // heap rewound with the snapshot

    rec.take_checkpoint_now();
    const std::vector<std::uint8_t>& snap_b = rec.last_snapshot_bytes();
    const auto a = Snapshot::open(snap_a, &err);
    ASSERT_TRUE(a.has_value()) << err;
    const auto b = Snapshot::open(snap_b, &err);
    ASSERT_TRUE(b.has_value()) << err;
    // Checkpoint ids differ (they are monotone); every section must not.
    ASSERT_EQ(a->sections().size(), b->sections().size());
    EXPECT_DOUBLE_EQ(a->now_ns(), b->now_ns());
    for (std::size_t i = 0; i < a->sections().size(); ++i) {
      EXPECT_EQ(a->sections()[i].tag, b->sections()[i].tag);
      EXPECT_EQ(a->sections()[i].bytes, b->sections()[i].bytes)
          << "section tag " << a->sections()[i].tag;
    }
  }
}

// ---------------------------------------------------------------------------
// Torn-snapshot rejection: a truncated or bit-flipped snapshot must be
// refused with the machine untouched — recovery never half-applies.

TEST(Recovery, TornSnapshotIsRejectedWithoutTouchingTheMachine) {
  mem::SimHeap heap(std::size_t{1} << 22);
  htm::DesMachine machine(model::has_c(), model::HtmKind::kRtm, 2, heap, 11);
  RecoveryManager rec(machine, RecoveryOptions{1.0e9});
  auto counters = heap.alloc<std::uint64_t>(8, "counters");
  std::fill(counters.begin(), counters.end(), 0);

  core::AamRuntime::Options o;
  o.batch = 4;
  core::AamRuntime rt(machine, o);
  const auto bump = [&](auto& access, std::uint64_t i) {
    access.fetch_add(counters[i % 8], std::uint64_t{1});
  };
  rt.for_each(64, bump);
  rec.take_checkpoint_now();
  const std::vector<std::uint8_t> intact = rec.last_snapshot_bytes();

  rt.for_each(64, bump);
  const std::uint64_t mutated = counters[0];
  EXPECT_EQ(mutated, 16u);

  // Truncations at several depths: header, mid-section, and one byte shy
  // of the final digest all fail verification before any byte applies.
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{16}, intact.size() / 2,
        intact.size() - 1}) {
    SCOPED_TRACE(len);
    std::vector<std::uint8_t> torn(intact.begin(),
                                   intact.begin() + static_cast<long>(len));
    std::string err;
    EXPECT_FALSE(rec.restore_from_bytes(torn, &err));
    EXPECT_FALSE(err.empty());
    EXPECT_EQ(counters[0], mutated);  // machine untouched
  }

  // A single flipped bit in the middle trips the chained digest.
  std::vector<std::uint8_t> flipped = intact;
  flipped[flipped.size() / 2] ^= 0x10;
  std::string err;
  EXPECT_FALSE(rec.restore_from_bytes(flipped, &err));
  EXPECT_NE(err.find("digest mismatch"), std::string::npos) << err;
  EXPECT_EQ(counters[0], mutated);

  // The intact buffer still restores after all the rejected attempts.
  ASSERT_TRUE(rec.restore_from_bytes(intact, &err)) << err;
  EXPECT_EQ(counters[0], 8u);
}

// ---------------------------------------------------------------------------
// Crash recovery, shared memory: a crash-stopped BFS restored from
// checkpoints must produce a bit-identical result to the fault-free run
// (deterministic replay: engine RNG streams and schedule are part of the
// checkpoint; crash draws live outside it).

TEST(Recovery, CrashedBfsMatchesFaultFreeRunBitExactly) {
  const std::uint64_t seed = 5;
  util::Rng grng(seed);
  const graph::Graph g = graph::erdos_renyi(1 << 10, 0.01, grng);
  algorithms::BfsOptions o;
  o.root = graph::pick_nonisolated_vertex(g);

  mem::SimHeap base_heap(std::size_t{1} << 24);
  htm::DesMachine base(model::has_c(), model::HtmKind::kRtm, 8, base_heap,
                       seed);
  const auto base_r = algorithms::run_bfs(base, g, o);

  mem::SimHeap heap(std::size_t{1} << 24);
  htm::DesMachine machine(model::has_c(), model::HtmKind::kRtm, 8, heap, seed);
  const fault::FaultPlan plan =
      fault::parse("crash-restart", model::has_c().fault);
  fault::FaultInjector inj(plan, seed, machine.num_threads());
  inj.attach(machine);
  RecoveryManager rec(machine, RecoveryOptions{plan.crash_ckpt_ns});
  const auto crashed_r = algorithms::run_bfs(machine, g, o);

  EXPECT_GE(rec.stats().crashes, 1u);  // crash.at guarantees one
  EXPECT_EQ(rec.stats().crashes, inj.injected().crashes);
  EXPECT_GT(rec.stats().checkpoints, 0u);
  EXPECT_GT(rec.stats().lost_work_ns, 0.0);
  EXPECT_EQ(crashed_r.parent, base_r.parent);
  EXPECT_EQ(crashed_r.vertices_visited, base_r.vertices_visited);
  EXPECT_DOUBLE_EQ(crashed_r.total_time_ns, base_r.total_time_ns);
}

// ---------------------------------------------------------------------------
// Crash recovery, distributed: crashes under a lossy network must keep the
// NetStats accounting exact — counters restored to checkpoint values forget
// the interval's drops/dups, the injector never forgets, and the
// rolled_back_* deltas bridge the two.

TEST(Recovery, NetStatsAccountingIsExactAcrossCrashRestore) {
  const std::uint64_t seed = 3;
  const int nodes = 4;
  const int threads = 4;
  util::Rng grng(seed + 17);
  const graph::Graph g = graph::erdos_renyi(1 << 10, 0.01, grng);
  const graph::Block1D part(g.num_vertices(), nodes);
  algorithms::DistPrOptions o;
  o.iterations = 3;

  mem::SimHeap base_heap(std::size_t{1} << 26);
  net::Cluster base(model::has_p(), model::HtmKind::kRtm, nodes, threads,
                    base_heap, seed);
  const auto base_r = algorithms::run_distributed_pagerank(base, g, part, o);

  mem::SimHeap heap(std::size_t{1} << 26);
  net::Cluster cluster(model::has_p(), model::HtmKind::kRtm, nodes, threads,
                       heap, seed);
  const fault::FaultPlan plan =
      fault::parse("crash-combined", model::has_p().fault);
  fault::FaultInjector inj(plan, seed, nodes * threads, threads);
  inj.attach(cluster);
  RecoveryManager rec(cluster, RecoveryOptions{plan.crash_ckpt_ns});
  const auto r = algorithms::run_distributed_pagerank(cluster, g, part, o);

  EXPECT_EQ(cluster.in_flight(), 0u);  // quiescence: exactly-once delivered
  const auto& injected = inj.injected();
  const RecoveryStats& rs = rec.stats();
  EXPECT_GE(rs.crashes, 1u);
  EXPECT_EQ(rs.crashes, injected.crashes);
  // Exact accounting: injected == surviving-timeline NetStats + the
  // counter deltas each restore rolled back.
  EXPECT_EQ(r.net.dropped + rs.rolled_back_dropped, injected.net_dropped);
  EXPECT_EQ(r.net.duplicated + rs.rolled_back_duplicated,
            injected.net_duplicated);
  EXPECT_GT(injected.net_dropped, 0u);  // the lossy leg actually engaged

  // Fault-oblivious correctness: float32 payloads + reordered accumulation
  // bound the drift (same tolerance as bench_fault_matrix).
  ASSERT_EQ(r.rank.size(), base_r.rank.size());
  for (std::size_t v = 0; v < r.rank.size(); ++v) {
    EXPECT_NEAR(r.rank[v], base_r.rank[v], 1e-5) << "vertex " << v;
  }
}

// ---------------------------------------------------------------------------
// RTO backoff regression: the sender's retransmit timeout doubles per
// retransmission and plateaus exactly at the hook's cap — never past it.

class DropFirstNHook final : public net::NetFaultHook {
 public:
  DropFirstNHook(htm::DesMachine& machine, int drops)
      : machine_(machine), drops_(drops) {}

  bool net_active() const override { return true; }
  net::MessageFate fate(const net::Message&, bool retransmit) override {
    if (retransmit) retransmit_times.push_back(machine_.now());
    ++calls_;
    net::MessageFate f;
    f.drop = calls_ <= drops_;
    return f;
  }
  double initial_rto_ns() const override { return 500.0; }
  double rto_cap_ns() const override { return 2000.0; }

  std::vector<double> retransmit_times;

 private:
  htm::DesMachine& machine_;
  int calls_ = 0;
  int drops_ = 0;
};

class PollWorker : public htm::Worker {
 public:
  explicit PollWorker(net::Cluster& cluster) : cluster_(cluster) {}
  bool next(htm::ThreadCtx& ctx) override {
    return cluster_.poll_and_handle(ctx);
  }

 private:
  net::Cluster& cluster_;
};

class SendOnceWorker : public htm::Worker {
 public:
  SendOnceWorker(net::Cluster& cluster, std::uint32_t handler)
      : cluster_(cluster), handler_(handler) {}
  bool next(htm::ThreadCtx& ctx) override {
    if (!sent_) {
      sent_ = true;
      cluster_.send(ctx, 1, handler_, 42);
      return true;
    }
    return cluster_.poll_and_handle(ctx);
  }

 private:
  net::Cluster& cluster_;
  std::uint32_t handler_;
  bool sent_ = false;
};

TEST(Recovery, RetransmitBackoffDoublesAndCapsAtRtoCap) {
  mem::SimHeap heap(std::size_t{1} << 16);
  net::Cluster cluster(model::has_p(), model::HtmKind::kRtm, 2, 1, heap);
  const int kDrops = 6;
  DropFirstNHook hook(cluster.machine(), kDrops);
  cluster.set_fault_hook(&hook);
  int handled = 0;
  const auto h = cluster.register_handler(
      [&](htm::ThreadCtx&, const net::Message&) { ++handled; });
  SendOnceWorker sender(cluster, h);
  PollWorker receiver(cluster);
  cluster.machine().set_worker(0, &sender);
  cluster.machine().set_worker(1, &receiver);
  cluster.machine().run();

  // Exactly one copy reaches the handler. Timers past the 6th drop may
  // legitimately outrun the ack's round trip (the capped RTO is shorter
  // than 2L), so a few extra retransmissions arrive and are dedup-discarded
  // — exactly-once delivery holds regardless.
  EXPECT_EQ(handled, 1);
  EXPECT_EQ(cluster.stats().dropped, static_cast<std::uint64_t>(kDrops));
  EXPECT_GE(cluster.stats().retransmitted, static_cast<std::uint64_t>(kDrops));
  EXPECT_EQ(cluster.stats().dedup_discarded,
            cluster.stats().retransmitted - kDrops);
  EXPECT_EQ(cluster.stats().acked, 1u);
  EXPECT_EQ(cluster.in_flight(), 0u);

  // Retransmissions fire at arm-time + RTO; the RTO doubles after each
  // arming: gaps run 2*initial, then sit exactly at the cap forever.
  ASSERT_GE(hook.retransmit_times.size(), static_cast<std::size_t>(kDrops));
  std::vector<double> gaps;
  for (std::size_t i = 1; i < hook.retransmit_times.size(); ++i) {
    gaps.push_back(hook.retransmit_times[i] - hook.retransmit_times[i - 1]);
  }
  EXPECT_DOUBLE_EQ(gaps[0], 2 * hook.initial_rto_ns());
  for (std::size_t i = 1; i < gaps.size(); ++i) {
    EXPECT_DOUBLE_EQ(gaps[i], hook.rto_cap_ns()) << "gap " << i;
  }
  for (const double gap : gaps) {
    EXPECT_LE(gap, hook.rto_cap_ns());  // backoff never overshoots the cap
  }
}

// ---------------------------------------------------------------------------
// StallDiagnostic rendering: the watchdog's exception must surface the
// recovery-facing fields (in-flight messages, last checkpoint id) so a hung
// recovery is diagnosable from the exception text alone.

TEST(Recovery, StallDiagnosticRendersRecoveryFields) {
  htm::StallDiagnostic d;
  d.now_ns = 1.25e6;
  d.last_progress_ns = 2.5e5;
  d.inflight_txns = 3;
  d.worst_tid = 9;
  d.worst_streak = 41;
  d.events_processed = 12345;
  d.inflight_messages = 7;
  d.last_checkpoint_id = 3;
  const std::string s = d.to_string();
  EXPECT_NE(s.find("12345 events processed"), std::string::npos) << s;
  EXPECT_NE(s.find("7 message(s) in flight"), std::string::npos) << s;
  EXPECT_NE(s.find("last checkpoint #3"), std::string::npos) << s;
}

TEST(Recovery, CrashDiagnosticRendersCrashInstant) {
  htm::CrashDiagnostic d;
  d.now_ns = 4200.0;
  d.tid = 2;
  d.events_processed = 99;
  const std::string s = d.to_string();
  EXPECT_NE(s.find("crash-stopped"), std::string::npos) << s;
  EXPECT_NE(s.find("thread t2"), std::string::npos) << s;
  EXPECT_NE(s.find("99 events processed"), std::string::npos) << s;
}

}  // namespace
}  // namespace aam::recovery
