#include <gtest/gtest.h>

#include "core/adaptive.hpp"
#include "core/distributed.hpp"
#include "core/ownership.hpp"
#include "core/runtime.hpp"
#include "core/taxonomy.hpp"

namespace aam::core {
namespace {

using model::HtmKind;

// ------------------------------------------------------------- taxonomy

TEST(Taxonomy, FourMessageClasses) {
  EXPECT_EQ(kFFAS.direction, Direction::kFireAndForget);
  EXPECT_EQ(kFFAS.commit, CommitMode::kAlwaysSucceed);
  EXPECT_EQ(kFRMF.direction, Direction::kFireAndReturn);
  EXPECT_EQ(kFRMF.commit, CommitMode::kMayFail);
  EXPECT_STREQ(to_string(Direction::kFireAndForget), "FF");
  EXPECT_STREQ(to_string(CommitMode::kMayFail), "MF");
}

// ----------------------------------------------------------- AamRuntime

TEST(AamRuntime, ForEachAppliesEveryItemOnce) {
  mem::SimHeap heap(1 << 20);
  htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 8, heap);
  auto data = heap.alloc<std::uint64_t>(1000);
  AamRuntime rt(machine, {.batch = 16});
  rt.for_each(1000, [&](auto& access, std::uint64_t i) {
    access.fetch_add(data[i], std::uint64_t{1});
  });
  for (std::uint64_t i = 0; i < 1000; ++i) EXPECT_EQ(data[i], 1u) << i;
  const auto s = machine.stats();
  // ceil(1000/16) batches minimum (aborted batches retry, not re-commit).
  EXPECT_GE(s.completed(), 63u);
}

TEST(AamRuntime, BatchOneBehavesLikeSingleElementActivities) {
  mem::SimHeap heap(1 << 20);
  htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 4, heap);
  auto data = heap.alloc<std::uint64_t>(64);
  AamRuntime rt(machine, {.batch = 1});
  rt.for_each(64, [&](auto& access, std::uint64_t i) {
    access.store(data[i], i);
  });
  for (std::uint64_t i = 0; i < 64; ++i) EXPECT_EQ(data[i], i);
  EXPECT_EQ(machine.stats().completed(), 64u);
}

TEST(AamRuntime, CoarseningReducesRuntimeOnThisWorkload) {
  // The central §5.5 effect: with per-vertex work dominated by transaction
  // begin/commit overhead, a larger M is faster.
  auto run_with_batch = [](int m) {
    mem::SimHeap heap(1 << 22);
    htm::DesMachine machine(model::bgq(), HtmKind::kBgqShort, 16, heap);
    auto data = heap.alloc<std::uint64_t>(32768);
    AamRuntime rt(machine, {.batch = m});
    rt.for_each(32768, [&](auto& access, std::uint64_t i) {
      access.store(data[i], std::uint64_t{1});
    });
    return machine.makespan();
  };
  const double t1 = run_with_batch(1);
  const double t32 = run_with_batch(32);
  EXPECT_LT(t32, t1 / 2.0);
}

TEST(AamRuntime, SequentialForEachCalls) {
  mem::SimHeap heap(1 << 20);
  htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 4, heap);
  auto data = heap.alloc<std::uint64_t>(128);
  AamRuntime rt(machine, {.batch = 8});
  for (int round = 0; round < 3; ++round) {
    rt.for_each(128, [&](auto& access, std::uint64_t i) {
      access.fetch_add(data[i], std::uint64_t{1});
    });
  }
  for (std::uint64_t i = 0; i < 128; ++i) EXPECT_EQ(data[i], 3u);
}

TEST(AamRuntime, AdaptiveBatchShrinksUnderConflicts) {
  // All threads hammer one vertex: abort storms must push M down.
  mem::SimHeap heap(1 << 20);
  htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 8, heap);
  auto* hot = heap.alloc_one<std::uint64_t>(0);
  AamRuntime rt(machine, {.batch = 8});
  AdaptiveBatch::Options opt;
  opt.initial = 256;
  opt.window = 8;
  AdaptiveBatch adaptive(opt);
  rt.set_adaptive(&adaptive);
  rt.for_each(20000, [&](auto& access, std::uint64_t) {
    access.fetch_add(*hot, std::uint64_t{1});
  });
  EXPECT_EQ(*hot, 20000u);
  EXPECT_LT(adaptive.batch(), 256);
}

TEST(AdaptiveBatch, GrowsWhenAbortFree) {
  AdaptiveBatch::Options opt;
  opt.initial = 4;
  opt.window = 4;
  opt.max_batch = 64;
  AdaptiveBatch ab(opt);
  htm::TxnOutcome clean;
  for (int i = 0; i < 100; ++i) ab.record(clean);
  EXPECT_EQ(ab.batch(), 64);
}

TEST(AdaptiveBatch, ShrinksUnderAborts) {
  AdaptiveBatch::Options opt;
  opt.initial = 64;
  opt.window = 4;
  AdaptiveBatch ab(opt);
  htm::TxnOutcome bad;
  bad.aborts = 3;
  for (int i = 0; i < 100; ++i) ab.record(bad);
  EXPECT_EQ(ab.batch(), opt.min_batch);
}

TEST(AdaptiveBatch, RecoversFromAbortStormWithCooldown) {
  // Hardening scenario: reach a steady-state M, take an escalation storm
  // (the engine's livelock signal), then calm down. The controller must
  // (a) degrade to min_batch immediately, (b) hold through the cooldown
  // and the storm's tail, and (c) climb back to the pre-storm M within a
  // bounded number of calm windows — without oscillating mid-storm.
  AdaptiveBatch::Options opt;
  opt.initial = 8;
  opt.window = 4;
  opt.max_batch = 64;
  opt.cooldown_windows = 2;
  opt.grow_hysteresis = 2;
  AdaptiveBatch ab(opt);

  htm::TxnOutcome clean;
  for (int i = 0; i < 100; ++i) ab.record(clean);
  ASSERT_EQ(ab.batch(), 64);  // fault-free steady state
  ASSERT_FALSE(ab.recovering());

  // Escalation storm: M collapses to min on the first escalated outcome
  // and stays pinned while the storm lasts.
  htm::TxnOutcome escalated;
  escalated.serialized = true;
  escalated.escalated = true;
  escalated.aborts = 3;
  ab.record(escalated);
  EXPECT_EQ(ab.batch(), opt.min_batch);
  EXPECT_TRUE(ab.recovering());
  for (int i = 0; i < 6 * opt.window; ++i) {
    ab.record(escalated);
    EXPECT_EQ(ab.batch(), opt.min_batch);
  }

  // Calm: recovery must restore the pre-storm M within the budgeted
  // window count — cooldown + hysteresis per doubling (1->64 is six
  // doublings) — and then leave the recovery regime.
  const int budget_windows =
      opt.cooldown_windows + 6 * opt.grow_hysteresis + 2;
  int windows_to_recover = -1;
  for (int w = 0; w < budget_windows; ++w) {
    for (int i = 0; i < opt.window; ++i) ab.record(clean);
    EXPECT_LE(ab.batch(), 64) << "recovery overshot the pre-storm M";
    if (ab.batch() == 64) {
      windows_to_recover = w + 1;
      break;
    }
  }
  EXPECT_NE(windows_to_recover, -1)
      << "did not recover within " << budget_windows << " windows";
  EXPECT_FALSE(ab.recovering());

  // Back to normal control: further calm windows may grow M again.
  for (int i = 0; i < 2 * opt.window; ++i) ab.record(clean);
  EXPECT_EQ(ab.batch(), 64);
}

// --------------------------------------------------- DistributedRuntime

class ProduceRange : public DistributedRuntime::Worker {
 public:
  ProduceRange(DistributedRuntime& rt, std::uint64_t count, int target_node)
      : DistributedRuntime::Worker(rt), rt2_(rt), left_(count),
        target_(target_node) {}

  bool produce(htm::ThreadCtx& ctx) override {
    if (left_ == 0) return false;
    --left_;
    rt2_.spawn(ctx, target_, left_);
    return true;
  }

 private:
  DistributedRuntime& rt2_;
  std::uint64_t left_;
  int target_;
};

TEST(DistributedRuntime, RemoteSpawnsExecuteAtOwner) {
  mem::SimHeap heap(1 << 20);
  net::Cluster cluster(model::bgq(), HtmKind::kBgqShort, 2, 2, heap);
  auto data = heap.alloc<std::uint64_t>(256);
  DistributedRuntime rt(cluster, {.coalesce = 8, .local_batch = 8});
  rt.set_operator([&](auto& access, std::uint64_t item) {
    access.fetch_add(data[item], std::uint64_t{1});
  });
  // Node 0's threads spawn 100 items owned by node 1; node 1 just polls.
  ProduceRange p0(rt, 100, /*target_node=*/1);
  DistributedRuntime::Worker r1(rt), r2(rt), r3(rt);
  cluster.machine().set_worker(0, &p0);
  cluster.machine().set_worker(1, &r1);
  cluster.machine().set_worker(2, &r2);
  cluster.machine().set_worker(3, &r3);
  cluster.machine().run();

  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < 256; ++i) total += data[i];
  EXPECT_EQ(total, 100u);
  EXPECT_TRUE(rt.drained());
  EXPECT_EQ(rt.items_executed(), 100u);
  // Coalescing: ~100/8 messages, not 100.
  EXPECT_LE(cluster.stats().messages_sent, 14u);
}

TEST(DistributedRuntime, LocalSpawnsSkipTheNetwork) {
  mem::SimHeap heap(1 << 20);
  net::Cluster cluster(model::bgq(), HtmKind::kBgqShort, 2, 1, heap);
  auto data = heap.alloc<std::uint64_t>(64);
  DistributedRuntime rt(cluster, {.coalesce = 8, .local_batch = 4});
  rt.set_operator([&](auto& access, std::uint64_t item) {
    access.fetch_add(data[item], std::uint64_t{1});
  });
  ProduceRange p0(rt, 50, /*target_node=*/0);  // all local
  DistributedRuntime::Worker r1(rt);
  cluster.machine().set_worker(0, &p0);
  cluster.machine().set_worker(1, &r1);
  cluster.machine().run();
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < 64; ++i) total += data[i];
  EXPECT_EQ(total, 50u);
  EXPECT_EQ(cluster.stats().messages_sent, 0u);
}

TEST(DistributedRuntime, FireAndReturnRunsFailureHandlerAtSpawner) {
  mem::SimHeap heap(1 << 20);
  net::Cluster cluster(model::bgq(), HtmKind::kBgqShort, 2, 1, heap);
  auto data = heap.alloc<std::uint64_t>(64);
  DistributedRuntime rt(cluster, {.coalesce = 4, .local_batch = 4});
  std::vector<std::uint64_t> failures;
  std::vector<int> failure_nodes;
  rt.set_operator_fr(
      [&](auto& access, std::uint64_t item) -> std::uint64_t {
        access.fetch_add(data[item], std::uint64_t{1});
        // Odd items report back (e.g. a conflicting color, §3.3.5).
        return item % 2 == 1 ? item : 0;
      },
      [&](htm::ThreadCtx& ctx, std::uint64_t result) {
        failures.push_back(result);
        failure_nodes.push_back(
            cluster.node_of_thread(ctx.thread_id()));
      });
  ProduceRange p0(rt, 20, /*target_node=*/1);
  DistributedRuntime::Worker r1(rt);
  cluster.machine().set_worker(0, &p0);
  cluster.machine().set_worker(1, &r1);
  cluster.machine().run();

  EXPECT_EQ(failures.size(), 10u);  // items 1,3,...,19
  for (int node : failure_nodes) EXPECT_EQ(node, 0);  // at the spawner
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < 64; ++i) total += data[i];
  EXPECT_EQ(total, 20u);
}

TEST(DistributedRuntime, ManyToOneConvergecast) {
  // N-1 nodes all update vertices owned by the last node (Fig 5d shape).
  mem::SimHeap heap(1 << 20);
  const int nodes = 4;
  net::Cluster cluster(model::bgq(), HtmKind::kBgqShort, nodes, 1, heap);
  auto* hot = heap.alloc_one<std::uint64_t>(0);
  DistributedRuntime rt(cluster, {.coalesce = 16, .local_batch = 16});
  rt.set_operator([&](auto& access, std::uint64_t) {
    access.fetch_add(*hot, std::uint64_t{1});
  });
  std::vector<std::unique_ptr<ProduceRange>> producers;
  for (int n = 0; n + 1 < nodes; ++n) {
    producers.push_back(std::make_unique<ProduceRange>(rt, 64, nodes - 1));
    cluster.machine().set_worker(cluster.thread_of(n, 0),
                                 producers.back().get());
  }
  DistributedRuntime::Worker sink(rt);
  cluster.machine().set_worker(cluster.thread_of(nodes - 1, 0), &sink);
  cluster.machine().run();
  EXPECT_EQ(*hot, 3u * 64u);
}

// ---------------------------------------------------- OwnershipProtocol

TEST(OwnershipProtocol, CompletesAllTransactionsExactlyOnce) {
  mem::SimHeap heap(1 << 22);
  net::Cluster cluster(model::bgq(), HtmKind::kBgqShort, 4, 1, heap);
  const graph::Vertex n = 256;
  auto markers = heap.alloc<std::uint64_t>(n);
  auto values = heap.alloc<std::uint64_t>(n);
  graph::Block1D part(n, 4);
  OwnershipProtocol proto(cluster, markers, values, part);

  OwnershipProtocol::Params params;
  params.txns_per_process = 25;
  params.local_elements = 5;
  params.remote_elements = 1;
  const auto stats = proto.run(params);

  EXPECT_EQ(stats.transactions_completed, 4u * 25u);
  // Exactly-once effects: sum of values == completed * (a + b).
  std::uint64_t total = 0;
  for (std::uint64_t v : values) total += v;
  EXPECT_EQ(total, 100u * 6u);
  // All markers released at the end.
  for (std::uint64_t m : markers) EXPECT_EQ(m, 0u);
  EXPECT_GT(stats.makespan_ns, 0.0);
  EXPECT_GE(stats.marker_cas_attempts, 100u);
}

TEST(OwnershipProtocol, ContentionCausesCasFailuresAndBackoff) {
  // Few elements, many remote acquisitions: CAS failures are inevitable.
  mem::SimHeap heap(1 << 22);
  net::Cluster cluster(model::bgq(), HtmKind::kBgqShort, 4, 1, heap);
  const graph::Vertex n = 16;  // tiny: heavy marker contention
  auto markers = heap.alloc<std::uint64_t>(n);
  auto values = heap.alloc<std::uint64_t>(n);
  graph::Block1D part(n, 4);
  OwnershipProtocol proto(cluster, markers, values, part);

  OwnershipProtocol::Params params;
  params.txns_per_process = 50;
  params.local_elements = 2;
  params.remote_elements = 3;
  const auto stats = proto.run(params);

  EXPECT_EQ(stats.transactions_completed, 200u);
  EXPECT_GT(stats.marker_cas_failures, 0u);
  EXPECT_GT(stats.backoffs, 0u);
  std::uint64_t total = 0;
  for (std::uint64_t v : values) total += v;
  EXPECT_EQ(total, 200u * 5u);
}

TEST(OwnershipProtocol, MoreRemoteElementsSlowDownExecution) {
  // The O-1 vs O-3 comparison of §5.7: more remote vertices per txn means
  // more acquisition rounds and a longer makespan.
  auto run_config = [](int a, int b) {
    mem::SimHeap heap(1 << 22);
    net::Cluster cluster(model::bgq(), HtmKind::kBgqShort, 4, 1, heap);
    const graph::Vertex n = 4096;
    auto markers = heap.alloc<std::uint64_t>(n);
    auto values = heap.alloc<std::uint64_t>(n);
    graph::Block1D part(n, 4);
    OwnershipProtocol proto(cluster, markers, values, part);
    OwnershipProtocol::Params params;
    params.txns_per_process = 50;
    params.local_elements = a;
    params.remote_elements = b;
    return proto.run(params).makespan_ns;
  };
  EXPECT_LT(run_config(5, 1), run_config(7, 3));
}

}  // namespace
}  // namespace aam::core
