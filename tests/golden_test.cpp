// Golden simulated-time snapshot (extends tools/determinism_check.sh into
// ctest): a small algorithm x mechanism x machine sweep whose simulated
// times, abort/commit counters, and result digests must stay bit-identical
// across host-side refactors. Any host-only optimization (devirtualized
// dispatch, footprint memoization, heap layout changes in the event queue)
// must leave every line of this snapshot untouched.
//
// Regenerate deliberately with:
//   AAM_UPDATE_GOLDEN=1 ./build/tests/golden_test
// and commit the diff together with an explanation of the modelled-behavior
// change that motivated it.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "algorithms/bfs.hpp"
#include "algorithms/boruvka.hpp"
#include "algorithms/coloring.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/st_connectivity.hpp"
#include "core/executor.hpp"
#include "graph/generators.hpp"
#include "graph/gstats.hpp"
#include "sim/host_pool.hpp"

namespace aam {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

struct Digest {
  std::uint64_t h = kFnvOffset;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= kFnvPrime;
    }
  }
  void mix(double d) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  }
  template <typename T>
  void mix_all(const std::vector<T>& values) {
    mix(static_cast<std::uint64_t>(values.size()));
    for (const T& v : values) mix(static_cast<std::uint64_t>(v));
  }
  void mix_all(const std::vector<double>& values) {
    mix(static_cast<std::uint64_t>(values.size()));
    for (double v : values) mix(v);
  }
};

struct RunRecord {
  double time_ns = 0;
  htm::HtmStats stats;
  std::uint64_t digest = 0;
};

struct Inputs {
  graph::Graph g;          ///< Kronecker, for the traversal algorithms
  graph::Graph wg;         ///< weighted Erdos-Renyi, for SSSP/Boruvka
  graph::Vertex root = 0;
  graph::Vertex st_t = 0;
};

Inputs make_inputs() {
  const std::uint64_t seed = 1;
  util::Rng rng(seed);
  graph::KroneckerParams params;
  params.scale = 10;
  params.edge_factor = 4;
  Inputs in;
  in.g = graph::kronecker(params, rng);
  in.root = graph::pick_nonisolated_vertex(in.g);
  for (graph::Vertex v = in.g.num_vertices(); v-- > 0;) {
    if (v != in.root && !in.g.neighbors(v).empty()) {
      in.st_t = v;
      break;
    }
  }
  util::Rng wrng(seed + 1);
  auto wedges = graph::erdos_renyi_edges(600, 0.02, wrng);
  const auto weights =
      graph::random_weights(wedges.size(), 1.0f, 100.0f, wrng);
  in.wg = graph::Graph::from_weighted_edges(600, wedges, weights, true);
  return in;
}

RunRecord run_one(htm::DesMachine& machine, const Inputs& in,
                  const std::string& algo, core::Mechanism mech) {
  RunRecord rec;
  Digest d;
  if (algo == "bfs") {
    algorithms::BfsOptions o;
    o.root = in.root;
    o.mechanism = mech;
    const auto r = algorithms::run_bfs(machine, in.g, o);
    rec.time_ns = r.total_time_ns;
    rec.stats = r.stats;
    d.mix_all(r.parent);
    d.mix(r.vertices_visited);
    d.mix(r.edges_scanned);
  } else if (algo == "pagerank") {
    algorithms::PageRankOptions o;
    o.iterations = 3;
    o.mechanism = mech;
    const auto r = algorithms::run_pagerank(machine, in.g, o);
    rec.time_ns = r.total_time_ns;
    rec.stats = r.stats;
    d.mix_all(r.rank);
  } else if (algo == "sssp") {
    algorithms::SsspOptions o;
    o.source = 0;
    o.mechanism = mech;
    const auto r = algorithms::run_sssp(machine, in.wg, o);
    rec.time_ns = r.total_time_ns;
    rec.stats = r.stats;
    d.mix_all(r.distance);
    d.mix(r.relaxations);
  } else if (algo == "coloring") {
    algorithms::ColoringOptions o;
    o.mechanism = mech;
    o.seed = 7;
    const auto r = algorithms::run_boman_coloring(machine, in.g, o);
    rec.time_ns = r.total_time_ns;
    rec.stats = r.stats;
    d.mix_all(r.color);
    d.mix(r.recolor_requests);
  } else if (algo == "st-conn") {
    algorithms::StConnOptions o;
    o.s = in.root;
    o.t = in.st_t;
    o.mechanism = mech;
    const auto r = algorithms::run_st_connectivity(machine, in.g, o);
    rec.time_ns = r.total_time_ns;
    rec.stats = r.stats;
    d.mix(static_cast<std::uint64_t>(r.connected));
    d.mix(r.vertices_colored);
  } else if (algo == "boruvka") {
    algorithms::BoruvkaOptions o;
    o.mechanism = mech;
    const auto r = algorithms::run_boruvka(machine, in.wg, o);
    rec.time_ns = r.total_time_ns;
    rec.stats = r.stats;
    d.mix(r.total_weight);
    d.mix(r.edges_in_forest);
    d.mix(r.failed_merges);
  } else {
    ADD_FAILURE() << "unknown algorithm " << algo;
  }
  rec.digest = d.h;
  return rec;
}

std::string snapshot_lines() {
  const Inputs in = make_inputs();
  struct Setup {
    const model::MachineConfig* config;
    model::HtmKind kind;
    int threads;
  };
  const std::vector<Setup> setups = {
      {&model::bgq(), model::HtmKind::kBgqShort, 16},
      {&model::has_c(), model::HtmKind::kRtm, 8},
  };
  const std::vector<std::string> algos = {"bfs",      "pagerank", "sssp",
                                          "coloring", "st-conn",  "boruvka"};
  // Each (setup, algorithm, mechanism) cell simulates on a machine of its
  // own, so the sweep runs as shards on the parallel DES backend: cells
  // execute across sim::host_threads() host workers (AAM_HOST_THREADS
  // sweeps it without a rebuild), each line lands in its cell's slot, and
  // the snapshot is assembled in cell order. The whole point of the
  // snapshot applies to the backend itself: every line must be
  // bit-identical at every host-thread count.
  struct Cell {
    const Setup* setup;
    const std::string* algo;
    core::Mechanism mech;
  };
  std::vector<Cell> cells;
  for (const Setup& setup : setups) {
    for (const std::string& algo : algos) {
      for (const core::Mechanism mech : core::all_mechanisms()) {
        cells.push_back({&setup, &algo, mech});
      }
    }
  }
  std::vector<std::string> lines(cells.size());
  sim::parallel_shards(cells.size(), [&](sim::ShardId cell_id) {
    const Cell& cell = cells[cell_id];
    mem::SimHeap heap((std::size_t{1} << 20) * 8);
    htm::DesMachine machine(*cell.setup->config, cell.setup->kind,
                            cell.setup->threads, heap, /*seed=*/1);
    machine.bind_shard(cell_id);
    const RunRecord rec = run_one(machine, in, *cell.algo, cell.mech);
    char line[256];
    // %a renders the simulated time exactly; any bit flip shows up.
    std::snprintf(line, sizeof(line),
                  "%s %s %s time=%a commits=%llu serialized=%llu "
                  "aborts_conflict=%llu aborts_capacity=%llu "
                  "aborts_other=%llu cas=%llu acc=%llu digest=%016llx\n",
                  cell.setup->config->name.c_str(), cell.algo->c_str(),
                  core::to_string(cell.mech), rec.time_ns,
                  static_cast<unsigned long long>(rec.stats.committed),
                  static_cast<unsigned long long>(rec.stats.serialized),
                  static_cast<unsigned long long>(rec.stats.aborts_conflict),
                  static_cast<unsigned long long>(rec.stats.aborts_capacity),
                  static_cast<unsigned long long>(rec.stats.aborts_other),
                  static_cast<unsigned long long>(rec.stats.atomic_cas),
                  static_cast<unsigned long long>(rec.stats.atomic_acc),
                  static_cast<unsigned long long>(rec.digest));
    lines[cell_id] = line;
  });
  std::ostringstream out;
  for (const std::string& line : lines) out << line;
  return out.str();
}

TEST(GoldenSnapshot, SimulatedSweepBitIdentical) {
  const std::string actual = snapshot_lines();
  const std::string path = AAM_GOLDEN_SNAPSHOT;
  if (const char* update = std::getenv("AAM_UPDATE_GOLDEN");
      update != nullptr && std::string(update) == "1") {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "golden snapshot regenerated at " << path;
  }
  std::ifstream f(path);
  ASSERT_TRUE(f.good())
      << "missing golden snapshot " << path
      << " — regenerate with AAM_UPDATE_GOLDEN=1 ./golden_test";
  std::stringstream expected;
  expected << f.rdbuf();
  // Line-by-line compare for readable failures.
  std::istringstream want(expected.str()), got(actual);
  std::string wline, gline;
  int lineno = 0;
  while (std::getline(want, wline)) {
    ++lineno;
    ASSERT_TRUE(std::getline(got, gline))
        << "snapshot truncated at line " << lineno << "; expected: " << wline;
    EXPECT_EQ(wline, gline) << "snapshot mismatch at line " << lineno;
  }
  EXPECT_FALSE(std::getline(got, gline))
      << "snapshot has extra lines, first: " << gline;
}

}  // namespace
}  // namespace aam
