// --mechanism=auto executor coverage: selection parsing (including the
// exit-2 flag diagnostic), the descent ladder, bit-identity of a pinned
// policy against the equivalent fixed run, telemetry for prediction misses
// and capacity clamps, and the check-layer capacity-guard audit.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algorithms/pagerank.hpp"
#include "check/check.hpp"
#include "core/auto_executor.hpp"
#include "core/executor.hpp"
#include "graph/generators.hpp"
#include "htm/des_engine.hpp"
#include "mem/sim_heap.hpp"
#include "util/cli.hpp"

namespace aam {
namespace {

TEST(DescendMechanism, LadderIsHtmStmSerial) {
  using core::Mechanism;
  EXPECT_EQ(core::descend_mechanism(Mechanism::kHtmCoarsened),
            Mechanism::kStm);
  EXPECT_EQ(core::descend_mechanism(Mechanism::kStm),
            Mechanism::kSerialLock);
  // Non-speculative rungs are terminal.
  EXPECT_EQ(core::descend_mechanism(Mechanism::kSerialLock),
            Mechanism::kSerialLock);
  EXPECT_EQ(core::descend_mechanism(Mechanism::kAtomicOps),
            Mechanism::kAtomicOps);
  EXPECT_EQ(core::descend_mechanism(Mechanism::kFineLocks),
            Mechanism::kFineLocks);
}

TEST(MechanismSelection, ParsesFixedNamesAndAuto) {
  const auto fixed = core::parse_mechanism_selection("htm");
  ASSERT_TRUE(fixed.has_value());
  ASSERT_FALSE(fixed->is_auto());
  EXPECT_EQ(*fixed->fixed, core::Mechanism::kHtmCoarsened);

  const auto aut = core::parse_mechanism_selection("auto");
  ASSERT_TRUE(aut.has_value());
  EXPECT_TRUE(aut->is_auto());

  EXPECT_FALSE(core::parse_mechanism_selection("bogus").has_value());
  EXPECT_FALSE(core::parse_mechanism_selection("").has_value());
}

TEST(MechanismSelection, ErrorDiagnosticNamesFlagValueAndChoices) {
  const std::string msg = core::mechanism_selection_error("mechanism", "nope");
  EXPECT_NE(msg.find("--mechanism=nope"), std::string::npos) << msg;
  EXPECT_NE(msg.find("unknown mechanism"), std::string::npos) << msg;
  EXPECT_NE(msg.find("auto"), std::string::npos) << msg;
  EXPECT_NE(msg.find("serial-lock"), std::string::npos) << msg;
  // One line, matching the --fault / --check flag-error convention.
  EXPECT_EQ(msg.find('\n'), std::string::npos) << msg;
}

TEST(MechanismSelectionDeathTest, MalformedFlagExitsTwo) {
  const char* argv[] = {"prog", "--mechanism=bogus"};
  util::Cli cli(2, const_cast<char**>(argv));
  EXPECT_EXIT(core::mechanism_selection_flag(cli, "mechanism", "htm"),
              ::testing::ExitedWithCode(2), "unknown mechanism");
}

// ---------------------------------------------------------------------------
// Routing behavior on a real workload: PageRank on a small Kronecker graph.

graph::Graph make_graph() {
  util::Rng rng(1);
  graph::KroneckerParams params;
  params.scale = 9;
  params.edge_factor = 4;
  return graph::kronecker(params, rng);
}

algorithms::PageRankResult run_pagerank(
    const graph::Graph& g, core::Mechanism mech,
    const core::AutoPolicy* policy, core::ExecutorDecorator* decorator) {
  mem::SimHeap heap((std::size_t{1} << 20) * 8);
  htm::DesMachine machine(model::bgq(), model::HtmKind::kBgqShort, 16, heap,
                          /*seed=*/1);
  algorithms::PageRankOptions o;
  o.iterations = 3;
  o.mechanism = mech;
  o.auto_policy = policy;
  o.decorator = decorator;
  return algorithms::run_pagerank(machine, g, o);
}

core::AutoPolicy uniform_policy(core::Mechanism mech) {
  core::AutoPolicy policy;
  for (auto& plan : policy.plans) plan.recommended = mech;
  return policy;
}

TEST(AutoExecutor, PinnedPolicyReproducesFixedRunBitForBit) {
  const graph::Graph g = make_graph();
  const auto fixed =
      run_pagerank(g, core::Mechanism::kSerialLock, nullptr, nullptr);
  const core::AutoPolicy policy = uniform_policy(core::Mechanism::kSerialLock);
  const auto routed =
      run_pagerank(g, core::Mechanism::kHtmCoarsened, &policy, nullptr);
  // Routing is host-side only: a policy that always resolves to one
  // mechanism charges exactly that fixed run's simulated costs.
  EXPECT_EQ(routed.total_time_ns, fixed.total_time_ns);
  EXPECT_EQ(routed.stats.committed, fixed.stats.committed);
  EXPECT_EQ(routed.stats.atomic_cas, fixed.stats.atomic_cas);
  ASSERT_EQ(routed.rank.size(), fixed.rank.size());
  EXPECT_EQ(routed.rank, fixed.rank);
  EXPECT_GT(policy.telemetry.batches, 0u);
  EXPECT_EQ(policy.telemetry.descents, 0u);
  EXPECT_EQ(policy.telemetry.prediction_miss, 0u);
  EXPECT_EQ(policy.telemetry.capacity_clamps, 0u);
}

TEST(AutoExecutor, AbortBandMissDescendsTheLadder) {
  const graph::Graph g = make_graph();
  // Plan HTM for the push operator with a zero-tolerance abort band: the
  // first validation window containing any abort is a prediction miss.
  core::AutoPolicy policy = uniform_policy(core::Mechanism::kSerialLock);
  policy.plan(core::OperatorId::kPagerankPush).recommended =
      core::Mechanism::kHtmCoarsened;
  policy.plan(core::OperatorId::kPagerankPush).abort_band = 0.0;
  const auto routed =
      run_pagerank(g, core::Mechanism::kHtmCoarsened, &policy, nullptr);
  ASSERT_FALSE(routed.rank.empty());
  // PageRank pushes on BG/Q at 16 threads abort constantly; the run must
  // observe at least one miss and descend at least one rung.
  EXPECT_GE(policy.telemetry.prediction_miss, 1u);
  EXPECT_GE(policy.telemetry.descents, 1u);
  EXPECT_EQ(policy.telemetry.capacity_clamps, 0u);
}

TEST(AutoExecutor, CapacityClampReroutesOversizedBatches) {
  const graph::Graph g = make_graph();
  // c_safe = 1 with the default batch of 16: every push batch statically
  // exceeds the bound, so the executor reroutes it without ever starting a
  // transaction (no outcomes -> no descents).
  core::AutoPolicy policy = uniform_policy(core::Mechanism::kSerialLock);
  policy.plan(core::OperatorId::kPagerankPush).recommended =
      core::Mechanism::kHtmCoarsened;
  policy.plan(core::OperatorId::kPagerankPush).htm_c_safe = 1;
  const auto routed =
      run_pagerank(g, core::Mechanism::kHtmCoarsened, &policy, nullptr);
  ASSERT_FALSE(routed.rank.empty());
  EXPECT_GT(policy.telemetry.capacity_clamps, 0u);
  EXPECT_EQ(policy.telemetry.descents, 0u);
  EXPECT_EQ(routed.stats.committed, 0u) << "a clamped batch still ran HTM";
}

// ---------------------------------------------------------------------------
// Check-layer audit: a fixed HTM run past the static c_safe bound trips
// kCapacityGuard; the auto executor with the same policy clamps instead.

TEST(CapacityGuard, FixedHtmPastBoundTripsAudit) {
  const graph::Graph g = make_graph();
  core::AutoPolicy policy;
  policy.plan(core::OperatorId::kPagerankPush).htm_c_safe = 1;

  mem::SimHeap heap((std::size_t{1} << 20) * 8);
  htm::DesMachine machine(model::bgq(), model::HtmKind::kBgqShort, 16, heap,
                          /*seed=*/1);
  check::CheckConfig cfg;
  cfg.footprint = true;
  check::Checker checker(machine, cfg);
  checker.set_capacity_policy(&policy);
  algorithms::PageRankOptions o;
  o.iterations = 3;
  o.mechanism = core::Mechanism::kHtmCoarsened;
  o.decorator = &checker;
  algorithms::run_pagerank(machine, g, o);

  EXPECT_FALSE(checker.passed());
  bool saw_guard = false;
  for (const auto& v : checker.violations()) {
    if (v.kind == check::Violation::Kind::kCapacityGuard) saw_guard = true;
  }
  EXPECT_TRUE(saw_guard) << "no kCapacityGuard violation recorded";
}

TEST(CapacityGuard, AutoClampsAndStaysClean) {
  const graph::Graph g = make_graph();
  core::AutoPolicy policy = uniform_policy(core::Mechanism::kSerialLock);
  policy.plan(core::OperatorId::kPagerankPush).recommended =
      core::Mechanism::kHtmCoarsened;
  policy.plan(core::OperatorId::kPagerankPush).htm_c_safe = 1;

  mem::SimHeap heap((std::size_t{1} << 20) * 8);
  htm::DesMachine machine(model::bgq(), model::HtmKind::kBgqShort, 16, heap,
                          /*seed=*/1);
  check::CheckConfig cfg;
  cfg.footprint = true;
  check::Checker checker(machine, cfg);
  checker.set_capacity_policy(&policy);
  algorithms::PageRankOptions o;
  o.iterations = 3;
  o.mechanism = core::Mechanism::kHtmCoarsened;
  o.auto_policy = &policy;
  o.decorator = &checker;
  algorithms::run_pagerank(machine, g, o);

  // Auto never lets an oversized batch reach HTM, so the audit that
  // condemns the fixed run above has nothing to flag here.
  EXPECT_TRUE(checker.passed()) << "auto run tripped the capacity guard";
  EXPECT_GT(policy.telemetry.capacity_clamps, 0u);
}

}  // namespace
}  // namespace aam
