#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "algorithms/bfs.hpp"
#include "fault/fault.hpp"
#include "graph/generators.hpp"
#include "graph/gstats.hpp"
#include "net/cluster.hpp"

namespace aam::fault {
namespace {

using model::HtmKind;

// ----------------------------------------------------------------- parsing

TEST(FaultPlanParse, NoneAndEmptyAreInert) {
  const auto& profile = model::has_c().fault;
  FaultPlan plan;
  EXPECT_FALSE(try_parse("none", profile, plan).has_value());
  EXPECT_FALSE(plan.any());
  EXPECT_FALSE(try_parse("", profile, plan).has_value());
  EXPECT_FALSE(plan.any());
}

TEST(FaultPlanParse, ScenarioExpandsMachineProfile) {
  const auto& profile = model::has_c().fault;
  const FaultPlan plan = parse("abort-storm", profile);
  EXPECT_DOUBLE_EQ(plan.storm_rate_per_us, profile.storm_rate_per_us);
  EXPECT_DOUBLE_EQ(plan.storm_period_ns, profile.storm_period_ns);
  EXPECT_DOUBLE_EQ(plan.storm_duty, profile.storm_duty);
  EXPECT_TRUE(plan.storm_active());
  EXPECT_FALSE(plan.net_active());
  EXPECT_FALSE(plan.slowdown_active());
}

TEST(FaultPlanParse, OverridesComposeLeftToRight) {
  const auto& profile = model::bgq().fault;
  const FaultPlan plan =
      parse("lossy-net,net.drop=0.2,net.rto=4000", profile);
  EXPECT_DOUBLE_EQ(plan.net_drop, 0.2);
  EXPECT_DOUBLE_EQ(plan.net_rto_ns, 4000.0);
  // Untouched fields keep the scenario's (profile) values.
  EXPECT_DOUBLE_EQ(plan.net_duplicate, profile.net_duplicate);
  EXPECT_DOUBLE_EQ(plan.net_reorder, profile.net_reorder);
  // A later token overrides an earlier one.
  const FaultPlan plan2 = parse("net.drop=0.5,net.drop=0.01", profile);
  EXPECT_DOUBLE_EQ(plan2.net_drop, 0.01);
}

TEST(FaultPlanParse, RejectsMalformedSpecs) {
  const auto& profile = model::has_c().fault;
  FaultPlan plan;
  auto err = try_parse("packet-storm", profile, plan);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("unknown fault scenario"), std::string::npos);
  err = try_parse("net.dorp=0.5", profile, plan);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("unknown fault key"), std::string::npos);
  err = try_parse("net.drop=lots", profile, plan);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("bad numeric value"), std::string::npos);
  err = try_parse("@/nonexistent/fault.spec", profile, plan);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("cannot read"), std::string::npos);
}

TEST(FaultPlanParse, SpecFileStripsCommentsAndJoinsLines) {
  const std::string path = testing::TempDir() + "fault_spec.txt";
  {
    std::ofstream out(path);
    out << "# injected into CI via --fault=@" << path << "\n"
        << "abort-storm  # the canned scenario\n"
        << "storm.rate=2.5\n"
        << "\n"
        << "straggler\n";
  }
  const auto& profile = model::has_c().fault;
  const FaultPlan from_file = parse("@" + path, profile);
  const FaultPlan inline_spec =
      parse("abort-storm,storm.rate=2.5,straggler", profile);
  EXPECT_DOUBLE_EQ(from_file.storm_rate_per_us, 2.5);
  EXPECT_DOUBLE_EQ(from_file.storm_rate_per_us,
                   inline_spec.storm_rate_per_us);
  EXPECT_DOUBLE_EQ(from_file.straggler_fraction,
                   inline_spec.straggler_fraction);
  EXPECT_TRUE(from_file.slowdown_active());
}

TEST(FaultPlanParse, EveryCannedScenarioParses) {
  for (const auto* config : {&model::bgq(), &model::has_c(), &model::has_p()}) {
    for (const std::string& name : canned_scenarios()) {
      FaultPlan plan;
      EXPECT_FALSE(try_parse(name, config->fault, plan).has_value())
          << config->name << " " << name;
      EXPECT_EQ(plan.any(), name != "none") << config->name << " " << name;
    }
  }
}

// ------------------------------------------------------- engine-side faults

// A worker that stages `count` transactions, each running `body`.
class RepeatTxnWorker : public htm::Worker {
 public:
  RepeatTxnWorker(int count, htm::TxnBody body, htm::TxnDone done = {})
      : remaining_(count), body_(std::move(body)), done_(std::move(done)) {}

  bool next(htm::ThreadCtx& ctx) override {
    if (remaining_ == 0) return false;
    --remaining_;
    ctx.stage_transaction(body_, done_);
    return true;
  }

 private:
  int remaining_;
  htm::TxnBody body_;
  htm::TxnDone done_;
};

/// Has-C with the model's own stochastic abort sources silenced, so every
/// observed kOther abort must come from the injector (exact accounting).
model::MachineConfig quiet_has_c() {
  model::MachineConfig cfg = model::has_c();
  auto& rtm = cfg.htm_costs_[static_cast<int>(HtmKind::kRtm)];
  rtm.other_abort_per_us = 0;
  rtm.smt_evict_per_line = 0;
  return cfg;
}

TEST(FaultInjector, AbortStormAccountingIsExactPerThread) {
  const model::MachineConfig cfg = quiet_has_c();
  const int threads = 4;
  mem::SimHeap heap(1 << 20);
  htm::DesMachine machine(cfg, HtmKind::kRtm, threads, heap, /*seed=*/3);
  auto counters = heap.alloc<std::uint64_t>(threads * 8);

  // Continuous storm, rate high enough that injections are plentiful.
  const FaultPlan plan =
      parse("abort-storm,storm.period=0,storm.rate=3", cfg.fault);
  FaultInjector injector(plan, /*seed=*/3, threads);
  injector.attach(machine);

  const int per_thread = 300;
  std::vector<std::unique_ptr<RepeatTxnWorker>> workers;
  for (int t = 0; t < threads; ++t) {
    auto* slot = &counters[static_cast<std::size_t>(t) * 8];
    workers.push_back(std::make_unique<RepeatTxnWorker>(
        per_thread, [slot](htm::Txn& tx) {
          tx.fetch_add(*slot, std::uint64_t{1});
        }));
    machine.set_worker(static_cast<std::uint32_t>(t), workers.back().get());
  }
  machine.run();

  // Correctness survives the storm.
  for (int t = 0; t < threads; ++t) {
    EXPECT_EQ(counters[static_cast<std::size_t>(t) * 8],
              static_cast<std::uint64_t>(per_thread));
  }
  // Exactness: injected == observed, in aggregate and per thread.
  const auto& injected = injector.injected();
  EXPECT_GT(injected.other_aborts, 0u);
  EXPECT_EQ(machine.stats().aborts_other, injected.other_aborts);
  std::uint64_t sum = 0;
  for (int t = 0; t < threads; ++t) {
    const auto tid = static_cast<std::uint32_t>(t);
    EXPECT_EQ(machine.thread_stats(tid).aborts_other,
              injected.other_aborts_by_thread[tid])
        << "thread " << t;
    sum += injected.other_aborts_by_thread[tid];
  }
  EXPECT_EQ(sum, injected.other_aborts);
}

TEST(FaultInjector, SameSeedSameScheduleBitIdentical) {
  util::Rng grng(9);
  graph::KroneckerParams params;
  params.scale = 8;
  params.edge_factor = 4;
  const graph::Graph g = graph::kronecker(params, grng);

  struct Run {
    double time_ns;
    htm::HtmStats stats;
    std::vector<graph::Vertex> parent;
    std::uint64_t injected;
  };
  auto run_once = [&] {
    mem::SimHeap heap(1 << 22);
    htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 8, heap,
                            /*seed=*/5);
    const FaultPlan plan = parse("abort-storm,straggler",
                                 machine.config().fault);
    FaultInjector injector(plan, /*seed=*/5, machine.num_threads());
    injector.attach(machine);
    algorithms::BfsOptions o;
    o.root = graph::pick_nonisolated_vertex(g);
    const auto r = algorithms::run_bfs(machine, g, o);
    return Run{r.total_time_ns, r.stats, r.parent,
               injector.injected().other_aborts};
  };
  const Run a = run_once();
  const Run b = run_once();
  // Same seed + same plan => bit-identical simulated time, stats, faults,
  // and results.
  EXPECT_EQ(a.time_ns, b.time_ns);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_GT(a.injected, 0u);
  EXPECT_EQ(a.stats.aborts_other, b.stats.aborts_other);
  EXPECT_EQ(a.stats.committed, b.stats.committed);
  EXPECT_EQ(a.stats.serialized, b.stats.serialized);
  EXPECT_EQ(a.parent, b.parent);
}

TEST(FaultInjector, StragglersSlowTheMakespan) {
  const int threads = 8;
  auto run_with = [&](const std::string& spec) {
    mem::SimHeap heap(1 << 20);
    htm::DesMachine machine(model::has_c(), HtmKind::kRtm, threads, heap);
    auto counters = heap.alloc<std::uint64_t>(threads * 8);
    const FaultPlan plan = parse(spec, machine.config().fault);
    FaultInjector injector(plan, /*seed=*/1, threads);
    injector.attach(machine);
    std::vector<std::unique_ptr<RepeatTxnWorker>> workers;
    for (int t = 0; t < threads; ++t) {
      auto* slot = &counters[static_cast<std::size_t>(t) * 8];
      workers.push_back(std::make_unique<RepeatTxnWorker>(
          200, [slot](htm::Txn& tx) {
            tx.fetch_add(*slot, std::uint64_t{1});
          }));
      machine.set_worker(static_cast<std::uint32_t>(t),
                         workers.back().get());
    }
    machine.run();
    return machine.makespan();
  };
  // Continuous windows (period=0) so the slowdown always applies.
  const double slow = run_with(
      "straggler,straggler.period=0,straggler.factor=8,"
      "straggler.fraction=0.5");
  const double fast = run_with("none");
  EXPECT_GT(slow, fast * 2);

  // The straggler subset is deterministic and has ceil(fraction*T) members.
  const FaultPlan plan = parse("straggler,straggler.fraction=0.5",
                               model::has_c().fault);
  FaultInjector injector(plan, /*seed=*/1, threads);
  int stragglers = 0;
  for (int t = 0; t < threads; ++t) {
    if (injector.is_straggler(static_cast<std::uint32_t>(t))) ++stragglers;
  }
  EXPECT_EQ(stragglers, 4);
}

// ------------------------------------------------------ network-side faults

class PollWorker : public htm::Worker {
 public:
  explicit PollWorker(net::Cluster& cluster) : cluster_(cluster) {}
  bool next(htm::ThreadCtx& ctx) override {
    return cluster_.poll_and_handle(ctx);
  }

 private:
  net::Cluster& cluster_;
};

class SendOnceWorker : public htm::Worker {
 public:
  SendOnceWorker(net::Cluster& cluster, std::function<void(htm::ThreadCtx&)> fn)
      : cluster_(cluster), fn_(std::move(fn)) {}
  bool next(htm::ThreadCtx& ctx) override {
    if (fn_) {
      auto fn = std::move(fn_);
      fn_ = nullptr;
      fn(ctx);
      return true;
    }
    return cluster_.poll_and_handle(ctx);
  }

 private:
  net::Cluster& cluster_;
  std::function<void(htm::ThreadCtx&)> fn_;
};

TEST(FaultInjector, LossyNetworkDeliversExactlyOnce) {
  mem::SimHeap heap(1 << 20);
  net::Cluster cluster(model::has_p(), HtmKind::kRtm, 2, 1, heap, /*seed=*/2);
  const FaultPlan plan = parse(
      "lossy-net,net.drop=0.3,net.dup=0.25,net.reorder=0.5",
      cluster.config().fault);
  FaultInjector injector(plan, /*seed=*/2, cluster.machine().num_threads(),
                         cluster.threads_per_node());
  injector.attach(cluster);

  const int n = 200;
  std::uint64_t delivered = 0;
  std::uint64_t arg_sum = 0;
  const auto h = cluster.register_handler(
      [&](htm::ThreadCtx&, const net::Message& msg) {
        ++delivered;
        arg_sum += msg.arg0;
      });
  SendOnceWorker sender(cluster, [&](htm::ThreadCtx& ctx) {
    for (int i = 0; i < n; ++i) {
      cluster.send(ctx, 1, h, static_cast<std::uint64_t>(i));
    }
  });
  PollWorker receiver(cluster);
  cluster.machine().set_worker(0, &sender);
  cluster.machine().set_worker(1, &receiver);
  cluster.machine().run();

  // Exactly-once delivery despite drops, duplicates, and reordering.
  EXPECT_EQ(delivered, static_cast<std::uint64_t>(n));
  EXPECT_EQ(arg_sum, static_cast<std::uint64_t>(n) * (n - 1) / 2);
  EXPECT_EQ(cluster.in_flight(), 0u);

  // Exact accounting: the cluster observed precisely what was injected,
  // every logical send was eventually acknowledged, and the loss rate
  // forced real retransmissions and dedup discards.
  const auto& s = cluster.stats();
  const auto& injected = injector.injected();
  EXPECT_EQ(s.messages_sent, static_cast<std::uint64_t>(n));
  EXPECT_EQ(s.dropped, injected.net_dropped);
  EXPECT_EQ(s.duplicated, injected.net_duplicated);
  EXPECT_GT(s.dropped, 0u);
  EXPECT_GT(s.duplicated, 0u);
  EXPECT_GT(s.retransmitted, 0u);
  EXPECT_GT(s.dedup_discarded, 0u);
  EXPECT_EQ(s.acked, s.messages_sent);
}

TEST(FaultInjector, NetFaultsAreSeedDeterministic) {
  auto run_once = [] {
    mem::SimHeap heap(1 << 20);
    net::Cluster cluster(model::bgq(), HtmKind::kBgqShort, 2, 1, heap,
                         /*seed=*/7);
    const FaultPlan plan = parse("lossy-net", cluster.config().fault);
    FaultInjector injector(plan, /*seed=*/7,
                           cluster.machine().num_threads(),
                           cluster.threads_per_node());
    injector.attach(cluster);
    std::uint64_t delivered = 0;
    const auto h = cluster.register_handler(
        [&](htm::ThreadCtx&, const net::Message&) { ++delivered; });
    SendOnceWorker sender(cluster, [&](htm::ThreadCtx& ctx) {
      for (int i = 0; i < 100; ++i) cluster.send(ctx, 1, h, 0);
    });
    PollWorker receiver(cluster);
    cluster.machine().set_worker(0, &sender);
    cluster.machine().set_worker(1, &receiver);
    cluster.machine().run();
    EXPECT_EQ(delivered, 100u);
    return std::tuple(cluster.machine().makespan(),
                      cluster.stats().dropped, cluster.stats().duplicated,
                      cluster.stats().retransmitted,
                      cluster.stats().dedup_discarded);
  };
  EXPECT_EQ(run_once(), run_once());
}

// -------------------------------------------------- hardening: self-healing

/// An injector-shaped hook that aborts every speculative attempt: the
/// worst-case storm, for exercising the livelock/watchdog ladders.
class AlwaysAbort final : public htm::FaultHook {
 public:
  bool inject_other_abort(std::uint32_t, double, double,
                          double& frac_out) override {
    frac_out = 0.5;
    return true;
  }
  double slowdown(std::uint32_t, double) override { return 1.0; }
};

/// Has-C/RTM with the per-activity retry cap effectively disabled, so only
/// the resilience layer can rescue a livelocked thread.
model::MachineConfig uncapped_has_c() {
  model::MachineConfig cfg = quiet_has_c();
  auto& rtm = cfg.htm_costs_[static_cast<int>(HtmKind::kRtm)];
  rtm.max_retries = 1 << 28;
  return cfg;
}

TEST(Resilience, WatchdogTurnsLivelockIntoStructuredDiagnostic) {
  // Negative test: retry cap disabled AND livelock escalation disabled —
  // the only remaining defense is the progress watchdog, which must turn
  // the endless abort loop into a diagnostic instead of hanging.
  const model::MachineConfig cfg = uncapped_has_c();
  mem::SimHeap heap(1 << 16);
  htm::DesMachine machine(cfg, HtmKind::kRtm, 1, heap);
  machine.set_resilience({.livelock_watermark = 0, .watchdog_ns = 1e5});
  AlwaysAbort storm;
  machine.set_fault_hook(&storm);
  auto* x = heap.alloc_one<std::uint64_t>(0);
  RepeatTxnWorker w(1, [x](htm::Txn& tx) {
    tx.fetch_add(*x, std::uint64_t{1});
  });
  machine.set_worker(0, &w);
  try {
    machine.run();
    FAIL() << "watchdog did not fire";
  } catch (const htm::StallError& e) {
    EXPECT_EQ(e.diagnostic.inflight_txns, 1);
    EXPECT_EQ(e.diagnostic.worst_tid, 0u);
    EXPECT_GT(e.diagnostic.worst_streak, 0);
    EXPECT_GT(e.diagnostic.now_ns,
              e.diagnostic.last_progress_ns + 1e5 - 1);
    // The rendered form carries the numbers a bug report needs.
    const std::string msg = e.what();
    EXPECT_NE(msg.find("stall"), std::string::npos);
    EXPECT_NE(msg.find("consecutive aborts"), std::string::npos);
  }
}

TEST(Resilience, LivelockWatermarkEscalatesToIrrevocable) {
  // Positive test: same unbounded storm, but the livelock watermark is
  // armed — every activity must complete on the irrevocable path with an
  // `escalated` outcome (the AdaptiveBatch cooldown signal), and the run
  // must finish without tripping the watchdog.
  const model::MachineConfig cfg = uncapped_has_c();
  const int watermark = 6;
  mem::SimHeap heap(1 << 16);
  htm::DesMachine machine(cfg, HtmKind::kRtm, 1, heap);
  machine.set_resilience(
      {.livelock_watermark = watermark, .watchdog_ns = 1e9});
  AlwaysAbort storm;
  machine.set_fault_hook(&storm);
  auto* x = heap.alloc_one<std::uint64_t>(0);
  const int txns = 3;
  std::vector<htm::TxnOutcome> outcomes;
  RepeatTxnWorker w(
      txns, [x](htm::Txn& tx) { tx.fetch_add(*x, std::uint64_t{1}); },
      [&](htm::ThreadCtx&, const htm::TxnOutcome& o) {
        outcomes.push_back(o);
      });
  machine.set_worker(0, &w);
  machine.run();

  EXPECT_EQ(*x, static_cast<std::uint64_t>(txns));
  ASSERT_EQ(outcomes.size(), static_cast<std::size_t>(txns));
  for (const auto& o : outcomes) {
    EXPECT_TRUE(o.serialized);
    EXPECT_TRUE(o.escalated);
    // The streak resets on every completion, so each activity pays
    // exactly `watermark` aborts before escalating.
    EXPECT_EQ(o.aborts, watermark);
  }
  const auto s = machine.stats();
  EXPECT_EQ(s.committed, 0u);
  EXPECT_EQ(s.serialized, static_cast<std::uint64_t>(txns));
  EXPECT_EQ(s.aborts_other, static_cast<std::uint64_t>(txns * watermark));
}

}  // namespace
}  // namespace aam::fault
