// Tests for the §2.3 atomic-operation vocabulary on real std::atomics.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "atomics/ops.hpp"

namespace aam::atomics {
namespace {

TEST(Ops, AccumulateAppliesOp) {
  std::atomic<int> x{10};
  accumulate<int>(x, 5, [](int a, int b) { return a + b; });
  EXPECT_EQ(x.load(), 15);
  accumulate<int>(x, 4, [](int a, int b) { return a * b; });
  EXPECT_EQ(x.load(), 60);
}

TEST(Ops, FetchAndOpReturnsPrevious) {
  std::atomic<int> x{7};
  const int prev = fetch_and_op<int>(x, 3, [](int a, int b) { return a - b; });
  EXPECT_EQ(prev, 7);
  EXPECT_EQ(x.load(), 4);
}

TEST(Ops, CompareAndSwapSemantics) {
  // The paper's exact §2.3 signature: result out-parameter.
  std::atomic<std::uint64_t> x{5};
  bool result = false;
  compare_and_swap<std::uint64_t>(x, 5, 9, &result);
  EXPECT_TRUE(result);
  EXPECT_EQ(x.load(), 9u);
  compare_and_swap<std::uint64_t>(x, 5, 11, &result);
  EXPECT_FALSE(result);
  EXPECT_EQ(x.load(), 9u);
}

TEST(Ops, FetchMinOnlyLowers) {
  std::atomic<std::uint32_t> d{100};
  EXPECT_TRUE(fetch_min<std::uint32_t>(d, 50));
  EXPECT_FALSE(fetch_min<std::uint32_t>(d, 70));
  EXPECT_FALSE(fetch_min<std::uint32_t>(d, 50));
  EXPECT_EQ(d.load(), 50u);
}

TEST(Ops, ConcurrentFetchMinFindsGlobalMinimum) {
  std::atomic<std::uint64_t> d{1u << 30};
  std::vector<std::thread> pool;
  for (int t = 0; t < 8; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < 10000; ++i) {
        fetch_min<std::uint64_t>(
            d, static_cast<std::uint64_t>(1000 + (i * 7 + t) % 9000));
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(d.load(), 1000u);
}

TEST(Ops, FetchAddDoubleLosesNothing) {
  std::atomic<double> rank{0.0};
  std::vector<std::thread> pool;
  for (int t = 0; t < 8; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) fetch_add_double(rank, 0.5);
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_DOUBLE_EQ(rank.load(), 8 * 10000 * 0.5);
}

TEST(Ops, ConcurrentAccumulateLosesNothing) {
  std::atomic<std::uint64_t> sum{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < 8; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        accumulate<std::uint64_t>(sum, 1, [](auto a, auto b) { return a + b; });
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(sum.load(), 160000u);
}

TEST(SpinLock, MutualExclusion) {
  SpinLock lock;
  std::uint64_t counter = 0;  // protected by `lock`
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < 50000; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(counter, 200000u);
}

TEST(SpinLock, TryLock) {
  SpinLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

}  // namespace
}  // namespace aam::atomics
