// Parallel DES backend: shard identity, shard-owned event queues, the
// host worker pool, the conservative-lookahead gate, and the windowed
// co-simulation driver.
//
// The determinism tests are the backend's contract: simulated results —
// traces, clocks, event counts — must be bit-identical at every
// host-thread count, because parallelism only changes which host thread
// executes an independent shard (or which wall-clock instant a window
// step runs at), never the simulated schedule.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <set>
#include <stdexcept>
#include <vector>

#include "htm/des_engine.hpp"
#include "mem/sim_heap.hpp"
#include "model/machines.hpp"
#include "sim/cosim.hpp"
#include "sim/event_queue.hpp"
#include "sim/host_pool.hpp"
#include "sim/shard.hpp"
#include "util/rng.hpp"

namespace aam {
namespace {

// ---------------------------------------------------------------------------
// Shard identity and seeds
// ---------------------------------------------------------------------------

TEST(Shard, GuardInstallsAndRestoresIdentity) {
  EXPECT_EQ(sim::current_shard(), sim::kNoShard);
  {
    sim::ShardGuard outer(3);
    EXPECT_EQ(sim::current_shard(), 3u);
    {
      sim::ShardGuard inner(7);
      EXPECT_EQ(sim::current_shard(), 7u);
    }
    EXPECT_EQ(sim::current_shard(), 3u);
  }
  EXPECT_EQ(sim::current_shard(), sim::kNoShard);
}

TEST(Shard, SeedsAreDeterministicAndDecorrelated) {
  // Pure function of (master, shard).
  EXPECT_EQ(sim::shard_seed(1, 0), sim::shard_seed(1, 0));
  // Distinct shards and distinct masters give distinct streams; shard 0
  // does not degenerate to the master seed.
  std::set<std::uint64_t> seen;
  for (std::uint64_t master : {1ull, 2ull, 42ull}) {
    for (sim::ShardId s = 0; s < 16; ++s) {
      seen.insert(sim::shard_seed(master, s));
      EXPECT_NE(sim::shard_seed(master, s), master);
    }
  }
  EXPECT_EQ(seen.size(), 3u * 16u);
}

// ---------------------------------------------------------------------------
// EventQueue shard ownership
// ---------------------------------------------------------------------------

TEST(EventQueueShard, UnboundQueueWorksFromAnyContext) {
  sim::EventQueue q;
  q.push(1.0, 0, 0);
  {
    sim::ShardGuard guard(5);
    q.push(2.0, 0, 0);
    EXPECT_EQ(q.pop().time, 1.0);
  }
  EXPECT_EQ(q.pop().time, 2.0);
}

TEST(EventQueueShard, BoundQueueAcceptsOwnerAccess) {
  sim::EventQueue q;
  q.bind_shard(4);
  EXPECT_EQ(q.bound_shard(), 4u);
  sim::ShardGuard guard(4);
  q.push(1.0, 0, 0);
  EXPECT_EQ(q.pop().seq, 0u);
  // Re-binding to the same shard is idempotent.
  q.bind_shard(4);
}

TEST(EventQueueShardDeathTest, ForeignPushDies) {
  sim::EventQueue q;
  q.bind_shard(2);
  sim::ShardGuard guard(3);
  EXPECT_DEATH(q.push(1.0, 0, 0), "foreign shard");
}

TEST(EventQueueShardDeathTest, ForeignPopDies) {
  sim::EventQueue q;
  {
    sim::ShardGuard guard(2);
    q.bind_shard(2);
    q.push(1.0, 0, 0);
  }
  sim::ShardGuard guard(9);
  EXPECT_DEATH(q.pop(), "foreign shard");
}

TEST(EventQueueShardDeathTest, RebindToDifferentShardDies) {
  sim::EventQueue q;
  q.bind_shard(1);
  EXPECT_DEATH(q.bind_shard(2), "already bound");
}

// ---------------------------------------------------------------------------
// ShardRunner
// ---------------------------------------------------------------------------

TEST(ShardRunner, RunsEveryJobExactlyOnceUnderItsIdentity) {
  for (int workers : {1, 2, 4, 7}) {
    const std::size_t n = 23;
    std::vector<std::atomic<int>> hits(n);
    std::vector<sim::ShardId> observed(n, sim::kNoShard);
    sim::ShardRunner runner(workers);
    EXPECT_EQ(runner.workers(), workers);
    runner.run(n, [&](sim::ShardId id) {
      hits[id].fetch_add(1);
      observed[id] = sim::current_shard();
    });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "workers=" << workers << " job " << i;
      EXPECT_EQ(observed[i], static_cast<sim::ShardId>(i));
    }
  }
}

TEST(ShardRunner, SlotOrderedResultsIdenticalAcrossWorkerCounts) {
  // The canonical usage pattern: each job derives data purely from its
  // shard id (here via the per-shard seed) and writes slot [id].
  auto sweep = [](int workers) {
    std::vector<std::uint64_t> slots(64);
    sim::ShardRunner runner(workers);
    runner.run(slots.size(), [&](sim::ShardId id) {
      util::Rng rng(sim::shard_seed(99, id));
      std::uint64_t acc = 0;
      for (int i = 0; i < 1000; ++i) acc ^= rng();
      slots[id] = acc;
    });
    return slots;
  };
  const auto seq = sweep(1);
  EXPECT_EQ(sweep(2), seq);
  EXPECT_EQ(sweep(4), seq);
  EXPECT_EQ(sweep(16), seq);
}

TEST(ShardRunner, PropagatesTheFirstJobException) {
  sim::ShardRunner runner(4);
  EXPECT_THROW(
      runner.run(16,
                 [&](sim::ShardId id) {
                   if (id == 5) throw std::runtime_error("boom");
                 }),
      std::runtime_error);
}

TEST(ShardRunner, ZeroJobsIsANoOp) {
  sim::ShardRunner runner(4);
  runner.run(0, [&](sim::ShardId) { FAIL() << "job ran"; });
}

// ---------------------------------------------------------------------------
// HorizonGate
// ---------------------------------------------------------------------------

TEST(HorizonGate, SingleShardHorizonIsInfinite) {
  sim::HorizonGate gate(1, 10.0);
  gate.set_clock(0, 5.0);
  EXPECT_TRUE(std::isinf(gate.safe_horizon(0)));
}

TEST(HorizonGate, HorizonTracksPeerClocksPlusLatency) {
  sim::HorizonGate gate(3, 10.0);
  gate.set_clock(0, 100.0);
  gate.set_clock(1, 40.0);
  gate.set_clock(2, 70.0);
  // Shard 0's bound comes from the slowest peer: min(40, 70) + 10.
  EXPECT_DOUBLE_EQ(gate.safe_horizon(0), 50.0);
  EXPECT_DOUBLE_EQ(gate.safe_horizon(1), 80.0);  // min(100, 70) + 10
  EXPECT_DOUBLE_EQ(gate.safe_horizon(2), 50.0);  // min(100, 40) + 10
  EXPECT_TRUE(gate.admissible(1, 80.0));
  EXPECT_FALSE(gate.admissible(1, 80.5));
}

TEST(HorizonGate, PendingMessageCapsTheDestinationHorizon) {
  sim::HorizonGate gate(2, 10.0);
  gate.set_clock(0, 50.0);
  gate.set_clock(1, 60.0);
  const std::uint64_t ticket = gate.send(/*src=*/0, /*dst=*/1, /*send=*/50.0);
  EXPECT_EQ(gate.messages_pending(), 1u);
  // Shard 1 may not run past the in-flight arrival bound 50 + 10 even
  // after shard 0's clock advances beyond it.
  gate.set_clock(0, 500.0);
  EXPECT_DOUBLE_EQ(gate.safe_horizon(1), 60.0);
  gate.deliver(ticket);
  EXPECT_EQ(gate.messages_pending(), 0u);
  EXPECT_DOUBLE_EQ(gate.safe_horizon(1), 510.0);
}

// Property: the safe horizon never admits an event earlier than any
// pending cross-shard message to that shard, nor earlier than any peer's
// clock + L — under randomized clock advances, sends, and deliveries.
TEST(HorizonGate, PropertyHorizonNeverOvertakesPendingTraffic) {
  util::Rng rng(2026);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint32_t k =
        2 + static_cast<std::uint32_t>(rng.next_below(4));  // 2..5 shards
    const double latency = 1.0 + static_cast<double>(rng.next_below(20));
    sim::HorizonGate gate(k, latency);
    std::vector<double> clocks(k, 0.0);
    struct Msg {
      std::uint64_t ticket;
      sim::ShardId dst;
      double arrival_lb;
    };
    std::vector<Msg> in_flight;
    for (int op = 0; op < 200; ++op) {
      const sim::ShardId s = static_cast<sim::ShardId>(rng.next_below(k));
      switch (rng.next_below(3)) {
        case 0: {  // advance a shard's clock
          clocks[s] += static_cast<double>(rng.next_below(10));
          gate.set_clock(s, clocks[s]);
          break;
        }
        case 1: {  // send from a shard, at or after its clock
          sim::ShardId dst = static_cast<sim::ShardId>(rng.next_below(k));
          if (dst == s) dst = (dst + 1) % k;
          const double send_time =
              clocks[s] + static_cast<double>(rng.next_below(5));
          const std::uint64_t ticket = gate.send(s, dst, send_time);
          in_flight.push_back({ticket, dst, send_time + latency});
          break;
        }
        default: {  // deliver the oldest in-flight message
          if (!in_flight.empty()) {
            gate.deliver(in_flight.front().ticket);
            in_flight.erase(in_flight.begin());
          }
          break;
        }
      }
      // Invariant sweep after every operation.
      for (sim::ShardId sh = 0; sh < k; ++sh) {
        const double h = gate.safe_horizon(sh);
        for (const Msg& m : in_flight) {
          if (m.dst == sh) {
            EXPECT_LE(h, m.arrival_lb)
                << "horizon admits an event past a pending message";
          }
        }
        for (sim::ShardId p = 0; p < k; ++p) {
          if (p != sh) EXPECT_LE(h, clocks[p] + latency);
        }
      }
    }
    EXPECT_EQ(gate.messages_pending(), in_flight.size());
  }
}

TEST(HorizonGateDeathTest, SendFromTheShardsPastDies) {
  sim::HorizonGate gate(2, 5.0);
  gate.set_clock(0, 100.0);
  EXPECT_DEATH(gate.send(0, 1, 99.0), "own past");
}

// ---------------------------------------------------------------------------
// WindowedCoSim over real DesMachines
// ---------------------------------------------------------------------------

/// Adapts a DesMachine to the CoSimShard interface.
class MachineShard final : public sim::CoSimShard {
 public:
  explicit MachineShard(htm::DesMachine& m) : m_(m) {}
  bool has_events() const override { return m_.has_pending_events(); }
  sim::Time next_time() const override { return m_.next_event_time(); }
  void step(sim::Time horizon) override { m_.step(horizon); }

 private:
  htm::DesMachine& m_;
};

struct CoSimOutcome {
  std::vector<std::vector<double>> traces;  ///< per-shard arrival times
  std::vector<double> final_now;
  std::vector<std::uint64_t> events;
  std::uint64_t windows = 0;
  std::uint64_t hops = 0;

  bool operator==(const CoSimOutcome& o) const {
    return traces == o.traces && final_now == o.final_now &&
           events == o.events && windows == o.windows && hops == o.hops;
  }
};

/// K coupled machines pass `tokens` tokens around the ring; every hop
/// rides a channel of latency L plus a deterministic per-shard extra
/// delay derived from the shard seed. Returns the full simulated trace.
CoSimOutcome run_token_ring(int k, int tokens, int hops_per_token,
                            int host_threads) {
  const double latency = 100.0;
  const model::MachineConfig& config = model::has_c();

  std::vector<std::unique_ptr<mem::SimHeap>> heaps;
  std::vector<std::unique_ptr<htm::DesMachine>> machines;
  std::vector<std::unique_ptr<MachineShard>> shards;
  std::vector<sim::CoSimShard*> shard_ptrs;
  for (int i = 0; i < k; ++i) {
    heaps.push_back(std::make_unique<mem::SimHeap>(1 << 16));
    machines.push_back(std::make_unique<htm::DesMachine>(
        config, model::HtmKind::kRtm, /*num_threads=*/1, *heaps.back(),
        /*seed=*/1));
    machines.back()->bind_shard(static_cast<sim::ShardId>(i));
    shards.push_back(std::make_unique<MachineShard>(*machines.back()));
    shard_ptrs.push_back(shards.back().get());
  }

  sim::WindowedCoSim cosim(shard_ptrs, latency, host_threads);
  CoSimOutcome out;
  out.traces.resize(k);
  std::vector<std::uint64_t> hops_done(k, 0);

  // On arrival at shard `at` with `left` hops to go, record the arrival
  // and forward the token to the next shard on the ring. Runs inside the
  // owning machine's step, under that shard's identity.
  std::function<void(int, double, int)> hop = [&](int at, double now,
                                                  int left) {
    out.traces[at].push_back(now);
    ++hops_done[at];
    if (left == 0) return;
    const int next = (at + 1) % k;
    // Deterministic per-shard service time before the token departs.
    const double service =
        1.0 + static_cast<double>(sim::shard_seed(7, at) % 17);
    const double send_time = now + service;
    const double arrival = send_time + latency;
    cosim.post(static_cast<sim::ShardId>(at), static_cast<sim::ShardId>(next),
               send_time, arrival, [&, next, arrival, left] {
                 machines[next]->schedule_callback(arrival, [&, next, arrival,
                                                             left] {
                   hop(next, arrival, left - 1);
                 });
               });
  };

  // Seed the tokens: token t starts on shard t % k at time t + 1. The
  // machines' queues are shard-bound, so setup schedules under each
  // owner's identity (single-threaded here, same as a barrier delivery).
  for (int t = 0; t < tokens; ++t) {
    const int at = t % k;
    const double start = static_cast<double>(t + 1);
    sim::ShardGuard guard(static_cast<sim::ShardId>(at));
    machines[at]->schedule_callback(start, [&, at, start] {
      hop(at, start, hops_per_token);
    });
  }
  for (auto& m : machines) m->begin_external_run();
  out.windows = cosim.run();

  for (int i = 0; i < k; ++i) {
    out.final_now.push_back(machines[i]->now());
    out.events.push_back(machines[i]->events_processed());
    out.hops += hops_done[i];
  }
  return out;
}

TEST(WindowedCoSim, TokenRingCompletesAllHops) {
  const CoSimOutcome out = run_token_ring(/*k=*/3, /*tokens=*/4,
                                          /*hops_per_token=*/10,
                                          /*host_threads=*/1);
  // Every hop lands exactly once: 4 tokens x (1 start + 10 forwards).
  EXPECT_EQ(out.hops, 4u * 11u);
  EXPECT_GT(out.windows, 0u);
  // Arrivals within one shard are recorded in nondecreasing time order:
  // the windowed driver never executes a shard's events out of order.
  for (const auto& trace : out.traces) {
    EXPECT_TRUE(std::is_sorted(trace.begin(), trace.end()));
  }
}

TEST(WindowedCoSim, BitIdenticalAcrossHostThreadCounts) {
  const CoSimOutcome seq = run_token_ring(3, 4, 25, /*host_threads=*/1);
  const CoSimOutcome par2 = run_token_ring(3, 4, 25, /*host_threads=*/2);
  const CoSimOutcome par4 = run_token_ring(3, 4, 25, /*host_threads=*/4);
  EXPECT_TRUE(seq == par2);
  EXPECT_TRUE(seq == par4);
}

TEST(WindowedCoSim, BitIdenticalWithMoreShardsThanWorkers) {
  const CoSimOutcome seq = run_token_ring(5, 7, 12, /*host_threads=*/1);
  const CoSimOutcome par = run_token_ring(5, 7, 12, /*host_threads=*/3);
  EXPECT_TRUE(seq == par);
}

}  // namespace
}  // namespace aam
