#include <gtest/gtest.h>

#include <vector>

#include "mem/footprint.hpp"
#include "mem/sim_heap.hpp"
#include "util/rng.hpp"

namespace aam::mem {
namespace {

// -------------------------------------------------------------- SimHeap

TEST(SimHeap, AllocatesAlignedAndContained) {
  SimHeap heap(1 << 16);
  auto a = heap.alloc<std::uint64_t>(10);
  auto b = heap.alloc<double>(5);
  EXPECT_EQ(a.size(), 10u);
  EXPECT_EQ(b.size(), 5u);
  EXPECT_TRUE(heap.contains(a.data()));
  EXPECT_TRUE(heap.contains(&b[4]));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.data()) % 8, 0u);
  int local = 0;
  EXPECT_FALSE(heap.contains(&local));
}

TEST(SimHeap, ZeroInitializes) {
  SimHeap heap(1 << 12);
  auto a = heap.alloc<std::uint32_t>(100);
  for (auto v : a) EXPECT_EQ(v, 0u);
}

TEST(SimHeap, LineOfMapsSixtyFourByteBlocks) {
  SimHeap heap(1 << 12);
  auto a = heap.alloc<std::uint8_t>(256);
  const LineId l0 = heap.line_of(&a[0]);
  EXPECT_EQ(heap.line_of(&a[63]) - l0, 0u);
  EXPECT_EQ(heap.line_of(&a[64]) - l0, 1u);
  EXPECT_EQ(heap.line_of(&a[255]) - l0, 3u);
}

TEST(SimHeap, BaseIsLineAligned) {
  SimHeap heap(1 << 12);
  auto a = heap.alloc<std::uint8_t>(1);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(&a[0]) % kLineBytes, 0u);
}

TEST(SimHeap, ResetReclaims) {
  SimHeap heap(1 << 10);
  heap.alloc<std::uint64_t>(100);
  const std::size_t used = heap.used_bytes();
  EXPECT_GE(used, 800u);
  heap.reset();
  EXPECT_EQ(heap.used_bytes(), 0u);
  heap.alloc<std::uint64_t>(100);  // fits again
}

TEST(SimHeapDeathTest, AbortsWhenExhausted) {
  SimHeap heap(1 << 10);
  EXPECT_DEATH(heap.alloc<std::uint64_t>(1 << 20), "out of capacity");
}

// ---------------------------------------------------------- StripeTable

TEST(StripeTable, OwnersAndAvailability) {
  StripeTable table(16);
  table.set_available_at(7, 90.0);
  EXPECT_DOUBLE_EQ(table.available_at(7), 90.0);
  EXPECT_EQ(table.owner(5), StripeTable::kNoOwner);
  table.set_owner(5, 2);
  EXPECT_EQ(table.owner(5), 2u);
  table.reset();
  EXPECT_DOUBLE_EQ(table.available_at(7), 0.0);
  EXPECT_EQ(table.owner(5), StripeTable::kNoOwner);
}

// ------------------------------------------------------------- EpochSet

TEST(EpochSet, InsertAndDuplicate) {
  EpochSet s;
  EXPECT_TRUE(s.insert(5));
  EXPECT_FALSE(s.insert(5));
  EXPECT_TRUE(s.insert(6));
  EXPECT_TRUE(s.contains(5));
  EXPECT_FALSE(s.contains(7));
  EXPECT_EQ(s.size(), 2u);
}

TEST(EpochSet, ClearIsConstantTimeAndComplete) {
  EpochSet s;
  for (std::uint64_t i = 0; i < 100; ++i) s.insert(i);
  s.clear();
  EXPECT_EQ(s.size(), 0u);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_FALSE(s.contains(i));
  EXPECT_TRUE(s.insert(3));
}

TEST(EpochSet, GrowsBeyondInitialCapacity) {
  EpochSet s(4);
  for (std::uint64_t i = 0; i < 10000; ++i) EXPECT_TRUE(s.insert(i * 7 + 1));
  EXPECT_EQ(s.size(), 10000u);
  for (std::uint64_t i = 0; i < 10000; ++i) EXPECT_TRUE(s.contains(i * 7 + 1));
  EXPECT_FALSE(s.contains(3));
}

TEST(EpochSet, SurvivesManyEpochs) {
  EpochSet s;
  for (int epoch = 0; epoch < 1000; ++epoch) {
    EXPECT_TRUE(s.insert(static_cast<std::uint64_t>(epoch)));
    EXPECT_EQ(s.size(), 1u);
    s.clear();
  }
}

TEST(EpochSet, CollidingKeysProbeCorrectly) {
  // Keys a multiple of a large power of two apart land on the same slot
  // for any table size up to that power; every insert past the first must
  // walk the probe chain rather than overwrite.
  EpochSet s(4);
  constexpr std::uint64_t kStride = std::uint64_t{1} << 32;
  for (std::uint64_t i = 1; i <= 64; ++i) EXPECT_TRUE(s.insert(i * kStride));
  EXPECT_EQ(s.size(), 64u);
  for (std::uint64_t i = 1; i <= 64; ++i) {
    EXPECT_TRUE(s.contains(i * kStride)) << i;
    EXPECT_FALSE(s.insert(i * kStride)) << i;
  }
  EXPECT_FALSE(s.contains(65 * kStride));
}

TEST(EpochSet, ContainsWalksProbeChainOnVerifiedCollisions) {
  // The stride test above hopes for collisions; mix64 scrambles strides, so
  // it does not guarantee any. Here we brute-force keys whose *hashed* home
  // slot provably collides under the initial mask, then check contains()
  // distinguishes residents from an absent key that shares their chain.
  constexpr std::size_t kMask = 63;  // initial_capacity 64, no growth below
  const std::size_t home = util::mix64(1) & kMask;
  std::vector<std::uint64_t> keys{1};
  for (std::uint64_t k = 2; keys.size() < 3; ++k) {
    if ((util::mix64(k) & kMask) == home) keys.push_back(k);
  }
  EpochSet s(64);
  EXPECT_TRUE(s.insert(keys[0]));
  EXPECT_TRUE(s.insert(keys[1]));
  // Lookup of the displaced second key must walk past the first.
  EXPECT_TRUE(s.contains(keys[0]));
  EXPECT_TRUE(s.contains(keys[1]));
  // An absent key whose home slot is occupied by a live entry must probe to
  // the chain's end and report absent, not match on epoch alone.
  EXPECT_FALSE(s.contains(keys[2]));
  EXPECT_FALSE(s.insert(keys[0]));
  EXPECT_FALSE(s.insert(keys[1]));
  EXPECT_EQ(s.size(), 2u);

  // Epoch-stale variant: after clear() the same chain's slots hold stale
  // epochs; contains() must treat them as empty, and reinsertion of only
  // the displaced key must not resurrect its chain predecessor.
  s.clear();
  EXPECT_FALSE(s.contains(keys[0]));
  EXPECT_FALSE(s.contains(keys[1]));
  EXPECT_TRUE(s.insert(keys[1]));
  EXPECT_TRUE(s.contains(keys[1]));
  EXPECT_FALSE(s.contains(keys[0]));
}

TEST(EpochSet, StaleSlotsDoNotResurrectAcrossGrowAndClear) {
  // clear() then enough inserts to grow: relocation must not carry
  // previous-epoch keys into the new table.
  EpochSet s(4);
  for (std::uint64_t i = 0; i < 100; ++i) s.insert(i);
  s.clear();
  for (std::uint64_t i = 1000; i < 1100; ++i) EXPECT_TRUE(s.insert(i));
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_FALSE(s.contains(i)) << i;
  EXPECT_EQ(s.size(), 100u);
}

// -------------------------------------------------------------- WordMap

TEST(WordMap, LookupInsertAssign) {
  WordMap m;
  std::uint64_t v = 0;
  EXPECT_FALSE(m.lookup(0x1000, v));
  m.insert_or_assign(0x1000, 7);
  EXPECT_TRUE(m.lookup(0x1000, v));
  EXPECT_EQ(v, 7u);
  m.insert_or_assign(0x1000, 9);
  EXPECT_TRUE(m.lookup(0x1000, v));
  EXPECT_EQ(v, 9u);
  EXPECT_EQ(m.size(), 1u);
}

TEST(WordMap, IteratesInsertionOrder) {
  WordMap m;
  m.insert_or_assign(0x30, 3);
  m.insert_or_assign(0x10, 1);
  m.insert_or_assign(0x20, 2);
  m.insert_or_assign(0x10, 11);  // reassign must not duplicate
  std::vector<std::pair<std::uintptr_t, std::uint64_t>> seen;
  m.for_each([&](std::uintptr_t k, std::uint64_t val) {
    seen.emplace_back(k, val);
  });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<std::uintptr_t, std::uint64_t>{0x30, 3}));
  EXPECT_EQ(seen[1], (std::pair<std::uintptr_t, std::uint64_t>{0x10, 11}));
  EXPECT_EQ(seen[2], (std::pair<std::uintptr_t, std::uint64_t>{0x20, 2}));
}

TEST(WordMap, GrowsAndClears) {
  WordMap m(4);
  for (std::uintptr_t i = 0; i < 5000; ++i) m.insert_or_assign(i * 8, i);
  EXPECT_EQ(m.size(), 5000u);
  std::uint64_t v = 0;
  EXPECT_TRUE(m.lookup(4096 * 8, v));
  EXPECT_EQ(v, 4096u);
  m.clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_FALSE(m.lookup(8, v));
}

TEST(WordMap, InsertionOrderSurvivesGrowth) {
  WordMap m(4);
  // Reverse-ordered addresses so table order != insertion order, far past
  // the initial capacity so the table rehashes several times.
  for (std::uintptr_t i = 0; i < 600; ++i) {
    m.insert_or_assign((600 - i) * 8, i);
  }
  std::uintptr_t expect_key = 600 * 8;
  std::uint64_t expect_val = 0;
  m.for_each([&](std::uintptr_t k, std::uint64_t val) {
    EXPECT_EQ(k, expect_key);
    EXPECT_EQ(val, expect_val);
    expect_key -= 8;
    ++expect_val;
  });
  EXPECT_EQ(expect_val, 600u);
}

TEST(WordMap, ReassignAfterClearDoesNotReviveStaleEntries) {
  WordMap m(4);
  for (std::uintptr_t i = 0; i < 100; ++i) m.insert_or_assign(i * 8, i + 1);
  m.clear();
  m.insert_or_assign(0x18, 42);  // address also present before the clear
  std::uint64_t v = 0;
  EXPECT_TRUE(m.lookup(0x18, v));
  EXPECT_EQ(v, 42u);
  EXPECT_EQ(m.size(), 1u);
  std::size_t visited = 0;
  m.for_each([&](std::uintptr_t, std::uint64_t) { ++visited; });
  EXPECT_EQ(visited, 1u);
}

TEST(WordMap, WriteBackSeesLatestValuesAcrossGrowth) {
  // Commit write-back (for_each) reads values stored next to the
  // insertion-order keys; reassignments made before *and* after table
  // growth must both be visible, in first-insertion order.
  WordMap m(4);
  for (std::uintptr_t i = 0; i < 64; ++i) m.insert_or_assign(i * 8, i);
  for (std::uintptr_t i = 0; i < 64; i += 2) {
    m.insert_or_assign(i * 8, 1000 + i);  // reassign half, post-growth
  }
  std::uintptr_t idx = 0;
  m.for_each([&](std::uintptr_t k, std::uint64_t val) {
    EXPECT_EQ(k, idx * 8);
    EXPECT_EQ(val, idx % 2 == 0 ? 1000 + idx : idx);
    ++idx;
  });
  EXPECT_EQ(idx, 64u);
}

// ----------------------------------------------------- FootprintTracker

model::CacheGeometry small_geom() {
  model::CacheGeometry g;
  g.sets = 4;
  g.ways = 2;  // capacity: 8 lines total, 2 per set
  return g;
}

constexpr std::uint64_t line_off(std::uint64_t line) { return line * 64; }

TEST(FootprintTracker, TracksDistinctLines) {
  FootprintTracker t;
  t.configure(small_geom(), 100);
  EXPECT_EQ(t.add_write(line_off(1)), FootprintTracker::Add::kOk);
  EXPECT_EQ(t.add_write(line_off(1)), FootprintTracker::Add::kDuplicate);
  EXPECT_EQ(t.add_read(line_off(2)), FootprintTracker::Add::kOk);
  EXPECT_EQ(t.add_read(line_off(2)), FootprintTracker::Add::kDuplicate);
  // A line already written is not re-tracked as a read.
  EXPECT_EQ(t.add_read(line_off(1)), FootprintTracker::Add::kDuplicate);
  EXPECT_EQ(t.distinct_write_lines(), 1u);
  EXPECT_EQ(t.distinct_read_lines(), 1u);
}

TEST(FootprintTracker, AssociativityOverflow) {
  FootprintTracker t;
  t.configure(small_geom(), 100);
  // Lines 0, 4, 8 all map to set 0 with 4 sets; 2 ways -> third overflows.
  EXPECT_EQ(t.add_write(line_off(0)), FootprintTracker::Add::kOk);
  EXPECT_EQ(t.add_write(line_off(4)), FootprintTracker::Add::kOk);
  EXPECT_EQ(t.add_write(line_off(8)), FootprintTracker::Add::kOverflow);
}

TEST(FootprintTracker, SequentialLinesFillAllSets) {
  FootprintTracker t;
  t.configure(small_geom(), 100);
  for (LineId l = 0; l < 8; ++l) {
    EXPECT_EQ(t.add_write(line_off(l)), FootprintTracker::Add::kOk) << l;
  }
  EXPECT_EQ(t.add_write(line_off(8)), FootprintTracker::Add::kOverflow);
}

TEST(FootprintTracker, ReadCapacityIsTotalOnly) {
  FootprintTracker t;
  t.configure(small_geom(), 5);
  // Reads have no associativity constraint: 5 lines in the same set are OK.
  for (LineId l = 0; l < 5; ++l) {
    EXPECT_EQ(t.add_read(line_off(l * 4)), FootprintTracker::Add::kOk);
  }
  EXPECT_EQ(t.add_read(line_off(20)), FootprintTracker::Add::kOverflow);
}

TEST(FootprintTracker, ResetRestoresCapacity) {
  FootprintTracker t;
  t.configure(small_geom(), 100);
  EXPECT_EQ(t.add_write(line_off(0)), FootprintTracker::Add::kOk);
  EXPECT_EQ(t.add_write(line_off(4)), FootprintTracker::Add::kOk);
  t.reset();
  EXPECT_EQ(t.distinct_write_lines(), 0u);
  EXPECT_EQ(t.add_write(line_off(0)), FootprintTracker::Add::kOk);
  EXPECT_EQ(t.add_write(line_off(4)), FootprintTracker::Add::kOk);
  EXPECT_EQ(t.add_write(line_off(8)), FootprintTracker::Add::kOverflow);
}

TEST(FootprintTracker, FineConflictUnitsWithinOneLine) {
  // BG/Q-style 8-byte conflict units: two words in one line are distinct
  // conflict units but a single capacity line.
  FootprintTracker t;
  t.configure(small_geom(), 100, /*conflict_shift=*/3);
  EXPECT_EQ(t.add_write(0), FootprintTracker::Add::kOk);
  EXPECT_EQ(t.add_write(8), FootprintTracker::Add::kDuplicate);  // same line
  EXPECT_EQ(t.write_units().size(), 2u);
  EXPECT_EQ(t.distinct_write_lines(), 1u);
}

TEST(FootprintTracker, CoarseUnitsMatchLines) {
  FootprintTracker t;
  t.configure(small_geom(), 100, /*conflict_shift=*/6);
  EXPECT_EQ(t.add_write(0), FootprintTracker::Add::kOk);
  t.add_write(8);   // same 64B line and same unit
  EXPECT_EQ(t.write_units().size(), 1u);
  EXPECT_EQ(t.distinct_write_lines(), 1u);
}

TEST(FootprintTracker, SequentialSameLineIsDuplicateWithoutSetGrowth) {
  // The last-access memo: repeats of the immediately preceding access are
  // kDuplicate and must not grow any set or unit list.
  FootprintTracker t;
  t.configure(small_geom(), 100, /*conflict_shift=*/6);
  EXPECT_EQ(t.add_write(line_off(3)), FootprintTracker::Add::kOk);
  for (int i = 0; i < 5; ++i) {
    // Different word offsets within the same line and unit.
    EXPECT_EQ(t.add_write(line_off(3) + 8 * i),
              FootprintTracker::Add::kDuplicate);
  }
  EXPECT_EQ(t.write_units().size(), 1u);
  EXPECT_EQ(t.distinct_write_lines(), 1u);
  EXPECT_EQ(t.add_read(line_off(5)), FootprintTracker::Add::kOk);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(t.add_read(line_off(5) + 8 * i),
              FootprintTracker::Add::kDuplicate);
  }
  EXPECT_EQ(t.read_units().size(), 1u);
  EXPECT_EQ(t.distinct_read_lines(), 1u);
}

TEST(FootprintTracker, MemoDoesNotConfuseReadsWithWrites) {
  FootprintTracker t;
  t.configure(small_geom(), 100);
  // A read memo on a line must not short-circuit the first *write* to it:
  // the write still has to enter the write sets and capacity model.
  EXPECT_EQ(t.add_read(line_off(1)), FootprintTracker::Add::kOk);
  EXPECT_EQ(t.add_write(line_off(1)), FootprintTracker::Add::kOk);
  EXPECT_EQ(t.distinct_write_lines(), 1u);
  EXPECT_EQ(t.write_units().size(), 1u);
  // And vice versa: after a write, the first read of that line reports
  // kDuplicate (write set covers it) exactly as without the memo.
  EXPECT_EQ(t.add_write(line_off(2)), FootprintTracker::Add::kOk);
  EXPECT_EQ(t.add_read(line_off(2)), FootprintTracker::Add::kDuplicate);
  EXPECT_EQ(t.read_units().size(), 1u);  // only line 1's unit
}

TEST(FootprintTracker, MemoClearedByReset) {
  FootprintTracker t;
  t.configure(small_geom(), 100);
  EXPECT_EQ(t.add_write(line_off(0)), FootprintTracker::Add::kOk);
  EXPECT_EQ(t.add_write(line_off(0)), FootprintTracker::Add::kDuplicate);
  t.reset();
  // A stale memo would wrongly report kDuplicate here.
  EXPECT_EQ(t.add_write(line_off(0)), FootprintTracker::Add::kOk);
  EXPECT_EQ(t.add_read(line_off(9)), FootprintTracker::Add::kOk);
  t.reset();
  EXPECT_EQ(t.add_read(line_off(9)), FootprintTracker::Add::kOk);
}

TEST(FootprintTracker, CapacityAbortCountsIdenticalWithInterleavedRepeats) {
  // Overflow must fire at exactly the same access whether or not repeated
  // same-line touches (memo hits) are interleaved with the distinct ones.
  FootprintTracker plain;
  FootprintTracker noisy;
  plain.configure(small_geom(), 100);
  noisy.configure(small_geom(), 100);
  for (LineId l = 0; l < 8; ++l) {
    EXPECT_EQ(plain.add_write(line_off(l)), FootprintTracker::Add::kOk);
    EXPECT_EQ(noisy.add_write(line_off(l)), FootprintTracker::Add::kOk);
    EXPECT_EQ(noisy.add_write(line_off(l)), FootprintTracker::Add::kDuplicate);
    EXPECT_EQ(noisy.add_write(line_off(l) + 8),
              FootprintTracker::Add::kDuplicate);
  }
  EXPECT_EQ(plain.add_write(line_off(8)), FootprintTracker::Add::kOverflow);
  EXPECT_EQ(noisy.add_write(line_off(8)), FootprintTracker::Add::kOverflow);
  EXPECT_EQ(plain.distinct_write_lines(), noisy.distinct_write_lines());
  EXPECT_EQ(plain.write_units().size(), noisy.write_units().size());
}

}  // namespace
}  // namespace aam::mem
