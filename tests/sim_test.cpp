#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/event_queue.hpp"

namespace aam::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.push(30.0, 0, 0);
  q.push(10.0, 1, 0);
  q.push(20.0, 2, 0);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_DOUBLE_EQ(q.peek_time(), 10.0);
  EXPECT_EQ(q.pop().thread, 1u);
  EXPECT_EQ(q.pop().thread, 2u);
  EXPECT_EQ(q.pop().thread, 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  for (std::uint32_t i = 0; i < 100; ++i) q.push(5.0, i, 0);
  for (std::uint32_t i = 0; i < 100; ++i) {
    const Event e = q.pop();
    EXPECT_EQ(e.thread, i);
    EXPECT_EQ(e.seq, i);
  }
}

TEST(EventQueue, CarriesKindAndPayload) {
  EventQueue q;
  q.push(1.0, 3, 7, 0xdeadbeef);
  const Event e = q.pop();
  EXPECT_EQ(e.kind, 7u);
  EXPECT_EQ(e.payload, 0xdeadbeefu);
}

TEST(EventQueue, InterleavedPushPop) {
  EventQueue q;
  q.push(10.0, 0, 0);
  q.push(5.0, 1, 0);
  EXPECT_EQ(q.pop().thread, 1u);
  q.push(7.0, 2, 0);
  q.push(20.0, 3, 0);
  EXPECT_EQ(q.pop().thread, 2u);
  EXPECT_EQ(q.pop().thread, 0u);
  EXPECT_EQ(q.pop().thread, 3u);
}

TEST(EventQueue, SizePeekAndEmptyCorrectWhileHoleOutstanding) {
  // pop() defers heap repair (hole at the root) until the next operation;
  // the accessors must see through the hole.
  EventQueue q;
  q.push(10.0, 0, 0);
  q.push(5.0, 1, 0);
  q.push(7.0, 2, 0);
  EXPECT_EQ(q.pop().thread, 1u);  // leaves the hole
  EXPECT_EQ(q.size(), 2u);
  EXPECT_FALSE(q.empty());
  EXPECT_DOUBLE_EQ(q.peek_time(), 7.0);
  q.push(6.0, 3, 0);  // fills the hole
  EXPECT_EQ(q.size(), 3u);
  EXPECT_DOUBLE_EQ(q.peek_time(), 6.0);
  EXPECT_EQ(q.pop().thread, 3u);
  EXPECT_EQ(q.pop().thread, 2u);
  EXPECT_EQ(q.pop().thread, 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, DrainToEmptyAndRefillAcrossHole) {
  EventQueue q;
  q.push(1.0, 7, 0);
  EXPECT_EQ(q.pop().thread, 7u);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  q.push(2.0, 8, 0);  // push into the single-slot hole
  EXPECT_EQ(q.size(), 1u);
  EXPECT_DOUBLE_EQ(q.peek_time(), 2.0);
  EXPECT_EQ(q.pop().thread, 8u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RandomizedPopsAlwaysReturnTheMinimum) {
  // Deterministic pseudo-random push/pop mix with heavy time-tie density,
  // exercising the hole fast path on every interleaving. Each pop must
  // return exactly the (time, seq)-minimum of the reference set — i.e.
  // ordering is unchanged by the heap-layout optimizations.
  EventQueue q;
  q.reserve(64);
  std::vector<Event> live;  // reference queue contents
  std::uint64_t lcg = 12345;
  auto next = [&lcg]() {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    return lcg >> 33;
  };
  auto min_it = [&live]() {
    return std::min_element(live.begin(), live.end(),
                            [](const Event& a, const Event& b) {
                              if (a.time != b.time) return a.time < b.time;
                              return a.seq < b.seq;
                            });
  };
  auto check_pop = [&]() {
    const auto it = min_it();
    EXPECT_DOUBLE_EQ(q.peek_time(), it->time);
    const Event e = q.pop();
    EXPECT_DOUBLE_EQ(e.time, it->time);
    EXPECT_EQ(e.seq, it->seq);
    EXPECT_EQ(e.thread, it->thread);
    live.erase(it);
    EXPECT_EQ(q.size(), live.size());
  };
  for (int i = 0; i < 2000; ++i) {
    if (next() % 3 != 0 || q.empty()) {
      const Time t = static_cast<Time>(next() % 16);  // heavy tie density
      const std::uint64_t seq = q.push(t, static_cast<std::uint32_t>(i), 0);
      live.push_back(Event{t, seq, static_cast<std::uint32_t>(i), 0, 0});
    } else {
      check_pop();
    }
  }
  while (!q.empty()) check_pop();
  EXPECT_TRUE(live.empty());
}

TEST(Backoff, WindowsDoubleAndCap) {
  Backoff b(100.0, 800.0);
  EXPECT_DOUBLE_EQ(b.window(0), 100.0);
  EXPECT_DOUBLE_EQ(b.window(1), 200.0);
  EXPECT_DOUBLE_EQ(b.window(2), 400.0);
  EXPECT_DOUBLE_EQ(b.window(3), 800.0);
  EXPECT_DOUBLE_EQ(b.window(10), 800.0);
}

TEST(Backoff, WaitWithinWindowAndNonZero) {
  Backoff b(100.0, 800.0);
  for (double u : {0.0, 0.25, 0.5, 0.9999}) {
    const Time w = b.wait(2, u);
    EXPECT_GT(w, 0.0);
    EXPECT_LE(w, 400.0);
  }
}

}  // namespace
}  // namespace aam::sim
