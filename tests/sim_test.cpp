#include <gtest/gtest.h>

#include "sim/event_queue.hpp"

namespace aam::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.push(30.0, 0, 0);
  q.push(10.0, 1, 0);
  q.push(20.0, 2, 0);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_DOUBLE_EQ(q.peek_time(), 10.0);
  EXPECT_EQ(q.pop().thread, 1u);
  EXPECT_EQ(q.pop().thread, 2u);
  EXPECT_EQ(q.pop().thread, 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  for (std::uint32_t i = 0; i < 100; ++i) q.push(5.0, i, 0);
  for (std::uint32_t i = 0; i < 100; ++i) {
    const Event e = q.pop();
    EXPECT_EQ(e.thread, i);
    EXPECT_EQ(e.seq, i);
  }
}

TEST(EventQueue, CarriesKindAndPayload) {
  EventQueue q;
  q.push(1.0, 3, 7, 0xdeadbeef);
  const Event e = q.pop();
  EXPECT_EQ(e.kind, 7u);
  EXPECT_EQ(e.payload, 0xdeadbeefu);
}

TEST(EventQueue, InterleavedPushPop) {
  EventQueue q;
  q.push(10.0, 0, 0);
  q.push(5.0, 1, 0);
  EXPECT_EQ(q.pop().thread, 1u);
  q.push(7.0, 2, 0);
  q.push(20.0, 3, 0);
  EXPECT_EQ(q.pop().thread, 2u);
  EXPECT_EQ(q.pop().thread, 0u);
  EXPECT_EQ(q.pop().thread, 3u);
}

TEST(Backoff, WindowsDoubleAndCap) {
  Backoff b(100.0, 800.0);
  EXPECT_DOUBLE_EQ(b.window(0), 100.0);
  EXPECT_DOUBLE_EQ(b.window(1), 200.0);
  EXPECT_DOUBLE_EQ(b.window(2), 400.0);
  EXPECT_DOUBLE_EQ(b.window(3), 800.0);
  EXPECT_DOUBLE_EQ(b.window(10), 800.0);
}

TEST(Backoff, WaitWithinWindowAndNonZero) {
  Backoff b(100.0, 800.0);
  for (double u : {0.0, 0.25, 0.5, 0.9999}) {
    const Time w = b.wait(2, u);
    EXPECT_GT(w, 0.0);
    EXPECT_LE(w, 400.0);
  }
}

}  // namespace
}  // namespace aam::sim
