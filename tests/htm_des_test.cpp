#include <gtest/gtest.h>

#include "htm/des_engine.hpp"

namespace aam::htm {
namespace {

using model::HtmKind;

// A worker that stages `count` transactions, each running `body`.
class RepeatTxnWorker : public Worker {
 public:
  RepeatTxnWorker(int count, TxnBody body)
      : remaining_(count), body_(std::move(body)) {}

  bool next(ThreadCtx& ctx) override {
    if (remaining_ == 0) return false;
    --remaining_;
    ctx.stage_transaction(body_);
    return true;
  }

 private:
  int remaining_;
  TxnBody body_;
};

// A worker that performs `count` calls of `fn(ctx)` (one per next()).
class RepeatOpWorker : public Worker {
 public:
  RepeatOpWorker(int count, std::function<void(ThreadCtx&)> fn)
      : remaining_(count), fn_(std::move(fn)) {}

  bool next(ThreadCtx& ctx) override {
    if (remaining_ == 0) return false;
    --remaining_;
    fn_(ctx);
    return true;
  }

 private:
  int remaining_;
  std::function<void(ThreadCtx&)> fn_;
};

TEST(DesMachine, SingleThreadTxnCommits) {
  mem::SimHeap heap(1 << 16);
  DesMachine m(model::has_c(), HtmKind::kRtm, 1, heap);
  auto* x = heap.alloc_one<std::uint64_t>(5);
  RepeatTxnWorker w(1, [x](Txn& tx) {
    const auto v = tx.load(*x);
    tx.store(*x, v + 10);
  });
  m.set_worker(0, &w);
  m.run();
  EXPECT_EQ(*x, 15u);
  const HtmStats s = m.stats();
  EXPECT_EQ(s.committed, 1u);
  EXPECT_EQ(s.total_aborts(), 0u);
  EXPECT_EQ(s.serialized, 0u);
  // begin + read + write + commit costs were charged.
  const auto& c = model::has_c().htm(HtmKind::kRtm);
  EXPECT_GE(m.makespan(), c.begin_ns + c.commit_ns);
}

TEST(DesMachine, TxnWritesAreBufferedUntilCommit) {
  mem::SimHeap heap(1 << 16);
  DesMachine m(model::has_c(), HtmKind::kRtm, 1, heap);
  auto* x = heap.alloc_one<std::uint64_t>(1);
  bool saw_own_write = false;
  RepeatTxnWorker w(1, [&](Txn& tx) {
    tx.store(*x, std::uint64_t{42});
    saw_own_write = (tx.load(*x) == 42);
    // Committed memory still holds the old value mid-transaction.
    EXPECT_EQ(*x, 1u);
  });
  m.set_worker(0, &w);
  m.run();
  EXPECT_TRUE(saw_own_write);
  EXPECT_EQ(*x, 42u);
}

TEST(DesMachine, SubWordStoresSpliceCorrectly) {
  mem::SimHeap heap(1 << 16);
  DesMachine m(model::has_c(), HtmKind::kRtm, 1, heap);
  auto arr = heap.alloc<std::uint32_t>(2);  // shares one 8-byte word
  arr[0] = 0x11111111;
  arr[1] = 0x22222222;
  RepeatTxnWorker w(1, [&](Txn& tx) {
    tx.store(arr[0], 0xaaaaaaaau);
    tx.store(arr[1], 0xbbbbbbbbu);
  });
  m.set_worker(0, &w);
  m.run();
  EXPECT_EQ(arr[0], 0xaaaaaaaau);
  EXPECT_EQ(arr[1], 0xbbbbbbbbu);
}

TEST(DesMachine, ConflictingTxnsSerializeCorrectly) {
  mem::SimHeap heap(1 << 16);
  DesMachine m(model::has_c(), HtmKind::kRtm, 4, heap);
  auto* counter = heap.alloc_one<std::uint64_t>(0);
  const int per_thread = 50;
  std::vector<std::unique_ptr<RepeatTxnWorker>> workers;
  for (int t = 0; t < 4; ++t) {
    workers.push_back(std::make_unique<RepeatTxnWorker>(
        per_thread, [counter](Txn& tx) {
          tx.fetch_add(*counter, std::uint64_t{1});
        }));
    m.set_worker(static_cast<std::uint32_t>(t), workers.back().get());
  }
  m.run();
  // Atomicity: no increment is lost despite conflicts.
  EXPECT_EQ(*counter, 4u * per_thread);
  const HtmStats s = m.stats();
  EXPECT_EQ(s.completed(), 4u * per_thread);
  // Concurrent RMW on one line must generate conflict aborts.
  EXPECT_GT(s.aborts_conflict, 0u);
}

TEST(DesMachine, OverlappingTxnsFirstCommitterWins) {
  mem::SimHeap heap(1 << 16);
  DesMachine m(model::has_c(), HtmKind::kRtm, 2, heap);
  auto* x = heap.alloc_one<std::uint64_t>(0);
  RepeatTxnWorker w0(1, [x](Txn& tx) { tx.fetch_add(*x, std::uint64_t{1}); });
  RepeatTxnWorker w1(1, [x](Txn& tx) { tx.fetch_add(*x, std::uint64_t{1}); });
  m.set_worker(0, &w0);
  m.set_worker(1, &w1);
  m.run();
  EXPECT_EQ(*x, 2u);
  EXPECT_EQ(m.stats().committed + m.stats().serialized, 2u);
  EXPECT_GE(m.stats().aborts_conflict, 1u);
}

TEST(DesMachine, DisjointTxnsDoNotConflict) {
  mem::SimHeap heap(1 << 20);
  DesMachine m(model::has_c(), HtmKind::kRtm, 8, heap);
  auto vars = heap.alloc<std::uint64_t>(8 * 8);  // one line per thread
  std::vector<std::unique_ptr<RepeatTxnWorker>> workers;
  for (int t = 0; t < 8; ++t) {
    auto* slot = &vars[static_cast<std::size_t>(t) * 8];
    workers.push_back(std::make_unique<RepeatTxnWorker>(
        100, [slot](Txn& tx) { tx.fetch_add(*slot, std::uint64_t{1}); }));
    m.set_worker(static_cast<std::uint32_t>(t), workers.back().get());
  }
  m.run();
  for (int t = 0; t < 8; ++t) EXPECT_EQ(vars[static_cast<std::size_t>(t) * 8], 100u);
  EXPECT_EQ(m.stats().aborts_conflict, 0u);
  EXPECT_EQ(m.stats().committed, 800u);
}

TEST(DesMachine, CapacityAbortLeadsToSerialization) {
  mem::SimHeap heap(1 << 22);
  DesMachine m(model::has_c(), HtmKind::kRtm, 1, heap);
  // Has-C RTM write capacity is 512 lines (64 sets x 8 ways); write 600.
  auto data = heap.alloc<std::uint64_t>(600 * 8);
  RepeatTxnWorker w(1, [&](Txn& tx) {
    for (std::size_t i = 0; i < 600; ++i) {
      tx.store(data[i * 8], std::uint64_t{1});
    }
  });
  m.set_worker(0, &w);
  m.run();
  const HtmStats s = m.stats();
  EXPECT_GE(s.aborts_capacity, 1u);
  EXPECT_EQ(s.serialized, 1u);
  EXPECT_EQ(s.committed, 0u);
  // The serialized execution still applied every write.
  for (std::size_t i = 0; i < 600; ++i) EXPECT_EQ(data[i * 8], 1u);
}

TEST(DesMachine, BgqHardwareRetriesUpToLimitThenSerializes) {
  mem::SimHeap heap(1 << 22);
  DesMachine m(model::bgq(), HtmKind::kBgqShort, 1, heap);
  // BGQ short write budget is 2048 lines; exceed it.
  auto data = heap.alloc<std::uint64_t>(2100 * 8);
  RepeatTxnWorker w(1, [&](Txn& tx) {
    for (std::size_t i = 0; i < 2100; ++i) {
      tx.store(data[i * 8], std::uint64_t{1});
    }
  });
  m.set_worker(0, &w);
  m.run();
  const HtmStats s = m.stats();
  // Hardware blindly retries max_retries(10) times: 11 capacity aborts.
  EXPECT_EQ(s.aborts_capacity, 11u);
  EXPECT_EQ(s.serialized, 1u);
}

TEST(DesMachine, HleSerializesAfterFirstAbort) {
  mem::SimHeap heap(1 << 16);
  DesMachine m(model::has_c(), HtmKind::kHle, 4, heap);
  auto* hot = heap.alloc_one<std::uint64_t>(0);
  std::vector<std::unique_ptr<RepeatTxnWorker>> workers;
  for (int t = 0; t < 4; ++t) {
    workers.push_back(std::make_unique<RepeatTxnWorker>(
        50, [hot](Txn& tx) { tx.fetch_add(*hot, std::uint64_t{1}); }));
    m.set_worker(static_cast<std::uint32_t>(t), workers.back().get());
  }
  m.run();
  EXPECT_EQ(*hot, 200u);
  const HtmStats s = m.stats();
  EXPECT_GT(s.serialized, 0u);
  // With HLE, no transaction ever retries speculatively after an abort:
  // every abort converts into (at most) one serialization.
  EXPECT_GE(s.total_aborts(), s.serialized);
}

TEST(DesMachine, AtomicCasContentionQueues) {
  mem::SimHeap heap(1 << 16);
  const auto& cfg = model::has_c();
  DesMachine m(cfg, HtmKind::kRtm, 8, heap);
  auto* hot = heap.alloc_one<std::uint64_t>(0);
  std::vector<std::unique_ptr<RepeatOpWorker>> workers;
  for (int t = 0; t < 8; ++t) {
    workers.push_back(std::make_unique<RepeatOpWorker>(
        10, [hot](ThreadCtx& ctx) {
          ctx.fetch_add(*hot, std::uint64_t{1});
        }));
    m.set_worker(static_cast<std::uint32_t>(t), workers.back().get());
  }
  m.run();
  EXPECT_EQ(*hot, 80u);
  // 80 atomics on one line must serialize on the line-transfer window.
  EXPECT_GE(m.makespan(), 79 * cfg.atomics.line_transfer_ns);
  EXPECT_EQ(m.stats().atomic_acc, 80u);
}

TEST(DesMachine, UncontendedAtomicsRunInParallel) {
  mem::SimHeap heap(1 << 20);
  const auto& cfg = model::has_c();
  DesMachine m(cfg, HtmKind::kRtm, 8, heap);
  auto vars = heap.alloc<std::uint64_t>(8 * 8);
  std::vector<std::unique_ptr<RepeatOpWorker>> workers;
  for (int t = 0; t < 8; ++t) {
    auto* slot = &vars[static_cast<std::size_t>(t) * 8];
    workers.push_back(std::make_unique<RepeatOpWorker>(
        100, [slot](ThreadCtx& ctx) {
          ctx.fetch_add(*slot, std::uint64_t{1});
        }));
    m.set_worker(static_cast<std::uint32_t>(t), workers.back().get());
  }
  m.run();
  // Independent lines: each thread's 100 ACCs proceed without queuing.
  EXPECT_LT(m.makespan(), 101 * cfg.atomics.acc_ns);
}

TEST(DesMachine, CasSemantics) {
  mem::SimHeap heap(1 << 16);
  DesMachine m(model::has_c(), HtmKind::kRtm, 1, heap);
  auto* x = heap.alloc_one<std::uint64_t>(7);
  bool first = false, second = false;
  RepeatOpWorker w(1, [&](ThreadCtx& ctx) {
    first = ctx.cas(*x, std::uint64_t{7}, std::uint64_t{9});
    second = ctx.cas(*x, std::uint64_t{7}, std::uint64_t{11});
  });
  m.set_worker(0, &w);
  m.run();
  EXPECT_TRUE(first);
  EXPECT_FALSE(second);
  EXPECT_EQ(*x, 9u);
}

TEST(DesMachine, ExplicitAbortRetriesThenSerializedPathSkips) {
  mem::SimHeap heap(1 << 16);
  DesMachine m(model::has_c(), HtmKind::kRtm, 1, heap);
  auto* x = heap.alloc_one<std::uint64_t>(0);
  RepeatTxnWorker w(1, [x](Txn& tx) {
    tx.store(*x, std::uint64_t{1});
    tx.abort();  // operator decides to do nothing
  });
  m.set_worker(0, &w);
  m.run();
  // Aborting retries until the retry budget forces serialization, where an
  // explicit abort completes as a no-op: the store must not be visible.
  EXPECT_EQ(*x, 0u);
  const HtmStats s = m.stats();
  EXPECT_EQ(s.serialized, 1u);
  EXPECT_GT(s.aborts_explicit, 0u);
}

TEST(DesMachine, DoneCallbackReportsOutcome) {
  mem::SimHeap heap(1 << 16);
  DesMachine m(model::has_c(), HtmKind::kRtm, 1, heap);
  auto* x = heap.alloc_one<std::uint64_t>(0);
  TxnOutcome seen;
  bool called = false;
  class StageOnce : public Worker {
   public:
    StageOnce(std::uint64_t* x, TxnOutcome* out, bool* called)
        : x_(x), out_(out), called_(called) {}
    bool next(ThreadCtx& ctx) override {
      if (done_) return false;
      done_ = true;
      ctx.stage_transaction(
          [x = x_](Txn& tx) { tx.store(*x, std::uint64_t{3}); },
          [out = out_, called = called_](ThreadCtx&, const TxnOutcome& o) {
            *out = o;
            *called = true;
          });
      return true;
    }
   private:
    std::uint64_t* x_;
    TxnOutcome* out_;
    bool* called_;
    bool done_ = false;
  };
  StageOnce w(x, &seen, &called);
  m.set_worker(0, &w);
  m.run();
  EXPECT_TRUE(called);
  EXPECT_FALSE(seen.serialized);
  EXPECT_EQ(seen.aborts, 0);
  EXPECT_GT(seen.end_ns, seen.start_ns);
}

TEST(DesMachine, QuiescenceHookRunsPhases) {
  mem::SimHeap heap(1 << 16);
  DesMachine m(model::has_c(), HtmKind::kRtm, 4, heap);
  auto* counter = heap.alloc_one<std::uint64_t>(0);
  struct PhaseWorker : Worker {
    std::uint64_t* counter;
    int budget = 0;
    bool next(ThreadCtx& ctx) override {
      if (budget == 0) return false;
      --budget;
      ctx.fetch_add(*counter, std::uint64_t{1});
      return true;
    }
  };
  std::vector<PhaseWorker> workers(4);
  for (int t = 0; t < 4; ++t) {
    workers[static_cast<std::size_t>(t)].counter = counter;
    workers[static_cast<std::size_t>(t)].budget = 10;
    m.set_worker(static_cast<std::uint32_t>(t), &workers[static_cast<std::size_t>(t)]);
  }
  int phases = 0;
  m.set_quiescence_hook([&](DesMachine& machine) {
    if (++phases >= 3) return false;
    for (auto& w : workers) w.budget = 10;
    machine.barrier_release(100.0);
    return true;
  });
  m.run();
  EXPECT_EQ(phases, 3);
  EXPECT_EQ(*counter, 3u * 4u * 10u);
}

TEST(DesMachine, ScheduledCallbacksFireInOrder) {
  mem::SimHeap heap(1 << 16);
  DesMachine m(model::has_c(), HtmKind::kRtm, 1, heap);
  std::vector<int> order;
  m.schedule_callback(300.0, [&] { order.push_back(3); });
  m.schedule_callback(100.0, [&] { order.push_back(1); });
  m.schedule_callback(200.0, [&] { order.push_back(2); });
  m.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 3);
  EXPECT_DOUBLE_EQ(m.now(), 300.0);
}

TEST(DesMachine, WakeRestartsParkedThread) {
  mem::SimHeap heap(1 << 16);
  DesMachine m(model::has_c(), HtmKind::kRtm, 1, heap);
  auto* x = heap.alloc_one<std::uint64_t>(0);
  struct Pollable : Worker {
    std::uint64_t* x;
    bool has_work = false;
    bool next(ThreadCtx& ctx) override {
      if (!has_work) return false;
      has_work = false;
      ctx.store(*x, ctx.now() >= 500.0 ? std::uint64_t{1} : std::uint64_t{2});
      return true;
    }
  };
  Pollable w;
  w.x = x;
  m.set_worker(0, &w);
  m.schedule_callback(500.0, [&] {
    w.has_work = true;
    m.wake(0);
  });
  m.run();
  // The thread resumed at (not before) the callback time.
  EXPECT_EQ(*x, 1u);
}

TEST(DesMachine, DeterministicAcrossRuns) {
  auto run_once = [] {
    mem::SimHeap heap(1 << 18);
    DesMachine m(model::bgq(), HtmKind::kBgqShort, 16, heap, /*seed=*/77);
    auto* hot = heap.alloc_one<std::uint64_t>(0);
    std::vector<std::unique_ptr<RepeatTxnWorker>> workers;
    for (int t = 0; t < 16; ++t) {
      workers.push_back(std::make_unique<RepeatTxnWorker>(
          20, [hot](Txn& tx) { tx.fetch_add(*hot, std::uint64_t{1}); }));
      m.set_worker(static_cast<std::uint32_t>(t), workers.back().get());
    }
    m.run();
    return std::tuple(m.makespan(), m.stats().total_aborts(),
                      m.stats().serialized, *hot);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(DesMachine, ResetClocksBetweenPhases) {
  mem::SimHeap heap(1 << 16);
  DesMachine m(model::has_c(), HtmKind::kRtm, 2, heap);
  auto* x = heap.alloc_one<std::uint64_t>(0);
  RepeatOpWorker w0(5, [x](ThreadCtx& ctx) { ctx.fetch_add(*x, std::uint64_t{1}); });
  RepeatOpWorker w1(5, [x](ThreadCtx& ctx) { ctx.fetch_add(*x, std::uint64_t{1}); });
  m.set_worker(0, &w0);
  m.set_worker(1, &w1);
  m.run();
  const double first = m.makespan();
  EXPECT_GT(first, 0.0);
  m.reset_clocks(0.0, /*clear_stats=*/true);
  EXPECT_DOUBLE_EQ(m.makespan(), 0.0);
  EXPECT_EQ(m.stats().atomic_acc, 0u);
}

}  // namespace
}  // namespace aam::htm
