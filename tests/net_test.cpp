#include <gtest/gtest.h>

#include "net/cluster.hpp"

namespace aam::net {
namespace {

using model::HtmKind;

// A worker that polls its node's AM queue and runs handlers until drained.
class PollWorker : public htm::Worker {
 public:
  explicit PollWorker(Cluster& cluster) : cluster_(cluster) {}
  bool next(htm::ThreadCtx& ctx) override {
    return cluster_.poll_and_handle(ctx);
  }

 private:
  Cluster& cluster_;
};

// A worker that runs a setup function once, then polls.
class SendThenPollWorker : public htm::Worker {
 public:
  SendThenPollWorker(Cluster& cluster, std::function<void(htm::ThreadCtx&)> fn)
      : cluster_(cluster), fn_(std::move(fn)) {}
  bool next(htm::ThreadCtx& ctx) override {
    if (fn_) {
      auto fn = std::move(fn_);
      fn_ = nullptr;
      fn(ctx);
      return true;
    }
    return cluster_.poll_and_handle(ctx);
  }

 private:
  Cluster& cluster_;
  std::function<void(htm::ThreadCtx&)> fn_;
};

TEST(Cluster, ThreadNodeMapping) {
  mem::SimHeap heap(1 << 16);
  Cluster cluster(model::bgq(), HtmKind::kBgqShort, 4, 16, heap);
  EXPECT_EQ(cluster.num_nodes(), 4);
  EXPECT_EQ(cluster.machine().num_threads(), 64);
  EXPECT_EQ(cluster.node_of_thread(0), 0);
  EXPECT_EQ(cluster.node_of_thread(15), 0);
  EXPECT_EQ(cluster.node_of_thread(16), 1);
  EXPECT_EQ(cluster.node_of_thread(63), 3);
  EXPECT_EQ(cluster.thread_of(2, 3), 35u);
}

TEST(Cluster, DeliversMessageWithLatency) {
  mem::SimHeap heap(1 << 16);
  Cluster cluster(model::has_p(), HtmKind::kRtm, 2, 1, heap);
  double delivered_at = -1;
  std::uint64_t seen_arg = 0;
  const auto h = cluster.register_handler(
      [&](htm::ThreadCtx& ctx, const Message& msg) {
        delivered_at = ctx.now();
        seen_arg = msg.arg0;
      });
  SendThenPollWorker sender(cluster, [&](htm::ThreadCtx& ctx) {
    cluster.send(ctx, 1, h, 42);
  });
  PollWorker receiver(cluster);
  cluster.machine().set_worker(0, &sender);
  cluster.machine().set_worker(1, &receiver);
  cluster.machine().run();

  EXPECT_EQ(seen_arg, 42u);
  const auto& n = cluster.config().net;
  // Delivery at >= o + L + header bytes; dispatch charged at the receiver.
  EXPECT_GE(delivered_at, n.overhead_ns + n.latency_ns);
  EXPECT_EQ(cluster.stats().messages_sent, 1u);
  EXPECT_EQ(cluster.in_flight(), 0u);
}

TEST(Cluster, WakesParkedReceiver) {
  mem::SimHeap heap(1 << 16);
  Cluster cluster(model::has_p(), HtmKind::kRtm, 2, 1, heap);
  int handled = 0;
  const auto h = cluster.register_handler(
      [&](htm::ThreadCtx&, const Message&) { ++handled; });
  // The receiver parks immediately (empty queue), then the sender's message
  // must wake it.
  PollWorker receiver(cluster);
  SendThenPollWorker sender(cluster, [&](htm::ThreadCtx& ctx) {
    ctx.compute(5000.0);  // send late, after the receiver parked
    cluster.send(ctx, 1, h, 1);
  });
  cluster.machine().set_worker(0, &sender);
  cluster.machine().set_worker(1, &receiver);
  cluster.machine().run();
  EXPECT_EQ(handled, 1);
}

TEST(Cluster, PayloadRoundTrips) {
  mem::SimHeap heap(1 << 16);
  Cluster cluster(model::bgq(), HtmKind::kBgqShort, 2, 1, heap);
  std::vector<std::uint64_t> received;
  const auto h = cluster.register_handler(
      [&](htm::ThreadCtx&, const Message& msg) {
        received = msg.payload;
      });
  SendThenPollWorker sender(cluster, [&](htm::ThreadCtx& ctx) {
    cluster.send(ctx, 1, h, 0, 0, {7, 8, 9});
  });
  PollWorker receiver(cluster);
  cluster.machine().set_worker(0, &sender);
  cluster.machine().set_worker(1, &receiver);
  cluster.machine().run();
  EXPECT_EQ(received, (std::vector<std::uint64_t>{7, 8, 9}));
  EXPECT_EQ(cluster.stats().items_sent, 3u);
  EXPECT_EQ(cluster.stats().bytes_sent, 32u + 24u);
}

TEST(Coalescer, FlushesAtBatchBoundary) {
  mem::SimHeap heap(1 << 16);
  Cluster cluster(model::bgq(), HtmKind::kBgqShort, 2, 1, heap);
  std::vector<std::size_t> batch_sizes;
  const auto h = cluster.register_handler(
      [&](htm::ThreadCtx&, const Message& msg) {
        batch_sizes.push_back(msg.payload.size());
      });
  SendThenPollWorker sender(cluster, [&](htm::ThreadCtx& ctx) {
    Coalescer coalescer(cluster, h, /*batch=*/4);
    for (std::uint64_t i = 0; i < 10; ++i) coalescer.add(ctx, 1, i);
    coalescer.flush_all(ctx);
  });
  PollWorker receiver(cluster);
  cluster.machine().set_worker(0, &sender);
  cluster.machine().set_worker(1, &receiver);
  cluster.machine().run();
  ASSERT_EQ(batch_sizes.size(), 3u);
  EXPECT_EQ(batch_sizes[0], 4u);
  EXPECT_EQ(batch_sizes[1], 4u);
  EXPECT_EQ(batch_sizes[2], 2u);
  // Coalescing 10 items into 3 messages.
  EXPECT_EQ(cluster.stats().messages_sent, 3u);
  EXPECT_EQ(cluster.stats().items_sent, 10u);
}

TEST(Coalescer, SeparatesDestinations) {
  mem::SimHeap heap(1 << 16);
  Cluster cluster(model::bgq(), HtmKind::kBgqShort, 3, 1, heap);
  std::vector<int> dst_of_msg;
  const auto h = cluster.register_handler(
      [&](htm::ThreadCtx&, const Message& msg) {
        dst_of_msg.push_back(msg.dst_node);
      });
  SendThenPollWorker sender(cluster, [&](htm::ThreadCtx& ctx) {
    Coalescer coalescer(cluster, h, 8);
    coalescer.add(ctx, 1, 11);
    coalescer.add(ctx, 2, 22);
    coalescer.flush_all(ctx);
  });
  PollWorker r1(cluster), r2(cluster);
  cluster.machine().set_worker(0, &sender);
  cluster.machine().set_worker(1, &r1);
  cluster.machine().set_worker(2, &r2);
  cluster.machine().run();
  EXPECT_EQ(dst_of_msg.size(), 2u);
}

TEST(RemoteAtomics, AppliesCasAndAcc) {
  mem::SimHeap heap(1 << 16);
  Cluster cluster(model::bgq(), HtmKind::kBgqShort, 2, 1, heap);
  auto* word = heap.alloc_one<std::uint64_t>(5);
  auto* counter = heap.alloc_one<std::uint64_t>(0);
  auto* rank = heap.alloc_one<double>(0.5);
  RemoteAtomics rmw(cluster);
  SendThenPollWorker sender(cluster, [&](htm::ThreadCtx& ctx) {
    rmw.cas_u64(ctx, *word, 5, 9);
    rmw.cas_u64(ctx, *word, 5, 11);  // must fail: word is 9 by then
    rmw.acc_u64(ctx, *counter, 3);
    rmw.acc_f64(ctx, *rank, 0.25);
  });
  cluster.machine().set_worker(0, &sender);
  cluster.machine().run();
  EXPECT_EQ(*word, 9u);
  EXPECT_EQ(*counter, 3u);
  EXPECT_DOUBLE_EQ(*rank, 0.75);
  EXPECT_EQ(rmw.issued(), 4u);
  EXPECT_EQ(rmw.applied(), 4u);
  EXPECT_GT(rmw.last_completion(), 0.0);
}

TEST(RemoteAtomics, PipelinedIssueIsCheap) {
  mem::SimHeap heap(1 << 20);
  Cluster cluster(model::bgq(), HtmKind::kBgqShort, 2, 1, heap);
  auto targets = heap.alloc<std::uint64_t>(1024 * 8);
  RemoteAtomics rmw(cluster);
  double sender_done = 0;
  SendThenPollWorker sender(cluster, [&](htm::ThreadCtx& ctx) {
    for (int i = 0; i < 1024; ++i) {
      rmw.acc_u64(ctx, targets[static_cast<std::size_t>(i) * 8], 1);
    }
    sender_done = ctx.now();
  });
  cluster.machine().set_worker(0, &sender);
  cluster.machine().run();
  const auto& n = cluster.config().net;
  // The sender pays only the issue gap per op, not the full round trip.
  EXPECT_NEAR(sender_done, 1024 * n.rmw_issue_ns, 1024 * n.rmw_issue_ns * 0.1);
  // Completion trails the issue stream by roughly the remote latency.
  EXPECT_GE(rmw.last_completion(), sender_done);
  EXPECT_LT(rmw.last_completion(), sender_done + 2 * n.rmw_latency_ns);
}

TEST(RemoteAtomics, TargetContentionOnHotLine) {
  mem::SimHeap heap(1 << 16);
  Cluster cluster(model::bgq(), HtmKind::kBgqShort, 2, 1, heap);
  auto* hot = heap.alloc_one<std::uint64_t>(0);
  RemoteAtomics rmw(cluster);
  SendThenPollWorker sender(cluster, [&](htm::ThreadCtx& ctx) {
    for (int i = 0; i < 256; ++i) rmw.acc_u64(ctx, *hot, 1);
  });
  cluster.machine().set_worker(0, &sender);
  cluster.machine().run();
  EXPECT_EQ(*hot, 256u);
  // All 256 updates applied exactly (no lost updates at the NIC).
}

}  // namespace
}  // namespace aam::net
