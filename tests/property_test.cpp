// Property-based tests: randomized workloads checked against oracles.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "algorithms/bfs.hpp"
#include "algorithms/boruvka.hpp"
#include "algorithms/coloring.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/st_connectivity.hpp"
#include "analysis/signature.hpp"
#include "check/check.hpp"
#include "core/runtime.hpp"
#include "graph/generators.hpp"
#include "graph/gstats.hpp"
#include "htm/des_engine.hpp"
#include "mem/footprint.hpp"
#include "util/rng.hpp"

namespace aam {
namespace {

using model::HtmKind;

// ---------------------------------------------------------------------------
// DES transactions are serializable: a random mix of read-modify-write
// transactions over a small array must end in a state reachable by SOME
// serial order — for commutative increments, that simply means no update
// is lost, for every machine model and thread count.
// ---------------------------------------------------------------------------

struct SerializabilityCase {
  const model::MachineConfig* config;
  HtmKind kind;
  int threads;
};

class SerializabilityTest
    : public ::testing::TestWithParam<SerializabilityCase> {};

TEST_P(SerializabilityTest, RandomIncrementsAreNeverLost) {
  const auto& param = GetParam();
  mem::SimHeap heap(1 << 20);
  htm::DesMachine machine(*param.config, param.kind, param.threads, heap,
                          /*seed=*/1234);
  constexpr int kSlots = 32;
  auto slots = heap.alloc<std::uint64_t>(kSlots * 8);

  class RandomTxnWorker : public htm::Worker {
   public:
    RandomTxnWorker(std::span<std::uint64_t> slots, util::Rng rng, int txns)
        : slots_(slots), rng_(rng), left_(txns) {}
    bool next(htm::ThreadCtx& ctx) override {
      if (left_ == 0) return false;
      --left_;
      // Each transaction increments 1-4 random slots.
      targets_.clear();
      const int k = 1 + static_cast<int>(rng_.next_below(4));
      for (int i = 0; i < k; ++i) {
        targets_.push_back(rng_.next_below(kSlots) * 8);
      }
      ++planned_;
      ctx.stage_transaction([this](htm::Txn& tx) {
        for (std::uint64_t t : targets_) {
          tx.fetch_add(slots_[t], std::uint64_t{1});
        }
      });
      return true;
    }
    std::uint64_t planned_increments = 0;
    std::vector<std::uint64_t> all_targets;

    // Record the planned multiset of increments for the oracle.
    std::vector<std::uint64_t> targets_;
    int planned_ = 0;

   private:
    std::span<std::uint64_t> slots_;
    util::Rng rng_;
    int left_ = 0;
  };

  // Count expected increments by replaying each worker's RNG.
  const util::Rng root(777);
  std::uint64_t expected_total = 0;
  for (int t = 0; t < param.threads; ++t) {
    util::Rng rng = root.fork(static_cast<std::uint64_t>(t));
    for (int i = 0; i < 40; ++i) {
      const std::uint64_t k = 1 + rng.next_below(4);
      expected_total += k;
      for (std::uint64_t j = 0; j < k; ++j) rng.next_below(kSlots);
    }
  }

  std::vector<std::unique_ptr<RandomTxnWorker>> workers;
  for (int t = 0; t < param.threads; ++t) {
    workers.push_back(std::make_unique<RandomTxnWorker>(
        slots, root.fork(static_cast<std::uint64_t>(t)), 40));
    machine.set_worker(static_cast<std::uint32_t>(t), workers.back().get());
  }
  machine.run();

  std::uint64_t total = 0;
  for (int s = 0; s < kSlots; ++s) total += slots[s * 8];
  EXPECT_EQ(total, expected_total);
  EXPECT_EQ(machine.stats().completed(),
            static_cast<std::uint64_t>(param.threads) * 40u);
}

INSTANTIATE_TEST_SUITE_P(
    MachinesAndThreads, SerializabilityTest,
    ::testing::Values(
        SerializabilityCase{&model::has_c(), HtmKind::kRtm, 1},
        SerializabilityCase{&model::has_c(), HtmKind::kRtm, 8},
        SerializabilityCase{&model::has_c(), HtmKind::kHle, 8},
        SerializabilityCase{&model::has_p(), HtmKind::kRtm, 24},
        SerializabilityCase{&model::has_p(), HtmKind::kHle, 24},
        SerializabilityCase{&model::bgq(), HtmKind::kBgqShort, 16},
        SerializabilityCase{&model::bgq(), HtmKind::kBgqShort, 64},
        SerializabilityCase{&model::bgq(), HtmKind::kBgqLong, 64}),
    [](const auto& info) {
      std::string name = info.param.config->name + "_" +
                         model::to_string(info.param.kind) + "_T" +
                         std::to_string(info.param.threads);
      std::erase(name, '-');
      return name;
    });

// ---------------------------------------------------------------------------
// Fuzz EpochSet / WordMap against STL references.
// ---------------------------------------------------------------------------

TEST(PropertyEpochSet, MatchesStdSetUnderRandomOps) {
  util::Rng rng(42);
  mem::EpochSet set(8);
  std::unordered_set<std::uint64_t> reference;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t key = rng.next_below(300);
      const bool inserted = set.insert(key);
      const bool ref_inserted = reference.insert(key).second;
      ASSERT_EQ(inserted, ref_inserted) << "round " << round << " key " << key;
    }
    ASSERT_EQ(set.size(), reference.size());
    for (std::uint64_t key = 0; key < 300; ++key) {
      ASSERT_EQ(set.contains(key), reference.count(key) > 0) << key;
    }
    set.clear();
    reference.clear();
  }
}

TEST(PropertyWordMap, MatchesStdMapUnderRandomOps) {
  util::Rng rng(43);
  mem::WordMap map(8);
  std::unordered_map<std::uintptr_t, std::uint64_t> reference;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 200; ++i) {
      const std::uintptr_t key = rng.next_below(128) * 8;
      const std::uint64_t value = rng();
      map.insert_or_assign(key, value);
      reference[key] = value;
    }
    ASSERT_EQ(map.size(), reference.size());
    for (const auto& [key, value] : reference) {
      std::uint64_t got = 0;
      ASSERT_TRUE(map.lookup(key, got));
      ASSERT_EQ(got, value);
    }
    std::uint64_t got = 0;
    ASSERT_FALSE(map.lookup(129 * 8, got));
    map.clear();
    reference.clear();
  }
}

// ---------------------------------------------------------------------------
// Transactional sub-word splicing never corrupts neighbours: random typed
// stores through Txn vs a plain reference array.
// ---------------------------------------------------------------------------

TEST(PropertyTxnWords, SubWordStoresMatchReferenceModel) {
  mem::SimHeap heap(1 << 20);
  htm::DesMachine machine(model::has_c(), HtmKind::kRtm, 1, heap, 7);
  constexpr std::size_t kWords = 64;
  auto data = heap.alloc<std::uint32_t>(kWords * 2);  // 2 u32 per word
  std::vector<std::uint32_t> reference(kWords * 2, 0);

  class Fuzzer : public htm::Worker {
   public:
    Fuzzer(std::span<std::uint32_t> data, std::vector<std::uint32_t>& ref,
           util::Rng rng, int rounds)
        : data_(data), ref_(ref), rng_(rng), left_(rounds) {}
    bool next(htm::ThreadCtx& ctx) override {
      if (left_ == 0) return false;
      --left_;
      // Plan 8 random u32 stores; apply to the reference model too.
      plan_.clear();
      for (int i = 0; i < 8; ++i) {
        const std::size_t idx = rng_.next_below(data_.size());
        const auto value = static_cast<std::uint32_t>(rng_());
        plan_.emplace_back(idx, value);
        ref_[idx] = value;
      }
      ctx.stage_transaction([this](htm::Txn& tx) {
        for (const auto& [idx, value] : plan_) {
          tx.store(data_[idx], value);
        }
      });
      return true;
    }

   private:
    std::span<std::uint32_t> data_;
    std::vector<std::uint32_t>& ref_;
    util::Rng rng_;
    int left_;
    std::vector<std::pair<std::size_t, std::uint32_t>> plan_;
  };

  Fuzzer fuzzer(data, reference, util::Rng(99), 500);
  machine.set_worker(0, &fuzzer);
  machine.run();
  for (std::size_t i = 0; i < reference.size(); ++i) {
    ASSERT_EQ(data[i], reference[i]) << i;
  }
}

// ---------------------------------------------------------------------------
// Generator properties.
// ---------------------------------------------------------------------------

class KroneckerScaleTest : public ::testing::TestWithParam<int> {};

TEST_P(KroneckerScaleTest, SizeSkewAndDeterminism) {
  const int scale = GetParam();
  util::Rng r1(5), r2(5);
  graph::KroneckerParams p;
  p.scale = scale;
  p.edge_factor = 8;
  const graph::Graph a = graph::kronecker(p, r1);
  const graph::Graph b = graph::kronecker(p, r2);
  EXPECT_EQ(a.num_vertices(), graph::Vertex{1} << scale);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  const auto s = graph::degree_stats(a);
  // Power-law signature: the top 1% of vertices hold a large edge share.
  EXPECT_GT(s.top1pct_edge_share, 0.08);
}

INSTANTIATE_TEST_SUITE_P(Scales, KroneckerScaleTest,
                         ::testing::Values(10, 12, 14));

TEST(PropertyErdosRenyi, EdgeCountConcentratesAroundExpectation) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    util::Rng rng(seed);
    const graph::Vertex n = 3000;
    const double p = 0.004;
    const auto edges = graph::erdos_renyi_edges(n, p, rng);
    const double expected = p * n * (n - 1) / 2.0;
    EXPECT_NEAR(static_cast<double>(edges.size()), expected,
                5 * std::sqrt(expected));
  }
}

// ---------------------------------------------------------------------------
// AamRuntime under randomized batch sizes: results never depend on M.
// ---------------------------------------------------------------------------

class BatchInvarianceTest : public ::testing::TestWithParam<int> {};

TEST_P(BatchInvarianceTest, HistogramIndependentOfBatchSize) {
  mem::SimHeap heap(1 << 22);
  htm::DesMachine machine(model::bgq(), HtmKind::kBgqShort, 16, heap, 5);
  constexpr std::uint64_t kItems = 5000;
  constexpr std::uint64_t kBuckets = 64;
  auto hist = heap.alloc<std::uint64_t>(kBuckets * 8);
  core::AamRuntime rt(machine, {.batch = GetParam()});
  rt.for_each(kItems, [&](auto& access, std::uint64_t i) {
    access.fetch_add(hist[(util::mix64(i) % kBuckets) * 8], std::uint64_t{1});
  });
  std::uint64_t total = 0;
  for (std::uint64_t b = 0; b < kBuckets; ++b) total += hist[b * 8];
  EXPECT_EQ(total, kItems);
  // Spot-check one bucket against the deterministic hash.
  std::uint64_t expect0 = 0;
  for (std::uint64_t i = 0; i < kItems; ++i) {
    if (util::mix64(i) % kBuckets == 0) ++expect0;
  }
  EXPECT_EQ(hist[0], expect0);
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchInvarianceTest,
                         ::testing::Values(1, 3, 17, 128, 1000));

// ---------------------------------------------------------------------------
// Dynamic footprints are contained in the static effect signatures: under
// --check=all-equivalent instrumentation, every algorithm on every
// mechanism stays inside its operator's statically derived may-read/
// may-write label sets (no static-escape violations), and the per-batch
// word maxima the checker observes are bounded by `batch size x per-item
// static element count` evaluated at the graph's max degree (chains
// bounded by |V|). Two machine models cover both conflict granularities.
// ---------------------------------------------------------------------------

struct StaticContainmentCase {
  const model::MachineConfig* config;
  HtmKind kind;
  int threads;
  core::Mechanism mechanism;
};

class StaticContainmentTest
    : public ::testing::TestWithParam<StaticContainmentCase> {};

TEST_P(StaticContainmentTest, DynamicFootprintWithinStaticSignature) {
  const auto& param = GetParam();
  util::Rng rng(11);
  graph::KroneckerParams gp;
  gp.scale = 10;
  gp.edge_factor = 4;
  const graph::Graph g = graph::kronecker(gp, rng);
  util::Rng wrng(12);
  const auto wedges = graph::kronecker_edges(gp, wrng);
  const auto weights = graph::random_weights(wedges.size(), 1.0f, 100.0f, wrng);
  const graph::Graph wg = graph::Graph::from_weighted_edges(
      g.num_vertices(), wedges, weights, /*undirected=*/true);
  const auto dmax =
      static_cast<int>(std::max(graph::degree_stats(g).max,
                                graph::degree_stats(wg).max));
  const auto n = static_cast<int>(g.num_vertices());

  const auto signatures = analysis::analyze_all();
  auto signature_of = [&](core::OperatorId op) -> const auto& {
    return signatures[static_cast<std::size_t>(op) - 1];  // no kUnknown slot
  };

  // Runs one algorithm under full checking on a fresh machine and verifies
  // both containment properties.
  auto audit = [&](const char* what, auto&& run) {
    mem::SimHeap heap(1 << 24);
    htm::DesMachine machine(*param.config, param.kind, param.threads, heap,
                            /*seed=*/3);
    check::Checker checker(machine,
                           {.races = true, .serial = true, .footprint = true});
    run(machine, checker);
    std::ostringstream report;
    checker.report(report);
    EXPECT_TRUE(checker.passed()) << what << ": " << report.str();
    for (core::OperatorId op : core::all_operator_ids()) {
      const auto& stats = checker.footprint_stats(op);
      if (stats.batches == 0) continue;
      const auto& sig = signature_of(op);
      ASSERT_EQ(sig.op, op);
      // Distinct 8-byte words <= distinct elements (elements are >= 4
      // bytes), so the static element bound also bounds the word count.
      EXPECT_LE(stats.max_read_words,
                stats.items_at_max_read * sig.read_elems(dmax, n))
          << what << " reads of " << core::to_string(op);
      EXPECT_LE(stats.max_write_words,
                stats.items_at_max_write * sig.write_elems(dmax, n))
          << what << " writes of " << core::to_string(op);
    }
  };

  audit("bfs", [&](htm::DesMachine& machine, check::Checker& checker) {
    algorithms::BfsOptions options;
    options.root = graph::pick_nonisolated_vertex(g);
    options.mechanism = param.mechanism;
    options.batch = 8;
    options.decorator = &checker;
    algorithms::run_bfs(machine, g, options);
  });
  audit("pagerank", [&](htm::DesMachine& machine, check::Checker& checker) {
    algorithms::PageRankOptions options;
    options.iterations = 2;
    options.mechanism = param.mechanism;
    options.batch = 8;
    options.decorator = &checker;
    algorithms::run_pagerank(machine, g, options);
  });
  audit("sssp", [&](htm::DesMachine& machine, check::Checker& checker) {
    algorithms::SsspOptions options;
    options.source = graph::pick_nonisolated_vertex(wg);
    options.mechanism = param.mechanism;
    options.batch = 8;
    options.decorator = &checker;
    algorithms::run_sssp(machine, wg, options);
  });
  audit("boruvka", [&](htm::DesMachine& machine, check::Checker& checker) {
    algorithms::BoruvkaOptions options;
    options.mechanism = param.mechanism;
    options.batch = 4;
    options.decorator = &checker;
    algorithms::run_boruvka(machine, wg, options);
  });
  audit("coloring", [&](htm::DesMachine& machine, check::Checker& checker) {
    algorithms::ColoringOptions options;
    options.mechanism = param.mechanism;
    options.batch = 8;
    options.decorator = &checker;
    algorithms::run_boman_coloring(machine, g, options);
  });
  audit("st-conn", [&](htm::DesMachine& machine, check::Checker& checker) {
    algorithms::StConnOptions options;
    options.s = graph::pick_nonisolated_vertex(g);
    options.t = graph::pick_nonisolated_vertex(g, /*salt=*/1);
    if (options.s == options.t) options.t = options.s == 0 ? 1 : 0;
    options.mechanism = param.mechanism;
    options.batch = 8;
    options.decorator = &checker;
    algorithms::run_st_connectivity(machine, g, options);
  });
}

INSTANTIATE_TEST_SUITE_P(
    MachinesAndMechanisms, StaticContainmentTest,
    ::testing::Values(
        StaticContainmentCase{&model::bgq(), HtmKind::kBgqShort, 16,
                              core::Mechanism::kHtmCoarsened},
        StaticContainmentCase{&model::bgq(), HtmKind::kBgqShort, 16,
                              core::Mechanism::kAtomicOps},
        StaticContainmentCase{&model::bgq(), HtmKind::kBgqShort, 16,
                              core::Mechanism::kFineLocks},
        StaticContainmentCase{&model::has_c(), HtmKind::kRtm, 8,
                              core::Mechanism::kHtmCoarsened},
        StaticContainmentCase{&model::has_c(), HtmKind::kRtm, 8,
                              core::Mechanism::kSerialLock},
        StaticContainmentCase{&model::has_c(), HtmKind::kRtm, 8,
                              core::Mechanism::kStm}),
    [](const auto& info) {
      std::string name = info.param.config->name + "_" +
                         model::to_string(info.param.kind) + "_" +
                         core::to_string(info.param.mechanism);
      std::erase(name, '-');
      return name;
    });

}  // namespace
}  // namespace aam
