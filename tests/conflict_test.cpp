// Conflict-model coverage (DESIGN.md §9): unit tests pinning the overlap
// formula to hand-computed footprints, structural properties of the
// recommendation table, and the rank-agreement property the model exists
// for — the statically recommended mechanism must stay within a 2x
// predicted-cost band of the empirically best one, both on a simulated
// scale-10 sweep run in-process and on the committed BENCH_wallclock.json
// (AAM_BENCH_WALLCLOCK) recorded at full bench scale.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "algorithms/bfs.hpp"
#include "algorithms/boruvka.hpp"
#include "algorithms/coloring.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/st_connectivity.hpp"
#include "analysis/capacity.hpp"
#include "analysis/conflict.hpp"
#include "analysis/recommend.hpp"
#include "analysis/signature.hpp"
#include "core/executor.hpp"
#include "graph/generators.hpp"
#include "graph/gstats.hpp"

namespace aam {
namespace {

// ---------------------------------------------------------------------------
// Overlap formula on hand-computed footprints.
//
// The model sums expected colliding (write, read-or-write) pairs over the
// 2x2 class grid {uniform, skewed}^2: a pair of skewed draws collides at
// kappa/U, every pair involving a uniform draw at 1/U.

TEST(SkewMultiplier, EndpointsAndMidpoint) {
  // s = 0: everything lands in the 99% tail -> kappa = 1/0.99.
  EXPECT_NEAR(analysis::skew_multiplier(0.0), 1.0 / 0.99, 1e-12);
  // s = 1: all mass on the top 1% of vertices -> kappa = 100.
  EXPECT_NEAR(analysis::skew_multiplier(1.0), 100.0, 1e-12);
  // s = 0.1: 100 * 0.01 + 0.81 / 0.99 = 1.8181...
  EXPECT_NEAR(analysis::skew_multiplier(0.1), 1.0 + 0.81 / 0.99, 1e-12);
}

TEST(SkewMultiplier, MonotoneAndAtLeastOne) {
  double prev = 0.0;
  for (double s = 0.0; s <= 1.0; s += 0.05) {
    const double k = analysis::skew_multiplier(s);
    EXPECT_GE(k, 1.0) << "kappa < 1 at s=" << s;
    if (s >= 0.05) {
      EXPECT_GE(k, prev) << "kappa not monotone at s=" << s;
    }
    prev = k;
  }
}

TEST(ExpectedOverlap, UniformOnlyFootprint) {
  // Wu=2, Ru=3, U=100: lambda = (Wu*(Wu+Ru) + Ru*Wu)/U = (10+6)/100.
  EXPECT_NEAR(analysis::expected_overlap(2, 3, 0, 0, 100, /*kappa=*/7.0),
              0.16, 1e-12);
}

TEST(ExpectedOverlap, SkewedOnlyFootprint) {
  // Ws=2, Rs=1, kappa=4, U=100: lambda = 4*(2*(2+1) + 1*2)/100 = 32/100.
  EXPECT_NEAR(analysis::expected_overlap(0, 0, 2, 1, 100, 4.0), 0.32, 1e-12);
}

TEST(ExpectedOverlap, MixedFootprint) {
  // Wu=1, Ws=1, no reads, U=50, kappa=10. Terms: (u,u)=1/50, (u,s)=1/50,
  // (s,u)=1/50, (s,s)=10/50 -> lambda = 13/50.
  EXPECT_NEAR(analysis::expected_overlap(1, 0, 1, 0, 50, 10.0), 0.26, 1e-12);
}

TEST(ExpectedOverlap, InverseInUniverseMonotoneInSkew) {
  const double base = analysis::expected_overlap(2, 4, 3, 1, 1000, 2.0);
  EXPECT_NEAR(analysis::expected_overlap(2, 4, 3, 1, 2000, 2.0), base / 2,
              1e-12);
  EXPECT_GT(analysis::expected_overlap(2, 4, 3, 1, 1000, 8.0), base);
}

// ---------------------------------------------------------------------------
// Contention signatures: derived probabilities behave physically.

TEST(Contention, AbortProbabilityGrowsWithThreads) {
  const auto sigs = analysis::analyze_all();
  analysis::Workload w;
  w.scale = 10;
  w.vertices = 1u << 10;
  w.mean_degree = 8;
  w.skew = 0.3;
  for (const auto& sig : sigs) {
    w.threads = 2;
    const auto low = analysis::contention(sig, w, model::bgq(),
                                          model::HtmKind::kBgqShort);
    w.threads = 16;
    const auto high = analysis::contention(sig, w, model::bgq(),
                                           model::HtmKind::kBgqShort);
    EXPECT_LE(low.abort_prob, high.abort_prob)
        << core::to_string(sig.op) << ": abort prob fell with more threads";
    EXPECT_GE(low.conflict_prob, 0.0);
    EXPECT_LE(high.abort_prob, 1.0);
  }
}

TEST(Contention, LineGranularityShrinksUniverse) {
  // Haswell detects conflicts per 64-byte line over packed 8-byte elements:
  // an 8x smaller universe than BG/Q's 8-byte versioning grain (§5.5.1).
  const auto sigs = analysis::analyze_all();
  analysis::Workload w;
  w.vertices = 1u << 12;
  w.threads = 8;
  const auto on_bgq = analysis::contention(sigs.front(), w, model::bgq(),
                                           model::HtmKind::kBgqShort);
  const auto on_hasc = analysis::contention(sigs.front(), w, model::has_c(),
                                            model::HtmKind::kRtm);
  EXPECT_NEAR(on_bgq.universe_units, 8.0 * on_hasc.universe_units,
              on_bgq.universe_units * 1e-9);
  EXPECT_GE(on_hasc.conflict_prob, on_bgq.conflict_prob);
}

// ---------------------------------------------------------------------------
// Recommendation table structure.

TEST(Recommend, RanksAllMechanismsSortedAscending) {
  const auto sigs = analysis::analyze_all();
  const auto w = analysis::workload_for_scale(10, 4, /*threads=*/0,
                                              /*batch=*/16);
  const auto bounds = analysis::capacity_bounds(
      sigs, static_cast<int>(w.mean_degree + 0.5), w.chain);
  const auto recs = analysis::recommend(sigs, bounds, w);
  ASSERT_FALSE(recs.empty());
  for (const auto& rec : recs) {
    ASSERT_EQ(rec.ranked.size(), core::all_mechanisms().size());
    EXPECT_EQ(rec.best(), rec.ranked.front().mechanism);
    for (std::size_t i = 1; i < rec.ranked.size(); ++i) {
      EXPECT_LE(rec.ranked[i - 1].cost_ns, rec.ranked[i].cost_ns)
          << rec.machine << "/" << core::to_string(rec.op)
          << ": ranking not sorted";
    }
    for (const core::Mechanism m : core::all_mechanisms()) {
      EXPECT_GT(rec.cost_of(m), 0.0);
    }
  }
}

TEST(Recommend, OversizedBatchMarksHtmCapacityUnsafe) {
  const auto sigs = analysis::analyze_all();
  auto w = analysis::workload_for_scale(10, 4, 0, 16);
  w.batch = 1 << 20;  // far past any machine's speculative capacity
  const auto bounds = analysis::capacity_bounds(
      sigs, static_cast<int>(w.mean_degree + 0.5), w.chain);
  const auto recs =
      analysis::recommend_for(model::bgq(), model::HtmKind::kBgqShort, sigs,
                              bounds, w);
  for (const auto& rec : recs) {
    bool saw_htm = false;
    for (const auto& mc : rec.ranked) {
      if (mc.mechanism != core::Mechanism::kHtmCoarsened) continue;
      saw_htm = true;
      EXPECT_TRUE(mc.capacity_unsafe)
          << core::to_string(rec.op) << ": 2^20-operator batch not flagged";
    }
    EXPECT_TRUE(saw_htm);
    EXPECT_NE(rec.best(), core::Mechanism::kHtmCoarsened)
        << core::to_string(rec.op)
        << ": capacity-unsafe HTM still recommended";
  }
}

// ---------------------------------------------------------------------------
// Rank agreement: 6 algorithms x 2 machines at scale 10, simulated
// in-process. The empirically fastest fixed mechanism must score within a
// 2x predicted-cost band of the statically recommended one.

struct Inputs {
  graph::Graph g;
  graph::Graph wg;
  graph::Vertex root = 0;
  graph::Vertex st_t = 0;
};

Inputs make_inputs() {
  const std::uint64_t seed = 1;
  util::Rng rng(seed);
  graph::KroneckerParams params;
  params.scale = 10;
  params.edge_factor = 4;
  Inputs in;
  in.g = graph::kronecker(params, rng);
  in.root = graph::pick_nonisolated_vertex(in.g);
  for (graph::Vertex v = in.g.num_vertices(); v-- > 0;) {
    if (v != in.root && !in.g.neighbors(v).empty()) {
      in.st_t = v;
      break;
    }
  }
  util::Rng wrng(seed + 1);
  auto wedges = graph::erdos_renyi_edges(600, 0.02, wrng);
  const auto weights =
      graph::random_weights(wedges.size(), 1.0f, 100.0f, wrng);
  in.wg = graph::Graph::from_weighted_edges(600, wedges, weights, true);
  return in;
}

struct AlgoSpec {
  const char* name;
  core::OperatorId op;
  bool weighted;
};

constexpr AlgoSpec kAlgoSpecs[] = {
    {"bfs", core::OperatorId::kBfsVisit, false},
    {"pagerank", core::OperatorId::kPagerankPush, false},
    {"sssp", core::OperatorId::kSsspRelax, true},
    {"coloring", core::OperatorId::kColorAssign, false},
    {"st-conn", core::OperatorId::kStVisit, false},
    {"boruvka", core::OperatorId::kUfUnion, true},
};

double run_one(htm::DesMachine& machine, const Inputs& in,
               const std::string& algo, core::Mechanism mech) {
  if (algo == "bfs") {
    algorithms::BfsOptions o;
    o.root = in.root;
    o.mechanism = mech;
    return algorithms::run_bfs(machine, in.g, o).total_time_ns;
  }
  if (algo == "pagerank") {
    algorithms::PageRankOptions o;
    o.iterations = 3;
    o.mechanism = mech;
    return algorithms::run_pagerank(machine, in.g, o).total_time_ns;
  }
  if (algo == "sssp") {
    algorithms::SsspOptions o;
    o.source = 0;
    o.mechanism = mech;
    return algorithms::run_sssp(machine, in.wg, o).total_time_ns;
  }
  if (algo == "coloring") {
    algorithms::ColoringOptions o;
    o.mechanism = mech;
    o.seed = 7;
    return algorithms::run_boman_coloring(machine, in.g, o).total_time_ns;
  }
  if (algo == "st-conn") {
    algorithms::StConnOptions o;
    o.s = in.root;
    o.t = in.st_t;
    o.mechanism = mech;
    return algorithms::run_st_connectivity(machine, in.g, o).total_time_ns;
  }
  if (algo == "boruvka") {
    algorithms::BoruvkaOptions o;
    o.mechanism = mech;
    return algorithms::run_boruvka(machine, in.wg, o).total_time_ns;
  }
  ADD_FAILURE() << "unknown algorithm " << algo;
  return 0;
}

const analysis::Recommendation* find_rec(
    const std::vector<analysis::Recommendation>& recs, core::OperatorId op) {
  for (const auto& rec : recs) {
    if (rec.op == op) return &rec;
  }
  return nullptr;
}

std::vector<analysis::Recommendation> recs_for(
    const model::MachineConfig& machine, model::HtmKind kind,
    const std::vector<analysis::EffectSignature>& sigs,
    const analysis::Workload& w) {
  const auto bounds = analysis::capacity_bounds(
      sigs, static_cast<int>(w.mean_degree + 0.5), w.chain);
  return analysis::recommend_for(machine, kind, sigs, bounds, w);
}

TEST(RankAgreement, SimulatedSweepScale10WithinBand) {
  const Inputs in = make_inputs();
  const auto sigs = analysis::analyze_all();
  struct Setup {
    const model::MachineConfig* config;
    model::HtmKind kind;
    int threads;
  };
  const Setup setups[] = {
      {&model::bgq(), model::HtmKind::kBgqShort, 16},
      {&model::has_c(), model::HtmKind::kRtm, 8},
  };
  for (const Setup& setup : setups) {
    const auto recs_g = recs_for(
        *setup.config, setup.kind, sigs,
        analysis::workload_from_graph(in.g, setup.threads, 16));
    const auto recs_wg = recs_for(
        *setup.config, setup.kind, sigs,
        analysis::workload_from_graph(in.wg, setup.threads, 16));
    for (const AlgoSpec& spec : kAlgoSpecs) {
      core::Mechanism best_mech = core::Mechanism::kSerialLock;
      double best_time = 0;
      for (const core::Mechanism mech : core::all_mechanisms()) {
        mem::SimHeap heap((std::size_t{1} << 20) * 8);
        htm::DesMachine machine(*setup.config, setup.kind, setup.threads,
                                heap, /*seed=*/1);
        const double t = run_one(machine, in, spec.name, mech);
        if (best_time == 0 || t < best_time) {
          best_time = t;
          best_mech = mech;
        }
      }
      const auto* rec =
          find_rec(spec.weighted ? recs_wg : recs_g, spec.op);
      ASSERT_NE(rec, nullptr) << "no recommendation for "
                              << core::to_string(spec.op);
      const double predicted_best = rec->ranked.front().cost_ns;
      const double predicted_empirical = rec->cost_of(best_mech);
      EXPECT_LE(predicted_empirical, 2.0 * predicted_best)
          << setup.config->name << "/" << spec.name << ": empirical best "
          << core::to_string(best_mech) << " (sim " << best_time
          << " ns) scores " << predicted_empirical << " vs recommended "
          << core::to_string(rec->best()) << " at " << predicted_best;
    }
  }
}

// ---------------------------------------------------------------------------
// Rank agreement against the committed wallclock record: the same band,
// but judged on the full-scale sim times baked into BENCH_wallclock.json.

struct WallclockRow {
  std::string algorithm;
  std::string mechanism;
  double sim_time_ns = 0;
};

struct WallclockDoc {
  int scale = 0;
  int edge_factor = 0;
  int threads = 0;
  int batch = 0;
  std::string machine;
  std::vector<WallclockRow> rows;
};

bool extract_string(const std::string& line, const std::string& key,
                    std::string* out) {
  const std::string needle = "\"" + key + "\": \"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const auto start = pos + needle.size();
  const auto end = line.find('"', start);
  if (end == std::string::npos) return false;
  *out = line.substr(start, end - start);
  return true;
}

bool extract_number(const std::string& line, const std::string& key,
                    double* out) {
  const std::string needle = "\"" + key + "\": ";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(line.c_str() + pos + needle.size(), nullptr);
  return true;
}

WallclockDoc parse_wallclock(const std::string& path) {
  WallclockDoc doc;
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << "cannot open " << path;
  std::string line;
  double num = 0;
  while (std::getline(f, line)) {
    if (line.find("\"algorithm\"") != std::string::npos) {
      WallclockRow row;
      if (extract_string(line, "algorithm", &row.algorithm) &&
          extract_string(line, "mechanism", &row.mechanism) &&
          extract_number(line, "sim_time_ns", &row.sim_time_ns)) {
        doc.rows.push_back(std::move(row));
      }
      continue;
    }
    if (extract_number(line, "scale", &num)) doc.scale = (int)num;
    if (extract_number(line, "edge_factor", &num)) doc.edge_factor = (int)num;
    if (extract_number(line, "threads", &num)) doc.threads = (int)num;
    if (extract_number(line, "batch", &num)) doc.batch = (int)num;
    extract_string(line, "machine", &doc.machine);
  }
  return doc;
}

TEST(RankAgreement, WallclockRecordWithinBand) {
  const WallclockDoc doc = parse_wallclock(AAM_BENCH_WALLCLOCK);
  ASSERT_FALSE(doc.rows.empty()) << "no result rows in " << AAM_BENCH_WALLCLOCK;
  ASSERT_GT(doc.scale, 0);
  ASSERT_GT(doc.threads, 0);
  const model::MachineConfig& machine = model::machine_by_name(doc.machine);
  const model::HtmKind kind = machine.name == "BGQ"
                                  ? model::HtmKind::kBgqShort
                                  : model::HtmKind::kRtm;
  const auto sigs = analysis::analyze_all();
  // The unweighted workload comes from the deterministic Kronecker probe at
  // the recorded scale; the weighted one re-measures the exact ER graph
  // bench_throughput feeds SSSP/Boruvka (seed 1 + 1).
  const auto recs_g = recs_for(
      machine, kind, sigs,
      analysis::workload_for_scale(doc.scale, doc.edge_factor, doc.threads,
                                   doc.batch));
  util::Rng wrng(2);
  auto wedges = graph::erdos_renyi_edges(1500, 0.01, wrng);
  const auto weights =
      graph::random_weights(wedges.size(), 1.0f, 100.0f, wrng);
  const graph::Graph wg =
      graph::Graph::from_weighted_edges(1500, wedges, weights, true);
  const auto recs_wg = recs_for(
      machine, kind, sigs,
      analysis::workload_from_graph(wg, doc.threads, doc.batch));

  for (const AlgoSpec& spec : kAlgoSpecs) {
    core::Mechanism best_mech = core::Mechanism::kSerialLock;
    double best_time = 0;
    double times[8] = {};
    int fixed_rows = 0;
    for (const WallclockRow& row : doc.rows) {
      if (row.algorithm != spec.name) continue;
      const auto mech = core::parse_mechanism(row.mechanism);
      if (!mech.has_value()) continue;  // skip auto and AM rows
      ++fixed_rows;
      times[static_cast<std::size_t>(*mech)] = row.sim_time_ns;
      if (best_time == 0 || row.sim_time_ns < best_time) {
        best_time = row.sim_time_ns;
        best_mech = *mech;
      }
    }
    ASSERT_EQ(fixed_rows, (int)core::all_mechanisms().size())
        << spec.name << ": expected one row per fixed mechanism";
    const auto* rec = find_rec(spec.weighted ? recs_wg : recs_g, spec.op);
    ASSERT_NE(rec, nullptr);
    // Rank agreement holds when the recommendation is observed
    // near-optimal (within 1.5x of the fastest recorded sim time), or —
    // for cells whose observed spread is material — when the model also
    // scores the empirically best mechanism inside the 2x band. The first
    // arm absorbs degenerate cells like st-conn at large scale, where the
    // search terminates after a few hundred visits and every mechanism
    // records a near-tied startup-dominated time.
    const double observed_rec = times[static_cast<std::size_t>(rec->best())];
    const double observed_ratio = observed_rec / best_time;
    const double predicted_ratio =
        rec->cost_of(best_mech) / rec->ranked.front().cost_ns;
    EXPECT_TRUE(observed_ratio <= 1.5 || predicted_ratio <= 2.0)
        << doc.machine << "/" << spec.name << ": recorded best "
        << core::to_string(best_mech) << " vs recommended "
        << core::to_string(rec->best()) << " (observed ratio "
        << observed_ratio << ", predicted ratio " << predicted_ratio << ")";
  }
}

}  // namespace
}  // namespace aam
