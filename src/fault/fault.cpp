#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <numeric>
#include <sstream>

#include "util/check.hpp"

namespace aam::fault {

namespace {

// --------------------------------------------------------------- spec parse

void apply_scenario_storm(const model::FaultProfile& p, FaultPlan& plan) {
  plan.storm_rate_per_us = p.storm_rate_per_us;
  plan.storm_period_ns = p.storm_period_ns;
  plan.storm_duty = p.storm_duty;
}

void apply_scenario_net(const model::FaultProfile& p, FaultPlan& plan) {
  plan.net_drop = p.net_drop;
  plan.net_duplicate = p.net_duplicate;
  plan.net_reorder = p.net_reorder;
  plan.net_reorder_ns = p.net_reorder_ns;
  plan.net_delay_spike = p.net_delay_spike;
  plan.net_delay_spike_ns = p.net_delay_spike_ns;
  plan.net_rto_ns = p.net_rto_ns;
  plan.net_rto_cap_ns = p.net_rto_cap_ns;
}

void apply_scenario_straggler(const model::FaultProfile& p, FaultPlan& plan) {
  plan.straggler_fraction = p.straggler_fraction;
  plan.straggler_factor = p.straggler_factor;
  plan.straggler_period_ns = p.straggler_period_ns;
  plan.straggler_duty = p.straggler_duty;
}

void apply_scenario_brownout(const model::FaultProfile& p, FaultPlan& plan) {
  plan.brownout_fraction = p.brownout_fraction;
  plan.brownout_factor = p.brownout_factor;
  plan.brownout_period_ns = p.brownout_period_ns;
  plan.brownout_duty = p.brownout_duty;
}

void apply_scenario_crash(const model::FaultProfile& p, FaultPlan& plan) {
  plan.crash_p = p.crash_p;
  plan.crash_at_ns = p.crash_at_ns;
  plan.crash_max = p.crash_max;
  plan.crash_ckpt_ns = p.crash_ckpt_ns;
}

bool parse_number(std::string_view text, double& out) {
  const std::string s(text);
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0' && end != s.c_str() &&
         std::isfinite(out);
}

/// key=value assignment table: maps a spec key to a FaultPlan field.
struct KeyEntry {
  const char* key;
  double FaultPlan::* field;
};

constexpr KeyEntry kKeys[] = {
    {"storm.rate", &FaultPlan::storm_rate_per_us},
    {"storm.period", &FaultPlan::storm_period_ns},
    {"storm.duty", &FaultPlan::storm_duty},
    {"net.drop", &FaultPlan::net_drop},
    {"net.dup", &FaultPlan::net_duplicate},
    {"net.reorder", &FaultPlan::net_reorder},
    {"net.reorder_ns", &FaultPlan::net_reorder_ns},
    {"net.spike", &FaultPlan::net_delay_spike},
    {"net.spike_ns", &FaultPlan::net_delay_spike_ns},
    {"net.rto", &FaultPlan::net_rto_ns},
    {"net.rto_cap", &FaultPlan::net_rto_cap_ns},
    {"straggler.fraction", &FaultPlan::straggler_fraction},
    {"straggler.factor", &FaultPlan::straggler_factor},
    {"straggler.period", &FaultPlan::straggler_period_ns},
    {"straggler.duty", &FaultPlan::straggler_duty},
    {"brownout.fraction", &FaultPlan::brownout_fraction},
    {"brownout.factor", &FaultPlan::brownout_factor},
    {"brownout.period", &FaultPlan::brownout_period_ns},
    {"brownout.duty", &FaultPlan::brownout_duty},
    {"crash.p", &FaultPlan::crash_p},
    {"crash.at", &FaultPlan::crash_at_ns},
    {"crash.max", &FaultPlan::crash_max},
    {"crash.ckpt", &FaultPlan::crash_ckpt_ns},
};

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r' || s.back() == '\n')) {
    s.remove_suffix(1);
  }
  return s;
}

// -------------------------------------------------- deterministic selection

/// Marks the ceil(fraction * n) indices with the smallest hash of
/// (seed, salt, index) — a stable pseudo-random subset independent of any
/// RNG stream consumption order.
std::vector<std::uint8_t> pick_subset(double fraction, std::size_t n,
                                      std::uint64_t seed,
                                      std::uint64_t salt) {
  std::vector<std::uint8_t> picked(n, 0);
  if (n == 0 || fraction <= 0) return picked;
  const std::size_t k = std::min(
      n, static_cast<std::size_t>(
             std::ceil(fraction * static_cast<double>(n))));
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return util::mix64(seed ^ util::mix64(salt ^ (a + 1))) <
           util::mix64(seed ^ util::mix64(salt ^ (b + 1)));
  });
  for (std::size_t i = 0; i < k; ++i) picked[order[i]] = 1;
  return picked;
}

/// Square-wave window membership: the first duty fraction of each period.
bool in_window(double t, double period, double duty) {
  if (period <= 0 || duty >= 1.0) return true;
  if (duty <= 0.0) return false;
  double r = std::fmod(t, period);
  if (r < 0) r += period;
  return r < duty * period;
}

double phase_of(std::uint64_t seed, std::uint64_t salt, std::size_t i,
                double period) {
  if (period <= 0) return 0;
  const double u = static_cast<double>(
                       util::mix64(seed ^ util::mix64(salt ^ (i + 1))) >> 11) *
                   0x1.0p-53;
  return u * period;
}

}  // namespace

std::optional<std::string> try_parse(std::string_view spec,
                                     const model::FaultProfile& profile,
                                     FaultPlan& out) {
  out = FaultPlan{};
  out.net_rto_ns = profile.net_rto_ns;
  out.net_rto_cap_ns = profile.net_rto_cap_ns;
  out.crash_max = profile.crash_max;
  out.crash_ckpt_ns = profile.crash_ckpt_ns;

  std::string from_file;
  spec = trim(spec);
  if (!spec.empty() && spec.front() == '@') {
    const std::string path(spec.substr(1));
    std::ifstream in(path);
    if (!in) return "cannot read fault spec file: " + path;
    std::string line;
    while (std::getline(in, line)) {
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      const std::string_view t = trim(line);
      if (t.empty()) continue;
      if (!from_file.empty()) from_file += ',';
      from_file.append(t);
    }
    spec = from_file;
  }
  if (spec.empty()) return std::nullopt;  // empty == none

  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string_view token = trim(spec.substr(pos, comma - pos));
    pos = comma + 1;
    if (token.empty()) continue;

    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      if (token == "none") {
        // explicit no-op; composes as the identity
      } else if (token == "abort-storm") {
        apply_scenario_storm(profile, out);
      } else if (token == "lossy-net") {
        apply_scenario_net(profile, out);
      } else if (token == "straggler") {
        apply_scenario_straggler(profile, out);
      } else if (token == "brownout") {
        apply_scenario_brownout(profile, out);
      } else if (token == "combined") {
        apply_scenario_storm(profile, out);
        apply_scenario_net(profile, out);
        apply_scenario_straggler(profile, out);
        apply_scenario_brownout(profile, out);
      } else if (token == "crash-restart") {
        apply_scenario_crash(profile, out);
      } else if (token == "crash-combined") {
        // Crashes on top of every other misbehaviour: checkpoints taken
        // while wire copies are dropped/duplicated, restores into storms.
        apply_scenario_crash(profile, out);
        apply_scenario_storm(profile, out);
        apply_scenario_net(profile, out);
        apply_scenario_straggler(profile, out);
        apply_scenario_brownout(profile, out);
      } else {
        return "unknown fault scenario: '" + std::string(token) +
               "' (expected none, abort-storm, lossy-net, straggler, "
               "brownout, combined, crash-restart, crash-combined, or "
               "key=value)";
      }
      continue;
    }

    const std::string_view key = trim(token.substr(0, eq));
    const std::string_view value = trim(token.substr(eq + 1));
    double parsed = 0;
    if (!parse_number(value, parsed)) {
      return "bad numeric value for fault key '" + std::string(key) +
             "': '" + std::string(value) + "'";
    }
    bool found = false;
    for (const KeyEntry& entry : kKeys) {
      if (key == entry.key) {
        out.*entry.field = parsed;
        found = true;
        break;
      }
    }
    if (!found) return "unknown fault key: '" + std::string(key) + "'";
  }
  return std::nullopt;
}

FaultPlan parse(std::string_view spec, const model::FaultProfile& profile) {
  FaultPlan plan;
  const auto error = try_parse(spec, profile, plan);
  AAM_CHECK_MSG(!error.has_value(), error ? error->c_str() : "");
  return plan;
}

const std::vector<std::string>& canned_scenarios() {
  static const std::vector<std::string> kScenarios = {
      "none",     "abort-storm",   "lossy-net",      "straggler",
      "combined", "crash-restart", "crash-combined"};
  return kScenarios;
}

// ------------------------------------------------------------ FaultInjector

FaultInjector::FaultInjector(const FaultPlan& plan, std::uint64_t seed,
                             int num_threads, int threads_per_node)
    : plan_(plan),
      threads_per_node_(threads_per_node > 0 ? threads_per_node
                                             : num_threads),
      crash_rng_(util::Rng(seed).fork(0xc4a5ULL)),
      net_rng_(util::Rng(seed).fork(0xfa017ULL)) {
  AAM_CHECK(num_threads >= 1);
  const std::size_t t = static_cast<std::size_t>(num_threads);
  const std::size_t nodes =
      (t + static_cast<std::size_t>(threads_per_node_) - 1) /
      static_cast<std::size_t>(threads_per_node_);
  const util::Rng root(seed);
  abort_rng_.reserve(t);
  for (std::size_t i = 0; i < t; ++i) {
    abort_rng_.push_back(root.fork(0xab027ULL + i));
  }
  straggler_ = pick_subset(plan_.straggler_fraction, t, seed, 0x57a6ULL);
  straggler_phase_.resize(t);
  storm_phase_.resize(t);
  for (std::size_t i = 0; i < t; ++i) {
    straggler_phase_[i] =
        phase_of(seed, 0x57a6'0001ULL, i, plan_.straggler_period_ns);
    storm_phase_[i] = phase_of(seed, 0x5707'0001ULL, i, plan_.storm_period_ns);
  }
  brownout_ = pick_subset(plan_.brownout_fraction, nodes, seed, 0xb07fULL);
  brownout_phase_.resize(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    brownout_phase_[i] =
        phase_of(seed, 0xb07f'0001ULL, i, plan_.brownout_period_ns);
  }
  injected_.other_aborts_by_thread.assign(t, 0);
}

void FaultInjector::attach(htm::DesMachine& machine) {
  AAM_CHECK(machine.num_threads() ==
            static_cast<int>(abort_rng_.size()));
  if (plan_.storm_active() || plan_.slowdown_active() ||
      plan_.crash_active()) {
    machine.set_fault_hook(this);
  }
}

void FaultInjector::attach(net::Cluster& cluster) {
  attach(cluster.machine());
  // net_active() (the virtual) includes crash scenarios: they force the
  // reliable-delivery protocol on so in-flight messages are replayable.
  if (net_active()) cluster.set_fault_hook(this);
}

bool FaultInjector::inject_other_abort(std::uint32_t tid, double start_ns,
                                       double duration_ns, double& frac_out) {
  if (!plan_.storm_active()) return false;
  if (!in_window(start_ns + storm_phase_[tid], plan_.storm_period_ns,
                 plan_.storm_duty)) {
    return false;
  }
  util::Rng& rng = abort_rng_[tid];
  const double p =
      1.0 - std::exp(-plan_.storm_rate_per_us * duration_ns / 1e3);
  if (!rng.next_bool(p)) return false;
  frac_out = rng.next_double();
  ++injected_.other_aborts;
  ++injected_.other_aborts_by_thread[tid];
  return true;
}

bool FaultInjector::inject_crash(std::uint32_t tid, double now_ns) {
  (void)tid;
  if (!plan_.crash_active()) return false;
  if (crashes_fired_ >= static_cast<std::uint64_t>(plan_.crash_max)) {
    return false;
  }
  // The deterministic one-shot: the first completion at or past crash.at.
  // The consumed flag is never rolled back — a restore rewinds virtual
  // time below crash_at_ns, and re-firing there would loop forever.
  if (plan_.crash_at_ns > 0 && !crash_at_consumed_ &&
      now_ns >= plan_.crash_at_ns) {
    crash_at_consumed_ = true;
    ++crashes_fired_;
    ++injected_.crashes;
    return true;
  }
  if (plan_.crash_p > 0 && crash_rng_.next_bool(plan_.crash_p)) {
    ++crashes_fired_;
    ++injected_.crashes;
    return true;
  }
  return false;
}

double FaultInjector::slowdown(std::uint32_t tid, double now_ns) {
  double factor = 1.0;
  if (plan_.straggler_active() && straggler_[tid] != 0 &&
      in_window(now_ns + straggler_phase_[tid], plan_.straggler_period_ns,
                plan_.straggler_duty)) {
    factor *= plan_.straggler_factor;
  }
  if (plan_.brownout_active()) {
    const std::size_t node =
        tid / static_cast<std::uint32_t>(threads_per_node_);
    if (brownout_[node] != 0 &&
        in_window(now_ns + brownout_phase_[node], plan_.brownout_period_ns,
                  plan_.brownout_duty)) {
      factor *= plan_.brownout_factor;
    }
  }
  return factor;
}

net::MessageFate FaultInjector::fate(const net::Message& msg,
                                     bool retransmit) {
  (void)msg;
  (void)retransmit;
  net::MessageFate f;
  if (net_rng_.next_bool(plan_.net_drop)) {
    f.drop = true;
    ++injected_.net_dropped;
  }
  if (net_rng_.next_bool(plan_.net_duplicate)) {
    f.duplicate = true;
    // The duplicate trails the primary copy by a jittered gap that can
    // exceed the RTO, so dedup races against retransmission too.
    f.duplicate_delay_ns =
        net_rng_.next_double() *
        std::max(plan_.net_reorder_ns, 0.5 * plan_.net_rto_ns);
    ++injected_.net_duplicated;
  }
  if (net_rng_.next_bool(plan_.net_reorder)) {
    f.extra_delay_ns += net_rng_.next_double() * plan_.net_reorder_ns;
  }
  if (net_rng_.next_bool(plan_.net_delay_spike)) {
    f.extra_delay_ns +=
        plan_.net_delay_spike_ns * (0.5 + net_rng_.next_double());
  }
  return f;
}

}  // namespace aam::fault
