#pragma once

// aam::fault — deterministic, seed-driven fault injection (ROADMAP
// "production-scale, as many scenarios as you can imagine").
//
// A FaultPlan describes what misbehaves; a FaultInjector implements the
// engine- and network-side hooks (htm::FaultHook, net::NetFaultHook) that
// realize the plan, drawing every decision from RNG streams forked off the
// simulation seed — same seed + same plan ⇒ the same fault schedule ⇒
// bit-identical runs. The runtime must *survive* every plan with results
// equal to the fault-free run ("fault-oblivious correctness"); recovery is
// visible only in HtmStats/NetStats and the injector's own counters.
//
// Spec grammar (--fault=<spec>):
//
//   spec   := '@' path | token (',' token)*
//   token  := scenario | key '=' value
//   scenario := none | abort-storm | lossy-net | straggler | brownout
//             | combined
//
// Scenario tokens expand to the machine's calibrated defaults
// (model::FaultProfile); key=value tokens override individual fields and
// compose left to right, e.g. "abort-storm,storm.rate=2.5" or
// "lossy-net,net.drop=0.2,net.rto=4000". '@path' reads the spec text from
// a file (first line, comments after '#').

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "htm/des_engine.hpp"
#include "model/machines.hpp"
#include "net/cluster.hpp"
#include "util/rng.hpp"

namespace aam::fault {

/// A fully-resolved fault scenario. Zero/one values mean "inactive"; the
/// canned scenarios fill fields from the machine's FaultProfile.
struct FaultPlan {
  // Abort storm: extra kOther aborts per microsecond of transaction
  // duration, in square-wave bursts (period 0 = continuous).
  double storm_rate_per_us = 0;
  double storm_period_ns = 0;
  double storm_duty = 1.0;
  // Lossy network: per-wire-transmission probabilities and magnitudes.
  double net_drop = 0;
  double net_duplicate = 0;
  double net_reorder = 0;
  double net_reorder_ns = 0;
  double net_delay_spike = 0;
  double net_delay_spike_ns = 0;
  double net_rto_ns = 8000.0;
  double net_rto_cap_ns = 64000.0;
  // Stragglers: a deterministic thread subset slows down in windows.
  double straggler_fraction = 0;
  double straggler_factor = 1.0;
  double straggler_period_ns = 0;
  double straggler_duty = 0.5;
  // Brown-outs: whole simulated nodes transiently slow down.
  double brownout_fraction = 0;
  double brownout_factor = 1.0;
  double brownout_period_ns = 0;
  double brownout_duty = 0.25;
  // Crash-stop failures (src/recovery/): crash_p is the per-completed-
  // activity crash probability, crash_at_ns forces one crash at the first
  // completion past that virtual time (0 = off), crash_max caps total
  // crashes, crash_ckpt_ns is the checkpoint interval the recovery
  // manager should use.
  double crash_p = 0;
  double crash_at_ns = 0;
  double crash_max = 3.0;
  double crash_ckpt_ns = 5.0e4;

  bool storm_active() const { return storm_rate_per_us > 0; }
  bool net_active() const {
    return net_drop > 0 || net_duplicate > 0 || net_reorder > 0 ||
           net_delay_spike > 0;
  }
  bool straggler_active() const {
    return straggler_fraction > 0 && straggler_factor > 1.0;
  }
  bool brownout_active() const {
    return brownout_fraction > 0 && brownout_factor > 1.0;
  }
  bool slowdown_active() const {
    return straggler_active() || brownout_active();
  }
  bool crash_active() const { return crash_p > 0 || crash_at_ns > 0; }
  bool any() const {
    return storm_active() || net_active() || slowdown_active() ||
           crash_active();
  }
};

/// Parses `spec` against `profile`; returns an error string on malformed
/// input (unknown scenario/key, bad number, unreadable @file), otherwise
/// fills `out`.
std::optional<std::string> try_parse(std::string_view spec,
                                     const model::FaultProfile& profile,
                                     FaultPlan& out);

/// try_parse that aborts with the error message on malformed specs (for
/// CLI use where the spec came straight from the user).
FaultPlan parse(std::string_view spec, const model::FaultProfile& profile);

/// The canned scenario names, in sweep order ("none" first).
const std::vector<std::string>& canned_scenarios();

/// Exact injection counters, mirrored by the observation side: every
/// inject_other_abort fire becomes exactly one HtmStats::aborts_other on
/// that thread, and every drop/duplicate decision is counted by the
/// cluster at the point it is applied (NetStats::dropped/duplicated).
struct InjectedStats {
  std::uint64_t other_aborts = 0;
  std::uint64_t net_dropped = 0;
  std::uint64_t net_duplicated = 0;
  std::uint64_t crashes = 0;  ///< inject_crash fires (crash-stop events)
  std::vector<std::uint64_t> other_aborts_by_thread;
};

/// Realizes a FaultPlan against one DesMachine (or the Cluster wrapping
/// it). Not owned by the machine; keep it alive for the whole run.
class FaultInjector final : public htm::FaultHook, public net::NetFaultHook {
 public:
  /// `threads_per_node` scopes brown-outs to nodes; pass 0 for a
  /// single-node machine (brown-outs then cover the whole machine as one
  /// node).
  FaultInjector(const FaultPlan& plan, std::uint64_t seed, int num_threads,
                int threads_per_node = 0);

  /// Installs the engine-side hook (no-op for a plan with no machine-side
  /// faults, so a "none"/net-only plan leaves the engine untouched).
  void attach(htm::DesMachine& machine);
  /// Installs both the engine-side and the network-side hooks.
  void attach(net::Cluster& cluster);

  // htm::FaultHook
  bool inject_other_abort(std::uint32_t tid, double start_ns,
                          double duration_ns, double& frac_out) override;
  double slowdown(std::uint32_t tid, double now_ns) override;
  bool inject_crash(std::uint32_t tid, double now_ns) override;

  // net::NetFaultHook
  //
  // Crash scenarios force the reliable-delivery protocol on even with no
  // wire faults configured: every in-flight message then has a sender-side
  // pending entry the recovery manager can replay from, so nothing is
  // silently lost when a crash drops the machine's callbacks.
  bool net_active() const override {
    return plan_.net_active() || plan_.crash_active();
  }
  net::MessageFate fate(const net::Message& msg, bool retransmit) override;
  double initial_rto_ns() const override { return plan_.net_rto_ns; }
  double rto_cap_ns() const override { return plan_.net_rto_cap_ns; }

  const FaultPlan& plan() const { return plan_; }
  const InjectedStats& injected() const { return injected_; }
  /// True if thread `tid` is in the deterministic straggler subset.
  bool is_straggler(std::uint32_t tid) const {
    return straggler_[tid] != 0;
  }
  /// Crashes fired so far (== injected().crashes; convenience).
  std::uint64_t crashes_fired() const { return crashes_fired_; }

 private:
  FaultPlan plan_;
  int threads_per_node_;
  // Dedicated streams, forked from the seed independently of the engine's
  // per-thread RNGs: injection never perturbs the machine's own draws.
  // The crash stream (and the fired counters) deliberately survive a
  // restore — the injector is the external world, so rolled-back execution
  // re-runs under *fresh* crash draws and recovery terminates instead of
  // replaying the same crash forever.
  std::vector<util::Rng> abort_rng_;  // per thread
  util::Rng crash_rng_;
  std::uint64_t crashes_fired_ = 0;
  bool crash_at_consumed_ = false;
  util::Rng net_rng_;
  std::vector<std::uint8_t> straggler_;   // per thread
  std::vector<double> straggler_phase_;   // per thread
  std::vector<double> storm_phase_;       // per thread
  std::vector<std::uint8_t> brownout_;    // per node
  std::vector<double> brownout_phase_;    // per node
  InjectedStats injected_;
};

}  // namespace aam::fault
