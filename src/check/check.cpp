#include "check/check.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <ostream>

#include "analysis/contract.hpp"
#include "core/auto_executor.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

namespace aam::check {

namespace {

// Allocations the engine and executors mutate outside the observed write
// channels by design (host-side cursor resets) or that only ever carry
// synchronization metadata. Excluded from the escaped-write diff.
constexpr std::string_view kExemptLabels[] = {
    "worklist.cursor",  "fine-locks.stripes", "serial-lock.word",
    "stm.orecs",        "stm.clock",          "htm.elision-lock",
};

bool is_exempt_label(std::string_view label) {
  for (std::string_view exempt : kExemptLabels) {
    if (label == exempt) return true;
  }
  return false;
}

void fnv1a(std::uint64_t& hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xffu;
    hash *= 1099511628211ull;
  }
}

std::string format(const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  return buf;
}

bool unit_listed(const std::vector<std::uint64_t>& units, std::uint64_t unit) {
  return std::find(units.begin(), units.end(), unit) != units.end();
}

}  // namespace

// ---------------------------------------------------------------------------
// CheckConfig parsing
// ---------------------------------------------------------------------------

std::optional<CheckConfig> parse_check(std::string_view name) {
  CheckConfig config;
  if (name == "none") return config;
  if (name == "races") {
    config.races = true;
    return config;
  }
  if (name == "serial") {
    config.serial = true;
    return config;
  }
  if (name == "footprint") {
    config.footprint = true;
    return config;
  }
  if (name == "all") {
    config.races = config.serial = config.footprint = true;
    return config;
  }
  return std::nullopt;
}

std::string check_names() { return "none, races, serial, footprint, all"; }

std::string check_error(const std::string& flag, const std::string& value) {
  return "--" + flag + "=" + value +
         ": unknown check mode; valid names: " + check_names();
}

CheckConfig check_flag(util::Cli& cli, const std::string& flag) {
  const std::string value = cli.get_string(flag, "none");
  const auto parsed = parse_check(value);
  if (!parsed.has_value()) {
    std::fprintf(stderr, "%s\n", check_error(flag, value).c_str());
    std::exit(2);
  }
  return *parsed;
}

const char* to_string(Violation::Kind kind) {
  switch (kind) {
    case Violation::Kind::kEscapedWrite: return "escaped-write";
    case Violation::Kind::kSerialDivergence: return "serial-divergence";
    case Violation::Kind::kFootprintMismatch: return "footprint-mismatch";
    case Violation::Kind::kStaticEscape: return "static-escape";
    case Violation::Kind::kCapacityGuard: return "capacity-guard";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// RecordingAccess: wraps the mechanism's Access during real execution.
// ---------------------------------------------------------------------------

/// Forwards every operation to the wrapped mechanism Access while logging
/// the touched words into the thread's BatchRecord: committed pre-images on
/// first touch (captured before the forwarded operation can mutate), the
/// read/write word sets in first-touch order, and — for the escaped-write
/// detector — the exact byte interval of every legitimate write (this is
/// the only legitimate-write channel for the STM executor, whose engine
/// commits to real memory without passing a DesMachine choke point).
class RecordingAccess final : public core::Access {
 public:
  RecordingAccess(core::Access& inner, Checker& checker,
                  Checker::BatchRecord& rec)
      : Access(nullptr), inner_(inner), checker_(checker),
        heap_(checker.machine().heap()), rec_(rec) {
    rec_.transactional = inner.transactional();
  }

  std::uint32_t load(const std::uint32_t& ref) override { return load_impl(ref); }
  std::uint64_t load(const std::uint64_t& ref) override { return load_impl(ref); }
  double load(const double& ref) override { return load_impl(ref); }
  void store(std::uint32_t& ref, std::uint32_t value) override {
    store_impl(ref, value);
  }
  void store(std::uint64_t& ref, std::uint64_t value) override {
    store_impl(ref, value);
  }
  void store(double& ref, double value) override { store_impl(ref, value); }
  bool cas(std::uint32_t& ref, std::uint32_t expect,
           std::uint32_t desired) override {
    return cas_impl(ref, expect, desired);
  }
  bool cas(std::uint64_t& ref, std::uint64_t expect,
           std::uint64_t desired) override {
    return cas_impl(ref, expect, desired);
  }
  bool cas(double& ref, double expect, double desired) override {
    return cas_impl(ref, expect, desired);
  }
  std::uint64_t fetch_add(std::uint64_t& ref, std::uint64_t delta) override {
    return fetch_add_impl(ref, delta);
  }
  double fetch_add(double& ref, double delta) override {
    return fetch_add_impl(ref, delta);
  }
  bool transactional() const override { return inner_.transactional(); }
  void emit(std::uint64_t value) override { inner_.emit(value); }

 private:
  template <typename T>
  T load_impl(const T& ref) {
    note_read(&ref);
    return inner_.load(ref);
  }
  template <typename T>
  void store_impl(T& ref, T value) {
    note_write(&ref, sizeof(T));
    inner_.store(ref, value);
  }
  template <typename T>
  bool cas_impl(T& ref, T expect, T desired) {
    note_read(&ref);
    const bool ok = inner_.cas(ref, expect, desired);
    if (ok) note_write(&ref, sizeof(T));
    return ok;
  }
  template <typename T>
  T fetch_add_impl(T& ref, T delta) {
    note_read(&ref);
    const T old = inner_.fetch_add(ref, delta);
    note_write(&ref, sizeof(T));
    return old;
  }

  void note_read(const void* p) {
    if (!heap_.contains(p)) {
      rec_.foreign = true;
      return;
    }
    if (!checker_.record_batches_) return;
    const std::uint64_t word = heap_.offset_of(p) & ~std::uint64_t{7};
    capture_pre(word);
    if (rec_.read_set.insert(word)) rec_.read_words.push_back(word);
  }

  void note_write(const void* p, std::uint32_t len) {
    if (!heap_.contains(p)) {
      rec_.foreign = true;
      return;
    }
    const std::uint64_t offset = heap_.offset_of(p);
    if (checker_.config_.races) checker_.legit_.emplace_back(offset, len);
    if (!checker_.record_batches_) return;
    const std::uint64_t word = offset & ~std::uint64_t{7};
    capture_pre(word);
    if (rec_.write_set.insert(word)) rec_.write_words.push_back(word);
  }

  void capture_pre(std::uint64_t word) {
    std::uint64_t value;
    if (rec_.pre.lookup(word, value)) return;
    rec_.pre.insert_or_assign(word, checker_.committed_word(word));
  }

  core::Access& inner_;
  Checker& checker_;
  mem::SimHeap& heap_;
  Checker::BatchRecord& rec_;
};

// ---------------------------------------------------------------------------
// ShadowAccess: serial re-execution against recorded pre-images.
// ---------------------------------------------------------------------------

/// Replays operators against the batch's pre-images: reads hit the replay
/// overlay first, then the recorded pre-image, then (for words the real
/// execution never touched — only reachable once control flow has already
/// diverged) committed memory; writes land in the overlay only. Accesses
/// off the SimHeap read through and drop writes — host memory is outside
/// transactional isolation and is not replayed.
class ShadowAccess final : public core::Access {
 public:
  ShadowAccess(Checker& checker, Checker::BatchRecord& rec,
               std::vector<std::uint64_t>* results)
      : Access(results), checker_(checker), heap_(checker.machine().heap()),
        rec_(rec) {}

  std::uint32_t load(const std::uint32_t& ref) override { return load_impl(ref); }
  std::uint64_t load(const std::uint64_t& ref) override { return load_impl(ref); }
  double load(const double& ref) override { return load_impl(ref); }
  void store(std::uint32_t& ref, std::uint32_t value) override {
    store_impl(ref, value);
  }
  void store(std::uint64_t& ref, std::uint64_t value) override {
    store_impl(ref, value);
  }
  void store(double& ref, double value) override { store_impl(ref, value); }
  bool cas(std::uint32_t& ref, std::uint32_t expect,
           std::uint32_t desired) override {
    return cas_impl(ref, expect, desired);
  }
  bool cas(std::uint64_t& ref, std::uint64_t expect,
           std::uint64_t desired) override {
    return cas_impl(ref, expect, desired);
  }
  bool cas(double& ref, double expect, double desired) override {
    return cas_impl(ref, expect, desired);
  }
  std::uint64_t fetch_add(std::uint64_t& ref, std::uint64_t delta) override {
    return fetch_add_impl(ref, delta);
  }
  double fetch_add(double& ref, double delta) override {
    return fetch_add_impl(ref, delta);
  }
  bool transactional() const override { return rec_.transactional; }

 private:
  template <typename T>
  T load_impl(const T& ref) {
    if (!heap_.contains(&ref)) return ref;
    const std::uint64_t offset = heap_.offset_of(&ref);
    const std::uint64_t word = word_value(offset & ~std::uint64_t{7});
    T out;
    std::memcpy(&out, reinterpret_cast<const char*>(&word) + (offset & 7u),
                sizeof(T));
    return out;
  }
  template <typename T>
  void store_impl(T& ref, T value) {
    if (!heap_.contains(&ref)) return;
    const std::uint64_t offset = heap_.offset_of(&ref);
    const std::uint64_t word_off = offset & ~std::uint64_t{7};
    std::uint64_t word = word_value(word_off);
    std::memcpy(reinterpret_cast<char*>(&word) + (offset & 7u), &value,
                sizeof(T));
    checker_.overlay_.insert_or_assign(word_off, word);
  }
  template <typename T>
  bool cas_impl(T& ref, T expect, T desired) {
    if (load_impl(ref) != expect) return false;
    store_impl(ref, desired);
    return true;
  }
  template <typename T>
  T fetch_add_impl(T& ref, T delta) {
    const T old = load_impl(ref);
    store_impl(ref, static_cast<T>(old + delta));
    return old;
  }

  std::uint64_t word_value(std::uint64_t word) {
    std::uint64_t value;
    if (checker_.overlay_.lookup(word, value)) return value;
    if (rec_.pre.lookup(word, value)) return value;
    return checker_.committed_word(word);
  }

  Checker& checker_;
  mem::SimHeap& heap_;
  Checker::BatchRecord& rec_;
};

// ---------------------------------------------------------------------------
// CheckedExecutor
// ---------------------------------------------------------------------------

/// The decorating executor: wraps the operator in a RecordingAccess and the
/// done callback in the checker's per-batch analysis. Batch recording is
/// reset at item 0 of every attempt, so transactional retries (which re-run
/// the whole batch) start from a clean record and the done-time record
/// always describes exactly the committed attempt.
class CheckedExecutor final : public core::ActivityExecutor {
 public:
  CheckedExecutor(std::unique_ptr<core::ActivityExecutor> inner,
                  Checker& checker)
      : ActivityExecutor(inner->preferred_batch()),
        inner_(std::move(inner)),
        checker_(checker) {}

  core::Mechanism mechanism() const override { return inner_->mechanism(); }
  int preferred_batch() const override { return inner_->preferred_batch(); }
  void set_batch(int m) override { inner_->set_batch(m); }
  void set_adaptive(core::AdaptiveBatch* adaptive) override {
    inner_->set_adaptive(adaptive);
  }
  core::AdaptiveBatch* adaptive() const override { return inner_->adaptive(); }
  void set_outcome_hook(OutcomeHook hook) override {
    inner_->set_outcome_hook(std::move(hook));
  }
  void save_state(util::BlobWriter& w) const override {
    inner_->save_state(w);
  }
  void restore_state(util::BlobReader& r) override {
    inner_->restore_state(r);
  }

  void execute(htm::ThreadCtx& ctx, std::uint64_t count, const ItemOp& op,
               BatchDone done = {},
               core::OperatorId op_id = core::OperatorId::kUnknown) override {
    const std::uint32_t tid = ctx.thread_id();
    checker_.begin_batch(tid, op_id);
    // One shared copy of the user operator: the recording wrapper needs it
    // during (possibly re-executed) attempts, the done hook for the serial
    // replay after commit.
    auto user_op = std::make_shared<const ItemOp>(op);
    const core::Mechanism mech = inner_->mechanism();
    inner_->execute(
        ctx, count,
        [this, tid, user_op](core::Access& access, std::uint64_t i) {
          if (i == 0) checker_.begin_attempt(tid);
          RecordingAccess recording(access, checker_, checker_.records_[tid]);
          (*user_op)(recording, i);
        },
        [this, tid, mech, count, user_op, done = std::move(done)](
            htm::ThreadCtx& done_ctx, std::span<const std::uint64_t> results) {
          checker_.on_batch_done(tid, mech, count, *user_op, results);
          if (done) done(done_ctx, results);
        });
  }

 private:
  std::unique_ptr<core::ActivityExecutor> inner_;
  Checker& checker_;
};

// ---------------------------------------------------------------------------
// Checker
// ---------------------------------------------------------------------------

Checker::Checker(htm::DesMachine& machine, CheckConfig config)
    : machine_(machine),
      config_(config),
      record_batches_(config.serial || config.footprint) {
  AAM_CHECK(config_.scan_interval >= 1);
  records_.resize(static_cast<std::size_t>(machine.num_threads()));
  footprint_stats_.resize(
      static_cast<std::size_t>(core::OperatorId::kStVisit) + 1);
  if (config_.races) {
    AAM_CHECK_MSG(machine_.write_observer() == nullptr,
                  "the machine already has a write observer");
    machine_.set_write_observer(this);
    on_run_start();  // snapshot whatever is already committed
  }
}

Checker::~Checker() {
  if (config_.races && machine_.write_observer() == this) {
    machine_.set_write_observer(nullptr);
  }
}

void Checker::set_capacity_policy(const core::AutoPolicy* policy) {
  capacity_policy_ = policy;
}

std::unique_ptr<core::ActivityExecutor> Checker::wrap(
    std::unique_ptr<core::ActivityExecutor> inner) {
  if (!config_.enabled()) return inner;
  return std::make_unique<CheckedExecutor>(std::move(inner), *this);
}

void Checker::on_legitimate_write(std::uint64_t offset, std::uint32_t len) {
  legit_.emplace_back(offset, len);
}

void Checker::on_run_start() {
  mem::SimHeap& heap = machine_.heap();
  shadow_.resize(heap.used_bytes());
  if (!shadow_.empty()) {
    std::memcpy(shadow_.data(), heap.addr_of(0), shadow_.size());
  }
  legit_.clear();
}

void Checker::begin_batch(std::uint32_t tid, core::OperatorId op_id) {
  records_[tid].op_id = op_id;
  begin_attempt(tid);
}

void Checker::begin_attempt(std::uint32_t tid) {
  BatchRecord& rec = records_[tid];
  rec.pre.clear();
  rec.read_set.clear();
  rec.write_set.clear();
  rec.read_words.clear();
  rec.write_words.clear();
  rec.foreign = false;
}

void Checker::on_batch_done(std::uint32_t tid, core::Mechanism mechanism,
                            std::uint64_t count,
                            const core::ActivityExecutor::ItemOp& op,
                            std::span<const std::uint64_t> results) {
  const std::uint64_t batch_no = batches_++;
  BatchRecord& rec = records_[tid];
  if (capacity_policy_ != nullptr &&
      mechanism == core::Mechanism::kHtmCoarsened &&
      rec.op_id != core::OperatorId::kUnknown) {
    const core::MechanismPlan& plan = capacity_policy_->plan(rec.op_id);
    if (plan.htm_c_safe > 0 && count > plan.htm_c_safe) {
      add_violation(
          Violation::Kind::kCapacityGuard, batch_no, 0,
          format("%s batch of %llu items ran under HTM past the static "
                 "c_safe bound %llu",
                 core::to_string(rec.op_id),
                 static_cast<unsigned long long>(count),
                 static_cast<unsigned long long>(plan.htm_c_safe)));
    }
  }
  if (config_.footprint) {
    if (mechanism == core::Mechanism::kHtmCoarsened && count > 0) {
      audit_footprint_for(tid, batch_no);
    }
    if (count > 0 && rec.op_id != core::OperatorId::kUnknown) {
      audit_static_signature(tid, batch_no);
      update_footprint_stats(tid, mechanism, count);
    }
    fold_digest(rec, count);
  }
  if (config_.serial && count > 0) {
    replay_serial(rec, count, op, results, batch_no);
  }
  if (config_.races &&
      (batch_no + 1) % static_cast<std::uint64_t>(config_.scan_interval) == 0) {
    scan_shadow(batch_no);
  }
}

void Checker::audit_footprint_for(std::uint32_t tid, std::uint64_t batch_no) {
  const BatchRecord& rec = records_[tid];
  const mem::FootprintTracker& declared = machine_.thread_footprint(tid);
  const std::uint32_t shift = machine_.conflict_shift();
  for (std::uint64_t word : rec.write_words) {
    const std::uint64_t unit = word >> shift;
    if (!unit_listed(declared.write_units(), unit)) {
      add_violation(
          Violation::Kind::kFootprintMismatch, batch_no, word,
          format("write at %s (offset 0x%llx, unit %llu) outside the "
                 "declared write set",
                 machine_.heap().describe(word).c_str(),
                 static_cast<unsigned long long>(word),
                 static_cast<unsigned long long>(unit)));
    }
  }
  for (std::uint64_t word : rec.read_words) {
    const std::uint64_t unit = word >> shift;
    if (!unit_listed(declared.read_units(), unit) &&
        !unit_listed(declared.write_units(), unit)) {
      add_violation(
          Violation::Kind::kFootprintMismatch, batch_no, word,
          format("read at %s (offset 0x%llx, unit %llu) outside the "
                 "declared read/write sets",
                 machine_.heap().describe(word).c_str(),
                 static_cast<unsigned long long>(word),
                 static_cast<unsigned long long>(unit)));
    }
  }
}

void Checker::audit_static_signature(std::uint32_t tid,
                                     std::uint64_t batch_no) {
  const BatchRecord& rec = records_[tid];
  const analysis::LabelContract& contract =
      analysis::label_contract(rec.op_id);
  const mem::SimHeap& heap = machine_.heap();
  for (std::uint64_t word : rec.write_words) {
    const mem::SimHeap::AllocRecord* alloc = heap.find_alloc(word);
    if (alloc == nullptr || !contract.may_write(alloc->label)) {
      add_violation(
          Violation::Kind::kStaticEscape, batch_no, word,
          format("operator %s wrote %s (offset 0x%llx), outside its static "
                 "may-write label set {%s}",
                 core::to_string(rec.op_id), heap.describe(word).c_str(),
                 static_cast<unsigned long long>(word),
                 contract.write_labels_joined().c_str()));
    }
  }
  for (std::uint64_t word : rec.read_words) {
    const mem::SimHeap::AllocRecord* alloc = heap.find_alloc(word);
    if (alloc == nullptr || !contract.may_read(alloc->label)) {
      add_violation(
          Violation::Kind::kStaticEscape, batch_no, word,
          format("operator %s read %s (offset 0x%llx), outside its static "
                 "may-read label set {%s}",
                 core::to_string(rec.op_id), heap.describe(word).c_str(),
                 static_cast<unsigned long long>(word),
                 contract.read_labels_joined().c_str()));
    }
  }
}

void Checker::update_footprint_stats(std::uint32_t tid,
                                     core::Mechanism mechanism,
                                     std::uint64_t count) {
  const BatchRecord& rec = records_[tid];
  FootprintStats& stats =
      footprint_stats_[static_cast<std::size_t>(rec.op_id)];
  ++stats.batches;
  if (rec.read_words.size() > stats.max_read_words) {
    stats.max_read_words = rec.read_words.size();
    stats.items_at_max_read = count;
  }
  if (rec.write_words.size() > stats.max_write_words) {
    stats.max_write_words = rec.write_words.size();
    stats.items_at_max_write = count;
  }
  if (mechanism == core::Mechanism::kHtmCoarsened) {
    const mem::FootprintTracker& tracker = machine_.thread_footprint(tid);
    stats.max_read_lines =
        std::max<std::uint64_t>(stats.max_read_lines,
                                tracker.distinct_read_lines());
    stats.max_write_lines =
        std::max<std::uint64_t>(stats.max_write_lines,
                                tracker.distinct_write_lines());
  }
}

void Checker::fold_digest(BatchRecord& rec, std::uint64_t count) {
  fnv1a(digest_, count);
  for (std::uint64_t word : rec.write_words) {
    fnv1a(digest_, word);
    fnv1a(digest_, committed_word(word));
  }
}

void Checker::replay_serial(BatchRecord& rec, std::uint64_t count,
                            const core::ActivityExecutor::ItemOp& op,
                            std::span<const std::uint64_t> results,
                            std::uint64_t batch_no) {
  overlay_.clear();
  replay_results_.clear();
  ShadowAccess access(*this, rec, &replay_results_);
  for (std::uint64_t i = 0; i < count; ++i) op(access, i);

  // Emission sequence: the committed results must match the serial order's.
  if (replay_results_.size() != results.size()) {
    add_violation(Violation::Kind::kSerialDivergence, batch_no, 0,
                  format("batch committed %zu emissions, serial replay "
                         "produced %zu",
                         results.size(), replay_results_.size()));
  } else {
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (replay_results_[i] != results[i]) {
        add_violation(
            Violation::Kind::kSerialDivergence, batch_no, 0,
            format("emission #%zu: committed 0x%llx, serial 0x%llx", i,
                   static_cast<unsigned long long>(results[i]),
                   static_cast<unsigned long long>(replay_results_[i])));
        break;
      }
    }
  }

  // Final state: every word the serial replay wrote must hold the replay's
  // value in committed memory ...
  overlay_.for_each([&](std::uintptr_t word, std::uint64_t expected) {
    const std::uint64_t actual =
        committed_word(static_cast<std::uint64_t>(word));
    if (actual != expected) {
      add_violation(
          Violation::Kind::kSerialDivergence, batch_no, word,
          format("%s (offset 0x%llx): committed 0x%016llx, serial 0x%016llx",
                 machine_.heap().describe(word).c_str(),
                 static_cast<unsigned long long>(word),
                 static_cast<unsigned long long>(actual),
                 static_cast<unsigned long long>(expected)));
    }
  });
  // ... and every word the real execution wrote but the replay did not must
  // have kept its pre-image (a same-value write is indistinguishable).
  for (std::uint64_t word : rec.write_words) {
    std::uint64_t expected;
    if (overlay_.lookup(word, expected)) continue;
    if (!rec.pre.lookup(word, expected)) continue;
    const std::uint64_t actual = committed_word(word);
    if (actual != expected) {
      add_violation(
          Violation::Kind::kSerialDivergence, batch_no, word,
          format("%s (offset 0x%llx): batch wrote 0x%016llx, serial replay "
                 "left pre-image 0x%016llx",
                 machine_.heap().describe(word).c_str(),
                 static_cast<unsigned long long>(word),
                 static_cast<unsigned long long>(actual),
                 static_cast<unsigned long long>(expected)));
    }
  }
}

void Checker::sync_shadow_growth() {
  mem::SimHeap& heap = machine_.heap();
  const std::size_t used = heap.used_bytes();
  const std::size_t old = shadow_.size();
  if (used <= old) return;
  shadow_.resize(used);
  std::memcpy(shadow_.data() + old, heap.addr_of(old), used - old);
}

void Checker::refresh_exempt() {
  const auto allocs = machine_.heap().allocations();
  if (allocs.size() == exempt_allocs_seen_) return;
  exempt_allocs_seen_ = allocs.size();
  exempt_.clear();
  for (const auto& alloc : allocs) {
    if (is_exempt_label(alloc.label)) {
      exempt_.emplace_back(alloc.offset, alloc.offset + alloc.bytes);
    }
  }
}

void Checker::scan_shadow(std::uint64_t batch_no) {
  if (machine_.heap().used_bytes() == 0) return;
  sync_shadow_growth();
  mem::SimHeap& heap = machine_.heap();
  for (const auto& [offset, len] : legit_) {
    const std::uint64_t end =
        std::min<std::uint64_t>(offset + len, shadow_.size());
    if (offset < end) {
      std::memcpy(shadow_.data() + offset, heap.addr_of(offset), end - offset);
    }
  }
  legit_.clear();
  refresh_exempt();
  std::uint64_t pos = 0;
  for (const auto& [lo, hi] : exempt_) {
    compare_range(pos, lo, batch_no);
    pos = std::max(pos, hi);
  }
  compare_range(pos, shadow_.size(), batch_no);
}

void Checker::compare_range(std::uint64_t lo, std::uint64_t hi,
                            std::uint64_t batch_no) {
  if (lo >= hi) return;
  mem::SimHeap& heap = machine_.heap();
  const std::byte* committed = heap.addr_of(lo);
  if (std::memcmp(committed, shadow_.data() + lo, hi - lo) == 0) return;
  // Narrow the mismatch to words for reporting, then resynchronise the
  // shadow so one escape is reported once.
  for (std::uint64_t o = lo; o < hi;) {
    const std::uint64_t word = o & ~std::uint64_t{7};
    const std::uint64_t word_end = std::min<std::uint64_t>(hi, word + 8);
    const std::size_t span = static_cast<std::size_t>(word_end - o);
    if (std::memcmp(heap.addr_of(o), shadow_.data() + o, span) != 0) {
      std::uint64_t shadow_value = 0;
      const std::size_t avail =
          std::min<std::size_t>(8, shadow_.size() - word);
      std::memcpy(&shadow_value, shadow_.data() + word, avail);
      add_violation(
          Violation::Kind::kEscapedWrite, batch_no, word,
          format("offset 0x%llx (line %llu, %s): committed 0x%016llx, "
                 "shadow 0x%016llx — mutated outside every synchronization "
                 "channel",
                 static_cast<unsigned long long>(word),
                 static_cast<unsigned long long>(word / mem::kLineBytes),
                 heap.describe(word).c_str(),
                 static_cast<unsigned long long>(committed_word(word)),
                 static_cast<unsigned long long>(shadow_value)));
      std::memcpy(shadow_.data() + o, heap.addr_of(o), span);
    }
    o = word_end;
  }
}

void Checker::add_violation(Violation::Kind kind, std::uint64_t batch,
                            std::uint64_t offset, std::string detail) {
  ++violations_total_;
  if (violations_.size() < kMaxStored) {
    violations_.push_back(Violation{kind, batch, offset, std::move(detail)});
  }
}

std::uint64_t Checker::committed_word(std::uint64_t word) const {
  mem::SimHeap& heap = machine_.heap();
  std::uint64_t value = 0;
  const std::size_t avail =
      std::min<std::size_t>(8, heap.used_bytes() - word);
  std::memcpy(&value, heap.addr_of(word), avail);
  return value;
}

void Checker::report(std::ostream& out) const {
  out << "check: " << violations_total_ << " violation(s) across "
      << batches_ << " checked batch(es)\n";
  for (const Violation& v : violations_) {
    out << "  [" << to_string(v.kind) << "] batch " << v.batch << ": "
        << v.detail << "\n";
  }
  if (violations_total_ > violations_.size()) {
    out << "  ... and " << (violations_total_ - violations_.size())
        << " more\n";
  }
}

}  // namespace aam::check
