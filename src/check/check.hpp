#pragma once

// aam::check — opt-in dynamic analysis for the executor seam (the "is the
// simulation actually race-free and serializable?" question).
//
// Every algorithm in this repository funnels its shared-state mutations
// through core::Access, and every modelled write that reaches committed
// memory passes a handful of DesMachine choke points. That makes three
// strong checks cheap to piggyback on the existing seams:
//
//  * escaped-write detector (races) — keeps a shadow copy of the SimHeap's
//    committed state, synchronised from the engine's WriteObserver hooks,
//    and flags any byte that changed without flowing through a modelled
//    channel: a raw pointer write that no mechanism synchronizes, bumps
//    conflict stamps for, or charges costs to. Reported with the heap
//    offset, 64-byte line id, owning allocation label, and batch index.
//
//  * serializability checker (serial) — re-executes each committed batch
//    serially against the batch's recorded pre-images on a shadow overlay
//    and diffs both the final words and the emission sequence against what
//    the mechanism actually committed. A batch whose outcome cannot be
//    reproduced by some serial order of its own operators is not
//    linearizable — the exact property coarsened transactions claim.
//
//  * footprint auditor (footprint) — cross-checks the engine's declared
//    FootprintTracker read/write conflict-unit sets against the accesses
//    the operator actually made (HTM executor only — the tracker belongs
//    to the transactional attempt), and folds every committed (word,
//    value) pair into a chained FNV-1a digest for run-to-run determinism
//    regression tests.
//
// All three are wired through one CheckConfig (CLI: --check=none|races|
// serial|footprint|all). When disabled nothing is allocated, the executor
// is not wrapped, and the engine's observer branch stays unset — zero
// overhead. When enabled, all bookkeeping happens host-side: no modelled
// cost is charged, so enabling checks never perturbs simulated time.

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/executor.hpp"
#include "htm/des_engine.hpp"
#include "mem/footprint.hpp"
#include "mem/sim_heap.hpp"

namespace aam::util {
class Cli;
}

namespace aam::check {

struct CheckConfig {
  bool races = false;      ///< escaped-write detector
  bool serial = false;     ///< serial re-execution differ
  bool footprint = false;  ///< declared-footprint audit + commit digest
  /// Batches between shadow scans (races). 1 = scan after every batch,
  /// attributing escapes to the batch that made them; larger values trade
  /// attribution precision for scan cost.
  int scan_interval = 1;

  bool enabled() const { return races || serial || footprint; }
};

/// Parses a --check value: "none", "races", "serial", "footprint", "all".
/// nullopt for anything else.
std::optional<CheckConfig> parse_check(std::string_view name);

/// Comma-separated list of the valid --check spellings (diagnostics).
std::string check_names();

/// The full diagnostic for a bad --check value: names the flag, echoes the
/// offending value, lists every valid spelling (mirrors mechanism_error).
std::string check_error(const std::string& flag, const std::string& value);

/// Reads `--<flag>=<name>` into a CheckConfig; aborts with check_error()
/// on a bad value.
CheckConfig check_flag(util::Cli& cli, const std::string& flag = "check");

struct Violation {
  enum class Kind : std::uint8_t {
    kEscapedWrite,       ///< committed memory changed outside all channels
    kSerialDivergence,   ///< batch outcome != serial re-execution outcome
    kFootprintMismatch,  ///< access outside the declared conflict sets
    kStaticEscape,       ///< access outside the operator's static signature
    kCapacityGuard,      ///< HTM batch larger than the static c_safe bound
  };
  Kind kind;
  std::uint64_t batch = 0;   ///< global batch (activity) sequence number
  std::uint64_t offset = 0;  ///< heap byte offset of the disagreement
  std::string detail;        ///< human-readable description
};

const char* to_string(Violation::Kind kind);

/// The checker. Construct with the machine under test and a config, then
/// pass it as ExecutorOptions::decorator (directly or via the Options
/// structs of the runtimes/algorithms) so every executor the run builds is
/// wrapped. One Checker instance may wrap any number of executors on the
/// same machine; the DES event loop is single-threaded, so no locking.
class Checker final : public core::ExecutorDecorator,
                      public mem::WriteObserver {
 public:
  Checker(htm::DesMachine& machine, CheckConfig config);
  ~Checker() override;

  Checker(const Checker&) = delete;
  Checker& operator=(const Checker&) = delete;

  // core::ExecutorDecorator
  std::unique_ptr<core::ActivityExecutor> wrap(
      std::unique_ptr<core::ActivityExecutor> inner) override;

  // mem::WriteObserver (registered on the machine only in races mode)
  void on_legitimate_write(std::uint64_t offset, std::uint32_t len) override;
  void on_run_start() override;

  const CheckConfig& config() const { return config_; }
  htm::DesMachine& machine() { return machine_; }

  /// Arms the capacity-guard audit: every committed HTM batch tagged with
  /// a known OperatorId whose item count exceeds the policy's static
  /// c_safe bound becomes a kCapacityGuard violation. Used with
  /// --mechanism=auto to prove the auto dispatcher never speculates past
  /// its own capacity analysis (the clamp reroutes such batches). The
  /// policy must outlive the checker's use.
  void set_capacity_policy(const core::AutoPolicy* policy);

  /// Violations found so far (capped at kMaxStored; the total keeps
  /// counting past the cap).
  const std::vector<Violation>& violations() const { return violations_; }
  std::uint64_t violations_total() const { return violations_total_; }
  bool passed() const { return violations_total_ == 0; }

  std::uint64_t batches_checked() const { return batches_; }

  /// Chained FNV-1a digest over every committed batch's (word offset,
  /// value) write set in commit order (footprint mode). Two runs of a
  /// deterministic simulation must produce identical digests.
  std::uint64_t digest() const { return digest_; }

  /// Per-operator maxima over all committed batches tagged with a known
  /// OperatorId (footprint mode). The word counts come from the recording
  /// wrapper (operator-surface accesses only); the line counts from the
  /// HTM tracker at commit time, so they are zero for non-transactional
  /// mechanisms. `items_at_max_*` is the batch size of the batch that
  /// achieved the corresponding word maximum — the pair lets tests bound
  /// per-batch footprints against `count x per-item static signature`.
  struct FootprintStats {
    std::uint64_t batches = 0;
    std::uint64_t max_read_words = 0;
    std::uint64_t items_at_max_read = 0;
    std::uint64_t max_write_words = 0;
    std::uint64_t items_at_max_write = 0;
    std::uint64_t max_read_lines = 0;
    std::uint64_t max_write_lines = 0;
  };
  const FootprintStats& footprint_stats(core::OperatorId op) const {
    return footprint_stats_[static_cast<std::size_t>(op)];
  }

  /// Writes every stored violation (plus a summary line) to `out`.
  void report(std::ostream& out) const;

  inline static constexpr std::size_t kMaxStored = 64;

 private:
  friend class CheckedExecutor;
  friend class RecordingAccess;
  friend class ShadowAccess;

  /// Everything recorded about one in-flight batch on one thread. Reset at
  /// execute() and again at each transactional retry (item 0 re-entry);
  /// consumed by on_batch_done.
  struct BatchRecord {
    mem::WordMap pre;       ///< word offset -> committed pre-image
    mem::EpochSet read_set;
    mem::EpochSet write_set;
    std::vector<std::uint64_t> read_words;   ///< first-touch order
    std::vector<std::uint64_t> write_words;  ///< first-write order
    bool transactional = false;
    bool foreign = false;  ///< an Access touched memory off the SimHeap
    core::OperatorId op_id = core::OperatorId::kUnknown;
  };

  void begin_batch(std::uint32_t tid, core::OperatorId op_id);
  void begin_attempt(std::uint32_t tid);
  void on_batch_done(std::uint32_t tid, core::Mechanism mechanism,
                     std::uint64_t count,
                     const core::ActivityExecutor::ItemOp& op,
                     std::span<const std::uint64_t> results);

  /// dynamic-vs-static audit: every recorded word must fall in a heap
  /// allocation whose label the operator's static signature covers.
  void audit_static_signature(std::uint32_t tid, std::uint64_t batch_no);
  void update_footprint_stats(std::uint32_t tid, core::Mechanism mechanism,
                              std::uint64_t count);

  void replay_serial(BatchRecord& rec, std::uint64_t count,
                     const core::ActivityExecutor::ItemOp& op,
                     std::span<const std::uint64_t> results,
                     std::uint64_t batch_no);
  void audit_footprint_for(std::uint32_t tid, std::uint64_t batch_no);
  void fold_digest(BatchRecord& rec, std::uint64_t count);

  void scan_shadow(std::uint64_t batch_no);
  void sync_shadow_growth();
  void refresh_exempt();
  void compare_range(std::uint64_t lo, std::uint64_t hi,
                     std::uint64_t batch_no);

  void add_violation(Violation::Kind kind, std::uint64_t batch,
                     std::uint64_t offset, std::string detail);

  /// The committed 8-byte word at heap offset `word` (word-aligned; reads
  /// fewer bytes at the very end of the used region).
  std::uint64_t committed_word(std::uint64_t word) const;

  htm::DesMachine& machine_;
  CheckConfig config_;
  bool record_batches_ = false;  ///< serial || footprint

  std::vector<BatchRecord> records_;  ///< per thread id

  // races: shadow of the committed heap + pending legitimate intervals.
  std::vector<std::byte> shadow_;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> legit_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> exempt_;  ///< [lo,hi)
  std::size_t exempt_allocs_seen_ = 0;

  // serial: replay scratch (reused across batches).
  mem::WordMap overlay_;
  std::vector<std::uint64_t> replay_results_;

  std::uint64_t batches_ = 0;
  std::uint64_t digest_ = 14695981039346656037ull;  // FNV-1a offset basis
  std::vector<Violation> violations_;
  std::uint64_t violations_total_ = 0;

  // footprint: per-OperatorId maxima (indexed by the enum value; slot 0 =
  // kUnknown stays untouched).
  std::vector<FootprintStats> footprint_stats_;

  // capacity-guard audit (set_capacity_policy); nullptr = audit disarmed.
  const core::AutoPolicy* capacity_policy_ = nullptr;
};

}  // namespace aam::check
