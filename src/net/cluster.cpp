#include "net/cluster.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace aam::net {

Cluster::Cluster(const model::MachineConfig& config, model::HtmKind kind,
                 int num_nodes, int threads_per_node, mem::SimHeap& heap,
                 std::uint64_t seed)
    : machine_(config, kind, num_nodes * threads_per_node, heap, seed,
               /*num_domains=*/num_nodes),
      num_nodes_(num_nodes),
      threads_per_node_(threads_per_node),
      queues_(static_cast<std::size_t>(num_nodes)) {
  AAM_CHECK(num_nodes >= 1 && threads_per_node >= 1);
}

std::uint32_t Cluster::register_handler(AmHandler handler) {
  handlers_.push_back(std::move(handler));
  return static_cast<std::uint32_t>(handlers_.size() - 1);
}

void Cluster::set_fault_hook(NetFaultHook* hook) {
  AAM_CHECK_MSG(in_flight_ == 0,
                "fault hook must be (un)installed with no messages in flight");
  net_hook_ = hook;
  if (hook != nullptr && send_channels_.empty()) {
    const std::size_t pairs = static_cast<std::size_t>(num_nodes_) *
                              static_cast<std::size_t>(num_nodes_);
    send_channels_.resize(pairs);
    recv_channels_.resize(pairs);
  }
}

void Cluster::send(htm::ThreadCtx& ctx, int dst_node, std::uint32_t handler,
                   std::uint64_t arg0, std::uint64_t arg1,
                   std::vector<std::uint64_t> payload) {
  AAM_CHECK(dst_node >= 0 && dst_node < num_nodes_);
  AAM_CHECK(handler < handlers_.size());
  const int src = node_of_thread(ctx.thread_id());

  Message msg;
  msg.src_node = src;
  msg.dst_node = dst_node;
  msg.handler = handler;
  msg.arg0 = arg0;
  msg.arg1 = arg1;
  msg.payload = std::move(payload);

  const auto& n = config().net;
  const std::size_t bytes = msg.wire_bytes();
  ++stats_.messages_sent;
  stats_.bytes_sent += bytes;
  stats_.items_sent += msg.payload.size();

  // Sender CPU overhead o (plus serialization of the payload onto the
  // wire; the byte cost is charged to the wire, not the sender, as NICs
  // stream from memory).
  ctx.compute(n.overhead_ns);
  ++in_flight_;

  if (protocol_active()) {
    // Reliable delivery: tag with the channel's next sequence number,
    // retain a copy for retransmission, and arm the timeout. The message
    // stays in flight until its first (deduplicated) arrival.
    SendChannel& ch = send_channel(src, dst_node);
    msg.seq = ch.next_seq++;
    ch.pending.emplace(msg.seq,
                       PendingSend{msg, net_hook_->initial_rto_ns()});
    const double at = ctx.now();
    transmit(msg, at, /*retransmit=*/false);
    arm_retransmit(src, dst_node, msg.seq, at);
    return;
  }

  const double arrival = ctx.now() + n.latency_ns +
                         static_cast<double>(bytes) * n.byte_ns;
  machine_.schedule_callback(arrival, [this, m = std::move(msg)]() mutable {
    const int node = m.dst_node;
    queues_[node].push_back(std::move(m));
    --in_flight_;
    // Wake the node's threads; pollers drain the queue.
    for (int t = 0; t < threads_per_node_; ++t) {
      machine_.wake(thread_of(node, t));
    }
  });
}

void Cluster::transmit(const Message& msg, double at, bool retransmit) {
  const auto& n = config().net;
  if (retransmit) ++stats_.retransmitted;
  const MessageFate fate = net_hook_->fate(msg, retransmit);
  const double arrival =
      at + n.latency_ns + static_cast<double>(msg.wire_bytes()) * n.byte_ns +
      fate.extra_delay_ns;
  // Protocol deliveries are droppable callbacks: a crash-restore loses the
  // in-flight copy, but the sender's checkpointed pending entry re-arms a
  // retransmit timer, so the message still arrives exactly once.
  if (fate.drop) {
    ++stats_.dropped;
  } else {
    machine_.schedule_callback_droppable(arrival, [this, m = msg]() mutable {
      deliver(std::move(m));
    });
  }
  if (fate.duplicate) {
    ++stats_.duplicated;
    machine_.schedule_callback_droppable(arrival + fate.duplicate_delay_ns,
                                         [this, m = msg]() mutable {
                                           deliver(std::move(m));
                                         });
  }
}

void Cluster::arm_retransmit(int src, int dst, std::uint64_t seq, double at) {
  SendChannel& ch = send_channel(src, dst);
  const auto it = ch.pending.find(seq);
  if (it == ch.pending.end()) return;  // already acked
  machine_.schedule_callback_droppable(
      at + it->second.rto_ns, [this, src, dst, seq] {
        SendChannel& c = send_channel(src, dst);
        const auto p = c.pending.find(seq);
        if (p == c.pending.end()) return;  // ack landed in the meantime
        // Exponential backoff with a cap, then go again: retransmission is
        // NIC-side (the sending thread is not re-charged the overhead o).
        p->second.rto_ns = std::min(p->second.rto_ns * 2.0,
                                    net_hook_->rto_cap_ns());
        const double now = machine_.now();
        transmit(p->second.msg, now, /*retransmit=*/true);
        arm_retransmit(src, dst, seq, now);
      });
}

void Cluster::deliver(Message m) {
  // Ack every arriving copy (the copy whose ack got outrun by a timeout
  // just re-acks a no-longer-pending seq, which is a no-op), then discard
  // duplicates before they reach the node's queue: exactly-once delivery.
  send_ack(m.src_node, m.dst_node, m.seq, machine_.now());
  RecvChannel& rc = recv_channel(m.src_node, m.dst_node);
  if (!rc.accept(m.seq)) {
    ++stats_.dedup_discarded;
    return;
  }
  const int node = m.dst_node;
  queues_[node].push_back(std::move(m));
  --in_flight_;
  for (int t = 0; t < threads_per_node_; ++t) {
    machine_.wake(thread_of(node, t));
  }
}

void Cluster::send_ack(int src, int dst, std::uint64_t seq, double at) {
  machine_.schedule_callback_droppable(
      at + config().net.latency_ns, [this, src, dst, seq] {
        SendChannel& ch = send_channel(src, dst);
        const auto it = ch.pending.find(seq);
        if (it == ch.pending.end()) return;
        ch.pending.erase(it);
        ++stats_.acked;
      });
}

namespace {

void put_message(util::BlobWriter& w, const Message& m) {
  w.put(m.src_node);
  w.put(m.dst_node);
  w.put(m.handler);
  w.put(m.arg0);
  w.put(m.arg1);
  w.put(m.seq);
  w.put_vector(m.payload);
}

Message get_message(util::BlobReader& r) {
  Message m;
  m.src_node = r.get<int>();
  m.dst_node = r.get<int>();
  m.handler = r.get<std::uint32_t>();
  m.arg0 = r.get<std::uint64_t>();
  m.arg1 = r.get<std::uint64_t>();
  m.seq = r.get<std::uint64_t>();
  m.payload = r.get_vector<std::uint64_t>();
  return m;
}

}  // namespace

void Cluster::save_net(util::BlobWriter& w) const {
  w.put(stats_);
  w.put(in_flight_);
  w.put<std::uint64_t>(queues_.size());
  for (const auto& q : queues_) {
    w.put<std::uint64_t>(q.size());
    for (const Message& m : q) put_message(w, m);
  }
  w.put<std::uint64_t>(send_channels_.size());
  for (const SendChannel& ch : send_channels_) {
    w.put(ch.next_seq);
    w.put<std::uint64_t>(ch.pending.size());
    for (const auto& [seq, p] : ch.pending) {
      w.put(seq);
      w.put(p.rto_ns);
      put_message(w, p.msg);
    }
  }
  w.put<std::uint64_t>(recv_channels_.size());
  for (const RecvChannel& rc : recv_channels_) {
    w.put(rc.next_expected);
    w.put<std::uint64_t>(rc.seen_ahead.size());
    for (std::uint64_t s : rc.seen_ahead) w.put(s);
  }
}

std::uint64_t Cluster::restore_net(util::BlobReader& r) {
  stats_ = r.get<NetStats>();
  in_flight_ = r.get<std::uint64_t>();
  const std::uint64_t num_queues = r.get<std::uint64_t>();
  AAM_CHECK_MSG(num_queues == queues_.size(),
                "net snapshot node count mismatch");
  for (auto& q : queues_) {
    q.clear();
    const std::uint64_t n = r.get<std::uint64_t>();
    for (std::uint64_t i = 0; i < n; ++i) q.push_back(get_message(r));
  }
  const std::uint64_t num_send = r.get<std::uint64_t>();
  AAM_CHECK_MSG(num_send == send_channels_.size(),
                "net snapshot channel count mismatch");
  for (SendChannel& ch : send_channels_) {
    ch.next_seq = r.get<std::uint64_t>();
    ch.pending.clear();
    const std::uint64_t n = r.get<std::uint64_t>();
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t seq = r.get<std::uint64_t>();
      const double rto = r.get<double>();
      Message m = get_message(r);
      ch.pending.emplace(seq, PendingSend{std::move(m), rto});
    }
  }
  const std::uint64_t num_recv = r.get<std::uint64_t>();
  AAM_CHECK_MSG(num_recv == recv_channels_.size(),
                "net snapshot channel count mismatch");
  for (RecvChannel& rc : recv_channels_) {
    rc.next_expected = r.get<std::uint64_t>();
    rc.seen_ahead.clear();
    const std::uint64_t n = r.get<std::uint64_t>();
    for (std::uint64_t i = 0; i < n; ++i) {
      rc.seen_ahead.insert(r.get<std::uint64_t>());
    }
  }

  // Peer-assisted replay: each still-pending (unacked) send gets a fresh
  // timeout anchored at the restore instant. Its first fire retransmits
  // the retained copy; the receiver either applies it (the original copy
  // died with the crash) or dedup-discards it (it was accepted before the
  // checkpoint and only the ack was in flight).
  std::uint64_t replayed = 0;
  const double now = machine_.now();
  for (int src = 0; src < num_nodes_; ++src) {
    for (int dst = 0; dst < num_nodes_; ++dst) {
      if (send_channels_.empty()) continue;
      for (const auto& [seq, p] : send_channel(src, dst).pending) {
        arm_retransmit(src, dst, seq, now);
        ++replayed;
      }
    }
  }
  return replayed;
}

bool Cluster::poll(htm::ThreadCtx& ctx, Message& out) {
  const int node = node_of_thread(ctx.thread_id());
  auto& q = queues_[node];
  if (q.empty()) return false;
  out = std::move(q.front());
  q.pop_front();
  // Receiver-side AM dispatch: extracting the handler id and parameters
  // from the network (§2.1).
  ctx.compute(config().net.am_dispatch_ns);
  return true;
}

void Cluster::run_handler(htm::ThreadCtx& ctx, const Message& msg) {
  handlers_[msg.handler](ctx, msg);
}

bool Cluster::poll_and_handle(htm::ThreadCtx& ctx) {
  Message msg;
  if (!poll(ctx, msg)) return false;
  run_handler(ctx, msg);
  return true;
}

// ----------------------------------------------------------------- Coalescer

Coalescer::Coalescer(Cluster& cluster, std::uint32_t handler, int batch)
    : cluster_(cluster),
      handler_(handler),
      batch_(batch),
      buffers_(static_cast<std::size_t>(cluster.num_nodes())),
      arg0_(static_cast<std::size_t>(cluster.num_nodes()), 0) {
  AAM_CHECK(batch >= 1);
}

void Coalescer::add(htm::ThreadCtx& ctx, int dst_node, std::uint64_t item,
                    std::uint64_t arg0) {
  auto& buf = buffers_[static_cast<std::size_t>(dst_node)];
  buf.push_back(item);
  arg0_[static_cast<std::size_t>(dst_node)] = arg0;
  if (static_cast<int>(buf.size()) >= batch_) flush(ctx, dst_node);
}

void Coalescer::flush(htm::ThreadCtx& ctx, int dst_node) {
  auto& buf = buffers_[static_cast<std::size_t>(dst_node)];
  if (buf.empty()) return;
  cluster_.send(ctx, dst_node, handler_,
                arg0_[static_cast<std::size_t>(dst_node)], buf.size(),
                std::move(buf));
  buf = {};
}

void Coalescer::flush_all(htm::ThreadCtx& ctx) {
  for (int node = 0; node < cluster_.num_nodes(); ++node) flush(ctx, node);
}

void Coalescer::save_state(util::BlobWriter& w) const {
  w.put<std::uint64_t>(buffers_.size());
  for (const auto& buf : buffers_) w.put_vector(buf);
  w.put_vector(arg0_);
}

void Coalescer::restore_state(util::BlobReader& r) {
  const auto n = r.get<std::uint64_t>();
  AAM_CHECK_MSG(n == buffers_.size(),
                "coalescer destination count changed since checkpoint");
  for (auto& buf : buffers_) buf = r.get_vector<std::uint64_t>();
  arg0_ = r.get_vector<std::uint64_t>();
}

// ------------------------------------------------------------- RemoteAtomics

RemoteAtomics::RemoteAtomics(Cluster& cluster) : cluster_(cluster) {}

void RemoteAtomics::issue(htm::ThreadCtx& ctx, const void* target,
                          std::function<void()> apply) {
  auto& machine = cluster_.machine();
  AAM_CHECK_MSG(machine.heap().contains(target),
                "remote atomic target must live on the SimHeap");
  const auto& n = cluster_.config().net;
  ++issued_;

  // Pipelined issue: the sender only pays the injection gap.
  ctx.compute(n.rmw_issue_ns);
  const double arrival = ctx.now() + n.rmw_latency_ns;
  const mem::LineId line = machine.heap().line_of(target);

  machine.schedule_callback(arrival, [this, line, target,
                                      apply = std::move(apply)] {
    auto& m = cluster_.machine();
    auto& stripes = m.stripes();
    // The NIC-side atomic contends for the line like any other atomic.
    const double start = std::max(m.now(), stripes.available_at(line));
    const double done = start + cluster_.config().atomics.cas_ns;
    stripes.set_available_at(line,
                             start + cluster_.config().atomics.line_transfer_ns);
    stripes.set_owner(line, mem::StripeTable::kNoOwner);
    apply();
    m.bump_addr(target);
    ++applied_;
    ++cluster_.stats_mutable().remote_atomics;
    last_completion_ = std::max(last_completion_, done);
  });
}

void RemoteAtomics::cas_u64(htm::ThreadCtx& ctx, std::uint64_t& target,
                            std::uint64_t expect, std::uint64_t desired) {
  issue(ctx, &target, [&target, expect, desired] {
    if (target == expect) target = desired;
  });
}

void RemoteAtomics::acc_u64(htm::ThreadCtx& ctx, std::uint64_t& target,
                            std::uint64_t delta) {
  issue(ctx, &target, [&target, delta] { target += delta; });
}

void RemoteAtomics::acc_f64(htm::ThreadCtx& ctx, double& target,
                            double delta) {
  issue(ctx, &target, [&target, delta] { target += delta; });
}

}  // namespace aam::net
