#pragma once

// Simulated distributed-memory cluster (§3.1, §5.6).
//
// A Cluster lays N simulated nodes over one DesMachine event loop: node i
// owns threads [i*T, (i+1)*T) and its own HTM serialization domain. The
// network between nodes follows a LogGP-flavoured model (per-message sender
// overhead o, wire latency L, per-byte cost 1/B) with parameters from the
// machine config (§5.1: BG/Q 5D torus + PAMI, or InfiniBand FDR + MPI-3).
//
// Two communication mechanisms are provided, matching the paper's §5.6
// comparison:
//
//  * Active messages (send/poll): a message carries a handler id, two
//    scalar arguments and an optional payload of 64-bit items (coalesced
//    operator invocations). Receiver threads poll their node's queue; the
//    per-message receiver dispatch cost models the AM runtime.
//  * RemoteAtomics: one-sided PAMI_Rmw / MPI-3-RMA-style remote CAS/ACC,
//    processed "at the NIC" of the target without involving its threads,
//    deeply pipelined at the sender.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "htm/des_engine.hpp"
#include "mem/sim_heap.hpp"
#include "model/machines.hpp"

namespace aam::net {

/// An in-flight or delivered active message.
struct Message {
  int src_node = 0;
  int dst_node = 0;
  std::uint32_t handler = 0;
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  /// Per-(src,dst) channel sequence number; 0 = unsequenced (the reliable-
  /// delivery protocol is off). Fits in the fixed header below.
  std::uint64_t seq = 0;
  std::vector<std::uint64_t> payload;  ///< coalesced items

  /// Modelled wire size: a fixed header plus 8 bytes per payload item.
  std::size_t wire_bytes() const { return 32 + payload.size() * 8; }
};

/// Receiver-side handler; runs on a polling thread of the target node.
using AmHandler = std::function<void(htm::ThreadCtx&, const Message&)>;

/// What the fault layer decided for one wire transmission (original send
/// or retransmission) of an active message.
struct MessageFate {
  bool drop = false;       ///< the copy never arrives
  bool duplicate = false;  ///< a second copy also arrives
  double extra_delay_ns = 0;      ///< delay spike / reorder jitter
  double duplicate_delay_ns = 0;  ///< additional delay of the duplicate
};

/// Network fault-injection seam (Cluster::set_fault_hook). Implemented by
/// fault::FaultInjector; decisions must be drawn from streams forked off
/// the simulation seed. While `net_active()` is true the cluster runs the
/// reliable-delivery protocol (sequence numbers, receiver dedup, sender
/// ack/timeout/retransmit); when false, sends take the original
/// zero-overhead path and are bit-identical to a hook-free build.
class NetFaultHook {
 public:
  virtual ~NetFaultHook() = default;
  virtual bool net_active() const = 0;
  /// Consulted once per wire transmission (retransmissions included).
  virtual MessageFate fate(const Message& msg, bool retransmit) = 0;
  /// Initial sender retransmit timeout and its exponential-backoff cap.
  virtual double initial_rto_ns() const = 0;
  virtual double rto_cap_ns() const = 0;
};

struct NetStats {
  std::uint64_t messages_sent = 0;  ///< logical sends (excl. retransmits)
  std::uint64_t bytes_sent = 0;     ///< wire bytes of logical sends
  std::uint64_t items_sent = 0;   ///< payload items (coalescing numerator)
  std::uint64_t remote_atomics = 0;
  // Reliable-delivery protocol counters (all zero with the protocol off).
  std::uint64_t dropped = 0;          ///< wire copies lost to injection
  std::uint64_t duplicated = 0;       ///< injected duplicate wire copies
  std::uint64_t retransmitted = 0;    ///< sender timeout retransmissions
  std::uint64_t acked = 0;            ///< sends confirmed by a first ack
  std::uint64_t dedup_discarded = 0;  ///< receiver-side duplicate discards
};

class Cluster {
 public:
  Cluster(const model::MachineConfig& config, model::HtmKind kind,
          int num_nodes, int threads_per_node, mem::SimHeap& heap,
          std::uint64_t seed = 1);

  htm::DesMachine& machine() { return machine_; }
  int num_nodes() const { return num_nodes_; }
  int threads_per_node() const { return threads_per_node_; }
  const model::MachineConfig& config() const { return machine_.config(); }

  int node_of_thread(std::uint32_t tid) const {
    return static_cast<int>(tid) / threads_per_node_;
  }
  std::uint32_t thread_of(int node, int local) const {
    return static_cast<std::uint32_t>(node * threads_per_node_ + local);
  }

  /// Registers a receiver-side handler; returns its id for send().
  std::uint32_t register_handler(AmHandler handler);

  /// Sends an active message from the calling thread. Charges the sender
  /// overhead o to `ctx`; the message is delivered (enqueued and target
  /// threads woken) after L + wire_bytes/B.
  void send(htm::ThreadCtx& ctx, int dst_node, std::uint32_t handler,
            std::uint64_t arg0, std::uint64_t arg1 = 0,
            std::vector<std::uint64_t> payload = {});

  /// Receiver polling: pops the next message for `ctx`'s node, charging
  /// the per-message AM dispatch cost. Returns false when the queue is
  /// empty. Does NOT run the handler — call run_handler() (so the worker
  /// can decide to stage a transaction from within the handler).
  bool poll(htm::ThreadCtx& ctx, Message& out);

  /// Invokes the registered handler for a polled message.
  void run_handler(htm::ThreadCtx& ctx, const Message& msg);

  /// Convenience: poll and, if a message was available, run its handler.
  bool poll_and_handle(htm::ThreadCtx& ctx);

  /// Conservative lookahead L of the cluster's channels: no send, ack, or
  /// remote atomic issued at virtual time t can take effect at another
  /// node before t + lookahead_ns(). Every delivery path charges at least
  /// the wire latency (message bodies add bytes/B on top; remote atomics
  /// charge the RMW round-trip), so this is the min channel latency a
  /// conservative parallel driver (sim::HorizonGate) may assume.
  double lookahead_ns() const {
    const auto& n = config().net;
    return n.rmw_latency_ns < n.latency_ns ? n.rmw_latency_ns : n.latency_ns;
  }

  bool queue_empty(int node) const { return queues_[node].empty(); }
  std::size_t pending(int node) const { return queues_[node].size(); }
  /// Messages sent but not yet delivered anywhere in the cluster.
  std::uint64_t in_flight() const { return in_flight_; }

  const NetStats& stats() const { return stats_; }
  NetStats& stats_mutable() { return stats_; }

  /// Installs (or clears, with nullptr) the network fault hook. Not owned;
  /// must outlive the cluster's traffic. Must be called while nothing is
  /// in flight — the delivery guarantee is per-message, not retrofittable.
  void set_fault_hook(NetFaultHook* hook);
  NetFaultHook* fault_hook() const { return net_hook_; }

  // --- crash-stop recovery (src/recovery/) --------------------------------

  /// Serializes the cluster's durable network state: statistics, the
  /// in-flight count, per-node receive queues, and the reliable-delivery
  /// channel state (sender pending maps with their current RTOs, receiver
  /// watermarks and out-of-order sets).
  void save_net(util::BlobWriter& w) const;

  /// Restores the state captured by save_net and re-arms a retransmit
  /// timer for every still-pending send: in-flight wire copies and timer
  /// callbacks lost in the crash are re-derived from the pending maps —
  /// the receiver-side dedup path discards anything already accepted.
  /// Must run after DesMachine::restore_core (which drops all callbacks).
  /// Returns the number of pending sends whose replay was re-armed.
  std::uint64_t restore_net(util::BlobReader& r);

 private:
  bool protocol_active() const {
    return net_hook_ != nullptr && net_hook_->net_active();
  }

  /// One wire transmission of a sequenced message at virtual time `at`:
  /// consults the fault hook, schedules arrival(s), and counts.
  void transmit(const Message& msg, double at, bool retransmit);
  /// Arms the sender-side timeout for pending message `seq`; fires at
  /// `at` + the pending entry's current RTO, doubles it (capped), and
  /// retransmits unless the ack landed first.
  void arm_retransmit(int src, int dst, std::uint64_t seq, double at);
  /// Receiver-side arrival of one wire copy: acks, dedups, enqueues.
  void deliver(Message m);
  /// NIC-side ack from `dst` back to `src` for `seq` (control plane:
  /// header-only, modelled reliable).
  void send_ack(int src, int dst, std::uint64_t seq, double at);

  /// Sender book-keeping for one unacked sequenced message.
  struct PendingSend {
    Message msg;        ///< retained copy for retransmission
    double rto_ns = 0;  ///< current timeout (doubles per retransmit)
  };
  struct SendChannel {
    std::uint64_t next_seq = 1;
    std::map<std::uint64_t, PendingSend> pending;
  };
  struct RecvChannel {
    std::uint64_t next_expected = 1;  ///< all seq below this were accepted
    std::set<std::uint64_t> seen_ahead;

    /// True if `seq` is new (advances the watermark); false = duplicate.
    bool accept(std::uint64_t seq) {
      if (seq < next_expected) return false;
      if (!seen_ahead.insert(seq).second) return false;
      while (!seen_ahead.empty() && *seen_ahead.begin() == next_expected) {
        seen_ahead.erase(seen_ahead.begin());
        ++next_expected;
      }
      return true;
    }
  };
  SendChannel& send_channel(int src, int dst) {
    return send_channels_[static_cast<std::size_t>(src) *
                              static_cast<std::size_t>(num_nodes_) +
                          static_cast<std::size_t>(dst)];
  }
  RecvChannel& recv_channel(int src, int dst) {
    return recv_channels_[static_cast<std::size_t>(src) *
                              static_cast<std::size_t>(num_nodes_) +
                          static_cast<std::size_t>(dst)];
  }

  htm::DesMachine machine_;
  int num_nodes_;
  int threads_per_node_;
  std::vector<AmHandler> handlers_;
  std::vector<std::deque<Message>> queues_;
  NetStats stats_;
  std::uint64_t in_flight_ = 0;
  NetFaultHook* net_hook_ = nullptr;
  std::vector<SendChannel> send_channels_;  // lazily sized on hook install
  std::vector<RecvChannel> recv_channels_;
};

/// Per-destination buffering of operator invocations: messages flowing to
/// the same target are sent as a single coalesced active message of up to
/// C items (§4.2, §5.6). One Coalescer per sending thread.
class Coalescer {
 public:
  /// `batch` is the coalescing factor C; C=1 disables coalescing.
  Coalescer(Cluster& cluster, std::uint32_t handler, int batch);

  /// Buffers one 64-bit item for `dst_node`; flushes when C items are
  /// pending. `arg0` is carried in the message header of the flush.
  void add(htm::ThreadCtx& ctx, int dst_node, std::uint64_t item,
           std::uint64_t arg0 = 0);

  /// Flushes any partial buffer for one node / all nodes.
  void flush(htm::ThreadCtx& ctx, int dst_node);
  void flush_all(htm::ThreadCtx& ctx);

  /// Checkpoint support (src/recovery/): the partial per-destination
  /// buffers are durable spawner state — items buffered but not yet sent
  /// would otherwise vanish in a crash without being retransmittable.
  void save_state(util::BlobWriter& w) const;
  void restore_state(util::BlobReader& r);

 private:
  Cluster& cluster_;
  std::uint32_t handler_;
  int batch_;
  std::vector<std::vector<std::uint64_t>> buffers_;  // per destination
  std::vector<std::uint64_t> arg0_;
};

/// One-sided remote atomics in the style of PAMI_Rmw / MPI-3 RMA
/// fetch-ops (§5.6). Operations are pipelined: the sender pays only the
/// issue gap; the update applies at the target after the remote-atomic
/// latency without involving target threads.
class RemoteAtomics {
 public:
  explicit RemoteAtomics(Cluster& cluster);

  /// Remote CAS on a 64-bit word owned by another node.
  void cas_u64(htm::ThreadCtx& ctx, std::uint64_t& target,
               std::uint64_t expect, std::uint64_t desired);
  /// Remote accumulate (fetch-and-add) on a 64-bit word / double.
  void acc_u64(htm::ThreadCtx& ctx, std::uint64_t& target,
               std::uint64_t delta);
  void acc_f64(htm::ThreadCtx& ctx, double& target, double delta);

  /// Completion time of the last remote atomic applied at any target
  /// (the makespan contribution of outstanding one-sided traffic).
  double last_completion() const { return last_completion_; }
  std::uint64_t issued() const { return issued_; }
  std::uint64_t applied() const { return applied_; }

 private:
  /// Charges the issue gap at the sender and schedules `apply` at the
  /// target after the remote-atomic latency plus line contention.
  void issue(htm::ThreadCtx& ctx, const void* target,
             std::function<void()> apply);

  Cluster& cluster_;
  double last_completion_ = 0;
  std::uint64_t issued_ = 0;
  std::uint64_t applied_ = 0;
};

}  // namespace aam::net
