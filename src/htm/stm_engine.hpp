#pragma once

// Threaded software transactional memory engine.
//
// The DES engine (des_engine.hpp) models performance; this engine provides
// *real* isolation and atomicity on real std::threads, behind the same
// load/store/fetch_add surface. It exists so the test suite can exercise
// transaction semantics under genuine OS-level concurrency (linearizability
// and invariant checks) and so examples can run outside the simulator.
//
// The algorithm is TL2-flavoured word-based STM:
//   * a global version clock;
//   * a fixed table of versioned spinlocks, one per hashed address stripe;
//   * reads validate stripe versions against the transaction's snapshot;
//   * writes are buffered and published at commit under stripe locks taken
//     in canonical order (no deadlock), with read-set revalidation.
//
// This is the paper's observation that "other mechanisms such as
// distributed STM could also be used" (§8) made concrete.

#include <atomic>
#include <cstdint>
#include <cstring>
#include <vector>

#include "htm/abort.hpp"
#include "mem/footprint.hpp"

namespace aam::htm {

class StmEngine;

/// Transactional context for the threaded STM. Mirrors the Txn surface of
/// the DES engine so operator code can be written once and templated.
class StmTxn {
 public:
  template <typename T>
  T load(const T& ref) {
    static_assert(sizeof(T) <= 8 && std::is_trivially_copyable_v<T>);
    const std::uintptr_t addr = reinterpret_cast<std::uintptr_t>(&ref);
    const std::uint64_t word = load_word(addr & ~std::uintptr_t{7});
    T out;
    std::memcpy(&out, reinterpret_cast<const char*>(&word) + (addr & 7u),
                sizeof(T));
    return out;
  }

  template <typename T>
  void store(T& ref, T value) {
    static_assert(sizeof(T) <= 8 && std::is_trivially_copyable_v<T>);
    const std::uintptr_t addr = reinterpret_cast<std::uintptr_t>(&ref);
    const std::uintptr_t word_addr = addr & ~std::uintptr_t{7};
    std::uint64_t word = load_word(word_addr);
    std::memcpy(reinterpret_cast<char*>(&word) + (addr & 7u), &value,
                sizeof(T));
    store_word(word_addr, word);
  }

  template <typename T>
  T fetch_add(T& ref, T delta) {
    const T old = load(ref);
    store(ref, static_cast<T>(old + delta));
    return old;
  }

  [[noreturn]] void abort() { throw TxAbort{AbortReason::kExplicit}; }

  bool serialized() const { return false; }

 private:
  friend class StmEngine;
  explicit StmTxn(StmEngine& engine) : engine_(engine) {}

  std::uint64_t load_word(std::uintptr_t word_addr);
  void store_word(std::uintptr_t word_addr, std::uint64_t word);

  StmEngine& engine_;
  std::uint64_t snapshot_ = 0;
  mem::WordMap write_buffer_;
  std::vector<std::uint32_t> read_stripes_;
  std::vector<std::uint32_t> write_stripes_;
  mem::EpochSet seen_read_;
  mem::EpochSet seen_write_;
};

class StmEngine {
 public:
  /// `stripe_locks` is rounded up to a power of two.
  explicit StmEngine(std::size_t stripe_locks = std::size_t{1} << 16);

  StmEngine(const StmEngine&) = delete;
  StmEngine& operator=(const StmEngine&) = delete;

  /// Runs `body(StmTxn&)` atomically, retrying on conflicts with
  /// exponential backoff. Returns the number of aborts endured.
  /// An explicit Txn::abort() rolls back and does NOT retry (the activity
  /// chose to do nothing); this matches May-Fail operator usage.
  template <typename F>
  TxnOutcome atomically(F&& body) {
    TxnOutcome outcome;
    StmTxn txn(*this);
    for (int attempt = 0;; ++attempt) {
      begin(txn);
      try {
        body(txn);
      } catch (const TxAbort& a) {
        if (a.reason == AbortReason::kExplicit) {
          stats_explicit_.fetch_add(1, std::memory_order_relaxed);
          return outcome;
        }
        ++outcome.aborts;
        backoff(attempt);
        continue;
      }
      if (commit(txn)) {
        stats_commits_.fetch_add(1, std::memory_order_relaxed);
        return outcome;
      }
      ++outcome.aborts;
      stats_aborts_.fetch_add(1, std::memory_order_relaxed);
      backoff(attempt);
    }
  }

  std::uint64_t commits() const { return stats_commits_.load(); }
  std::uint64_t aborts() const { return stats_aborts_.load(); }
  /// Aborts requested by the transaction body via StmTxn::abort().
  /// Counted separately from aborts(), which tallies only commit-time
  /// validation/lock conflicts: an explicit abort is a completed activity
  /// that chose to do nothing, not a retry.
  std::uint64_t explicit_aborts() const { return stats_explicit_.load(); }

 private:
  friend class StmTxn;

  struct alignas(64) VersionedLock {
    std::atomic<std::uint64_t> word{0};  // LSB = locked, upper bits = version
  };

  std::uint32_t stripe_of(std::uintptr_t addr) const;
  void begin(StmTxn& txn);
  bool commit(StmTxn& txn);
  static void backoff(int attempt);

  std::vector<VersionedLock> locks_;
  std::uint32_t mask_;
  std::atomic<std::uint64_t> clock_{0};
  std::atomic<std::uint64_t> stats_commits_{0};
  std::atomic<std::uint64_t> stats_aborts_{0};
  std::atomic<std::uint64_t> stats_explicit_{0};
};

}  // namespace aam::htm
