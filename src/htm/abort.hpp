#pragma once

// Abort taxonomy and transaction statistics.
//
// The paper distinguishes (Tables 3c/3f, Fig 4) aborts caused by memory
// conflicts, by speculative-buffer overflows, and by "other reasons"
// (interrupts, context switches, hardware events). The distinction is
// load-bearing for its analysis — e.g. Has-C aborts are dominated by
// buffer overflows for coarse transactions while Has-P's are not — so the
// emulation tracks them separately and exactly.

#include <cstdint>

namespace aam::htm {

enum class AbortReason : std::uint8_t {
  kConflict,  ///< another transaction/atomic committed into our footprint
  kCapacity,  ///< speculative state exceeded the HTM buffer
  kOther,     ///< interrupt/context-switch-style asynchronous abort
  kExplicit,  ///< user-requested abort (Txn::abort())
};

inline const char* to_string(AbortReason r) {
  switch (r) {
    case AbortReason::kConflict: return "conflict";
    case AbortReason::kCapacity: return "capacity";
    case AbortReason::kOther: return "other";
    case AbortReason::kExplicit: return "explicit";
  }
  return "?";
}

/// Thrown out of a transaction body when the speculative execution cannot
/// continue (capacity overflow, explicit abort). Control never returns to
/// the body, mirroring how a hardware abort rolls back to XBEGIN.
struct TxAbort {
  AbortReason reason;
};

/// Counters for one engine/thread. All counts are exact (measured from the
/// emulation, never synthesized).
struct HtmStats {
  std::uint64_t started = 0;     ///< speculative attempts (incl. retries)
  std::uint64_t committed = 0;   ///< successful speculative commits
  std::uint64_t serialized = 0;  ///< fallback/irrevocable executions
  std::uint64_t aborts_conflict = 0;
  std::uint64_t aborts_capacity = 0;
  std::uint64_t aborts_other = 0;
  std::uint64_t aborts_explicit = 0;
  std::uint64_t atomic_cas = 0;
  std::uint64_t atomic_acc = 0;

  std::uint64_t total_aborts() const {
    return aborts_conflict + aborts_capacity + aborts_other + aborts_explicit;
  }
  /// Transactions that eventually completed (speculatively or serialized).
  std::uint64_t completed() const { return committed + serialized; }

  void merge(const HtmStats& o) {
    started += o.started;
    committed += o.committed;
    serialized += o.serialized;
    aborts_conflict += o.aborts_conflict;
    aborts_capacity += o.aborts_capacity;
    aborts_other += o.aborts_other;
    aborts_explicit += o.aborts_explicit;
    atomic_cas += o.atomic_cas;
    atomic_acc += o.atomic_acc;
  }
};

/// Per-activity outcome reported to the `done` callback of a staged
/// transaction (always eventually succeeds at the hardware level; MayFail
/// semantics live at the algorithm level, §3.2.2).
struct TxnOutcome {
  bool serialized = false;  ///< completed on the irrevocable path
  /// Serialized because the thread hit the livelock watermark (consecutive
  /// aborts across activities, see htm::ResilienceConfig) rather than the
  /// per-activity retry policy. AdaptiveBatch treats this as a signal to
  /// enter its cooldown regime.
  bool escalated = false;
  int aborts = 0;           ///< rollbacks before completion
  double start_ns = 0;      ///< virtual time of first attempt
  double end_ns = 0;        ///< virtual completion time
};

}  // namespace aam::htm
