#pragma once

// Fault-injection seam and self-healing knobs of the DES engine.
//
// The engine only *counts* what actually happened (the abort.hpp contract:
// counters are exact, never synthesized), so injected faults enter through
// a hook that the engine consults at well-defined points:
//
//   * inject_other_abort() — once per successful speculative body run,
//     before the machine's own Poisson "other"-abort model. A true return
//     turns that attempt into exactly one observed kOther abort, so the
//     injector's own count always equals the observed delta.
//   * slowdown() — a multiplicative factor (>= 1) applied to a thread's
//     elapsed virtual time; stragglers and node brown-outs are windows
//     where the factor exceeds 1.
//
// The hardening side lives in ResilienceConfig: a per-thread consecutive-
// abort watermark that escalates livelocked threads to the irrevocable
// path (and flags the outcome so AdaptiveBatch can enter its cooldown
// regime), and a global progress watchdog that turns a stalled simulation
// into a structured StallError instead of an endless event loop.

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

namespace aam::htm {

class DesMachine;

/// Injection interface consulted by DesMachine when installed (see
/// DesMachine::set_fault_hook). Implemented by fault::FaultInjector; all
/// randomness must come from streams forked off the simulation seed so the
/// fault schedule is bit-reproducible.
class FaultHook {
 public:
  virtual ~FaultHook() = default;

  /// Consulted after a speculative body ran to completion. Return true to
  /// abort the attempt with AbortReason::kOther; `frac_out` (in [0, 1))
  /// selects how far into the attempt the abort strikes.
  virtual bool inject_other_abort(std::uint32_t tid, double start_ns,
                                  double duration_ns, double& frac_out) = 0;

  /// Multiplicative slowdown (>= 1.0) for `tid` around virtual time
  /// `now_ns`. 1.0 = full speed.
  virtual double slowdown(std::uint32_t tid, double now_ns) = 0;

  /// Consulted once per completed activity (the engine's finish_txn seam,
  /// i.e. "mid-batch") and once per dispatched event boundary (so
  /// non-speculative mechanisms without transactional completions crash
  /// too). Return true to crash-stop the machine at `now_ns`: the engine
  /// throws CrashError, dropping all volatile state; a registered
  /// RecoveryClient then restores from the last checkpoint.
  /// Default: never crash, so existing hooks are unaffected.
  virtual bool inject_crash(std::uint32_t tid, double now_ns) {
    (void)tid;
    (void)now_ns;
    return false;
  }
};

/// Runtime-hardening configuration (DesMachine::set_resilience). The
/// defaults are calibrated to be invisible in fault-free runs: the retry
/// policies cap per-transaction abort streaks at max_retries + 2 << 32,
/// and commits arrive many orders of magnitude more often than once per
/// simulated second.
struct ResilienceConfig {
  /// Consecutive aborts on one thread — across activities, reset by any
  /// completion — before the thread escalates to irrevocable
  /// serialization and the activity's outcome is flagged `escalated`.
  /// 0 disables livelock detection.
  int livelock_watermark = 32;
  /// Simulated nanoseconds without any activity completing, while at
  /// least one transaction is in flight, before the watchdog throws
  /// StallError. 0 disables the watchdog.
  double watchdog_ns = 1e9;
};

/// What the watchdog saw when it declared the simulation stalled.
struct StallDiagnostic {
  double now_ns = 0;            ///< virtual time of the detection
  double last_progress_ns = 0;  ///< virtual time of the last completion
  int inflight_txns = 0;        ///< activities started but not completed
  std::uint32_t worst_tid = 0;  ///< thread with the longest abort streak
  int worst_streak = 0;         ///< that thread's consecutive aborts
  std::uint64_t events_processed = 0;
  /// In-flight cluster messages at detection time (0 when the machine is
  /// not the substrate of a net::Cluster, or no RecoveryClient reports).
  std::uint64_t inflight_messages = 0;
  /// Id of the last checkpoint taken before the stall (0 = none): a hung
  /// *recovery* is then diagnosable from the exception alone.
  std::uint64_t last_checkpoint_id = 0;

  std::string to_string() const;
};

/// Thrown out of DesMachine::run() by the progress watchdog. Carries the
/// structured diagnostic; what() renders it for logs.
class StallError : public std::runtime_error {
 public:
  explicit StallError(StallDiagnostic d)
      : std::runtime_error(d.to_string()), diagnostic(d) {}
  StallDiagnostic diagnostic;
};

/// What the crash injector saw when it killed the machine.
struct CrashDiagnostic {
  double now_ns = 0;        ///< virtual time of the crash
  std::uint32_t tid = 0;    ///< thread whose completion triggered it
  std::uint64_t events_processed = 0;

  std::string to_string() const;
};

/// Thrown out of DesMachine::run() when FaultHook::inject_crash fires and
/// no RecoveryClient is installed (an unrecoverable crash). With a client
/// installed the engine recovers in place and never surfaces this.
class CrashError : public std::runtime_error {
 public:
  explicit CrashError(CrashDiagnostic d)
      : std::runtime_error(d.to_string()), diagnostic(d) {}
  CrashDiagnostic diagnostic;
};

/// Host-side durable state a component contributes to every checkpoint.
/// `save` appends the component's bytes; `restore` consumes exactly what
/// save wrote. Registered via RecoveryClient::register_host_state and
/// invoked in registration order (restore in the same order).
struct HostStateFns {
  std::function<void(std::vector<std::uint8_t>&)> save;
  std::function<void(const std::uint8_t*, std::size_t)> restore;
};

/// The engine's view of the recovery subsystem (implemented by
/// recovery::RecoveryManager). The DesMachine calls the checkpoint hooks
/// at safe instants and on_crash when a FaultHook kills the machine; the
/// client decides whether a checkpoint is due and performs restores.
class RecoveryClient {
 public:
  virtual ~RecoveryClient() = default;

  /// run()/begin_external_run() entered the event loop (always a safe
  /// instant: no transactions in flight yet this run).
  virtual void on_run_entry(DesMachine& machine) = 0;

  /// run() drained the queue and is about to consult the quiescence hook.
  virtual void on_quiescence(DesMachine& machine) = 0;

  /// step() is at an event boundary and the machine reports it safe
  /// (no in-flight txns, no generic callbacks pending).
  virtual void on_event_boundary(DesMachine& machine) = 0;

  /// A crash fired. Return true after restoring the machine from the last
  /// checkpoint (the engine resumes its event loop); false to propagate
  /// the CrashError (no checkpoint available).
  virtual bool on_crash(DesMachine& machine, const CrashDiagnostic& d) = 0;

  /// Registers host-side durable state; returns a token for unregister.
  virtual std::uint64_t register_host_state(HostStateFns fns) = 0;
  virtual void unregister_host_state(std::uint64_t token) = 0;

  /// Telemetry surfaced into StallDiagnostic.
  virtual std::uint64_t last_checkpoint_id() const = 0;
  virtual std::uint64_t inflight_messages() const = 0;
};

/// RAII registration of one component's host state with a client. A null
/// client makes the registration a no-op, so call sites can bind
/// unconditionally and stay inert in non-recovery runs.
class ScopedHostState {
 public:
  ScopedHostState(RecoveryClient* client, HostStateFns fns)
      : client_(client) {
    if (client_) token_ = client_->register_host_state(std::move(fns));
  }
  ~ScopedHostState() {
    if (client_) client_->unregister_host_state(token_);
  }
  ScopedHostState(const ScopedHostState&) = delete;
  ScopedHostState& operator=(const ScopedHostState&) = delete;

 private:
  RecoveryClient* client_ = nullptr;
  std::uint64_t token_ = 0;
};

}  // namespace aam::htm
