#pragma once

// Fault-injection seam and self-healing knobs of the DES engine.
//
// The engine only *counts* what actually happened (the abort.hpp contract:
// counters are exact, never synthesized), so injected faults enter through
// a hook that the engine consults at well-defined points:
//
//   * inject_other_abort() — once per successful speculative body run,
//     before the machine's own Poisson "other"-abort model. A true return
//     turns that attempt into exactly one observed kOther abort, so the
//     injector's own count always equals the observed delta.
//   * slowdown() — a multiplicative factor (>= 1) applied to a thread's
//     elapsed virtual time; stragglers and node brown-outs are windows
//     where the factor exceeds 1.
//
// The hardening side lives in ResilienceConfig: a per-thread consecutive-
// abort watermark that escalates livelocked threads to the irrevocable
// path (and flags the outcome so AdaptiveBatch can enter its cooldown
// regime), and a global progress watchdog that turns a stalled simulation
// into a structured StallError instead of an endless event loop.

#include <cstdint>
#include <stdexcept>
#include <string>

namespace aam::htm {

/// Injection interface consulted by DesMachine when installed (see
/// DesMachine::set_fault_hook). Implemented by fault::FaultInjector; all
/// randomness must come from streams forked off the simulation seed so the
/// fault schedule is bit-reproducible.
class FaultHook {
 public:
  virtual ~FaultHook() = default;

  /// Consulted after a speculative body ran to completion. Return true to
  /// abort the attempt with AbortReason::kOther; `frac_out` (in [0, 1))
  /// selects how far into the attempt the abort strikes.
  virtual bool inject_other_abort(std::uint32_t tid, double start_ns,
                                  double duration_ns, double& frac_out) = 0;

  /// Multiplicative slowdown (>= 1.0) for `tid` around virtual time
  /// `now_ns`. 1.0 = full speed.
  virtual double slowdown(std::uint32_t tid, double now_ns) = 0;
};

/// Runtime-hardening configuration (DesMachine::set_resilience). The
/// defaults are calibrated to be invisible in fault-free runs: the retry
/// policies cap per-transaction abort streaks at max_retries + 2 << 32,
/// and commits arrive many orders of magnitude more often than once per
/// simulated second.
struct ResilienceConfig {
  /// Consecutive aborts on one thread — across activities, reset by any
  /// completion — before the thread escalates to irrevocable
  /// serialization and the activity's outcome is flagged `escalated`.
  /// 0 disables livelock detection.
  int livelock_watermark = 32;
  /// Simulated nanoseconds without any activity completing, while at
  /// least one transaction is in flight, before the watchdog throws
  /// StallError. 0 disables the watchdog.
  double watchdog_ns = 1e9;
};

/// What the watchdog saw when it declared the simulation stalled.
struct StallDiagnostic {
  double now_ns = 0;            ///< virtual time of the detection
  double last_progress_ns = 0;  ///< virtual time of the last completion
  int inflight_txns = 0;        ///< activities started but not completed
  std::uint32_t worst_tid = 0;  ///< thread with the longest abort streak
  int worst_streak = 0;         ///< that thread's consecutive aborts
  std::uint64_t events_processed = 0;

  std::string to_string() const;
};

/// Thrown out of DesMachine::run() by the progress watchdog. Carries the
/// structured diagnostic; what() renders it for logs.
class StallError : public std::runtime_error {
 public:
  explicit StallError(StallDiagnostic d)
      : std::runtime_error(d.to_string()), diagnostic(d) {}
  StallDiagnostic diagnostic;
};

}  // namespace aam::htm
