#pragma once

// Discrete-event HTM machine.
//
// DesMachine simulates one machine configuration (§5.1) with T logical
// threads sharing a SimHeap. Each thread runs a Worker; the engine drives
// all threads in virtual-time order through a deterministic event queue.
//
// Transactions follow an optimistic two-phase protocol that reproduces the
// dynamics of real HTM under the lazy-subscription model:
//
//   * at its start event, a transaction executes its body speculatively
//     against the committed memory state of that instant, buffering writes
//     and accumulating cost from the machine's HTM cost table;
//   * a commit event is scheduled at start + duration; at that event the
//     footprint is validated against per-line commit timestamps — any line
//     committed by an overlapping transaction/atomic aborts it (first
//     committer wins);
//   * aborted transactions retry per the variant policy: RTM retries in
//     software with exponential backoff, HLE serializes after the first
//     abort, BG/Q auto-retries up to max_rollbacks then serializes.
//
// Capacity aborts fire during the speculative run when the footprint
// exceeds the variant's cache geometry; "other" aborts are injected with a
// duration-proportional Poisson model. Serialized (fallback) execution
// takes a global elision lock that every speculative transaction subscribes
// to, so overlapping speculation aborts exactly as on real hardware.
//
// Atomics (CAS/ACC) execute at their linearization instant with a
// cache-line contention model: a hot line delays the next atomic from
// another thread by the line-transfer time, which reproduces the Fig 3
// latency growth of contended CAS/ACC with T.

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "htm/abort.hpp"
#include "htm/resilience.hpp"
#include "mem/footprint.hpp"
#include "mem/sim_heap.hpp"
#include "model/machines.hpp"
#include "sim/event_queue.hpp"
#include "sim/schedule.hpp"
#include "util/blob.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace aam::htm {

class DesMachine;
class ThreadCtx;

/// A transactional execution context handed to activity bodies. All data
/// accessed through it must live on the machine's SimHeap.
class Txn {
 public:
  /// Transactional load of a trivially-copyable value of at most 8 bytes.
  template <typename T>
  T load(const T& ref) {
    static_assert(sizeof(T) <= 8 && std::is_trivially_copyable_v<T>);
    std::uint64_t word = load_word(reinterpret_cast<std::uintptr_t>(&ref));
    T out;
    const std::size_t off = reinterpret_cast<std::uintptr_t>(&ref) & 7u;
    std::memcpy(&out, reinterpret_cast<const char*>(&word) + off, sizeof(T));
    return out;
  }

  /// Transactional store (buffered until commit).
  template <typename T>
  void store(T& ref, T value) {
    static_assert(sizeof(T) <= 8 && std::is_trivially_copyable_v<T>);
    const std::uintptr_t addr = reinterpret_cast<std::uintptr_t>(&ref);
    std::uint64_t word = peek_word_for_store(addr);
    const std::size_t off = addr & 7u;
    std::memcpy(reinterpret_cast<char*>(&word) + off, &value, sizeof(T));
    store_word(addr, word);
  }

  /// Read-modify-write convenience (costs one load + one store).
  template <typename T>
  T fetch_add(T& ref, T delta) {
    const T old = load(ref);
    store(ref, static_cast<T>(old + delta));
    return old;
  }

  /// Explicit abort: throws TxAbort; the retry policy applies as usual.
  [[noreturn]] void abort();

  /// True when running on the serialized (irrevocable) fallback path.
  bool serialized() const { return serialized_; }

  /// Virtual time at which this attempt began.
  double start_time() const { return start_; }

 private:
  friend class DesMachine;
  Txn() = default;

  // Defined inline at the bottom of this header (they need DesMachine):
  // they run once per modelled transactional access.
  std::uint64_t load_word(std::uintptr_t addr);
  std::uint64_t peek_word_for_store(std::uintptr_t addr);
  void store_word(std::uintptr_t addr, std::uint64_t word);

  DesMachine* machine_ = nullptr;
  std::uint32_t tid_ = 0;
  double start_ = 0;
  bool serialized_ = false;
};

using TxnBody = std::function<void(Txn&)>;
using TxnDone = std::function<void(ThreadCtx&, const TxnOutcome&)>;

/// Per-thread non-transactional context: plain/atomic memory operations
/// with modelled costs, timing, RNG, and transaction staging.
class ThreadCtx {
 public:
  double now() const { return clock_; }
  std::uint32_t thread_id() const { return tid_; }
  util::Rng& rng() { return rng_; }
  DesMachine& machine() { return *machine_; }

  /// Plain load with modelled cost (no synchronization).
  template <typename T>
  T load(const T& ref) {
    charge_load();
    return ref;
  }

  /// Plain store with modelled cost; bumps the line version so overlapping
  /// transactions observe the write.
  template <typename T>
  void store(T& ref, T value) {
    charge_store(reinterpret_cast<const void*>(&ref), sizeof(T));
    ref = value;
  }

  /// Advance this thread's clock by `cost_ns` of local computation.
  void compute(double cost_ns) { clock_ += cost_ns; }

  /// Atomic compare-and-swap (§2.3) with the contention model.
  template <typename T>
  bool cas(T& target, T expect, T desired) {
    static_assert(sizeof(T) <= 8 && std::is_trivially_copyable_v<T>);
    begin_atomic(&target, /*is_cas=*/true);
    const bool ok = target == expect;
    if (ok) {
      target = desired;
      commit_atomic_write(&target, sizeof(T));
    }
    return ok;
  }

  /// Atomic fetch-and-add / accumulate (§2.3).
  template <typename T>
  T fetch_add(T& target, T delta) {
    static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
    begin_atomic(&target, /*is_cas=*/false);
    const T old = target;
    target = static_cast<T>(old + delta);
    commit_atomic_write(&target, sizeof(T));
    return old;
  }

  /// Stage a transactional activity. Must be the last action of the
  /// current Worker::next() call; the body may run several times (retries)
  /// and `done` fires once the activity completes (committed/serialized).
  void stage_transaction(TxnBody body, TxnDone done = {});

  /// True if a transaction has been staged in the current next() call.
  bool has_staged() const { return staged_; }

 private:
  friend class DesMachine;
  void charge_load();
  void charge_store(const void* p, std::size_t len);
  void begin_atomic(const void* p, bool is_cas);
  void commit_atomic_write(const void* p, std::size_t len);

  DesMachine* machine_ = nullptr;
  std::uint32_t tid_ = 0;
  double clock_ = 0;
  util::Rng rng_;
  bool staged_ = false;
  TxnBody staged_body_;
  TxnDone staged_done_;
};

/// Work source for one logical thread.
class Worker {
 public:
  virtual ~Worker() = default;
  /// Perform the thread's next unit of work through `ctx` (plain/atomic
  /// ops synchronously, or stage one transaction). Return false to park
  /// the thread; it can be re-activated via DesMachine::wake().
  virtual bool next(ThreadCtx& ctx) = 0;
};

/// Called when every thread is parked and no events remain. Return true if
/// new work was injected (threads woken) and the simulation should go on.
using QuiescenceHook = std::function<bool(DesMachine&)>;

class DesMachine {
 public:
  /// `kind` selects the HTM variant used for all staged transactions.
  /// `num_domains` partitions the threads into serialization domains (one
  /// per simulated node): each domain has its own elision/fallback lock,
  /// matching per-node HTM fallback on a cluster. Threads are assigned to
  /// domains in contiguous blocks of num_threads/num_domains.
  DesMachine(const model::MachineConfig& config, model::HtmKind kind,
             int num_threads, mem::SimHeap& heap, std::uint64_t seed = 1,
             int num_domains = 1);
  ~DesMachine();

  DesMachine(const DesMachine&) = delete;
  DesMachine& operator=(const DesMachine&) = delete;

  /// Assign the worker for a thread (not owned; must outlive run()).
  void set_worker(std::uint32_t tid, Worker* worker);
  void set_quiescence_hook(QuiescenceHook hook) { quiescence_ = std::move(hook); }

  /// Drive the simulation until global quiescence.
  void run();

  // --- horizon-bounded stepping (parallel DES backend) ---------------------
  //
  // An external driver (sim::WindowedCoSim) can run the machine as one
  // shard of a conservative co-simulation: begin_external_run() performs
  // run()'s entry work (observer notification, progress stamp, waking all
  // workers), then repeated step(h) calls drain events up to each safe
  // horizon h. run() itself is implemented on top of the same primitives,
  // so the sequential and windowed paths dispatch identical event
  // sequences.

  /// run()'s entry protocol without the drain loop.
  void begin_external_run();

  /// Dispatch every pending event with time <= `horizon` (in the usual
  /// deterministic order). Returns true if events remain beyond the
  /// horizon. Does NOT invoke the quiescence hook — the external driver
  /// owns the decision to inject more work.
  bool step(double horizon);

  /// True when the event queue is non-empty.
  bool has_pending_events() const { return !queue_.empty(); }
  /// Earliest pending event time; only valid when has_pending_events().
  double next_event_time() const { return queue_.peek_time(); }

  /// Binds the machine's event queue to the shard that owns it (see
  /// sim::EventQueue::bind_shard): every subsequent schedule/dispatch must
  /// come from that shard's job.
  void bind_shard(sim::ShardId shard) { queue_.bind_shard(shard); }

  // --- externally scheduled execution (model checker; sim/schedule.hpp) ----
  //
  // Instead of draining events in (time, seq) order, expose every pending
  // event — the frontier of schedulable thread decision points — to a
  // ScheduleController and dispatch whichever it picks. Global virtual
  // time then only tracks the maximum dispatched timestamp (per-thread
  // event chains stay monotone on their own), so cost accounting is
  // schedule-dependent; the mc oracles are value-based and ignore time.
  // run()/step() never take this path: uncontrolled runs dispatch
  // bit-identical event sequences with or without this seam.

  /// Drives the simulation to quiescence (or until the controller returns
  /// kStopRun) with `controller` picking each dispatch. Not reentrant.
  void run_controlled(sim::ScheduleController& controller);

  /// True while run_controlled() is driving the machine.
  bool controlled() const { return controlled_; }

  /// Honest first-committer-wins validation of `tid`'s in-flight
  /// speculative transaction, without side effects: true when some unit
  /// of its footprint was committed after the attempt started. The mc
  /// zombie-commit oracle compares this against what the engine (possibly
  /// carrying a seeded bug) actually does at the commit event.
  bool commit_would_conflict(std::uint32_t tid) const;

  /// Deliberately planted engine defects for mutation testing of the
  /// model checker (tests/mc_test.cpp). kNone (the default) is the
  /// production engine: no seeded branch is ever taken.
  enum class SeededBug : std::uint8_t {
    kNone,
    /// Commit validation skips the read set: transactions whose reads
    /// were overwritten mid-flight commit anyway (lost serializability,
    /// zombie commits).
    kSkipReadValidation,
  };
  void set_seeded_bug(SeededBug bug) { seeded_bug_ = bug; }
  SeededBug seeded_bug() const { return seeded_bug_; }

  /// Wake a parked thread; it resumes at max(its clock, machine time).
  void wake(std::uint32_t tid);

  /// Release every parked thread at (max thread clock + barrier_cost_ns):
  /// a synchronization barrier. Typically used from the quiescence hook.
  void barrier_release(double barrier_cost_ns);

  /// Schedule an arbitrary callback at virtual time `t` (used by the
  /// network layer for message deliveries).
  void schedule_callback(double t, std::function<void()> fn);

  /// Like schedule_callback, but the callback is *droppable*: losing it in
  /// a crash-restore is safe because the scheduling subsystem re-derives
  /// it from its own checkpointed state (the reliable-delivery protocol's
  /// deliveries, acks and retransmit timers — all reconstructible from the
  /// pending-send maps). Droppable callbacks do not block checkpoints;
  /// generic ones do, because the engine cannot re-create an opaque
  /// std::function after dropping it.
  void schedule_callback_droppable(double t, std::function<void()> fn);

  // --- crash-stop recovery (src/recovery/) --------------------------------
  //
  // A RecoveryClient observes the engine at safe checkpoint instants (no
  // transaction in flight, no generic callback pending, uncontrolled) and
  // restores the whole machine after FaultHook::inject_crash fires. The
  // engine serializes its own durable core — virtual clocks, RNG streams,
  // conflict stamps, stripe metadata, and every pending non-callback
  // event — so a restore replays the exact schedule from the checkpoint.

  /// Registers (or clears, with nullptr) the recovery client. Not owned;
  /// must outlive run(). When unset the engine takes no recovery branches.
  void set_recovery_client(RecoveryClient* client) { recovery_ = client; }
  RecoveryClient* recovery_client() const { return recovery_; }

  /// True at instants where save_core captures a complete, restorable
  /// machine state.
  bool checkpoint_safe() const {
    return !controlled_ && inflight_txns_ == 0 &&
           generic_callbacks_pending_ == 0;
  }

  /// Serializes the durable core into `w`. Must be called at a safe
  /// instant (checkpoint_safe()); aborts otherwise.
  void save_core(util::BlobWriter& w) const;

  /// Restores the durable core from `r` (a blob produced by save_core on
  /// this same machine/heap layout). Drops all volatile state: in-flight
  /// transactions, pending events, and every scheduled callback. Pending
  /// non-callback events are re-pushed in saved (time, seq) order, so the
  /// post-restore schedule is bit-identical to the checkpoint's future.
  void restore_core(util::BlobReader& r);

  /// Generic (non-droppable) callbacks currently scheduled; must be zero
  /// for a checkpoint to be safe.
  int generic_callbacks_pending() const { return generic_callbacks_pending_; }

  // --- introspection -------------------------------------------------------
  double now() const { return now_; }
  double thread_clock(std::uint32_t tid) const;
  /// Makespan: the largest thread clock (all threads' completion time).
  double makespan() const;
  int num_threads() const { return static_cast<int>(threads_.size()); }
  const model::MachineConfig& config() const { return config_; }
  model::HtmKind htm_kind() const { return kind_; }
  mem::SimHeap& heap() { return heap_; }
  mem::StripeTable& stripes() { return stripes_; }

  /// log2 of the HTM variant's conflict-detection granularity (64B lines
  /// on Haswell-likes, 8B words on BG/Q). Heap offsets shifted right by
  /// this give the conflict units used for commit validation.
  std::uint32_t conflict_shift() const { return conflict_shift_; }

  /// Registers (or clears, with nullptr) the observer notified of every
  /// modelled write that reaches committed memory and of each run() entry.
  /// Not owned; used by check::Checker's escaped-write detector. Costs one
  /// predictable branch per committed write when unset.
  void set_write_observer(mem::WriteObserver* observer) {
    write_observer_ = observer;
  }
  mem::WriteObserver* write_observer() const { return write_observer_; }

  /// Registers (or clears, with nullptr) the fault-injection hook (see
  /// htm::FaultHook). Not owned; must outlive run(). When unset the engine
  /// takes no injection branches, so fault-free runs are bit-identical to
  /// builds without the seam.
  void set_fault_hook(FaultHook* hook) { fault_hook_ = hook; }
  FaultHook* fault_hook() const { return fault_hook_; }

  /// Runtime-hardening knobs (livelock watermark, progress watchdog). The
  /// defaults never trigger in fault-free runs; see ResilienceConfig.
  void set_resilience(const ResilienceConfig& r) { resilience_ = r; }
  const ResilienceConfig& resilience() const { return resilience_; }

  /// The footprint of `tid`'s most recent transactional attempt. Valid
  /// inside the activity's done callback (fires after commit, before the
  /// next attempt resets it); used by check::Checker to audit declared
  /// read/write sets against the accesses the operator actually made.
  const mem::FootprintTracker& thread_footprint(std::uint32_t tid) const;

  /// Marks the conflict unit containing `p` as committed "now" in
  /// processing order: bumps the global commit stamp onto it so that
  /// overlapping transactions abort. Two events at the same virtual
  /// instant are ordered by processing sequence, and the stamp captures
  /// exactly that order. Used by the engine at commits and by the network
  /// layer for NIC-side atomics.
  void bump_addr(const void* p) {
    bump_unit(heap_.offset_of(p) >> conflict_shift_);
  }

  HtmStats stats() const;  ///< aggregated over all threads
  const HtmStats& thread_stats(std::uint32_t tid) const;
  std::uint64_t events_processed() const { return events_processed_; }

  /// Resets all thread clocks to `t` (e.g. between measured phases) and
  /// clears statistics if requested. All threads must be parked.
  void reset_clocks(double t, bool clear_stats);

 private:
  friend class Txn;
  friend class ThreadCtx;

  enum EventKind : std::uint32_t { kNext, kCommit, kRetry, kSerialCommit, kCallback };

  /// Per-thread engine state. Defined here (not in the .cpp) so the
  /// accessor hot paths below can inline straight into operator bodies.
  struct ThreadState {
    ThreadCtx ctx;
    Worker* worker = nullptr;
    bool parked = true;

    // Staged-transaction state. At most one activity is in flight per
    // thread.
    bool txn_inflight = false;
    bool want_serialize = false;
    TxnBody body;
    TxnDone done;
    int aborts_this_txn = 0;
    int capacity_aborts_this_txn = 0;
    /// Aborts since this thread last completed *any* activity (completion
    /// of a serialized activity also resets it: serialization is
    /// progress). Drives the livelock watermark.
    int consec_aborts = 0;
    bool escalated_this_txn = false;
    double first_start = 0;   ///< time of the first speculative attempt
    double spec_start = 0;    ///< time of the current attempt
    std::uint64_t start_stamp = 0;  ///< global commit stamp at attempt start
    double txn_duration = 0;  ///< accumulated cost of the current attempt
    mem::WordMap write_buffer;
    mem::FootprintTracker tracker;
    Txn txn;
    HtmStats stats;
  };

  void dispatch(const sim::Event& e);
  sim::ChoiceKind classify_choice(const sim::Event& e) const;
  void activate(std::uint32_t tid);      // call worker->next via kNext
  void on_next(std::uint32_t tid);
  void attempt_speculative(std::uint32_t tid);
  void on_commit(std::uint32_t tid, std::uint64_t attempt_token);
  void handle_abort(std::uint32_t tid, AbortReason reason, double at_time);
  void enter_serialized(std::uint32_t tid, double ready_time);
  void on_serial_commit(std::uint32_t tid);
  void finish_txn(std::uint32_t tid, bool serialized, double end_time);

  // Word-granularity committed-memory access helpers for Txn.
  std::uint64_t read_committed_word(std::uintptr_t addr) const {
    std::uint64_t word;
    std::memcpy(&word, reinterpret_cast<const void*>(addr), 8);
    return word;
  }
  void write_committed_word(std::uintptr_t addr, std::uint64_t word) {
    std::memcpy(reinterpret_cast<void*>(addr), &word, 8);
    if (write_observer_ != nullptr) {
      write_observer_->on_legitimate_write(
          heap_.offset_of(reinterpret_cast<const void*>(addr)), 8);
    }
  }

  const model::MachineConfig& config_;
  model::HtmKind kind_;
  const model::HtmCosts& costs_;
  mem::SimHeap& heap_;
  mem::StripeTable stripes_;
  sim::EventQueue queue_;
  sim::Backoff backoff_;
  QuiescenceHook quiescence_;

  std::vector<std::unique_ptr<ThreadState>> threads_;
  std::vector<std::function<void()>> callbacks_;
  std::vector<std::size_t> callback_free_;

  // Per-domain elision/fallback lock: every speculative transaction
  // subscribes to its domain's lock line; serialized executions own it
  // exclusively. Admission is managed with an explicit held flag plus a
  // FIFO waiter queue so that a waiter can never observe the holder's
  // pre-commit state, even when its retry event carries the same virtual
  // timestamp as the holder's commit.
  struct SerialDomain {
    std::uint64_t* lock = nullptr;
    bool held = false;
    std::vector<std::uint32_t> waiters;
    double free_at = 0;  ///< virtual time the fallback lock frees up
    /// Token bucket of the node's shared atomic unit (AtomicCosts::
    /// global_gap_ns): admits one atomic per gap of *event* time.
    double atomic_free = 0;
  };
  std::vector<SerialDomain> domains_;
  std::uint32_t threads_per_domain_ = 1;
  SerialDomain& domain_of(std::uint32_t tid) {
    return domains_[tid / threads_per_domain_];
  }

  /// Monotonic commit-order stamp over conflict units (heap offset >>
  /// conflict_shift_, per the HTM variant's detection granularity).
  std::uint64_t commit_stamp_ = 0;
  std::uint32_t conflict_shift_ = 6;
  std::vector<std::uint64_t> unit_stamps_;
  void bump_unit(std::uint64_t unit) {
    unit_stamps_[unit] = ++commit_stamp_;
  }

  mem::WriteObserver* write_observer_ = nullptr;
  FaultHook* fault_hook_ = nullptr;
  RecoveryClient* recovery_ = nullptr;
  /// kCallback payload bit distinguishing generic callbacks (bit set;
  /// opaque, block checkpoints) from droppable ones (reconstructible).
  static constexpr std::uint64_t kGenericCallbackBit = 1ULL << 63;
  int generic_callbacks_pending_ = 0;
  void schedule_callback_impl(double t, std::function<void()> fn,
                              bool generic);
  ResilienceConfig resilience_;
  /// Virtual time of the last activity completion; with inflight_txns_ > 0
  /// and no completion for watchdog_ns, dispatch() throws StallError.
  double last_progress_ = 0;
  int inflight_txns_ = 0;

  double now_ = 0;
  std::uint64_t events_processed_ = 0;

  bool controlled_ = false;
  SeededBug seeded_bug_ = SeededBug::kNone;
};

// ---------------------------------------------------------------------------
// Accessor hot paths, inline so operator bodies compile down to straight
// hash-probe-and-charge sequences with no cross-TU calls.
// ---------------------------------------------------------------------------

inline std::uint64_t Txn::load_word(std::uintptr_t addr) {
  DesMachine& m = *machine_;
  auto& ts = *m.threads_[tid_];
  AAM_CHECK_MSG(m.heap_.contains(reinterpret_cast<const void*>(addr)),
                "transactional access to memory outside the SimHeap");
  const std::uint64_t offset =
      m.heap_.offset_of(reinterpret_cast<const void*>(addr));

  if (serialized_) {
    ts.txn_duration += m.config_.atomics.load_ns;
    // Track the unit (no capacity limits) so stamps bump at commit.
    ts.tracker.add_read(offset);
  } else {
    ts.txn_duration += m.costs_.read_ns + m.config_.atomics.load_ns;
    if (ts.tracker.add_read(offset) == mem::FootprintTracker::Add::kOverflow) {
      throw TxAbort{AbortReason::kCapacity};
    }
  }
  const std::uintptr_t word_addr = addr & ~std::uintptr_t{7};
  std::uint64_t word;
  if (!ts.write_buffer.lookup(word_addr, word)) {
    word = m.read_committed_word(word_addr);
  }
  return word;
}

inline std::uint64_t Txn::peek_word_for_store(std::uintptr_t addr) {
  // Fetch the containing word without charging a transactional read: the
  // cost of a store already covers bringing the line into the buffer.
  DesMachine& m = *machine_;
  auto& ts = *m.threads_[tid_];
  const std::uintptr_t word_addr = addr & ~std::uintptr_t{7};
  std::uint64_t word;
  if (!ts.write_buffer.lookup(word_addr, word)) {
    word = m.read_committed_word(word_addr);
  }
  return word;
}

inline void Txn::store_word(std::uintptr_t addr, std::uint64_t word) {
  DesMachine& m = *machine_;
  auto& ts = *m.threads_[tid_];
  AAM_CHECK_MSG(m.heap_.contains(reinterpret_cast<const void*>(addr)),
                "transactional access to memory outside the SimHeap");
  const std::uint64_t offset =
      m.heap_.offset_of(reinterpret_cast<const void*>(addr));

  if (serialized_) {
    ts.txn_duration += m.config_.atomics.store_ns;
    ts.tracker.add_write(offset);
  } else {
    ts.txn_duration += m.costs_.write_ns + m.config_.atomics.store_ns;
    if (ts.tracker.add_write(offset) == mem::FootprintTracker::Add::kOverflow) {
      throw TxAbort{AbortReason::kCapacity};
    }
  }
  const std::uintptr_t word_addr = addr & ~std::uintptr_t{7};
  ts.write_buffer.insert_or_assign(word_addr, word);
}

inline void ThreadCtx::charge_load() {
  clock_ += machine_->config().atomics.load_ns;
}

inline void ThreadCtx::charge_store(const void* p, std::size_t len) {
  clock_ += machine_->config().atomics.store_ns;
  if (machine_->heap().contains(p)) {
    // A plain store is immediately visible: overlapping transactions that
    // touched this location must observe it as a conflict.
    machine_->bump_addr(p);
    if (machine_->write_observer_ != nullptr) {
      machine_->write_observer_->on_legitimate_write(
          machine_->heap().offset_of(p), static_cast<std::uint32_t>(len));
    }
  }
}

}  // namespace aam::htm
