#include "htm/stm_engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace aam::htm {

namespace {
constexpr std::uint64_t kLockedBit = 1;

bool is_locked(std::uint64_t w) { return (w & kLockedBit) != 0; }
std::uint64_t version_of(std::uint64_t w) { return w >> 1; }
std::uint64_t make_word(std::uint64_t version, bool locked) {
  return (version << 1) | (locked ? kLockedBit : 0);
}
}  // namespace

StmEngine::StmEngine(std::size_t stripe_locks) {
  std::size_t n = 64;
  while (n < stripe_locks) n <<= 1;
  locks_ = std::vector<VersionedLock>(n);
  mask_ = static_cast<std::uint32_t>(n - 1);
}

std::uint32_t StmEngine::stripe_of(std::uintptr_t addr) const {
  return static_cast<std::uint32_t>(util::mix64(addr >> 6) & mask_);
}

void StmEngine::begin(StmTxn& txn) {
  txn.snapshot_ = clock_.load(std::memory_order_acquire);
  txn.write_buffer_.clear();
  txn.read_stripes_.clear();
  txn.write_stripes_.clear();
  txn.seen_read_.clear();
  txn.seen_write_.clear();
}

std::uint64_t StmTxn::load_word(std::uintptr_t word_addr) {
  std::uint64_t buffered;
  if (write_buffer_.lookup(word_addr, buffered)) return buffered;

  const std::uint32_t stripe = engine_.stripe_of(word_addr);
  auto& lock = engine_.locks_[stripe].word;

  const std::uint64_t pre = lock.load(std::memory_order_acquire);
  if (is_locked(pre) || version_of(pre) > snapshot_) {
    throw TxAbort{AbortReason::kConflict};
  }
  // Optimistic read raced against concurrent commit write-backs; the
  // pre/post lock-word check discards any torn observation, but the load
  // itself must be atomic for the race to be defined (atomic_ref<const T>
  // is C++26, hence the non-const cast — the word is never written here).
  const std::uint64_t value =
      std::atomic_ref<std::uint64_t>(
          *reinterpret_cast<std::uint64_t*>(word_addr))
          .load(std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_acquire);
  const std::uint64_t post = lock.load(std::memory_order_acquire);
  if (post != pre) throw TxAbort{AbortReason::kConflict};

  if (seen_read_.insert(stripe)) read_stripes_.push_back(stripe);
  return value;
}

void StmTxn::store_word(std::uintptr_t word_addr, std::uint64_t word) {
  write_buffer_.insert_or_assign(word_addr, word);
  const std::uint32_t stripe = engine_.stripe_of(word_addr);
  if (seen_write_.insert(stripe)) write_stripes_.push_back(stripe);
}

bool StmEngine::commit(StmTxn& txn) {
  if (txn.write_stripes_.empty()) return true;  // read-only: snapshot valid

  // Acquire write locks in canonical order (no deadlocks).
  std::sort(txn.write_stripes_.begin(), txn.write_stripes_.end());
  std::size_t held = 0;
  for (; held < txn.write_stripes_.size(); ++held) {
    auto& lock = locks_[txn.write_stripes_[held]].word;
    std::uint64_t cur = lock.load(std::memory_order_relaxed);
    if (is_locked(cur) || version_of(cur) > txn.snapshot_ ||
        !lock.compare_exchange_strong(cur, cur | kLockedBit,
                                      std::memory_order_acquire)) {
      break;
    }
  }
  if (held != txn.write_stripes_.size()) {
    for (std::size_t i = 0; i < held; ++i) {
      auto& lock = locks_[txn.write_stripes_[i]].word;
      lock.fetch_and(~kLockedBit, std::memory_order_release);
    }
    return false;
  }

  const std::uint64_t wv = clock_.fetch_add(1, std::memory_order_acq_rel) + 1;

  // Revalidate the read set (write stripes are already ours).
  for (std::uint32_t stripe : txn.read_stripes_) {
    if (txn.seen_write_.contains(stripe)) continue;
    const std::uint64_t w = locks_[stripe].word.load(std::memory_order_acquire);
    if (is_locked(w) || version_of(w) > txn.snapshot_) {
      for (std::uint32_t ws : txn.write_stripes_) {
        locks_[ws].word.fetch_and(~kLockedBit, std::memory_order_release);
      }
      return false;
    }
  }

  // Write-back races against other transactions' optimistic loads (their
  // lock-word revalidation rejects what they saw); relaxed atomics keep
  // that race defined, with ordering supplied by the fence + lock stores.
  txn.write_buffer_.for_each([](std::uintptr_t addr, std::uint64_t word) {
    std::atomic_ref<std::uint64_t>(*reinterpret_cast<std::uint64_t*>(addr))
        .store(word, std::memory_order_relaxed);
  });
  std::atomic_thread_fence(std::memory_order_release);
  for (std::uint32_t stripe : txn.write_stripes_) {
    locks_[stripe].word.store(make_word(wv, false),
                              std::memory_order_release);
  }
  return true;
}

void StmEngine::backoff(int attempt) {
  if (attempt < 4) {
    std::this_thread::yield();
    return;
  }
  // Deterministic truncated exponential backoff; capped at ~64us.
  const int exp = std::min(attempt, 10);
  std::this_thread::sleep_for(std::chrono::nanoseconds{64LL << exp});
}

}  // namespace aam::htm
