#include "htm/des_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/check.hpp"

namespace aam::htm {

// ---------------------------------------------------------------------------
// StallDiagnostic
// ---------------------------------------------------------------------------

std::string StallDiagnostic::to_string() const {
  std::ostringstream os;
  os << "simulation stalled: no activity completed for "
     << (now_ns - last_progress_ns) << " simulated ns (now=" << now_ns
     << ", last progress=" << last_progress_ns << ", " << inflight_txns
     << " transaction(s) in flight, worst thread t" << worst_tid << " with "
     << worst_streak << " consecutive aborts, " << events_processed
     << " events processed, " << inflight_messages
     << " message(s) in flight, last checkpoint #" << last_checkpoint_id
     << ")";
  return os.str();
}

std::string CrashDiagnostic::to_string() const {
  std::ostringstream os;
  os << "machine crash-stopped at " << now_ns << " simulated ns (thread t"
     << tid << ", " << events_processed
     << " events processed, no checkpoint to restore from)";
  return os.str();
}

// ---------------------------------------------------------------------------
// Txn
// ---------------------------------------------------------------------------

void Txn::abort() { throw TxAbort{AbortReason::kExplicit}; }

// ---------------------------------------------------------------------------
// ThreadCtx
// ---------------------------------------------------------------------------

void ThreadCtx::begin_atomic(const void* p, bool is_cas) {
  DesMachine& m = *machine_;
  AAM_CHECK_MSG(m.heap().contains(p),
                "atomic access to memory outside the SimHeap");
  const mem::LineId line = m.heap().line_of(p);
  const auto& a = m.config().atomics;
  // The line must be owned exclusively: queue behind in-flight atomics from
  // *other* threads (cache-line ping-pong); re-accessing an already-owned
  // line pays no transfer. On machines with a shared atomic unit (BG/Q
  // L2), atomics additionally queue machine-wide behind the global gap.
  double start = clock_;
  if (m.stripes().owner(line) != tid_) {
    start = std::max(start, m.stripes().available_at(line));
  }
  if (a.global_gap_ns > 0) {
    // Node-wide atomic-unit throughput bound: one admission per gap,
    // metered in *event* time (now_) so a thread whose private clock ran
    // ahead inside a work batch cannot drag the gate into the future.
    auto& dom = m.domain_of(tid_);
    const double gate = std::max(dom.atomic_free, m.now());
    start = std::max(start, gate);
    dom.atomic_free = gate + a.global_gap_ns;
  }
  clock_ = start + (is_cas ? a.cas_ns : a.acc_ns);
  m.stripes().set_available_at(line, start + a.line_transfer_ns);
  m.stripes().set_owner(line, tid_);
  auto& stats = m.threads_[tid_]->stats;
  if (is_cas) {
    ++stats.atomic_cas;
  } else {
    ++stats.atomic_acc;
  }
}

void ThreadCtx::commit_atomic_write(const void* p, std::size_t len) {
  machine_->bump_addr(p);
  if (machine_->write_observer_ != nullptr) {
    machine_->write_observer_->on_legitimate_write(
        machine_->heap().offset_of(p), static_cast<std::uint32_t>(len));
  }
}

void ThreadCtx::stage_transaction(TxnBody body, TxnDone done) {
  AAM_CHECK_MSG(!staged_, "only one transaction may be staged per next()");
  AAM_CHECK_MSG(!machine_->threads_[tid_]->txn_inflight,
                "cannot stage a transaction while one is in flight");
  staged_ = true;
  staged_body_ = std::move(body);
  staged_done_ = std::move(done);
}

// ---------------------------------------------------------------------------
// DesMachine
// ---------------------------------------------------------------------------

DesMachine::DesMachine(const model::MachineConfig& config, model::HtmKind kind,
                       int num_threads, mem::SimHeap& heap, std::uint64_t seed,
                       int num_domains)
    : config_(config),
      kind_(kind),
      costs_(config.htm(kind)),
      heap_(heap),
      stripes_(heap.num_lines()),
      backoff_(costs_.backoff_base_ns, costs_.backoff_max_ns) {
  AAM_CHECK(num_threads >= 1);
  AAM_CHECK(num_domains >= 1 && num_threads % num_domains == 0);
  AAM_CHECK_MSG(num_threads / num_domains <= config.max_threads(),
                "per-node thread count exceeds the machine's hardware threads");
  conflict_shift_ = 6;
  {
    std::uint32_t gran = costs_.conflict_granularity_bytes;
    AAM_CHECK(gran >= 8 && (gran & (gran - 1)) == 0);
    conflict_shift_ = 0;
    while ((1u << conflict_shift_) < gran) ++conflict_shift_;
  }
  unit_stamps_.assign((heap.capacity_bytes() >> conflict_shift_) + 1, 0);
  domains_.resize(static_cast<std::size_t>(num_domains));
  threads_per_domain_ =
      static_cast<std::uint32_t>(num_threads / num_domains);
  for (auto& d : domains_) {
    d.lock = heap_.alloc_isolated<std::uint64_t>(0, "htm.elision-lock");
  }
  // Each thread holds at most a handful of in-flight events (kNext /
  // kCommit / kRetry chains) plus occasional callbacks; pre-size the queue
  // so the steady state never reallocates mid-run.
  queue_.reserve(static_cast<std::size_t>(num_threads) * 4 + 16);
  const util::Rng root(seed);
  threads_.reserve(static_cast<std::size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    auto ts = std::make_unique<ThreadState>();
    ts->ctx.machine_ = this;
    ts->ctx.tid_ = static_cast<std::uint32_t>(t);
    ts->ctx.rng_ = root.fork(static_cast<std::uint64_t>(t) + 1);
    ts->tracker.configure(costs_.write_capacity, costs_.read_capacity_lines,
                          conflict_shift_);
    ts->txn.machine_ = this;
    ts->txn.tid_ = static_cast<std::uint32_t>(t);
    threads_.push_back(std::move(ts));
  }
}

DesMachine::~DesMachine() = default;

void DesMachine::set_worker(std::uint32_t tid, Worker* worker) {
  AAM_CHECK(tid < threads_.size());
  threads_[tid]->worker = worker;
}

double DesMachine::thread_clock(std::uint32_t tid) const {
  AAM_CHECK(tid < threads_.size());
  return threads_[tid]->ctx.clock_;
}

double DesMachine::makespan() const {
  double m = 0;
  for (const auto& ts : threads_) m = std::max(m, ts->ctx.clock_);
  return m;
}

HtmStats DesMachine::stats() const {
  HtmStats s;
  for (const auto& ts : threads_) s.merge(ts->stats);
  return s;
}

const HtmStats& DesMachine::thread_stats(std::uint32_t tid) const {
  AAM_CHECK(tid < threads_.size());
  return threads_[tid]->stats;
}

const mem::FootprintTracker& DesMachine::thread_footprint(
    std::uint32_t tid) const {
  AAM_CHECK(tid < threads_.size());
  return threads_[tid]->tracker;
}

void DesMachine::reset_clocks(double t, bool clear_stats) {
  for (auto& d : domains_) {
    AAM_CHECK_MSG(!d.held && d.waiters.empty(),
                  "reset_clocks with an active serializer");
    d.free_at = std::min(d.free_at, t);
  }
  for (auto& ts : threads_) {
    AAM_CHECK_MSG(ts->parked && !ts->txn_inflight,
                  "reset_clocks requires all threads parked");
    ts->ctx.clock_ = t;
    if (clear_stats) ts->stats = HtmStats{};
  }
  now_ = t;
  last_progress_ = t;
}

void DesMachine::wake(std::uint32_t tid) {
  AAM_CHECK(tid < threads_.size());
  auto& ts = *threads_[tid];
  if (!ts.parked || ts.worker == nullptr) return;
  ts.parked = false;
  ts.ctx.clock_ = std::max(ts.ctx.clock_, now_);
  queue_.push(ts.ctx.clock_, tid, kNext);
}

void DesMachine::barrier_release(double barrier_cost_ns) {
  const double release = makespan() + barrier_cost_ns;
  for (std::uint32_t t = 0; t < threads_.size(); ++t) {
    auto& ts = *threads_[t];
    if (ts.worker == nullptr) continue;
    AAM_CHECK_MSG(ts.parked, "barrier_release with a running thread");
    ts.ctx.clock_ = release;
  }
  for (std::uint32_t t = 0; t < threads_.size(); ++t) wake(t);
}

void DesMachine::schedule_callback_impl(double t, std::function<void()> fn,
                                        bool generic) {
  std::size_t slot;
  if (!callback_free_.empty()) {
    slot = callback_free_.back();
    callback_free_.pop_back();
    callbacks_[slot] = std::move(fn);
  } else {
    slot = callbacks_.size();
    callbacks_.push_back(std::move(fn));
  }
  std::uint64_t payload = slot;
  if (generic) {
    payload |= kGenericCallbackBit;
    ++generic_callbacks_pending_;
  }
  queue_.push(std::max(t, now_), 0, kCallback, payload);
}

void DesMachine::schedule_callback(double t, std::function<void()> fn) {
  schedule_callback_impl(t, std::move(fn), /*generic=*/true);
}

void DesMachine::schedule_callback_droppable(double t,
                                             std::function<void()> fn) {
  schedule_callback_impl(t, std::move(fn), /*generic=*/false);
}

void DesMachine::begin_external_run() {
  // Host-side writes made between runs (initialisation, inter-phase
  // fixups) happen single-threaded and are sanctioned wholesale.
  if (write_observer_ != nullptr) write_observer_->on_run_start();
  last_progress_ = std::max(last_progress_, now_);
  for (std::uint32_t t = 0; t < threads_.size(); ++t) wake(t);
}

bool DesMachine::step(double horizon) {
  while (!queue_.empty() && queue_.peek_time() <= horizon) {
    const sim::Event e = queue_.pop();
    dispatch(e);
    // Event-boundary crash injection: finish_txn's consult only covers
    // transactional completions, so non-speculative mechanisms (atomics,
    // fine-locks) would otherwise never crash. A boundary crash models
    // power loss at an arbitrary instant of the event timeline.
    if (fault_hook_ != nullptr && !controlled_ &&
        fault_hook_->inject_crash(e.thread, now_)) {
      CrashDiagnostic d;
      d.now_ns = now_;
      d.tid = e.thread;
      d.events_processed = events_processed_;
      throw CrashError(d);
    }
    // Mid-run checkpoint opportunity: the client decides (interval gating)
    // whether this safe event boundary is worth a snapshot. One branch per
    // event when no client is installed.
    if (recovery_ != nullptr && checkpoint_safe()) {
      recovery_->on_event_boundary(*this);
    }
  }
  return !queue_.empty();
}

void DesMachine::run() {
  begin_external_run();
  // Run entry is always a safe instant: no transactions are in flight yet.
  if (recovery_ != nullptr) recovery_->on_run_entry(*this);
  while (true) {
    try {
      step(std::numeric_limits<double>::infinity());
    } catch (const CrashError& e) {
      // Crash-stop: with a recovery client installed, restore from the
      // last checkpoint and resume the event loop; otherwise the crash is
      // fatal to the run and propagates to the caller.
      if (recovery_ != nullptr && recovery_->on_crash(*this, e.diagnostic)) {
        continue;
      }
      throw;
    }
    if (recovery_ != nullptr && checkpoint_safe()) {
      recovery_->on_quiescence(*this);
    }
    if (!quiescence_ || !quiescence_(*this)) break;
    AAM_CHECK_MSG(!queue_.empty(),
                  "quiescence hook returned true without injecting work");
  }
}

sim::ChoiceKind DesMachine::classify_choice(const sim::Event& e) const {
  switch (e.kind) {
    case kNext:
      return sim::ChoiceKind::kNext;
    case kCommit:
      return e.payload == 0 ? sim::ChoiceKind::kCommitProbe
                            : sim::ChoiceKind::kCommitFinal;
    case kRetry:
      // want_serialize is stable while the retry event is pending: only
      // the thread's own dispatch mutates it, and the thread has exactly
      // this one event in flight.
      return threads_[e.thread]->want_serialize
                 ? sim::ChoiceKind::kSerialAcquire
                 : sim::ChoiceKind::kSpecRetry;
    case kSerialCommit:
      return sim::ChoiceKind::kSerialCommit;
    case kCallback:
      return sim::ChoiceKind::kCallback;
  }
  AAM_CHECK_MSG(false, "unclassifiable event kind");
  return sim::ChoiceKind::kNext;
}

bool DesMachine::commit_would_conflict(std::uint32_t tid) const {
  const auto& ts = *threads_[tid];
  AAM_CHECK_MSG(ts.txn_inflight, "commit_would_conflict without a txn");
  for (std::uint64_t unit : ts.tracker.read_units()) {
    if (unit_stamps_[unit] > ts.start_stamp) return true;
  }
  for (std::uint64_t unit : ts.tracker.write_units()) {
    if (unit_stamps_[unit] > ts.start_stamp) return true;
  }
  return false;
}

void DesMachine::run_controlled(sim::ScheduleController& controller) {
  AAM_CHECK_MSG(!controlled_, "run_controlled is not reentrant");
  controlled_ = true;
  begin_external_run();
  // The frontier persists across dispatches: events are drained from the
  // queue exactly once (in deterministic pop order), so their relative
  // order — and thus the meaning of a controller's index choices — never
  // depends on heap internals.
  std::vector<sim::Choice> frontier;
  const auto drain = [&] {
    while (!queue_.empty()) {
      const sim::Event e = queue_.pop();
      frontier.push_back(sim::Choice{e, classify_choice(e)});
    }
  };
  drain();
  while (true) {
    if (frontier.empty()) {
      if (!quiescence_ || !quiescence_(*this)) break;
      AAM_CHECK_MSG(!queue_.empty(),
                    "quiescence hook returned true without injecting work");
      drain();
      continue;
    }
    const std::size_t pick = controller.choose(frontier);
    if (pick == sim::ScheduleController::kStopRun) break;
    AAM_CHECK_MSG(pick < frontier.size(),
                  "schedule controller chose an out-of-range event");
    const sim::Event e = frontier[pick].event;
    frontier.erase(frontier.begin() + static_cast<std::ptrdiff_t>(pick));
    dispatch(e);
    drain();
  }
  controlled_ = false;
}

void DesMachine::dispatch(const sim::Event& e) {
  ++events_processed_;
  if (controlled_) {
    // An external schedule controller may dispatch frontier events out of
    // global time order; time only moves forward (each thread's own event
    // chain stays monotone regardless of the interleaving).
    now_ = std::max(now_, e.time);
  } else {
    AAM_DCHECK(e.time >= now_);
    now_ = e.time;
  }
  // Progress watchdog: with activities in flight, *something* must
  // complete every watchdog_ns of virtual time — otherwise the retry
  // machinery is livelocked (e.g. an abort storm with the retry cap
  // disabled) and the event loop would spin forever.
  if (resilience_.watchdog_ns > 0 && inflight_txns_ > 0 &&
      now_ - last_progress_ > resilience_.watchdog_ns) {
    StallDiagnostic d;
    d.now_ns = now_;
    d.last_progress_ns = last_progress_;
    d.inflight_txns = inflight_txns_;
    d.events_processed = events_processed_;
    for (std::uint32_t t = 0; t < threads_.size(); ++t) {
      if (threads_[t]->consec_aborts >= d.worst_streak) {
        d.worst_streak = threads_[t]->consec_aborts;
        d.worst_tid = t;
      }
    }
    if (recovery_ != nullptr) {
      d.inflight_messages = recovery_->inflight_messages();
      d.last_checkpoint_id = recovery_->last_checkpoint_id();
    }
    throw StallError(d);
  }
  switch (e.kind) {
    case kNext:
      on_next(e.thread);
      break;
    case kCommit:
      on_commit(e.thread, e.payload);
      break;
    case kRetry: {
      auto& ts = *threads_[e.thread];
      if (ts.want_serialize) {
        enter_serialized(e.thread, e.time);
      } else {
        ts.ctx.clock_ = e.time;
        attempt_speculative(e.thread);
      }
      break;
    }
    case kSerialCommit:
      on_serial_commit(e.thread);
      break;
    case kCallback: {
      const std::size_t slot =
          static_cast<std::size_t>(e.payload & ~kGenericCallbackBit);
      if ((e.payload & kGenericCallbackBit) != 0) {
        --generic_callbacks_pending_;
      }
      std::function<void()> fn = std::move(callbacks_[slot]);
      callbacks_[slot] = nullptr;
      callback_free_.push_back(slot);
      fn();
      break;
    }
  }
}

void DesMachine::on_next(std::uint32_t tid) {
  auto& ts = *threads_[tid];
  AAM_DCHECK(ts.worker != nullptr);
  ts.ctx.clock_ = std::max(ts.ctx.clock_, now_);
  ts.ctx.staged_ = false;
  const double before = ts.ctx.clock_;
  const bool more = ts.worker->next(ts.ctx);
  if (fault_hook_ != nullptr) {
    // Straggler/brown-out windows stretch the thread's non-transactional
    // work (scans, buffering, sends) by the slowdown factor.
    const double factor = fault_hook_->slowdown(tid, before);
    if (factor > 1.0) {
      ts.ctx.clock_ = before + (ts.ctx.clock_ - before) * factor;
    }
  }
  if (ts.ctx.staged_) {
    ts.ctx.staged_ = false;
    ts.txn_inflight = true;
    ts.want_serialize = false;
    ts.body = std::move(ts.ctx.staged_body_);
    ts.done = std::move(ts.ctx.staged_done_);
    ts.aborts_this_txn = 0;
    ts.capacity_aborts_this_txn = 0;
    ts.escalated_this_txn = false;
    ts.first_start = ts.ctx.clock_;
    ++inflight_txns_;
    attempt_speculative(tid);
  } else if (more) {
    queue_.push(ts.ctx.clock_, tid, kNext);
  } else {
    ts.parked = true;
  }
}

void DesMachine::attempt_speculative(std::uint32_t tid) {
  auto& ts = *threads_[tid];
  const double start = ts.ctx.clock_;

  // Lock elision: a transaction cannot start while its domain's fallback
  // lock is held; it aborts immediately and retries after the release.
  // The free_at refinement (lock released earlier in virtual time but the
  // release not yet visible) is a timing-model detail: under controlled
  // scheduling global time is schedule-inflated, so it would couple the
  // interleaving back into abort *values* and break the model checker's
  // footprint-based commutativity. Mutual exclusion is carried by `held`.
  SerialDomain& dom = domain_of(tid);
  if (dom.held || (!controlled_ && dom.free_at > start)) {
    ++ts.stats.started;
    handle_abort(tid, AbortReason::kConflict, std::max(dom.free_at, start));
    return;
  }

  ++ts.stats.started;
  ts.spec_start = start;
  ts.start_stamp = commit_stamp_;
  ts.txn_duration = costs_.begin_ns;
  ts.write_buffer.clear();
  ts.tracker.reset();
  // Subscribe to the domain's fallback lock word (lazy subscription).
  ts.tracker.add_read(heap_.offset_of(dom.lock));
  ts.txn.start_ = start;
  ts.txn.serialized_ = false;

  AbortReason reason{};
  bool aborted = false;
  try {
    ts.body(ts.txn);
  } catch (const TxAbort& a) {
    aborted = true;
    reason = a.reason;
  }

  if (fault_hook_ != nullptr) {
    // Stragglers run their speculative work slower too, widening the
    // window in which they can be conflicted out.
    const double factor = fault_hook_->slowdown(tid, start);
    if (factor > 1.0) ts.txn_duration *= factor;
  }

  if (aborted) {
    // The footprint accumulated up to the faulting access was paid for.
    handle_abort(tid, reason, start + ts.txn_duration);
    return;
  }

  ts.txn_duration += costs_.commit_ns;

  // Injected faults come first, *before* the machine's own model, so every
  // injector fire maps to exactly one observed kOther abort (the injected
  // count and the stats delta must agree — abort.hpp's exactness contract).
  if (fault_hook_ != nullptr) {
    double frac = 0;
    if (fault_hook_->inject_other_abort(tid, start, ts.txn_duration, frac)) {
      handle_abort(tid, AbortReason::kOther, start + frac * ts.txn_duration);
      return;
    }
  }

  // Injected asynchronous aborts (interrupts etc.), duration-proportional.
  if (costs_.other_abort_per_us > 0) {
    const double p =
        1.0 - std::exp(-costs_.other_abort_per_us * ts.txn_duration / 1e3);
    if (ts.ctx.rng_.next_bool(p)) {
      const double frac = ts.ctx.rng_.next_double();
      handle_abort(tid, AbortReason::kOther, start + frac * ts.txn_duration);
      return;
    }
  }

  // SMT-sibling evictions of speculative state (capacity-class aborts even
  // for small footprints; see HtmCosts::smt_evict_per_line).
  if (costs_.smt_evict_per_line > 0 && threads_.size() > 1) {
    const double pressure =
        static_cast<double>(threads_.size() - 1) /
        static_cast<double>(std::max(1, config_.max_threads() - 1));
    const double footprint =
        static_cast<double>(ts.tracker.distinct_write_lines() +
                            ts.tracker.distinct_read_lines());
    const double p = 1.0 - std::exp(-costs_.smt_evict_per_line * footprint *
                                    pressure);
    if (ts.ctx.rng_.next_bool(p)) {
      const double frac = ts.ctx.rng_.next_double();
      handle_abort(tid, AbortReason::kCapacity,
                   start + frac * ts.txn_duration);
      return;
    }
  }

  // Eager-ish conflict detection: validate once mid-flight and once at
  // commit. A transaction whose footprint was overwritten early aborts at
  // the midpoint, wasting half the work — as on real HTM, where a
  // conflicting remote write invalidates the speculative line immediately.
  queue_.push(start + ts.txn_duration * 0.5, tid, kCommit, /*probe=*/0);
}

void DesMachine::on_commit(std::uint32_t tid, std::uint64_t is_final) {
  auto& ts = *threads_[tid];
  AAM_DCHECK(ts.txn_inflight);
  const double end = now_;

  // First-committer-wins validation: any line in the footprint committed
  // by an overlapping transaction, atomic, or plain store aborts us.
  // SeededBug::kSkipReadValidation drops the read-set half of this check —
  // a planted defect the model checker's mutation fixtures must catch.
  bool conflict = false;
  if (seeded_bug_ != SeededBug::kSkipReadValidation) {
    for (std::uint64_t unit : ts.tracker.read_units()) {
      if (unit_stamps_[unit] > ts.start_stamp) {
        conflict = true;
        break;
      }
    }
  }
  if (!conflict) {
    for (std::uint64_t unit : ts.tracker.write_units()) {
      if (unit_stamps_[unit] > ts.start_stamp) {
        conflict = true;
        break;
      }
    }
  }
  if (conflict) {
    handle_abort(tid, AbortReason::kConflict, end);
    return;
  }
  if (is_final == 0) {
    // Midpoint probe passed: proceed to the real commit point.
    queue_.push(ts.spec_start + ts.txn_duration, tid, kCommit, 1);
    return;
  }

  ts.write_buffer.for_each([this](std::uintptr_t addr, std::uint64_t word) {
    write_committed_word(addr, word);
  });
  for (std::uint64_t unit : ts.tracker.write_units()) {
    bump_unit(unit);
  }
  ++ts.stats.committed;
  finish_txn(tid, /*serialized=*/false, end);
}

void DesMachine::handle_abort(std::uint32_t tid, AbortReason reason,
                              double at_time) {
  auto& ts = *threads_[tid];
  switch (reason) {
    case AbortReason::kConflict: ++ts.stats.aborts_conflict; break;
    case AbortReason::kCapacity:
      ++ts.stats.aborts_capacity;
      ++ts.capacity_aborts_this_txn;
      break;
    case AbortReason::kOther: ++ts.stats.aborts_other; break;
    case AbortReason::kExplicit: ++ts.stats.aborts_explicit; break;
  }
  ++ts.aborts_this_txn;
  ++ts.consec_aborts;

  double resume = at_time + costs_.abort_ns;

  bool serialize = false;
  if (costs_.serialize_after_first_abort) {
    serialize = true;  // HLE (§4.1)
  } else if (ts.aborts_this_txn > costs_.max_retries) {
    serialize = true;  // BG/Q rollback limit / RTM retry budget
  } else if (reason == AbortReason::kCapacity && !costs_.hardware_retry &&
             ts.capacity_aborts_this_txn >= 2) {
    // RTM software retry gives a deterministic overflow one more chance
    // (it may have been a transient associativity conflict), then falls
    // back to the lock.
    serialize = true;
  } else if (resilience_.livelock_watermark > 0 &&
             ts.consec_aborts >= resilience_.livelock_watermark) {
    // Livelock escalation: the thread has aborted this many times in a row
    // across activities without completing anything — the retry policy
    // alone is not making progress (e.g. its cap is disabled, or a storm
    // keeps restarting the streak). Go irrevocable and flag the outcome so
    // AdaptiveBatch can enter its cooldown regime.
    serialize = true;
    ts.escalated_this_txn = true;
  }

  if (serialize) {
    ts.want_serialize = true;
    queue_.push(resume, tid, kRetry);
    return;
  }

  // Retry with exponential backoff to avoid livelock (§4.1). The BG/Q TM
  // runtime also delays between its automatic rollback retries.
  resume += backoff_.wait(ts.aborts_this_txn - 1, ts.ctx.rng_.next_double());
  queue_.push(resume, tid, kRetry);
}

void DesMachine::enter_serialized(std::uint32_t tid, double ready_time) {
  auto& ts = *threads_[tid];
  SerialDomain& dom = domain_of(tid);
  if (dom.held) {
    // Another serializer holds the lock; queue up. on_serial_commit()
    // admits waiters in FIFO order after its writes are visible.
    dom.waiters.push_back(tid);
    return;
  }
  dom.held = true;
  ++ts.stats.serialized;
  const double start = std::max(ready_time, dom.free_at);
  // Taking the lock aborts every overlapping speculative transaction in
  // this domain: they subscribed to this word and will fail validation.
  bump_addr(dom.lock);

  ts.spec_start = start;
  ts.txn_duration = costs_.serialize_acquire_ns;
  ts.write_buffer.clear();
  ts.tracker.reset();
  ts.txn.start_ = start;
  ts.txn.serialized_ = true;

  bool aborted = false;
  try {
    ts.body(ts.txn);
  } catch (const TxAbort& a) {
    // Only explicit aborts are possible on the irrevocable path; treat as
    // a completed no-op activity (the body chose to do nothing).
    AAM_CHECK_MSG(a.reason == AbortReason::kExplicit,
                  "non-explicit abort on the serialized path");
    aborted = true;
    ts.write_buffer.clear();
  }
  (void)aborted;

  if (fault_hook_ != nullptr) {
    const double factor = fault_hook_->slowdown(tid, start);
    if (factor > 1.0) ts.txn_duration *= factor;
  }

  const double end = start + ts.txn_duration;
  dom.free_at = end;
  queue_.push(end, tid, kSerialCommit);
}

void DesMachine::on_serial_commit(std::uint32_t tid) {
  auto& ts = *threads_[tid];
  const double end = now_;
  ts.write_buffer.for_each([this](std::uintptr_t addr, std::uint64_t word) {
    write_committed_word(addr, word);
  });
  for (std::uint64_t unit : ts.tracker.write_units()) {
    bump_unit(unit);
  }
  SerialDomain& dom = domain_of(tid);
  dom.held = false;
  finish_txn(tid, /*serialized=*/true, end);
  if (!dom.waiters.empty()) {
    const std::uint32_t next = dom.waiters.front();
    dom.waiters.erase(dom.waiters.begin());
    enter_serialized(next, end);
  }
}

void DesMachine::finish_txn(std::uint32_t tid, bool serialized,
                            double end_time) {
  // Crash injection point: one consult per completed activity, i.e.
  // "mid-batch" from the executor's point of view. The throw abandons the
  // completion wholesale — counters, callbacks, and the waiter admission
  // below never happen — exactly like a machine losing power.
  if (fault_hook_ != nullptr && !controlled_ &&
      fault_hook_->inject_crash(tid, end_time)) {
    CrashDiagnostic d;
    d.now_ns = end_time;
    d.tid = tid;
    d.events_processed = events_processed_;
    throw CrashError(d);
  }
  auto& ts = *threads_[tid];
  ts.txn_inflight = false;
  ts.want_serialize = false;
  ts.consec_aborts = 0;  // any completion is progress, serialized included
  --inflight_txns_;
  last_progress_ = std::max(last_progress_, end_time);
  ts.ctx.clock_ = end_time;
  if (ts.done) {
    TxnOutcome outcome;
    outcome.serialized = serialized;
    outcome.escalated = ts.escalated_this_txn;
    outcome.aborts = ts.aborts_this_txn;
    outcome.start_ns = ts.first_start;
    outcome.end_ns = end_time;
    TxnDone done = std::move(ts.done);
    ts.done = nullptr;
    ts.ctx.staged_ = false;
    done(ts.ctx, outcome);
    AAM_CHECK_MSG(!ts.ctx.staged_,
                  "staging a transaction from a done callback is not allowed");
  }
  ts.body = nullptr;
  queue_.push(ts.ctx.clock_, tid, kNext);
}

// ---------------------------------------------------------------------------
// Checkpoint core save/restore
// ---------------------------------------------------------------------------
//
// The durable core is everything the engine needs to replay the exact
// future of a safe instant: virtual clocks, per-thread RNG stream
// positions, conflict stamps and stripe metadata over the *used* heap
// prefix (units beyond the bump pointer are never touched), domain timing
// gates, statistics (so post-restore accounting matches a crash-free run
// of the same prefix), and every pending non-callback event in (time, seq)
// order. Deliberately volatile — not saved, reconstructed or irrelevant:
//   * kCallback events: generic ones are required to be zero (safety
//     predicate); droppable ones are re-derived by the network layer from
//     its own checkpointed protocol state.
//   * EventQueue::next_seq_ and events_processed_: only the *relative*
//     order of re-pushed events matters; both keep counting up.
//   * In-flight transaction scratch (write buffers, trackers): dead at a
//     safe instant by definition.

void DesMachine::save_core(util::BlobWriter& w) const {
  AAM_CHECK_MSG(checkpoint_safe(), "save_core outside a safe instant");
  w.put(now_);
  w.put(last_progress_);
  w.put(commit_stamp_);

  const std::uint64_t used_units =
      (heap_.used_bytes() >> conflict_shift_) + 1;
  w.put(used_units);
  for (std::uint64_t u = 0; u < used_units; ++u) w.put(unit_stamps_[u]);

  const std::uint64_t used_lines =
      heap_.used_bytes() / mem::kLineBytes + 1;
  w.put(used_lines);
  for (std::uint64_t l = 0; l < used_lines; ++l) {
    w.put(stripes_.available_at(l));
    w.put(stripes_.owner(l));
  }

  w.put<std::uint64_t>(threads_.size());
  for (const auto& ts : threads_) {
    AAM_CHECK_MSG(!ts->txn_inflight, "save_core with an in-flight txn");
    w.put(ts->ctx.clock_);
    std::uint64_t rng_state[4];
    ts->ctx.rng_.save_state(rng_state);
    for (std::uint64_t word : rng_state) w.put(word);
    w.put<std::uint8_t>(ts->parked ? 1 : 0);
    w.put(ts->consec_aborts);
    w.put(ts->stats);
  }

  w.put<std::uint64_t>(domains_.size());
  for (const auto& d : domains_) {
    AAM_CHECK_MSG(!d.held && d.waiters.empty(),
                  "save_core with an active serializer");
    w.put(d.free_at);
    w.put(d.atomic_free);
  }

  std::vector<sim::Event> pending;
  queue_.for_each([&pending](const sim::Event& e) {
    if (e.kind != kCallback) pending.push_back(e);
  });
  std::sort(pending.begin(), pending.end(),
            [](const sim::Event& a, const sim::Event& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.seq < b.seq;
            });
  w.put_vector(pending);
}

void DesMachine::restore_core(util::BlobReader& r) {
  now_ = r.get<double>();
  last_progress_ = r.get<double>();
  commit_stamp_ = r.get<std::uint64_t>();

  const std::uint64_t used_units = r.get<std::uint64_t>();
  AAM_CHECK_MSG(used_units <= unit_stamps_.size(),
                "core snapshot does not match this heap layout");
  for (std::uint64_t u = 0; u < used_units; ++u) {
    unit_stamps_[u] = r.get<std::uint64_t>();
  }

  const std::uint64_t used_lines = r.get<std::uint64_t>();
  AAM_CHECK_MSG(used_lines <= stripes_.num_lines(),
                "core snapshot does not match this heap layout");
  for (std::uint64_t l = 0; l < used_lines; ++l) {
    stripes_.set_available_at(l, r.get<sim::Time>());
    stripes_.set_owner(l, r.get<std::uint32_t>());
  }

  const std::uint64_t num_threads = r.get<std::uint64_t>();
  AAM_CHECK_MSG(num_threads == threads_.size(),
                "core snapshot thread count mismatch");
  for (auto& tsp : threads_) {
    auto& ts = *tsp;
    ts.ctx.clock_ = r.get<double>();
    std::uint64_t rng_state[4];
    for (auto& word : rng_state) word = r.get<std::uint64_t>();
    ts.ctx.rng_.restore_state(rng_state);
    ts.parked = r.get<std::uint8_t>() != 0;
    ts.consec_aborts = r.get<int>();
    ts.stats = r.get<HtmStats>();
    // Volatile in-flight state dies with the crash.
    ts.txn_inflight = false;
    ts.want_serialize = false;
    ts.body = nullptr;
    ts.done = nullptr;
    ts.ctx.staged_ = false;
    ts.ctx.staged_body_ = nullptr;
    ts.ctx.staged_done_ = nullptr;
    ts.aborts_this_txn = 0;
    ts.capacity_aborts_this_txn = 0;
    ts.escalated_this_txn = false;
    ts.write_buffer.clear();
    ts.tracker.reset();
  }

  const std::uint64_t num_domains = r.get<std::uint64_t>();
  AAM_CHECK_MSG(num_domains == domains_.size(),
                "core snapshot domain count mismatch");
  for (auto& d : domains_) {
    d.held = false;
    d.waiters.clear();
    d.free_at = r.get<double>();
    d.atomic_free = r.get<double>();
  }
  inflight_txns_ = 0;

  // Drop every pending event and scheduled callback, then re-push the
  // saved events in (time, seq) order: fresh sequence numbers ascend in
  // the same relative order, so the replayed schedule is bit-identical.
  queue_.clear();
  callbacks_.clear();
  callback_free_.clear();
  generic_callbacks_pending_ = 0;
  const std::vector<sim::Event> pending = r.get_vector<sim::Event>();
  for (const sim::Event& e : pending) {
    AAM_CHECK_MSG(e.kind != kCallback, "callback event in a core snapshot");
    queue_.push(e.time, e.thread, e.kind, e.payload);
  }
}

}  // namespace aam::htm
