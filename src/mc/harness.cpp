#include "mc/harness.hpp"

#include <iomanip>
#include <sstream>

#include "core/executor.hpp"
#include "util/check.hpp"

namespace aam::mc {

RunConfig row_run_config(const std::string& workload,
                         const std::string& mechanism) {
  RunConfig cfg;
  cfg.workload = workload;
  if (mechanism == "auto") {
    cfg.mech = core::MechanismSelection{};  // nullopt fixed = auto
    if (workload == "auto-escalate") {
      // Make the livelock escalation (htm -> serial-lock rung jump)
      // reachable within a 2x2 counter: two consecutive aborts escalate.
      cfg.livelock_watermark = 2;
    } else if (workload == "auto-window") {
      // Any abort inside a 32-activity validation window is a band miss:
      // the htm -> stm descent fires mid-run.
      cfg.auto_abort_band = 0.01;
    }
  } else {
    const std::optional<core::Mechanism> fixed =
        core::parse_mechanism(mechanism);
    AAM_CHECK_MSG(fixed.has_value(), "unknown mechanism in certify row");
    cfg.mech = core::MechanismSelection{*fixed};
  }
  return cfg;
}

/// auto-window's full space is far beyond any budget (36 transactions);
/// it is the committed example of the preemption-bound fallback.
int row_bound(const std::string& workload) {
  return workload == "auto-window" ? 1 : -1;
}

CertRow certify_one(const std::string& workload, const std::string& mechanism,
                    const CertOptions& options) {
  CertRow row;
  row.workload = workload;
  row.mechanism = mechanism;
  row.bound = row_bound(workload);

  Runner runner(row_run_config(workload, mechanism));
  row.threads = static_cast<int>(runner.workload().threads.size());

  ExploreConfig dpor;
  dpor.sleep_sets = true;
  dpor.preemption_bound = row.bound;
  dpor.max_runs = options.max_runs;
  dpor.max_steps = options.max_steps;
  const ExploreResult certified = explore(runner, dpor);
  row.dpor_runs = certified.stats.runs;
  row.dpor_schedules = certified.stats.schedules;
  row.violating_schedules = certified.violating_schedules;
  row.max_auto_descents = certified.stats.max_auto_descents;

  if (options.naive_budget > 0 && row.bound < 0) {
    ExploreConfig naive;
    naive.sleep_sets = false;
    naive.preemption_bound = -1;
    naive.max_runs = options.naive_budget;
    naive.max_steps = options.max_steps;
    const ExploreResult full = explore(runner, naive);
    row.naive_complete = !full.stats.budget_exhausted;
    row.naive_schedules = full.stats.schedules;
  }

  if (certified.violating_schedules > 0) {
    row.result = "VIOLATION";
  } else if (certified.stats.budget_exhausted) {
    row.result = "budget-exhausted";
  } else if (row.bound >= 0) {
    std::ostringstream os;
    os << "certified-bounded(p=" << row.bound << ")";
    row.result = os.str();
  } else {
    row.result = "certified";
  }
  return row;
}

CertReport certify(const CertOptions& options) {
  CertReport report;
  const std::vector<std::string> engines = {"htm", "atomics", "fine-locks",
                                            "serial-lock", "stm"};
  for (const std::string workload : {"disjoint", "counter", "cross"}) {
    for (const std::string& mechanism : engines) {
      report.rows.push_back(certify_one(workload, mechanism, options));
    }
  }
  report.rows.push_back(certify_one("counter3", "htm", options));
  for (const std::string workload : {"lock-protocol", "ack-protocol"}) {
    for (const std::string mechanism : {"htm", "atomics"}) {
      report.rows.push_back(certify_one(workload, mechanism, options));
    }
  }
  report.rows.push_back(certify_one("counter", "auto", options));
  report.rows.push_back(certify_one("auto-escalate", "auto", options));
  report.rows.push_back(certify_one("auto-window", "auto", options));
  return report;
}

std::string render_table(const CertReport& report) {
  std::ostringstream os;
  os << std::left << std::setw(14) << "workload" << std::setw(13)
     << "mechanism" << std::right << std::setw(3) << "T" << std::setw(11)
     << "dpor-runs" << std::setw(12) << "dpor-scheds" << std::setw(13)
     << "naive-scheds" << std::setw(9) << "descents" << std::setw(6) << "viol"
     << "  " << std::left << "result" << "\n";
  for (const CertRow& r : report.rows) {
    os << std::left << std::setw(14) << r.workload << std::setw(13)
       << r.mechanism << std::right << std::setw(3) << r.threads
       << std::setw(11) << r.dpor_runs << std::setw(12) << r.dpor_schedules;
    if (r.naive_complete) {
      os << std::setw(13) << r.naive_schedules;
    } else {
      os << std::setw(13) << "-";
    }
    os << std::setw(9) << r.max_auto_descents << std::setw(6)
       << r.violating_schedules << "  " << std::left << r.result << "\n";
  }
  return os.str();
}

std::string render_json(const CertReport& report) {
  std::ostringstream os;
  os << "[\n";
  for (std::size_t i = 0; i < report.rows.size(); ++i) {
    const CertRow& r = report.rows[i];
    os << "  {\"workload\": \"" << r.workload << "\", \"mechanism\": \""
       << r.mechanism << "\", \"threads\": " << r.threads
       << ", \"dpor_runs\": " << r.dpor_runs
       << ", \"dpor_schedules\": " << r.dpor_schedules
       << ", \"naive_schedules\": ";
    if (r.naive_complete) {
      os << r.naive_schedules;
    } else {
      os << "null";
    }
    os << ", \"max_auto_descents\": " << r.max_auto_descents
       << ", \"violating_schedules\": " << r.violating_schedules
       << ", \"result\": \"" << r.result << "\"}"
       << (i + 1 < report.rows.size() ? "," : "") << "\n";
  }
  os << "]\n";
  return os.str();
}

std::string render_golden(const CertReport& report) {
  std::ostringstream os;
  os << "# aam_mc certification manifest\n"
     << "# workload mechanism threads dpor_runs dpor_schedules "
     << "naive_schedules descents violations result\n";
  for (const CertRow& r : report.rows) {
    os << r.workload << " " << r.mechanism << " " << r.threads << " "
       << r.dpor_runs << " " << r.dpor_schedules << " ";
    if (r.naive_complete) {
      os << r.naive_schedules;
    } else {
      os << "-";
    }
    os << " " << r.max_auto_descents << " " << r.violating_schedules << " "
       << r.result << "\n";
  }
  return os.str();
}

}  // namespace aam::mc
