#pragma once

// One controlled execution of a model-checking workload.
//
// The Runner owns everything that stays fixed across the schedule space —
// the workload, its serial-outcome oracle set, and the per-thread static
// footprints — and builds a fresh simulation stack (SimHeap, DesMachine,
// Checker, executor, workers) for every schedule it runs, so schedules
// are perfectly independent: stateless model checking, one full machine
// re-run per explored interleaving.
//
// A run is driven by a PickFn choosing among the frontier of schedulable
// decision points (sim/schedule.hpp); the Runner records the dispatched
// (thread, kind) trace and evaluates four value-based oracles against the
// completed run:
//
//   * serial membership — the committed (finals, emissions) outcome must
//     equal some program-order-respecting serial transaction order
//     (kNotSerializable; reported as kLostUpdate for commutative
//     counter workloads, where that is the classic symptom);
//   * per-workload invariant — the McWorkload's own predicate;
//   * checker divergence — the aam::check serial-replay differ, live as
//     the executor decorator during every schedule (per-batch oracle);
//   * zombie commits — at each kCommitFinal dispatch the Runner asks the
//     engine for an honest first-committer-wins verdict
//     (DesMachine::commit_would_conflict) and flags any transaction the
//     engine nevertheless commits: an opacity violation, observable only
//     with a seeded validation bug.

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "core/executor.hpp"
#include "mc/trace.hpp"
#include "mc/workload.hpp"
#include "sim/schedule.hpp"

namespace aam::mc {

/// What to run: workload x mutation x mechanism (or auto), plus the knobs
/// that make the auto ladder reachable at model-checking scale.
struct RunConfig {
  std::string workload = "counter";
  Mutation mutation = Mutation::kNone;
  core::MechanismSelection mech{core::Mechanism::kHtmCoarsened};
  /// Auto-dispatch plan for the workload's (untagged) batches.
  double auto_predicted_aborts = 0;
  double auto_abort_band = 1e9;
  /// Livelock watermark override (0 = engine default): small values make
  /// the escalated htm -> serial-lock path reachable within tiny runs.
  int livelock_watermark = 0;
  /// Hard per-run dispatch cap; exceeding it stops the run without
  /// quiescence (a diverging schedule, counted as budget-pruned).
  std::uint64_t max_steps = 1 << 20;
};

struct ViolationInfo {
  enum class Kind : std::uint8_t {
    kNotSerializable,    ///< outcome outside the serial-order set
    kLostUpdate,         ///< same, on a commutative counter workload
    kZombieCommit,       ///< engine committed a provably conflicted txn
    kInvariant,          ///< workload invariant failed
    kIncomplete,         ///< quiescence with unfinished thread programs
    kCheckerDivergence,  ///< aam::check batch-level oracle fired
    kReplayError,        ///< trace step never matched the live frontier
  };
  Kind kind = Kind::kNotSerializable;
  std::string detail;
};

const char* to_string(ViolationInfo::Kind kind);

/// Everything observed in one schedule.
struct RunResult {
  Outcome outcome;
  Trace trace;
  std::vector<ViolationInfo> violations;
  bool reached_quiescence = false;
  std::uint64_t steps = 0;       ///< decision points dispatched
  std::uint64_t aborts = 0;      ///< speculative aborts (all reasons)
  std::uint64_t serialized = 0;  ///< fallback executions
  std::uint64_t committed = 0;   ///< speculative commits
  std::uint64_t auto_descents = 0;  ///< auto ladder rungs descended
  std::uint64_t auto_misses = 0;    ///< auto prediction misses
};

/// Picks the index of the next frontier entry to dispatch (or
/// sim::ScheduleController::kStopRun to abandon the run).
using PickFn = std::function<std::size_t(std::span<const sim::Choice>)>;

class Runner {
 public:
  explicit Runner(RunConfig config);

  /// Executes one full schedule under `pick`.
  RunResult run(const PickFn& pick);

  /// Re-executes a recorded schedule by (thread, kind) identity.
  RunResult replay(const Trace& trace);

  const RunConfig& config() const { return config_; }
  const McWorkload& workload() const { return workload_; }
  const std::set<std::string>& serial() const { return serial_; }
  const std::vector<ThreadFootprint>& footprints() const {
    return footprints_;
  }

  /// True when a kNext dispatch may write shared words: non-HTM fixed
  /// mechanisms execute their batch synchronously inside the staging
  /// kNext, and auto may route to one of them. HTM stages only — its
  /// kNext is read-free, and writes land at kCommitFinal/kSerialCommit.
  bool next_writes() const;

 private:
  RunConfig config_;
  McWorkload workload_;
  std::set<std::string> serial_;
  std::vector<ThreadFootprint> footprints_;
};

}  // namespace aam::mc
