#include "mc/runner.hpp"

#include <memory>
#include <sstream>

#include "check/check.hpp"
#include "core/auto_executor.hpp"
#include "htm/des_engine.hpp"
#include "htm/resilience.hpp"
#include "mem/sim_heap.hpp"
#include "model/machines.hpp"
#include "util/check.hpp"

namespace aam::mc {

namespace {

/// The model-checking machine: a deliberately featureless config. Every
/// stochastic or timing-model term that could couple the schedule back
/// into values is off — no "other" aborts, no SMT evictions, no atomic
/// serialization gaps — and conflict detection is word-granular so the
/// engine's conflict units coincide exactly with the workloads' word
/// footprints (the currency of the DPOR dependence relation).
const model::MachineConfig& mc_machine() {
  static const model::MachineConfig config = [] {
    model::MachineConfig m;
    m.name = "MC";
    m.cores = 4;
    m.smt = 1;
    m.atomics.cas_ns = 10;
    m.atomics.acc_ns = 10;
    m.atomics.load_ns = 1;
    m.atomics.store_ns = 1;
    m.atomics.line_transfer_ns = 0;
    m.atomics.global_gap_ns = 0;
    m.supported_htm = {model::HtmKind::kRtm};
    model::HtmCosts h;
    h.begin_ns = 10;
    h.commit_ns = 10;
    h.read_ns = 2;
    h.write_ns = 2;
    h.abort_ns = 10;
    h.backoff_base_ns = 20;
    h.backoff_max_ns = 80;
    h.max_retries = 2;
    h.serialize_after_first_abort = false;
    h.hardware_retry = false;
    h.other_abort_per_us = 0;
    h.smt_evict_per_line = 0;
    h.conflict_granularity_bytes = 8;
    h.read_capacity_lines = 4096;
    h.serialize_acquire_ns = 10;
    for (model::HtmCosts& slot : m.htm_costs_) slot = h;
    return m;
  }();
  return config;
}

/// Runs one thread's program through the executor seam: each McTxn is one
/// batch of `ops.size()` item invocations (one op per item), emissions
/// accumulated from committed attempts only.
class McWorker final : public htm::Worker {
 public:
  McWorker(const McThreadProgram& program, core::ActivityExecutor& exec,
           std::uint64_t* words)
      : program_(program), exec_(exec), words_(words) {}

  bool next(htm::ThreadCtx& ctx) override {
    if (done()) return false;
    const McTxn& txn = program_.txns[idx_];
    if (txn_gives_up(txn, emits_)) {
      gave_up_ = true;
      return false;
    }
    exec_.execute(
        ctx, txn.ops.size(),
        [this, &txn](auto& access, std::uint64_t i) {
          apply_op(txn.ops[i], access, words_);
        },
        [this](htm::ThreadCtx&, std::span<const std::uint64_t> emitted) {
          ++idx_;
          emits_.insert(emits_.end(), emitted.begin(), emitted.end());
        });
    // Transactional executors stage the batch (completion re-activates the
    // thread); synchronous ones already fired BatchDone, so resolve a
    // pending give-up eagerly instead of parking as merely "unfinished".
    if (ctx.has_staged()) return true;
    if (idx_ < program_.txns.size() &&
        txn_gives_up(program_.txns[idx_], emits_)) {
      gave_up_ = true;
    }
    return !done();
  }

  bool done() const { return idx_ >= program_.txns.size() || gave_up_; }
  bool gave_up() const { return gave_up_; }
  std::size_t completed() const { return idx_; }
  const std::vector<std::uint64_t>& emits() const { return emits_; }

 private:
  const McThreadProgram& program_;
  core::ActivityExecutor& exec_;
  std::uint64_t* words_;
  std::size_t idx_ = 0;
  bool gave_up_ = false;
  std::vector<std::uint64_t> emits_;
};

/// Bridges a PickFn to the engine's controller seam: records the
/// dispatched trace, enforces the step budget, and runs the zombie-commit
/// oracle around every kCommitFinal it dispatches.
class RecordingController final : public sim::ScheduleController {
 public:
  RecordingController(const PickFn& pick, htm::DesMachine& machine,
                      std::uint64_t max_steps,
                      std::vector<ViolationInfo>& violations)
      : pick_(pick),
        machine_(machine),
        max_steps_(max_steps),
        violations_(violations) {}

  std::size_t choose(std::span<const sim::Choice> ready) override {
    resolve_pending();
    if (trace_.size() >= max_steps_) {
      stopped_ = true;
      return kStopRun;
    }
    const std::size_t pick = pick_(ready);
    if (pick == kStopRun) {
      stopped_ = true;
      return pick;
    }
    AAM_CHECK_MSG(pick < ready.size(), "controller pick out of range");
    const sim::Choice& c = ready[pick];
    if (c.kind == sim::ChoiceKind::kCommitFinal) {
      // Sample the honest validation verdict *before* the engine decides;
      // resolved at the next decision point (or at run end), once the
      // commit's effect on the thread's stats is observable.
      pending_ = Pending{c.thread(), machine_.commit_would_conflict(c.thread()),
                         machine_.thread_stats(c.thread()).committed};
    }
    trace_.push_back(Step{c.thread(), c.kind});
    return pick;
  }

  void finish() { resolve_pending(); }

  const Trace& trace() const { return trace_; }
  bool stopped() const { return stopped_; }

 private:
  struct Pending {
    std::uint32_t tid = 0;
    bool would_conflict = false;
    std::uint64_t committed_before = 0;
  };

  void resolve_pending() {
    if (!pending_.has_value()) return;
    const htm::HtmStats& st = machine_.thread_stats(pending_->tid);
    if (st.committed == pending_->committed_before + 1 &&
        pending_->would_conflict) {
      std::ostringstream os;
      os << "thread " << pending_->tid << " committed a transaction whose "
         << "footprint was overwritten after its start (zombie commit; "
         << "honest validation says abort)";
      violations_.push_back(
          ViolationInfo{ViolationInfo::Kind::kZombieCommit, os.str()});
    }
    pending_.reset();
  }

  const PickFn& pick_;
  htm::DesMachine& machine_;
  std::uint64_t max_steps_;
  std::vector<ViolationInfo>& violations_;
  Trace trace_;
  bool stopped_ = false;
  std::optional<Pending> pending_;
};

}  // namespace

const char* to_string(ViolationInfo::Kind kind) {
  switch (kind) {
    case ViolationInfo::Kind::kNotSerializable: return "not-serializable";
    case ViolationInfo::Kind::kLostUpdate: return "lost-update";
    case ViolationInfo::Kind::kZombieCommit: return "zombie-commit";
    case ViolationInfo::Kind::kInvariant: return "invariant";
    case ViolationInfo::Kind::kIncomplete: return "incomplete";
    case ViolationInfo::Kind::kCheckerDivergence: return "checker-divergence";
    case ViolationInfo::Kind::kReplayError: return "replay-error";
  }
  return "?";
}

Runner::Runner(RunConfig config)
    : config_(std::move(config)),
      workload_(make_workload(config_.workload, config_.mutation)),
      serial_(serial_outcomes(workload_)),
      footprints_(thread_footprints(workload_)) {}

bool Runner::next_writes() const {
  return config_.mech.is_auto() ||
         *config_.mech.fixed != core::Mechanism::kHtmCoarsened;
}

RunResult Runner::run(const PickFn& pick) {
  const std::size_t num_threads = workload_.threads.size();
  RunResult result;

  // Fresh machinery per schedule, constructed in a deterministic order so
  // heap layout — and with it every conflict unit — is schedule-invariant.
  mem::SimHeap heap(std::size_t{1} << 16);
  htm::DesMachine machine(mc_machine(), model::HtmKind::kRtm,
                          static_cast<int>(num_threads), heap, /*seed=*/1,
                          /*num_domains=*/1);
  if (config_.mutation == Mutation::kSkipReadValidation) {
    machine.set_seeded_bug(htm::DesMachine::SeededBug::kSkipReadValidation);
  }
  if (config_.livelock_watermark > 0) {
    htm::ResilienceConfig r;
    r.livelock_watermark = config_.livelock_watermark;
    machine.set_resilience(r);
  }

  check::CheckConfig check_cfg;
  check_cfg.serial = true;
  check::Checker checker(machine, check_cfg);

  core::ExecutorOptions opts;
  opts.batch = 8;
  opts.lock_stripes = 64;
  opts.decorator = &checker;
  core::AutoPolicy policy;
  if (config_.mech.is_auto()) {
    core::MechanismPlan& plan = policy.plan(core::OperatorId::kUnknown);
    plan.recommended = core::Mechanism::kHtmCoarsened;
    plan.predicted_aborts = config_.auto_predicted_aborts;
    plan.abort_band = config_.auto_abort_band;
    opts.auto_policy = &policy;
  }
  std::unique_ptr<core::ActivityExecutor> exec = core::make_executor(
      config_.mech.fixed.value_or(core::Mechanism::kHtmCoarsened), machine,
      opts);

  std::span<std::uint64_t> words =
      heap.alloc<std::uint64_t>(workload_.num_words, "mc.words");
  for (std::size_t i = 0; i < workload_.init.size(); ++i) {
    words[i] = workload_.init[i];
  }

  std::vector<std::unique_ptr<McWorker>> workers;
  for (std::size_t t = 0; t < num_threads; ++t) {
    workers.push_back(std::make_unique<McWorker>(workload_.threads[t], *exec,
                                                 words.data()));
    machine.set_worker(static_cast<std::uint32_t>(t), workers.back().get());
  }

  RecordingController controller(pick, machine, config_.max_steps,
                                 result.violations);
  machine.run_controlled(controller);
  controller.finish();

  result.trace = controller.trace();
  result.steps = result.trace.size();
  result.reached_quiescence = !controller.stopped();
  const htm::HtmStats stats = machine.stats();
  result.aborts = stats.total_aborts();
  result.serialized = stats.serialized;
  result.committed = stats.committed;
  result.auto_descents = policy.telemetry.descents;
  result.auto_misses = policy.telemetry.prediction_miss;

  result.outcome.finals.assign(words.begin(), words.end());
  for (const std::unique_ptr<McWorker>& w : workers) {
    result.outcome.emits.push_back(w->emits());
  }

  // Value-based oracles apply only to complete schedules; a stopped run's
  // prefix recurs inside some completed schedule of the exploration.
  if (result.reached_quiescence) {
    if (!checker.passed()) {
      std::ostringstream os;
      os << checker.violations_total() << " check:: violation(s); first: ";
      if (!checker.violations().empty()) {
        const check::Violation& v = checker.violations().front();
        os << check::to_string(v.kind) << " — " << v.detail;
      }
      result.violations.push_back(
          ViolationInfo{ViolationInfo::Kind::kCheckerDivergence, os.str()});
    }
    for (std::size_t t = 0; t < workers.size(); ++t) {
      if (!workers[t]->done()) {
        std::ostringstream os;
        os << "thread " << t << " quiesced after " << workers[t]->completed()
           << " of " << workload_.threads[t].txns.size() << " transactions";
        result.violations.push_back(
            ViolationInfo{ViolationInfo::Kind::kIncomplete, os.str()});
      }
    }
    const std::string key = canonical(result.outcome);
    if (serial_.find(key) == serial_.end()) {
      std::ostringstream os;
      os << "outcome '" << key
         << "' is unreachable by any serial transaction order";
      result.violations.push_back(ViolationInfo{
          workload_.commutative ? ViolationInfo::Kind::kLostUpdate
                                : ViolationInfo::Kind::kNotSerializable,
          os.str()});
    }
    if (workload_.invariant) {
      if (std::optional<std::string> broken =
              workload_.invariant(result.outcome)) {
        result.violations.push_back(
            ViolationInfo{ViolationInfo::Kind::kInvariant, *broken});
      }
    }
  }
  return result;
}

RunResult Runner::replay(const Trace& trace) {
  std::size_t at = 0;
  std::optional<std::string> error;
  const PickFn pick = [&](std::span<const sim::Choice> ready) -> std::size_t {
    if (at >= trace.size()) return sim::ScheduleController::kStopRun;
    for (std::size_t i = 0; i < ready.size(); ++i) {
      if (ready[i].thread() == trace[at].thread &&
          ready[i].kind == trace[at].kind) {
        ++at;
        return i;
      }
    }
    std::ostringstream os;
    os << "trace step " << (at + 1) << " (t" << trace[at].thread << " "
       << sim::to_string(trace[at].kind)
       << ") is not enabled in the replayed frontier";
    error = os.str();
    return sim::ScheduleController::kStopRun;
  };
  RunResult result = run(pick);
  if (error.has_value()) {
    result.violations.push_back(
        ViolationInfo{ViolationInfo::Kind::kReplayError, *error});
  } else if (at < trace.size()) {
    std::ostringstream os;
    os << "replay quiesced after " << at << " of " << trace.size()
       << " trace steps";
    result.violations.push_back(
        ViolationInfo{ViolationInfo::Kind::kReplayError, os.str()});
  }
  return result;
}

}  // namespace aam::mc
