#pragma once

// Schedule traces: the replayable identity of one explored interleaving.
//
// A trace is the sequence of decision points the controller dispatched,
// each identified by (thread, ChoiceKind). Identity — not event-queue
// index — is what replays: the frontier's composition at each step is a
// deterministic function of the prefix, so matching (thread, kind)
// against the live frontier re-executes the exact schedule. The textual
// form is dot-separated `<thread><code>` steps ("0n.1n.1p.1c"), accepted
// by `aam_mc --mc-replay=` and asserted verbatim by the mutation tests.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/schedule.hpp"

namespace aam::mc {

/// One dispatched decision point, schedule-identity form.
struct Step {
  std::uint32_t thread = 0;
  sim::ChoiceKind kind = sim::ChoiceKind::kNext;

  bool operator==(const Step&) const = default;
};

using Trace = std::vector<Step>;

/// "0n.1n.1p.1c" — the compact replayable form.
std::string format_trace(const Trace& trace);

/// Inverse of format_trace; nullopt on any malformed step.
std::optional<Trace> parse_trace(const std::string& text);

/// Multi-line human-readable schedule, one step per line:
///   step  1: t0 next
///   step  2: t1 commit-final
std::string pretty_trace(const Trace& trace);

}  // namespace aam::mc
