#pragma once

// The certification sweep behind tools/aam_mc: a fixed matrix of
// (workload x mechanism) configurations, each explored to completion (or
// to its declared preemption bound), with the DPOR and naive-DFS schedule
// counts side by side. The rendered golden form is committed as
// tests/golden/mc_certification.txt and drift-diffed in CI, so every
// number here is deterministic by construction.

#include <cstdint>
#include <string>
#include <vector>

#include "mc/explorer.hpp"

namespace aam::mc {

struct CertRow {
  std::string workload;
  std::string mechanism;  ///< canonical mechanism name or "auto"
  int threads = 0;
  /// Sleep-set DPOR exploration (the certifying pass).
  std::uint64_t dpor_runs = 0;
  std::uint64_t dpor_schedules = 0;
  /// Reduction-free DFS over the same space; kNotRun when the row's
  /// naive budget ran out before the space was exhausted (rendered "-").
  std::uint64_t naive_schedules = 0;
  bool naive_complete = false;
  std::uint64_t violating_schedules = 0;
  std::uint64_t max_auto_descents = 0;
  /// -1 = exhaustive; >= 0 = certified only up to this preemption bound.
  int bound = -1;
  /// "certified", "certified-bounded(p=N)", or "VIOLATION".
  std::string result;
};

struct CertReport {
  std::vector<CertRow> rows;
};

struct CertOptions {
  /// Machine-execution budget for each row's naive (reduction-free)
  /// comparison pass; 0 skips the naive pass entirely.
  std::uint64_t naive_budget = 50000;
  /// Budgets for the certifying DPOR pass.
  std::uint64_t max_runs = 200000;
  std::uint64_t max_steps = 20'000'000;
};

/// The per-row configuration conventions: the committed matrix encodes
/// its knobs by (workload, mechanism) name so every caller — the sweep,
/// the CLI's single-config modes, the tests — reproduces identical rows.
/// `mechanism` is a canonical mechanism name or "auto".
RunConfig row_run_config(const std::string& workload,
                         const std::string& mechanism);

/// The row's exploration bound: -1 (exhaustive) except for the workloads
/// whose full space exceeds any budget (auto-window: p=1).
int row_bound(const std::string& workload);

/// Runs one certification row (exposed for tests).
CertRow certify_one(const std::string& workload, const std::string& mechanism,
                    const CertOptions& options = {});

/// The full committed sweep: every spec workload under every mechanism it
/// is meant to certify, the five fixed engines each exhaustively, and the
/// auto dispatcher on its routing, escalation (htm -> serial-lock), and
/// band-miss (htm -> stm, preemption-bounded) paths.
CertReport certify(const CertOptions& options = {});

std::string render_table(const CertReport& report);
std::string render_json(const CertReport& report);
/// The drift-diffed manifest body (stable line format, trailing newline).
std::string render_golden(const CertReport& report);

}  // namespace aam::mc
