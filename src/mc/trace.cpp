#include "mc/trace.hpp"

#include <cctype>
#include <sstream>

namespace aam::mc {

std::string format_trace(const Trace& trace) {
  std::string out;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(trace[i].thread);
    out.push_back(sim::code_of(trace[i].kind));
  }
  return out;
}

std::optional<Trace> parse_trace(const std::string& text) {
  Trace trace;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('.', pos);
    if (end == std::string::npos) end = text.size();
    const std::string step = text.substr(pos, end - pos);
    if (step.size() < 2) return std::nullopt;
    for (std::size_t i = 0; i + 1 < step.size(); ++i) {
      if (std::isdigit(static_cast<unsigned char>(step[i])) == 0) {
        return std::nullopt;
      }
    }
    const auto kind = sim::kind_from_code(step.back());
    if (!kind.has_value()) return std::nullopt;
    trace.push_back(Step{
        static_cast<std::uint32_t>(
            std::stoul(step.substr(0, step.size() - 1))),
        *kind});
    pos = end + 1;
  }
  return trace;
}

std::string pretty_trace(const Trace& trace) {
  std::ostringstream os;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    os << "step " << (i + 1 < 10 ? " " : "") << (i + 1) << ": t"
       << trace[i].thread << " " << sim::to_string(trace[i].kind) << "\n";
  }
  return os.str();
}

}  // namespace aam::mc
