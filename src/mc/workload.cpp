#include "mc/workload.hpp"

#include <sstream>

#include "analysis/abstract_access.hpp"
#include "util/check.hpp"

namespace aam::mc {

namespace {

/// The serial reference interpreter's access surface: direct word
/// semantics, emissions appended to the running thread's list. Used both
/// by the serial-outcome enumeration here and by nothing else — the
/// executors interpret the same ops through core::Access.
struct SerialRef {
  std::vector<std::uint64_t>* emits = nullptr;

  std::uint64_t load(const std::uint64_t& ref) { return ref; }
  void store(std::uint64_t& ref, std::uint64_t value) { ref = value; }
  std::uint64_t fetch_add(std::uint64_t& ref, std::uint64_t delta) {
    const std::uint64_t old = ref;
    ref = old + delta;
    return old;
  }
  bool cas(std::uint64_t& ref, std::uint64_t expect, std::uint64_t desired) {
    if (ref != expect) return false;
    ref = desired;
    return true;
  }
  void emit(std::uint64_t value) { emits->push_back(value); }
};

struct SerialState {
  std::vector<std::uint64_t> words;
  std::vector<std::size_t> next;  ///< per-thread next txn index
  std::vector<char> terminated;   ///< per-thread give-up flag
  std::vector<std::vector<std::uint64_t>> emits;
};

void enumerate_serial(const McWorkload& w, SerialState& st,
                      std::set<std::string>& out) {
  // Resolve give-ups eagerly: termination is a deterministic function of
  // the thread's own state, not a scheduling choice.
  for (std::size_t t = 0; t < w.threads.size(); ++t) {
    while (st.terminated[t] == 0 && st.next[t] < w.threads[t].txns.size() &&
           txn_gives_up(w.threads[t].txns[st.next[t]], st.emits[t])) {
      st.terminated[t] = 1;
    }
  }
  bool any = false;
  for (std::size_t t = 0; t < w.threads.size(); ++t) {
    if (st.terminated[t] != 0 || st.next[t] >= w.threads[t].txns.size()) {
      continue;
    }
    any = true;
    SerialState child = st;
    const McTxn& txn = w.threads[t].txns[child.next[t]];
    SerialRef acc{&child.emits[t]};
    for (const McOp& op : txn.ops) {
      apply_op(op, acc, child.words.data());
    }
    ++child.next[t];
    enumerate_serial(w, child, out);
  }
  if (!any) {
    Outcome o;
    o.finals = st.words;
    o.emits = st.emits;
    out.insert(canonical(o));
  }
}

McThreadProgram lock_thread(std::uint32_t scratch, bool early_release) {
  McThreadProgram p;
  // try-lock; give up if lost
  p.txns.push_back(McTxn{{{OpKind::kCasEmit, 0, 0, 0, 0, 0, 1}}, false});
  // scratch = data + 1 (the read half of the guarded RMW)
  p.txns.push_back(McTxn{{{OpKind::kCopyAdd, scratch, 1, 0, 0, 1, 0}}, true});
  if (early_release) {
    // BUG: the stripe lock is released before the write-back, exposing
    // the split RMW to the other thread's critical section.
    p.txns.push_back(McTxn{{{OpKind::kStoreImm, 0, 0, 0, 0, 0, 0}}, false});
    p.txns.push_back(
        McTxn{{{OpKind::kCopyAdd, 1, scratch, 0, 0, 0, 0}}, false});
  } else {
    // data = scratch (write-back), then release.
    p.txns.push_back(
        McTxn{{{OpKind::kCopyAdd, 1, scratch, 0, 0, 0, 0}}, false});
    p.txns.push_back(McTxn{{{OpKind::kStoreImm, 0, 0, 0, 0, 0, 0}}, false});
  }
  return p;
}

McThreadProgram counter_thread(std::size_t txns) {
  McThreadProgram p;
  for (std::size_t i = 0; i < txns; ++i) {
    p.txns.push_back(McTxn{{{OpKind::kAddImm, 0, 0, 0, 0, 1, 0}}, false});
  }
  return p;
}

std::optional<std::string> expect_final(std::uint32_t word,
                                        std::uint64_t want,
                                        const Outcome& o) {
  if (o.finals[word] == want) return std::nullopt;
  std::ostringstream os;
  os << "expected w" << word << "=" << want << ", got " << o.finals[word];
  return os.str();
}

}  // namespace

bool txn_gives_up(const McTxn& txn, const std::vector<std::uint64_t>& emits) {
  return txn.skip_if_last_emit_zero && (emits.empty() || emits.back() == 0);
}

std::string canonical(const Outcome& outcome) {
  std::ostringstream os;
  for (std::size_t i = 0; i < outcome.finals.size(); ++i) {
    os << (i > 0 ? " " : "") << "w" << i << "=" << outcome.finals[i];
  }
  os << " |";
  for (std::size_t t = 0; t < outcome.emits.size(); ++t) {
    os << " t" << t << ":";
    if (outcome.emits[t].empty()) {
      os << "-";
    } else {
      for (std::size_t i = 0; i < outcome.emits[t].size(); ++i) {
        if (i > 0) os << ",";
        os << outcome.emits[t][i];
      }
    }
  }
  return os.str();
}

const char* to_string(Mutation mutation) {
  switch (mutation) {
    case Mutation::kNone: return "none";
    case Mutation::kLockEarlyRelease: return "lock-early-release";
    case Mutation::kSkipReadValidation: return "skip-read-validation";
    case Mutation::kDroppedAck: return "dropped-ack";
  }
  return "?";
}

std::optional<Mutation> parse_mutation(const std::string& name) {
  for (Mutation m : {Mutation::kNone, Mutation::kLockEarlyRelease,
                     Mutation::kSkipReadValidation, Mutation::kDroppedAck}) {
    if (name == to_string(m)) return m;
  }
  return std::nullopt;
}

std::string mutation_names() {
  return "none, lock-early-release, skip-read-validation, dropped-ack";
}

std::vector<std::string> workload_names() {
  return {"disjoint",      "counter",       "counter3",
          "cross",         "lock-protocol", "ack-protocol",
          "auto-escalate", "auto-window"};
}

McWorkload make_workload(const std::string& name, Mutation mutation) {
  McWorkload w;
  w.name = name;
  AAM_CHECK_MSG(
      mutation == Mutation::kNone ||
          mutation == Mutation::kSkipReadValidation ||
          (mutation == Mutation::kLockEarlyRelease &&
           name == "lock-protocol") ||
          (mutation == Mutation::kDroppedAck && name == "ack-protocol"),
      "mutation does not apply to this workload");
  if (name == "disjoint") {
    w.description = "2 threads x 2 increments of disjoint words";
    w.num_words = 2;
    McThreadProgram t0, t1;
    for (int i = 0; i < 2; ++i) {
      t0.txns.push_back(McTxn{{{OpKind::kAddImm, 0, 0, 0, 0, 1, 0}}, false});
      t1.txns.push_back(McTxn{{{OpKind::kAddImm, 1, 0, 0, 0, 1, 0}}, false});
    }
    w.threads = {t0, t1};
    w.invariant = [](const Outcome& o) -> std::optional<std::string> {
      if (auto v = expect_final(0, 2, o)) return v;
      return expect_final(1, 2, o);
    };
  } else if (name == "counter") {
    w.description = "2 threads x 2 increments of one shared word";
    w.num_words = 1;
    w.threads = {counter_thread(2), counter_thread(2)};
    w.commutative = true;
    w.invariant = [](const Outcome& o) { return expect_final(0, 4, o); };
  } else if (name == "counter3") {
    w.description = "3 threads x 1 increment of one shared word";
    w.num_words = 1;
    w.threads = {counter_thread(1), counter_thread(1), counter_thread(1)};
    w.commutative = true;
    w.invariant = [](const Outcome& o) { return expect_final(0, 3, o); };
  } else if (name == "cross") {
    w.description = "cross-copy: t0 does x=y+1 while t1 does y=x+1";
    w.num_words = 2;
    McThreadProgram t0, t1;
    t0.txns.push_back(McTxn{{{OpKind::kCopyAdd, 0, 1, 0, 0, 1, 0}}, false});
    t1.txns.push_back(McTxn{{{OpKind::kCopyAdd, 1, 0, 0, 0, 1, 0}}, false});
    w.threads = {t0, t1};
  } else if (name == "lock-protocol") {
    w.description = "trylock-guarded split RMW of a shared counter";
    w.num_words = 4;  // lock, data, scratch0, scratch1
    const bool bug = mutation == Mutation::kLockEarlyRelease;
    w.threads = {lock_thread(2, bug), lock_thread(3, bug)};
    w.invariant = [](const Outcome& o) -> std::optional<std::string> {
      std::uint64_t wins = 0;
      for (const auto& emits : o.emits) {
        for (std::uint64_t e : emits) wins += (e == 1) ? 1 : 0;
      }
      if (o.finals[1] == wins) return std::nullopt;
      std::ostringstream os;
      os << wins << " thread(s) entered the critical section but the "
         << "counter ended at " << o.finals[1] << " (lost update)";
      return os.str();
    };
  } else if (name == "ack-protocol") {
    w.description = "at-most-once delivery with retransmit + dedup guard";
    w.num_words = 4;  // msg, seen, data, ack
    const std::uint32_t guard =
        mutation == Mutation::kDroppedAck ? 3u : 1u;  // BUG: ack, not seen
    McThreadProgram sender, receiver;
    sender.txns.push_back(
        McTxn{{{OpKind::kStoreImm, 0, 0, 0, 0, 1, 0}}, false});
    // Retransmit: resend the message and clear the (possibly stale) ack.
    sender.txns.push_back(McTxn{{{OpKind::kStoreImm, 0, 0, 0, 0, 1, 0},
                                 {OpKind::kStoreImm, 3, 0, 0, 0, 0, 0}},
                                false});
    for (int i = 0; i < 2; ++i) {
      receiver.txns.push_back(
          McTxn{{{OpKind::kDeliverOnce, 0, guard, 2, 3, 5, 0}}, false});
    }
    w.threads = {sender, receiver};
    w.invariant = [](const Outcome& o) -> std::optional<std::string> {
      if (o.finals[2] == 0 || o.finals[2] == 5) return std::nullopt;
      std::ostringstream os;
      os << "message payload applied " << (o.finals[2] / 5)
         << " times (data=" << o.finals[2] << ", want 0 or 5)";
      return os.str();
    };
  } else if (name == "auto-escalate") {
    w.description = "2 threads x 2 contended increments (escalation path)";
    w.num_words = 1;
    w.threads = {counter_thread(2), counter_thread(2)};
    w.commutative = true;
    w.invariant = [](const Outcome& o) { return expect_final(0, 4, o); };
  } else if (name == "auto-window") {
    w.description = "asymmetric contended counter past the auto validation "
                    "window (34 + 2 increments)";
    w.num_words = 1;
    w.threads = {counter_thread(34), counter_thread(2)};
    w.commutative = true;
    w.invariant = [](const Outcome& o) { return expect_final(0, 36, o); };
  } else {
    AAM_CHECK_MSG(false, "unknown mc workload name");
  }
  w.init.assign(w.num_words, 0);
  AAM_CHECK(w.num_words <= 64);
  return w;
}

std::set<std::string> serial_outcomes(const McWorkload& workload) {
  std::set<std::string> out;
  SerialState st;
  st.words = workload.init;
  st.next.assign(workload.threads.size(), 0);
  st.terminated.assign(workload.threads.size(), 0);
  st.emits.resize(workload.threads.size());
  enumerate_serial(workload, st, out);
  return out;
}

std::vector<ThreadFootprint> thread_footprints(const McWorkload& workload) {
  std::vector<ThreadFootprint> out;
  for (const McThreadProgram& prog : workload.threads) {
    // One abstract interpretation per thread: a single symbolic region
    // over the word array, loads forking over {0, 1} so both sides of
    // every guard contribute (conditions only ever test zero/non-zero).
    analysis::Interpreter::Params params;
    params.chain = 32;  // cas failure forks consume widening budget
    analysis::Interpreter interp(params);
    std::vector<std::uint64_t> scratch(workload.num_words, 0);
    analysis::Region region;
    region.name = "words";
    region.label = "mc.words";
    region.base = reinterpret_cast<const std::byte*>(scratch.data());
    region.elem_bytes = sizeof(std::uint64_t);
    region.count = scratch.size();
    region.symbolic = true;
    region.classify = [](std::size_t) { return analysis::IndexClass::kSelf; };
    region.candidates = [](analysis::Interpreter&, std::size_t,
                           std::vector<analysis::Candidate>& cands) {
      cands.push_back({0, analysis::Candidate::Kind::kPlain});
      cands.push_back({1, analysis::Candidate::Kind::kPlain});
    };
    const int r = interp.register_region(region);
    for (const McTxn& txn : prog.txns) {
      interp.enumerate([&] {
        analysis::AbstractAccess acc(interp);
        for (const McOp& op : txn.ops) {
          apply_op(op, acc, scratch.data());
        }
      });
    }
    ThreadFootprint fp;
    for (std::size_t idx : interp.may_reads(r)) {
      fp.reads |= std::uint64_t{1} << idx;
    }
    for (std::size_t idx : interp.may_writes(r)) {
      fp.writes |= std::uint64_t{1} << idx;
    }
    out.push_back(fp);
  }
  return out;
}

}  // namespace aam::mc
