#include "mc/explorer.hpp"

#include <utility>

#include "util/check.hpp"

namespace aam::mc {

namespace {

constexpr std::size_t kNoChoice = static_cast<std::size_t>(-1);

/// True for decision points that interact through the serialization
/// domain (the elision/fallback lock is global state every speculative
/// transaction subscribes to) or the callback table — never commuted.
bool globally_dependent(sim::ChoiceKind kind) {
  return kind == sim::ChoiceKind::kSerialAcquire ||
         kind == sim::ChoiceKind::kSerialCommit ||
         kind == sim::ChoiceKind::kCallback;
}

/// Words the step may write at its dispatch. HTM speculation buffers
/// writes: they reach committed state (words *and* conflict-unit stamps)
/// only at kCommitFinal / kSerialCommit. Non-HTM batches execute
/// synchronously inside the staging kNext, so there kNext writes too.
std::uint64_t writes_of(const Step& s,
                        const std::vector<ThreadFootprint>& fp,
                        bool next_writes) {
  switch (s.kind) {
    case sim::ChoiceKind::kCommitFinal:
    case sim::ChoiceKind::kSerialCommit:
      return fp[s.thread].writes;
    case sim::ChoiceKind::kNext:
      return next_writes ? fp[s.thread].writes : 0;
    default:
      return 0;
  }
}

/// Units the step's outcome may depend on: value reads (body execution at
/// kNext/kSpecRetry) plus conflict-stamp validation of the whole
/// footprint (probes and commits).
std::uint64_t touch_of(const Step& s,
                       const std::vector<ThreadFootprint>& fp) {
  return fp[s.thread].reads | fp[s.thread].writes;
}

/// One node of the DFS stack: the frontier at this depth, which branches
/// are asleep or already explored, and the branch the current path takes.
struct Node {
  std::vector<Step> enabled;
  std::vector<char> sleep;
  std::vector<char> explored;
  std::size_t chosen = kNoChoice;
  std::uint32_t prev_thread = 0;  ///< thread dispatched at depth-1
  bool has_prev = false;
  int preemptions_before = 0;  ///< preemptions among steps [0, depth)
};

class Explorer {
 public:
  Explorer(Runner& runner, const ExploreConfig& config)
      : runner_(runner),
        config_(config),
        fp_(runner.footprints()),
        next_writes_(runner.next_writes()) {}

  ExploreResult run_all() {
    ExploreResult out;
    std::vector<Node> path;
    bool exhausted_space = false;
    while (!exhausted_space) {
      if (out.stats.runs >= config_.max_runs ||
          out.stats.steps >= config_.max_steps) {
        out.stats.budget_exhausted = true;
        break;
      }
      std::size_t depth = 0;
      const PickFn pick =
          [&](std::span<const sim::Choice> ready) -> std::size_t {
        if (depth < path.size()) return replay_prefix(path, depth++, ready);
        Node n = make_node(path, ready);
        n.chosen = first_candidate(n);
        const std::size_t pick_index = n.chosen;
        path.push_back(std::move(n));
        ++depth;
        return pick_index == kNoChoice ? sim::ScheduleController::kStopRun
                                       : pick_index;
      };
      RunResult r = runner_.run(pick);
      ++out.stats.runs;
      out.stats.steps += r.steps;
      if (r.auto_descents > out.stats.max_auto_descents) {
        out.stats.max_auto_descents = r.auto_descents;
      }
      if (r.reached_quiescence) {
        ++out.stats.schedules;
        if (!r.violations.empty()) {
          ++out.violating_schedules;
          for (const ViolationInfo& v : r.violations) {
            if (out.violations.size() < ExploreResult::kMaxStored) {
              out.violations.push_back(FoundViolation{v, r.trace});
            }
          }
          if (config_.stop_at_first_violation) break;
        }
      } else {
        ++out.stats.pruned;
      }
      exhausted_space = !backtrack(path);
    }
    return out;
  }

 private:
  bool depends(const Step& a, const Step& b) const {
    return steps_depend(a, b, fp_, next_writes_);
  }

  /// Dispatching `c` at `n` is a preemption when the previously running
  /// thread could have continued but a different thread runs instead.
  bool is_preemption(const Node& n, const Step& c) const {
    if (!n.has_prev || c.thread == n.prev_thread) return false;
    for (const Step& e : n.enabled) {
      if (e.thread == n.prev_thread) return true;
    }
    return false;
  }

  bool candidate_ok(const Node& n, std::size_t i) const {
    if (n.explored[i] != 0 || n.sleep[i] != 0) return false;
    if (config_.preemption_bound < 0) return true;
    const int cost = is_preemption(n, n.enabled[i]) ? 1 : 0;
    return n.preemptions_before + cost <= config_.preemption_bound;
  }

  std::size_t first_candidate(const Node& n) const {
    for (std::size_t i = 0; i < n.enabled.size(); ++i) {
      if (candidate_ok(n, i)) return i;
    }
    return kNoChoice;
  }

  /// Replays the recorded branch at `depth`, asserting the frontier is
  /// bit-identical to the recorded one (determinism guard: any divergence
  /// would silently invalidate the whole exploration).
  std::size_t replay_prefix(const std::vector<Node>& path, std::size_t depth,
                            std::span<const sim::Choice> ready) const {
    const Node& n = path[depth];
    AAM_CHECK_MSG(n.enabled.size() == ready.size(),
                  "mc: frontier size diverged during prefix replay");
    for (std::size_t i = 0; i < ready.size(); ++i) {
      AAM_CHECK_MSG(ready[i].thread() == n.enabled[i].thread &&
                        ready[i].kind == n.enabled[i].kind,
                    "mc: frontier contents diverged during prefix replay");
    }
    AAM_CHECK(n.chosen < ready.size());
    return n.chosen;
  }

  /// Builds the fresh node for the current frontier, inheriting the sleep
  /// set from the parent: a branch sleeps when the parent had already
  /// explored (or was already sleeping on) the same thread's pending
  /// decision and that decision commutes with the branch the parent took.
  /// The dispatched thread's own next decision is a new action and never
  /// inherits sleep; threads absent from the parent frontier (e.g. a
  /// serialization waiter the parent's dispatch admitted) start awake.
  Node make_node(const std::vector<Node>& path,
                 std::span<const sim::Choice> ready) const {
    Node n;
    n.enabled.reserve(ready.size());
    for (const sim::Choice& c : ready) {
      n.enabled.push_back(Step{c.thread(), c.kind});
    }
    n.sleep.assign(ready.size(), 0);
    n.explored.assign(ready.size(), 0);
    if (path.empty()) return n;
    const Node& p = path.back();
    const Step taken = p.enabled[p.chosen];
    n.has_prev = true;
    n.prev_thread = taken.thread;
    n.preemptions_before =
        p.preemptions_before + (is_preemption(p, taken) ? 1 : 0);
    if (!config_.sleep_sets) return n;
    for (std::size_t i = 0; i < n.enabled.size(); ++i) {
      if (n.enabled[i].thread == taken.thread) continue;
      for (std::size_t j = 0; j < p.enabled.size(); ++j) {
        if (p.enabled[j].thread != n.enabled[i].thread) continue;
        // At most one pending decision per thread: entry j IS branch i's
        // action, unchanged by the parent's dispatch of another thread.
        if (j != p.chosen && (p.sleep[j] != 0 || p.explored[j] != 0) &&
            !depends(p.enabled[j], taken)) {
          n.sleep[i] = 1;
        }
        break;
      }
    }
    return n;
  }

  /// Advances the deepest node with an unexplored branch; pops fully
  /// explored nodes. False when the whole space is done.
  static bool backtrack_advance(std::vector<Node>& path,
                                const Explorer& self) {
    while (!path.empty()) {
      Node& n = path.back();
      if (n.chosen != kNoChoice) n.explored[n.chosen] = 1;
      const std::size_t next = self.first_candidate(n);
      if (next != kNoChoice) {
        n.chosen = next;
        return true;
      }
      path.pop_back();
    }
    return false;
  }

  bool backtrack(std::vector<Node>& path) const {
    return backtrack_advance(path, *this);
  }

  Runner& runner_;
  const ExploreConfig& config_;
  const std::vector<ThreadFootprint>& fp_;
  const bool next_writes_;
};

}  // namespace

bool steps_depend(const Step& a, const Step& b,
                  const std::vector<ThreadFootprint>& footprints,
                  bool next_writes) {
  if (a.thread == b.thread) return true;
  if (globally_dependent(a.kind) || globally_dependent(b.kind)) return true;
  const std::uint64_t wa = writes_of(a, footprints, next_writes);
  const std::uint64_t wb = writes_of(b, footprints, next_writes);
  return (wa & touch_of(b, footprints)) != 0 ||
         (wb & touch_of(a, footprints)) != 0;
}

ExploreResult explore(Runner& runner, const ExploreConfig& config) {
  Explorer explorer(runner, config);
  return explorer.run_all();
}

std::optional<FoundViolation> find_minimal(Runner& runner, int max_bound,
                                           std::uint64_t max_runs) {
  for (int bound = 0; bound <= max_bound; ++bound) {
    ExploreConfig config;
    // Plain bounded DFS: sleep sets off so the witness is the canonical
    // first failure in frontier order at the smallest failing bound.
    config.sleep_sets = false;
    config.preemption_bound = bound;
    config.stop_at_first_violation = true;
    config.max_runs = max_runs;
    ExploreResult result = explore(runner, config);
    if (!result.violations.empty()) {
      return result.violations.front();
    }
  }
  return std::nullopt;
}

}  // namespace aam::mc
