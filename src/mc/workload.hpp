#pragma once

// Model-checking workloads: tiny multi-threaded transactional programs
// (2–4 simulated threads, 2–6 transactions over a handful of sim-heap
// words) whose full schedule space the explorer enumerates.
//
// A workload is a per-thread list of transactions; each transaction is a
// straight-line list of word-level operations interpreted against the
// mechanism-neutral access surface (so the same program runs under every
// executor, the serial-reference interpreter, and the PR 4 abstract
// interpreter). Three things are derived from the same op lists:
//
//   * execution     — McWorker stages each txn as one executor batch;
//   * serial oracle — every program-order-respecting serial interleaving
//                     of whole transactions, evaluated on a scratch word
//                     array; the set of reachable (finals, emissions)
//                     outcomes is the serializability reference;
//   * footprints    — per-thread may-read/may-write word sets via
//                     analysis::Interpreter (the static effect signatures
//                     the DPOR commutativity check keys on).

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace aam::mc {

enum class OpKind : std::uint8_t {
  kLoadEmit,     ///< emit(w[a])
  kStoreImm,     ///< w[a] = imm
  kAddImm,       ///< w[a] += imm (fetch_add)
  kCopyAdd,      ///< w[a] = w[b] + imm
  kCasEmit,      ///< emit(cas(w[a], imm -> imm2) ? 1 : 0)
  kDeliverOnce,  ///< if (w[a]!=0 && w[b]==0) { w[b]=1; w[c]+=imm; w[d]=1;
                 ///<   emit(1) } else emit(0)   (a=msg b=guard c=data d=ack)
};

struct McOp {
  OpKind kind = OpKind::kAddImm;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;
  std::uint32_t d = 0;
  std::uint64_t imm = 0;
  std::uint64_t imm2 = 0;
};

struct McTxn {
  std::vector<McOp> ops;
  /// Trylock give-up: before staging this txn, if the thread's most
  /// recent emission was 0 (or it never emitted), the thread terminates
  /// instead — deliberately, so it still counts as completed.
  bool skip_if_last_emit_zero = false;
};

struct McThreadProgram {
  std::vector<McTxn> txns;
};

/// The value-level result of one complete run: final word values plus the
/// per-thread committed emission sequences. Virtual time is deliberately
/// absent — it is schedule-dependent under controlled execution.
struct Outcome {
  std::vector<std::uint64_t> finals;
  std::vector<std::vector<std::uint64_t>> emits;  ///< per thread

  bool operator==(const Outcome&) const = default;
};

/// Canonical one-line rendering ("w0=1 w1=2 | t0:1 t1:-"), used as the
/// set key for serial-outcome membership and in violation reports.
std::string canonical(const Outcome& outcome);

/// Per-thread static footprint over the workload's word indices,
/// union across all of the thread's transactions and all abstract paths.
struct ThreadFootprint {
  std::uint64_t reads = 0;   ///< bitmask, bit i = word i
  std::uint64_t writes = 0;
};

struct McWorkload {
  std::string name;
  std::string description;
  std::uint32_t num_words = 0;  ///< <= 64 (footprints are bitmasks)
  std::vector<std::uint64_t> init;  ///< initial word values (num_words)
  std::vector<McThreadProgram> threads;
  /// Commutative-increment workloads: a serializability failure here is
  /// reported as a lost update (the classic symptom).
  bool commutative = false;
  /// Extra oracle: nullopt = holds, otherwise the violation description.
  /// Checked against every explored schedule's outcome; spec programs
  /// must satisfy it under *all* interleavings.
  std::function<std::optional<std::string>(const Outcome&)> invariant;
};

/// Deliberate workload-level defects (engine-level ones live in
/// htm::DesMachine::SeededBug). Each names the classic bug its fixture
/// plants; make_workload applies the mutation to the relevant program.
enum class Mutation : std::uint8_t {
  kNone,
  kLockEarlyRelease,     ///< lock-protocol: release before the write-back
  kSkipReadValidation,   ///< engine bug (runner arms the DES seam)
  kDroppedAck,           ///< ack-protocol: dedup keyed on the cleared ack
};

const char* to_string(Mutation mutation);
std::optional<Mutation> parse_mutation(const std::string& name);
std::string mutation_names();

/// Workload registry: "disjoint", "counter", "counter3", "cross",
/// "lock-protocol", "ack-protocol", "auto-escalate", "auto-window".
std::vector<std::string> workload_names();
McWorkload make_workload(const std::string& name,
                         Mutation mutation = Mutation::kNone);

/// Every outcome reachable by some program-order-respecting serial
/// interleaving of whole transactions, keyed by canonical().
std::set<std::string> serial_outcomes(const McWorkload& workload);

/// Static per-thread footprints via the PR 4 abstract interpreter.
std::vector<ThreadFootprint> thread_footprints(const McWorkload& workload);

/// Trylock give-up semantics, shared between the serial-outcome
/// enumeration and the live McWorker: a skip-flagged txn terminates the
/// thread when its last committed emission was 0 (or it never emitted).
bool txn_gives_up(const McTxn& txn, const std::vector<std::uint64_t>& emits);

/// Interprets one op against any access surface with the typed
/// load/store/cas/fetch_add/emit interface (executor Access, the serial
/// reference, analysis::AbstractAccess). `words` is the workload's word
/// array base.
template <typename Acc>
void apply_op(const McOp& op, Acc& acc, std::uint64_t* words) {
  switch (op.kind) {
    case OpKind::kLoadEmit:
      acc.emit(acc.load(words[op.a]));
      break;
    case OpKind::kStoreImm:
      acc.store(words[op.a], op.imm);
      break;
    case OpKind::kAddImm:
      acc.fetch_add(words[op.a], op.imm);
      break;
    case OpKind::kCopyAdd:
      acc.store(words[op.a], acc.load(words[op.b]) + op.imm);
      break;
    case OpKind::kCasEmit:
      acc.emit(acc.cas(words[op.a], op.imm, op.imm2) ? std::uint64_t{1}
                                                     : std::uint64_t{0});
      break;
    case OpKind::kDeliverOnce:
      if (acc.load(words[op.a]) != 0 && acc.load(words[op.b]) == 0) {
        acc.store(words[op.b], std::uint64_t{1});
        acc.fetch_add(words[op.c], op.imm);
        acc.store(words[op.d], std::uint64_t{1});
        acc.emit(1);
      } else {
        acc.emit(0);
      }
      break;
  }
}

}  // namespace aam::mc
