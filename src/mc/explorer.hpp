#pragma once

// Bounded stateless exploration of a workload's schedule space.
//
// The explorer drives Runner::run once per schedule, maintaining a DFS
// stack over the decision tree of frontier choices. Two reductions:
//
//   * sleep sets (Godefroid) keyed on a *static* dependence relation:
//     two decision points commute unless they are on the same thread,
//     either is a serialization/callback event (the domain lock is global
//     state), or their threads' static may-write/may-touch footprints
//     (PR 4 abstract interpretation, word-granular — the same granularity
//     the MC machine detects conflicts at) overlap. Equivalent
//     interleavings share final state and emissions, so the value-based
//     oracles lose nothing; see DESIGN.md §11 for the argument and its
//     caveats.
//
//   * preemption bounding (CHESS-style): cap involuntary context switches
//     per schedule. Unsound but useful both as the budget fallback for
//     configs whose full space is too large and as a trace minimizer —
//     the first failure found at the smallest failing bound is a
//     canonical, fewest-preemptions witness.
//
// Exploration is deterministic: candidate order is frontier order, the
// machine is rebuilt identically per run, and prefix replay asserts the
// frontier is reproduced exactly.

#include <cstdint>
#include <optional>
#include <vector>

#include "mc/runner.hpp"

namespace aam::mc {

struct ExploreConfig {
  bool sleep_sets = true;     ///< conflict-based POR on static footprints
  int preemption_bound = -1;  ///< max involuntary switches; -1 = unbounded
  std::uint64_t max_runs = 200000;       ///< machine executions
  std::uint64_t max_steps = 20'000'000;  ///< total dispatched choices
  bool stop_at_first_violation = false;
};

struct ExploreStats {
  std::uint64_t runs = 0;       ///< machine executions started
  std::uint64_t schedules = 0;  ///< complete (quiescent) schedules
  std::uint64_t pruned = 0;     ///< runs abandoned (sleep-blocked/bounded)
  std::uint64_t steps = 0;      ///< decision points dispatched in total
  /// Largest auto-ladder descent count any single schedule exhibited
  /// (--mechanism=auto only): proof the descent path was exercised
  /// somewhere in the certified space.
  std::uint64_t max_auto_descents = 0;
  bool budget_exhausted = false;
};

struct FoundViolation {
  ViolationInfo info;
  Trace trace;  ///< complete replayable schedule exhibiting it
};

struct ExploreResult {
  ExploreStats stats;
  /// First kMaxStored violations, in discovery order.
  std::vector<FoundViolation> violations;
  /// Complete schedules with at least one violation (uncapped count).
  std::uint64_t violating_schedules = 0;

  inline static constexpr std::size_t kMaxStored = 8;
};

/// Systematic DFS over every inequivalent schedule (within budgets).
ExploreResult explore(Runner& runner, const ExploreConfig& config);

/// Canonical minimized failing schedule: iterative-deepening over the
/// preemption bound (0, 1, ..., max_bound), returning the first failure
/// of the first failing bound. nullopt when no bound yields one.
std::optional<FoundViolation> find_minimal(Runner& runner, int max_bound = 8,
                                           std::uint64_t max_runs = 200000);

/// The static dependence relation the sleep sets key on (exposed for
/// tests): true when the two decision points may not commute.
bool steps_depend(const Step& a, const Step& b,
                  const std::vector<ThreadFootprint>& footprints,
                  bool next_writes);

}  // namespace aam::mc
