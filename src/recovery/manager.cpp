#include "recovery/manager.hpp"

#include <chrono>

#include "util/blob.hpp"
#include "util/check.hpp"

namespace aam::recovery {

RecoveryManager::RecoveryManager(htm::DesMachine& machine, Options options)
    : machine_(machine), options_(options) {
  machine_.set_recovery_client(this);
}

RecoveryManager::RecoveryManager(net::Cluster& cluster, Options options)
    : machine_(cluster.machine()), cluster_(&cluster), options_(options) {
  machine_.set_recovery_client(this);
}

RecoveryManager::~RecoveryManager() {
  if (machine_.recovery_client() == this) {
    machine_.set_recovery_client(nullptr);
  }
}

void RecoveryManager::on_run_entry(htm::DesMachine& machine) {
  // Always checkpoint at run entry: recovery then never falls before the
  // run's initial conditions, and a crash with zero mid-run checkpoints
  // still has somewhere to land.
  take_checkpoint(machine);
}

void RecoveryManager::on_quiescence(htm::DesMachine& machine) {
  // Batch/window boundary. Skip if the clock has not advanced past the
  // last checkpoint (e.g. immediately after a restore landed us here).
  if (machine.now() <= last_ckpt_now_) return;
  take_checkpoint(machine);
}

void RecoveryManager::on_event_boundary(htm::DesMachine& machine) {
  if (options_.ckpt_interval_ns <= 0) return;
  if (machine.now() < last_ckpt_now_ + options_.ckpt_interval_ns) return;
  take_checkpoint(machine);
}

std::uint64_t RecoveryManager::register_host_state(htm::HostStateFns fns) {
  const std::uint64_t token = next_token_++;
  host_state_.emplace_back(token, std::move(fns));
  return token;
}

void RecoveryManager::unregister_host_state(std::uint64_t token) {
  for (std::size_t i = 0; i < host_state_.size(); ++i) {
    if (host_state_[i].first == token) {
      host_state_.erase(host_state_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
  AAM_CHECK_MSG(false, "unregister_host_state: unknown token");
}

void RecoveryManager::take_checkpoint(htm::DesMachine& machine) {
  AAM_CHECK_MSG(machine.checkpoint_safe(),
                "checkpoint requested at an unsafe instant");
  Snapshot snap;

  util::BlobWriter core;
  machine.save_core(core);
  snap.add_section(Snapshot::kCore, core.take());

  util::BlobWriter heap;
  const auto raw = machine.heap().raw_bytes();
  heap.put_bytes(raw.data(), raw.size());
  snap.add_section(Snapshot::kHeap, heap.take());

  util::BlobWriter host;
  host.put<std::uint64_t>(host_state_.size());
  for (const auto& [token, fns] : host_state_) {
    host.put<std::uint64_t>(token);
    std::vector<std::uint8_t> blob;
    fns.save(blob);
    host.put_vector(blob);
  }
  snap.add_section(Snapshot::kHost, host.take());

  if (cluster_ != nullptr) {
    util::BlobWriter net;
    cluster_->save_net(net);
    snap.add_section(Snapshot::kNet, net.take());
  }

  const std::uint64_t id = next_ckpt_id_++;
  const int slot = (active_ + 1) & 1;
  sealed_[slot] = snap.seal(id, machine.now());
  active_ = slot;
  last_ckpt_id_ = id;
  last_ckpt_now_ = machine.now();
  ++stats_.checkpoints;
  stats_.snapshot_bytes = sealed_[slot].size();
}

void RecoveryManager::apply(const Snapshot& snap) {
  // Order matters: core first (drops every pending callback and resets
  // volatile engine state), heap bytes next, then host components (they
  // may consult restored heap contents), then net (restore_net re-arms
  // droppable retransmit callbacks on the freshly restored engine clock).
  const std::vector<std::uint8_t>* core = snap.find(Snapshot::kCore);
  AAM_CHECK_MSG(core != nullptr, "snapshot missing core section");
  util::BlobReader core_r(*core);
  machine_.restore_core(core_r);
  AAM_CHECK_MSG(core_r.exhausted(), "core section has trailing bytes");

  const std::vector<std::uint8_t>* heap = snap.find(Snapshot::kHeap);
  AAM_CHECK_MSG(heap != nullptr, "snapshot missing heap section");
  util::BlobReader heap_r(*heap);
  const std::size_t used = machine_.heap().raw_bytes().size();
  std::vector<std::byte> bytes(used);
  heap_r.get_bytes_into(bytes.data(), used);
  machine_.heap().restore_raw_bytes({bytes.data(), bytes.size()});
  AAM_CHECK_MSG(heap_r.exhausted(), "heap section has trailing bytes");

  const std::vector<std::uint8_t>* host = snap.find(Snapshot::kHost);
  AAM_CHECK_MSG(host != nullptr, "snapshot missing host section");
  util::BlobReader host_r(*host);
  const auto n = host_r.get<std::uint64_t>();
  AAM_CHECK_MSG(n == host_state_.size(),
                "host-state registration count changed since checkpoint");
  for (std::size_t i = 0; i < n; ++i) {
    const auto token = host_r.get<std::uint64_t>();
    AAM_CHECK_MSG(token == host_state_[i].first,
                  "host-state registration order changed since checkpoint");
    const auto blob = host_r.get_vector<std::uint8_t>();
    host_state_[i].second.restore(blob.data(), blob.size());
  }
  AAM_CHECK_MSG(host_r.exhausted(), "host section has trailing bytes");

  if (cluster_ != nullptr) {
    const std::vector<std::uint8_t>* net = snap.find(Snapshot::kNet);
    AAM_CHECK_MSG(net != nullptr, "snapshot missing net section");
    util::BlobReader net_r(*net);
    stats_.replayed_sends += cluster_->restore_net(net_r);
    AAM_CHECK_MSG(net_r.exhausted(), "net section has trailing bytes");
  }

  last_ckpt_now_ = snap.now_ns();
  last_ckpt_id_ = snap.checkpoint_id();
}

bool RecoveryManager::on_crash(htm::DesMachine& machine,
                               const htm::CrashDiagnostic& diagnostic) {
  (void)machine;
  if (active_ < 0) return false;  // nothing to restore from: crash is fatal
  const auto wall_start = std::chrono::steady_clock::now();
  const net::NetStats before =
      cluster_ != nullptr ? cluster_->stats() : net::NetStats{};

  std::string error;
  auto snap = Snapshot::open(sealed_[active_], &error);
  AAM_CHECK_MSG(snap.has_value(),
                ("active checkpoint failed verification during recovery: " +
                 error)
                    .c_str());
  apply(*snap);

  if (cluster_ != nullptr) {
    // Monotone counters: the restored values are the checkpoint-time
    // values, so (before - after) is exactly the crash-lost delta.
    const net::NetStats& after = cluster_->stats();
    stats_.rolled_back_dropped += before.dropped - after.dropped;
    stats_.rolled_back_duplicated += before.duplicated - after.duplicated;
    stats_.rolled_back_retransmitted +=
        before.retransmitted - after.retransmitted;
    stats_.rolled_back_acked += before.acked - after.acked;
    stats_.rolled_back_dedup_discarded +=
        before.dedup_discarded - after.dedup_discarded;
  }

  ++stats_.crashes;
  stats_.lost_work_ns += diagnostic.now_ns - snap->now_ns();
  stats_.recovery_wall_ms +=
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  return true;
}

void RecoveryManager::take_checkpoint_now() { take_checkpoint(machine_); }

bool RecoveryManager::restore_last() {
  if (active_ < 0) return false;
  std::string error;
  auto snap = Snapshot::open(sealed_[active_], &error);
  AAM_CHECK_MSG(snap.has_value(),
                ("last checkpoint failed verification: " + error).c_str());
  apply(*snap);
  return true;
}

const std::vector<std::uint8_t>& RecoveryManager::last_snapshot_bytes() const {
  static const std::vector<std::uint8_t> kEmpty;
  return active_ >= 0 ? sealed_[active_] : kEmpty;
}

bool RecoveryManager::restore_from_bytes(
    const std::vector<std::uint8_t>& sealed, std::string* error) {
  auto snap = Snapshot::open(sealed, error);
  if (!snap.has_value()) return false;
  apply(*snap);
  return true;
}

}  // namespace aam::recovery
