#pragma once

// In-sim checkpoint snapshots with a chained integrity digest.
//
// A Snapshot is a set of tagged sections (engine core, heap bytes,
// host-side component state, network protocol state) sealed into one byte
// buffer. The seal appends a chained FNV-1a digest folded over the header
// and every section in order, and each section records its own running
// digest value, so verification pinpoints *where* a snapshot was torn:
// any truncation, bit flip, or reordering fails open() before a single
// byte is applied to the machine. Recovery therefore either restores a
// bit-exact checkpoint or refuses loudly — never a half-applied one.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace aam::recovery {

class Snapshot {
 public:
  enum Tag : std::uint32_t { kCore = 1, kHeap = 2, kHost = 3, kNet = 4 };

  struct Section {
    std::uint32_t tag = 0;
    std::vector<std::uint8_t> bytes;
  };

  void add_section(std::uint32_t tag, std::vector<std::uint8_t> bytes);

  /// The section with `tag`, or nullptr if absent.
  const std::vector<std::uint8_t>* find(std::uint32_t tag) const;

  /// Serializes header + sections + chained digest into one buffer.
  std::vector<std::uint8_t> seal(std::uint64_t checkpoint_id,
                                 double now_ns) const;

  /// Parses and verifies a sealed buffer. Returns nullopt — with a
  /// human-readable reason in `error` — on any truncation or digest
  /// mismatch; a returned Snapshot is bit-exact.
  static std::optional<Snapshot> open(const std::vector<std::uint8_t>& sealed,
                                      std::string* error);

  std::uint64_t checkpoint_id() const { return checkpoint_id_; }
  double now_ns() const { return now_ns_; }
  const std::vector<Section>& sections() const { return sections_; }

 private:
  std::uint64_t checkpoint_id_ = 0;
  double now_ns_ = 0;
  std::vector<Section> sections_;
};

}  // namespace aam::recovery
