#include "recovery/snapshot.hpp"

#include <cstring>

namespace aam::recovery {
namespace {

constexpr std::uint64_t kMagic = 0x61616d2d636b7074ULL;  // "aam-ckpt"
constexpr std::uint32_t kVersion = 1;

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fold(std::uint64_t& h, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

template <typename T>
void append(std::vector<std::uint8_t>& out, std::uint64_t& h, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
  fold(h, p, sizeof(T));
}

/// Reads a T at `pos`, folding it into the running digest. Returns false
/// (and leaves `err`) if the buffer is too short.
template <typename T>
bool read(const std::vector<std::uint8_t>& in, std::size_t& pos,
          std::uint64_t& h, T& v, std::string* err) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (in.size() - pos < sizeof(T) || pos > in.size()) {
    if (err != nullptr) *err = "snapshot truncated mid-field";
    return false;
  }
  std::memcpy(&v, in.data() + pos, sizeof(T));
  fold(h, in.data() + pos, sizeof(T));
  pos += sizeof(T);
  return true;
}

}  // namespace

void Snapshot::add_section(std::uint32_t tag, std::vector<std::uint8_t> bytes) {
  sections_.push_back(Section{tag, std::move(bytes)});
}

const std::vector<std::uint8_t>* Snapshot::find(std::uint32_t tag) const {
  for (const Section& s : sections_) {
    if (s.tag == tag) return &s.bytes;
  }
  return nullptr;
}

std::vector<std::uint8_t> Snapshot::seal(std::uint64_t checkpoint_id,
                                         double now_ns) const {
  std::vector<std::uint8_t> out;
  std::uint64_t h = kFnvOffset;
  append(out, h, kMagic);
  append(out, h, kVersion);
  append(out, h, checkpoint_id);
  append(out, h, now_ns);
  append(out, h, static_cast<std::uint64_t>(sections_.size()));
  for (const Section& s : sections_) {
    append(out, h, s.tag);
    append(out, h, static_cast<std::uint64_t>(s.bytes.size()));
    out.insert(out.end(), s.bytes.begin(), s.bytes.end());
    fold(h, s.bytes.data(), s.bytes.size());
    // Running digest value after this section: lets open() report *which*
    // section a torn snapshot died in, and chains each section's check to
    // everything before it. Copied first — append folds the value into `h`
    // byte-by-byte, and folding `h` into itself would corrupt the chain.
    const std::uint64_t section_digest = h;
    append(out, h, section_digest);
  }
  const std::uint64_t final_digest = h;  // over the whole buffer
  append(out, h, final_digest);
  return out;
}

std::optional<Snapshot> Snapshot::open(const std::vector<std::uint8_t>& sealed,
                                       std::string* error) {
  std::size_t pos = 0;
  std::uint64_t h = kFnvOffset;
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  Snapshot snap;
  std::uint64_t n_sections = 0;
  if (!read(sealed, pos, h, magic, error)) return std::nullopt;
  if (magic != kMagic) {
    if (error != nullptr) *error = "snapshot magic mismatch";
    return std::nullopt;
  }
  if (!read(sealed, pos, h, version, error)) return std::nullopt;
  if (version != kVersion) {
    if (error != nullptr) *error = "snapshot version mismatch";
    return std::nullopt;
  }
  if (!read(sealed, pos, h, snap.checkpoint_id_, error)) return std::nullopt;
  if (!read(sealed, pos, h, snap.now_ns_, error)) return std::nullopt;
  if (!read(sealed, pos, h, n_sections, error)) return std::nullopt;
  if (n_sections > sealed.size()) {  // each section costs >= 1 byte of header
    if (error != nullptr) *error = "snapshot section count implausible";
    return std::nullopt;
  }
  for (std::uint64_t i = 0; i < n_sections; ++i) {
    Section s;
    std::uint64_t len = 0;
    if (!read(sealed, pos, h, s.tag, error)) return std::nullopt;
    if (!read(sealed, pos, h, len, error)) return std::nullopt;
    if (sealed.size() - pos < len) {
      if (error != nullptr) {
        *error = "snapshot truncated inside section " + std::to_string(s.tag);
      }
      return std::nullopt;
    }
    s.bytes.assign(sealed.begin() + static_cast<std::ptrdiff_t>(pos),
                   sealed.begin() + static_cast<std::ptrdiff_t>(pos + len));
    fold(h, s.bytes.data(), s.bytes.size());
    pos += len;
    const std::uint64_t expect = h;  // digest value the sealer recorded here
    std::uint64_t recorded = 0;
    if (!read(sealed, pos, h, recorded, error)) return std::nullopt;
    if (recorded != expect) {
      if (error != nullptr) {
        *error = "snapshot digest mismatch in section " + std::to_string(s.tag);
      }
      return std::nullopt;
    }
    snap.sections_.push_back(std::move(s));
  }
  const std::uint64_t expect_final = h;
  std::uint64_t recorded_final = 0;
  if (!read(sealed, pos, h, recorded_final, error)) return std::nullopt;
  if (recorded_final != expect_final) {
    if (error != nullptr) *error = "snapshot final digest mismatch";
    return std::nullopt;
  }
  if (pos != sealed.size()) {
    if (error != nullptr) *error = "snapshot has trailing bytes";
    return std::nullopt;
  }
  return snap;
}

}  // namespace aam::recovery
