#pragma once

// RecoveryManager — coordinated checkpoint/restore for one DesMachine
// (optionally wrapped in a net::Cluster).
//
// Checkpoints are taken only at *safe instants* (DesMachine::checkpoint_safe:
// no controlled section, no in-flight transactions, no generic host
// callbacks pending), at three opportunities wired through
// htm::RecoveryClient: run entry, quiescence boundaries, and — gated by
// Options::ckpt_interval_ns — mid-run event boundaries. A checkpoint
// serializes the engine core (clock, commit stamp, unit stamps, stripe
// table, per-thread RNG/clock/stats, pending non-callback events), the raw
// heap bytes, every registered host-side component blob, and the cluster's
// reliable-delivery protocol state, sealed with a chained digest
// (recovery::Snapshot).
//
// A crash (htm::CrashError out of the engine) rolls the whole system back
// to the last sealed snapshot: volatile engine state and all in-sim
// callbacks are dropped, host components rewind through their restore
// closures, and the network layer re-arms a retransmit timer for every
// send that was unacked at the checkpoint — peers replay those messages
// and the receiver's sequence dedup discards the ones it had already
// applied. Crash draws live in the FaultInjector (the external world) and
// are never rolled back, so recovery terminates.
//
// Snapshots are double-buffered: the previous sealed snapshot is kept
// until the next one seals, so a crash *during* checkpointing (torn
// write) can always fall back to a verified-intact predecessor.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "htm/des_engine.hpp"
#include "htm/resilience.hpp"
#include "net/cluster.hpp"
#include "recovery/snapshot.hpp"

namespace aam::recovery {

/// Recovery telemetry exported into bench JSON (see bench_record.sh v5).
struct RecoveryStats {
  std::uint64_t checkpoints = 0;     ///< snapshots sealed
  std::uint64_t crashes = 0;         ///< crash-stops recovered from
  std::uint64_t replayed_sends = 0;  ///< unacked sends re-armed at restores
  double lost_work_ns = 0;       ///< Σ simulated ns rolled back per crash
  double recovery_wall_ms = 0;   ///< host wall time spent restoring
  std::uint64_t snapshot_bytes = 0;  ///< size of the last sealed snapshot
  // NetStats counter deltas erased by rollbacks. Restoring stats_ to its
  // checkpoint value forgets drops/dups/retransmits that happened between
  // checkpoint and crash; the injector's counters don't forget, so exact
  // accounting is injected == final NetStats + rolled_back_*.
  std::uint64_t rolled_back_dropped = 0;
  std::uint64_t rolled_back_duplicated = 0;
  std::uint64_t rolled_back_retransmitted = 0;
  std::uint64_t rolled_back_acked = 0;
  std::uint64_t rolled_back_dedup_discarded = 0;
};

struct RecoveryOptions {
  /// Mid-run checkpoint cadence in simulated ns; <= 0 restricts
  /// checkpoints to run entry and quiescence boundaries.
  double ckpt_interval_ns = 5.0e4;
};

class RecoveryManager final : public htm::RecoveryClient {
 public:
  using Options = RecoveryOptions;

  /// Machine-only recovery (no network section in snapshots).
  explicit RecoveryManager(htm::DesMachine& machine, Options options = {});
  /// Cluster recovery: snapshots include protocol state, restores re-arm
  /// retransmissions for unacked sends.
  explicit RecoveryManager(net::Cluster& cluster, Options options = {});
  ~RecoveryManager() override;

  RecoveryManager(const RecoveryManager&) = delete;
  RecoveryManager& operator=(const RecoveryManager&) = delete;

  // htm::RecoveryClient
  void on_run_entry(htm::DesMachine& machine) override;
  void on_quiescence(htm::DesMachine& machine) override;
  void on_event_boundary(htm::DesMachine& machine) override;
  bool on_crash(htm::DesMachine& machine,
                const htm::CrashDiagnostic& diagnostic) override;
  std::uint64_t register_host_state(htm::HostStateFns fns) override;
  void unregister_host_state(std::uint64_t token) override;
  std::uint64_t last_checkpoint_id() const override { return last_ckpt_id_; }
  std::uint64_t inflight_messages() const override {
    return cluster_ != nullptr ? cluster_->in_flight() : 0;
  }

  /// Forces a checkpoint at the current instant (must be checkpoint_safe);
  /// test surface for the round-trip property test.
  void take_checkpoint_now();
  /// Restores the last sealed snapshot; false if none exists.
  bool restore_last();
  bool has_checkpoint() const { return active_ >= 0; }
  /// The last sealed snapshot, byte-exact (empty if none). Tests truncate
  /// or flip bits in a copy and feed it to restore_from_bytes.
  const std::vector<std::uint8_t>& last_snapshot_bytes() const;
  /// Verifies and restores an arbitrary sealed buffer. On verification
  /// failure returns false with a reason in `error` and the machine
  /// untouched — a torn snapshot can never half-apply.
  bool restore_from_bytes(const std::vector<std::uint8_t>& sealed,
                          std::string* error);

  const RecoveryStats& stats() const { return stats_; }

 private:
  void take_checkpoint(htm::DesMachine& machine);
  /// Applies a verified snapshot (core → heap → host → net).
  void apply(const Snapshot& snap);

  htm::DesMachine& machine_;
  net::Cluster* cluster_ = nullptr;
  Options options_;
  double last_ckpt_now_ = -1.0;
  std::uint64_t last_ckpt_id_ = 0;
  std::uint64_t next_ckpt_id_ = 1;
  // Double buffer of sealed snapshots; active_ indexes the newest, -1
  // until the first checkpoint seals.
  std::vector<std::uint8_t> sealed_[2];
  int active_ = -1;
  std::vector<std::pair<std::uint64_t, htm::HostStateFns>> host_state_;
  std::uint64_t next_token_ = 1;
  RecoveryStats stats_;
};

}  // namespace aam::recovery
