#pragma once

// The §5.3 performance model.
//
// The total time of an activity that modifies N vertices is modelled as a
// linear function t(N) = A*N + B, separately for atomics (A_AT, B_AT) and
// for HTM (A_HTM, B_HTM). The paper predicts B_HTM > B_AT (transactional
// begin/commit overhead) and A_HTM < A_AT (per-access transactional cost
// grows slower than an atomic per vertex), so that coarse transactions
// cross over and win beyond some N.
//
// This module derives the predicted model parameters directly from a
// machine's cost tables, and offers utilities for validating the prediction
// against measured sweeps (Fig 2).

#include <vector>

#include "model/machines.hpp"
#include "util/stats.hpp"

namespace aam::model {

/// Closed-form model parameters derived from cost tables.
struct ActivityModel {
  double slope = 0;      ///< A: marginal per-vertex cost [ns]
  double intercept = 0;  ///< B: fixed activity overhead [ns]
  double eval(double n) const { return slope * n + intercept; }
};

/// Number of transactional accesses an operator issues per vertex. A BFS
/// visit reads the distance/visited word and conditionally writes it; a
/// PageRank update reads and writes the rank.
struct OperatorFootprint {
  double reads_per_vertex = 1.0;
  double writes_per_vertex = 1.0;
  /// Distinct cache lines touched per vertex (vertex state + payload).
  double lines_per_vertex = 1.0;
};

/// Predicted t(N) for an activity of N vertices executed as ONE transaction
/// of the given kind (no contention, no aborts: the Fig 2 regime).
ActivityModel htm_activity_model(const MachineConfig& machine, HtmKind kind,
                                 const OperatorFootprint& fp = {});

/// Predicted t(N) for the same activity executed as N atomics. `use_cas`
/// selects CAS (BFS-style) vs ACC (PageRank-style).
ActivityModel atomic_activity_model(const MachineConfig& machine,
                                    bool use_cas = true);

/// Predicted crossover N* where the HTM activity becomes cheaper than the
/// atomic one; negative if it never does.
double predicted_crossover(const MachineConfig& machine, HtmKind kind,
                           bool use_cas = true,
                           const OperatorFootprint& fp = {});

/// Fits measured (N, time) sweeps to the linear model and reports both fits
/// plus the empirical crossover. Used by bench_fig2_model_validation.
struct ModelValidation {
  util::LinearFit atomic_fit;
  util::LinearFit htm_fit;
  double measured_crossover = -1.0;
  double predicted_crossover = -1.0;
};

ModelValidation validate_model(const MachineConfig& machine, HtmKind kind,
                               const std::vector<double>& sizes,
                               const std::vector<double>& atomic_times,
                               const std::vector<double>& htm_times,
                               bool use_cas = true,
                               const OperatorFootprint& fp = {});

}  // namespace aam::model
