#include "model/perf_model.hpp"

#include "util/check.hpp"

namespace aam::model {

ActivityModel htm_activity_model(const MachineConfig& machine, HtmKind kind,
                                 const OperatorFootprint& fp) {
  const HtmCosts& c = machine.htm(kind);
  ActivityModel m;
  m.intercept = c.begin_ns + c.commit_ns;
  // A transactional visit pays tracked reads/writes plus the underlying
  // cached accesses.
  m.slope = fp.reads_per_vertex * (c.read_ns + machine.atomics.load_ns) +
            fp.writes_per_vertex * (c.write_ns + machine.atomics.store_ns);
  return m;
}

ActivityModel atomic_activity_model(const MachineConfig& machine,
                                    bool use_cas) {
  ActivityModel m;
  m.intercept = 0.0;
  // Per vertex: one read (operand fetch) plus the atomic itself.
  m.slope = machine.atomics.load_ns +
            (use_cas ? machine.atomics.cas_ns : machine.atomics.acc_ns);
  return m;
}

double predicted_crossover(const MachineConfig& machine, HtmKind kind,
                           bool use_cas, const OperatorFootprint& fp) {
  const ActivityModel htm = htm_activity_model(machine, kind, fp);
  const ActivityModel at = atomic_activity_model(machine, use_cas);
  const double dslope = at.slope - htm.slope;
  if (dslope <= 0.0) return -1.0;  // HTM per-vertex cost never amortizes
  return (htm.intercept - at.intercept) / dslope;
}

ModelValidation validate_model(const MachineConfig& machine, HtmKind kind,
                               const std::vector<double>& sizes,
                               const std::vector<double>& atomic_times,
                               const std::vector<double>& htm_times,
                               bool use_cas, const OperatorFootprint& fp) {
  AAM_CHECK(sizes.size() == atomic_times.size());
  AAM_CHECK(sizes.size() == htm_times.size());
  ModelValidation v;
  v.atomic_fit = util::fit_linear(sizes, atomic_times);
  v.htm_fit = util::fit_linear(sizes, htm_times);
  v.measured_crossover = util::crossover(v.htm_fit, v.atomic_fit);
  v.predicted_crossover = predicted_crossover(machine, kind, use_cas, fp);
  return v;
}

}  // namespace aam::model
