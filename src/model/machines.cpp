#include "model/machines.hpp"

#include "util/check.hpp"

namespace aam::model {

const char* to_string(HtmKind kind) {
  switch (kind) {
    case HtmKind::kRtm: return "RTM";
    case HtmKind::kHle: return "HLE";
    case HtmKind::kBgqShort: return "BGQ-HTM-S";
    case HtmKind::kBgqLong: return "BGQ-HTM-L";
  }
  return "?";
}

const HtmCosts& MachineConfig::htm(HtmKind kind) const {
  for (HtmKind k : supported_htm) {
    if (k == kind) return htm_costs_[static_cast<int>(kind)];
  }
  AAM_CHECK_MSG(false, "HTM kind not supported on this machine");
}

namespace {

// ---------------------------------------------------------------------------
// Calibration notes. Each constant is tied to a paper observation:
//  [H1] Has RTM/HLE single-vertex latency is 1.5-3x Has-CAS; RTM is 5-15%
//       faster than HLE (§5.4.1).
//  [H2] Has-CAS latency grows with T due to line contention and stabilizes
//       at T=8 (§5.4.1, point (a) of Fig 3b).
//  [H3] RTM capacity lives in the 8-way L1; buffer overflows dominate
//       Has-C aborts for M>64 while Has-P sees <1% (§5.5 discussion).
//  [B1] BG/Q HTM single-vertex performance degrades ~11x from T=1 to T=64
//       because aborts are expensive (§5.4.1).
//  [B2] Short mode beats long mode for small transactions and inverts for
//       M>32 (short mode has cheaper begin/commit, pricier per access)
//       (§5.2, §5.5.1).
//  [B3] BG/Q HTM auto-retries and serializes after 10 rollbacks (§4.1).
//  [B4] BG/Q keeps speculative state in the 16-way L2, so associativity
//       capacity aborts are rare (§5.5 discussion).
//  [N1] Uncoalesced atomic active messages are ~5x slower than PAMI_Rmw
//       remote atomics; coalescing with C>=16 inverts this (§5.6.1).
//  [N2] On InfiniBand/MPI-3 RMA the crossover is already at C=2 because
//       MPI RMA atomics have a higher per-op cost (§5.6.2).
// ---------------------------------------------------------------------------

MachineConfig make_has_c() {
  MachineConfig m;
  m.name = "Has-C";
  m.cores = 4;
  m.smt = 2;

  m.atomics.cas_ns = 19.0;          // [H1] baseline for the 1.5-3x ratio
  m.atomics.acc_ns = 14.0;          // CAS costs more than ACC (§5.4 disc.)
  m.atomics.load_ns = 1.8;
  m.atomics.store_ns = 2.2;
  // [H2] moderate: CAS stays fastest in Fig 3a across T (~50%% growth
  // from T=4 to T=8) while still growing with contention.
  m.atomics.line_transfer_ns = 6.0;

  HtmCosts rtm;
  rtm.begin_ns = 12.0;              // xbegin/xend are ~30 cycles combined:
  rtm.commit_ns = 10.0;             // single vertex ~= 1.6x CAS [H1], and
                                    // the t(N) crossover lands at N~2 —
                                    // exactly the paper's Has-C M_min.
  rtm.read_ns = 3.0;
  rtm.write_ns = 4.2;
  rtm.abort_ns = 150.0;
  rtm.backoff_base_ns = 120.0;
  rtm.backoff_max_ns = 16000.0;
  rtm.max_retries = 10;             // software retry loop (§4.1)
  rtm.other_abort_per_us = 0.0003;
  rtm.smt_evict_per_line = 1.5e-3;  // [H3] small shared L1 -> Fig 5a shape
  rtm.write_capacity = CacheGeometry{64, 64, 8};  // 32KB 8-way L1 [H3]
  rtm.read_capacity_lines = 4096;
  rtm.serialize_acquire_ns = 70.0;

  HtmCosts hle = rtm;               // [H1] RTM 5-15% faster than HLE
  hle.begin_ns = 14.0;
  hle.commit_ns = 12.0;
  hle.serialize_after_first_abort = true;  // §4.1

  m.htm_costs_[static_cast<int>(HtmKind::kRtm)] = rtm;
  m.htm_costs_[static_cast<int>(HtmKind::kHle)] = hle;
  m.supported_htm = {HtmKind::kRtm, HtmKind::kHle};

  // Not a distributed-memory machine; network params unused but kept sane.
  m.net.overhead_ns = 700.0;
  m.net.latency_ns = 1200.0;
  m.net.byte_ns = 0.25;
  m.net.rmw_issue_ns = 900.0;
  m.net.rmw_latency_ns = 2600.0;
  m.net.am_dispatch_ns = 1100.0;

  // Canned fault calibration: commodity desktop — OS jitter is the main
  // hazard (interrupt storms on a shared box), the network is an
  // afterthought, so the RTO tracks the modest AM round-trip.
  m.fault.storm_rate_per_us = 0.8;
  m.fault.net_rto_ns = 3.0 * (m.net.latency_ns + m.net.am_dispatch_ns);
  m.fault.net_rto_cap_ns = 8.0 * m.fault.net_rto_ns;
  return m;
}

MachineConfig make_has_p() {
  MachineConfig m = make_has_c();
  m.name = "Has-P";
  m.cores = 12;
  m.smt = 2;

  // 2.5 GHz vs 3.4 GHz: scale CPU-side costs up ~1.35x.
  const double f = 1.35;
  m.atomics.cas_ns *= f;
  m.atomics.acc_ns *= f;
  m.atomics.load_ns *= f;
  m.atomics.store_ns *= f;
  m.atomics.line_transfer_ns *= f;

  for (HtmKind k : {HtmKind::kRtm, HtmKind::kHle}) {
    HtmCosts& c = m.htm_costs_[static_cast<int>(k)];
    c.begin_ns *= f;
    c.commit_ns *= f;
    c.read_ns *= f;
    c.write_ns *= f;
    c.abort_ns *= f;
    // [H3] the paper reports 64 KB L1 on Greina => twice the sets, so
    // Has-P is only marginally impacted by buffer overflows (<1% of
    // aborts, §5.5): an order of magnitude lower eviction hazard.
    c.smt_evict_per_line = 3.0e-5;
    c.write_capacity = CacheGeometry{64, 128, 8};
    c.read_capacity_lines = 8192;
  }

  // InfiniBand FDR + MPI-3 RMA. [N2]
  m.net.overhead_ns = 650.0;
  m.net.latency_ns = 1100.0;
  m.net.byte_ns = 0.15;           // ~6.8 GB/s effective
  m.net.rmw_issue_ns = 1400.0;    // MPI RMA fetch-ops are not as pipelined
  m.net.rmw_latency_ns = 3200.0;
  m.net.am_dispatch_ns = 1600.0;  // generic MPI-based AM layer

  // Canned fault calibration: HPC cluster — clean cores (rare OS jitter)
  // but a real fabric: lossy-net and brown-outs (power capping on shared
  // racks) are the interesting scenarios.
  m.fault.storm_rate_per_us = 0.4;
  m.fault.net_drop = 0.08;
  m.fault.net_delay_spike = 0.04;
  m.fault.net_rto_ns = 3.0 * (m.net.latency_ns + m.net.am_dispatch_ns);
  m.fault.net_rto_cap_ns = 8.0 * m.fault.net_rto_ns;
  return m;
}

MachineConfig make_bgq() {
  MachineConfig m;
  m.name = "BGQ";
  m.cores = 16;
  m.smt = 4;

  // A2 cores are slow and in-order; atomics execute at the shared L2, so
  // they cost more but scale gracefully with T (BGQ-CAS "least affected by
  // the increasing T", §5.4.1).
  m.atomics.cas_ns = 72.0;
  m.atomics.acc_ns = 62.0;
  m.atomics.load_ns = 6.0;
  m.atomics.store_ns = 7.0;
  // Atomics are applied *at* the shared L2 (no line ping-pong between
  // private caches), deeply pipelined: BGQ-CAS is "least affected by the
  // increasing T" (§5.4.1) — but the L2 atomic unit's aggregate
  // throughput is bounded (global_gap_ns), which is what AAM's coarse
  // transactions sidestep (§6.1).
  m.atomics.line_transfer_ns = 3.0;
  m.atomics.global_gap_ns = 6.0;

  HtmCosts shrt;
  shrt.begin_ns = 310.0;   // [B2] cheap begin/commit relative to long mode
  shrt.commit_ns = 260.0;
  shrt.read_ns = 12.0;     // [B2] bypasses L1 -> pricier per access
  shrt.write_ns = 14.0;
  shrt.abort_ns = 1500.0;  // [B1] expensive rollbacks
  shrt.backoff_base_ns = 200.0;
  shrt.backoff_max_ns = 25000.0;
  shrt.max_retries = 10;   // [B3]
  shrt.hardware_retry = true;
  shrt.other_abort_per_us = 0.012;  // Table 3c: short mode sees many "other"
  shrt.smt_evict_per_line = 2.0e-6;  // [B4] 32MB shared L2: evictions rare
  shrt.conflict_granularity_bytes = 8;  // fine-grained L2 TM versioning
  // [B4] speculative state in the 16-way L2; budget bounded by per-thread
  // allocation rather than associativity.
  shrt.write_capacity = CacheGeometry{64, 128, 16};  // 2048-line budget
  shrt.read_capacity_lines = 16384;
  shrt.serialize_acquire_ns = 260.0;

  HtmCosts lng = shrt;
  lng.begin_ns = 640.0;    // [B2] long mode pays L1 handling up front
  lng.commit_ns = 520.0;
  lng.read_ns = 8.0;       // [B2] L1-resident -> cheaper per access
  lng.write_ns = 9.0;
  lng.abort_ns = 1900.0;
  lng.other_abort_per_us = 0.004;
  lng.smt_evict_per_line = 1.0e-6;
  lng.conflict_granularity_bytes = 8;
  lng.write_capacity = CacheGeometry{64, 1024, 16};  // 16384-line budget
  lng.read_capacity_lines = 65536;

  m.htm_costs_[static_cast<int>(HtmKind::kBgqShort)] = shrt;
  m.htm_costs_[static_cast<int>(HtmKind::kBgqLong)] = lng;
  m.supported_htm = {HtmKind::kBgqShort, HtmKind::kBgqLong};

  // 5D torus + PAMI. [N1]
  m.net.overhead_ns = 900.0;
  m.net.latency_ns = 1800.0;
  m.net.byte_ns = 0.56;           // ~1.8 GB/s per link
  m.net.rmw_issue_ns = 350.0;     // PAMI_Rmw is deeply pipelined
  m.net.rmw_latency_ns = 3000.0;
  m.net.am_dispatch_ns = 800.0;   // PAMI's lean AM dispatch path

  // Canned fault calibration: BG/Q already injects "other" aborts at a
  // high base rate (Table 3c), so the storm adds relatively less; the
  // torus has long links (larger RTO) and CNK's gang scheduling makes
  // whole-node brown-outs the realistic slowdown mode.
  m.fault.storm_rate_per_us = 0.3;
  m.fault.straggler_fraction = 0.125;  // 64 threads: still 8 stragglers
  m.fault.net_rto_ns = 3.0 * (m.net.latency_ns + m.net.am_dispatch_ns);
  m.fault.net_rto_cap_ns = 8.0 * m.fault.net_rto_ns;
  return m;
}

}  // namespace

const MachineConfig& bgq() {
  static const MachineConfig m = make_bgq();
  return m;
}

const MachineConfig& has_c() {
  static const MachineConfig m = make_has_c();
  return m;
}

const MachineConfig& has_p() {
  static const MachineConfig m = make_has_p();
  return m;
}

const MachineConfig& machine_by_name(const std::string& name) {
  if (name == "BGQ" || name == "bgq") return bgq();
  if (name == "Has-C" || name == "has-c" || name == "hasc") return has_c();
  if (name == "Has-P" || name == "has-p" || name == "hasp") return has_p();
  AAM_CHECK_MSG(false, "unknown machine name (use BGQ, Has-C, Has-P)");
}

}  // namespace aam::model
