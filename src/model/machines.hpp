#pragma once

// Machine models for the three evaluation platforms of the paper (§5.1):
//
//   BGQ    — ALCF "Vesta" Blue Gene/Q node: 16 PowerPC A2 cores x 4 SMT
//            (64 HW threads), HTM implemented in the shared 32 MB 16-way L2,
//            with a *short* and a *long* running mode.
//   Has-C  — Trivium V70.05: Intel Core i7-4770 Haswell, 4 cores x 2 SMT
//            (8 HW threads), TSX (RTM + HLE) with speculative state in the
//            private 32 KB 8-way L1.
//   Has-P  — Greina cluster node: Xeon E5-2680, 12 cores x 2 SMT
//            (24 HW threads), TSX with a larger L1 (the paper reports 64 KB),
//            nodes connected by InfiniBand FDR.
//
// Each config carries the cost constants that drive the discrete-event
// simulation. The constants are calibrated to the *ratios* the paper reports
// (e.g. single-vertex RTM is 1.5-3x a Haswell CAS; BG/Q HTM aborts are
// expensive enough to degrade single-vertex activities ~11x from T=1 to
// T=64; PAMI remote atomics are ~5x cheaper than an uncoalesced atomic
// active message). Absolute values are plausible-order nanoseconds, not
// claims about the original hardware.

#include <cstdint>
#include <string>
#include <vector>

namespace aam::model {

/// The HTM mechanism variants analyzed in the paper (§5.2).
enum class HtmKind : std::uint8_t {
  kRtm,       ///< Intel Restricted Transactional Memory (software retry)
  kHle,       ///< Intel Hardware Lock Elision (serialize after 1st abort)
  kBgqShort,  ///< BG/Q short running mode (bypasses L1; cheap begin/commit)
  kBgqLong,   ///< BG/Q long running mode (L1-resident; cheaper per access)
};

const char* to_string(HtmKind kind);

/// Cache geometry holding speculative transactional state.
struct CacheGeometry {
  std::uint32_t line_bytes = 64;
  std::uint32_t sets = 64;
  std::uint32_t ways = 8;
  std::uint32_t capacity_lines() const { return sets * ways; }
};

/// Cost table for one HTM variant.
struct HtmCosts {
  double begin_ns = 0;    ///< entering speculative execution
  double commit_ns = 0;   ///< successful commit
  double read_ns = 0;     ///< per transactional load (tracking + access)
  double write_ns = 0;    ///< per transactional store (buffering + access)
  double abort_ns = 0;    ///< rollback penalty (state discard + restart)
  double backoff_base_ns = 0;  ///< first exponential-backoff window
  double backoff_max_ns = 0;   ///< backoff cap (livelock avoidance, §4.1)
  int max_retries = 10;        ///< rollbacks before irrevocable serialization
  bool serialize_after_first_abort = false;  ///< HLE behaviour (§4.1)
  bool hardware_retry = false;  ///< BG/Q retries without software dispatch
  /// Poisson rate (events per microsecond of transaction duration) of
  /// "other" aborts: interrupts, context switches, TLB events (§3.2.2).
  double other_abort_per_us = 0;
  /// Per-line probability that a co-scheduled SMT sibling evicts a
  /// speculative line from the shared cache level, aborting the
  /// transaction with a capacity/overflow code. Scaled by thread pressure
  /// ((T-1)/(T_max-1)): zero when single-threaded. This reproduces the
  /// Fig 5a/5b observation that Has-C sees overflow aborts even for tiny
  /// transactions once threads share its small L1, while Has-P (larger
  /// L1) and BG/Q (large shared L2) barely do.
  double smt_evict_per_line = 0;
  /// Conflict-detection granularity in bytes. Haswell tracks read/write
  /// sets per 64B L1 line; BG/Q's L2-based TM versions memory at a finer
  /// grain, which is what lets large-M transactions over packed vertex
  /// arrays survive 64-way parallelism (§5.5.1) without false sharing.
  std::uint32_t conflict_granularity_bytes = 64;
  CacheGeometry write_capacity;  ///< geometry bounding the write set
  /// Total line budget for the read set (reads are typically tracked with
  /// a larger, less associativity-constrained structure).
  std::uint32_t read_capacity_lines = 4096;
  double serialize_acquire_ns = 0;  ///< taking the fallback lock
};

/// Cost table for hardware atomic operations (§2.3, §5.2).
struct AtomicCosts {
  double cas_ns = 0;   ///< compare-and-swap
  double acc_ns = 0;   ///< fetch-and-add / accumulate
  double load_ns = 0;  ///< plain cached load
  double store_ns = 0; ///< plain cached store
  /// Serialization window a hot cache line imposes on the *next* atomic
  /// from another thread (line ping-pong). Models the Fig 3a/3b latency
  /// growth of Has-CAS with T and its stabilization once the memory system
  /// saturates.
  double line_transfer_ns = 0;
  /// Machine-wide serialization between *any* two atomics: BG/Q executes
  /// atomics at the shared L2 atomic unit, so their aggregate throughput
  /// is bounded regardless of which lines they touch. This is what caps
  /// the scaling of atomics-based Graph500 BFS at high T while AAM's
  /// transactional accesses (normal cache path) keep scaling — the
  /// paper's headline speedup mechanism (§6.1, Fig 7a). Zero on Haswell
  /// (atomics execute in private caches).
  double global_gap_ns = 0;
};

/// LogGP-flavoured network model plus remote-atomic parameters (§5.6).
struct NetworkCosts {
  double overhead_ns = 0;     ///< o: sender CPU cost per message
  double latency_ns = 0;      ///< L: wire latency
  double byte_ns = 0;         ///< 1/B: per-byte serialization cost
  double rmw_issue_ns = 0;    ///< pipelined one-sided remote atomic issue gap
  double rmw_latency_ns = 0;  ///< remote atomic end-to-end completion
  double am_dispatch_ns = 0;  ///< receiver-side handler dispatch per message
};

/// Per-machine calibration of the canned fault scenarios (aam::fault).
/// These are the *defaults* a `--fault=<name>` spec expands to; every field
/// can be overridden with key=value tokens. Rates are chosen so each
/// scenario visibly stresses the machine's recovery paths (retransmits,
/// retry policies, AdaptiveBatch cooldown) without starving progress.
struct FaultProfile {
  // abort-storm: extra Poisson rate of injected kOther aborts (events per
  // microsecond of transaction duration), applied in square-wave bursts.
  double storm_rate_per_us = 0.5;
  double storm_period_ns = 2.0e5;  ///< burst square-wave period (0 = always on)
  double storm_duty = 0.5;         ///< fraction of the period that storms
  // lossy-net: per-transmission fault probabilities and magnitudes.
  double net_drop = 0.05;
  double net_duplicate = 0.03;
  double net_reorder = 0.10;        ///< probability of reorder jitter
  double net_reorder_ns = 2000.0;   ///< max extra jitter when reordered
  double net_delay_spike = 0.02;    ///< probability of a delay spike
  double net_delay_spike_ns = 20000.0;
  double net_rto_ns = 8000.0;       ///< initial retransmit timeout
  double net_rto_cap_ns = 64000.0;  ///< exponential-backoff cap
  // straggler: a deterministic subset of threads runs slower in windows.
  double straggler_fraction = 0.25;  ///< fraction of threads affected
  double straggler_factor = 4.0;     ///< multiplicative slowdown
  double straggler_period_ns = 4.0e5;
  double straggler_duty = 0.5;
  // brownout: whole simulated nodes transiently slow down.
  double brownout_fraction = 0.5;
  double brownout_factor = 6.0;
  double brownout_period_ns = 1.0e6;
  double brownout_duty = 0.25;
  // crash-restart: crash-stop machine failures recovered from checkpoints
  // (src/recovery/). crash_p is the per-consult (completed activity or
  // event boundary) crash probability; crash_at_ns forces one crash at
  // the first consult past that virtual time (0 = disabled) so every
  // non-trivial run deterministically suffers at least one crash;
  // crash_max caps the total crashes a run may suffer; crash_ckpt_ns is
  // the checkpoint interval handed to the RecoveryManager.
  double crash_p = 5.0e-5;
  double crash_at_ns = 3.0e3;
  double crash_max = 3.0;
  double crash_ckpt_ns = 2.0e3;
};

struct MachineConfig {
  std::string name;
  int cores = 1;
  int smt = 1;
  AtomicCosts atomics;
  NetworkCosts net;
  FaultProfile fault;
  std::vector<HtmKind> supported_htm;

  int max_threads() const { return cores * smt; }
  /// One thread per core (middle scenario of §5.5).
  int threads_per_core_one() const { return cores; }
  const HtmCosts& htm(HtmKind kind) const;

  HtmCosts htm_costs_[4];  // indexed by HtmKind; filled by factory functions
};

/// ALCF Vesta Blue Gene/Q node model.
const MachineConfig& bgq();
/// Trivium V70.05 commodity Haswell model.
const MachineConfig& has_c();
/// Greina high-performance cluster node model.
const MachineConfig& has_p();

/// Look up by name ("BGQ", "Has-C", "Has-P"); aborts on unknown names.
const MachineConfig& machine_by_name(const std::string& name);

}  // namespace aam::model
