#pragma once

// The atomic-operation vocabulary of §2.3, for real threads.
//
// The DES engine exposes the same operations on simulated memory through
// ThreadCtx (cas / fetch_add); these free functions are the std::atomic
// counterparts used by the threaded tests and baselines. They mirror the
// paper's taxonomy: Accumulate (ACC), Fetch-and-Op (FAO), and
// Compare-and-Swap (CAS).

#include <atomic>
#include <cstdint>

namespace aam::atomics {

/// Accumulate(*target, arg, op): applies `op` to *target atomically.
/// op is a pure callable T(T,T); implemented as a CAS loop so any
/// associative op works (matches GCC __sync_* generality).
template <typename T, typename Op>
void accumulate(std::atomic<T>& target, T arg, Op op) {
  T cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, op(cur, arg),
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
  }
}

/// Fetch-and-Op(*target, arg, op): like accumulate but returns the
/// previous value.
template <typename T, typename Op>
T fetch_and_op(std::atomic<T>& target, T arg, Op op) {
  T cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, op(cur, arg),
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
  }
  return cur;
}

/// Compare-and-Swap(*target, compare, value, *result) per §2.3: writes
/// `value` iff *target == compare; *result reports success.
template <typename T>
void compare_and_swap(std::atomic<T>& target, T compare, T value,
                      bool* result) {
  T expected = compare;
  *result = target.compare_exchange_strong(expected, value,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed);
}

/// Atomic fetch-min: lowers *target to `value` if smaller; returns true if
/// this call lowered it. The lock-free BFS/SSSP building block.
template <typename T>
bool fetch_min(std::atomic<T>& target, T value) {
  T cur = target.load(std::memory_order_relaxed);
  while (value < cur) {
    if (target.compare_exchange_weak(cur, value, std::memory_order_acq_rel,
                                     std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

/// Atomic add for doubles (no std::atomic<double>::fetch_add pre-C++20
/// on all targets; CAS loop keeps it portable).
inline double fetch_add_double(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
  }
  return cur;
}

/// Test-and-test-and-set spinlock on its own cache line; the "fine lock"
/// primitive of the Galois-like baseline (§6.1.2).
class alignas(64) SpinLock {
 public:
  void lock() {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
      }
    }
  }
  bool try_lock() {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }
  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace aam::atomics
