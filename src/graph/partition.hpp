#pragma once

// One-dimensional graph partitioning (§3.1).
//
// V is divided into N contiguous blocks; block i is owned by process p_i.
// The owner of vertex v also owns all edges (v, w). This is the
// distribution scheme the paper assumes throughout.

#include <cstdint>

#include "graph/csr.hpp"
#include "util/check.hpp"

namespace aam::graph {

class Block1D {
 public:
  Block1D() = default;
  Block1D(Vertex num_vertices, int num_nodes)
      : n_(num_vertices), nodes_(num_nodes) {
    AAM_CHECK(num_nodes >= 1);
    block_ = (n_ + static_cast<Vertex>(nodes_) - 1) /
             static_cast<Vertex>(nodes_);
    if (block_ == 0) block_ = 1;
  }

  int num_nodes() const { return nodes_; }
  Vertex num_vertices() const { return n_; }

  /// The process that owns vertex v.
  int owner(Vertex v) const {
    AAM_DCHECK(v < n_);
    return static_cast<int>(v / block_);
  }

  /// First vertex owned by `node`.
  Vertex begin(int node) const {
    const auto b = static_cast<Vertex>(node) * block_;
    return b > n_ ? n_ : b;
  }
  /// One past the last vertex owned by `node`.
  Vertex end(int node) const {
    const auto e = (static_cast<Vertex>(node) + 1) * block_;
    return e > n_ ? n_ : e;
  }
  Vertex count(int node) const { return end(node) - begin(node); }

  /// Index of v within its owner's block.
  Vertex local_index(Vertex v) const { return v - begin(owner(v)); }

 private:
  Vertex n_ = 0;
  int nodes_ = 1;
  Vertex block_ = 1;
};

}  // namespace aam::graph
