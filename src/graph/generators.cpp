#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace aam::graph {

EdgeList kronecker_edges(const KroneckerParams& params, util::Rng& rng) {
  AAM_CHECK(params.scale >= 1 && params.scale < 32);
  const Vertex n = Vertex{1} << params.scale;
  const std::uint64_t m =
      static_cast<std::uint64_t>(params.edge_factor) * n;
  const double ab = params.a + params.b;
  const double c_norm = params.c / (1.0 - ab);

  EdgeList edges;
  edges.reserve(m);
  for (std::uint64_t e = 0; e < m; ++e) {
    Vertex u = 0;
    Vertex v = 0;
    for (int bit = 0; bit < params.scale; ++bit) {
      const double r1 = rng.next_double();
      const double r2 = rng.next_double();
      // Choose the quadrant: (0,0) w.p. a, (0,1) w.p. b, (1,0) w.p. c,
      // (1,1) w.p. d = 1-a-b-c. Graph500 reference formulation.
      const bool u_bit = r1 > ab;
      const bool v_bit = r2 > (u_bit ? c_norm : params.a / ab);
      u |= static_cast<Vertex>(u_bit) << bit;
      v |= static_cast<Vertex>(v_bit) << bit;
    }
    edges.emplace_back(u, v);
  }

  if (params.permute) {
    std::vector<Vertex> perm(n);
    std::iota(perm.begin(), perm.end(), Vertex{0});
    for (Vertex i = n; i > 1; --i) {
      const auto j = static_cast<Vertex>(rng.next_below(i));
      std::swap(perm[i - 1], perm[j]);
    }
    for (auto& [u, v] : edges) {
      u = perm[u];
      v = perm[v];
    }
  }
  return edges;
}

Graph kronecker(const KroneckerParams& params, util::Rng& rng) {
  const Vertex n = Vertex{1} << params.scale;
  return Graph::from_edges(n, kronecker_edges(params, rng),
                           params.undirected);
}

EdgeList erdos_renyi_edges(Vertex n, double p, util::Rng& rng) {
  AAM_CHECK(p > 0.0 && p < 1.0);
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(
      p * static_cast<double>(n) * static_cast<double>(n) / 2.0 * 1.05));
  // Batagelj-Brandes geometric skipping over the lower triangle.
  const double log1mp = std::log(1.0 - p);
  std::int64_t v = 1;
  std::int64_t w = -1;
  while (v < static_cast<std::int64_t>(n)) {
    const double r = 1.0 - rng.next_double();  // (0,1]
    w += 1 + static_cast<std::int64_t>(std::floor(std::log(r) / log1mp));
    while (w >= v && v < static_cast<std::int64_t>(n)) {
      w -= v;
      ++v;
    }
    if (v < static_cast<std::int64_t>(n)) {
      edges.emplace_back(static_cast<Vertex>(v), static_cast<Vertex>(w));
    }
  }
  return edges;
}

Graph erdos_renyi(Vertex n, double p, util::Rng& rng) {
  return Graph::from_edges(n, erdos_renyi_edges(n, p, rng),
                           /*undirected=*/true);
}

Graph preferential_attachment(Vertex n, int m, util::Rng& rng) {
  AAM_CHECK(m >= 1 && n > static_cast<Vertex>(m));
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(m));
  // Repeated-endpoints list: sampling uniformly from it is sampling
  // proportionally to degree.
  std::vector<Vertex> endpoints;
  endpoints.reserve(edges.capacity() * 2);
  // Seed clique over the first m+1 vertices.
  for (Vertex u = 0; u <= static_cast<Vertex>(m); ++u) {
    for (Vertex v = u + 1; v <= static_cast<Vertex>(m); ++v) {
      edges.emplace_back(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (Vertex u = static_cast<Vertex>(m) + 1; u < n; ++u) {
    for (int j = 0; j < m; ++j) {
      const Vertex target =
          endpoints[rng.next_below(endpoints.size())];
      edges.emplace_back(u, target);
      endpoints.push_back(u);
      endpoints.push_back(target);
    }
  }
  return Graph::from_edges(n, edges, /*undirected=*/true);
}

Graph road_lattice(Vertex width, Vertex height, double shortcut_prob,
                   util::Rng& rng) {
  AAM_CHECK(width >= 2 && height >= 2);
  const Vertex n = width * height;
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n) * 2 +
                static_cast<std::size_t>(shortcut_prob * n) + 16);
  auto id = [width](Vertex x, Vertex y) { return y * width + x; };
  for (Vertex y = 0; y < height; ++y) {
    for (Vertex x = 0; x < width; ++x) {
      if (x + 1 < width) edges.emplace_back(id(x, y), id(x + 1, y));
      if (y + 1 < height) edges.emplace_back(id(x, y), id(x, y + 1));
    }
  }
  // A few long shortcuts model highways/bridges without destroying the
  // high-diameter character.
  const auto shortcuts = static_cast<std::uint64_t>(shortcut_prob * n);
  for (std::uint64_t s = 0; s < shortcuts; ++s) {
    const auto u = static_cast<Vertex>(rng.next_below(n));
    const auto v = static_cast<Vertex>(rng.next_below(n));
    if (u != v) edges.emplace_back(u, v);
  }
  return Graph::from_edges(n, edges, /*undirected=*/true);
}

Graph small_world(Vertex n, int k, double beta, util::Rng& rng) {
  AAM_CHECK(k >= 1 && n > static_cast<Vertex>(2 * k));
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(k));
  for (Vertex u = 0; u < n; ++u) {
    for (int j = 1; j <= k; ++j) {
      Vertex v = static_cast<Vertex>((u + static_cast<Vertex>(j)) % n);
      if (rng.next_bool(beta)) {
        v = static_cast<Vertex>(rng.next_below(n));
        if (v == u) v = (u + 1) % n;
      }
      edges.emplace_back(u, v);
    }
  }
  return Graph::from_edges(n, edges, /*undirected=*/true);
}

std::vector<float> random_weights(std::size_t count, float lo, float hi,
                                  util::Rng& rng) {
  AAM_CHECK(hi > lo);
  std::vector<float> w(count);
  for (auto& x : w) {
    x = lo + static_cast<float>(rng.next_double()) * (hi - lo);
  }
  return w;
}

}  // namespace aam::graph
