#pragma once

// Synthetic structural analogs for the 16 SNAP real-world graphs of
// Table 1 (§6.1.2).
//
// The original datasets are not bundled; per the reproduction plan each
// graph is replaced by a generator configured to match its published
// |V|, |E| and its structural class:
//
//   CNs (communication)  -> preferential attachment, extreme degree skew
//   SNs (social)         -> preferential attachment, heavy-tailed
//   PNs (purchase)       -> preferential attachment, moderate
//   RNs (road)           -> 2-D lattice with sparse shortcuts (huge diameter)
//   CGs (citation)       -> preferential attachment, low m
//   WGs (web)            -> Kronecker power-law with locality
//
// The catalog also embeds the speedups Table 1 reports, so the bench can
// print paper-vs-measured side by side. A `scale_divisor` shrinks each
// graph (dividing |V|, preserving average degree) to fit the host.
//
// load_edge_list() (io.hpp) remains the drop-in path for the real files.

#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "util/rng.hpp"

namespace aam::graph {

enum class AnalogFamily {
  kCommunication,
  kSocial,
  kPurchase,
  kRoad,
  kCitation,
  kWeb,
};

const char* to_string(AnalogFamily family);

struct RealGraphAnalog {
  std::string id;    ///< Table 1 ID, e.g. "cWT"
  std::string name;  ///< SNAP name, e.g. "wiki-Talk"
  AnalogFamily family;
  std::uint64_t vertices;  ///< published |V|
  std::uint64_t edges;     ///< published |E|

  // Paper-reported speedups (Table 1), for paper-vs-measured output.
  double paper_bgq_s_m24;     ///< S over Graph500 on BG/Q at M=24
  int paper_bgq_opt_m;        ///< per-graph optimum M on BG/Q
  double paper_bgq_s_opt;     ///< S over Graph500 at optimum M (BG/Q)
  double paper_has_s_g500_m2; ///< S over Graph500 on Haswell at M=2
  double paper_has_s_galois_m2;
  int paper_has_opt_m;
  double paper_has_s_g500_opt;
  double paper_has_s_galois_opt;
  double paper_has_s_hama;    ///< S over HAMA (1e4 encodes ">10^4")
};

/// All 16 Table 1 entries, in the paper's order.
const std::vector<RealGraphAnalog>& table1_catalog();

/// Look up a catalog entry by Table 1 ID; aborts on unknown ids.
const RealGraphAnalog& analog_by_id(const std::string& id);

/// Synthesizes the analog graph, shrunk by `scale_divisor` (>=1). The
/// generated graph has ~|V|/divisor vertices and preserves the original
/// average degree and the family's structure.
Graph synthesize(const RealGraphAnalog& analog, std::uint64_t scale_divisor,
                 util::Rng& rng);

}  // namespace aam::graph
