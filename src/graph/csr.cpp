#include "graph/csr.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace aam::graph {

namespace {

struct Arc {
  Vertex src;
  Vertex dst;
  float weight;
};

Graph build(Vertex n, std::vector<Arc>& arcs, bool dedupe, bool weighted,
            std::vector<std::uint64_t>& offsets, std::vector<Vertex>& adj,
            std::vector<float>& weights) {
  std::sort(arcs.begin(), arcs.end(), [](const Arc& a, const Arc& b) {
    if (a.src != b.src) return a.src < b.src;
    return a.dst < b.dst;
  });
  if (dedupe) {
    arcs.erase(std::unique(arcs.begin(), arcs.end(),
                           [](const Arc& a, const Arc& b) {
                             return a.src == b.src && a.dst == b.dst;
                           }),
               arcs.end());
  }

  offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const Arc& a : arcs) ++offsets[a.src + 1];
  std::partial_sum(offsets.begin(), offsets.end(), offsets.begin());

  adj.resize(arcs.size());
  if (weighted) weights.resize(arcs.size());
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    adj[i] = arcs[i].dst;
    if (weighted) weights[i] = arcs[i].weight;
  }
  return {};
}

}  // namespace

Graph Graph::from_edges(Vertex n, const EdgeList& edges, bool undirected,
                        bool dedupe) {
  std::vector<Arc> arcs;
  arcs.reserve(edges.size() * (undirected ? 2 : 1));
  for (const auto& [u, v] : edges) {
    AAM_CHECK_MSG(u < n && v < n, "edge endpoint out of range");
    if (u == v) continue;
    arcs.push_back({u, v, 1.0f});
    if (undirected) arcs.push_back({v, u, 1.0f});
  }
  Graph g;
  g.n_ = n;
  build(n, arcs, dedupe, /*weighted=*/false, g.offsets_, g.adj_, g.weights_);
  return g;
}

Graph Graph::from_weighted_edges(Vertex n, const EdgeList& edges,
                                 const std::vector<float>& weights,
                                 bool undirected) {
  AAM_CHECK(edges.size() == weights.size());
  std::vector<Arc> arcs;
  arcs.reserve(edges.size() * (undirected ? 2 : 1));
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const auto& [u, v] = edges[i];
    AAM_CHECK_MSG(u < n && v < n, "edge endpoint out of range");
    if (u == v) continue;
    arcs.push_back({u, v, weights[i]});
    if (undirected) arcs.push_back({v, u, weights[i]});
  }
  Graph g;
  g.n_ = n;
  build(n, arcs, /*dedupe=*/true, /*weighted=*/true, g.offsets_, g.adj_,
        g.weights_);
  return g;
}

std::size_t Graph::memory_bytes() const {
  return offsets_.size() * sizeof(std::uint64_t) +
         adj_.size() * sizeof(Vertex) + weights_.size() * sizeof(float);
}

}  // namespace aam::graph
