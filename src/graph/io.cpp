#include "graph/io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "util/check.hpp"

namespace aam::graph {

Graph load_edge_list(const std::string& path, const LoadOptions& options) {
  std::ifstream in(path);
  AAM_CHECK_MSG(in.good(), "cannot open edge list file");
  EdgeList edges;
  std::unordered_map<std::uint64_t, Vertex> remap;
  Vertex next_id = 0;
  std::uint64_t max_id = 0;

  auto intern = [&](std::uint64_t raw) -> Vertex {
    if (options.zero_based) {
      max_id = std::max(max_id, raw);
      return static_cast<Vertex>(raw);
    }
    const auto [it, inserted] = remap.try_emplace(raw, next_id);
    if (inserted) ++next_id;
    return it->second;
  };

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::uint64_t u = 0, v = 0;
    if (!(ls >> u >> v)) continue;
    edges.emplace_back(intern(u), intern(v));
  }
  const Vertex n = options.zero_based ? static_cast<Vertex>(max_id + 1)
                                      : next_id;
  return Graph::from_edges(n, edges, options.undirected);
}

void save_edge_list(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  AAM_CHECK_MSG(out.good(), "cannot open edge list output file");
  out << "# vertices " << g.num_vertices() << " directed-edges "
      << g.num_edges() << "\n";
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    for (Vertex v : g.neighbors(u)) out << u << ' ' << v << '\n';
  }
}

}  // namespace aam::graph
