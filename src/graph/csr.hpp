#pragma once

// Compressed-sparse-row graph (§3.1: G = (V, E)).
//
// The adjacency structure is immutable after construction and read-only
// during algorithm execution, matching the paper's workloads (BFS, PR,
// MST, coloring all mutate per-vertex *state*, not the topology — Boruvka
// operates on a separate mutable supervertex structure). Vertex state
// arrays live on the SimHeap; the topology lives in ordinary host memory.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace aam::graph {

using Vertex = std::uint32_t;
inline constexpr Vertex kInvalidVertex = static_cast<Vertex>(-1);

using EdgeList = std::vector<std::pair<Vertex, Vertex>>;

class Graph {
 public:
  Graph() = default;

  /// Builds a CSR graph over `n` vertices from an edge list.
  /// When `undirected`, each input edge is inserted in both directions.
  /// Self-loops are dropped; duplicate edges are removed when `dedupe`.
  static Graph from_edges(Vertex n, const EdgeList& edges, bool undirected,
                          bool dedupe = true);

  /// Same, attaching a weight per input edge (mirrored for undirected
  /// graphs). `weights.size()` must equal `edges.size()`.
  static Graph from_weighted_edges(Vertex n, const EdgeList& edges,
                                   const std::vector<float>& weights,
                                   bool undirected);

  Vertex num_vertices() const { return n_; }
  std::uint64_t num_edges() const { return adj_.size(); }  ///< directed count
  double avg_degree() const {
    return n_ == 0 ? 0.0
                   : static_cast<double>(adj_.size()) / static_cast<double>(n_);
  }

  std::uint32_t degree(Vertex v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  std::span<const Vertex> neighbors(Vertex v) const {
    return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
  }

  bool has_weights() const { return !weights_.empty(); }
  std::span<const float> weights(Vertex v) const {
    return {weights_.data() + offsets_[v], weights_.data() + offsets_[v + 1]};
  }

  /// Flat views (for whole-graph scans).
  std::span<const std::uint64_t> offsets() const { return offsets_; }
  std::span<const Vertex> adjacency() const { return adj_; }

  /// Approximate memory footprint in bytes (topology only).
  std::size_t memory_bytes() const;

 private:
  Vertex n_ = 0;
  std::vector<std::uint64_t> offsets_;  // size n_+1
  std::vector<Vertex> adj_;
  std::vector<float> weights_;  // empty or parallel to adj_
};

}  // namespace aam::graph
