#pragma once

// Edge-list text I/O in the SNAP format: one "u v" pair per line, lines
// starting with '#' are comments. This is the drop-in path for running the
// Table 1 experiments on the actual SNAP datasets when they are available
// (the default harness uses the synthetic analogs from analogs.hpp).

#include <string>

#include "graph/csr.hpp"

namespace aam::graph {

struct LoadOptions {
  bool undirected = true;  ///< mirror every edge (SNAP lists one direction)
  bool zero_based = false; ///< ids are already 0-based (else compacted)
};

/// Reads an edge list; vertex ids are compacted to a dense [0, n) range
/// unless `zero_based` and the max id defines n. Aborts on parse errors.
Graph load_edge_list(const std::string& path, const LoadOptions& options = {});

/// Writes "u v" per line plus a header comment.
void save_edge_list(const Graph& g, const std::string& path);

}  // namespace aam::graph
