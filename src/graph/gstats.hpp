#pragma once

// Structural graph statistics used to characterize workloads: degree
// distribution summary, reachability, and an approximate diameter (the
// paper leans on diameter to explain the HAMA/BSP results, §6.1.2).

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace aam::graph {

struct DegreeStats {
  std::uint32_t min = 0;
  std::uint32_t max = 0;
  double mean = 0;
  double p50 = 0;
  double p99 = 0;
  /// Fraction of directed edges incident to the top 1% of vertices —
  /// a skew indicator (power-law graphs score high).
  double top1pct_edge_share = 0;
};

DegreeStats degree_stats(const Graph& g);

/// BFS levels from `source` (host-side, sequential; for analysis only).
/// Unreachable vertices get kInvalidLevel.
inline constexpr std::uint32_t kInvalidLevel = static_cast<std::uint32_t>(-1);
std::vector<std::uint32_t> bfs_levels(const Graph& g, Vertex source);

/// Number of vertices reachable from `source` (including itself).
std::uint64_t reachable_count(const Graph& g, Vertex source);

/// Lower-bound diameter estimate by the double-sweep heuristic starting
/// from `source`.
std::uint32_t diameter_lower_bound(const Graph& g, Vertex source);

/// Picks a vertex of non-zero degree deterministically (for BFS roots).
Vertex pick_nonisolated_vertex(const Graph& g, std::uint64_t salt = 0);

}  // namespace aam::graph
