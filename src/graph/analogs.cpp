#include "graph/analogs.hpp"

#include <algorithm>
#include <cmath>

#include "graph/generators.hpp"
#include "util/check.hpp"

namespace aam::graph {

const char* to_string(AnalogFamily family) {
  switch (family) {
    case AnalogFamily::kCommunication: return "CN";
    case AnalogFamily::kSocial: return "SN";
    case AnalogFamily::kPurchase: return "PN";
    case AnalogFamily::kRoad: return "RN";
    case AnalogFamily::kCitation: return "CG";
    case AnalogFamily::kWeb: return "WG";
  }
  return "?";
}

const std::vector<RealGraphAnalog>& table1_catalog() {
  using F = AnalogFamily;
  // Columns: id, name, family, |V|, |E|,
  //          BGQ{S@M24, optM, S@opt}, Has{S_g500@M2, S_galois@M2, optM,
  //          S_g500@opt, S_galois@opt, S_hama}. 1e4 encodes ">10^4".
  static const std::vector<RealGraphAnalog> catalog = {
      {"cWT", "wiki-Talk", F::kCommunication, 2'400'000, 5'000'000,
       2.82, 48, 3.35, 0.91, 1.22, 6, 0.96, 1.28, 344},
      {"cEU", "email-EuAll", F::kCommunication, 265'000, 420'000,
       3.67, 32, 4.36, 0.76, 0.88, 4, 0.97, 1.12, 1448},
      {"sLV", "soc-LiveJournal", F::kSocial, 4'800'000, 69'000'000,
       1.44, 12, 1.56, 1.05, 1.10, 3, 1.07, 1.12, 1e4},
      {"sOR", "com-orkut", F::kSocial, 3'000'000, 117'000'000,
       1.22, 20, 1.27, 1.06, 0.69, 4, 1.13, 0.74, 1e4},
      {"sLJ", "com-lj", F::kSocial, 4'000'000, 34'000'000,
       1.44, 12, 1.54, 1.03, 1.03, 4, 1.04, 1.04, 603},
      {"sYT", "com-youtube", F::kSocial, 1'100'000, 2'900'000,
       1.67, 8, 1.84, 0.96, 1.10, 5, 0.98, 1.11, 670},
      {"sDB", "com-dblp", F::kSocial, 317'000, 1'000'000,
       1.33, 8, 1.80, 1.00, 2.50, 2, 1.00, 2.53, 2160},
      {"sAM", "com-amazon", F::kSocial, 334'000, 925'000,
       1.14, 8, 1.62, 1.04, 1.64, 2, 1.04, 1.64, 1426},
      {"pAM", "amazon0601", F::kPurchase, 403'000, 3'300'000,
       1.45, 8, 1.91, 1.00, 1.25, 3, 1.03, 1.30, 618},
      {"rCA", "roadNet-CA", F::kRoad, 1'900'000, 5'500'000,
       1.00, 2, 1.59, 1.33, 1.74, 8, 1.38, 1.80, 1e4},
      {"rTX", "roadNet-TX", F::kRoad, 1'300'000, 3'800'000,
       1.00, 2, 1.53, 1.29, 1.89, 6, 1.42, 2.08, 1e4},
      {"rPA", "roadNet-PA", F::kRoad, 1'000'000, 3'000'000,
       1.00, 2, 1.52, 1.00, 2.00, 9, 1.07, 2.16, 1e4},
      {"ciP", "cit-Patents", F::kCitation, 3'700'000, 16'500'000,
       1.16, 8, 1.57, 1.01, 1.26, 2, 1.01, 1.26, 1875},
      {"wGL", "web-Google", F::kWeb, 875'000, 5'100'000,
       1.78, 12, 2.08, 0.98, 1.26, 6, 1.06, 1.35, 365},
      {"wBS", "web-BerkStan", F::kWeb, 685'000, 7'600'000,
       1.91, 24, 1.91, 0.93, 1.31, 5, 1.07, 1.40, 755},
      {"wSF", "web-Stanford", F::kWeb, 281'000, 2'300'000,
       1.89, 24, 1.89, 0.98, 1.54, 5, 1.07, 1.58, 1077},
  };
  return catalog;
}

const RealGraphAnalog& analog_by_id(const std::string& id) {
  for (const auto& a : table1_catalog()) {
    if (a.id == id) return a;
  }
  AAM_CHECK_MSG(false, "unknown Table 1 graph id");
}

Graph synthesize(const RealGraphAnalog& analog, std::uint64_t scale_divisor,
                 util::Rng& rng) {
  AAM_CHECK(scale_divisor >= 1);
  const auto n64 = std::max<std::uint64_t>(1024, analog.vertices / scale_divisor);
  const auto n = static_cast<Vertex>(n64);
  const double avg_deg =
      static_cast<double>(analog.edges) / static_cast<double>(analog.vertices);

  switch (analog.family) {
    case AnalogFamily::kCommunication: {
      // Extreme hubs, very sparse periphery: preferential attachment with
      // m=1 core plus a hub-biased overlay reproduces the skew that makes
      // coarse transactions shine on CNs.
      const int m = std::max(1, static_cast<int>(std::llround(avg_deg / 2.0)));
      return preferential_attachment(n, m, rng);
    }
    case AnalogFamily::kSocial:
    case AnalogFamily::kPurchase:
    case AnalogFamily::kCitation: {
      const int m = std::max(1, static_cast<int>(std::llround(avg_deg / 2.0)));
      return preferential_attachment(n, m, rng);
    }
    case AnalogFamily::kRoad: {
      const auto side = static_cast<Vertex>(std::sqrt(static_cast<double>(n)));
      return road_lattice(std::max<Vertex>(2, side), std::max<Vertex>(2, side),
                          /*shortcut_prob=*/0.0005, rng);
    }
    case AnalogFamily::kWeb: {
      // Web graphs: power-law with strong locality; Kronecker captures the
      // skew, no permutation keeps generation locality (link clustering).
      KroneckerParams p;
      p.scale = std::max(10, static_cast<int>(std::ceil(std::log2(n64))));
      p.edge_factor = std::max(1, static_cast<int>(std::llround(avg_deg / 2.0)));
      p.permute = false;
      return kronecker(p, rng);
    }
  }
  AAM_CHECK_MSG(false, "unhandled analog family");
}

}  // namespace aam::graph
