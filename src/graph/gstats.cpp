#include "graph/gstats.hpp"

#include <algorithm>
#include <deque>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace aam::graph {

DegreeStats degree_stats(const Graph& g) {
  DegreeStats s;
  const Vertex n = g.num_vertices();
  if (n == 0) return s;
  std::vector<std::uint32_t> degrees(n);
  std::uint64_t sum = 0;
  for (Vertex v = 0; v < n; ++v) {
    degrees[v] = g.degree(v);
    sum += degrees[v];
  }
  std::sort(degrees.begin(), degrees.end());
  s.min = degrees.front();
  s.max = degrees.back();
  s.mean = static_cast<double>(sum) / static_cast<double>(n);
  s.p50 = degrees[n / 2];
  s.p99 = degrees[static_cast<std::size_t>(0.99 * (n - 1))];
  const std::size_t top = std::max<std::size_t>(1, n / 100);
  std::uint64_t top_sum = 0;
  for (std::size_t i = n - top; i < n; ++i) top_sum += degrees[i];
  s.top1pct_edge_share =
      sum == 0 ? 0.0 : static_cast<double>(top_sum) / static_cast<double>(sum);
  return s;
}

std::vector<std::uint32_t> bfs_levels(const Graph& g, Vertex source) {
  AAM_CHECK(source < g.num_vertices());
  std::vector<std::uint32_t> level(g.num_vertices(), kInvalidLevel);
  std::deque<Vertex> queue;
  level[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const Vertex u = queue.front();
    queue.pop_front();
    for (Vertex w : g.neighbors(u)) {
      if (level[w] == kInvalidLevel) {
        level[w] = level[u] + 1;
        queue.push_back(w);
      }
    }
  }
  return level;
}

std::uint64_t reachable_count(const Graph& g, Vertex source) {
  std::uint64_t count = 0;
  for (std::uint32_t l : bfs_levels(g, source)) {
    if (l != kInvalidLevel) ++count;
  }
  return count;
}

std::uint32_t diameter_lower_bound(const Graph& g, Vertex source) {
  auto levels = bfs_levels(g, source);
  Vertex farthest = source;
  std::uint32_t depth = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (levels[v] != kInvalidLevel && levels[v] > depth) {
      depth = levels[v];
      farthest = v;
    }
  }
  levels = bfs_levels(g, farthest);
  std::uint32_t diameter = 0;
  for (std::uint32_t l : levels) {
    if (l != kInvalidLevel) diameter = std::max(diameter, l);
  }
  return diameter;
}

Vertex pick_nonisolated_vertex(const Graph& g, std::uint64_t salt) {
  AAM_CHECK(g.num_vertices() > 0);
  util::Rng rng(0xb10f5eedULL ^ salt);
  for (int tries = 0; tries < 1024; ++tries) {
    const auto v = static_cast<Vertex>(rng.next_below(g.num_vertices()));
    if (g.degree(v) > 0) return v;
  }
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) > 0) return v;
  }
  AAM_CHECK_MSG(false, "graph has no edges");
}

}  // namespace aam::graph
