#pragma once

// Synthetic graph generators.
//
// The paper evaluates on Kronecker graphs with power-law degree
// distributions (§5.5, §6.1, Graph500 parameters) and Erdős–Rényi graphs
// (§6.2). The additional families (preferential attachment, road lattice,
// small world) are the structural analogs used to stand in for the SNAP
// real-world graphs of Table 1 — see analogs.hpp.

#include <cstdint>

#include "graph/csr.hpp"
#include "util/rng.hpp"

namespace aam::graph {

struct KroneckerParams {
  int scale = 16;       ///< |V| = 2^scale
  int edge_factor = 16; ///< |E| = edge_factor * |V| (before dedup)
  // Graph500 initiator matrix.
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  bool permute = true;  ///< relabel vertices to break generation locality
  bool undirected = true;
};

/// Graph500-style Kronecker (R-MAT) generator: power-law-ish degrees.
Graph kronecker(const KroneckerParams& params, util::Rng& rng);
/// Same but returning the raw edge list (for distributed construction).
EdgeList kronecker_edges(const KroneckerParams& params, util::Rng& rng);

/// Erdős–Rényi G(n, p) via geometric skipping (expected O(n + |E|)).
/// Undirected; binomial degree distribution (§6.2).
Graph erdos_renyi(Vertex n, double p, util::Rng& rng);
EdgeList erdos_renyi_edges(Vertex n, double p, util::Rng& rng);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `m` existing vertices weighted by degree. Heavy-tailed degrees; the
/// analog family for web/citation graphs.
Graph preferential_attachment(Vertex n, int m, util::Rng& rng);

/// W x H grid with 4-neighborhoods plus a small fraction of rewired
/// shortcut edges. Low constant degree, very high diameter — the road
/// network analog (Table 1 RNs).
Graph road_lattice(Vertex width, Vertex height, double shortcut_prob,
                   util::Rng& rng);

/// Watts–Strogatz small world: ring lattice with k neighbors per side,
/// each edge rewired with probability beta.
Graph small_world(Vertex n, int k, double beta, util::Rng& rng);

/// Uniform random weights in [lo, hi) for every input edge; used to build
/// weighted graphs for Boruvka MST.
std::vector<float> random_weights(std::size_t count, float lo, float hi,
                                  util::Rng& rng);

}  // namespace aam::graph
