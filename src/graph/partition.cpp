// Block1D is header-only; this translation unit exists so the module has a
// stable archive member and a place for future partitioners (2D, hashed).
#include "graph/partition.hpp"
