#include "mem/sim_heap.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace aam::mem {

SimHeap::SimHeap(std::size_t bytes) {
  capacity_ = (bytes + kLineBytes - 1) / kLineBytes * kLineBytes;
  // Over-allocate one line so the base can be aligned to a line boundary.
  storage_ = std::make_unique<std::byte[]>(capacity_ + kLineBytes);
  const auto addr = reinterpret_cast<std::uintptr_t>(storage_.get());
  const std::uintptr_t aligned = (addr + kLineBytes - 1) & ~(kLineBytes - 1);
  base_ = reinterpret_cast<std::byte*>(aligned);
}

std::byte* SimHeap::raw_alloc(std::size_t bytes, std::size_t align,
                              std::string_view label) {
  const std::size_t aligned_used = (used_ + align - 1) & ~(align - 1);
  AAM_CHECK_MSG(aligned_used + bytes <= capacity_,
                "SimHeap out of capacity; size it for the workload");
  std::byte* p = base_ + aligned_used;
  used_ = aligned_used + bytes;
  allocs_.push_back(AllocRecord{static_cast<std::uint64_t>(aligned_used),
                                static_cast<std::uint64_t>(bytes),
                                std::string(label)});
  return p;
}

const SimHeap::AllocRecord* SimHeap::find_alloc(std::uint64_t offset) const {
  // Allocations are recorded in address order; find the last one starting
  // at or before `offset` and check it covers the offset.
  const auto it = std::upper_bound(
      allocs_.begin(), allocs_.end(), offset,
      [](std::uint64_t off, const AllocRecord& a) { return off < a.offset; });
  if (it == allocs_.begin()) return nullptr;
  const AllocRecord& a = *(it - 1);
  if (offset >= a.offset + a.bytes) return nullptr;  // alignment gap
  return &a;
}

std::string SimHeap::describe(std::uint64_t offset) const {
  const AllocRecord* a = find_alloc(offset);
  if (a == nullptr) return "?";
  std::string name = a->label;
  if (name.empty()) {
    name = "alloc#" + std::to_string(a - allocs_.data());
  }
  char delta[32];
  std::snprintf(delta, sizeof(delta), "+0x%llx",
                static_cast<unsigned long long>(offset - a->offset));
  return name + delta;
}

}  // namespace aam::mem
