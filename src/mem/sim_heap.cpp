#include "mem/sim_heap.hpp"

#include <cstring>

namespace aam::mem {

SimHeap::SimHeap(std::size_t bytes) {
  capacity_ = (bytes + kLineBytes - 1) / kLineBytes * kLineBytes;
  // Over-allocate one line so the base can be aligned to a line boundary.
  storage_ = std::make_unique<std::byte[]>(capacity_ + kLineBytes);
  const auto addr = reinterpret_cast<std::uintptr_t>(storage_.get());
  const std::uintptr_t aligned = (addr + kLineBytes - 1) & ~(kLineBytes - 1);
  base_ = reinterpret_cast<std::byte*>(aligned);
}

std::byte* SimHeap::raw_alloc(std::size_t bytes, std::size_t align) {
  const std::size_t aligned_used = (used_ + align - 1) & ~(align - 1);
  AAM_CHECK_MSG(aligned_used + bytes <= capacity_,
                "SimHeap out of capacity; size it for the workload");
  std::byte* p = base_ + aligned_used;
  used_ = aligned_used + bytes;
  return p;
}

}  // namespace aam::mem
