#pragma once

// Simulated shared memory.
//
// All data manipulated inside the discrete-event simulation must live on a
// SimHeap so that the engine can map any address to a cache line ("stripe")
// index in O(1) and attach per-line metadata: the commit timestamp of the
// last writer (for optimistic conflict detection) and the time until which
// the line is "owned" by an in-flight atomic (for the contention model).
//
// The heap is a bump allocator over one contiguous cache-line-aligned
// region; freeing is wholesale via reset(). That matches how the library
// uses it: a benchmark allocates graph + algorithm state once, runs, and
// throws the heap away.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "sim/time.hpp"
#include "util/check.hpp"

namespace aam::mem {

inline constexpr std::size_t kLineBytes = 64;

/// Dense index of a 64-byte line within a SimHeap.
using LineId = std::uint64_t;

class SimHeap {
 public:
  /// One bump allocation: label (may be empty) and the covered offsets.
  /// Checkers use the registry to turn a raw heap offset into "which array
  /// was corrupted"; see describe().
  struct AllocRecord {
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
    std::string label;
  };

  /// Creates a heap of `bytes` capacity (rounded up to a line multiple).
  explicit SimHeap(std::size_t bytes);

  SimHeap(const SimHeap&) = delete;
  SimHeap& operator=(const SimHeap&) = delete;

  /// Allocates `count` default-initialized objects of trivially-copyable
  /// type T, aligned to max(alignof(T), 8). Aborts when out of capacity —
  /// a simulation with silently relocated data would be meaningless.
  /// `label` names the allocation in checker/diagnostic output.
  template <typename T>
  std::span<T> alloc(std::size_t count, std::string_view label = {}) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "simulated memory holds trivially-copyable data only");
    const std::size_t align = alignof(T) < 8 ? 8 : alignof(T);
    std::byte* p = raw_alloc(count * sizeof(T), align, label);
    T* typed = reinterpret_cast<T*>(p);
    for (std::size_t i = 0; i < count; ++i) typed[i] = T{};
    return {typed, count};
  }

  /// Allocates one object, forwarding an initial value.
  template <typename T>
  T* alloc_one(const T& init = T{}, std::string_view label = {}) {
    auto s = alloc<T>(1, label);
    s[0] = init;
    return s.data();
  }

  /// Allocates one object alone on its own cache line (no false sharing);
  /// used for global synchronization words such as the elision lock.
  template <typename T>
  T* alloc_isolated(const T& init = T{}, std::string_view label = {}) {
    static_assert(sizeof(T) <= kLineBytes);
    std::byte* p = raw_alloc(kLineBytes, kLineBytes, label);
    T* typed = reinterpret_cast<T*>(p);
    *typed = init;
    return typed;
  }

  /// True if `p` points into this heap.
  bool contains(const void* p) const {
    const std::byte* b = static_cast<const std::byte*>(p);
    return b >= base_ && b < base_ + used_;
  }

  /// Maps an address to its line index. The address must be on-heap.
  LineId line_of(const void* p) const {
    AAM_DCHECK(contains(p));
    return static_cast<LineId>(
        (static_cast<const std::byte*>(p) - base_) / kLineBytes);
  }

  /// Byte offset of an on-heap address from the heap base.
  std::uint64_t offset_of(const void* p) const {
    AAM_DCHECK(contains(p));
    return static_cast<std::uint64_t>(static_cast<const std::byte*>(p) -
                                      base_);
  }

  /// Host address of an allocated heap offset (checker/tooling access).
  std::byte* addr_of(std::uint64_t offset) {
    AAM_DCHECK(offset < used_);
    return base_ + offset;
  }
  const std::byte* addr_of(std::uint64_t offset) const {
    AAM_DCHECK(offset < used_);
    return base_ + offset;
  }

  /// The allocation covering `offset`, or nullptr for a gap/out-of-range
  /// offset (alignment padding between allocations is not covered).
  const AllocRecord* find_alloc(std::uint64_t offset) const;

  /// Human-readable owner of `offset`: "label+0x<delta>" (or "alloc#<n>"
  /// when the allocation was not labelled); "?" for uncovered offsets.
  std::string describe(std::uint64_t offset) const;

  /// All allocations in address order.
  std::span<const AllocRecord> allocations() const { return allocs_; }

  std::size_t capacity_bytes() const { return capacity_; }
  std::size_t used_bytes() const { return used_; }
  std::size_t num_lines() const { return capacity_ / kLineBytes; }

  /// Releases all allocations (metadata in StripeTable is reset separately).
  void reset() {
    used_ = 0;
    allocs_.clear();
  }

  /// Checkpoint support: the durable contents are exactly the first
  /// used_bytes() of the region. The allocation registry is *not* part of
  /// the snapshot — recovery restores into the same process with the same
  /// allocation layout, so only the bytes change.
  std::span<const std::byte> raw_bytes() const { return {base_, used_}; }

  /// Overwrites the first `bytes.size()` heap bytes from a snapshot. The
  /// layout must match: restoring into a heap whose bump pointer moved
  /// since the checkpoint would scramble allocations, so that aborts.
  void restore_raw_bytes(std::span<const std::byte> bytes) {
    AAM_CHECK_MSG(bytes.size() == used_,
                  "heap snapshot size does not match current layout");
    std::copy(bytes.begin(), bytes.end(), base_);
  }

 private:
  std::byte* raw_alloc(std::size_t bytes, std::size_t align,
                       std::string_view label);

  std::unique_ptr<std::byte[]> storage_;
  std::byte* base_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
  std::vector<AllocRecord> allocs_;
};

/// Observes committed mutations of simulated memory. check::Checker (races
/// mode) registers one on a DesMachine: every write that becomes visible
/// through a modelled channel — plain ThreadCtx store, atomic CAS/ACC,
/// transactional commit write-back — is reported here, so the checker can
/// flag heap mutations that bypassed all of them (raw pointer writes that
/// no mechanism synchronizes or accounts for).
class WriteObserver {
 public:
  virtual ~WriteObserver() = default;

  /// A legitimate write of `len` bytes at heap offset `offset` became
  /// visible in committed memory.
  virtual void on_legitimate_write(std::uint64_t offset,
                                   std::uint32_t len) = 0;

  /// The machine is (re)entering its event loop. Host-side setup writes
  /// made since the previous run (initialisation, inter-phase fixups) are
  /// single-threaded and therefore sanctioned wholesale.
  virtual void on_run_start() = 0;
};

/// Per-line contention metadata for the whole heap (the atomics model).
/// Conflict *stamps* live in the engine at the HTM variant's detection
/// granularity; see DesMachine.
class StripeTable {
 public:
  inline static constexpr std::uint32_t kNoOwner =
      static_cast<std::uint32_t>(-1);

  explicit StripeTable(std::size_t num_lines)
      : avail_(num_lines, 0.0), owner_(num_lines, kNoOwner) {}

  /// Time until which the line is held by an in-flight atomic; the next
  /// atomic on the line from *another* thread starts no earlier than this
  /// (cache-line ping-pong).
  sim::Time available_at(LineId line) const { return avail_[line]; }
  void set_available_at(LineId line, sim::Time t) { avail_[line] = t; }

  /// Thread currently holding the line in its cache (atomics contention
  /// model); a thread re-accessing its own line pays no transfer.
  std::uint32_t owner(LineId line) const { return owner_[line]; }
  void set_owner(LineId line, std::uint32_t tid) { owner_[line] = tid; }

  std::size_t num_lines() const { return avail_.size(); }

  void reset() {
    std::fill(avail_.begin(), avail_.end(), 0.0);
    std::fill(owner_.begin(), owner_.end(), kNoOwner);
  }

  /// Checkpoint support: the per-line contention metadata, restored
  /// wholesale so post-restore atomics see the same transfer costs.
  const std::vector<sim::Time>& avail_lines() const { return avail_; }
  const std::vector<std::uint32_t>& owner_lines() const { return owner_; }
  void restore_lines(const std::vector<sim::Time>& avail,
                     const std::vector<std::uint32_t>& owner) {
    AAM_CHECK_MSG(avail.size() == avail_.size() && owner.size() == owner_.size(),
                  "stripe snapshot size does not match table");
    avail_ = avail;
    owner_ = owner;
  }

 private:
  std::vector<sim::Time> avail_;
  std::vector<std::uint32_t> owner_;
};

}  // namespace aam::mem
