#pragma once

// Transaction-local footprint data structures.
//
// A speculative transaction needs three things, all rebuilt from scratch on
// every (re)execution, so they are designed for O(1) epoch-based clearing:
//
//  * WordMap   — the redo log: word-granularity speculative write buffer
//                (address -> 8-byte value), iterable for commit.
//  * EpochSet  — dedup of touched lines for read/write set construction.
//  * FootprintTracker — maps the distinct lines into the cache geometry of
//                the HTM variant and reports capacity overflows (the
//                "buffer overflow" abort class of §5).

#include <cstdint>
#include <vector>

#include "mem/sim_heap.hpp"
#include "model/machines.hpp"
#include "util/check.hpp"

namespace aam::mem {

/// Open-addressing u64 set with epoch-stamped slots: clear() is O(1).
class EpochSet {
 public:
  explicit EpochSet(std::size_t initial_capacity = 64);

  void clear();
  /// Inserts `key`; returns true when the key was not present.
  bool insert(std::uint64_t key);
  bool contains(std::uint64_t key) const;
  std::size_t size() const { return size_; }

 private:
  struct Slot {
    std::uint64_t key = 0;
    std::uint64_t epoch = 0;
  };
  void grow();
  std::size_t probe(std::uint64_t key) const;

  std::vector<Slot> slots_;
  std::uint64_t epoch_ = 1;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

/// Open-addressing address -> 64-bit-value map with epoch clearing and an
/// insertion-order key list for commit iteration.
class WordMap {
 public:
  explicit WordMap(std::size_t initial_capacity = 64);

  void clear();
  /// Looks up the buffered value for an 8-byte-aligned word address.
  bool lookup(std::uintptr_t addr, std::uint64_t& value) const;
  void insert_or_assign(std::uintptr_t addr, std::uint64_t value);
  std::size_t size() const { return keys_.size(); }

  /// Iterates entries in insertion order (commit write-back order).
  template <typename F>
  void for_each(F&& fn) const {
    for (std::uintptr_t key : keys_) {
      std::uint64_t value = 0;
      const bool found = lookup(key, value);
      AAM_DCHECK(found);
      (void)found;
      fn(key, value);
    }
  }

 private:
  struct Slot {
    std::uintptr_t key = 0;
    std::uint64_t value = 0;
    std::uint64_t epoch = 0;
  };
  void grow();

  std::vector<Slot> slots_;
  std::vector<std::uintptr_t> keys_;
  std::uint64_t epoch_ = 1;
  std::size_t mask_ = 0;
};

/// Tracks the distinct cache lines a transaction touches — for the
/// capacity model (per-set associativity / total budget) — and separately
/// the *conflict units* at the HTM variant's detection granularity (64B
/// lines on Haswell, 8B words on BG/Q), for commit validation.
class FootprintTracker {
 public:
  FootprintTracker() = default;

  /// Must be called before use and whenever the HTM variant changes.
  /// `conflict_shift` is log2 of the conflict-detection granularity.
  void configure(const model::CacheGeometry& write_geometry,
                 std::uint32_t read_capacity_lines,
                 std::uint32_t conflict_shift = 6);

  void reset();

  enum class Add : std::uint8_t { kOk, kOverflow, kDuplicate };

  /// Records a write at heap offset `offset`; kOverflow = capacity abort.
  Add add_write(std::uint64_t offset);
  /// Records a read (no associativity constraint, total budget only).
  Add add_read(std::uint64_t offset);

  /// Distinct conflict units written / read (validation + stamp bumping).
  const std::vector<std::uint64_t>& write_units() const {
    return write_units_;
  }
  const std::vector<std::uint64_t>& read_units() const { return read_units_; }
  /// Distinct cache lines (the capacity/eviction footprint).
  std::size_t distinct_write_lines() const { return write_lines_; }
  std::size_t distinct_read_lines() const { return read_lines_; }

 private:
  model::CacheGeometry write_geom_;
  std::uint32_t read_capacity_lines_ = 0;
  std::uint32_t conflict_shift_ = 6;

  EpochSet written_units_;
  EpochSet read_units_set_;
  EpochSet written_lines_;
  EpochSet read_lines_set_;
  std::vector<std::uint64_t> write_units_;
  std::vector<std::uint64_t> read_units_;
  std::size_t write_lines_ = 0;
  std::size_t read_lines_ = 0;

  // Epoch-stamped per-set occupancy for the write geometry.
  std::vector<std::uint32_t> set_count_;
  std::vector<std::uint64_t> set_epoch_;
  std::uint64_t epoch_ = 1;
};

}  // namespace aam::mem
