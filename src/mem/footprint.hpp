#pragma once

// Transaction-local footprint data structures.
//
// A speculative transaction needs three things, all rebuilt from scratch on
// every (re)execution, so they are designed for O(1) epoch-based clearing:
//
//  * WordMap   — the redo log: word-granularity speculative write buffer
//                (address -> 8-byte value), iterable for commit.
//  * EpochSet  — dedup of touched lines for read/write set construction.
//  * FootprintTracker — maps the distinct lines into the cache geometry of
//                the HTM variant and reports capacity overflows (the
//                "buffer overflow" abort class of §5).

// The accessor hot paths (EpochSet/WordMap probes, FootprintTracker adds)
// are defined inline here: they run several times per modelled memory
// access, and the cross-TU call overhead is measurable in end-to-end
// throughput. Growth/rehash cold paths stay in the .cpp.

#include <cstdint>
#include <vector>

#include "mem/sim_heap.hpp"
#include "model/machines.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace aam::mem {

/// Open-addressing u64 set with epoch-stamped slots: clear() is O(1).
class EpochSet {
 public:
  explicit EpochSet(std::size_t initial_capacity = 64);

  void clear() {
    ++epoch_;
    size_ = 0;
  }

  /// Inserts `key`; returns true when the key was not present.
  bool insert(std::uint64_t key) {
    if (size_ * 10 >= slots_.size() * 7) grow();
    const std::size_t i = probe(key);
    if (slots_[i].epoch == epoch_) return false;  // already present
    slots_[i] = Slot{key, epoch_};
    ++size_;
    return true;
  }

  /// Present iff the probe chain starting at the key's home slot reaches a
  /// current-epoch slot holding the key before an empty (stale-epoch) slot.
  /// probe() only terminates on key match or stale epoch, so checking the
  /// epoch of the landing slot is sufficient: a colliding resident cannot
  /// cause a false positive because probe() walks past it.
  bool contains(std::uint64_t key) const {
    return slots_[probe(key)].epoch == epoch_;
  }

  std::size_t size() const { return size_; }

 private:
  struct Slot {
    std::uint64_t key = 0;
    std::uint64_t epoch = 0;
  };
  void grow();
  std::size_t probe(std::uint64_t key) const {
    std::size_t i = util::mix64(key) & mask_;
    while (slots_[i].epoch == epoch_ && slots_[i].key != key) {
      i = (i + 1) & mask_;
    }
    return i;
  }

  std::vector<Slot> slots_;
  std::uint64_t epoch_ = 1;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

/// Open-addressing address -> 64-bit-value map with epoch clearing. Values
/// live in the insertion-order entry list itself, so commit iteration is a
/// linear scan with no hashing; the hash slots only map addresses to entry
/// indices for lookup/update.
class WordMap {
 public:
  explicit WordMap(std::size_t initial_capacity = 64);

  void clear() {
    ++epoch_;
    entries_.clear();
  }

  /// Looks up the buffered value for an 8-byte-aligned word address.
  bool lookup(std::uintptr_t addr, std::uint64_t& value) const {
    std::size_t i = util::mix64(addr) & mask_;
    while (slots_[i].epoch == epoch_) {
      const Entry& e = entries_[slots_[i].index];
      if (e.key == addr) {
        value = e.value;
        return true;
      }
      i = (i + 1) & mask_;
    }
    return false;
  }

  void insert_or_assign(std::uintptr_t addr, std::uint64_t value) {
    if (entries_.size() * 10 >= slots_.size() * 7) grow();
    std::size_t i = util::mix64(addr) & mask_;
    while (slots_[i].epoch == epoch_) {
      Entry& e = entries_[slots_[i].index];
      if (e.key == addr) {
        e.value = value;
        return;
      }
      i = (i + 1) & mask_;
    }
    slots_[i] = Slot{static_cast<std::uint32_t>(entries_.size()), epoch_};
    entries_.push_back(Entry{addr, value});
  }

  std::size_t size() const { return entries_.size(); }

  /// Iterates entries in insertion order (commit write-back order).
  /// No per-key re-probing: the value is stored next to its key.
  template <typename F>
  void for_each(F&& fn) const {
    for (const Entry& e : entries_) {
      fn(e.key, e.value);
    }
  }

 private:
  struct Entry {
    std::uintptr_t key = 0;
    std::uint64_t value = 0;
  };
  struct Slot {
    std::uint32_t index = 0;  ///< into entries_
    std::uint64_t epoch = 0;
  };
  void grow();

  std::vector<Slot> slots_;
  std::vector<Entry> entries_;
  std::uint64_t epoch_ = 1;
  std::size_t mask_ = 0;
};

/// Tracks the distinct cache lines a transaction touches — for the
/// capacity model (per-set associativity / total budget) — and separately
/// the *conflict units* at the HTM variant's detection granularity (64B
/// lines on Haswell, 8B words on BG/Q), for commit validation.
class FootprintTracker {
 public:
  FootprintTracker() = default;

  /// Must be called before use and whenever the HTM variant changes.
  /// `conflict_shift` is log2 of the conflict-detection granularity.
  void configure(const model::CacheGeometry& write_geometry,
                 std::uint32_t read_capacity_lines,
                 std::uint32_t conflict_shift = 6);

  void reset();

  enum class Add : std::uint8_t { kOk, kOverflow, kDuplicate };

  /// Records a write at heap offset `offset`; kOverflow = capacity abort.
  Add add_write(std::uint64_t offset) {
    AAM_DCHECK(!set_count_.empty());  // configure() was called
    const std::uint64_t unit = offset >> conflict_shift_;
    const LineId line = offset / kLineBytes;
    if (last_write_valid_ && unit == last_write_unit_ &&
        line == last_write_line_) {
      return Add::kDuplicate;
    }
    // Every return of the slow path leaves `unit` in written_units_ and
    // `line` in written_lines_, which is exactly what a memo hit asserts.
    last_write_unit_ = unit;
    last_write_line_ = line;
    last_write_valid_ = true;
    return add_write_slow(unit, line);
  }

  /// Records a read (no associativity constraint, total budget only).
  Add add_read(std::uint64_t offset) {
    const std::uint64_t unit = offset >> conflict_shift_;
    const LineId line = offset / kLineBytes;
    if (last_read_valid_ && unit == last_read_unit_ &&
        line == last_read_line_) {
      return Add::kDuplicate;
    }
    // Every return of the slow path leaves `unit` recorded (written or
    // read side) and `line` present in written_lines_ or read_lines_set_ —
    // a repeat call would return kDuplicate with no state change.
    last_read_unit_ = unit;
    last_read_line_ = line;
    last_read_valid_ = true;
    return add_read_slow(unit, line);
  }

  /// Distinct conflict units written / read (validation + stamp bumping).
  const std::vector<std::uint64_t>& write_units() const {
    return write_units_;
  }
  const std::vector<std::uint64_t>& read_units() const { return read_units_; }
  /// Distinct cache lines (the capacity/eviction footprint).
  std::size_t distinct_write_lines() const { return write_lines_; }
  std::size_t distinct_read_lines() const { return read_lines_; }

 private:
  Add add_write_slow(std::uint64_t unit, LineId line);
  Add add_read_slow(std::uint64_t unit, LineId line);

  model::CacheGeometry write_geom_;
  std::uint32_t read_capacity_lines_ = 0;
  std::uint32_t conflict_shift_ = 6;

  EpochSet written_units_;
  EpochSet read_units_set_;
  EpochSet written_lines_;
  EpochSet read_lines_set_;
  std::vector<std::uint64_t> write_units_;
  std::vector<std::uint64_t> read_units_;
  std::size_t write_lines_ = 0;
  std::size_t read_lines_ = 0;

  // Epoch-stamped per-set occupancy for the write geometry.
  std::vector<std::uint32_t> set_count_;
  std::vector<std::uint64_t> set_epoch_;
  std::uint64_t epoch_ = 1;

  // Hot-path memo: the (conflict unit, line) of the previous add_write /
  // add_read. Operator loops touch the same word or line repeatedly
  // (parent[w] re-reads, accumulator read-modify-write), and a repeat of
  // the immediately preceding access is by construction already present in
  // every set, so it can answer kDuplicate without hashing. Invalidated by
  // reset()/configure() only — an interleaved access to another address
  // never falsifies what a memo asserts about its own (unit, line).
  std::uint64_t last_write_unit_ = 0;
  std::uint64_t last_write_line_ = 0;
  bool last_write_valid_ = false;
  std::uint64_t last_read_unit_ = 0;
  std::uint64_t last_read_line_ = 0;
  bool last_read_valid_ = false;
};

}  // namespace aam::mem
