#include "mem/footprint.hpp"

#include "util/rng.hpp"

namespace aam::mem {

namespace {
std::size_t round_up_pow2(std::size_t x) {
  std::size_t p = 16;
  while (p < x) p <<= 1;
  return p;
}
}  // namespace

// ---------------------------------------------------------------- EpochSet

EpochSet::EpochSet(std::size_t initial_capacity)
    : slots_(round_up_pow2(initial_capacity * 2)),
      mask_(slots_.size() - 1) {}

void EpochSet::grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  mask_ = slots_.size() - 1;
  const std::uint64_t old_epoch = epoch_;
  ++epoch_;
  size_ = 0;
  for (const Slot& s : old) {
    if (s.epoch == old_epoch) insert(s.key);
  }
}

// ----------------------------------------------------------------- WordMap

WordMap::WordMap(std::size_t initial_capacity)
    : slots_(round_up_pow2(initial_capacity * 2)),
      mask_(slots_.size() - 1) {}

void WordMap::grow() {
  // Entries (keys and values) are authoritative; only the index slots need
  // rebuilding, preserving insertion order untouched.
  slots_.assign(slots_.size() * 2, Slot{});
  mask_ = slots_.size() - 1;
  ++epoch_;
  for (std::uint32_t idx = 0; idx < entries_.size(); ++idx) {
    std::size_t i = util::mix64(entries_[idx].key) & mask_;
    while (slots_[i].epoch == epoch_) i = (i + 1) & mask_;
    slots_[i] = Slot{idx, epoch_};
  }
}

// ------------------------------------------------------- FootprintTracker

void FootprintTracker::configure(const model::CacheGeometry& write_geometry,
                                 std::uint32_t read_capacity_lines,
                                 std::uint32_t conflict_shift) {
  write_geom_ = write_geometry;
  read_capacity_lines_ = read_capacity_lines;
  conflict_shift_ = conflict_shift;
  set_count_.assign(write_geom_.sets, 0);
  set_epoch_.assign(write_geom_.sets, 0);
  epoch_ = 1;
  reset();
}

void FootprintTracker::reset() {
  written_units_.clear();
  read_units_set_.clear();
  written_lines_.clear();
  read_lines_set_.clear();
  write_units_.clear();
  read_units_.clear();
  write_lines_ = 0;
  read_lines_ = 0;
  last_write_valid_ = false;
  last_read_valid_ = false;
  ++epoch_;
}

FootprintTracker::Add FootprintTracker::add_write_slow(std::uint64_t unit,
                                                       LineId line) {
  if (written_units_.insert(unit)) write_units_.push_back(unit);

  if (!written_lines_.insert(line)) return Add::kDuplicate;
  ++write_lines_;
  if (write_lines_ > write_geom_.capacity_lines()) {
    return Add::kOverflow;
  }
  // Physical set index: lines are heap-offset indices, so modulo models a
  // physically-indexed cache.
  const std::size_t set = line % write_geom_.sets;
  if (set_epoch_[set] != epoch_) {
    set_epoch_[set] = epoch_;
    set_count_[set] = 0;
  }
  if (++set_count_[set] > write_geom_.ways) {
    return Add::kOverflow;  // associativity eviction of speculative state
  }
  return Add::kOk;
}

FootprintTracker::Add FootprintTracker::add_read_slow(std::uint64_t unit,
                                                      LineId line) {
  if (!written_units_.contains(unit) && read_units_set_.insert(unit)) {
    read_units_.push_back(unit);
  }
  if (written_lines_.contains(line)) return Add::kDuplicate;
  if (!read_lines_set_.insert(line)) return Add::kDuplicate;
  ++read_lines_;
  if (read_lines_ > read_capacity_lines_) return Add::kOverflow;
  return Add::kOk;
}

}  // namespace aam::mem
