#pragma once

// Machine-geometry capacity checker: intersects the static effect
// signatures with the model:: machine descriptions to predict, per
// operator × machine × HTM flavor, the largest coarsening factor whose
// transactions provably fit the speculative capacity — and therefore the
// smallest factor at which capacity aborts may begin.
//
// The bound is conservative in the element→line direction: every distinct
// element is charged one full cache line (elements of a coarsened batch
// are scattered across the simulated heap, so adjacency cannot be
// assumed). Associativity is reported separately as a worst-case caveat:
// with `ways`-way sets, `ways / write_elems` same-set-mapping transactions
// already overflow one set even when total capacity is far away.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/signature.hpp"
#include "model/machines.hpp"

namespace aam::analysis {

struct CapacityBound {
  std::string machine;           ///< model::MachineConfig::name
  model::HtmKind kind = model::HtmKind::kRtm;
  core::OperatorId op = core::OperatorId::kUnknown;
  std::size_t read_elems = 0;   ///< distinct elements read per invocation
  std::size_t write_elems = 0;  ///< distinct elements written per invocation
  std::uint64_t write_capacity_lines = 0;
  std::uint64_t read_capacity_lines = 0;
  std::uint32_t ways = 0;
  /// Largest coarsening factor c with c·write_elems ≤ write capacity and
  /// c·read_elems ≤ read capacity (one line per element).
  std::uint64_t max_safe_coarsening = 0;
  /// max_safe_coarsening + 1: the first factor at which capacity aborts
  /// are statically possible.
  std::uint64_t abort_threshold = 0;
  /// Associativity caveat: coarsening factor at which one cache set could
  /// overflow if every written element mapped to the same set.
  std::uint64_t assoc_worst_case = 0;
};

/// Bounds for every machine in model::machines() × its supported HTM
/// flavors × every signature, with element counts evaluated at
/// (degree, chain).
std::vector<CapacityBound> capacity_bounds(
    const std::vector<EffectSignature>& signatures, int degree, int chain);

}  // namespace aam::analysis
