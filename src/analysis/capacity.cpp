#include "analysis/capacity.hpp"

#include <algorithm>

namespace aam::analysis {

namespace {

CapacityBound bound_for(const model::MachineConfig& machine,
                        model::HtmKind kind, const EffectSignature& sig,
                        int degree, int chain) {
  const model::HtmCosts& costs = machine.htm(kind);
  CapacityBound b;
  b.machine = machine.name;
  b.kind = kind;
  b.op = sig.op;
  b.read_elems = sig.read_elems(degree, chain);
  b.write_elems = sig.write_elems(degree, chain);
  b.write_capacity_lines = costs.write_capacity.capacity_lines();
  b.read_capacity_lines = costs.read_capacity_lines;
  b.ways = costs.write_capacity.ways;

  // One line per element: c invocations fit while c·elems ≤ capacity on
  // both sides. A side with zero elements imposes no constraint.
  std::uint64_t safe = ~std::uint64_t{0};
  if (b.write_elems > 0) {
    safe = std::min(safe, b.write_capacity_lines / b.write_elems);
  }
  if (b.read_elems > 0) {
    safe = std::min(safe, b.read_capacity_lines / b.read_elems);
  }
  b.max_safe_coarsening = safe;
  b.abort_threshold = safe == ~std::uint64_t{0} ? safe : safe + 1;
  b.assoc_worst_case =
      b.ways / std::max<std::uint64_t>(std::uint64_t{1}, b.write_elems);
  return b;
}

}  // namespace

std::vector<CapacityBound> capacity_bounds(
    const std::vector<EffectSignature>& signatures, int degree, int chain) {
  std::vector<CapacityBound> bounds;
  const model::MachineConfig* machines[] = {&model::bgq(), &model::has_c(),
                                            &model::has_p()};
  for (const model::MachineConfig* machine : machines) {
    for (model::HtmKind kind : machine->supported_htm) {
      for (const EffectSignature& sig : signatures) {
        bounds.push_back(bound_for(*machine, kind, sig, degree, chain));
      }
    }
  }
  return bounds;
}

}  // namespace aam::analysis
