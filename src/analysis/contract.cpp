#include "analysis/contract.hpp"

#include <algorithm>
#include <array>

#include "analysis/signature.hpp"
#include "util/check.hpp"

namespace aam::analysis {

namespace {

bool contains(const std::vector<std::string>& labels, std::string_view label) {
  return std::find(labels.begin(), labels.end(), label) != labels.end();
}

void add_unique(std::vector<std::string>& labels, const std::string& label) {
  if (!contains(labels, label)) labels.push_back(label);
}

constexpr std::size_t kNumOps =
    static_cast<std::size_t>(core::OperatorId::kStVisit) + 1;

std::array<LabelContract, kNumOps> build_contracts() {
  std::array<LabelContract, kNumOps> contracts;  // kUnknown stays empty
  for (const EffectSignature& sig : analyze_all()) {
    LabelContract& c = contracts[static_cast<std::size_t>(sig.op)];
    for (const RegionSignature& region : sig.regions) {
      if (!region.read_total().zero()) add_unique(c.read_labels, region.label);
      if (!region.write_total().zero()) {
        add_unique(c.write_labels, region.label);
      }
    }
  }
  return contracts;
}

std::string join(const std::vector<std::string>& labels) {
  std::string out;
  for (const std::string& label : labels) {
    if (!out.empty()) out += ", ";
    out += label;
  }
  return out;
}

}  // namespace

bool LabelContract::may_read(std::string_view label) const {
  return contains(read_labels, label) || contains(write_labels, label);
}

bool LabelContract::may_write(std::string_view label) const {
  return contains(write_labels, label);
}

std::string LabelContract::read_labels_joined() const {
  std::vector<std::string> all = read_labels;
  for (const std::string& label : write_labels) add_unique(all, label);
  return join(all);
}

std::string LabelContract::write_labels_joined() const {
  return join(write_labels);
}

const LabelContract& label_contract(core::OperatorId op) {
  static const std::array<LabelContract, kNumOps> contracts =
      build_contracts();
  const auto index = static_cast<std::size_t>(op);
  AAM_CHECK(index < contracts.size());
  return contracts[index];
}

}  // namespace aam::analysis
