#pragma once

// Per-operator static effect signatures.
//
// analyze(op) abstractly interprets one operator body (abstract_access.hpp)
// at several small probe parameters, fits the per-region/per-class element
// counts to the linear form `base + per_degree·d + per_chain·Λ` (d = probe
// degree, Λ = widening bound), cross-checks the fit against a fourth probe,
// and returns the closed form. The closed form is what everything else
// consumes: the golden table, the capacity checker, and the dynamic
// footprint auditor's label contracts.

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/abstract_access.hpp"
#include "core/executor.hpp"

namespace aam::analysis {

/// Element count as a linear form in the probe degree d and the widening
/// bound Λ (chain). Exact for every operator in the suite — the fit
/// aborts if an operator's footprint is not affine in (d, Λ).
struct Linear {
  long long base = 0;
  long long per_degree = 0;
  long long per_chain = 0;

  std::size_t eval(int degree, int chain) const;
  bool zero() const { return base == 0 && per_degree == 0 && per_chain == 0; }
  bool operator==(const Linear&) const = default;
};

/// Renders e.g. "1", "d", "1+d", "2+c".
std::string to_string(const Linear& l);

/// One simulated-heap region the operator may touch, with closed-form
/// distinct-element counts split by index class.
struct RegionSignature {
  std::string name;   ///< display name (distinguishes same-label arrays)
  std::string label;  ///< SimHeap allocation label
  Linear reads[kNumIndexClasses];
  Linear writes[kNumIndexClasses];

  Linear read_total() const;
  Linear write_total() const;
};

struct EffectSignature {
  core::OperatorId op = core::OperatorId::kUnknown;
  std::vector<RegionSignature> regions;
  bool widened = false;   ///< some path exhausted the widening budget
  std::size_t paths = 0;  ///< paths explored at the base probe
  int probe_degree = 0;   ///< base probe parameters
  int probe_chain = 0;

  /// Total distinct elements read/written per invocation at (degree, chain),
  /// summed over regions and classes.
  std::size_t read_elems(int degree, int chain) const;
  std::size_t write_elems(int degree, int chain) const;
};

/// Analyzes one operator. Aborts (AAM_CHECK) on non-affine footprints or
/// fit/verify mismatches — a failure here means an operator body changed
/// in a way the abstract domain does not cover, which is exactly what the
/// golden diff in CI is meant to surface.
EffectSignature analyze(core::OperatorId op);

/// Signatures for every operator id, in core::all_operator_ids() order.
std::vector<EffectSignature> analyze_all();

}  // namespace aam::analysis
