#pragma once

// Mechanism recommendation table: the intersection of the contention model
// (conflict.hpp) and the capacity bounds (capacity.hpp), scored per
// (operator, machine, HTM kind, scale, threads, batch).
//
// Each mechanism gets a predicted per-operator cost in simulated
// nanoseconds, built from the machine's calibrated constants:
//
//   serial-lock  R·load + W·store + cas/M — the batch runs under one global
//                lock, so reads/writes never parallelize; the lock CAS
//                amortizes over the batch.
//   atomics      loads parallelize (R·load/T); each guarded write pays the
//                machine-wide atomic-unit gap plus a CAS/ACC that fully
//                serializes with probability p_c (the per-class write
//                contention) and parallelizes otherwise.
//   fine-locks   like atomics with the striped-lock acquire/release pair
//                (CAS + 2 stores) as the per-write critical section.
//   stm          TL2 first-order model: bookkeeping-multiplied loads, the
//                commit-time orec CAS + write-back + release per write,
//                and the global version clock shared per batch.
//   htm          expected attempts from the conflict abort probability
//                (capped at max_retries), charging begin/commit and the
//                abort rollback amortized over M, plus the hybrid fallback
//                penalty: with probability p_abort^max_retries the
//                activity serializes on the fallback lock and its work no
//                longer parallelizes — the descent cost hybrid-TM theory
//                says cannot be avoided (Alistarh et al., "Inherent
//                Limitations of Hybrid TM"; Brown & Ravi, "On the Cost of
//                Concurrency in Hybrid TM"). A batch statically exceeding
//                the capacity bound c_safe is marked capacity-unsafe and
//                priced at the all-aborts worst case.
//
// The scores are intentionally coarse — calibrated against instrumented
// sweep runs to rank mechanisms, not to predict absolute times (see
// DESIGN.md §9 for the validation data and the soundness caveats). The
// table feeds three consumers: aam_analyze --recommend (human/CI view),
// tests/golden/recommendations.txt (drift gate), and make_auto_policy()
// (the --mechanism=auto executor's routing table).

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/capacity.hpp"
#include "analysis/conflict.hpp"
#include "analysis/signature.hpp"
#include "core/auto_executor.hpp"
#include "model/machines.hpp"

namespace aam::analysis {

struct MechanismCost {
  core::Mechanism mechanism = core::Mechanism::kSerialLock;
  double cost_ns = 0;           ///< predicted per-operator cost
  bool capacity_unsafe = false; ///< htm only: batch exceeds c_safe
};

/// One (operator, machine, kind) cell of the table.
struct Recommendation {
  std::string machine;  ///< model::MachineConfig::name
  model::HtmKind kind = model::HtmKind::kRtm;
  int threads = 0;      ///< resolved thread count the scores assume
  core::OperatorId op = core::OperatorId::kUnknown;
  ContentionSignature contention;
  double predicted_aborts = 0;  ///< expected HTM aborts per activity
  double abort_band = 0;        ///< tolerated observed aborts per activity
  std::uint64_t htm_c_safe = 0; ///< capacity bound at this batch (0 = none)
  std::vector<MechanismCost> ranked;  ///< ascending predicted cost

  core::Mechanism best() const { return ranked.front().mechanism; }
  double cost_of(core::Mechanism mechanism) const;
};

/// Scores every mechanism for every signature on one machine/kind.
/// `bounds` must come from capacity_bounds() at the workload's degree and
/// chain. workload.threads <= 0 resolves to machine.max_threads().
std::vector<Recommendation> recommend_for(
    const model::MachineConfig& machine, model::HtmKind kind,
    const std::vector<EffectSignature>& signatures,
    const std::vector<CapacityBound>& bounds, const Workload& workload);

/// The full table: every machine in the model suite x its supported HTM
/// kinds x every signature (same iteration order as capacity_bounds).
std::vector<Recommendation> recommend(
    const std::vector<EffectSignature>& signatures,
    const std::vector<CapacityBound>& bounds, const Workload& workload);

/// Fills the core-side routing table for one machine/kind: per-operator
/// recommended mechanism, predicted abort band, and capacity clamp, with
/// kUnknown left at its robust non-speculative default. Runs the full
/// static pipeline (analyze_all + capacity_bounds + recommend_for).
core::AutoPolicy make_auto_policy(const model::MachineConfig& machine,
                                  model::HtmKind kind,
                                  const Workload& workload);

/// Renderers, mirroring report.hpp's table/json/golden trio.
std::string render_recommend_table(const std::vector<Recommendation>& recs,
                                   const Workload& workload);
std::string render_recommend_json(const std::vector<Recommendation>& recs,
                                  const Workload& workload);
std::string render_recommend_golden(const std::vector<Recommendation>& recs,
                                    const Workload& workload);

}  // namespace aam::analysis
