#include "analysis/recommend.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace aam::analysis {

namespace {

/// Per-operator footprint split the cost formulas consume (the contention
/// signature stores per-activity counts; these are per single operator).
struct OpFootprint {
  double uniform_reads = 0;
  double uniform_writes = 0;
  double skewed_reads = 0;
  double skewed_writes = 0;
  double reads() const { return uniform_reads + skewed_reads; }
  double writes() const { return uniform_writes + skewed_writes; }
};

/// Probability that one more write to a class-`q` element collides with
/// any of the T-1 peers' concurrent writes to the same class: the
/// serialize-vs-parallelize coin every guarded update flips.
double write_contention(double peer_writes_per_op, int threads, double q) {
  const double peers = static_cast<double>(std::max(0, threads - 1));
  return 1.0 - std::exp(-peers * peer_writes_per_op * q);
}

struct CostInputs {
  const model::MachineConfig* machine = nullptr;
  const model::HtmCosts* htm = nullptr;
  OpFootprint fp;
  double p_uniform = 0;  ///< uniform-class write contention
  double p_skewed = 0;   ///< skew-class write contention
  int threads = 1;
  int batch = 1;
  double claim_ns = 0;   ///< work-claim fetch_add amortized over the batch
};

/// Guarded-update cost: the atomic-unit gap plus a critical section of
/// `section_ns` that fully serializes with probability p and runs in
/// parallel (1/T) otherwise.
double guarded_write(const CostInputs& in, double count, double p,
                     double section_ns) {
  const double t = static_cast<double>(in.threads);
  return count * (in.machine->atomics.global_gap_ns +
                  section_ns * (p + (1.0 - p) / t));
}

/// Scatter-update cost for skew-class writes (updates into shared
/// hub/neighbor elements). On machines with a shared atomic unit
/// (global_gap_ns > 0 — BG/Q's L2), *dense* scatters do not parallelize
/// even when the measured conflict probability is low: each shared-line
/// touch synchronizes the toucher with the furthest-ahead owner, and an
/// operator whose write count scales with degree touches enough shared
/// lines per invocation that thread clocks couple into a near-serial
/// schedule (measured on the DES: PageRank's push phase — d ≈ 16 scatter
/// writes/op — gains only ~1.2x from T=1 to T=64 under atomics, while
/// union-find's constant 2 shared writes/op keep scaling). The density
/// threshold splits those two regimes with margin on both sides; sparse
/// scatters and private-cache machines keep the contention-weighted
/// parallel term.
constexpr double kScatterSerialDensity = 4.0;  // shared writes per operator

double scatter_write(const CostInputs& in, double count, double p,
                     double section_ns) {
  if (in.machine->atomics.global_gap_ns > 0 &&
      count > kScatterSerialDensity) {
    return count * (in.machine->atomics.global_gap_ns + section_ns);
  }
  return guarded_write(in, count, p, section_ns);
}

double cost_serial_lock(const CostInputs& in) {
  const model::AtomicCosts& a = in.machine->atomics;
  return in.fp.reads() * a.load_ns + in.fp.writes() * a.store_ns +
         a.cas_ns / static_cast<double>(in.batch) + in.claim_ns;
}

double cost_atomics(const CostInputs& in) {
  const model::AtomicCosts& a = in.machine->atomics;
  const double t = static_cast<double>(in.threads);
  // Self-class writes follow the claim/CAS pattern; skew-class writes are
  // accumulates on shared (hub) elements.
  return in.fp.reads() * a.load_ns / t +
         guarded_write(in, in.fp.uniform_writes, in.p_uniform, a.cas_ns) +
         scatter_write(in, in.fp.skewed_writes, in.p_skewed, a.acc_ns) +
         in.claim_ns;
}

double cost_fine_locks(const CostInputs& in) {
  const model::AtomicCosts& a = in.machine->atomics;
  const double t = static_cast<double>(in.threads);
  const double section = a.cas_ns + 2.0 * a.store_ns;  // acquire + release
  return in.fp.reads() * a.load_ns / t +
         guarded_write(in, in.fp.uniform_writes, in.p_uniform, section) +
         scatter_write(in, in.fp.skewed_writes, in.p_skewed, section) +
         in.claim_ns;
}

double cost_stm(const CostInputs& in) {
  const model::AtomicCosts& a = in.machine->atomics;
  const double t = static_cast<double>(in.threads);
  // TL2 bookkeeping (executor_impl.hpp): 7 load-equivalents per read
  // (3 loads + 4x bookkeeping), 5 per buffered write; commit replays an
  // orec CAS + write-back + release per write and touches the global
  // version clock once per batch.
  const double bookkeeping =
      (7.0 * in.fp.reads() + 5.0 * in.fp.writes()) * a.load_ns / t;
  const double commit_section = a.cas_ns + 2.0 * a.store_ns;
  const double clock_ns =
      (a.load_ns + a.cas_ns) / static_cast<double>(in.batch);
  return bookkeeping +
         guarded_write(in, in.fp.uniform_writes, in.p_uniform,
                       commit_section) +
         scatter_write(in, in.fp.skewed_writes, in.p_skewed, commit_section) +
         clock_ns + in.claim_ns;
}

double cost_htm(const CostInputs& in, double abort_prob, bool capacity_unsafe,
                double& attempts_out, double& p_serial_out) {
  const model::AtomicCosts& a = in.machine->atomics;
  const model::HtmCosts& h = *in.htm;
  const double t = static_cast<double>(in.threads);
  const double m = static_cast<double>(in.batch);
  const int max_retries = std::max(1, h.max_retries);
  double p = abort_prob;
  if (capacity_unsafe) p = 1.0;  // every attempt can overflow
  // Expected attempts per committed activity under per-attempt abort
  // probability p, capped by the retry policy; past the cap the activity
  // serializes on the fallback lock.
  const double attempts =
      p >= 1.0 ? static_cast<double>(max_retries)
               : std::min(1.0 / (1.0 - p), static_cast<double>(max_retries));
  const double p_serial =
      capacity_unsafe ? 1.0 : std::pow(p, static_cast<double>(max_retries));
  attempts_out = attempts;
  p_serial_out = p_serial;
  const double per_op_work = in.fp.reads() * (h.read_ns + a.load_ns) +
                             in.fp.writes() * (h.write_ns + a.store_ns);
  const double speculative =
      (attempts * (h.begin_ns + h.commit_ns) / m + attempts * per_op_work +
       (attempts - 1.0) * h.abort_ns / m) /
      t;
  // The hybrid fallback penalty: a serialized activity holds the global
  // lock, so its work stops parallelizing — charged at full cost.
  const double fallback =
      p_serial * (h.serialize_acquire_ns / m + in.fp.reads() * a.load_ns +
                  in.fp.writes() * a.store_ns);
  return speculative + fallback + in.claim_ns;
}

const CapacityBound* find_bound(const std::vector<CapacityBound>& bounds,
                                const std::string& machine,
                                model::HtmKind kind, core::OperatorId op) {
  for (const CapacityBound& b : bounds) {
    if (b.machine == machine && b.kind == kind && b.op == op) return &b;
  }
  return nullptr;
}

Recommendation recommend_one(const model::MachineConfig& machine,
                             model::HtmKind kind, const EffectSignature& sig,
                             const std::vector<CapacityBound>& bounds,
                             const Workload& workload) {
  Recommendation rec;
  rec.machine = machine.name;
  rec.kind = kind;
  rec.threads =
      workload.threads > 0 ? workload.threads : machine.max_threads();
  rec.op = sig.op;

  Workload w = workload;
  w.threads = rec.threads;
  rec.contention = contention(sig, w, machine, kind);

  CostInputs in;
  in.machine = &machine;
  in.htm = &machine.htm(kind);
  in.threads = rec.threads;
  in.batch = std::max(1, w.batch);
  const double m = static_cast<double>(in.batch);
  in.fp.uniform_reads = rec.contention.uniform_reads / m;
  in.fp.uniform_writes = rec.contention.uniform_writes / m;
  in.fp.skewed_reads = rec.contention.skewed_reads / m;
  in.fp.skewed_writes = rec.contention.skewed_writes / m;
  in.p_uniform = write_contention(in.fp.uniform_writes, in.threads,
                                  1.0 / rec.contention.universe_units);
  in.p_skewed = write_contention(
      in.fp.skewed_writes, in.threads,
      rec.contention.skew_mult / rec.contention.universe_units);
  in.claim_ns = machine.atomics.cas_ns / m;

  const CapacityBound* bound =
      find_bound(bounds, machine.name, kind, sig.op);
  AAM_CHECK_MSG(bound != nullptr, "capacity bound missing for operator");
  const bool unbounded = bound->max_safe_coarsening == ~std::uint64_t{0};
  rec.htm_c_safe = unbounded ? 0 : bound->max_safe_coarsening;
  const bool capacity_unsafe =
      !unbounded &&
      static_cast<std::uint64_t>(in.batch) > bound->max_safe_coarsening;

  double attempts = 1.0;
  double p_serial = 0.0;
  const double htm_cost = cost_htm(in, rec.contention.abort_prob,
                                   capacity_unsafe, attempts, p_serial);
  rec.predicted_aborts = attempts - 1.0;
  rec.abort_band = std::max(3.0 * rec.predicted_aborts, 1.0);

  rec.ranked = {
      {core::Mechanism::kHtmCoarsened, htm_cost, capacity_unsafe},
      {core::Mechanism::kAtomicOps, cost_atomics(in), false},
      {core::Mechanism::kFineLocks, cost_fine_locks(in), false},
      {core::Mechanism::kSerialLock, cost_serial_lock(in), false},
      {core::Mechanism::kStm, cost_stm(in), false},
  };
  std::stable_sort(rec.ranked.begin(), rec.ranked.end(),
                   [](const MechanismCost& a, const MechanismCost& b) {
                     return a.cost_ns < b.cost_ns;
                   });
  return rec;
}

std::string fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

std::string workload_line(const Workload& w) {
  std::string s = "scale=" + std::to_string(w.scale) +
                  " vertices=" + std::to_string(w.vertices) +
                  " degree=" + fmt(w.mean_degree) +
                  " chain=" + std::to_string(w.chain) +
                  " skew=" + fmt(w.skew) +
                  " batch=" + std::to_string(w.batch);
  if (w.threads > 0) s += " threads=" + std::to_string(w.threads);
  return s;
}

std::string ranked_string(const Recommendation& rec, const char* sep) {
  std::string s;
  for (const MechanismCost& mc : rec.ranked) {
    if (!s.empty()) s += sep;
    s += core::to_string(mc.mechanism);
    s += ":";
    s += fmt(mc.cost_ns);
    if (mc.capacity_unsafe) s += "!cap";
  }
  return s;
}

}  // namespace

double Recommendation::cost_of(core::Mechanism mechanism) const {
  for (const MechanismCost& mc : ranked) {
    if (mc.mechanism == mechanism) return mc.cost_ns;
  }
  return 0;
}

std::vector<Recommendation> recommend_for(
    const model::MachineConfig& machine, model::HtmKind kind,
    const std::vector<EffectSignature>& signatures,
    const std::vector<CapacityBound>& bounds, const Workload& workload) {
  std::vector<Recommendation> recs;
  recs.reserve(signatures.size());
  for (const EffectSignature& sig : signatures) {
    recs.push_back(recommend_one(machine, kind, sig, bounds, workload));
  }
  return recs;
}

std::vector<Recommendation> recommend(
    const std::vector<EffectSignature>& signatures,
    const std::vector<CapacityBound>& bounds, const Workload& workload) {
  std::vector<Recommendation> recs;
  const model::MachineConfig* machines[] = {&model::bgq(), &model::has_c(),
                                            &model::has_p()};
  for (const model::MachineConfig* machine : machines) {
    for (model::HtmKind kind : machine->supported_htm) {
      for (Recommendation& rec :
           recommend_for(*machine, kind, signatures, bounds, workload)) {
        recs.push_back(std::move(rec));
      }
    }
  }
  return recs;
}

core::AutoPolicy make_auto_policy(const model::MachineConfig& machine,
                                  model::HtmKind kind,
                                  const Workload& workload) {
  const auto signatures = analyze_all();
  const int degree =
      std::max(1, static_cast<int>(std::lround(workload.mean_degree)));
  const auto bounds = capacity_bounds(signatures, degree, workload.chain);
  core::AutoPolicy policy;
  for (const Recommendation& rec :
       recommend_for(machine, kind, signatures, bounds, workload)) {
    core::MechanismPlan& plan = policy.plan(rec.op);
    plan.recommended = rec.best();
    plan.predicted_aborts = rec.predicted_aborts;
    plan.abort_band = rec.abort_band;
    plan.htm_c_safe = rec.htm_c_safe;
  }
  return policy;
}

std::string render_recommend_table(const std::vector<Recommendation>& recs,
                                   const Workload& workload) {
  std::string out = "mechanism recommendations (" + workload_line(workload) +
                    ")\n";
  char line[256];
  std::snprintf(line, sizeof(line), "%-6s %-10s %3s %-14s %-12s %8s %8s %s\n",
                "machine", "kind", "T", "operator", "best", "p_abort",
                "c_safe", "ranked (ns/op)");
  out += line;
  for (const Recommendation& rec : recs) {
    const std::string c_safe =
        rec.htm_c_safe == 0 ? "-" : std::to_string(rec.htm_c_safe);
    std::snprintf(line, sizeof(line), "%-6s %-10s %3d %-14s %-12s %8s %8s %s\n",
                  rec.machine.c_str(), model::to_string(rec.kind),
                  rec.threads, core::to_string(rec.op),
                  core::to_string(rec.best()),
                  fmt(rec.contention.abort_prob).c_str(), c_safe.c_str(),
                  ranked_string(rec, " ").c_str());
    out += line;
  }
  return out;
}

std::string render_recommend_json(const std::vector<Recommendation>& recs,
                                  const Workload& workload) {
  std::string out = "{\n  \"workload\": {\"scale\": " +
                    std::to_string(workload.scale) +
                    ", \"vertices\": " + std::to_string(workload.vertices) +
                    ", \"degree\": " + fmt(workload.mean_degree) +
                    ", \"chain\": " + std::to_string(workload.chain) +
                    ", \"skew\": " + fmt(workload.skew) +
                    ", \"batch\": " + std::to_string(workload.batch) +
                    "},\n  \"recommendations\": [\n";
  bool first = true;
  for (const Recommendation& rec : recs) {
    if (!first) out += ",\n";
    first = false;
    out += "    {\"machine\": \"" + rec.machine + "\", \"kind\": \"" +
           model::to_string(rec.kind) + "\", \"threads\": " +
           std::to_string(rec.threads) + ", \"operator\": \"" +
           core::to_string(rec.op) + "\", \"best\": \"" +
           core::to_string(rec.best()) + "\", \"abort_prob\": " +
           fmt(rec.contention.abort_prob) + ", \"predicted_aborts\": " +
           fmt(rec.predicted_aborts) + ", \"abort_band\": " +
           fmt(rec.abort_band) + ", \"c_safe\": " +
           std::to_string(rec.htm_c_safe) + ", \"ranked\": [";
    bool rfirst = true;
    for (const MechanismCost& mc : rec.ranked) {
      if (!rfirst) out += ", ";
      rfirst = false;
      out += "{\"mechanism\": \"" + std::string(core::to_string(mc.mechanism)) +
             "\", \"cost_ns\": " + fmt(mc.cost_ns) + ", \"capacity_unsafe\": " +
             (mc.capacity_unsafe ? "true" : "false") + "}";
    }
    out += "]}";
  }
  out += "\n  ]\n}";
  return out;
}

std::string render_recommend_golden(const std::vector<Recommendation>& recs,
                                    const Workload& workload) {
  std::string out;
  out +=
      "# Mechanism recommendation table (static conflict + capacity "
      "analysis).\n"
      "# Regenerate deliberately with:\n"
      "#   ./build/tools/aam_analyze --recommend --write-golden "
      "tests/golden/recommendations.txt\n"
      "# and commit the diff with an explanation of the model or operator\n"
      "# change that moved it.\n";
  out += "workload " + workload_line(workload) + "\n";
  for (const Recommendation& rec : recs) {
    out += "machine=" + rec.machine +
           " kind=" + model::to_string(rec.kind) +
           " threads=" + std::to_string(rec.threads) +
           " op=" + core::to_string(rec.op) +
           " best=" + core::to_string(rec.best()) +
           " p_abort=" + fmt(rec.contention.abort_prob) +
           " aborts=" + fmt(rec.predicted_aborts) +
           " band=" + fmt(rec.abort_band) +
           " c_safe=" + std::to_string(rec.htm_c_safe) +
           " ranked=" + ranked_string(rec, ",") + "\n";
  }
  return out;
}

}  // namespace aam::analysis
