#include "analysis/signature.hpp"

#include <bit>
#include <numeric>
#include <utility>

#include "algorithms/operators.hpp"
#include "graph/csr.hpp"
#include "util/check.hpp"

namespace aam::analysis {

namespace {

namespace ops = aam::algorithms::ops;
using graph::Vertex;

IndexClass self_only(std::size_t /*index*/) { return IndexClass::kSelf; }

IndexClass self_or_neighbor(std::size_t index) {
  return index == 0 ? IndexClass::kSelf : IndexClass::kNeighbor;
}

/// Star graph: vertex 0 with neighbors 1..d (the probe topology for the
/// neighborhood-shaped operators).
graph::Graph star_graph(int degree) {
  graph::EdgeList edges;
  for (int i = 1; i <= degree; ++i) {
    edges.emplace_back(Vertex{0}, static_cast<Vertex>(i));
  }
  return graph::Graph::from_edges(static_cast<Vertex>(1 + degree), edges,
                                  /*undirected=*/true);
}

struct Probe {
  std::vector<Interpreter::RegionEffect> effects;
  bool widened = false;
  std::size_t paths = 0;
};

Probe finish(Interpreter& interp) {
  return Probe{interp.effects(), interp.widened(), interp.paths()};
}

// --- one harness per operator body ------------------------------------

// bfs_visit: a single cas on parent[w]. Symbolic: a concurrent activity
// may have claimed w first, so the cas forks.
Probe probe_bfs(Interpreter::Params params) {
  Interpreter interp(params);
  std::vector<Vertex> parent(1, graph::kInvalidVertex);
  Region r;
  r.name = r.label = "bfs.parent";
  r.base = reinterpret_cast<const std::byte*>(parent.data());
  r.elem_bytes = sizeof(Vertex);
  r.count = parent.size();
  r.symbolic = true;
  r.classify = self_only;
  interp.register_region(std::move(r));
  AbstractAccess acc(interp);
  interp.enumerate([&] {
    ops::bfs_visit(acc, std::span<Vertex>(parent), /*w=*/0, /*u=*/7);
  });
  return finish(interp);
}

// sssp_relax: load-compare-cas retry loop on distance[v]. The load either
// observes a value at or below the candidate (stale relaxation: return)
// or above it (proceed to cas); cas failure re-enters the loop, bounded
// by the widening budget.
Probe probe_sssp(Interpreter::Params params) {
  Interpreter interp(params);
  constexpr double kCandidate = 10.0;
  std::vector<double> distance(1, 100.0);
  Region r;
  r.name = r.label = "sssp.distance";
  r.base = reinterpret_cast<const std::byte*>(distance.data());
  r.elem_bytes = sizeof(double);
  r.count = distance.size();
  r.symbolic = true;
  r.classify = self_only;
  r.candidates = [](Interpreter& in, std::size_t /*index*/,
                    std::vector<Candidate>& out) {
    out.push_back({std::bit_cast<std::uint64_t>(kCandidate - 1),
                   Candidate::Kind::kPlain});  // terminating: stale candidate
    if (auto loop = in.loop_candidate(
            std::bit_cast<std::uint64_t>(kCandidate + 1))) {
      out.push_back(*loop);  // improvable: proceed to the cas
    }
  };
  interp.register_region(std::move(r));
  AbstractAccess acc(interp);
  interp.enumerate([&] {
    ops::sssp_relax(acc, std::span<double>(distance), /*v=*/0, kCandidate);
  });
  return finish(interp);
}

/// Union-find probe region: element 0 is u's start (kSelf), element 1 —
/// when present — is v's start (kPeer), elements from `chain_base` up are
/// materialized lazily by widened root walks (kChain). The backing makes
/// every element its own root; a load may instead observe a fresh chain
/// element (another activity re-parented the node meanwhile).
Region uf_region(std::vector<Vertex>& parent, std::size_t chain_base) {
  std::iota(parent.begin(), parent.end(), Vertex{0});
  Region r;
  r.name = r.label = "boruvka.parent";
  r.base = reinterpret_cast<const std::byte*>(parent.data());
  r.elem_bytes = sizeof(Vertex);
  r.count = parent.size();
  r.symbolic = true;
  r.chain_base = chain_base;
  r.classify = [chain_base](std::size_t index) {
    if (index >= chain_base) return IndexClass::kChain;
    return index == 0 ? IndexClass::kSelf : IndexClass::kPeer;
  };
  r.candidates = [](Interpreter& in, std::size_t index,
                    std::vector<Candidate>& out) {
    out.push_back({index, Candidate::Kind::kPlain});  // own root: terminate
    if (auto chain = in.chain_candidate(0)) out.push_back(*chain);
  };
  return r;
}

Probe probe_uf_root(Interpreter::Params params) {
  Interpreter interp(params);
  std::vector<Vertex> parent(1 + static_cast<std::size_t>(params.chain));
  interp.register_region(uf_region(parent, /*chain_base=*/1));
  AbstractAccess acc(interp);
  interp.enumerate([&] {
    ops::uf_root(acc, std::span<Vertex>(parent), /*v=*/0);
  });
  return finish(interp);
}

Probe probe_uf_union(Interpreter::Params params) {
  Interpreter interp(params);
  std::vector<Vertex> parent(2 + static_cast<std::size_t>(params.chain));
  interp.register_region(uf_region(parent, /*chain_base=*/2));
  AbstractAccess acc(interp);
  interp.enumerate([&] {
    ops::uf_union(acc, std::span<Vertex>(parent), /*u=*/0, /*v=*/1);
  });
  return finish(interp);
}

// pagerank_push: deterministic (no forks) — one fetch_add on the own
// element, one load of the stale rank, one fetch_add per neighbor.
Probe probe_pagerank(Interpreter::Params params) {
  Interpreter interp(params);
  const auto g = star_graph(params.degree);
  const std::size_t n = 1 + static_cast<std::size_t>(params.degree);
  std::vector<double> old_rank(n, 1.0);
  std::vector<double> new_rank(n, 0.0);
  for (int which = 0; which < 2; ++which) {
    const auto& vec = which == 0 ? old_rank : new_rank;
    Region r;
    r.name = which == 0 ? "pagerank.old_rank" : "pagerank.new_rank";
    r.label = "pagerank.rank";
    r.base = reinterpret_cast<const std::byte*>(vec.data());
    r.elem_bytes = sizeof(double);
    r.count = vec.size();
    r.classify = self_or_neighbor;
    interp.register_region(std::move(r));
  }
  AbstractAccess acc(interp);
  interp.enumerate([&] {
    ops::pagerank_push(acc, g, std::span<const double>(old_rank),
                       std::span<double>(new_rank), /*v=*/0, /*base=*/0.15,
                       /*damping=*/0.85);
  });
  return finish(interp);
}

// color_assign: stores the tentative color, then loads every neighbor's
// color; each load forks on clash / no-clash (2^d paths). The footprint
// is path-independent; the forks exercise both emit arms.
Probe probe_coloring(Interpreter::Params params) {
  Interpreter interp(params);
  const auto g = star_graph(params.degree);
  constexpr std::uint32_t kTentative = 5;
  std::vector<std::uint32_t> color(1 + static_cast<std::size_t>(params.degree),
                                   0);
  Region r;
  r.name = r.label = "coloring.color";
  r.base = reinterpret_cast<const std::byte*>(color.data());
  r.elem_bytes = sizeof(std::uint32_t);
  r.count = color.size();
  r.symbolic = true;
  r.classify = self_or_neighbor;
  r.candidates = [](Interpreter& /*in*/, std::size_t index,
                    std::vector<Candidate>& out) {
    if (index == 0) return;  // own element: only read back via the buffer
    out.push_back({kTentative + 1, Candidate::Kind::kPlain});  // no clash
    out.push_back({kTentative, Candidate::Kind::kPlain});      // clash
  };
  interp.register_region(std::move(r));
  AbstractAccess acc(interp);
  interp.enumerate([&] {
    ops::color_assign(acc, g, std::span<std::uint32_t>(color), /*v=*/0,
                      kTentative, /*coin=*/true);
  });
  return finish(interp);
}

// st_visit: one load of color[v] (white / own wave / other wave), then a
// cas claim on the white path.
Probe probe_st(Interpreter::Params params) {
  Interpreter interp(params);
  constexpr std::uint32_t kWhite = 0, kWave = 1, kOtherWave = 2;
  std::vector<std::uint32_t> color(1, kWhite);
  Region r;
  r.name = r.label = "stconn.color";
  r.base = reinterpret_cast<const std::byte*>(color.data());
  r.elem_bytes = sizeof(std::uint32_t);
  r.count = color.size();
  r.symbolic = true;
  r.classify = self_only;
  r.candidates = [](Interpreter& /*in*/, std::size_t /*index*/,
                    std::vector<Candidate>& out) {
    out.push_back({kWhite, Candidate::Kind::kPlain});
    out.push_back({kWave, Candidate::Kind::kPlain});
    out.push_back({kOtherWave, Candidate::Kind::kPlain});
  };
  interp.register_region(std::move(r));
  AbstractAccess acc(interp);
  interp.enumerate([&] {
    ops::st_visit(acc, std::span<std::uint32_t>(color), /*v=*/0, kWave,
                  kWhite, /*hit_mark=*/~std::uint64_t{0}, /*claim_token=*/1);
  });
  return finish(interp);
}

Probe run_probe(core::OperatorId op, Interpreter::Params params) {
  switch (op) {
    case core::OperatorId::kBfsVisit: return probe_bfs(params);
    case core::OperatorId::kPagerankPush: return probe_pagerank(params);
    case core::OperatorId::kSsspRelax: return probe_sssp(params);
    case core::OperatorId::kUfRoot: return probe_uf_root(params);
    case core::OperatorId::kUfUnion: return probe_uf_union(params);
    case core::OperatorId::kColorAssign: return probe_coloring(params);
    case core::OperatorId::kStVisit: return probe_st(params);
    case core::OperatorId::kUnknown: break;
  }
  AAM_CHECK_MSG(false, "no probe harness for operator");
  return {};
}

// --- linear fit over the probe grid -----------------------------------

// Probe parameters. A is the base; B varies degree, C varies the chain
// bound; V is a held-out verification point.
constexpr Interpreter::Params kProbeA{.degree = 2, .chain = 2};
constexpr Interpreter::Params kProbeB{.degree = 5, .chain = 2};
constexpr Interpreter::Params kProbeC{.degree = 2, .chain = 4};
constexpr Interpreter::Params kProbeV{.degree = 3, .chain = 3};

Linear fit_linear(std::size_t at_a, std::size_t at_b, std::size_t at_c) {
  const auto fa = static_cast<long long>(at_a);
  const auto fb = static_cast<long long>(at_b);
  const auto fc = static_cast<long long>(at_c);
  const long long dd = kProbeB.degree - kProbeA.degree;
  const long long dc = kProbeC.chain - kProbeA.chain;
  AAM_CHECK_MSG((fb - fa) % dd == 0, "effect count not linear in degree");
  AAM_CHECK_MSG((fc - fa) % dc == 0, "effect count not linear in chain bound");
  Linear l;
  l.per_degree = (fb - fa) / dd;
  l.per_chain = (fc - fa) / dc;
  l.base = fa - l.per_degree * kProbeA.degree - l.per_chain * kProbeA.chain;
  return l;
}

}  // namespace

const char* to_string(IndexClass c) {
  switch (c) {
    case IndexClass::kSelf: return "self";
    case IndexClass::kPeer: return "peer";
    case IndexClass::kNeighbor: return "neighbor";
    case IndexClass::kChain: return "chain";
  }
  return "?";
}

std::size_t Linear::eval(int degree, int chain) const {
  const long long v = base + per_degree * degree + per_chain * chain;
  AAM_CHECK(v >= 0);
  return static_cast<std::size_t>(v);
}

std::string to_string(const Linear& l) {
  std::string out;
  auto term = [&out](long long coeff, const char* var) {
    if (coeff == 0) return;
    if (!out.empty()) out += '+';
    if (coeff != 1 || var[0] == '\0') out += std::to_string(coeff);
    out += var;
  };
  term(l.base, "");
  term(l.per_degree, "d");
  term(l.per_chain, "c");
  return out.empty() ? "0" : out;
}

Linear RegionSignature::read_total() const {
  Linear t;
  for (const Linear& l : reads) {
    t.base += l.base;
    t.per_degree += l.per_degree;
    t.per_chain += l.per_chain;
  }
  return t;
}

Linear RegionSignature::write_total() const {
  Linear t;
  for (const Linear& l : writes) {
    t.base += l.base;
    t.per_degree += l.per_degree;
    t.per_chain += l.per_chain;
  }
  return t;
}

std::size_t EffectSignature::read_elems(int degree, int chain) const {
  std::size_t total = 0;
  for (const RegionSignature& r : regions) {
    total += r.read_total().eval(degree, chain);
  }
  return total;
}

std::size_t EffectSignature::write_elems(int degree, int chain) const {
  std::size_t total = 0;
  for (const RegionSignature& r : regions) {
    total += r.write_total().eval(degree, chain);
  }
  return total;
}

EffectSignature analyze(core::OperatorId op) {
  const Probe a = run_probe(op, kProbeA);
  const Probe b = run_probe(op, kProbeB);
  const Probe c = run_probe(op, kProbeC);
  const Probe v = run_probe(op, kProbeV);
  AAM_CHECK(a.effects.size() == b.effects.size() &&
            a.effects.size() == c.effects.size() &&
            a.effects.size() == v.effects.size());

  EffectSignature sig;
  sig.op = op;
  sig.widened = a.widened || b.widened || c.widened || v.widened;
  sig.paths = a.paths;
  sig.probe_degree = kProbeA.degree;
  sig.probe_chain = kProbeA.chain;
  for (std::size_t r = 0; r < a.effects.size(); ++r) {
    RegionSignature rs;
    rs.name = a.effects[r].name;
    rs.label = a.effects[r].label;
    for (std::size_t cls = 0; cls < kNumIndexClasses; ++cls) {
      rs.reads[cls] = fit_linear(a.effects[r].reads[cls],
                                 b.effects[r].reads[cls],
                                 c.effects[r].reads[cls]);
      rs.writes[cls] = fit_linear(a.effects[r].writes[cls],
                                  b.effects[r].writes[cls],
                                  c.effects[r].writes[cls]);
      // Held-out verification: the fitted form must reproduce a probe
      // point that did not participate in the fit.
      AAM_CHECK_MSG(rs.reads[cls].eval(kProbeV.degree, kProbeV.chain) ==
                        v.effects[r].reads[cls],
                    "read-count fit failed held-out verification");
      AAM_CHECK_MSG(rs.writes[cls].eval(kProbeV.degree, kProbeV.chain) ==
                        v.effects[r].writes[cls],
                    "write-count fit failed held-out verification");
    }
    sig.regions.push_back(std::move(rs));
  }
  return sig;
}

std::vector<EffectSignature> analyze_all() {
  std::vector<EffectSignature> sigs;
  for (core::OperatorId op : core::all_operator_ids()) {
    sigs.push_back(analyze(op));
  }
  return sigs;
}

}  // namespace aam::analysis
