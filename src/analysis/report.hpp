#pragma once

// Renderers for the static analysis results: the human-readable table
// (aam_analyze default output), a JSON dump, and the golden reference
// format that CI diffs against tests/golden/effect_signatures.txt.

#include <string>
#include <vector>

#include "analysis/capacity.hpp"
#include "analysis/signature.hpp"

namespace aam::analysis {

/// Aligned console tables: signatures then capacity bounds.
std::string render_table(const std::vector<EffectSignature>& signatures,
                         const std::vector<CapacityBound>& bounds, int degree,
                         int chain);

/// Machine-readable dump of the same data.
std::string render_json(const std::vector<EffectSignature>& signatures,
                        const std::vector<CapacityBound>& bounds, int degree,
                        int chain);

/// Golden reference format: a comment header documenting the regeneration
/// command, then a line-oriented deterministic rendering. Compared by
/// exact string equality.
std::string render_golden(const std::vector<EffectSignature>& signatures,
                          const std::vector<CapacityBound>& bounds, int degree,
                          int chain);

}  // namespace aam::analysis
