#pragma once

// Static contention signatures: the conflict half of the mechanism
// prediction (the capacity half lives in capacity.hpp).
//
// From an operator's effect signature — distinct elements read and written
// per invocation, split by index class — plus a handful of workload
// parameters (vertex count, mean degree, chain bound, degree skew, thread
// count, coarsening factor M), derive a closed-form pairwise conflict
// probability between two concurrently running activities. The model is a
// birthday bound over the write footprint:
//
//   * every index class maps to a draw distribution over the element
//     universe: kSelf indices are the operator's own work item, effectively
//     uniform over the universe; kPeer/kNeighbor/kChain indices follow the
//     graph's degree distribution, so on skewed graphs they concentrate on
//     hub vertices. Concentration is summarized by a single multiplier
//     kappa >= 1 on the per-pair collision probability (kappa = 1 recovers
//     the uniform birthday bound).
//   * the universe is measured in conflict-detection units, not elements:
//     a machine that tracks conflicts per 64-byte line (Haswell) sees an
//     8x smaller universe over packed 8-byte elements than one that
//     versions at 8-byte grain (BG/Q L2 TM) — false sharing is part of the
//     prediction, per §5.5.1.
//
// With lambda = expected overlapping (write, any) element pairs between
// two activities, the pairwise conflict probability is 1 - exp(-lambda)
// and the per-attempt abort probability against T-1 concurrent peers is
// 1 - (1 - p_pair)^(T-1). The independence assumptions (attempts
// independent, peers independent, maximal concurrency) make the bound an
// upper estimate; DESIGN.md §9 spells out the caveats, and the auto
// executor validates the prediction against live TxnOutcome telemetry.

#include <cstdint>

#include "analysis/signature.hpp"
#include "graph/csr.hpp"
#include "model/machines.hpp"

namespace aam::analysis {

/// Workload parameters the conflict model conditions on. Probed from a
/// concrete graph (workload_from_graph) or a deterministic Kronecker
/// generation at a given scale (workload_for_scale).
struct Workload {
  int scale = 16;                      ///< log2 of the vertex count
  std::uint64_t vertices = 1ull << 16; ///< element-universe size per region
  double mean_degree = 16.0;           ///< expected neighbor-class fanout
  int chain = 8;                       ///< chain-class bound (union-find paths)
  double skew = 0.0;                   ///< graph::DegreeStats::top1pct_edge_share
  int threads = 0;                     ///< concurrent threads (0 = machine max)
  int batch = 16;                      ///< M: operators per coarse activity
};

/// Probes `g` for the model inputs (vertex count, mean degree, skew).
Workload workload_from_graph(const graph::Graph& g, int threads, int batch);

/// Deterministic Kronecker probe (seed 1, matching the bench harnesses):
/// generates the scale/edge_factor graph and measures it.
Workload workload_for_scale(int scale, int edge_factor, int threads,
                            int batch);

/// Collision-probability multiplier for skew-class (degree-distributed)
/// index draws, from the top-1%-edge-share statistic s: a two-point
/// mixture where mass s concentrates on the top 1% of vertices and the
/// rest spreads over the remaining 99%. kappa = 100 s^2 + (1-s)^2 / 0.99;
/// 1.01 at s = 0 (uniform) and 100 at s = 1 (all edges on the hubs).
double skew_multiplier(double top1pct_edge_share);

/// Expected overlapping (write, read-or-write) element pairs between two
/// concurrent activities with identical per-class footprints. Uniform-
/// class draws collide at 1/universe_units per pair; a pair of skew-class
/// draws at skew_mult/universe_units; mixed pairs at 1/universe_units
/// (the uniform side randomizes the pair regardless of the other draw).
double expected_overlap(double uniform_writes, double uniform_reads,
                        double skewed_writes, double skewed_reads,
                        double universe_units, double skew_mult);

/// The static contention signature of one operator under one workload on
/// one machine: per-activity footprints split uniform/skewed, the
/// granularity-adjusted universe, and the derived probabilities.
struct ContentionSignature {
  core::OperatorId op = core::OperatorId::kUnknown;
  double uniform_reads = 0;   ///< per activity (M operators), kSelf class
  double uniform_writes = 0;
  double skewed_reads = 0;    ///< kPeer + kNeighbor + kChain classes
  double skewed_writes = 0;
  double universe_units = 1;  ///< region elements in conflict-detection units
  double skew_mult = 1;       ///< kappa
  double pair_overlap = 0;    ///< lambda: expected conflicting element pairs
  double conflict_prob = 0;   ///< p_pair = 1 - exp(-lambda)
  double abort_prob = 0;      ///< per attempt vs T-1 peers
};

/// Evaluates the model for one operator signature. The HTM kind supplies
/// the conflict-detection granularity; threads <= 0 in the workload means
/// machine.max_threads().
ContentionSignature contention(const EffectSignature& sig, const Workload& w,
                               const model::MachineConfig& machine,
                               model::HtmKind kind);

}  // namespace aam::analysis
