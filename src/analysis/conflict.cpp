#include "analysis/conflict.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "graph/generators.hpp"
#include "graph/gstats.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace aam::analysis {

Workload workload_from_graph(const graph::Graph& g, int threads, int batch) {
  const graph::DegreeStats stats = graph::degree_stats(g);
  Workload w;
  w.vertices = g.num_vertices();
  w.scale = std::bit_width(std::max<std::uint64_t>(1, w.vertices - 1));
  w.mean_degree = std::max(1.0, stats.mean);
  w.skew = stats.top1pct_edge_share;
  w.threads = threads;
  w.batch = batch;
  return w;
}

Workload workload_for_scale(int scale, int edge_factor, int threads,
                            int batch) {
  AAM_CHECK(scale >= 1 && edge_factor >= 1);
  util::Rng rng(1);  // the bench harnesses' default seed
  graph::KroneckerParams params;
  params.scale = scale;
  params.edge_factor = edge_factor;
  const graph::Graph g = graph::kronecker(params, rng);
  Workload w = workload_from_graph(g, threads, batch);
  w.scale = scale;
  return w;
}

double skew_multiplier(double top1pct_edge_share) {
  const double s = std::clamp(top1pct_edge_share, 0.0, 1.0);
  // Two-point mixture over the universe: fraction s of skew-class draws
  // lands uniformly in the top 1% of vertices, the rest in the other 99%.
  // Collision probability of two independent draws is then
  // (s^2/0.01 + (1-s)^2/0.99) / universe — kappa times the uniform bound.
  return s * s / 0.01 + (1.0 - s) * (1.0 - s) / 0.99;
}

double expected_overlap(double uniform_writes, double uniform_reads,
                        double skewed_writes, double skewed_reads,
                        double universe_units, double skew_mult) {
  AAM_CHECK(universe_units >= 1.0);
  const double u = universe_units;
  // Conflicting element pairs between activities A and B (identical
  // footprints): W_A x W_B, W_A x R_B, and R_A x W_B, each pair colliding
  // at 1/u — except skew-on-skew pairs, which collide at kappa/u.
  const double writes[2] = {uniform_writes, skewed_writes};
  const double reads[2] = {uniform_reads, skewed_reads};
  double lambda = 0;
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      const double q = (a == 1 && b == 1) ? skew_mult / u : 1.0 / u;
      lambda += q * (writes[a] * (writes[b] + reads[b]) +
                     reads[a] * writes[b]);
    }
  }
  return lambda;
}

ContentionSignature contention(const EffectSignature& sig, const Workload& w,
                               const model::MachineConfig& machine,
                               model::HtmKind kind) {
  const int degree = std::max(1, static_cast<int>(std::lround(w.mean_degree)));
  const int threads = w.threads > 0 ? w.threads : machine.max_threads();
  const double m = static_cast<double>(std::max(1, w.batch));

  ContentionSignature c;
  c.op = sig.op;
  for (const RegionSignature& region : sig.regions) {
    for (int cls = 0; cls < kNumIndexClasses; ++cls) {
      const double r =
          static_cast<double>(region.reads[cls].eval(degree, w.chain));
      const double wr =
          static_cast<double>(region.writes[cls].eval(degree, w.chain));
      if (cls == static_cast<int>(IndexClass::kSelf)) {
        c.uniform_reads += m * r;
        c.uniform_writes += m * wr;
      } else {
        c.skewed_reads += m * r;
        c.skewed_writes += m * wr;
      }
    }
  }

  // Universe in conflict-detection units: each region spans ~|V| packed
  // 8-byte elements; a `g`-byte detection grain folds g/8 elements into
  // one unit (false sharing on Haswell's 64B lines, none on BG/Q's 8B).
  const std::uint32_t grain = machine.htm(kind).conflict_granularity_bytes;
  const double elem_bytes = 8.0;
  c.universe_units = std::max(
      1.0, static_cast<double>(w.vertices) * elem_bytes /
               static_cast<double>(std::max<std::uint32_t>(8, grain)));
  c.skew_mult = skew_multiplier(w.skew);
  c.pair_overlap =
      expected_overlap(c.uniform_writes, c.uniform_reads, c.skewed_writes,
                       c.skewed_reads, c.universe_units, c.skew_mult);
  c.conflict_prob = 1.0 - std::exp(-c.pair_overlap);
  const double peers = static_cast<double>(std::max(0, threads - 1));
  c.abort_prob = 1.0 - std::pow(1.0 - c.conflict_prob, peers);
  return c;
}

}  // namespace aam::analysis
