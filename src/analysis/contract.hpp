#pragma once

// Label contracts: the static effect signatures projected down to SimHeap
// allocation labels, for the dynamic footprint auditor (check::Checker).
// At batch commit the checker resolves every recorded word to its
// allocation and asserts `dynamic ⊆ static`: a word outside the
// operator's may-read/may-write label set is a static-escape violation —
// either the operator body grew an access the abstract interpretation
// does not model, or an algorithm mislabeled an allocation.

#include <string>
#include <string_view>
#include <vector>

#include "core/executor.hpp"

namespace aam::analysis {

struct LabelContract {
  std::vector<std::string> read_labels;   ///< labels the operator may read
  std::vector<std::string> write_labels;  ///< labels the operator may write

  /// Reads are implied by writes (cas and fetch_add read their target).
  bool may_read(std::string_view label) const;
  bool may_write(std::string_view label) const;

  std::string read_labels_joined() const;
  std::string write_labels_joined() const;
};

/// The contract for one operator, derived from analyze_all() on first use
/// (magic static; cheap to call per batch). kUnknown gets an empty
/// contract — callers skip untagged batches.
const LabelContract& label_contract(core::OperatorId op);

}  // namespace aam::analysis
