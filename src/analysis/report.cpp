#include "analysis/report.hpp"

#include <cstdio>

#include "util/table.hpp"

namespace aam::analysis {

namespace {

constexpr std::uint64_t kUnbounded = ~std::uint64_t{0};

std::string coarsening_str(std::uint64_t value) {
  return value == kUnbounded ? "inf" : std::to_string(value);
}

/// One cell summarizing a direction of a region: non-zero classes as
/// `class=form` joined by spaces, or "-" when the region is not touched.
std::string classes_str(const Linear (&by_class)[kNumIndexClasses]) {
  std::string out;
  for (std::size_t c = 0; c < kNumIndexClasses; ++c) {
    if (by_class[c].zero()) continue;
    if (!out.empty()) out += ' ';
    out += to_string(static_cast<IndexClass>(c));
    out += '=';
    out += to_string(by_class[c]);
  }
  return out.empty() ? "-" : out;
}

std::string signature_table(const std::vector<EffectSignature>& signatures,
                            int degree, int chain) {
  util::Table table({"operator", "region", "label", "reads", "writes",
                     "r@params", "w@params", "paths", "widened"});
  for (const EffectSignature& sig : signatures) {
    for (std::size_t r = 0; r < sig.regions.size(); ++r) {
      const RegionSignature& region = sig.regions[r];
      table.row()
          .cell(r == 0 ? core::to_string(sig.op) : "")
          .cell(region.name)
          .cell(region.label)
          .cell(classes_str(region.reads))
          .cell(classes_str(region.writes))
          .cell(static_cast<std::uint64_t>(
              region.read_total().eval(degree, chain)))
          .cell(static_cast<std::uint64_t>(
              region.write_total().eval(degree, chain)))
          .cell(r == 0 ? std::to_string(sig.paths) : "")
          .cell(r == 0 ? (sig.widened ? "yes" : "no") : "");
    }
  }
  return table.to_string();
}

std::string capacity_table(const std::vector<CapacityBound>& bounds) {
  util::Table table({"machine", "htm", "operator", "reads", "writes", "wcap",
                     "rcap", "c_safe", "abort_at", "assoc_wc"});
  for (const CapacityBound& b : bounds) {
    table.row()
        .cell(b.machine)
        .cell(model::to_string(b.kind))
        .cell(core::to_string(b.op))
        .cell(static_cast<std::uint64_t>(b.read_elems))
        .cell(static_cast<std::uint64_t>(b.write_elems))
        .cell(b.write_capacity_lines)
        .cell(b.read_capacity_lines)
        .cell(coarsening_str(b.max_safe_coarsening))
        .cell(coarsening_str(b.abort_threshold))
        .cell(b.assoc_worst_case);
  }
  return table.to_string();
}

void append_json_linear(std::string& out, const Linear& l) {
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "{\"base\":%lld,\"per_degree\":%lld,\"per_chain\":%lld}",
                l.base, l.per_degree, l.per_chain);
  out += buf;
}

void append_json_classes(std::string& out,
                         const Linear (&by_class)[kNumIndexClasses]) {
  out += '{';
  bool first = true;
  for (std::size_t c = 0; c < kNumIndexClasses; ++c) {
    if (by_class[c].zero()) continue;
    if (!first) out += ',';
    first = false;
    out += '"';
    out += to_string(static_cast<IndexClass>(c));
    out += "\":";
    append_json_linear(out, by_class[c]);
  }
  out += '}';
}

}  // namespace

std::string render_table(const std::vector<EffectSignature>& signatures,
                         const std::vector<CapacityBound>& bounds, int degree,
                         int chain) {
  std::string out;
  out += "Static effect signatures (elements as linear forms in probe "
         "degree d and widening bound c;\n@params columns evaluated at "
         "degree=" + std::to_string(degree) + " chain=" +
         std::to_string(chain) + ")\n\n";
  out += signature_table(signatures, degree, chain);
  out += "\nCapacity bounds per machine x HTM flavor (one line per "
         "element; assoc_wc = same-set worst case)\n\n";
  out += capacity_table(bounds);
  return out;
}

std::string render_json(const std::vector<EffectSignature>& signatures,
                        const std::vector<CapacityBound>& bounds, int degree,
                        int chain) {
  std::string out = "{\"params\":{\"degree\":" + std::to_string(degree) +
                    ",\"chain\":" + std::to_string(chain) +
                    "},\"signatures\":[";
  for (std::size_t s = 0; s < signatures.size(); ++s) {
    const EffectSignature& sig = signatures[s];
    if (s > 0) out += ',';
    out += "{\"operator\":\"";
    out += core::to_string(sig.op);
    out += "\",\"paths\":" + std::to_string(sig.paths) +
           ",\"widened\":" + (sig.widened ? std::string("true")
                                          : std::string("false")) +
           ",\"regions\":[";
    for (std::size_t r = 0; r < sig.regions.size(); ++r) {
      const RegionSignature& region = sig.regions[r];
      if (r > 0) out += ',';
      out += "{\"name\":\"" + region.name + "\",\"label\":\"" + region.label +
             "\",\"reads\":";
      append_json_classes(out, region.reads);
      out += ",\"writes\":";
      append_json_classes(out, region.writes);
      out += ",\"read_elems\":" +
             std::to_string(region.read_total().eval(degree, chain)) +
             ",\"write_elems\":" +
             std::to_string(region.write_total().eval(degree, chain)) + "}";
    }
    out += "]}";
  }
  out += "],\"capacity\":[";
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    const CapacityBound& b = bounds[i];
    if (i > 0) out += ',';
    out += "{\"machine\":\"" + b.machine + "\",\"htm\":\"";
    out += model::to_string(b.kind);
    out += "\",\"operator\":\"";
    out += core::to_string(b.op);
    out += "\",\"read_elems\":" + std::to_string(b.read_elems) +
           ",\"write_elems\":" + std::to_string(b.write_elems) +
           ",\"write_capacity_lines\":" +
           std::to_string(b.write_capacity_lines) +
           ",\"read_capacity_lines\":" +
           std::to_string(b.read_capacity_lines) +
           ",\"max_safe_coarsening\":";
    out += b.max_safe_coarsening == kUnbounded
               ? "null"
               : std::to_string(b.max_safe_coarsening);
    out += ",\"abort_threshold\":";
    out += b.abort_threshold == kUnbounded
               ? "null"
               : std::to_string(b.abort_threshold);
    out += ",\"assoc_worst_case\":" + std::to_string(b.assoc_worst_case) +
           "}";
  }
  out += "]}";
  return out;
}

std::string render_golden(const std::vector<EffectSignature>& signatures,
                          const std::vector<CapacityBound>& bounds, int degree,
                          int chain) {
  std::string out;
  out += "# Static effect signatures -- golden reference.\n";
  out += "# Generated by aam_analyze; compared by exact string equality.\n";
  out += "# Regenerate after intentional operator or analysis changes:\n";
  out += "#   ./build/tools/aam_analyze --write-golden "
         "tests/golden/effect_signatures.txt\n";
  out += "# params degree=" + std::to_string(degree) +
         " chain=" + std::to_string(chain) + "\n";
  for (const EffectSignature& sig : signatures) {
    out += "operator ";
    out += core::to_string(sig.op);
    out += " paths=" + std::to_string(sig.paths) +
           " widened=" + (sig.widened ? "yes" : "no") + "\n";
    for (const RegionSignature& region : sig.regions) {
      out += "  region " + region.name + " label=" + region.label + "\n";
      out += "    reads  " + classes_str(region.reads) + " total=" +
             to_string(region.read_total()) + " @params=" +
             std::to_string(region.read_total().eval(degree, chain)) + "\n";
      out += "    writes " + classes_str(region.writes) + " total=" +
             to_string(region.write_total()) + " @params=" +
             std::to_string(region.write_total().eval(degree, chain)) + "\n";
    }
  }
  for (const CapacityBound& b : bounds) {
    out += "capacity machine=" + b.machine + " htm=";
    out += model::to_string(b.kind);
    out += " op=";
    out += core::to_string(b.op);
    out += " reads=" + std::to_string(b.read_elems) +
           " writes=" + std::to_string(b.write_elems) +
           " wcap=" + std::to_string(b.write_capacity_lines) +
           " rcap=" + std::to_string(b.read_capacity_lines) +
           " c_safe=" + coarsening_str(b.max_safe_coarsening) +
           " abort_at=" + coarsening_str(b.abort_threshold) +
           " assoc_wc=" + std::to_string(b.assoc_worst_case) + "\n";
  }
  return out;
}

}  // namespace aam::analysis
