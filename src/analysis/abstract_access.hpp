#pragma once

// Abstract interpretation of operator bodies (the static half of the
// footprint story; see DESIGN.md §7).
//
// The templated operators of algorithms/operators.hpp are instantiated a
// third way here — after the fast-path access types and the virtual
// core::Access seam — with AbstractAccess: an access surface that never
// touches committed state. Loads of "symbolic" regions return one of a
// small candidate set (the abstract domain: concrete representative
// values per control-flow class), cas outcomes fork, and every explored
// path records the distinct elements it reads/writes per region. The
// union over all paths is the operator's may-read/may-write effect set;
// the maximum over paths is its per-invocation footprint bound.
//
// Path enumeration is exhaustive DFS driven by a decision oracle: the
// interpreter replays the operator once per path, forcing a recorded
// choice prefix and defaulting every decision beyond it to choice 0.
// By convention candidate 0 of every decision terminates the enclosing
// loop, so the default path always ends. Unbounded loops (the sssp_relax
// retry, the uf_root chain walk) are cut by bounded widening: each path
// may take at most `Params::chain` non-terminating choices; past that
// budget only terminating candidates are offered and the result is
// flagged `widened` (the footprint is then exact only up to the bound,
// and linear extrapolation over the bound recovers the general form —
// see signature.cpp).

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/executor_impl.hpp"
#include "util/check.hpp"

namespace aam::analysis {

/// Element classes within a region, relative to the probe layout: the
/// operator's own element (kSelf), the second explicit argument element
/// (kPeer, e.g. uf_union's v), elements reached through the probe graph's
/// adjacency (kNeighbor), and elements materialized by widened pointer
/// walks (kChain).
enum class IndexClass : std::uint8_t { kSelf = 0, kPeer, kNeighbor, kChain };
inline constexpr std::size_t kNumIndexClasses = 4;

const char* to_string(IndexClass c);

class Interpreter;

/// One load candidate: the bit pattern the load may observe. kLoop and
/// kChainAlloc candidates are non-terminating (they keep an enclosing
/// loop alive) and consume the path's widening budget when picked;
/// kChainAlloc additionally materializes the region's next chain element.
struct Candidate {
  enum class Kind : std::uint8_t { kPlain, kLoop, kChainAlloc };
  std::uint64_t bits = 0;
  Kind kind = Kind::kPlain;
};

/// A region: a small concrete host array standing in for one simulated
/// heap allocation the operator may touch.
struct Region {
  std::string name;   ///< display name (distinguishes same-label arrays)
  std::string label;  ///< SimHeap allocation label the algorithm uses
  const std::byte* base = nullptr;
  std::size_t elem_bytes = 0;
  std::size_t count = 0;
  /// True when concurrent writers are modelled: loads consult the
  /// candidate provider and cas outcomes fork. False = loads return the
  /// concrete backing and cas compares against it deterministically.
  bool symbolic = false;
  /// First element index of the chain area (kChainAlloc candidates).
  std::size_t chain_base = 0;
  std::function<IndexClass(std::size_t index)> classify;
  /// Appends the load candidates for element `index`. Candidate 0 must
  /// terminate the enclosing loop (see header comment). Unset or empty
  /// output = concrete load.
  std::function<void(Interpreter&, std::size_t index,
                     std::vector<Candidate>& out)>
      candidates;
};

/// Exhaustive path enumerator + effect recorder. One Interpreter analyzes
/// one operator invocation shape; regions are registered once, then
/// enumerate() explores every path.
class Interpreter {
 public:
  struct Params {
    int degree = 2;  ///< d: neighbor count of the probe graph
    int chain = 2;   ///< widening bound: non-terminating choices per path
    int max_paths = 1 << 16;
  };

  struct RegionEffect {
    std::string name;
    std::string label;
    /// Max distinct elements touched per path, split by class and total.
    std::size_t reads[kNumIndexClasses] = {};
    std::size_t writes[kNumIndexClasses] = {};
    std::size_t total_reads = 0;
    std::size_t total_writes = 0;
  };

  explicit Interpreter(Params params) : params_(params) {}

  int register_region(Region region) {
    AAM_CHECK(region.base != nullptr && region.elem_bytes > 0 &&
              region.count > 0);
    regions_.push_back(std::move(region));
    effects_.push_back(RegionEffect{regions_.back().name,
                                    regions_.back().label});
    path_reads_.emplace_back();
    path_writes_.emplace_back();
    may_reads_.emplace_back();
    may_writes_.emplace_back();
    chain_next_.push_back(regions_.back().chain_base);
    return static_cast<int>(regions_.size()) - 1;
  }

  /// Runs `body` (one operator invocation against an AbstractAccess built
  /// over this interpreter) once per control-flow path.
  template <typename Body>
  void enumerate(Body&& body) {
    prefix_.clear();
    paths_ = 0;
    for (;;) {
      begin_path();
      body();
      fold_path();
      ++paths_;
      AAM_CHECK_MSG(paths_ <= static_cast<std::size_t>(params_.max_paths),
                    "abstract interpretation: path explosion");
      // Odometer: advance the deepest decision that still has an untried
      // option; drop everything after it (re-derived on replay).
      std::size_t i = taken_.size();
      while (i > 0 && taken_[i - 1] + 1 >= options_[i - 1]) --i;
      if (i == 0) break;
      prefix_.assign(taken_.begin(),
                     taken_.begin() + static_cast<std::ptrdiff_t>(i));
      ++prefix_[i - 1];
    }
  }

  /// Decision oracle: returns this path's choice in [0, n).
  std::size_t choose(std::size_t n) {
    AAM_CHECK(n >= 1);
    const std::size_t c = cursor_ < prefix_.size() ? prefix_[cursor_] : 0;
    AAM_CHECK(c < n);
    taken_.push_back(c);
    options_.push_back(n);
    ++cursor_;
    return c;
  }

  /// A non-terminating loop candidate, while widening budget remains;
  /// nullopt (and the widened flag) once the budget is exhausted.
  std::optional<Candidate> loop_candidate(std::uint64_t bits) {
    if (budget_used_ >= params_.chain) {
      widened_ = true;
      return std::nullopt;
    }
    return Candidate{bits, Candidate::Kind::kLoop};
  }

  /// A fresh chain element of region `r` (its index as the value), while
  /// widening budget remains and the chain area has room. The element is
  /// materialized only when the candidate is actually picked.
  std::optional<Candidate> chain_candidate(int r) {
    if (budget_used_ >= params_.chain) {
      widened_ = true;
      return std::nullopt;
    }
    const Region& region = regions_[static_cast<std::size_t>(r)];
    const std::size_t next = chain_next_[static_cast<std::size_t>(r)];
    AAM_CHECK_MSG(next < region.count,
                  "chain area smaller than the widening bound");
    return Candidate{next, Candidate::Kind::kChainAlloc};
  }

  const Params& params() const { return params_; }
  bool widened() const { return widened_; }
  std::size_t paths() const { return paths_; }
  const std::vector<RegionEffect>& effects() const { return effects_; }

  /// Union of the element indices read/written across *all* enumerated
  /// paths, per region: the may-read/may-write effect sets. The
  /// schedule-space model checker (src/mc/) consumes these as static
  /// footprints for its DPOR commutativity check; the per-class counts in
  /// effects() keep serving the cost/capacity predictions.
  const std::set<std::size_t>& may_reads(int r) const {
    return may_reads_[static_cast<std::size_t>(r)];
  }
  const std::set<std::size_t>& may_writes(int r) const {
    return may_writes_[static_cast<std::size_t>(r)];
  }

  // --- AbstractAccess support -------------------------------------------

  struct Resolved {
    int region;
    std::size_t index;
  };

  Resolved resolve(const void* p) const {
    const auto* addr = static_cast<const std::byte*>(p);
    for (std::size_t r = 0; r < regions_.size(); ++r) {
      const Region& region = regions_[r];
      if (addr >= region.base &&
          addr < region.base + region.count * region.elem_bytes) {
        return Resolved{static_cast<int>(r),
                        static_cast<std::size_t>(addr - region.base) /
                            region.elem_bytes};
      }
    }
    AAM_CHECK_MSG(false, "operator accessed memory outside every region");
    return Resolved{-1, 0};
  }

  void note_read(int r, std::size_t idx) {
    path_reads_[static_cast<std::size_t>(r)].insert(idx);
  }
  void note_write(int r, std::size_t idx) {
    path_writes_[static_cast<std::size_t>(r)].insert(idx);
  }

  bool is_symbolic(int r) const {
    return regions_[static_cast<std::size_t>(r)].symbolic;
  }

  /// Load candidates for (r, idx); empty = concrete load.
  void candidates_for(int r, std::size_t idx, std::vector<Candidate>& out) {
    out.clear();
    const Region& region = regions_[static_cast<std::size_t>(r)];
    if (region.symbolic && region.candidates) {
      region.candidates(*this, idx, out);
    }
  }

  /// Called when a picked candidate was non-terminating.
  void take_candidate(int r, const Candidate& c) {
    if (c.kind == Candidate::Kind::kPlain) return;
    ++budget_used_;
    if (c.kind == Candidate::Kind::kChainAlloc) {
      ++chain_next_[static_cast<std::size_t>(r)];
    }
  }

  /// cas outcome on a symbolic region: choice 0 = success (terminating);
  /// failure keeps retry loops alive and consumes widening budget. Once
  /// the budget is exhausted the cas is forced to succeed.
  bool cas_fork() {
    if (budget_used_ >= params_.chain) {
      widened_ = true;
      return true;
    }
    const bool ok = choose(2) == 0;
    if (!ok) ++budget_used_;
    return ok;
  }

  bool buffered_load(int r, std::size_t idx, std::uint64_t& bits) const {
    const auto it = write_buffer_.find({r, idx});
    if (it == write_buffer_.end()) return false;
    bits = it->second;
    return true;
  }
  void buffer_store(int r, std::size_t idx, std::uint64_t bits) {
    write_buffer_[{r, idx}] = bits;
  }

 private:
  void begin_path() {
    cursor_ = 0;
    taken_.clear();
    options_.clear();
    budget_used_ = 0;
    write_buffer_.clear();
    for (std::size_t r = 0; r < regions_.size(); ++r) {
      path_reads_[r].clear();
      path_writes_[r].clear();
      chain_next_[r] = regions_[r].chain_base;
    }
  }

  void fold_path() {
    for (std::size_t r = 0; r < regions_.size(); ++r) {
      RegionEffect& eff = effects_[r];
      may_reads_[r].insert(path_reads_[r].begin(), path_reads_[r].end());
      may_writes_[r].insert(path_writes_[r].begin(), path_writes_[r].end());
      std::size_t by_class[kNumIndexClasses] = {};
      for (std::size_t idx : path_reads_[r]) {
        ++by_class[static_cast<std::size_t>(regions_[r].classify(idx))];
      }
      for (std::size_t c = 0; c < kNumIndexClasses; ++c) {
        eff.reads[c] = std::max(eff.reads[c], by_class[c]);
        by_class[c] = 0;
      }
      eff.total_reads = std::max(eff.total_reads, path_reads_[r].size());
      for (std::size_t idx : path_writes_[r]) {
        ++by_class[static_cast<std::size_t>(regions_[r].classify(idx))];
      }
      for (std::size_t c = 0; c < kNumIndexClasses; ++c) {
        eff.writes[c] = std::max(eff.writes[c], by_class[c]);
      }
      eff.total_writes = std::max(eff.total_writes, path_writes_[r].size());
    }
  }

  Params params_;
  std::vector<Region> regions_;
  std::vector<RegionEffect> effects_;

  // Decision oracle state.
  std::vector<std::size_t> prefix_;   ///< forced choices for this path
  std::vector<std::size_t> taken_;    ///< choices actually taken
  std::vector<std::size_t> options_;  ///< option count at each decision
  std::size_t cursor_ = 0;
  std::size_t paths_ = 0;

  // Per-path state.
  int budget_used_ = 0;  ///< non-terminating choices taken (widening)
  std::vector<std::set<std::size_t>> path_reads_;   ///< per region
  std::vector<std::set<std::size_t>> path_writes_;  ///< per region
  // Cross-path unions (may-effect sets), folded alongside the maxima.
  std::vector<std::set<std::size_t>> may_reads_;   ///< per region
  std::vector<std::set<std::size_t>> may_writes_;  ///< per region
  std::vector<std::size_t> chain_next_;             ///< per region
  std::map<std::pair<int, std::size_t>, std::uint64_t> write_buffer_;

  bool widened_ = false;
};

/// The abstract access surface. Satisfies the same typed interface as the
/// fast-path access classes of executor_impl.hpp, so the templated
/// operator bodies instantiate against it unchanged. Writes are buffered
/// per path (read-your-writes); committed backing is never mutated.
class AbstractAccess final {
 public:
  explicit AbstractAccess(Interpreter& interp) : interp_(interp) {}

  template <core::AccessValue T>
  T load(const T& ref) {
    const auto [r, idx] = interp_.resolve(&ref);
    interp_.note_read(r, idx);
    std::uint64_t bits = 0;
    if (interp_.buffered_load(r, idx, bits)) return from_bits<T>(bits);
    interp_.candidates_for(r, idx, cands_);
    if (cands_.empty()) return ref;  // concrete backing
    const std::size_t pick =
        cands_.size() == 1 ? 0 : interp_.choose(cands_.size());
    const Candidate c = cands_[pick];
    interp_.take_candidate(r, c);
    return from_bits<T>(c.bits);
  }

  template <core::AccessValue T>
  void store(T& ref, T value) {
    const auto [r, idx] = interp_.resolve(&ref);
    interp_.note_write(r, idx);
    interp_.buffer_store(r, idx, to_bits(value));
  }

  template <core::AccessValue T>
  bool cas(T& ref, T expect, T desired) {
    const auto [r, idx] = interp_.resolve(&ref);
    interp_.note_read(r, idx);
    bool ok = false;
    std::uint64_t bits = 0;
    if (interp_.buffered_load(r, idx, bits)) {
      ok = from_bits<T>(bits) == expect;  // own write: deterministic
    } else if (interp_.is_symbolic(r)) {
      ok = interp_.cas_fork();  // concurrent writers modelled
    } else {
      ok = ref == expect;
    }
    if (ok) {
      interp_.note_write(r, idx);
      interp_.buffer_store(r, idx, to_bits(desired));
    }
    return ok;
  }

  template <core::AccumValue T>
  T fetch_add(T& ref, T delta) {
    const auto [r, idx] = interp_.resolve(&ref);
    interp_.note_read(r, idx);
    std::uint64_t bits = 0;
    const T old =
        interp_.buffered_load(r, idx, bits) ? from_bits<T>(bits) : ref;
    interp_.note_write(r, idx);
    interp_.buffer_store(r, idx, to_bits(static_cast<T>(old + delta)));
    return old;
  }

  bool transactional() const { return true; }
  void emit(std::uint64_t /*value*/) {}  // emissions carry no footprint

 private:
  template <typename T>
  static T from_bits(std::uint64_t bits) {
    if constexpr (std::is_same_v<T, double>) {
      return std::bit_cast<double>(bits);
    } else {
      return static_cast<T>(bits);
    }
  }
  template <typename T>
  static std::uint64_t to_bits(T value) {
    if constexpr (std::is_same_v<T, double>) {
      return std::bit_cast<std::uint64_t>(value);
    } else {
      return static_cast<std::uint64_t>(value);
    }
  }

  Interpreter& interp_;
  std::vector<Candidate> cands_;  // scratch, reused across decisions
};

}  // namespace aam::analysis
