#pragma once

// Shared work claiming for intra-node parallel loops.
//
// Threads claim contiguous chunks of an index range through an atomic
// cursor that lives on the SimHeap — so the claim itself costs one modelled
// fetch-and-add and contends for a cache line exactly like the fine-grained
// synchronization the paper's coarsening is designed to amortize (§4.2).

#include <cstdint>

#include "htm/des_engine.hpp"
#include "mem/sim_heap.hpp"

namespace aam::core {

class ChunkCursor {
 public:
  explicit ChunkCursor(mem::SimHeap& heap)
      : cursor_(heap.alloc_isolated<std::uint64_t>(0, "worklist.cursor")) {}

  /// Claims the next chunk of up to `chunk` items from [0, limit).
  /// Returns false when the range is exhausted. Charges one atomic ACC.
  bool claim(htm::ThreadCtx& ctx, std::uint64_t limit, std::uint32_t chunk,
             std::uint64_t& begin, std::uint64_t& end) {
    // Cheap pre-check avoids hammering the line once the range is drained.
    if (ctx.load(*cursor_) >= limit) return false;
    begin = ctx.fetch_add(*cursor_, static_cast<std::uint64_t>(chunk));
    if (begin >= limit) return false;
    end = begin + chunk < limit ? begin + chunk : limit;
    return true;
  }

  /// Resets the cursor between phases (single-threaded control step).
  void reset(htm::ThreadCtx& ctx) { ctx.store(*cursor_, std::uint64_t{0}); }

  /// Host-side reset (outside the simulation, e.g. from a quiescence hook).
  void reset_direct() { *cursor_ = 0; }

 private:
  std::uint64_t* cursor_;
};

}  // namespace aam::core
