#include "core/distributed.hpp"

#include "util/check.hpp"

namespace aam::core {

DistributedRuntime::DistributedRuntime(net::Cluster& cluster, Options options)
    : cluster_(cluster),
      options_(options),
      executor_(make_executor(
          options.mechanism, cluster.machine(),
          {.batch = options.local_batch, .decorator = options.decorator})),
      ckpt_(cluster.machine().recovery_client(),
            {.save =
                 [this](std::vector<std::uint8_t>& out) {
                   util::BlobWriter w;
                   save_state(w);
                   out = w.take();
                 },
             .restore =
                 [this](const std::uint8_t* data, std::size_t len) {
                   util::BlobReader r(data, len);
                   restore_state(r);
                 }}) {
  AAM_CHECK(options_.coalesce >= 1 && options_.local_batch >= 1);

  // Incoming operator batches: queue them for transactional execution by
  // the polling thread (progress() stages the transaction).
  op_handler_ = cluster_.register_handler(
      [this](htm::ThreadCtx&, const net::Message& msg) {
        Batch b;
        b.items = msg.payload;
        b.reply_node = mode_ == Mode::kFr ? msg.src_node : -1;
        // (plain batches carry no reply.)
        enqueue_batch(msg.dst_node, std::move(b));
      });

  // FR replies: run the failure handler for each returned result.
  reply_handler_ = cluster_.register_handler(
      [this](htm::ThreadCtx& ctx, const net::Message& msg) {
        AAM_CHECK_MSG(on_result_, "FR reply without a failure handler");
        for (std::uint64_t result : msg.payload) on_result_(ctx, result);
      });

  const int threads = cluster_.num_nodes() * cluster_.threads_per_node();
  coalescers_.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    coalescers_.emplace_back(cluster_, op_handler_, options_.coalesce);
  }
  local_buffers_.resize(static_cast<std::size_t>(threads));
  pending_.resize(static_cast<std::size_t>(cluster_.num_nodes()));
  pending_sharded_.resize(static_cast<std::size_t>(threads));
}

void DistributedRuntime::set_operator_plain(ItemOpPlain op,
                                            double per_item_overhead_ns) {
  mode_ = Mode::kPlain;
  op_plain_ = std::move(op);
  plain_overhead_ns_ = per_item_overhead_ns;
  exec_fn_ = nullptr;
  on_result_ = nullptr;
}

void DistributedRuntime::spawn(htm::ThreadCtx& ctx, int owner_node,
                               std::uint64_t item) {
  const std::uint32_t tid = ctx.thread_id();
  const int my_node = cluster_.node_of_thread(tid);
  if (owner_node == my_node) {
    auto& buf = local_buffers_[tid];
    buf.push_back(item);
    if (static_cast<int>(buf.size()) >= options_.local_batch) {
      std::vector<std::uint64_t> items;
      items.swap(buf);
      enqueue_local(my_node, std::move(items));
    }
  } else {
    coalescers_[tid].add(ctx, owner_node, item);
  }
}

void DistributedRuntime::flush(htm::ThreadCtx& ctx) {
  const std::uint32_t tid = ctx.thread_id();
  auto& buf = local_buffers_[tid];
  if (!buf.empty()) {
    std::vector<std::uint64_t> items;
    items.swap(buf);
    enqueue_local(cluster_.node_of_thread(tid), std::move(items));
  }
  coalescers_[tid].flush_all(ctx);
}

void DistributedRuntime::enqueue_local(int node,
                                       std::vector<std::uint64_t> items) {
  Batch b;
  b.items = std::move(items);
  b.reply_node = mode_ == Mode::kFr ? node : -1;
  enqueue_batch(node, std::move(b));
}

void DistributedRuntime::enqueue_batch(int node, Batch batch) {
  if (!shard_) {
    pending_[static_cast<std::size_t>(node)].push_back(std::move(batch));
    ++pending_total_;
  } else {
    // Split the batch by receiver shard; each sub-batch runs only on its
    // owning thread, making same-node transactions conflict-free.
    const int tpn = cluster_.threads_per_node();
    for (std::uint64_t item : batch.items) {
      const auto shard = static_cast<int>(shard_(item)) % tpn;
      const std::uint32_t tid = cluster_.thread_of(node, shard);
      auto& q = pending_sharded_[tid];
      if (q.empty() || q.back().reply_node != batch.reply_node ||
          static_cast<int>(q.back().items.size()) >= options_.local_batch) {
        Batch sub;
        sub.reply_node = batch.reply_node;
        q.push_back(std::move(sub));
        ++pending_total_;
      }
      q.back().items.push_back(item);
    }
  }
  // Wake the node's threads so someone executes the work even if everyone
  // already parked.
  for (int t = 0; t < cluster_.threads_per_node(); ++t) {
    cluster_.machine().wake(cluster_.thread_of(node, t));
  }
}

bool DistributedRuntime::progress(htm::ThreadCtx& ctx) {
  const int node = cluster_.node_of_thread(ctx.thread_id());
  auto& my_shard = pending_sharded_[ctx.thread_id()];
  auto& q = shard_ ? my_shard : pending_[static_cast<std::size_t>(node)];
  if (q.empty()) {
    // Pull one message off the wire; its handler enqueues batches.
    net::Message msg;
    if (!cluster_.poll(ctx, msg)) return false;
    cluster_.run_handler(ctx, msg);
    if (q.empty()) return true;  // reply message, or work for other shards
  }
  Batch batch = std::move(q.front());
  q.pop_front();
  --pending_total_;
  stage_batch(ctx, std::move(batch));
  return true;
}

void DistributedRuntime::stage_batch(htm::ThreadCtx& ctx, Batch batch) {
  AAM_CHECK_MSG(mode_ != Mode::kNone, "no operator registered");
  items_executed_ += batch.items.size();
  ++batches_executed_;

  if (mode_ == Mode::kPlain) {
    // Per-item application with the baseline's software overhead; no
    // transaction, no coarsening.
    for (std::uint64_t item : batch.items) {
      ctx.compute(plain_overhead_ns_);
      op_plain_(ctx, item);
    }
    return;
  }

  // FF/FR: the registered ExecFn owns the operator and runs the batch
  // through the executor (see the templated setters in the header).
  exec_fn_(ctx, std::move(batch));
}

void DistributedRuntime::reply(htm::ThreadCtx& ctx, int reply_node,
                               std::span<const std::uint64_t> results) {
  if (results.empty()) return;
  const int my_node = cluster_.node_of_thread(ctx.thread_id());
  if (reply_node == my_node) {
    for (std::uint64_t r : results) on_result_(ctx, r);
  } else {
    cluster_.send(ctx, reply_node, reply_handler_, 0, 0,
                  std::vector<std::uint64_t>(results.begin(), results.end()));
  }
}

void DistributedRuntime::save_state(util::BlobWriter& w) const {
  executor_->save_state(w);
  w.put<std::uint64_t>(coalescers_.size());
  for (const auto& c : coalescers_) c.save_state(w);
  w.put<std::uint64_t>(local_buffers_.size());
  for (const auto& buf : local_buffers_) w.put_vector(buf);
  const auto put_queues = [&w](const std::vector<std::deque<Batch>>& queues) {
    w.put<std::uint64_t>(queues.size());
    for (const auto& q : queues) {
      w.put<std::uint64_t>(q.size());
      for (const Batch& b : q) {
        w.put<std::int32_t>(b.reply_node);
        w.put_vector(b.items);
      }
    }
  };
  put_queues(pending_);
  put_queues(pending_sharded_);
  w.put<std::uint64_t>(pending_total_);
  w.put<std::uint64_t>(items_executed_);
  w.put<std::uint64_t>(batches_executed_);
}

void DistributedRuntime::restore_state(util::BlobReader& r) {
  executor_->restore_state(r);
  AAM_CHECK_MSG(r.get<std::uint64_t>() == coalescers_.size(),
                "distributed runtime thread count changed since checkpoint");
  for (auto& c : coalescers_) c.restore_state(r);
  AAM_CHECK_MSG(r.get<std::uint64_t>() == local_buffers_.size(),
                "distributed runtime thread count changed since checkpoint");
  for (auto& buf : local_buffers_) buf = r.get_vector<std::uint64_t>();
  const auto get_queues = [&r](std::vector<std::deque<Batch>>& queues) {
    AAM_CHECK_MSG(r.get<std::uint64_t>() == queues.size(),
                  "distributed runtime topology changed since checkpoint");
    for (auto& q : queues) {
      q.clear();
      const auto count = r.get<std::uint64_t>();
      for (std::uint64_t i = 0; i < count; ++i) {
        Batch b;
        b.reply_node = r.get<std::int32_t>();
        b.items = r.get_vector<std::uint64_t>();
        q.push_back(std::move(b));
      }
    }
  };
  get_queues(pending_);
  get_queues(pending_sharded_);
  pending_total_ = r.get<std::uint64_t>();
  items_executed_ = r.get<std::uint64_t>();
  batches_executed_ = r.get<std::uint64_t>();
}

bool DistributedRuntime::drained() const {
  if (pending_total_ != 0 || cluster_.in_flight() != 0) return false;
  for (int node = 0; node < cluster_.num_nodes(); ++node) {
    if (!cluster_.queue_empty(node)) return false;
  }
  return true;
}

bool DistributedRuntime::Worker::next(htm::ThreadCtx& ctx) {
  if (rt_.progress(ctx)) return true;
  if (!production_done_) {
    if (produce(ctx)) return true;
    production_done_ = true;
    return true;  // come back once more to flush
  }
  if (!flushed_) {
    flushed_ = true;
    rt_.flush(ctx);
    return true;
  }
  return false;  // park; message deliveries wake us
}

}  // namespace aam::core
