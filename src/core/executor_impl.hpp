#pragma once

// Devirtualized executor hot path (two-tier dispatch, see DESIGN.md).
//
// The seam in executor.hpp is intentionally type-erased: a virtual Access
// surface plus a std::function ItemOp is what lets the check:: decorators
// interpose on every access. But that same erasure costs two indirect
// calls per simulated memory access on the innermost loop of the whole
// system. This header provides the fast tier: non-virtual Access
// implementations and the concrete executors' `run_batch<Op>` templates,
// which instantiate the operator body once per (executor, operator) pair
// so every access compiles down to direct calls into the DES engine.
//
// Dispatch rule (execute_batch below): an executor whose devirtualized()
// is true IS one of the concrete classes here and is dispatched by a
// static_cast on mechanism(); anything else (currently the check::
// decorators) takes the virtual execute() path, which funnels the same
// run_batch bodies through the ErasedAccess/ErasedItemOp adapters — one
// code path to test, two call costs.
//
// Operator bodies must therefore be generic over the access type
// (`[](auto& access, std::uint64_t i)`), never `core::Access&`-typed:
// both tiers instantiate the body, so anything outside the common typed
// surface fails to compile at the seam instead of diverging at runtime.

#include <bit>
#include <concepts>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/executor.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace aam::core {

/// The value types of the Access surface. The fast-path classes constrain
/// their member templates to exactly these so they cannot accept more
/// types than the virtual seam (which would compile under one tier only).
template <typename T>
concept AccessValue = std::same_as<T, std::uint32_t> ||
                      std::same_as<T, std::uint64_t> || std::same_as<T, double>;

/// Accumulator types (fetch_add): the 4-byte case is excluded on purpose,
/// matching the virtual Access overload set.
template <typename T>
concept AccumValue = std::same_as<T, std::uint64_t> || std::same_as<T, double>;

// --------------------------------------------------------------------------
// Non-virtual Access implementations (fast tier).
//
// Same semantics, costs, and emission staging as the virtual adapters the
// executors used before devirtualization; kept structurally parallel to
// Access so ErasedAccess can forward one-to-one.
// --------------------------------------------------------------------------

/// Emission staging shared by the fast-path access classes.
class FastAccessBase {
 public:
  void emit(std::uint64_t value) { results_->push_back(value); }
  std::vector<std::uint64_t>* results() const { return results_; }

 protected:
  explicit FastAccessBase(std::vector<std::uint64_t>* results)
      : results_(results) {}

 private:
  std::vector<std::uint64_t>* results_;
};

/// Transactional accesses through the DES HTM engine.
class TxnAccess final : public FastAccessBase {
 public:
  TxnAccess(htm::Txn& tx, std::vector<std::uint64_t>* results)
      : FastAccessBase(results), tx_(tx) {}

  template <AccessValue T>
  T load(const T& ref) {
    return tx_.load(ref);
  }
  template <AccessValue T>
  void store(T& ref, T value) {
    tx_.store(ref, value);
  }
  // Inside a transaction CAS needs no hardware atomic: a load + store pair
  // is atomic by isolation (the §4.2 point that coarse transactions remove
  // fine-grained synchronization from the operator bodies).
  template <AccessValue T>
  bool cas(T& ref, T expect, T desired) {
    if (tx_.load(ref) != expect) return false;
    tx_.store(ref, desired);
    return true;
  }
  template <AccumValue T>
  T fetch_add(T& ref, T delta) {
    return tx_.fetch_add(ref, delta);
  }
  bool transactional() const { return true; }

 private:
  htm::Txn& tx_;
};

/// Hardware atomics (CAS/ACC) per guarded update; plain loads/stores.
class AtomicAccess final : public FastAccessBase {
 public:
  AtomicAccess(htm::ThreadCtx& ctx, std::vector<std::uint64_t>* results)
      : FastAccessBase(results), ctx_(ctx) {}

  template <AccessValue T>
  T load(const T& ref) {
    return ctx_.load(ref);
  }
  template <AccessValue T>
  void store(T& ref, T value) {
    ctx_.store(ref, value);
  }
  template <AccessValue T>
  bool cas(T& ref, T expect, T desired) {
    return ctx_.cas(ref, expect, desired);
  }
  template <AccumValue T>
  T fetch_add(T& ref, T delta) {
    return ctx_.fetch_add(ref, delta);
  }
  bool transactional() const { return false; }

 private:
  htm::ThreadCtx& ctx_;
};

/// Striped per-element spinlocks around every guarded update. Within one
/// DES dispatch no other thread runs, so a lock acquired and released in
/// the same next() never actually spins: its cost is the modelled CAS on
/// the lock word (plus line contention).
class FineLockAccess final : public FastAccessBase {
 public:
  FineLockAccess(htm::ThreadCtx& ctx, const mem::SimHeap& heap,
                 std::span<std::uint32_t> locks,
                 std::vector<std::uint64_t>* results)
      : FastAccessBase(results), ctx_(ctx), heap_(heap), locks_(locks) {}

  template <AccessValue T>
  T load(const T& ref) {
    return ctx_.load(ref);
  }
  template <AccessValue T>
  void store(T& ref, T value) {
    acquire(&ref);
    ctx_.store(ref, value);
    release(&ref);
  }
  template <AccessValue T>
  bool cas(T& ref, T expect, T desired) {
    acquire(&ref);
    const bool ok = ctx_.load(ref) == expect;
    if (ok) ctx_.store(ref, desired);
    release(&ref);
    return ok;
  }
  template <AccumValue T>
  T fetch_add(T& ref, T delta) {
    acquire(&ref);
    const T old = ctx_.load(ref);
    ctx_.store(ref, static_cast<T>(old + delta));
    release(&ref);
    return old;
  }
  bool transactional() const { return false; }

 private:
  std::uint32_t& lock_of(const void* p) {
    // Hash the heap offset, not the host address: host addresses change
    // run to run (ASLR) and would break bit-reproducibility.
    return locks_[util::mix64(heap_.offset_of(p) >> 2) & (locks_.size() - 1)];
  }
  void acquire(const void* p) {
    std::uint32_t& lock = lock_of(p);
    while (!ctx_.cas(lock, 0u, 1u)) {
    }
  }
  void release(const void* p) { ctx_.store(lock_of(p), 0u); }

  htm::ThreadCtx& ctx_;
  const mem::SimHeap& heap_;
  std::span<std::uint32_t> locks_;
};

/// Plain accesses: correct only under external mutual exclusion (the
/// serial-lock executor holds the global lock around the whole batch).
class PlainAccess final : public FastAccessBase {
 public:
  PlainAccess(htm::ThreadCtx& ctx, std::vector<std::uint64_t>* results)
      : FastAccessBase(results), ctx_(ctx) {}

  template <AccessValue T>
  T load(const T& ref) {
    return ctx_.load(ref);
  }
  template <AccessValue T>
  void store(T& ref, T value) {
    ctx_.store(ref, value);
  }
  template <AccessValue T>
  bool cas(T& ref, T expect, T desired) {
    const bool ok = ctx_.load(ref) == expect;
    if (ok) ctx_.store(ref, desired);
    return ok;
  }
  template <AccumValue T>
  T fetch_add(T& ref, T delta) {
    const T old = ctx_.load(ref);
    ctx_.store(ref, static_cast<T>(old + delta));
    return old;
  }
  bool transactional() const { return false; }

 private:
  htm::ThreadCtx& ctx_;
};

/// Software-TM accesses, counting loads and recording written addresses
/// for the TL2 cost model (the write set drives the commit-time orec
/// locking replayed against the DES machine).
class StmCountedAccess final : public FastAccessBase {
 public:
  StmCountedAccess(htm::StmTxn& tx, std::vector<std::uint64_t>* results,
                   std::uint64_t& loads, std::vector<const void*>& writes)
      : FastAccessBase(results), tx_(tx), loads_(loads), writes_(writes) {}

  template <AccessValue T>
  T load(const T& ref) {
    ++loads_;
    return tx_.load(ref);
  }
  template <AccessValue T>
  void store(T& ref, T value) {
    writes_.push_back(&ref);
    tx_.store(ref, value);
  }
  template <AccessValue T>
  bool cas(T& ref, T expect, T desired) {
    ++loads_;
    if (tx_.load(ref) != expect) return false;
    tx_.store(ref, desired);
    writes_.push_back(&ref);
    return true;
  }
  template <AccumValue T>
  T fetch_add(T& ref, T delta) {
    ++loads_;
    writes_.push_back(&ref);
    return tx_.fetch_add(ref, delta);
  }
  bool transactional() const { return true; }

 private:
  htm::StmTxn& tx_;
  std::uint64_t& loads_;
  std::vector<const void*>& writes_;
};

// --------------------------------------------------------------------------
// Type-erasure adapters: the virtual execute() path reuses the templated
// run_batch bodies through these, so both tiers run identical logic.
// --------------------------------------------------------------------------

/// Presents a fast-path access implementation as a virtual core::Access.
/// Shares the impl's staging vector, so the inherited emit() lands
/// emissions in the same per-attempt buffer the executor manages.
template <typename Impl>
class ErasedAccess final : public Access {
 public:
  explicit ErasedAccess(Impl& impl) : Access(impl.results()), impl_(impl) {}

  std::uint32_t load(const std::uint32_t& ref) override { return impl_.load(ref); }
  std::uint64_t load(const std::uint64_t& ref) override { return impl_.load(ref); }
  double load(const double& ref) override { return impl_.load(ref); }
  void store(std::uint32_t& ref, std::uint32_t value) override {
    impl_.store(ref, value);
  }
  void store(std::uint64_t& ref, std::uint64_t value) override {
    impl_.store(ref, value);
  }
  void store(double& ref, double value) override { impl_.store(ref, value); }
  bool cas(std::uint32_t& ref, std::uint32_t expect,
           std::uint32_t desired) override {
    return impl_.cas(ref, expect, desired);
  }
  bool cas(std::uint64_t& ref, std::uint64_t expect,
           std::uint64_t desired) override {
    return impl_.cas(ref, expect, desired);
  }
  bool cas(double& ref, double expect, double desired) override {
    return impl_.cas(ref, expect, desired);
  }
  std::uint64_t fetch_add(std::uint64_t& ref, std::uint64_t delta) override {
    return impl_.fetch_add(ref, delta);
  }
  double fetch_add(double& ref, double delta) override {
    return impl_.fetch_add(ref, delta);
  }
  bool transactional() const override { return impl_.transactional(); }

 private:
  Impl& impl_;
};

/// Wraps a type-erased ItemOp as a generic operator body so the virtual
/// execute() entry points can call run_batch. Owns a copy of the ItemOp:
/// the HTM executor stages the body past the caller's stack frame.
class ErasedItemOp {
 public:
  explicit ErasedItemOp(ActivityExecutor::ItemOp op) : op_(std::move(op)) {}

  template <typename Impl>
  void operator()(Impl& impl, std::uint64_t i) const {
    ErasedAccess<Impl> access(impl);
    op_(access, i);
  }

 private:
  ActivityExecutor::ItemOp op_;
};

// --------------------------------------------------------------------------
// Concrete executors. Each pairs a templated run_batch (fast tier) with a
// virtual execute() that routes the same body through ErasedItemOp.
// --------------------------------------------------------------------------

/// Per-thread emission staging shared by all executors.
class StagedExecutor : public ActivityExecutor {
 public:
  bool devirtualized() const override { return true; }

 protected:
  StagedExecutor(htm::DesMachine& machine, int batch)
      : ActivityExecutor(batch),
        staging_(static_cast<std::size_t>(machine.num_threads())) {}

  std::vector<std::uint64_t>& staging(htm::ThreadCtx& ctx) {
    return staging_[ctx.thread_id()];
  }

 private:
  std::vector<std::vector<std::uint64_t>> staging_;
};

class HtmCoarsenedExecutor final : public StagedExecutor {
 public:
  HtmCoarsenedExecutor(htm::DesMachine& machine, int batch)
      : StagedExecutor(machine, batch) {}

  Mechanism mechanism() const override { return Mechanism::kHtmCoarsened; }

  int preferred_batch() const override {
    return adaptive_ ? adaptive_->batch() : batch_;
  }

  void execute(htm::ThreadCtx& ctx, std::uint64_t count, const ItemOp& op,
               BatchDone done = {},
               OperatorId /*op_id*/ = OperatorId::kUnknown) override {
    run_batch(ctx, count, ErasedItemOp(op), std::move(done));
  }

  template <typename Op>
  void run_batch(htm::ThreadCtx& ctx, std::uint64_t count, Op op,
                 BatchDone done = {}) {
    auto& stage = staging(ctx);
    if (count == 0) {
      stage.clear();
      if (done) done(ctx, stage);
      return;
    }
    // One coarse activity: `count` operators in a single transaction
    // (§4.2, Listing 8). The body may re-execute on retries, so emissions
    // restage from scratch each attempt; `done` sees the committed set.
    // The operator is captured by value: the staged body outlives the
    // caller's next() frame.
    ctx.stage_transaction(
        [&stage, op = std::move(op), count](htm::Txn& tx) {
          stage.clear();
          TxnAccess access(tx, &stage);
          for (std::uint64_t i = 0; i < count; ++i) op(access, i);
        },
        [this, &stage, done = std::move(done)](htm::ThreadCtx& done_ctx,
                                               const htm::TxnOutcome& outcome) {
          if (adaptive_ != nullptr) adaptive_->record(outcome);
          if (outcome_hook_) outcome_hook_(done_ctx, outcome);
          if (done) done(done_ctx, stage);
          stage.clear();
        });
  }
};

class AtomicOpsExecutor final : public StagedExecutor {
 public:
  AtomicOpsExecutor(htm::DesMachine& machine, int batch)
      : StagedExecutor(machine, batch) {}

  Mechanism mechanism() const override { return Mechanism::kAtomicOps; }

  void execute(htm::ThreadCtx& ctx, std::uint64_t count, const ItemOp& op,
               BatchDone done = {},
               OperatorId /*op_id*/ = OperatorId::kUnknown) override {
    run_batch(ctx, count, ErasedItemOp(op), std::move(done));
  }

  template <typename Op>
  void run_batch(htm::ThreadCtx& ctx, std::uint64_t count, const Op& op,
                 BatchDone done = {}) {
    auto& stage = staging(ctx);
    stage.clear();
    AtomicAccess access(ctx, &stage);
    for (std::uint64_t i = 0; i < count; ++i) op(access, i);
    if (done) done(ctx, stage);
    stage.clear();
  }
};

class FineLocksExecutor final : public StagedExecutor {
 public:
  FineLocksExecutor(htm::DesMachine& machine, int batch, std::uint32_t stripes)
      : StagedExecutor(machine, batch),
        heap_(machine.heap()),
        locks_(machine.heap().alloc<std::uint32_t>(std::bit_ceil(stripes),
                                                   "fine-locks.stripes")) {
    for (auto& lock : locks_) lock = 0;
  }

  Mechanism mechanism() const override { return Mechanism::kFineLocks; }

  void execute(htm::ThreadCtx& ctx, std::uint64_t count, const ItemOp& op,
               BatchDone done = {},
               OperatorId /*op_id*/ = OperatorId::kUnknown) override {
    run_batch(ctx, count, ErasedItemOp(op), std::move(done));
  }

  template <typename Op>
  void run_batch(htm::ThreadCtx& ctx, std::uint64_t count, const Op& op,
                 BatchDone done = {}) {
    auto& stage = staging(ctx);
    stage.clear();
    FineLockAccess access(ctx, heap_, locks_, &stage);
    for (std::uint64_t i = 0; i < count; ++i) op(access, i);
    if (done) done(ctx, stage);
    stage.clear();
  }

 private:
  const mem::SimHeap& heap_;
  std::span<std::uint32_t> locks_;
};

class SerialLockExecutor final : public StagedExecutor {
 public:
  SerialLockExecutor(htm::DesMachine& machine, int batch)
      : StagedExecutor(machine, batch),
        lock_(machine.heap().alloc<std::uint32_t>(1, "serial-lock.word")) {
    lock_[0] = 0;
  }

  Mechanism mechanism() const override { return Mechanism::kSerialLock; }

  void execute(htm::ThreadCtx& ctx, std::uint64_t count, const ItemOp& op,
               BatchDone done = {},
               OperatorId /*op_id*/ = OperatorId::kUnknown) override {
    run_batch(ctx, count, ErasedItemOp(op), std::move(done));
  }

  template <typename Op>
  void run_batch(htm::ThreadCtx& ctx, std::uint64_t count, const Op& op,
                 BatchDone done = {}) {
    // True virtual-time mutual exclusion: a thread arriving while the lock
    // is "held" (free_at_ in its future) first waits it out, then runs the
    // whole batch under the lock. Each DES dispatch is sequential, so the
    // CAS always succeeds in program terms; waiting + the hot-line CAS
    // model the §4.1 coarse-lock serialization cost.
    if (free_at_ > ctx.now()) ctx.compute(free_at_ - ctx.now());
    while (!ctx.cas(lock_[0], 0u, 1u)) {
    }
    auto& stage = staging(ctx);
    stage.clear();
    PlainAccess access(ctx, &stage);
    for (std::uint64_t i = 0; i < count; ++i) op(access, i);
    ctx.store(lock_[0], 0u);
    free_at_ = ctx.now();
    if (done) done(ctx, stage);
    stage.clear();
  }

  // free_at_ is host-side virtual-time state (the lock word itself lives
  // on the heap and restores with the heap image).
  void save_state(util::BlobWriter& w) const override {
    ActivityExecutor::save_state(w);
    w.put<double>(free_at_);
  }
  void restore_state(util::BlobReader& r) override {
    ActivityExecutor::restore_state(r);
    free_at_ = r.get<double>();
  }

 private:
  std::span<std::uint32_t> lock_;
  double free_at_ = 0;
};

class StmExecutor final : public StagedExecutor {
 public:
  StmExecutor(htm::DesMachine& machine, int batch, std::uint32_t stripes)
      : StagedExecutor(machine, batch),
        costs_(machine.config().atomics),
        heap_(machine.heap()),
        orecs_(machine.heap().alloc<std::uint32_t>(std::bit_ceil(stripes),
                                                   "stm.orecs")),
        clock_(machine.heap().alloc<std::uint32_t>(1, "stm.clock")),
        writes_(static_cast<std::size_t>(machine.num_threads())) {
    for (auto& orec : orecs_) orec = 0;
    clock_[0] = 0;
  }

  Mechanism mechanism() const override { return Mechanism::kStm; }

  void execute(htm::ThreadCtx& ctx, std::uint64_t count, const ItemOp& op,
               BatchDone done = {},
               OperatorId /*op_id*/ = OperatorId::kUnknown) override {
    run_batch(ctx, count, ErasedItemOp(op), std::move(done));
  }

  template <typename Op>
  void run_batch(htm::ThreadCtx& ctx, std::uint64_t count, const Op& op,
                 BatchDone done = {}) {
    auto& stage = staging(ctx);
    auto& writes = writes_[ctx.thread_id()];
    std::uint64_t loads = 0;
    // The software transaction runs for real against heap memory; within
    // one DES dispatch it is uncontended and commits first try. Its cost
    // follows a first-order TL2 model:
    //  * read: orec load + value load, revalidated at commit (3 loads),
    //    plus per-access bookkeeping (hashing, set lookups, version
    //    compares) — charged as a multiple of the cached load cost, the
    //    model's proxy for core speed;
    //  * write: buffered (read-set-style bookkeeping during the body),
    //    then at commit the orec lock CAS, write-back store, and orec
    //    release store. The lock/release pair is replayed below as REAL
    //    modeled atomics on a striped orec table, so it queues at the
    //    machine's atomic unit exactly like the plain-atomics executor
    //    does (on BGQ that is the machine-wide L2 gap — the serialization
    //    a compute-only charge would silently bypass);
    //  * a global version-clock load at begin and CAS at commit.
    engine_.atomically([&](htm::StmTxn& tx) {
      stage.clear();
      writes.clear();
      loads = 0;
      StmCountedAccess access(tx, &stage, loads, writes);
      for (std::uint64_t i = 0; i < count; ++i) op(access, i);
    });
    (void)ctx.load(clock_[0]);  // begin: sample the global version clock
    const double bookkeeping_ns = 4.0 * costs_.load_ns;
    const double access_ns =
        static_cast<double>(loads) * (3.0 * costs_.load_ns + bookkeeping_ns) +
        static_cast<double>(writes.size()) * (costs_.load_ns + bookkeeping_ns);
    ctx.compute(access_ns);
    for (const void* addr : writes) {
      std::uint32_t& orec = orec_of(addr);
      while (!ctx.cas(orec, 0u, 1u)) {
      }
      ctx.compute(costs_.store_ns);  // write back the buffered value
      ctx.store(orec, 0u);
    }
    if (!writes.empty()) {
      const std::uint32_t version = ctx.load(clock_[0]);
      ctx.cas(clock_[0], version, version + 1);
    }
    if (done) done(ctx, stage);
    stage.clear();
  }

 private:
  std::uint32_t& orec_of(const void* p) {
    // Heap offset, not host address: deterministic across runs (no ASLR).
    return orecs_[util::mix64(heap_.offset_of(p) >> 2) & (orecs_.size() - 1)];
  }

  const model::AtomicCosts& costs_;
  const mem::SimHeap& heap_;
  std::span<std::uint32_t> orecs_;
  std::span<std::uint32_t> clock_;
  std::vector<std::vector<const void*>> writes_;
  htm::StmEngine engine_;
};

// --------------------------------------------------------------------------
// Dispatch.
// --------------------------------------------------------------------------

/// Applies op(access, i) for i in [0, count) under the executor's
/// mechanism, picking the fast tier when the executor is one of the
/// concrete classes above (devirtualized() == true) and falling back to
/// the virtual execute() — instantiating `op` against core::Access — for
/// decorated executors. Semantics match ActivityExecutor::execute.
template <typename Op>
void execute_batch(ActivityExecutor& executor, htm::ThreadCtx& ctx,
                   std::uint64_t count, Op&& op,
                   ActivityExecutor::BatchDone done = {},
                   OperatorId op_id = OperatorId::kUnknown) {
  if (executor.devirtualized()) {
    switch (executor.mechanism()) {
      case Mechanism::kHtmCoarsened:
        static_cast<HtmCoarsenedExecutor&>(executor).run_batch(
            ctx, count, std::forward<Op>(op), std::move(done));
        return;
      case Mechanism::kAtomicOps:
        static_cast<AtomicOpsExecutor&>(executor).run_batch(
            ctx, count, std::forward<Op>(op), std::move(done));
        return;
      case Mechanism::kFineLocks:
        static_cast<FineLocksExecutor&>(executor).run_batch(
            ctx, count, std::forward<Op>(op), std::move(done));
        return;
      case Mechanism::kSerialLock:
        static_cast<SerialLockExecutor&>(executor).run_batch(
            ctx, count, std::forward<Op>(op), std::move(done));
        return;
      case Mechanism::kStm:
        static_cast<StmExecutor&>(executor).run_batch(
            ctx, count, std::forward<Op>(op), std::move(done));
        return;
    }
  }
  executor.execute(ctx, count,
                   ActivityExecutor::ItemOp(std::forward<Op>(op)),
                   std::move(done), op_id);
}

}  // namespace aam::core
