#include "core/ownership.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace aam::core {

// One driver per cluster thread. A driver walks each of its jobs through:
//   kPick -> kAcquiring -> kExecute -> (blocked? backoff -> kExecute) ->
//   release -> kPick ... until all jobs complete.
class OwnershipProtocol::Driver : public htm::Worker {
 public:
  Driver(OwnershipProtocol& proto, int node, util::Rng rng)
      : proto_(proto), node_(node), rng_(rng) {}

  void configure(const Params& params, Stats* stats) {
    params_ = params;
    stats_ = stats;
    jobs_left_ = params.txns_per_process;
    state_ = State::kPick;
    attempt_ = 0;
  }

  bool next(htm::ThreadCtx& ctx) override {
    switch (state_) {
      case State::kPick:
        if (jobs_left_ == 0) return false;
        pick_elements();
        if (remotes_.empty()) {
          state_ = State::kExecute;
          return true;
        }
        state_ = State::kWaiting;
        start_acquisition(ctx);
        return false;  // park; the last reply callback wakes us
      case State::kWaiting:
        return false;  // spurious wake-up while replies are outstanding
      case State::kExecute:
        state_ = State::kWaiting;  // the done callback picks the next state
        stage_transaction(ctx);
        return true;
    }
    return false;
  }

 private:
  enum class State { kPick, kWaiting, kExecute };

  std::uint64_t my_marker() const {
    return static_cast<std::uint64_t>(node_) + 1;
  }

  void pick_elements() {
    const auto n = proto_.part_.num_vertices();
    locals_.clear();
    remotes_.clear();
    while (static_cast<int>(locals_.size()) < params_.local_elements) {
      const auto v = static_cast<graph::Vertex>(
          proto_.part_.begin(node_) +
          rng_.next_below(proto_.part_.count(node_)));
      if (std::find(locals_.begin(), locals_.end(), v) == locals_.end()) {
        locals_.push_back(v);
      }
    }
    while (static_cast<int>(remotes_.size()) < params_.remote_elements) {
      const auto v = static_cast<graph::Vertex>(rng_.next_below(n));
      if (proto_.part_.owner(v) == node_) continue;
      if (std::find(remotes_.begin(), remotes_.end(), v) == remotes_.end()) {
        remotes_.push_back(v);
      }
    }
  }

  // Issues marker CASes for every remote element in parallel; the last
  // reply decides success (all acquired) vs release + backoff.
  void start_acquisition(htm::ThreadCtx& ctx) {
    ++stats_->acquisition_rounds;
    outstanding_ = static_cast<int>(remotes_.size());
    failures_this_round_ = 0;
    acquired_.clear();

    auto& machine = proto_.cluster_.machine();
    const auto& net = proto_.cluster_.config().net;
    const std::uint32_t tid = ctx.thread_id();

    for (graph::Vertex v : remotes_) {
      ++stats_->marker_cas_attempts;
      ctx.compute(net.rmw_issue_ns);
      const double arrival = ctx.now() + net.rmw_latency_ns;
      machine.schedule_callback(arrival, [this, v, tid, &machine, &net] {
        // NIC-side CAS on the marker at the owner.
        std::uint64_t& marker = proto_.markers_[v];
        const bool ok = (marker == 0);
        if (ok) {
          marker = my_marker();
          machine.bump_addr(&marker);
        }
        // Reply to the spawner.
        machine.schedule_callback(machine.now() + net.latency_ns,
                                  [this, v, tid, ok, &machine] {
          if (ok) {
            acquired_.push_back(v);
          } else {
            ++stats_->marker_cas_failures;
            ++failures_this_round_;
          }
          if (--outstanding_ == 0) finish_acquisition(tid, machine);
        });
      });
    }
  }

  void finish_acquisition(std::uint32_t tid, htm::DesMachine& machine) {
    if (failures_this_round_ == 0) {
      state_ = State::kExecute;
      machine.wake(tid);
      return;
    }
    // Release everything we managed to grab, then back off for a random
    // time: mandatory for livelock freedom (§5.7).
    release_markers(machine, acquired_);
    ++stats_->backoffs;
    const sim::Backoff backoff(params_.backoff_base_ns, params_.backoff_max_ns);
    const double wait = backoff.wait(attempt_++, rng_.next_double());
    machine.schedule_callback(machine.now() + wait, [this, tid, &machine] {
      // Retry with a fresh random pick; the job is only consumed when a
      // transaction commits, so jobs_left_ is untouched.
      state_ = State::kPick;
      machine.wake(tid);
    });
  }

  void release_markers(htm::DesMachine& machine,
                       const std::vector<graph::Vertex>& elems) {
    const auto& net = proto_.cluster_.config().net;
    for (graph::Vertex v : elems) {
      machine.schedule_callback(machine.now() + net.rmw_latency_ns,
                                [this, v, &machine] {
        std::uint64_t& marker = proto_.markers_[v];
        marker = 0;
        machine.bump_addr(&marker);
      });
    }
  }

  void stage_transaction(htm::ThreadCtx& ctx) {
    ctx.stage_transaction(
        [this](htm::Txn& tx) {
          blocked_ = false;
          // Local elements must not be marked by another process (§4.3:
          // a local transaction touching a marked element aborts).
          for (graph::Vertex v : locals_) {
            const std::uint64_t m = tx.load(proto_.markers_[v]);
            if (m != 0 && m != my_marker()) {
              blocked_ = true;
              return;
            }
          }
          for (graph::Vertex v : locals_) {
            tx.fetch_add(proto_.values_[v], std::uint64_t{1});
          }
          for (graph::Vertex v : remotes_) {
            tx.fetch_add(proto_.values_[v], std::uint64_t{1});
          }
        },
        [this](htm::ThreadCtx& done_ctx, const htm::TxnOutcome&) {
          auto& machine = proto_.cluster_.machine();
          if (blocked_) {
            // A borrower holds one of our local elements. Holding our own
            // acquisitions while waiting would deadlock (the borrower may
            // in turn be blocked by a marker we hold), so — as with a
            // failed CAS (§4.3) — release everything, back off for a
            // random time, and restart from acquisition.
            ++stats_->local_blocked;
            release_markers(machine, remotes_);
            const sim::Backoff backoff(params_.backoff_base_ns,
                                       params_.backoff_max_ns);
            const double wait =
                backoff.wait(attempt_++, rng_.next_double());
            const std::uint32_t tid = done_ctx.thread_id();
            state_ = State::kWaiting;
            machine.schedule_callback(done_ctx.now() + wait,
                                      [this, tid, &machine] {
              state_ = State::kPick;
              machine.wake(tid);
            });
            return;
          }
          // Committed: send the elements back and free their markers.
          release_markers(machine, remotes_);
          ++stats_->transactions_completed;
          --jobs_left_;
          attempt_ = 0;
          state_ = State::kPick;
        });
  }

  OwnershipProtocol& proto_;
  int node_;
  util::Rng rng_;
  Params params_;
  Stats* stats_ = nullptr;

  State state_ = State::kPick;
  int jobs_left_ = 0;
  int attempt_ = 0;
  std::vector<graph::Vertex> locals_;
  std::vector<graph::Vertex> remotes_;
  std::vector<graph::Vertex> acquired_;
  int outstanding_ = 0;
  int failures_this_round_ = 0;
  bool blocked_ = false;
};

OwnershipProtocol::OwnershipProtocol(net::Cluster& cluster,
                                     std::span<std::uint64_t> markers,
                                     std::span<std::uint64_t> values,
                                     const graph::Block1D& part)
    : cluster_(cluster), markers_(markers), values_(values), part_(part) {
  AAM_CHECK(markers.size() == values.size());
  AAM_CHECK(markers.size() >= part.num_vertices());
  AAM_CHECK_MSG(cluster.num_nodes() >= 2,
                "the ownership protocol needs at least two nodes");
}

OwnershipProtocol::~OwnershipProtocol() = default;

OwnershipProtocol::Stats OwnershipProtocol::run(const Params& params) {
  Stats stats;
  auto& machine = cluster_.machine();
  const util::Rng root(params.seed);
  drivers_.clear();
  const int threads = cluster_.num_nodes() * cluster_.threads_per_node();
  for (int t = 0; t < threads; ++t) {
    drivers_.push_back(std::make_unique<Driver>(
        *this, cluster_.node_of_thread(static_cast<std::uint32_t>(t)),
        root.fork(static_cast<std::uint64_t>(t) + 1)));
    drivers_.back()->configure(params, &stats);
    machine.set_worker(static_cast<std::uint32_t>(t), drivers_.back().get());
  }
  machine.run();
  stats.makespan_ns = machine.makespan();
  return stats;
}

}  // namespace aam::core
