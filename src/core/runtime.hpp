#pragma once

// Intra-node AAM runtime (§3, §4.2).
//
// AamRuntime executes a worklist of operator invocations on all threads of
// a DesMachine, *coarsening* activities: up to M single-element operators
// run inside one hardware transaction, amortizing the begin/commit overhead
// and reducing fine-grained synchronization (§4.2, Listing 8).
//
// The operator receives the transactional context and an item index; the
// May-Fail/Always-Succeed distinction (§3.2.2) lives in the operator body
// (a MF operator observes state and may do nothing), while hardware aborts
// are always retried by the engine per the HTM policy.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/adaptive.hpp"
#include "core/worklist.hpp"
#include "htm/des_engine.hpp"

namespace aam::core {

class AamRuntime {
 public:
  struct Options {
    int batch = 16;  ///< M: operators per hardware transaction
  };

  /// The single-element operator: modifies graph elements through `tx`.
  using ItemOp = std::function<void(htm::Txn&, std::uint64_t item)>;

  AamRuntime(htm::DesMachine& machine, Options options);
  ~AamRuntime();

  AamRuntime(const AamRuntime&) = delete;
  AamRuntime& operator=(const AamRuntime&) = delete;

  /// Applies `op` to every item in [0, count) across all machine threads,
  /// batching M invocations per transaction. Returns when all committed.
  /// (Fire-and-Forget usage; the op's own logic provides AS/MF semantics.)
  void for_each(std::uint64_t count, ItemOp op);

  int batch() const { return options_.batch; }
  void set_batch(int m) { options_.batch = m; }

  /// Enables online M selection (§7 extension): the runtime claims chunks
  /// of the controller's current batch size and feeds activity outcomes
  /// back into it. Pass nullptr to return to the fixed batch.
  void set_adaptive(AdaptiveBatch* adaptive) { adaptive_ = adaptive; }
  AdaptiveBatch* adaptive() { return adaptive_; }

  htm::DesMachine& machine() { return machine_; }

 private:
  class BatchWorker;

  htm::DesMachine& machine_;
  Options options_;
  ChunkCursor cursor_;
  std::vector<std::unique_ptr<BatchWorker>> workers_;
  ItemOp op_;
  std::uint64_t count_ = 0;
  AdaptiveBatch* adaptive_ = nullptr;
};

}  // namespace aam::core
