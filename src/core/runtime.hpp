#pragma once

// Intra-node AAM runtime (§3, §4.2).
//
// AamRuntime executes a worklist of operator invocations on all threads of
// a DesMachine through a pluggable ActivityExecutor: by default up to M
// single-element operators run inside one hardware transaction, amortizing
// the begin/commit overhead and reducing fine-grained synchronization
// (§4.2, Listing 8), but any Mechanism can be selected for the §4.1
// executor comparison.
//
// The operator receives the mechanism-neutral Access surface and an item
// index; the May-Fail/Always-Succeed distinction (§3.2.2) lives in the
// operator body (a MF operator observes state and may do nothing), while
// hardware aborts are always retried by the engine per the HTM policy.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/adaptive.hpp"
#include "core/executor.hpp"
#include "core/executor_impl.hpp"
#include "core/worklist.hpp"
#include "htm/des_engine.hpp"
#include "htm/resilience.hpp"

namespace aam::core {

class AamRuntime {
 public:
  struct Options {
    int batch = 16;  ///< M: operators per coarse activity
    Mechanism mechanism = Mechanism::kHtmCoarsened;
    /// Optional dynamic-analysis wrapper (check::Checker); nullptr = none.
    ExecutorDecorator* decorator = nullptr;
    /// --mechanism=auto routing table (core/auto_executor.hpp); when set,
    /// `mechanism` is ignored and each batch routes per the policy.
    const AutoPolicy* auto_policy = nullptr;
  };

  /// The single-element operator: modifies graph elements through the
  /// executor's Access surface. (Legacy alias — for_each is templated and
  /// type-erases per *batch*, not per item.)
  using ItemOp = std::function<void(Access&, std::uint64_t item)>;

  AamRuntime(htm::DesMachine& machine, Options options);
  ~AamRuntime();

  AamRuntime(const AamRuntime&) = delete;
  AamRuntime& operator=(const AamRuntime&) = delete;

  /// Applies `op(access, item)` to every item in [0, count) across all
  /// machine threads, batching M invocations per activity. Returns when
  /// all committed. (Fire-and-Forget usage; the op's own logic provides
  /// AS/MF semantics.) The operator must be generic over the access type
  /// (`[](auto& access, std::uint64_t item)`): it is instantiated against
  /// the concrete executor's access implementation on the fast path and
  /// against core::Access when a check decorator is attached. One
  /// std::function hop remains per claimed *batch* of M items.
  /// `op_id` tags the batches with the operator's identity for the
  /// check::/analysis:: layers (see core::OperatorId).
  template <typename Op>
  void for_each(std::uint64_t count, Op op,
                OperatorId op_id = OperatorId::kUnknown) {
    run_batches(count,
                [this, op = std::move(op), op_id](htm::ThreadCtx& ctx,
                                                  std::uint64_t begin,
                                                  std::uint64_t end) mutable {
                  execute_batch(*executor_, ctx, end - begin,
                                [&op, begin](auto& access, std::uint64_t i) {
                                  op(access, begin + i);
                                },
                                {}, op_id);
                });
  }

  int batch() const { return executor_->preferred_batch(); }
  void set_batch(int m) { executor_->set_batch(m); }
  Mechanism mechanism() const { return executor_->mechanism(); }

  /// Enables online M selection (§7 extension): the runtime claims chunks
  /// of the controller's current batch size and feeds activity outcomes
  /// back into it. Pass nullptr to return to the fixed batch.
  void set_adaptive(AdaptiveBatch* adaptive) {
    executor_->set_adaptive(adaptive);
  }
  AdaptiveBatch* adaptive() { return executor_->adaptive(); }

  htm::DesMachine& machine() { return machine_; }

 private:
  class BatchWorker;

  /// Batch-granular type erasure: applies [begin, end) of the current
  /// worklist. Stays alive for the whole machine run, so the access-typed
  /// operator it owns outlives any transaction staged against it.
  using BatchFn =
      std::function<void(htm::ThreadCtx&, std::uint64_t, std::uint64_t)>;

  void run_batches(std::uint64_t count, BatchFn fn);

  htm::DesMachine& machine_;
  std::unique_ptr<ActivityExecutor> executor_;
  ChunkCursor cursor_;
  std::vector<std::unique_ptr<BatchWorker>> workers_;
  BatchFn batch_fn_;
  std::uint64_t count_ = 0;
  // Checkpoint registration (src/recovery/): the executor's control state
  // is the runtime's only durable host state — the chunk cursor lives on
  // the SimHeap and the batch workers are stateless. No-op when the
  // machine has no recovery client.
  htm::ScopedHostState ckpt_;
};

}  // namespace aam::core
