#pragma once

// Online selection of the coarsening factor M (§7).
//
// The paper leaves runtime M selection as future work but sketches the
// mechanism: the exhaustive offline analysis (§5.5) shows that runtime
// per processed vertex is U-shaped in M — too small wastes begin/commit
// overhead, too large drowns in aborts/serializations. This controller
// climbs that curve online with multiplicative-increase /
// multiplicative-decrease on the observed abort rate.

#include <algorithm>

#include "htm/abort.hpp"

namespace aam::core {

class AdaptiveBatch {
 public:
  struct Options {
    int min_batch = 1;
    int max_batch = 512;
    int initial = 8;
    /// Abort-rate thresholds (aborts per completed activity) in a window.
    double low_water = 0.02;   ///< below: grow M (overhead-bound regime)
    double high_water = 0.25;  ///< above: shrink M (abort-bound regime)
    int window = 64;           ///< activities per adjustment decision
  };

  AdaptiveBatch() : AdaptiveBatch(Options{}) {}
  explicit AdaptiveBatch(Options options) : options_(options) {
    batch_ = std::clamp(options_.initial, options_.min_batch,
                        options_.max_batch);
  }

  /// Feed the outcome of one completed activity.
  void record(const htm::TxnOutcome& outcome) {
    ++activities_;
    aborts_ += outcome.aborts;
    if (outcome.serialized) ++serialized_;
    if (activities_ < options_.window) return;

    const double rate = static_cast<double>(aborts_ + 4 * serialized_) /
                        static_cast<double>(activities_);
    if (rate > options_.high_water) {
      batch_ = std::max(options_.min_batch, batch_ / 2);
    } else if (rate < options_.low_water) {
      batch_ = std::min(options_.max_batch, batch_ * 2);
    }
    activities_ = 0;
    aborts_ = 0;
    serialized_ = 0;
  }

  int batch() const { return batch_; }
  void reset(int m) {
    batch_ = std::clamp(m, options_.min_batch, options_.max_batch);
    activities_ = aborts_ = serialized_ = 0;
  }

 private:
  Options options_;
  int batch_ = 1;
  long activities_ = 0;
  long aborts_ = 0;
  long serialized_ = 0;
};

}  // namespace aam::core
