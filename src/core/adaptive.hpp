#pragma once

// Online selection of the coarsening factor M (§7).
//
// The paper leaves runtime M selection as future work but sketches the
// mechanism: the exhaustive offline analysis (§5.5) shows that runtime
// per processed vertex is U-shaped in M — too small wastes begin/commit
// overhead, too large drowns in aborts/serializations. This controller
// climbs that curve online with multiplicative-increase /
// multiplicative-decrease on the observed abort rate.
//
// Under a sustained abort storm, plain MIMD oscillates: the controller
// shrinks, the storm pauses, it doubles straight back up and is punished
// again. An `escalated` outcome (a thread hit the engine's livelock
// watermark, htm::ResilienceConfig) therefore switches the controller into
// a cooldown regime: M drops to the minimum, stays pinned for
// `cooldown_windows` decisions, and then re-grows only after
// `grow_hysteresis` consecutive calm windows per doubling, until the
// pre-escalation M is restored and normal control resumes. Clean runs
// never see an escalated outcome and behave exactly as before.

#include <algorithm>
#include <cstdint>

#include "htm/abort.hpp"
#include "util/blob.hpp"

namespace aam::core {

class AdaptiveBatch {
 public:
  struct Options {
    int min_batch = 1;
    int max_batch = 512;
    int initial = 8;
    /// Abort-rate thresholds (aborts per completed activity) in a window.
    double low_water = 0.02;   ///< below: grow M (overhead-bound regime)
    double high_water = 0.25;  ///< above: shrink M (abort-bound regime)
    int window = 64;           ///< activities per adjustment decision
    /// Cooldown regime entered on an escalated outcome: windows pinned at
    /// min_batch before re-growth may begin.
    int cooldown_windows = 4;
    /// Calm (below-low_water) windows required per doubling while
    /// recovering from an escalation.
    int grow_hysteresis = 2;
  };

  AdaptiveBatch() : AdaptiveBatch(Options{}) {}
  explicit AdaptiveBatch(Options options) : options_(options) {
    batch_ = std::clamp(options_.initial, options_.min_batch,
                        options_.max_batch);
  }

  /// Feed the outcome of one completed activity.
  void record(const htm::TxnOutcome& outcome) {
    if (outcome.escalated) {
      // Livelock escalation: degrade immediately (mid-window) and restart
      // the cooldown clock; repeated escalations keep M pinned.
      if (!recovering_) {
        recovering_ = true;
        restore_target_ = batch_;
      }
      batch_ = options_.min_batch;
      cooldown_left_ = options_.cooldown_windows;
      calm_windows_ = 0;
    }
    ++activities_;
    aborts_ += outcome.aborts;
    if (outcome.serialized) ++serialized_;
    if (activities_ < options_.window) return;

    const double rate = static_cast<double>(aborts_ + 4 * serialized_) /
                        static_cast<double>(activities_);
    if (recovering_) {
      decide_recovering(rate);
    } else if (rate > options_.high_water) {
      batch_ = std::max(options_.min_batch, batch_ / 2);
    } else if (rate < options_.low_water) {
      batch_ = std::min(options_.max_batch, batch_ * 2);
    }
    activities_ = 0;
    aborts_ = 0;
    serialized_ = 0;
  }

  int batch() const { return batch_; }
  /// True while in the post-escalation cooldown/re-growth regime.
  bool recovering() const { return recovering_; }

  /// Checkpoint support (src/recovery/): the controller's full decision
  /// state, so a restored run re-climbs the M curve identically.
  void save_state(util::BlobWriter& w) const {
    w.put<std::int32_t>(batch_);
    w.put<std::int64_t>(activities_);
    w.put<std::int64_t>(aborts_);
    w.put<std::int64_t>(serialized_);
    w.put<std::uint8_t>(recovering_ ? 1 : 0);
    w.put<std::int32_t>(restore_target_);
    w.put<std::int32_t>(cooldown_left_);
    w.put<std::int32_t>(calm_windows_);
  }
  void restore_state(util::BlobReader& r) {
    batch_ = r.get<std::int32_t>();
    activities_ = r.get<std::int64_t>();
    aborts_ = r.get<std::int64_t>();
    serialized_ = r.get<std::int64_t>();
    recovering_ = r.get<std::uint8_t>() != 0;
    restore_target_ = r.get<std::int32_t>();
    cooldown_left_ = r.get<std::int32_t>();
    calm_windows_ = r.get<std::int32_t>();
  }

  void reset(int m) {
    batch_ = std::clamp(m, options_.min_batch, options_.max_batch);
    activities_ = aborts_ = serialized_ = 0;
    recovering_ = false;
    cooldown_left_ = calm_windows_ = 0;
  }

 private:
  void decide_recovering(double rate) {
    if (rate > options_.high_water) {
      // Still stormy: hold at min and restart the cooldown clock.
      batch_ = options_.min_batch;
      cooldown_left_ = options_.cooldown_windows;
      calm_windows_ = 0;
      return;
    }
    if (cooldown_left_ > 0) {
      --cooldown_left_;
      return;
    }
    calm_windows_ = rate < options_.low_water ? calm_windows_ + 1 : 0;
    if (calm_windows_ >= options_.grow_hysteresis) {
      calm_windows_ = 0;
      batch_ = std::min({batch_ * 2, restore_target_, options_.max_batch});
      if (batch_ >= restore_target_) recovering_ = false;
    }
  }

  Options options_;
  int batch_ = 1;
  long activities_ = 0;
  long aborts_ = 0;
  long serialized_ = 0;
  // Cooldown state (inactive in clean runs).
  bool recovering_ = false;
  int restore_target_ = 0;   ///< M to climb back to after the storm
  int cooldown_left_ = 0;    ///< windows still pinned at min_batch
  int calm_windows_ = 0;     ///< consecutive calm windows seen so far
};

}  // namespace aam::core
