#pragma once

// The ownership protocol for distributed activities (§4.3, Fig 5i).
//
// A hardware transaction cannot span nodes (it could not roll back remote
// side effects), so an activity that touches remote elements first brings
// them under local control:
//
//   * every element carries an ownership marker, initially free (⊥);
//   * the handler CASes the marker of each remote element to its process
//     id (modelled as a one-sided NIC operation with a reply);
//   * if every CAS succeeds, the elements are logically relocated and the
//     transaction executes locally; afterwards the markers are released;
//   * if any CAS fails, all previously acquired markers are released and
//     the handler backs off for a random time — without backoff the
//     protocol livelocks (§5.7);
//   * a local transaction that touches a marked element does not commit;
//     it backs off and retries (the borrower is guaranteed to finish).
//
// The driver below reproduces the §5.7 experiment: each process issues x
// transactions, each marking a local and b remote randomly selected
// vertices.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/partition.hpp"
#include "net/cluster.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace aam::core {

class OwnershipProtocol {
 public:
  struct Params {
    int txns_per_process = 1000;  ///< x
    int local_elements = 5;       ///< a
    int remote_elements = 1;      ///< b
    double backoff_base_ns = 600.0;
    double backoff_max_ns = 80000.0;
    std::uint64_t seed = 1;
  };

  struct Stats {
    std::uint64_t transactions_completed = 0;
    std::uint64_t marker_cas_attempts = 0;
    std::uint64_t marker_cas_failures = 0;
    std::uint64_t acquisition_rounds = 0;  ///< full acquire attempts
    std::uint64_t backoffs = 0;
    std::uint64_t local_blocked = 0;  ///< txn retries due to marked elements
    double makespan_ns = 0;
  };

  /// `markers` and `values` are per-element arrays on the cluster's
  /// SimHeap, distributed by `part`; markers must be zero-initialized
  /// (0 = free, p+1 = held by process p).
  OwnershipProtocol(net::Cluster& cluster, std::span<std::uint64_t> markers,
                    std::span<std::uint64_t> values,
                    const graph::Block1D& part);
  ~OwnershipProtocol();

  /// Runs one configuration to completion and reports the statistics.
  /// Uses one driver worker per cluster thread.
  Stats run(const Params& params);

 private:
  class Driver;

  net::Cluster& cluster_;
  std::span<std::uint64_t> markers_;
  std::span<std::uint64_t> values_;
  graph::Block1D part_;
  std::vector<std::unique_ptr<Driver>> drivers_;
};

}  // namespace aam::core
