#include "core/auto_executor.hpp"

#include "htm/des_engine.hpp"
#include "util/check.hpp"

namespace aam::core {

Mechanism descend_mechanism(Mechanism mechanism) {
  switch (mechanism) {
    case Mechanism::kHtmCoarsened: return Mechanism::kStm;
    case Mechanism::kStm: return Mechanism::kSerialLock;
    default: return mechanism;
  }
}

AutoExecutor::AutoExecutor(htm::DesMachine& machine, const AutoPolicy& policy,
                           const ExecutorOptions& options)
    : ActivityExecutor(options.batch),
      machine_(machine),
      policy_(policy),
      inner_options_(options),
      per_thread_op_(static_cast<std::size_t>(machine.num_threads()),
                     OperatorId::kUnknown),
      last_mechanism_(policy.plan(OperatorId::kUnknown).recommended) {
  inner_options_.auto_policy = nullptr;  // inners are plain fixed executors
  for (std::size_t i = 0; i < kNumOperatorIds; ++i) {
    state_[i].level = policy_.plans[i].recommended;
  }
  // Build every reachable rung eagerly, in enum order: lazy construction
  // would make simulated-heap layout (lock tables, orecs) depend on the
  // first batch that happens to route there.
  bool needed[5] = {};
  for (const MechanismPlan& plan : policy_.plans) {
    Mechanism m = plan.recommended;
    needed[static_cast<std::size_t>(m)] = true;
    while (descend_mechanism(m) != m) {
      m = descend_mechanism(m);
      needed[static_cast<std::size_t>(m)] = true;
    }
  }
  for (const Mechanism m : all_mechanisms()) {
    if (!needed[static_cast<std::size_t>(m)]) continue;
    inners_[static_cast<std::size_t>(m)] =
        make_executor(m, machine_, inner_options_);
  }
  if (auto& htm = inners_[static_cast<std::size_t>(Mechanism::kHtmCoarsened)];
      htm != nullptr) {
    htm->set_outcome_hook(
        [this](htm::ThreadCtx& ctx, const htm::TxnOutcome& outcome) {
          on_outcome(ctx, outcome);
        });
  }
}

AutoExecutor::~AutoExecutor() = default;

ActivityExecutor& AutoExecutor::inner(Mechanism mechanism) {
  auto& executor = inners_[static_cast<std::size_t>(mechanism)];
  AAM_CHECK_MSG(executor != nullptr, "auto routed to an unbuilt mechanism");
  return *executor;
}

void AutoExecutor::execute(htm::ThreadCtx& ctx, std::uint64_t count,
                           const ItemOp& op, BatchDone done,
                           OperatorId op_id) {
  OpState& st = state_[static_cast<std::size_t>(op_id)];
  const MechanismPlan& plan = policy_.plan(op_id);
  Mechanism level = st.level;
  // Capacity guard: never run a batch whose write set statically exceeds
  // c_safe under HTM — it could only abort its way to the fallback path.
  // Clamping reroutes this batch without descending the ladder.
  if (level == Mechanism::kHtmCoarsened && plan.htm_c_safe > 0 &&
      count > plan.htm_c_safe) {
    level = descend_mechanism(level);
    ++policy_.telemetry.capacity_clamps;
  }
  ++policy_.telemetry.batches;
  last_mechanism_ = level;
  per_thread_op_[ctx.thread_id()] = op_id;
  inner(level).execute(ctx, count, op, std::move(done), op_id);
}

void AutoExecutor::set_batch(int m) {
  batch_ = m;
  for (auto& executor : inners_) {
    if (executor != nullptr) executor->set_batch(m);
  }
}

void AutoExecutor::set_adaptive(AdaptiveBatch* adaptive) {
  adaptive_ = adaptive;
  for (auto& executor : inners_) {
    if (executor != nullptr) executor->set_adaptive(adaptive);
  }
}

void AutoExecutor::save_state(util::BlobWriter& w) const {
  ActivityExecutor::save_state(w);
  for (const OpState& st : state_) {
    w.put<std::uint8_t>(static_cast<std::uint8_t>(st.level));
    w.put<std::uint64_t>(st.window_done);
    w.put<std::uint64_t>(st.window_aborts);
  }
  w.put<std::uint8_t>(static_cast<std::uint8_t>(last_mechanism_));
  w.put_vector(per_thread_op_);
  for (const auto& executor : inners_) {
    w.put<std::uint8_t>(executor != nullptr ? 1 : 0);
    if (executor != nullptr) executor->save_state(w);
  }
}

void AutoExecutor::restore_state(util::BlobReader& r) {
  ActivityExecutor::restore_state(r);
  for (OpState& st : state_) {
    st.level = static_cast<Mechanism>(r.get<std::uint8_t>());
    st.window_done = r.get<std::uint64_t>();
    st.window_aborts = r.get<std::uint64_t>();
  }
  last_mechanism_ = static_cast<Mechanism>(r.get<std::uint8_t>());
  const auto ops = r.get_vector<OperatorId>();
  AAM_CHECK_MSG(ops.size() == per_thread_op_.size(),
                "auto snapshot thread count mismatch");
  per_thread_op_ = ops;
  for (auto& executor : inners_) {
    const bool present = r.get<std::uint8_t>() != 0;
    AAM_CHECK_MSG(present == (executor != nullptr),
                  "auto snapshot inner executor set mismatch");
    if (executor != nullptr) executor->restore_state(r);
  }
}

void AutoExecutor::descend(OpState& st, Mechanism to) {
  if (st.level == to) return;
  st.level = to;
  st.window_done = 0;
  st.window_aborts = 0;
  ++policy_.telemetry.descents;
}

void AutoExecutor::on_outcome(htm::ThreadCtx& ctx,
                              const htm::TxnOutcome& outcome) {
  // The hook fires from the HTM inner's done path; stage_transaction is the
  // last action of a worker dispatch, so the thread's attributed operator
  // is still the one that staged this activity.
  const OperatorId op = per_thread_op_[ctx.thread_id()];
  OpState& st = state_[static_cast<std::size_t>(op)];
  if (st.level != Mechanism::kHtmCoarsened) return;  // stale rung outcome
  const MechanismPlan& plan = policy_.plan(op);
  if (outcome.escalated) {
    // Livelock watermark hit: the engine already serialized this thread;
    // stop speculating for the operator altogether.
    ++policy_.telemetry.prediction_miss;
    descend(st, Mechanism::kSerialLock);
    return;
  }
  st.window_aborts += static_cast<std::uint64_t>(outcome.aborts);
  ++st.window_done;
  if (st.window_done < kValidationWindow) return;
  const double observed = static_cast<double>(st.window_aborts) /
                          static_cast<double>(st.window_done);
  if (observed > plan.abort_band) {
    ++policy_.telemetry.prediction_miss;
    descend(st, descend_mechanism(st.level));
    return;
  }
  st.window_done = 0;
  st.window_aborts = 0;
}

}  // namespace aam::core
