#pragma once

// The AAM message taxonomy (§3.2).
//
// Two orthogonal criteria classify every atomic active message:
//
//  * Direction of data flow (§3.2.1): Fire-and-Forget messages spawn
//    activities that return nothing; Fire-and-Return messages spawn
//    activities whose result flows back to the spawner, where a *failure
//    handler* may run.
//  * Activity commits (§3.2.2): Always-Succeed activities must eventually
//    commit (PageRank rank accumulation); May-Fail activities may lose an
//    algorithm-level race and simply not re-execute (BFS distance update).
//
// A graph algorithm uses exactly one of the four combinations; the paper's
// case studies (§3.3) map as:
//
//   PageRank           FF & AS      Boruvka MST        FR & MF
//   BFS / SSSP         FF & MF      ST connectivity    FR & AS
//   Boman coloring     FR & MF
//
// Note the distinction between *algorithm-level* failure (May-Fail) and
// *hardware* aborts: an aborted transaction is always re-executed by the
// runtime; a May-Fail activity may decide, after observing state, to do
// nothing — that is not an abort.

#include <cstdint>

namespace aam::core {

enum class Direction : std::uint8_t {
  kFireAndForget,  ///< FF: unidirectional data flow
  kFireAndReturn,  ///< FR: activity result returns to the spawner
};

enum class CommitMode : std::uint8_t {
  kAlwaysSucceed,  ///< AS: every activity must commit (may serialize)
  kMayFail,        ///< MF: activities may lose races and not re-execute
};

struct MessageClass {
  Direction direction;
  CommitMode commit;
};

inline constexpr MessageClass kFFAS{Direction::kFireAndForget,
                                    CommitMode::kAlwaysSucceed};
inline constexpr MessageClass kFFMF{Direction::kFireAndForget,
                                    CommitMode::kMayFail};
inline constexpr MessageClass kFRAS{Direction::kFireAndReturn,
                                    CommitMode::kAlwaysSucceed};
inline constexpr MessageClass kFRMF{Direction::kFireAndReturn,
                                    CommitMode::kMayFail};

inline const char* to_string(Direction d) {
  return d == Direction::kFireAndForget ? "FF" : "FR";
}
inline const char* to_string(CommitMode c) {
  return c == CommitMode::kAlwaysSucceed ? "AS" : "MF";
}

}  // namespace aam::core
