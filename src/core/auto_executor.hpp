#pragma once

// --mechanism=auto: the executor that consults the static recommendation
// table (src/analysis/recommend.*) and validates it against live abort
// telemetry.
//
// Layering: core cannot depend on analysis, so the table crosses the
// boundary as plain data — an AutoPolicy holds one MechanismPlan per
// OperatorId, filled by analysis::make_auto_policy() (or by hand in
// tests). At batch start the AutoExecutor routes the batch to the
// recommended mechanism's concrete executor; while HTM runs, the
// TxnOutcome stream (PR 5 telemetry, via the OutcomeHook seam) checks the
// observed abort rate against the predicted band. A miss descends the
// speculation ladder HTM -> STM -> serialized — the hybrid-TM fallback
// path whose cost the static score already charged (Alistarh et al.,
// "Inherent Limitations of Hybrid TM"; Brown & Ravi, "On the Cost of
// Concurrency in Hybrid TM") — and bumps a prediction_miss counter so the
// model's accuracy is itself measurable. A livelock escalation
// (TxnOutcome::escalated, the §4.1 watermark machinery) jumps straight to
// the serialized rung.
//
// Routing and validation are host-side only: an auto run charges exactly
// the simulated costs of the mechanisms it routes to, so a policy that
// always resolves to one mechanism reproduces that fixed run bit for bit.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/executor.hpp"

namespace aam::core {

/// Per-operator entry of the static recommendation table.
struct MechanismPlan {
  Mechanism recommended = Mechanism::kAtomicOps;
  /// Expected HTM aborts per completed activity at the planned batch size
  /// (from the conflict model); 0 when the plan is not speculative.
  double predicted_aborts = 0;
  /// Tolerated observed aborts per completed activity before the executor
  /// declares a prediction miss and descends one rung.
  double abort_band = 1e9;
  /// Static capacity bound: largest batch that provably fits the write/read
  /// capacity (analysis::CapacityBound::max_safe_coarsening). 0 = no bound.
  std::uint64_t htm_c_safe = 0;
};

/// Host-side counters an auto run accumulates; read them from the policy
/// after the run (mutable so benches can keep the policy const).
struct AutoTelemetry {
  std::uint64_t batches = 0;          ///< batches routed
  std::uint64_t prediction_miss = 0;  ///< band violations + escalations
  std::uint64_t descents = 0;         ///< rungs descended (never re-ascends)
  std::uint64_t capacity_clamps = 0;  ///< batches rerouted for c_safe
};

inline constexpr std::size_t kNumOperatorIds =
    static_cast<std::size_t>(OperatorId::kStVisit) + 1;

/// The static table: one plan per OperatorId. Slot 0 (kUnknown) is the
/// default for untagged batches — ad-hoc lambdas, init loops — and should
/// stay a robust non-speculative choice.
struct AutoPolicy {
  MechanismPlan plans[kNumOperatorIds];
  mutable AutoTelemetry telemetry;

  const MechanismPlan& plan(OperatorId op) const {
    return plans[static_cast<std::size_t>(op)];
  }
  MechanismPlan& plan(OperatorId op) {
    return plans[static_cast<std::size_t>(op)];
  }
};

/// Routes each batch to the concrete executor of the operator's current
/// ladder rung. Not devirtualized: auto dispatch is the type-erased tier
/// by design (the inner executors still run their own fast paths when
/// reached through execute()).
class AutoExecutor final : public ActivityExecutor {
 public:
  /// `options.decorator` wraps each *inner* executor (so a check::Checker
  /// observes the true mechanism of every routed batch); the AutoExecutor
  /// itself is never wrapped. `policy` must outlive the executor.
  AutoExecutor(htm::DesMachine& machine, const AutoPolicy& policy,
               const ExecutorOptions& options);
  ~AutoExecutor() override;

  /// The mechanism of the most recently routed batch (the plan default for
  /// kUnknown before any batch ran) — auto has no single static answer.
  Mechanism mechanism() const override { return last_mechanism_; }

  void execute(htm::ThreadCtx& ctx, std::uint64_t count, const ItemOp& op,
               BatchDone done = {},
               OperatorId op_id = OperatorId::kUnknown) override;

  int preferred_batch() const override {
    return adaptive_ != nullptr ? adaptive_->batch() : batch_;
  }
  void set_batch(int m) override;
  void set_adaptive(AdaptiveBatch* adaptive) override;

  /// Current ladder rung for an operator (tests/telemetry).
  Mechanism current_level(OperatorId op) const {
    return state_[static_cast<std::size_t>(op)].level;
  }

  /// Completed activities between abort-rate checks.
  inline static constexpr std::uint64_t kValidationWindow = 32;

  /// Checkpoint support: the per-operator ladder rungs and validation
  /// windows, the last routed mechanism, and every inner executor's own
  /// state. Policy telemetry is deliberately NOT rolled back — like the
  /// fault injector it counts work *performed*, replays included.
  void save_state(util::BlobWriter& w) const override;
  void restore_state(util::BlobReader& r) override;

 private:
  struct OpState {
    Mechanism level = Mechanism::kAtomicOps;
    std::uint64_t window_done = 0;
    std::uint64_t window_aborts = 0;
  };

  ActivityExecutor& inner(Mechanism mechanism);
  void on_outcome(htm::ThreadCtx& ctx, const htm::TxnOutcome& outcome);
  void descend(OpState& st, Mechanism to);

  htm::DesMachine& machine_;
  const AutoPolicy& policy_;
  ExecutorOptions inner_options_;  ///< decorator kept, auto_policy cleared
  std::unique_ptr<ActivityExecutor> inners_[5];  ///< by Mechanism value
  OpState state_[kNumOperatorIds];
  std::vector<OperatorId> per_thread_op_;  ///< batch attribution for the hook
  Mechanism last_mechanism_;
};

/// One rung down the speculation ladder: htm -> stm -> serial-lock; the
/// non-speculative mechanisms are terminal.
Mechanism descend_mechanism(Mechanism mechanism);

}  // namespace aam::core
